module hummingbird

go 1.22
