package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/incremental"
	"hummingbird/internal/netlist"
	"hummingbird/internal/telemetry"
)

const pipeSrc = `
design pipe
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset -0.5ns
inst g1 BUF_X1 A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi1 Q=q1
inst g2 INV_X1 A=q1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst l2 DFF_X1 D=n3 CK=phi2 Q=q2
inst g4 BUF_X1 A=q2 Y=OUT
end
`

func newTestServer(t *testing.T, maxSessions, cacheSize int) *httptest.Server {
	t.Helper()
	srv := newServer(celllib.Default(), serverConfig{
		maxSessions: maxSessions,
		cacheSize:   cacheSize,
	})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts
}

// call issues a request and decodes the JSON response into a generic map.
func call(t *testing.T, ts *httptest.Server, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	return resp.StatusCode, m
}

func openSession(t *testing.T, ts *httptest.Server, design string) (string, map[string]any) {
	t.Helper()
	status, m := call(t, ts, "POST", "/v1/sessions", map[string]any{"design": design})
	if status != http.StatusCreated {
		t.Fatalf("open session: status %d: %v", status, m)
	}
	id, _ := m["session"].(string)
	if id == "" {
		t.Fatalf("open session: no id in %v", m)
	}
	return id, m
}

func TestSessionLifecycle(t *testing.T) {
	ts := newTestServer(t, 4, 4)

	id, m := openSession(t, ts, pipeSrc)
	if m["design"] != "pipe" {
		t.Fatalf("design name = %v", m["design"])
	}
	if ok, _ := m["ok"].(bool); !ok {
		t.Fatalf("pipe design should meet timing: %v", m)
	}
	if m["cached"] != false {
		t.Fatalf("first open should not be cached: %v", m)
	}

	status, sum := call(t, ts, "GET", "/v1/sessions/"+id, nil)
	if status != http.StatusOK || sum["edits"] != float64(0) {
		t.Fatalf("summary: %d %v", status, sum)
	}

	status, list := call(t, ts, "GET", "/v1/sessions", nil)
	if status != http.StatusOK {
		t.Fatalf("list: %d", status)
	}
	if n := len(list["sessions"].([]any)); n != 1 {
		t.Fatalf("list has %d sessions, want 1", n)
	}

	// Slow g2 down enough to violate timing; the delta report must flag it.
	status, em := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "9ns"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edits: %d %v", status, em)
	}
	if inc, _ := em["incremental"].(bool); !inc {
		t.Fatalf("single adjust should be incremental: %v", em)
	}
	if ok, _ := em["ok"].(bool); ok {
		t.Fatalf("design should now violate timing: %v", em)
	}
	if _, hasChanged := em["changed_nets"]; !hasChanged {
		t.Fatalf("delta report missing changed_nets: %v", em)
	}
	if em["changed_nets"] == nil || len(em["changed_nets"].([]any)) == 0 {
		t.Fatalf("9ns adjust changed no net slacks: %v", em)
	}

	// Undo; timing should recover and the dirty nets reappear in the delta.
	status, em = call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "-9ns"}},
	})
	if status != http.StatusOK {
		t.Fatalf("undo edits: %d %v", status, em)
	}
	if ok, _ := em["ok"].(bool); !ok {
		t.Fatalf("undo should restore timing: %v", em)
	}

	status, rep := call(t, ts, "GET", "/v1/sessions/"+id+"/report", nil)
	if status != http.StatusOK {
		t.Fatalf("report: %d %v", status, rep)
	}
	if rep["design"] != "pipe" {
		t.Fatalf("report design = %v", rep["design"])
	}

	status, cm := call(t, ts, "GET", "/v1/sessions/"+id+"/constraints?net=n2", nil)
	if status != http.StatusOK {
		t.Fatalf("constraints: %d %v", status, cm)
	}
	if nets, _ := cm["nets"].([]any); len(nets) == 0 {
		t.Fatalf("no constraint rows for n2: %v", cm)
	}

	status, closed := call(t, ts, "DELETE", "/v1/sessions/"+id, nil)
	if status != http.StatusOK || closed["closed"] != true {
		t.Fatalf("close: %d %v", status, closed)
	}
	if status, _ := call(t, ts, "GET", "/v1/sessions/"+id, nil); status != http.StatusNotFound {
		t.Fatalf("closed session still reachable: %d", status)
	}
}

// TestEditsMatchDirectEngine replays the same edit stream against the
// server and against a local engine, and compares the resulting state
// hashes and worst slacks.
func TestEditsMatchDirectEngine(t *testing.T) {
	ts := newTestServer(t, 4, 4)
	id, _ := openSession(t, ts, pipeSrc)

	d, err := netlist.ParseString(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := incremental.Open(celllib.Default(), d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	steps := []struct {
		json   map[string]any
		direct incremental.Edit
	}{
		{map[string]any{"op": "adjust", "inst": "g3", "delta": "250ps"},
			incremental.Edit{Op: incremental.Adjust, Inst: "g3", Delta: 250}},
		{map[string]any{"op": "resize", "inst": "g2", "to": "INV_X4"},
			incremental.Edit{Op: incremental.Resize, Inst: "g2", To: "INV_X4"}},
		{map[string]any{"op": "add", "inst": "tap1", "ref": "BUF_X1",
			"conns": map[string]string{"A": "n2", "Y": "tap1_out"}},
			incremental.Edit{Op: incremental.AddInst, New: &netlist.Instance{
				Name: "tap1", Ref: "BUF_X1",
				Conns: map[string]string{"A": "n2", "Y": "tap1_out"}}}},
		{map[string]any{"op": "remove", "inst": "tap1"},
			incremental.Edit{Op: incremental.RemoveInst, Inst: "tap1"}},
	}
	for i, st := range steps {
		status, em := call(t, ts, "POST", "/v1/sessions/"+id+"/edits",
			map[string]any{"edits": []map[string]any{st.json}})
		if status != http.StatusOK {
			t.Fatalf("step %d: %d %v", i, status, em)
		}
		if _, err := eng.Apply(st.direct); err != nil {
			t.Fatalf("step %d direct: %v", i, err)
		}
		_, sum := call(t, ts, "GET", "/v1/sessions/"+id, nil)
		if sum["state_hash"] != eng.StateHash() {
			t.Fatalf("step %d: server state %v diverges from direct engine %v",
				i, sum["state_hash"], eng.StateHash())
		}
		wantWorst := fmt.Sprintf("%v", timeJSON(eng.Report().WorstSlack()))
		gotWorst := fmt.Sprintf("%v", sum["worst_slack"])
		// JSON numbers decode as float64; compare textually.
		if !jsonNumEqual(sum["worst_slack"], timeJSON(eng.Report().WorstSlack())) {
			t.Fatalf("step %d: worst slack %s != %s", i, gotWorst, wantWorst)
		}
	}
}

func jsonNumEqual(got, want any) bool {
	if f, ok := got.(float64); ok {
		if w, ok := want.(int64); ok {
			return int64(f) == w
		}
	}
	return reflect.DeepEqual(got, want)
}

// TestCloseReopenHitsCache parks a closed session's analysis state and
// checks that re-opening the identical design reuses it.
func TestCloseReopenHitsCache(t *testing.T) {
	ts := newTestServer(t, 4, 4)
	id, _ := openSession(t, ts, pipeSrc)
	status, closed := call(t, ts, "DELETE", "/v1/sessions/"+id, nil)
	if status != http.StatusOK || closed["parked"] != true {
		t.Fatalf("close did not park the engine: %d %v", status, closed)
	}
	_, m := openSession(t, ts, pipeSrc)
	if m["cached"] != true {
		t.Fatalf("reopen of identical design missed the cache: %v", m)
	}
	// A different design (trailing whitespace changes nothing semantic, so
	// perturb an instance) must miss.
	_, m2 := openSession(t, ts, strings.Replace(pipeSrc, "g3 INV_X1", "g3 INV_X2", 1))
	if m2["cached"] != false {
		t.Fatalf("different design hit the cache: %v", m2)
	}
}

func TestSessionLimitAndErrors(t *testing.T) {
	ts := newTestServer(t, 1, 0)
	openSession(t, ts, pipeSrc)

	status, m := call(t, ts, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("over-limit open: %d %v", status, m)
	}
	status, m = call(t, ts, "POST", "/v1/sessions", map[string]any{"design": "design broken\n"})
	if status != http.StatusUnprocessableEntity && status != http.StatusServiceUnavailable {
		t.Fatalf("bad design: %d %v", status, m)
	}
	if status, _ := call(t, ts, "GET", "/v1/sessions/nope", nil); status != http.StatusNotFound {
		t.Fatalf("unknown session: %d", status)
	}
	if status, _ := call(t, ts, "DELETE", "/v1/sessions/nope", nil); status != http.StatusNotFound {
		t.Fatalf("delete unknown session: %d", status)
	}
}

func TestBadEditsLeaveSessionUsable(t *testing.T) {
	ts := newTestServer(t, 4, 4)
	id, _ := openSession(t, ts, pipeSrc)

	status, m := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "nope", "delta": "1ns"}},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("bad edit: %d %v", status, m)
	}
	status, m = call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "frobnicate"}},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown op: %d %v", status, m)
	}
	status, m = call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{"edits": []map[string]any{}})
	if status != http.StatusBadRequest {
		t.Fatalf("empty edits: %d %v", status, m)
	}
	// The session still answers with a valid report.
	status, em := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "100ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("good edit after bad ones: %d %v", status, em)
	}
}

// TestConcurrentSessions exercises several sessions editing in parallel;
// run with -race this doubles as the data-race check for the server.
func TestConcurrentSessions(t *testing.T) {
	ts := newTestServer(t, 8, 8)
	const nSessions = 4
	const nEdits = 6
	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for w := 0; w < nSessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			status, m := call(t, ts, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
			if status != http.StatusCreated {
				errs <- fmt.Errorf("worker %d: open: %d %v", w, status, m)
				return
			}
			id := m["session"].(string)
			for i := 0; i < nEdits; i++ {
				delta := "50ps"
				if i%2 == 1 {
					delta = "-50ps"
				}
				status, em := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
					"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": delta}},
				})
				if status != http.StatusOK {
					errs <- fmt.Errorf("worker %d edit %d: %d %v", w, i, status, em)
					return
				}
			}
			if status, m := call(t, ts, "DELETE", "/v1/sessions/"+id, nil); status != http.StatusOK {
				errs <- fmt.Errorf("worker %d close: %d %v", w, status, m)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	ts := newTestServer(t, 2, 2)
	status, h := call(t, ts, "GET", "/healthz", nil)
	if status != http.StatusOK || h["ok"] != true {
		t.Fatalf("healthz: %d %v", status, h)
	}
	status, rdy := call(t, ts, "GET", "/readyz", nil)
	if status != http.StatusOK || rdy["ready"] != true {
		t.Fatalf("readyz: %d %v", status, rdy)
	}

	// /metrics speaks Prometheus text exposition; the JSON snapshot moved
	// to /metrics.json.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	if err := telemetry.CheckExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("metrics exposition invalid: %v\n%s", err, body)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics.json not JSON: %v", err)
	}

	status, bi := call(t, ts, "GET", "/buildinfo", nil)
	if status != http.StatusOK || bi["goVersion"] == "" {
		t.Fatalf("buildinfo: %d %v", status, bi)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(2)
	d, _ := netlist.ParseString(pipeSrc)
	e1, _ := incremental.Open(celllib.Default(), d, core.DefaultOptions())
	if ev, stored := c.put("a", e1); ev != nil || !stored {
		t.Fatal("first put evicted or was rejected")
	}
	if ev, stored := c.put("b", e1); ev != nil || !stored {
		t.Fatal("second put evicted or was rejected")
	}
	if ev, stored := c.put("c", e1); ev == nil || !stored {
		t.Fatal("third put into cap-2 cache did not evict")
	}
	if c.take("a") != nil {
		t.Fatal("oldest entry survived eviction")
	}
	if c.take("b") == nil || c.take("b") != nil {
		t.Fatal("take should transfer ownership exactly once")
	}
	if ev, _ := c.put("dup", e1); ev != nil {
		t.Fatal("duplicate key put should not evict")
	}
	if ev, _ := c.put("dup", e1); ev != nil {
		t.Fatal("duplicate key re-put should not evict")
	}
}

// readBody fetches a path and returns the raw response bytes.
func readBody(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
	}
	return b
}

// TestSharedCompiledDesignConcurrency: two sessions opened on the same
// design hash must share one CompiledDesign through the compile cache, stay
// correct while analyzing and editing concurrently (the -race build guards
// the read-only sharing), and produce reports byte-identical to sessions
// that never shared anything.
func TestSharedCompiledDesignConcurrency(t *testing.T) {
	srv := newServer(celllib.Default(), serverConfig{maxSessions: 8, cacheSize: 0})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	idA, mA := openSession(t, ts, pipeSrc)
	if shared, _ := mA["shared_design"].(bool); shared {
		t.Fatalf("first open must publish, not share: %v", mA)
	}
	idB, mB := openSession(t, ts, pipeSrc)
	if shared, _ := mB["shared_design"].(bool); !shared {
		t.Fatalf("second open on the same design hash did not share: %v", mB)
	}

	// One compiled design, two session references — via the cache itself
	// and via the hb_compile_cache_* gauges a fleet would scrape.
	if d, r := srv.compile.designs(), srv.compile.totalRefs(); d != 1 || r != 2 {
		t.Fatalf("compile cache holds %d designs / %d refs, want 1 / 2", d, r)
	}
	metrics := string(readBody(t, ts, "/metrics"))
	for _, want := range []string{"hb_compile_cache_designs 1", "hb_compile_cache_refs 2"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Deterministic per-session edit scripts, run concurrently. The first
	// delay edit in each session triggers the copy-on-write unshare of the
	// shared compiled design while the other session keeps analyzing it.
	scripts := map[string][]map[string]any{
		idA: {
			{"op": "adjust", "inst": "g2", "delta": "50ps"},
			{"op": "adjust", "inst": "g3", "delta": "-25ps"},
			{"op": "adjust", "inst": "g2", "delta": "75ps"},
		},
		idB: {
			{"op": "adjust", "inst": "g3", "delta": "100ps"},
			{"op": "resize", "inst": "g2", "to": "INV_X4"},
			{"op": "adjust", "inst": "g4", "delta": "-10ps"},
		},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for id, script := range scripts {
		wg.Add(1)
		go func(id string, script []map[string]any) {
			defer wg.Done()
			for i, ed := range script {
				status, em := call(t, ts, "POST", "/v1/sessions/"+id+"/edits",
					map[string]any{"edits": []map[string]any{ed}})
				if status != http.StatusOK {
					errs <- fmt.Errorf("session %s edit %d: %d %v", id, i, status, em)
					return
				}
				// Interleave reads of the (possibly still shared) design.
				if _, sum := call(t, ts, "GET", "/v1/sessions/"+id, nil); sum["session"] != id {
					errs <- fmt.Errorf("session %s: bad summary %v", id, sum)
					return
				}
			}
		}(id, script)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Both sessions made delay edits, so both unshared their copy-on-write
	// clones and dropped their cache references.
	if d, r := srv.compile.designs(), srv.compile.totalRefs(); d != 0 || r != 0 {
		t.Fatalf("after unshare, compile cache holds %d designs / %d refs, want 0 / 0", d, r)
	}

	// Byte-identical reports versus sessions that never shared: replay each
	// script serially on a fresh server (fresh compile cache, no second
	// session, no sharing) and compare the raw report bodies.
	for id, script := range scripts {
		iso := newTestServer(t, 2, 0)
		isoID, _ := openSession(t, iso, pipeSrc)
		for i, ed := range script {
			status, em := call(t, iso, "POST", "/v1/sessions/"+isoID+"/edits",
				map[string]any{"edits": []map[string]any{ed}})
			if status != http.StatusOK {
				t.Fatalf("isolated session edit %d: %d %v", i, status, em)
			}
		}
		got := readBody(t, ts, "/v1/sessions/"+id+"/report")
		want := readBody(t, iso, "/v1/sessions/"+isoID+"/report")
		if !bytes.Equal(got, want) {
			t.Fatalf("session %s report diverges from isolated session:\n got: %s\nwant: %s", id, got, want)
		}
	}
}
