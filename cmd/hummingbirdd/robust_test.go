package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/failpoint"
	"hummingbird/internal/incremental"
	"hummingbird/internal/journal"
	"hummingbird/internal/netlist"
	"hummingbird/internal/telemetry"
)

// chainSrc builds a pipeline of n register-separated inverter stages. Its
// point is cluster count: analyses visit ~n clusters, so a sleep armed on
// the sta.cluster failpoint stretches them predictably.
func chainSrc(n int) string {
	var b strings.Builder
	b.WriteString("design chain\n")
	b.WriteString("clock phi1 period 10ns rise 0 fall 4ns\n")
	b.WriteString("clock phi2 period 10ns rise 5ns fall 9ns\n")
	b.WriteString("input IN clock phi2 edge fall offset 0\n")
	b.WriteString("output OUT clock phi2 edge fall offset -0.5ns\n")
	prev := "IN"
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "inst g%d INV_X1 A=%s Y=n%d\n", i, prev, i)
		fmt.Fprintf(&b, "inst l%d DFF_X1 D=n%d CK=phi2 Q=q%d\n", i, i, i)
		prev = fmt.Sprintf("q%d", i)
	}
	fmt.Fprintf(&b, "inst gout BUF_X1 A=%s Y=OUT\n", prev)
	b.WriteString("end\n")
	return b.String()
}

// fullEdit is an add-instance edit: never delay-only, so it forces a full
// re-analysis over every cluster.
func fullEdit(name string) map[string]any {
	return map[string]any{
		"edits": []map[string]any{{"op": "add", "inst": name, "ref": "BUF_X1",
			"conns": map[string]string{"A": "n0", "Y": name + "_out"}}},
	}
}

// newTestServerCfg is newTestServer with full control over the config.
func newTestServerCfg(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(celllib.Default(), cfg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// rawPost sends a request body verbatim (no JSON marshalling), for
// malformed-input tests.
func rawPost(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("POST %s: decode: %v", path, err)
	}
	return resp.StatusCode, m
}

func TestMalformedJSONRejected(t *testing.T) {
	ts := newTestServer(t, 4, 4)
	if status, m := rawPost(t, ts, "/v1/sessions", "{not json"); status != http.StatusBadRequest {
		t.Fatalf("malformed open: %d %v", status, m)
	}
	id, _ := openSession(t, ts, pipeSrc)
	if status, m := rawPost(t, ts, "/v1/sessions/"+id+"/edits", `{"edits": [`); status != http.StatusBadRequest {
		t.Fatalf("malformed edits: %d %v", status, m)
	}
	// The session survives the garbage.
	if status, _ := call(t, ts, "GET", "/v1/sessions/"+id, nil); status != http.StatusOK {
		t.Fatalf("session gone after malformed request: %d", status)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	ts := newTestServer(t, 4, 4)
	id, _ := openSession(t, ts, pipeSrc)
	// The edits endpoint caps bodies at 1 MiB.
	big := `{"edits":[{"op":"adjust","inst":"` + strings.Repeat("x", 2<<20) + `","delta":"1ns"}]}`
	status, m := rawPost(t, ts, "/v1/sessions/"+id+"/edits", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized edits body: %d %v", status, m)
	}
	// The open endpoint caps at 16 MiB.
	bigOpen := `{"design":"` + strings.Repeat("y", 17<<20) + `"}`
	status, m = rawPost(t, ts, "/v1/sessions", bigOpen)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized open body: %d %v", status, m)
	}
	if status, _ := call(t, ts, "GET", "/v1/sessions/"+id, nil); status != http.StatusOK {
		t.Fatalf("session gone after oversized request: %d", status)
	}
}

func TestUnknownSessionEndpoints(t *testing.T) {
	ts := newTestServer(t, 4, 4)
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/sessions/s999"},
		{"GET", "/v1/sessions/s999/report"},
		{"GET", "/v1/sessions/s999/constraints"},
		{"DELETE", "/v1/sessions/s999"},
	} {
		if status, m := call(t, ts, probe.method, probe.path, nil); status != http.StatusNotFound {
			t.Errorf("%s %s: %d %v", probe.method, probe.path, status, m)
		}
	}
	status, m := call(t, ts, "POST", "/v1/sessions/s999/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g1", "delta": "1ns"}},
	})
	if status != http.StatusNotFound {
		t.Errorf("edits on unknown session: %d %v", status, m)
	}
}

// TestEditCloseRace hammers one session with edits while closing it from
// another goroutine: every response must be a clean 200 or 404, never a
// panic or a hung request. Run with -race this doubles as the data-race
// check for the close path.
func TestEditCloseRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		ts := newTestServer(t, 4, 4)
		id, _ := openSession(t, ts, pipeSrc)
		var wg sync.WaitGroup
		errs := make(chan error, 9)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				status, m := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
					"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "10ps"}},
				})
				if status != http.StatusOK && status != http.StatusNotFound {
					errs <- fmt.Errorf("edit %d: %d %v", w, status, m)
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, m := call(t, ts, "DELETE", "/v1/sessions/"+id, nil)
			if status != http.StatusOK {
				errs <- fmt.Errorf("close: %d %v", status, m)
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		ts.Close()
	}
}

// TestPanicQuarantinesOnlyTheFaultingSession injects a panic into one
// session's edit path and checks the blast radius: that session is
// quarantined (503 with the diagnostic), the sibling session keeps
// serving, and closing the quarantined id releases it.
func TestPanicQuarantinesOnlyTheFaultingSession(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	before := mPanicsRecovered.Load()

	ts := newTestServer(t, 4, 4)
	victim, _ := openSession(t, ts, pipeSrc)
	bystander, _ := openSession(t, ts, pipeSrc)

	if err := failpoint.Arm("incr.classify", "1*panic(chaos)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisarmAll)

	status, m := call(t, ts, "POST", "/v1/sessions/"+victim+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "1ps"}},
	})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking edit: %d %v", status, m)
	}
	if got := mPanicsRecovered.Load(); got != before+1 {
		t.Fatalf("server.panics_recovered = %d, want %d", got, before+1)
	}

	// The victim is quarantined: every op fails fast with the diagnostic.
	status, m = call(t, ts, "GET", "/v1/sessions/"+victim, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("quarantined summary: %d %v", status, m)
	}
	if msg, _ := m["error"].(string); !strings.Contains(msg, "quarantined") || !strings.Contains(msg, "chaos") {
		t.Fatalf("quarantine diagnostic missing: %v", m)
	}
	status, _ = call(t, ts, "POST", "/v1/sessions/"+victim+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "1ps"}},
	})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("quarantined edit: %d", status)
	}

	// The bystander is untouched.
	status, m = call(t, ts, "POST", "/v1/sessions/"+bystander+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "1ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("bystander edit after quarantine: %d %v", status, m)
	}

	// DELETE acknowledges the fault and releases the id.
	status, m = call(t, ts, "DELETE", "/v1/sessions/"+victim, nil)
	if status != http.StatusOK || m["quarantined"] != true {
		t.Fatalf("close quarantined: %d %v", status, m)
	}
	if status, _ := call(t, ts, "GET", "/v1/sessions/"+victim, nil); status != http.StatusNotFound {
		t.Fatalf("quarantined id not released after close: %d", status)
	}
}

// TestRequestDeadlineCancelsAnalysis stalls the analyzer via the
// sta.cluster failpoint and checks a typed "cancelled" error comes back
// once the per-request deadline expires, and that the session recovers
// (the next edit rebuilds from scratch).
func TestRequestDeadlineCancelsAnalysis(t *testing.T) {
	_, ts := newTestServerCfg(t, serverConfig{
		maxSessions:    4,
		cacheSize:      0,
		requestTimeout: 150 * time.Millisecond,
	})
	id, _ := openSession(t, ts, chainSrc(25))

	// Every cluster visit sleeps 20ms; a full re-analysis of the 25-stage
	// chain cannot finish inside the 150ms deadline and must be cancelled
	// between clusters.
	if err := failpoint.Arm("sta.cluster", "sleep(20ms)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisarmAll)

	status, m := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", fullEdit("tap"))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline expiry: %d %v", status, m)
	}
	if m["kind"] != "cancelled" || m["partial"] != true {
		t.Fatalf("cancelled error not typed: %v", m)
	}

	failpoint.DisarmAll()
	status, m = call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g0", "delta": "1ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edit after cancelled analysis: %d %v", status, m)
	}
}

// TestAdmissionControlSheds fills the single in-flight slot with a stalled
// analysis and checks the next request is shed with 429 + Retry-After
// after the queue timeout.
func TestAdmissionControlSheds(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	shedBefore := mRequestsShed.Load()

	srv, ts := newTestServerCfg(t, serverConfig{
		maxSessions:  4,
		cacheSize:    0,
		maxInflight:  1,
		queueTimeout: 50 * time.Millisecond,
	})
	id, _ := openSession(t, ts, chainSrc(25))

	if err := failpoint.Arm("sta.cluster", "sleep(30ms)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisarmAll)

	slow := make(chan struct{})
	go func() {
		defer close(slow)
		call(t, ts, "POST", "/v1/sessions/"+id+"/edits", fullEdit("tap"))
	}()
	// Wait until the slow request holds the slot.
	deadline := time.Now().Add(time.Second)
	for len(srv.inflight) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never acquired the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}

	req, err := http.NewRequest("GET", ts.URL+"/v1/sessions", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := mRequestsShed.Load(); got != shedBefore+1 {
		t.Fatalf("server.requests_shed = %d, want %d", got, shedBefore+1)
	}
	<-slow
}

// TestJournalReplayRestoresSessions opens sessions against a journaling
// server, applies edits, then brings up a second server over the same
// journal directory — simulating a crash-restart — and checks the
// restored sessions are bit-identical (same state hash) to both the
// pre-crash server and an independently driven reference engine.
func TestJournalReplayRestoresSessions(t *testing.T) {
	dir := t.TempDir()
	jm1, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 4, journal: jm1})

	id, _ := openSession(t, ts, pipeSrc)
	batches := [][]map[string]any{
		{{"op": "adjust", "inst": "g2", "delta": "250ps"}},
		{{"op": "resize", "inst": "g3", "to": "INV_X4"},
			{"op": "add", "inst": "tap1", "ref": "BUF_X1",
				"conns": map[string]string{"A": "n2", "Y": "tap1_out"}}},
	}
	for i, b := range batches {
		status, m := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{"edits": b})
		if status != http.StatusOK {
			t.Fatalf("batch %d: %d %v", i, status, m)
		}
	}
	_, sum := call(t, ts, "GET", "/v1/sessions/"+id, nil)
	preCrashHash, _ := sum["state_hash"].(string)
	if preCrashHash == "" {
		t.Fatalf("no state hash: %v", sum)
	}

	// Reference: the same design and edit stream driven directly.
	d, err := netlist.ParseString(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := incremental.Open(celllib.Default(), d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	refEdits := []incremental.Edit{
		{Op: incremental.Adjust, Inst: "g2", Delta: 250},
		{Op: incremental.Resize, Inst: "g3", To: "INV_X4"},
		{Op: incremental.AddInst, New: &netlist.Instance{Name: "tap1", Ref: "BUF_X1",
			Conns: map[string]string{"A": "n2", "Y": "tap1_out"}}},
	}
	if _, err := ref.Apply(refEdits[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Apply(refEdits[1], refEdits[2]); err != nil {
		t.Fatal(err)
	}
	if ref.StateHash() != preCrashHash {
		t.Fatalf("reference %s != server %s before crash", ref.StateHash(), preCrashHash)
	}

	// "Crash": abandon the first server without closing the session, then
	// restart over the same journal directory.
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	replayBefore := mReplayed.Load()
	jm2, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 4, journal: jm2})
	if n := srv2.recoverSessions(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	if got := mReplayed.Load(); got != replayBefore+1 {
		t.Fatalf("server.sessions_replayed = %d, want %d", got, replayBefore+1)
	}

	status, sum2 := call(t, ts2, "GET", "/v1/sessions/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("replayed session missing: %d %v", status, sum2)
	}
	if sum2["state_hash"] != preCrashHash {
		t.Fatalf("replayed state %v != pre-crash %s", sum2["state_hash"], preCrashHash)
	}

	// The restored session keeps journaling: another edit, another restart.
	status, m := call(t, ts2, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "remove", "inst": "tap1"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edit after replay: %d %v", status, m)
	}
	if _, err := ref.Apply(incremental.Edit{Op: incremental.RemoveInst, Inst: "tap1"}); err != nil {
		t.Fatal(err)
	}
	jm3, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv3, ts3 := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 4, journal: jm3})
	if n := srv3.recoverSessions(); n != 1 {
		t.Fatalf("second recovery: %d sessions, want 1", n)
	}
	_, sum3 := call(t, ts3, "GET", "/v1/sessions/"+id, nil)
	if sum3["state_hash"] != ref.StateHash() {
		t.Fatalf("second replay state %v != reference %s", sum3["state_hash"], ref.StateHash())
	}

	// A new session on the restored server must not collide with the
	// replayed id.
	id2, _ := openSession(t, ts3, pipeSrc)
	if id2 == id {
		t.Fatalf("restored server reissued id %s", id)
	}
}

// TestJournalReplayToleratesTornTail appends a torn half-record to a
// session's journal (what a crash mid-write leaves behind) and checks
// replay stops at the last intact record instead of failing.
func TestJournalReplayToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	jm1, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 0, journal: jm1})
	id, _ := openSession(t, ts, pipeSrc)
	status, m := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "250ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edit: %d %v", status, m)
	}
	_, sum := call(t, ts, "GET", "/v1/sessions/"+id, nil)
	ackedHash := sum["state_hash"]

	// Tear the tail: a record that lost its end (and its fsync) to the
	// crash.
	f, err := os.OpenFile(filepath.Join(dir, id+".journal"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"kind":"edits","seq":3,"bo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jm2, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 0, journal: jm2})
	if n := srv2.recoverSessions(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	_, sum2 := call(t, ts2, "GET", "/v1/sessions/"+id, nil)
	if sum2["state_hash"] != ackedHash {
		t.Fatalf("torn-tail replay state %v != acked %v", sum2["state_hash"], ackedHash)
	}
}

// TestBrokenJournalQuarantinedOnReplay plants an undecodable journal and
// checks the restart quarantines it (rename + diagnostic) instead of
// refusing to start or silently dropping it.
func TestBrokenJournalQuarantinedOnReplay(t *testing.T) {
	dir := t.TempDir()
	jm1, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A journal whose open record references an unparsable design.
	w, err := jm1.Create("s7", &openRequest{Design: "design broken\n"})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	jm2, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 0, journal: jm2})
	if n := srv.recoverSessions(); n != 0 {
		t.Fatalf("recovered %d sessions from a broken journal", n)
	}
	status, m := call(t, ts, "GET", "/v1/sessions/s7", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("broken-journal session not quarantined: %d %v", status, m)
	}
	// The journal file was set aside, not deleted.
	if _, err := os.Stat(filepath.Join(dir, "s7.journal.quarantined")); err != nil {
		t.Fatalf("quarantined journal file missing: %v", err)
	}
	// The quarantined id is still claimed: a fresh open must not collide
	// with it (a collision would 503 every request on the new session).
	id, _ := openSession(t, ts, pipeSrc)
	if id == "s7" {
		t.Fatal("new session reused the quarantined id")
	}
	status, m = call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "1ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edit on fresh session after quarantine: %d %v", status, m)
	}
}

// TestCancelledEditKeepsJournalConsistent is the cancelled-mid-batch
// consistency check: a delay-only edit batch that times out must leave the
// live engine, the journal, and a retry all agreeing. The engine rolls the
// batch back atomically, so the 504 means "nothing happened" — the summary
// hash is unchanged, a crash-replay reproduces the live state, and the
// client's retry applies the batch exactly once.
func TestCancelledEditKeepsJournalConsistent(t *testing.T) {
	dir := t.TempDir()
	jm1, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServerCfg(t, serverConfig{
		maxSessions:    4,
		cacheSize:      0,
		journal:        jm1,
		requestTimeout: 50 * time.Millisecond,
	})
	id, _ := openSession(t, ts, pipeSrc)
	_, sum := call(t, ts, "GET", "/v1/sessions/"+id, nil)
	openHash, _ := sum["state_hash"].(string)
	if openHash == "" {
		t.Fatalf("no state hash: %v", sum)
	}

	// The first cluster visit sleeps past the whole 50ms request deadline,
	// so the incremental recompute is cancelled after the edits were
	// already patched into the engine — the rollback path under test.
	if err := failpoint.Arm("sta.cluster", "sleep(150ms)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisarmAll)

	batch := map[string]any{
		"edits": []map[string]any{
			{"op": "adjust", "inst": "g2", "delta": "250ps"},
			{"op": "resize", "inst": "g3", "to": "INV_X4"},
		},
	}
	status, m := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", batch)
	if status != http.StatusGatewayTimeout || m["kind"] != "cancelled" {
		t.Fatalf("cancelled edit: %d %v", status, m)
	}

	// Nothing happened: the live state still matches the pre-batch hash.
	failpoint.DisarmAll()
	_, sum = call(t, ts, "GET", "/v1/sessions/"+id, nil)
	if sum["state_hash"] != openHash {
		t.Fatalf("cancelled batch leaked into live state: %v != %s", sum["state_hash"], openHash)
	}

	// The retry applies the batch exactly once.
	status, m = call(t, ts, "POST", "/v1/sessions/"+id+"/edits", batch)
	if status != http.StatusOK {
		t.Fatalf("retry after cancel: %d %v", status, m)
	}
	_, sum = call(t, ts, "GET", "/v1/sessions/"+id, nil)
	liveHash, _ := sum["state_hash"].(string)

	// Crash-restart: the journal must reproduce the live state, which
	// would fail if the cancelled attempt had mutated the engine without
	// being journalled (or been journalled without taking effect).
	jm2, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 0, journal: jm2})
	if n := srv2.recoverSessions(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	_, sum2 := call(t, ts2, "GET", "/v1/sessions/"+id, nil)
	if sum2["state_hash"] != liveHash {
		t.Fatalf("replayed state %v != live %s", sum2["state_hash"], liveHash)
	}

	// Reference: the same design with the batch applied once. Equality
	// here is the double-apply check.
	d, err := netlist.ParseString(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := incremental.Open(celllib.Default(), d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Apply(
		incremental.Edit{Op: incremental.Adjust, Inst: "g2", Delta: 250},
		incremental.Edit{Op: incremental.Resize, Inst: "g3", To: "INV_X4"},
	); err != nil {
		t.Fatal(err)
	}
	if ref.StateHash() != liveHash {
		t.Fatalf("reference %s != live %s (batch applied twice?)", ref.StateHash(), liveHash)
	}

	// The replayed session keeps working and tracking the reference.
	follow := map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g1", "delta": "50ps"}},
	}
	if status, m := call(t, ts2, "POST", "/v1/sessions/"+id+"/edits", follow); status != http.StatusOK {
		t.Fatalf("edit after replay: %d %v", status, m)
	}
	if _, err := ref.Apply(incremental.Edit{Op: incremental.Adjust, Inst: "g1", Delta: 50}); err != nil {
		t.Fatal(err)
	}
	_, sum2 = call(t, ts2, "GET", "/v1/sessions/"+id, nil)
	if sum2["state_hash"] != ref.StateHash() {
		t.Fatalf("post-replay edit diverged: %v != %s", sum2["state_hash"], ref.StateHash())
	}
}

// TestRecoveryRewriteFailureQuarantines fails the recovery-time journal
// compaction and checks the daemon quarantines the session rather than
// serving it without durability — and that the set-aside journal still
// holds every acknowledged record, so a later restart can recover it.
func TestRecoveryRewriteFailureQuarantines(t *testing.T) {
	dir := t.TempDir()
	jm1, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 0, journal: jm1})
	id, _ := openSession(t, ts, pipeSrc)
	status, m := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "250ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edit: %d %v", status, m)
	}
	_, sum := call(t, ts, "GET", "/v1/sessions/"+id, nil)
	ackedHash := sum["state_hash"]

	// "Crash", then fail the compaction rewrite during recovery.
	jm2, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("journal.append", "1*error(disk full)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisarmAll)
	srv2, ts2 := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 0, journal: jm2})
	if n := srv2.recoverSessions(); n != 0 {
		t.Fatalf("recovered %d sessions despite rewrite failure", n)
	}
	if status, _ := call(t, ts2, "GET", "/v1/sessions/"+id, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("session served without durability: %d", status)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".journal.quarantined")); err != nil {
		t.Fatalf("quarantined journal missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".journal")); !os.IsNotExist(err) {
		t.Fatalf("original journal still present: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".journal.tmp")); !os.IsNotExist(err) {
		t.Fatalf("rewrite temp left behind: %v", err)
	}

	// The quarantined journal lost nothing: put it back and a healthy
	// restart replays the full acknowledged history.
	failpoint.DisarmAll()
	if err := os.Rename(
		filepath.Join(dir, id+".journal.quarantined"),
		filepath.Join(dir, id+".journal"),
	); err != nil {
		t.Fatal(err)
	}
	jm3, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv3, ts3 := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 0, journal: jm3})
	if n := srv3.recoverSessions(); n != 1 {
		t.Fatalf("recovery after restore: %d sessions, want 1", n)
	}
	_, sum3 := call(t, ts3, "GET", "/v1/sessions/"+id, nil)
	if sum3["state_hash"] != ackedHash {
		t.Fatalf("restored replay state %v != acked %v", sum3["state_hash"], ackedHash)
	}
}

// TestCleanCloseDropsJournal checks a deliberate DELETE removes the
// session's journal, so a restart does not resurrect it.
func TestCleanCloseDropsJournal(t *testing.T) {
	dir := t.TempDir()
	jm1, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 4, journal: jm1})
	id, _ := openSession(t, ts, pipeSrc)
	if status, m := call(t, ts, "DELETE", "/v1/sessions/"+id, nil); status != http.StatusOK {
		t.Fatalf("close: %d %v", status, m)
	}
	jm2, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, _ := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 4, journal: jm2})
	if n := srv2.recoverSessions(); n != 0 {
		t.Fatalf("closed session resurrected: %d", n)
	}
}

// TestFailpointEndpointsGated checks /debug/failpoints is a 404 without
// the flag and functional with it.
func TestFailpointEndpointsGated(t *testing.T) {
	_, tsOff := newTestServerCfg(t, serverConfig{maxSessions: 1, cacheSize: 0})
	resp, err := tsOff.Client().Get(tsOff.URL + "/debug/failpoints")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("failpoints served without the flag: %d", resp.StatusCode)
	}

	_, tsOn := newTestServerCfg(t, serverConfig{maxSessions: 1, cacheSize: 0, failpoints: true})
	t.Cleanup(failpoint.DisarmAll)
	req, err := http.NewRequest("PUT", tsOn.URL+"/debug/failpoints/sta.cluster", strings.NewReader("1*error(hi)"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = tsOn.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arm via HTTP: %d", resp.StatusCode)
	}
	if failpoint.List()["sta.cluster"] == "" {
		t.Fatal("failpoint not armed")
	}
	req, _ = http.NewRequest("DELETE", tsOn.URL+"/debug/failpoints/sta.cluster", nil)
	resp, err = tsOn.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if failpoint.List()["sta.cluster"] != "" {
		t.Fatal("failpoint not disarmed")
	}
	// Bad spec is rejected.
	req, _ = http.NewRequest("PUT", tsOn.URL+"/debug/failpoints/x", strings.NewReader("frobnicate"))
	resp, err = tsOn.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad spec accepted: %d", resp.StatusCode)
	}
}

// TestJournalAppendFailureQuarantines arms the journal.append failpoint so
// the durability write fails after a successful apply: the session must be
// quarantined (its disk state no longer matches memory), and the client
// must see a 503, not a silent ack.
func TestJournalAppendFailureQuarantines(t *testing.T) {
	dir := t.TempDir()
	jm, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 0, journal: jm})
	id, _ := openSession(t, ts, pipeSrc)

	if err := failpoint.Arm("journal.append", "1*error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisarmAll)
	status, m := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "1ps"}},
	})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("failed append: %d %v", status, m)
	}
	if status, _ := call(t, ts, "GET", "/v1/sessions/"+id, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("session not quarantined after append failure: %d", status)
	}
}
