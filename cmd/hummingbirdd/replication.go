// Fleet replication endpoints: this file is the daemon side of
// internal/fleet's journal streaming and hot failover.
//
//	POST /v1/replication/sessions/{id}/frames   append streamed frames to a standby journal
//	POST /v1/replication/sessions/{id}/adopt    promote a standby (or parked) journal to a live session
//	POST /v1/replication/sessions/{id}/release  drop a standby journal
//	POST /v1/replication/sessions/{id}/forget   drop a parked session's live journal (post-migration)
//	POST /v1/sessions/{id}/park                 park a live session, keep its journal (migration step 1)
//	GET  /v1/sessions/{id}/journal              export a session's framed journal bytes
//
// A replica holds standby journals — byte-identical copies of sessions
// whose primary is another replica — under <journal-dir>/standby. They
// are written frame-at-a-time as the primary streams commits, and are
// promoted into the live journal directory (rename + replay) when the
// router orders an adopt after the primary dies or drains.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hummingbird/internal/fleet"
	"hummingbird/internal/incremental"
	"hummingbird/internal/journal"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/flight"
)

var (
	mFramesReceived  = telemetry.NewCounter("fleet.frames_received")
	mFramesRejected  = telemetry.NewCounter("fleet.frames_rejected")
	mSessionsAdopted = telemetry.NewCounter("fleet.sessions_adopted")
	mSessionsParked  = telemetry.NewCounter("fleet.sessions_parked")
	mStandbyWarms    = telemetry.NewCounter("fleet.standby_warms")
)

// maxReplicationBody bounds one frames POST (a whole journal can arrive
// in one push during migration).
const maxReplicationBody = 64 << 20

// standbyStore owns the standby journals replicated from peers. It
// tracks each file's next expected sequence in memory (recovered lazily
// from the file itself after a restart) so appends stay O(frame), and
// serializes all mutations under one mutex — replication throughput is
// bounded by the network, not this lock.
type standbyStore struct {
	dir  string
	mu   sync.Mutex
	next map[string]int64
}

func newStandbyStore(journalDir string) (*standbyStore, error) {
	dir := filepath.Join(journalDir, "standby")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("standby dir: %w", err)
	}
	return &standbyStore{dir: dir, next: make(map[string]int64)}, nil
}

func (st *standbyStore) path(id string) string {
	return filepath.Join(st.dir, id+".journal")
}

// loadNext returns the next expected sequence for the session's standby
// journal; on first touch after a restart it recounts the intact frames
// on disk. Caller holds st.mu.
func (st *standbyStore) loadNext(id string) int64 {
	if n, ok := st.next[id]; ok {
		return n
	}
	frames, err := journal.ReadFrames(st.path(id))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		// Unreadable standby: treat as empty; the primary will re-push
		// from sequence 0.
		frames = nil
	}
	st.next[id] = int64(len(frames))
	return st.next[id]
}

// appendFrames validates and appends streamed frames. firstSeq is the
// sequence of frames[0]. Frames the standby already holds are skipped
// (at-least-once delivery); a gap returns conflict=true with the
// sequence the primary must resend from. The returned next is always
// the standby's next expected sequence.
func (st *standbyStore) appendFrames(id string, frames [][]byte, firstSeq int64) (next int64, conflict bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	next = st.loadNext(id)
	if firstSeq > next {
		return next, true, nil
	}
	skip := next - firstSeq
	if skip >= int64(len(frames)) {
		return next, false, nil // everything already held
	}
	fresh := frames[skip:]
	for i, fr := range fresh {
		seq := next + int64(i)
		kind, cerr := journal.CheckFrame(fr, seq)
		if cerr != nil {
			return next, false, cerr
		}
		if seq == 0 && kind != journal.KindOpen {
			return next, false, fmt.Errorf("first frame kind %q, want %q", kind, journal.KindOpen)
		}
	}
	f, err := os.OpenFile(st.path(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return next, false, err
	}
	defer f.Close()
	if _, err := f.Write(bytes.Join(fresh, nil)); err != nil {
		return next, false, err
	}
	if err := f.Sync(); err != nil {
		return next, false, err
	}
	next += int64(len(fresh))
	st.next[id] = next
	return next, false, nil
}

// release drops the session's standby journal.
func (st *standbyStore) release(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.next, id)
	os.Remove(st.path(id))
}

// sessionIDs lists the sessions with a standby journal on disk, sorted.
func (st *standbyStore) sessionIDs() []string {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	ids := make([]string, 0, len(ents))
	for _, e := range ents {
		if name, ok := strings.CutSuffix(e.Name(), ".journal"); ok && sessionIDOK(name) {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	return ids
}

// promote moves the standby journal into the live journal location so
// the ordinary replay path can restore the session. Returns
// os.ErrNotExist when there is no standby for the id.
func (st *standbyStore) promote(id, livePath string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := os.Rename(st.path(id), livePath); err != nil {
		return err
	}
	delete(st.next, id)
	// Best-effort directory syncs: the rename must survive a crash or
	// the session would silently vanish from both places.
	for _, d := range []string{st.dir, filepath.Dir(livePath)} {
		if dh, err := os.Open(d); err == nil {
			dh.Sync()
			dh.Close()
		}
	}
	return nil
}

// sessionIDOK guards replication ids that arrive over the network and
// become file names: the daemon's own id alphabet plus '-' (replica
// prefixes), nothing that can traverse paths.
func sessionIDOK(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// splitFrames cuts a replication body into newline-terminated frames.
func splitFrames(body []byte) [][]byte {
	var frames [][]byte
	for len(body) > 0 {
		i := bytes.IndexByte(body, '\n')
		if i < 0 {
			frames = append(frames, body) // torn tail; CheckFrame rejects it
			break
		}
		frames = append(frames, body[:i+1])
		body = body[i+1:]
	}
	return frames
}

// attachStreams wires a session's journal writer to its replication
// chain: one stream per peer, each primed with every frame already in
// the file, fanned out behind one journal sink. Called before the
// session becomes visible to concurrent appenders, so no committed
// frame can fall between the priming read and the sink attach. The
// initial flush happens off the request path.
func (s *server) attachStreams(id string, jw *journal.Writer, peers []fleet.Member) {
	if s.streams == nil || jw == nil || len(peers) == 0 {
		return
	}
	primed, err := journal.ReadFrames(jw.Path())
	if err != nil {
		fmt.Fprintf(s.cfg.errLog, "hummingbirdd: prime stream %s: %v\n", id, err)
		return
	}
	hops := make([]*fleet.SessionStream, 0, len(peers))
	for _, p := range peers {
		h := fleet.NewSessionStream(s.streamClient, strings.TrimRight(p.URL, "/"), p.ID, id, primed)
		h.SetFlightRecorder(s.flight)
		hops = append(hops, h)
	}
	ms := fleet.NewMultiStream(hops...)
	jw.SetSink(ms)
	s.streams.Attach(id, ms)
	go ms.Flush()
}

// detachStream removes and closes the session's replication stream.
func (s *server) detachStream(id string) {
	if s.streams == nil {
		return
	}
	if st := s.streams.Detach(id); st != nil {
		st.Close()
	}
}

// handleReplFrames appends streamed journal frames to the session's
// standby journal. Responses always carry the standby's next expected
// sequence: 200 when the push is (now) fully held, 409 on a gap the
// primary must refill.
func (s *server) handleReplFrames(w http.ResponseWriter, r *http.Request) {
	if s.standby == nil {
		httpError(w, http.StatusServiceUnavailable, "replication requires -journal-dir")
		return
	}
	id := r.PathValue("id")
	if !sessionIDOK(id) {
		httpError(w, http.StatusBadRequest, "bad session id")
		return
	}
	firstSeq, err := strconv.ParseInt(r.Header.Get(fleet.FirstSeqHeader), 10, 64)
	if err != nil || firstSeq < 0 {
		httpError(w, http.StatusBadRequest, "missing or bad %s header", fleet.FirstSeqHeader)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicationBody))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "read frames: %v", err)
		return
	}
	frames := splitFrames(body)
	if len(frames) == 0 {
		st := s.standby
		st.mu.Lock()
		next := st.loadNext(id)
		st.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"session": id, "next": next})
		return
	}
	next, conflict, err := s.standby.appendFrames(id, frames, firstSeq)
	switch {
	case err != nil:
		mFramesRejected.Inc()
		httpError(w, http.StatusUnprocessableEntity, "frame rejected: %v", err)
	case conflict:
		writeJSON(w, http.StatusConflict, map[string]any{"session": id, "next": next})
	default:
		mFramesReceived.Add(int64(len(frames)))
		if firstSeq == 0 && next > 0 {
			// A push that began at the open record: pre-warm the shared
			// compile off the request path, so an adopt after the primary
			// dies skips the cold elaboration.
			go s.warmStandby(id, frames[0])
		}
		writeJSON(w, http.StatusOK, map[string]any{"session": id, "next": next})
	}
}

// warmStandby pre-warms the shared CompiledDesign named by a standby
// journal's open frame, holding one compile-cache reference in s.warm
// until the standby is adopted or released. One warm attempt per
// standby: concurrent re-pushes of frame 0 are deduplicated by the
// reservation entry.
func (s *server) warmStandby(id string, frame0 []byte) {
	s.warmMu.Lock()
	_, held := s.warm[id]
	if !held {
		s.warm[id] = nil // reserve the slot while the compile runs
	}
	s.warmMu.Unlock()
	if held {
		return
	}
	release := s.buildWarm(frame0)
	s.warmMu.Lock()
	if _, still := s.warm[id]; still && release != nil {
		s.warm[id] = release
		s.warmMu.Unlock()
		return
	}
	if release == nil {
		delete(s.warm, id) // failed warm; a later frame-0 push may retry
		s.warmMu.Unlock()
		return
	}
	// The standby was adopted or released while compiling; drop the hold.
	s.warmMu.Unlock()
	release()
}

// buildWarm resolves a compile-cache hold for the design in an open
// frame: an existing cached compile is referenced, otherwise the design
// is compiled once and published. Returns nil when the frame does not
// yield a usable design.
func (s *server) buildWarm(frame0 []byte) func() {
	rec, err := journal.ParseFrame(frame0)
	if err != nil || rec.Kind != journal.KindOpen {
		return nil
	}
	var req openRequest
	if json.Unmarshal(rec.Body, &req) != nil {
		return nil
	}
	design, opts, err := s.parseOpen(&req)
	if err != nil {
		return nil
	}
	key := incremental.StateKey(design, opts.Adjustments)
	if cd, release := s.compile.acquire(key); cd != nil {
		mStandbyWarms.Inc()
		return release
	}
	eng, err := incremental.Open(s.lib, design, opts)
	if err != nil {
		return nil
	}
	// Only the immutable CompiledDesign matters; the throwaway engine's
	// analysis state is dropped with it.
	if release, ok := s.compile.publish(key, eng.CompiledDesign()); ok {
		mStandbyWarms.Inc()
		return release
	}
	if _, release := s.compile.acquire(key); release != nil {
		// A racing open published first; hold a reference on that one.
		mStandbyWarms.Inc()
		return release
	}
	return nil
}

// dropWarm releases the session's warm compile hold, if any.
func (s *server) dropWarm(id string) {
	s.warmMu.Lock()
	release := s.warm[id]
	delete(s.warm, id)
	s.warmMu.Unlock()
	if release != nil {
		release()
	}
}

// handleReplAdopt promotes a session onto this replica: from its
// streamed standby journal (failover), or from a live-directory journal
// left by park (migration rollback / drain hand-off). The journal is
// replayed and compacted exactly like crash recovery, so the adopted
// session's analysis state is bit-identical to a single-replica replay
// of the same journal. Idempotent: adopting a session this replica
// already serves reports already=true.
func (s *server) handleReplAdopt(w http.ResponseWriter, r *http.Request) {
	if s.cfg.journal == nil || s.standby == nil {
		httpError(w, http.StatusServiceUnavailable, "replication requires -journal-dir")
		return
	}
	id := r.PathValue("id")
	if !sessionIDOK(id) {
		httpError(w, http.StatusBadRequest, "bad session id")
		return
	}
	// Serialize adopts: two racing adopts for one id must not both replay.
	s.adoptMu.Lock()
	defer s.adoptMu.Unlock()
	if ss := s.session(id); ss != nil {
		writeJSON(w, http.StatusOK, map[string]any{"session": id, "adopted": false, "already": true})
		return
	}
	if diag, quarantined := s.quarantineInfo(id); quarantined {
		httpError(w, http.StatusConflict, "session %s quarantined here: %s", id, diag)
		return
	}
	livePath := s.cfg.journal.Path(id)
	if _, err := os.Stat(livePath); err != nil {
		if err := s.standby.promote(id, livePath); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				httpError(w, http.StatusNotFound, "no journal for session %s on this replica", id)
				return
			}
			httpError(w, http.StatusInternalServerError, "promote standby %s: %v", id, err)
			return
		}
	}
	ss, req, batches, err := s.replaySession(id)
	if err != nil {
		s.quarantineUnserved(id, fmt.Sprintf("adopt replay failed: %v", err))
		httpError(w, http.StatusInternalServerError, "adopt %s: replay: %v", id, err)
		return
	}
	jw, err := s.cfg.journal.Rewrite(id, req, batches)
	if err != nil {
		s.quarantineUnserved(id, fmt.Sprintf("adopt rewrite failed: %v", err))
		httpError(w, http.StatusInternalServerError, "adopt %s: rewrite: %v", id, err)
		return
	}
	ss.jw = jw
	// Onward replication toward the chain the router designated;
	// attached before the session is visible so no frame is skipped.
	s.attachStreams(id, jw, fleet.ParsePeers(r.Header))
	// The warm compile hold served its purpose: the replay above acquired
	// its own reference, so releasing here frees nothing prematurely.
	s.dropWarm(id)

	s.mu.Lock()
	if len(s.sessions) >= s.cfg.maxSessions {
		s.mu.Unlock()
		s.detachStream(id)
		jw.Close()
		httpError(w, http.StatusServiceUnavailable, "session limit (%d) reached", s.cfg.maxSessions)
		return
	}
	s.sessions[id] = ss
	// An adopted id bearing this replica's own prefix (the session came
	// home after a failover round-trip) must keep nextID ahead of it.
	if rest, ok := strings.CutPrefix(id, s.sidPrefix()); ok {
		if n, err := strconv.Atoi(rest); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	s.mu.Unlock()
	mSessionsAdopted.Inc()
	fmt.Fprintf(s.cfg.errLog, "hummingbirdd: adopted session %s (%d records)\n", id, len(batches)+1)
	traceID, _ := inboundTraceID(r)
	s.flight.Record(flight.Info, "repl.adopt", id, traceID, "adopted (%d records)", len(batches)+1)
	writeJSON(w, http.StatusOK, map[string]any{
		"session": id, "adopted": true, "records": len(batches) + 1,
	})
}

// handleReplRelease drops the session's standby journal (the session
// closed, or re-homed so this replica is no longer its peer).
func (s *server) handleReplRelease(w http.ResponseWriter, r *http.Request) {
	if s.standby == nil {
		httpError(w, http.StatusServiceUnavailable, "replication requires -journal-dir")
		return
	}
	id := r.PathValue("id")
	if !sessionIDOK(id) {
		httpError(w, http.StatusBadRequest, "bad session id")
		return
	}
	s.standby.release(id)
	s.dropWarm(id)
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "released": true})
}

// handleReplInventory reports everything this replica holds for the
// fleet: live sessions — with design key, journal sequence, and active
// stream peers — and standby journals with their contiguous frame
// count. A restarted router rebuilds its whole pin table from these.
func (s *server) handleReplInventory(w http.ResponseWriter, r *http.Request) {
	if s.cfg.journal == nil {
		httpError(w, http.StatusServiceUnavailable, "replication requires -journal-dir")
		return
	}
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	live := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		ss := s.session(id)
		if ss == nil {
			continue
		}
		ss.mu.Lock()
		jw, key := ss.jw, ss.designKey
		ss.mu.Unlock()
		var seq int64
		if jw != nil {
			seq = jw.Seq()
		}
		var peers []string
		if s.streams != nil {
			if ms := s.streams.Get(id); ms != nil {
				peers = ms.Peers()
			}
		}
		live = append(live, map[string]any{
			"session": id, "seq": seq, "key": key, "peers": peers,
		})
	}
	standby := make([]map[string]any, 0)
	if st := s.standby; st != nil {
		for _, id := range st.sessionIDs() {
			st.mu.Lock()
			next := st.loadNext(id)
			st.mu.Unlock()
			key := ""
			if frames, err := journal.ReadFrames(st.path(id)); err == nil && len(frames) > 0 {
				if rec, rerr := journal.ParseFrame(frames[0]); rerr == nil && rec.Kind == journal.KindOpen {
					key = fleet.DesignKey(rec.Body)
				}
			}
			standby = append(standby, map[string]any{"session": id, "next": next, "key": key})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"replica": s.cfg.replicaID, "live": live, "standby": standby,
	})
}

// handleReplForget removes the live-directory journal of a session that
// is not being served here (parked, then migrated away). Refuses while
// the session is live — that journal is the session's durability.
func (s *server) handleReplForget(w http.ResponseWriter, r *http.Request) {
	if s.cfg.journal == nil {
		httpError(w, http.StatusServiceUnavailable, "replication requires -journal-dir")
		return
	}
	id := r.PathValue("id")
	if !sessionIDOK(id) {
		httpError(w, http.StatusBadRequest, "bad session id")
		return
	}
	if ss := s.session(id); ss != nil {
		httpError(w, http.StatusConflict, "session %s is live on this replica", id)
		return
	}
	if err := s.cfg.journal.Remove(id); err != nil {
		httpError(w, http.StatusInternalServerError, "remove journal %s: %v", id, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "forgotten": true})
}

// handlePark closes a session's live serving state while keeping its
// journal on disk: the engine parks in the LRU (same as close), the
// replication stream is flushed and detached, and the response reports
// residual stream lag so the router knows whether the peer's standby is
// complete. Step one of a planned migration.
func (s *server) handlePark(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ss := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	lag, peer := 0, ""
	var hops []fleet.HopLag
	if s.streams != nil {
		if st := s.streams.Detach(id); st != nil {
			st.Flush()
			hops = st.HopLags()
			lag = st.Lag()
			if len(hops) > 0 {
				peer = hops[0].Peer
			}
			st.Close()
		}
	}
	ss.mu.Lock()
	eng := ss.eng
	ss.eng = nil
	jw := ss.jw
	ss.jw = nil
	ss.mu.Unlock()
	// Unlike close, the journal file stays: it is the session's truth for
	// the adopt that follows.
	if jw != nil {
		jw.Close()
	}
	parked := s.parkEngine(eng)
	mSessionsParked.Inc()
	traceID, _ := inboundTraceID(r)
	s.flight.Record(flight.Info, "session.park", id, traceID, "parked (stream lag %d)", lag)
	writeJSON(w, http.StatusOK, map[string]any{
		"session": id, "parked": parked, "stream_lag": lag, "stream_peer": peer, "hops": hops,
	})
}

// handleJournalExport serves the session's framed journal bytes — live
// journal first (flushed before reading), then standby. The router uses
// it to hand a lagging or unstreamed journal to a migration target.
func (s *server) handleJournalExport(w http.ResponseWriter, r *http.Request) {
	if s.cfg.journal == nil {
		httpError(w, http.StatusServiceUnavailable, "journaling is off")
		return
	}
	id := r.PathValue("id")
	if !sessionIDOK(id) {
		httpError(w, http.StatusBadRequest, "bad session id")
		return
	}
	if ss := s.session(id); ss != nil {
		ss.mu.Lock()
		jw := ss.jw
		ss.mu.Unlock()
		if jw != nil {
			jw.Sync()
		}
	}
	frames, err := journal.ReadFrames(s.cfg.journal.Path(id))
	if errors.Is(err, os.ErrNotExist) && s.standby != nil {
		frames, err = journal.ReadFrames(s.standby.path(id))
	}
	if err != nil {
		httpError(w, http.StatusNotFound, "no journal for session %s: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Hb-Frames", strconv.Itoa(len(frames)))
	w.WriteHeader(http.StatusOK)
	w.Write(bytes.Join(frames, nil))
}

// parkEngine transfers a detached engine into the parked-state LRU;
// reports whether the cache kept it. Engines without a report (never
// analyzed), cache rejections, and LRU evictions release their
// shared-design reference — ownership mirrors handleClose exactly.
func (s *server) parkEngine(eng *incremental.Engine) bool {
	if eng == nil {
		return false
	}
	if eng.Report() == nil {
		eng.ReleaseShared()
		return false
	}
	s.mu.Lock()
	evicted, stored := s.cache.put(eng.StateHash(), eng)
	s.mu.Unlock()
	if !stored {
		eng.ReleaseShared()
	}
	if evicted != nil {
		mCacheEvictions.Inc()
		evicted.ReleaseShared()
	}
	return stored
}
