// Fleet failover tests: real hummingbirdd subprocesses (via the
// proc_test.go harness) behind an in-process fleet router. These run
// untagged — and therefore under `go test -race ./...` — because the
// failure they inject is process death, not a failpoint: SIGKILL a
// replica while a fleet of sessions is live and check the displaced
// sessions re-home onto their journal-stream peer with no state loss,
// while sessions on the survivor never see a 5xx.
package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hummingbird/internal/fleet"
)

// fleetFront wires an in-process router over the given daemons and
// serves it on an httptest listener.
func fleetFront(t *testing.T, members []fleet.Member) (*fleet.Router, *httptest.Server) {
	t.Helper()
	router, err := fleet.NewRouter(fleet.Config{
		Members:        members,
		HealthInterval: 100 * time.Millisecond,
		FailAfter:      2,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	t.Cleanup(router.Close)
	front := httptest.NewServer(router.Handler())
	t.Cleanup(front.Close)
	return router, front
}

// fleetDo issues one request against the router frontend and returns the
// status, headers and raw body.
func fleetDo(t *testing.T, method, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// fleetJSON is fleetDo with the body decoded as a JSON object.
func fleetJSON(t *testing.T, method, url string, body any) (int, http.Header, map[string]any) {
	t.Helper()
	status, hdr, raw := fleetDo(t, method, url, body)
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
	return status, hdr, m
}

func adjustEdit(inst string, delta string) map[string]any {
	return map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": inst, "delta": delta}},
	}
}

// fleetSession is one session opened through the router.
type fleetSession struct {
	id      string
	replica string
	design  string
}

// openFleetSessions opens sessions with distinct designs until both
// replicas hold at least `want` each (distinct design → distinct ring
// key, so placement spreads).
func openFleetSessions(t *testing.T, frontURL string, want int) []fleetSession {
	t.Helper()
	var out []fleetSession
	byReplica := map[string]int{}
	for k := 5; k < 64; k++ {
		if byReplica["r1"] >= want && byReplica["r2"] >= want {
			break
		}
		design := chainSrc(k)
		status, hdr, m := fleetJSON(t, "POST", frontURL+"/v1/sessions", map[string]any{"design": design})
		if status != http.StatusCreated {
			t.Fatalf("open chain(%d): %d %v", k, status, m)
		}
		replica := hdr.Get("X-Hb-Replica")
		if replica == "" {
			t.Fatal("open response lacks X-Hb-Replica")
		}
		out = append(out, fleetSession{id: m["session"].(string), replica: replica, design: design})
		byReplica[replica]++
	}
	if byReplica["r1"] < want || byReplica["r2"] < want {
		t.Fatalf("placement never spread: %v", byReplica)
	}
	return out
}

// TestFleetFailoverServesDisplacedSessions is the fleet acceptance
// chaos test: SIGKILL one replica while its sessions have live edits in
// flight, then check (a) the displaced session's next request is served
// by the journal-stream peer under the same session id, (b) the peer's
// slack report is bit-identical to a fresh single daemon replaying a
// copy of the same journal, and (c) sessions pinned to the survivor
// never saw a 5xx.
func TestFleetFailoverServesDisplacedSessions(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	d1 := startDaemon(t, "-journal-dir", dir1, "-replica-id", "r1")
	d2 := startDaemon(t, "-journal-dir", dir2, "-replica-id", "r2")
	_, front := fleetFront(t, []fleet.Member{{ID: "r1", URL: d1.base}, {ID: "r2", URL: d2.base}})

	sessions := openFleetSessions(t, front.URL, 2)

	// Same design must land on the same replica (that is the point of
	// hashing on the design: a shared compile).
	first := sessions[0]
	if status, hdr, _ := fleetJSON(t, "POST", front.URL+"/v1/sessions", map[string]any{"design": first.design}); status != http.StatusCreated {
		t.Fatalf("duplicate-design open: %d", status)
	} else if got := hdr.Get("X-Hb-Replica"); got != first.replica {
		t.Fatalf("same design split across replicas: %s vs %s", got, first.replica)
	}

	// One acked edit per session, so every journal has frames to stream.
	for _, s := range sessions {
		status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+s.id+"/edits", adjustEdit("g1", "100ps"))
		if status != http.StatusOK {
			t.Fatalf("edit %s: %d %v", s.id, status, m)
		}
	}
	var victims, bystanders []fleetSession
	for _, s := range sessions {
		if s.replica == "r1" {
			victims = append(victims, s)
		} else {
			bystanders = append(bystanders, s)
		}
	}

	// Hammer the survivor's sessions for the whole kill window; any 5xx
	// on a non-displaced session fails the test.
	var server5xx atomic.Int64
	stopHammer := make(chan struct{})
	var hammerWG sync.WaitGroup
	hammerWG.Add(1)
	go func() {
		defer hammerWG.Done()
		client := &http.Client{Timeout: 10 * time.Second}
		for i := 0; ; i++ {
			select {
			case <-stopHammer:
				return
			default:
			}
			s := bystanders[i%len(bystanders)]
			resp, err := client.Get(front.URL + "/v1/sessions/" + s.id)
			if err != nil {
				continue // router gone would fail elsewhere
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				server5xx.Add(1)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// SIGKILL r1 while an edit batch races toward it. The batch may have
	// been acked (200) or died with the replica — then the router answers
	// 409 (retry the batch) because blind replay could double-apply. It
	// must never surface a 5xx.
	victim := victims[0]
	inflight := make(chan int, 1)
	go func() {
		b, _ := json.Marshal(adjustEdit("g2", "50ps"))
		resp, err := http.Post(front.URL+"/v1/sessions/"+victim.id+"/edits", "application/json", bytes.NewReader(b))
		if err != nil {
			inflight <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	time.Sleep(2 * time.Millisecond)
	d1.kill9(t)
	inflightStatus := <-inflight
	if inflightStatus >= 500 {
		t.Errorf("in-flight edit during kill answered %d; want 2xx or 409", inflightStatus)
	}

	// The displaced session's next request must succeed, served by the
	// peer under the same id.
	status, hdr, m := fleetJSON(t, "GET", front.URL+"/v1/sessions/"+victim.id, nil)
	if status != http.StatusOK {
		t.Fatalf("displaced session next request: %d %v", status, m)
	}
	if got := hdr.Get("X-Hb-Replica"); got != "r2" {
		t.Fatalf("displaced session served by %q, want r2", got)
	}
	if m["session"] != victim.id {
		t.Fatalf("displaced session identity changed: %v", m)
	}

	// Every other displaced session re-homes too.
	for _, s := range victims[1:] {
		if status, _, m := fleetJSON(t, "GET", front.URL+"/v1/sessions/"+s.id, nil); status != http.StatusOK {
			t.Fatalf("displaced session %s: %d %v", s.id, status, m)
		}
	}

	// Bit-identical replay check: the adopted session's slack report on
	// the peer must equal a fresh standalone daemon's report after
	// replaying a copy of the same journal.
	status, _, adopted := fleetDoReport(t, front.URL, victim.id)
	if status != http.StatusOK {
		t.Fatalf("adopted report: %d", status)
	}
	exStatus, _, journalBytes := fleetDo(t, "GET", d2.base+"/v1/sessions/"+victim.id+"/journal", nil)
	if exStatus != http.StatusOK {
		t.Fatalf("journal export from peer: %d", exStatus)
	}
	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, victim.id+".journal"), journalBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	d3 := startDaemon(t, "-journal-dir", dir3)
	refStatus, _, reference := fleetDoReport(t, d3.base, victim.id)
	if refStatus != http.StatusOK {
		t.Fatalf("reference replay report: %d", refStatus)
	}
	if !bytes.Equal(adopted, reference) {
		t.Fatalf("adopted report differs from single-replica replay of the same journal:\nadopted:   %s\nreference: %s",
			truncForLog(adopted), truncForLog(reference))
	}

	// The adopted session keeps taking edits.
	if status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+victim.id+"/edits", adjustEdit("g0", "25ps")); status != http.StatusOK {
		t.Fatalf("edit after failover: %d %v", status, m)
	}

	close(stopHammer)
	hammerWG.Wait()
	if n := server5xx.Load(); n > 0 {
		t.Fatalf("%d request(s) on non-displaced sessions got a 5xx during failover", n)
	}
}

// fleetDoReport fetches the raw slack report bytes for a session.
func fleetDoReport(t *testing.T, base, id string) (int, http.Header, []byte) {
	t.Helper()
	return fleetDo(t, "GET", base+"/v1/sessions/"+id+"/report", nil)
}

func truncForLog(b []byte) string {
	if len(b) > 400 {
		return string(b[:400]) + "..."
	}
	return string(b)
}

// TestFleetDrainMigratesSessions rolls one replica via the router's
// drain endpoint and checks its sessions re-home onto the peer with
// state intact, then return to service after undrain (new placements
// only — migrated sessions stay where they are).
func TestFleetDrainMigratesSessions(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	d1 := startDaemon(t, "-journal-dir", dir1, "-replica-id", "r1")
	d2 := startDaemon(t, "-journal-dir", dir2, "-replica-id", "r2")
	_, front := fleetFront(t, []fleet.Member{{ID: "r1", URL: d1.base}, {ID: "r2", URL: d2.base}})

	sessions := openFleetSessions(t, front.URL, 1)
	hashes := map[string]any{}
	for _, s := range sessions {
		status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+s.id+"/edits", adjustEdit("g1", "75ps"))
		if status != http.StatusOK {
			t.Fatalf("edit %s: %d %v", s.id, status, m)
		}
		status, _, sum := fleetJSON(t, "GET", front.URL+"/v1/sessions/"+s.id, nil)
		if status != http.StatusOK {
			t.Fatalf("summary %s: %d", s.id, status)
		}
		hashes[s.id] = sum["state_hash"]
	}

	status, _, m := fleetJSON(t, "POST", front.URL+"/fleet/drain/r1", nil)
	if status != http.StatusOK {
		t.Fatalf("drain r1: %d %v", status, m)
	}

	// Every session — including the ones that lived on r1 — must answer
	// from r2 with an unchanged state hash.
	for _, s := range sessions {
		status, hdr, sum := fleetJSON(t, "GET", front.URL+"/v1/sessions/"+s.id, nil)
		if status != http.StatusOK {
			t.Fatalf("post-drain summary %s: %d %v", s.id, status, sum)
		}
		if got := hdr.Get("X-Hb-Replica"); got != "r2" {
			t.Fatalf("session %s served by %q after drain, want r2", s.id, got)
		}
		if sum["state_hash"] != hashes[s.id] {
			t.Fatalf("session %s state changed across migration: %v != %v", s.id, sum["state_hash"], hashes[s.id])
		}
	}

	// Undrain and verify new sessions may land on r1 again.
	if status, _, m := fleetJSON(t, "POST", front.URL+"/fleet/undrain/r1", nil); status != http.StatusOK {
		t.Fatalf("undrain r1: %d %v", status, m)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _, rdy := fleetJSON(t, "GET", front.URL+"/readyz", nil)
		members, _ := rdy["members"].(map[string]any)
		r1, _ := members["r1"].(map[string]any)
		if status == http.StatusOK && r1 != nil && r1["up"] == true && r1["state"] == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("r1 never became routable again: %d %v", status, rdy)
		}
		time.Sleep(50 * time.Millisecond)
	}
	saw := map[string]bool{}
	for k := 100; k < 140 && !(saw["r1"] && saw["r2"]); k++ {
		status, hdr, m := fleetJSON(t, "POST", front.URL+"/v1/sessions", map[string]any{"design": chainSrc(k)})
		if status != http.StatusCreated {
			t.Fatalf("post-undrain open: %d %v", status, m)
		}
		saw[hdr.Get("X-Hb-Replica")] = true
	}
	if !saw["r1"] {
		t.Fatal("no new session landed on r1 after undrain")
	}

	// One sanity edit per migrated session: the streams re-attached on
	// the new primary keep accepting work.
	for _, s := range sessions {
		if status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+s.id+"/edits", adjustEdit("g0", "10ps")); status != http.StatusOK {
			t.Fatalf("edit after migration %s: %d %v", s.id, status, m)
		}
	}
}

// sessionHashes records each session's state hash through the router.
func sessionHashes(t *testing.T, frontURL string, sessions []fleetSession) map[string]any {
	t.Helper()
	hashes := map[string]any{}
	for _, s := range sessions {
		status, _, sum := fleetJSON(t, "GET", frontURL+"/v1/sessions/"+s.id, nil)
		if status != http.StatusOK {
			t.Fatalf("summary %s: %d", s.id, status)
		}
		hashes[s.id] = sum["state_hash"]
	}
	return hashes
}

// TestFleetRouterCrashRecovery kills the router (the component holding
// the only copy of the pin table) and starts a fresh one over the same
// members. The new router must rebuild every pin from the members'
// replication inventories — including resolving a session that two
// replicas both claim live, which this test manufactures by adopting a
// standby behind the old router's back. Zero sessions may be lost and
// every state hash must survive the rebuild.
func TestFleetRouterCrashRecovery(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	d1 := startDaemon(t, "-journal-dir", dir1, "-replica-id", "r1")
	d2 := startDaemon(t, "-journal-dir", dir2, "-replica-id", "r2")
	members := []fleet.Member{{ID: "r1", URL: d1.base}, {ID: "r2", URL: d2.base}}
	router, front := fleetFront(t, members)

	sessions := openFleetSessions(t, front.URL, 2)
	for _, s := range sessions {
		if status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+s.id+"/edits", adjustEdit("g1", "60ps")); status != http.StatusOK {
			t.Fatalf("edit %s: %d %v", s.id, status, m)
		}
	}
	hashes := sessionHashes(t, front.URL, sessions)

	// Manufacture a double-claim: adopt one r1 session's standby directly
	// on r2, bypassing the router. Both replicas now serve it live.
	var dup fleetSession
	for _, s := range sessions {
		if s.replica == "r1" {
			dup = s
			break
		}
	}
	if status, _, m := fleetJSON(t, "POST", d2.base+"/v1/replication/sessions/"+dup.id+"/adopt", nil); status != http.StatusOK || m["adopted"] != true {
		t.Fatalf("rogue adopt on r2: %d %v", status, m)
	}

	// Crash the router: its in-memory pin table dies with it.
	front.Close()
	router.Close()

	// A fresh router over the same member list reconciles at start.
	_, front2 := fleetFront(t, members)

	// The double-claim resolved to exactly one serving replica: the ring
	// owner (journal sequences tie — the standby was fully caught up).
	status, hdr, m := fleetJSON(t, "GET", front2.URL+"/v1/sessions/"+dup.id, nil)
	if status != http.StatusOK {
		t.Fatalf("double-claimed session after rebuild: %d %v", status, m)
	}
	if got := hdr.Get("X-Hb-Replica"); got != "r1" {
		t.Fatalf("double-claim resolved to %q, want the ring owner r1", got)
	}
	if status, _, list := fleetJSON(t, "GET", d2.base+"/v1/sessions", nil); status == http.StatusOK {
		if rows, ok := list["sessions"].([]any); ok {
			for _, row := range rows {
				if rm, ok := row.(map[string]any); ok && rm["session"] == dup.id {
					t.Fatalf("loser replica r2 still serves %s after reconcile", dup.id)
				}
			}
		}
	}

	// Every session answers through the new router, from its pre-crash
	// replica, with its pre-crash state.
	for _, s := range sessions {
		status, hdr, sum := fleetJSON(t, "GET", front2.URL+"/v1/sessions/"+s.id, nil)
		if status != http.StatusOK {
			t.Fatalf("session %s lost across router restart: %d %v", s.id, status, sum)
		}
		if got := hdr.Get("X-Hb-Replica"); got != s.replica {
			t.Fatalf("session %s moved %s -> %s across a router restart (nothing failed)", s.id, s.replica, got)
		}
		if sum["state_hash"] != hashes[s.id] {
			t.Fatalf("session %s state changed across router restart: %v != %v", s.id, sum["state_hash"], hashes[s.id])
		}
	}

	// The rebuilt pin table keeps taking writes and new sessions.
	for _, s := range sessions {
		if status, _, m := fleetJSON(t, "POST", front2.URL+"/v1/sessions/"+s.id+"/edits", adjustEdit("g0", "15ps")); status != http.StatusOK {
			t.Fatalf("edit after rebuild %s: %d %v", s.id, status, m)
		}
	}
	if status, _, m := fleetJSON(t, "POST", front2.URL+"/v1/sessions", map[string]any{"design": chainSrc(90)}); status != http.StatusCreated {
		t.Fatalf("open after rebuild: %d %v", status, m)
	}
}

// TestFleetJoinMigratesBounded adds a third replica to a loaded
// two-replica fleet at runtime. The bulk migration moves only displaced
// sessions (every move targets the joining member — a session moving
// between the two surviving members would be unbounded churn), state
// hashes survive the moves, no request sees a 5xx, and the ring serves
// new placements on the joined member.
func TestFleetJoinMigratesBounded(t *testing.T) {
	dir1, dir2, dir3 := t.TempDir(), t.TempDir(), t.TempDir()
	d1 := startDaemon(t, "-journal-dir", dir1, "-replica-id", "r1")
	d2 := startDaemon(t, "-journal-dir", dir2, "-replica-id", "r2")
	_, front := fleetFront(t, []fleet.Member{{ID: "r1", URL: d1.base}, {ID: "r2", URL: d2.base}})

	sessions := openFleetSessions(t, front.URL, 2)
	for _, s := range sessions {
		if status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+s.id+"/edits", adjustEdit("g1", "45ps")); status != http.StatusOK {
			t.Fatalf("edit %s: %d %v", s.id, status, m)
		}
	}
	hashes := sessionHashes(t, front.URL, sessions)

	// Hammer every session across the join; any 5xx fails the test.
	var server5xx atomic.Int64
	stopHammer := make(chan struct{})
	var hammerWG sync.WaitGroup
	hammerWG.Add(1)
	go func() {
		defer hammerWG.Done()
		client := &http.Client{Timeout: 10 * time.Second}
		for i := 0; ; i++ {
			select {
			case <-stopHammer:
				return
			default:
			}
			s := sessions[i%len(sessions)]
			resp, err := client.Get(front.URL + "/v1/sessions/" + s.id)
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				server5xx.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	d3 := startDaemon(t, "-journal-dir", dir3, "-replica-id", "r3")
	status, _, m := fleetJSON(t, "POST", front.URL+"/fleet/members/join",
		map[string]any{"id": "r3", "url": d3.base})
	if status != http.StatusOK || m["joined"] != true {
		t.Fatalf("join r3: %d %v", status, m)
	}
	if errs, ok := m["errors"].([]any); ok && len(errs) > 0 {
		t.Fatalf("join migration errors: %v", errs)
	}
	close(stopHammer)
	hammerWG.Wait()
	if n := server5xx.Load(); n > 0 {
		t.Fatalf("%d request(s) got a 5xx during the join", n)
	}

	// Bounded migration: every session either stayed put or moved to the
	// joining member, and the join reported exactly the moved count.
	moved := 0
	for _, s := range sessions {
		status, hdr, sum := fleetJSON(t, "GET", front.URL+"/v1/sessions/"+s.id, nil)
		if status != http.StatusOK {
			t.Fatalf("post-join session %s: %d %v", s.id, status, sum)
		}
		got := hdr.Get("X-Hb-Replica")
		if got != s.replica {
			if got != "r3" {
				t.Fatalf("session %s moved %s -> %s; only moves to the joining member are bounded", s.id, s.replica, got)
			}
			moved++
		}
		if sum["state_hash"] != hashes[s.id] {
			t.Fatalf("session %s state changed across join migration: %v != %v", s.id, sum["state_hash"], hashes[s.id])
		}
	}
	if reported, ok := m["migrated"].(float64); !ok || int(reported) != moved {
		t.Fatalf("join reported migrated=%v, observed %d moved sessions", m["migrated"], moved)
	}

	// Migrated sessions keep taking edits, and new placements reach r3.
	for _, s := range sessions {
		if status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+s.id+"/edits", adjustEdit("g0", "20ps")); status != http.StatusOK {
			t.Fatalf("edit after join %s: %d %v", s.id, status, m)
		}
	}
	sawR3 := false
	for k := 200; k < 280 && !sawR3; k++ {
		status, hdr, m := fleetJSON(t, "POST", front.URL+"/v1/sessions", map[string]any{"design": chainSrc(k)})
		if status != http.StatusCreated {
			t.Fatalf("post-join open: %d %v", status, m)
		}
		sawR3 = hdr.Get("X-Hb-Replica") == "r3"
	}
	if !sawR3 {
		t.Fatal("no new session landed on the joined member")
	}
}

// TestFleetLeaveMigratesSessions removes a member at runtime: its
// sessions migrate away with state intact, the member leaves the ring
// and the member list, and new placements avoid it.
func TestFleetLeaveMigratesSessions(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	d1 := startDaemon(t, "-journal-dir", dir1, "-replica-id", "r1")
	d2 := startDaemon(t, "-journal-dir", dir2, "-replica-id", "r2")
	_, front := fleetFront(t, []fleet.Member{{ID: "r1", URL: d1.base}, {ID: "r2", URL: d2.base}})

	sessions := openFleetSessions(t, front.URL, 1)
	for _, s := range sessions {
		if status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+s.id+"/edits", adjustEdit("g1", "35ps")); status != http.StatusOK {
			t.Fatalf("edit %s: %d %v", s.id, status, m)
		}
	}
	hashes := sessionHashes(t, front.URL, sessions)

	status, _, m := fleetJSON(t, "POST", front.URL+"/fleet/members/leave", map[string]any{"id": "r1"})
	if status != http.StatusOK || m["left"] != true {
		t.Fatalf("leave r1: %d %v", status, m)
	}

	for _, s := range sessions {
		status, hdr, sum := fleetJSON(t, "GET", front.URL+"/v1/sessions/"+s.id, nil)
		if status != http.StatusOK {
			t.Fatalf("post-leave session %s: %d %v", s.id, status, sum)
		}
		if got := hdr.Get("X-Hb-Replica"); got != "r2" {
			t.Fatalf("session %s served by %q after r1 left", s.id, got)
		}
		if sum["state_hash"] != hashes[s.id] {
			t.Fatalf("session %s state changed across leave migration: %v != %v", s.id, sum["state_hash"], hashes[s.id])
		}
	}

	if status, _, mm := fleetJSON(t, "GET", front.URL+"/fleet/members", nil); status == http.StatusOK {
		if rows, ok := mm["members"].([]any); ok {
			for _, row := range rows {
				if rm, ok := row.(map[string]any); ok && rm["id"] == "r1" {
					t.Fatalf("r1 still in the member list after leave: %v", mm)
				}
			}
		}
	}
	for k := 300; k < 310; k++ {
		status, hdr, m := fleetJSON(t, "POST", front.URL+"/v1/sessions", map[string]any{"design": chainSrc(k)})
		if status != http.StatusCreated {
			t.Fatalf("post-leave open: %d %v", status, m)
		}
		if got := hdr.Get("X-Hb-Replica"); got != "r2" {
			t.Fatalf("new session placed on %q after r1 left", got)
		}
	}
}

// TestFleetChainedStandbyDoubleFailure is the chained-replication
// acceptance test: with a chain of two standbys over three replicas,
// kill the session's primary, then kill the replica that adopted it.
// The session must survive both deaths on the last replica, and its
// slack report must be byte-identical to an independent replay of the
// exported journal on a fresh standalone daemon.
func TestFleetChainedStandbyDoubleFailure(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	daemons := map[string]*daemon{
		"r1": startDaemon(t, "-journal-dir", dirs[0], "-replica-id", "r1"),
		"r2": startDaemon(t, "-journal-dir", dirs[1], "-replica-id", "r2"),
		"r3": startDaemon(t, "-journal-dir", dirs[2], "-replica-id", "r3"),
	}
	_, front := fleetFront(t, []fleet.Member{
		{ID: "r1", URL: daemons["r1"].base},
		{ID: "r2", URL: daemons["r2"].base},
		{ID: "r3", URL: daemons["r3"].base},
	})

	status, hdr, m := fleetJSON(t, "POST", front.URL+"/v1/sessions", map[string]any{"design": chainSrc(31)})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	sid := m["session"].(string)
	primary := hdr.Get("X-Hb-Replica")
	if primary == "" {
		t.Fatal("open response lacks X-Hb-Replica")
	}
	for i := 0; i < 3; i++ {
		if status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+sid+"/edits", adjustEdit("g1", "80ps")); status != http.StatusOK {
			t.Fatalf("edit %d: %d %v", i, status, m)
		}
	}

	// First death: the primary. Failover must adopt from the standby
	// chain (both remaining replicas hold a streamed copy).
	daemons[primary].kill9(t)
	status, hdr, m = fleetJSON(t, "GET", front.URL+"/v1/sessions/"+sid, nil)
	if status != http.StatusOK {
		t.Fatalf("session after first kill: %d %v", status, m)
	}
	second := hdr.Get("X-Hb-Replica")
	if second == primary || second == "" {
		t.Fatalf("first failover served by %q (primary was %q)", second, primary)
	}
	// More edits on the adopter: the re-attached chain must replicate
	// them to the one replica left standing behind it.
	for i := 0; i < 2; i++ {
		if status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+sid+"/edits", adjustEdit("g2", "40ps")); status != http.StatusOK {
			t.Fatalf("edit after first failover %d: %d %v", i, status, m)
		}
	}

	// Second death: the adopter. Only one replica remains.
	daemons[second].kill9(t)
	status, hdr, m = fleetJSON(t, "GET", front.URL+"/v1/sessions/"+sid, nil)
	if status != http.StatusOK {
		t.Fatalf("session after second kill: %d %v", status, m)
	}
	last := hdr.Get("X-Hb-Replica")
	if last == primary || last == second || last == "" {
		t.Fatalf("second failover served by %q (dead: %q, %q)", last, primary, second)
	}
	if status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+sid+"/edits", adjustEdit("g0", "10ps")); status != http.StatusOK {
		t.Fatalf("edit after second failover: %d %v", status, m)
	}

	// Byte-identical state: the twice-failed-over session's report must
	// equal a fresh standalone daemon's report after replaying the
	// surviving replica's exported journal.
	status, _, adopted := fleetDoReport(t, front.URL, sid)
	if status != http.StatusOK {
		t.Fatalf("report after double failure: %d", status)
	}
	exStatus, _, journalBytes := fleetDo(t, "GET", daemons[last].base+"/v1/sessions/"+sid+"/journal", nil)
	if exStatus != http.StatusOK {
		t.Fatalf("journal export from survivor: %d", exStatus)
	}
	refDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(refDir, sid+".journal"), journalBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	ref := startDaemon(t, "-journal-dir", refDir)
	refStatus, _, reference := fleetDoReport(t, ref.base, sid)
	if refStatus != http.StatusOK {
		t.Fatalf("reference replay report: %d", refStatus)
	}
	if !bytes.Equal(adopted, reference) {
		t.Fatalf("report after double failure differs from journal replay:\nadopted:   %s\nreference: %s",
			truncForLog(adopted), truncForLog(reference))
	}
}
