// Fleet observability chaos test: SIGKILL a replica's process and check
// the failover the router runs leaves one distributed trace — stitched
// from the router's fragment and the surviving daemon's fragments, so
// the probe→adopt path is visible across two OS processes — plus
// correlated flight-recorder events on both sides, and that the
// federated metrics surface stays valid and consistent with the
// per-member scrapes throughout.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"hummingbird/internal/fleet"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/flight"
	"hummingbird/internal/telemetry/span"
)

func TestFleetFailoverStitchedTrace(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	d1 := startDaemon(t, "-journal-dir", dir1, "-replica-id", "r1")
	d2 := startDaemon(t, "-journal-dir", dir2, "-replica-id", "r2")
	_, front := fleetFront(t, []fleet.Member{{ID: "r1", URL: d1.base}, {ID: "r2", URL: d2.base}})

	sessions := openFleetSessions(t, front.URL, 1)
	for _, s := range sessions {
		if status, _, m := fleetJSON(t, "POST", front.URL+"/v1/sessions/"+s.id+"/edits", adjustEdit("g1", "100ps")); status != http.StatusOK {
			t.Fatalf("edit %s: %d %v", s.id, status, m)
		}
	}
	var victim fleetSession
	for _, s := range sessions {
		if s.replica == "r1" {
			victim = s
			break
		}
	}

	d1.kill9(t)
	// The next request on the displaced session triggers the failover the
	// trace must cover.
	status, hdr, _ := fleetJSON(t, "GET", front.URL+"/v1/sessions/"+victim.id, nil)
	if status != http.StatusOK {
		t.Fatalf("displaced session after kill: %d", status)
	}
	if got := hdr.Get("X-Hb-Replica"); got != "r2" {
		t.Fatalf("displaced session served by %q, want r2", got)
	}

	// Discover the failover's trace id the way an operator would: from
	// the router's flight-recorder timeline.
	traceID := ""
	routerEvents := map[string]bool{}
	status, _, raw := fleetDo(t, "GET", front.URL+"/events?session="+victim.id, nil)
	if status != http.StatusOK {
		t.Fatalf("router events: %d", status)
	}
	var evResp struct {
		Replica string         `json:"replica"`
		Events  []flight.Event `json:"events"`
	}
	if err := json.Unmarshal(raw, &evResp); err != nil {
		t.Fatalf("router events decode: %v", err)
	}
	if evResp.Replica != "router" {
		t.Fatalf("events replica %q, want router", evResp.Replica)
	}
	for _, ev := range evResp.Events {
		routerEvents[ev.Kind] = true
		if ev.Kind == "failover.end" {
			traceID = ev.Trace
		}
	}
	if !routerEvents["failover.begin"] || !routerEvents["failover.end"] {
		t.Fatalf("router flight events lack the failover pair: %v", routerEvents)
	}
	if traceID == "" {
		t.Fatal("failover.end event carries no trace id")
	}

	// The surviving daemon's flight recorder holds the adopt under the
	// same trace id — the cross-process correlation the id exists for.
	status, _, raw = fleetDo(t, "GET", d2.base+"/events?session="+victim.id, nil)
	if status != http.StatusOK {
		t.Fatalf("survivor events: %d", status)
	}
	var survResp struct {
		Replica string         `json:"replica"`
		Events  []flight.Event `json:"events"`
	}
	if err := json.Unmarshal(raw, &survResp); err != nil {
		t.Fatalf("survivor events decode: %v", err)
	}
	if survResp.Replica != "r2" {
		t.Fatalf("survivor events replica %q, want r2", survResp.Replica)
	}
	adopted := false
	for _, ev := range survResp.Events {
		if ev.Kind == "repl.adopt" && ev.Trace == traceID {
			adopted = true
		}
	}
	if !adopted {
		t.Fatalf("survivor has no repl.adopt event with trace %s: %+v", traceID, survResp.Events)
	}

	// One stitched trace covering probe→adopt on two processes.
	status, _, raw = fleetDo(t, "GET", front.URL+"/fleet/trace/"+traceID, nil)
	if status != http.StatusOK {
		t.Fatalf("stitched trace: %d %s", status, raw)
	}
	var exp span.Export
	if err := json.Unmarshal(raw, &exp); err != nil {
		t.Fatalf("stitched decode: %v", err)
	}
	procs := map[string]bool{}
	names := map[string]int{}
	var walk func(n *span.Node)
	walk = func(n *span.Node) {
		if n == nil {
			return
		}
		if n.Process != "" {
			procs[n.Process] = true
		}
		names[n.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(exp.Root)
	if !procs["router"] || !procs["r2"] {
		t.Fatalf("stitched trace covers %v, want router and r2", procs)
	}
	if names["fleet.failover"] == 0 || names["probe"] == 0 || names["adopt"] == 0 {
		t.Fatalf("stitched trace lacks the failover steps: %v", names)
	}
	if names["server.repl_adopt"] == 0 {
		t.Fatalf("stitched trace lacks the daemon-side adopt fragment: %v", names)
	}

	// The Chrome form spans two pids (two OS processes on one timeline).
	status, _, raw = fleetDo(t, "GET", front.URL+"/fleet/trace/"+traceID+"?format=chrome", nil)
	if status != http.StatusOK {
		t.Fatalf("chrome trace: %d", status)
	}
	var evs []map[string]any
	if err := json.Unmarshal(raw, &evs); err != nil {
		t.Fatalf("chrome decode: %v", err)
	}
	pids := map[float64]bool{}
	for _, ev := range evs {
		pids[ev["pid"].(float64)] = true
	}
	if len(pids) < 2 {
		t.Fatalf("chrome trace has %d pid(s), want >= 2", len(pids))
	}

	// Federated metrics stay valid mid-degradation and agree with the
	// surviving member's own scrape.
	status, _, raw = fleetDo(t, "GET", front.URL+"/fleet/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("fleet metrics: %d", status)
	}
	out := string(raw)
	if err := telemetry.CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("federated exposition invalid after failover: %v", err)
	}
	status, _, snapRaw := fleetDo(t, "GET", d2.base+"/metrics.json", nil)
	if status != http.StatusOK {
		t.Fatalf("survivor metrics.json: %d", status)
	}
	var snap telemetry.Metrics
	if err := json.Unmarshal(snapRaw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["fleet.sessions_adopted"] < 1 {
		t.Fatalf("survivor adopted counter %d, want >= 1", snap.Counters["fleet.sessions_adopted"])
	}
	// The rollup sums the member scrapes; with r1 dead and the in-process
	// router not serving sessions, r2's count IS the fleet count. The
	// survivor may serve more requests between the two scrapes, so accept
	// >= the snapshot value for the per-member line.
	wantLine := fmt.Sprintf(`hb_fleet_sessions_adopted_total{replica="r2"} %d`, snap.Counters["fleet.sessions_adopted"])
	if !strings.Contains(out, wantLine) {
		t.Fatalf("federated exposition lacks %q", wantLine)
	}
	if !strings.Contains(out, fmt.Sprintf("hb_fleet_fleet_sessions_adopted_total %d", snap.Counters["fleet.sessions_adopted"])) {
		t.Fatalf("fleet rollup does not match the member scrape")
	}

	// /fleet/status reflects the degraded fleet and carries the event tail.
	status, _, raw = fleetDo(t, "GET", front.URL+"/fleet/status", nil)
	if status != http.StatusOK {
		t.Fatalf("fleet status: %d", status)
	}
	var st struct {
		State  string         `json:"state"`
		Up     int            `json:"up"`
		Events []flight.Event `json:"events"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "degraded" || st.Up != 1 {
		t.Fatalf("fleet status after kill: %+v", st)
	}
	if len(st.Events) == 0 {
		t.Fatal("fleet status carries no event tail")
	}
}
