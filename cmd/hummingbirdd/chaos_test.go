//go:build failpoint

// Chaos suite: drives a real hummingbirdd process (the test binary
// re-execing run()) through crashes, panics, deadline expiry and
// overload. Build-tag gated because the tests kill processes and sleep on
// real wall clock; run with
//
//	go test -tags failpoint ./cmd/hummingbirdd/ -run TestChaos
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/incremental"
	"hummingbird/internal/netlist"
	"hummingbird/internal/telemetry"
)

func TestMain(m *testing.M) {
	// Child mode: become the daemon. The parent passes the argument vector
	// JSON-encoded to sidestep shell quoting.
	if argsJSON := os.Getenv("HB_CHAOS_DAEMON_ARGS"); argsJSON != "" {
		var args []string
		if err := json.Unmarshal([]byte(argsJSON), &args); err != nil {
			fmt.Fprintln(os.Stderr, "chaos daemon: bad args:", err)
			os.Exit(2)
		}
		if err := run(args, os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "chaos daemon:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one live hummingbirdd child process under test.
type daemon struct {
	base string
	cmd  *exec.Cmd
	done chan error
}

// startDaemon re-execs the test binary as a hummingbirdd with the given
// extra flags and waits until /healthz answers.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	args := append([]string{"-addr", addr}, extra...)
	argsJSON, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "HB_CHAOS_DAEMON_ARGS="+string(argsJSON))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{base: "http://" + addr, cmd: cmd, done: make(chan error, 1)}
	go func() {
		d.done <- cmd.Wait()
		close(d.done) // later receives (cleanup after an explicit kill) read nil
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-d.done
	})

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon at %s never became healthy", d.base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill9 delivers SIGKILL — the crash the journal must survive.
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d.done
}

// req issues one JSON request against the live daemon.
func (d *daemon) req(t *testing.T, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	httpReq, err := http.NewRequest(method, d.base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	return resp.StatusCode, m
}

// arm arms a failpoint in the live daemon over HTTP.
func (d *daemon) arm(t *testing.T, name, spec string) {
	t.Helper()
	httpReq, err := http.NewRequest("PUT", d.base+"/debug/failpoints/"+name, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arm %s=%s: %d", name, spec, resp.StatusCode)
	}
}

// TestChaosCrashMidEditBatchReplays kills the daemon with SIGKILL while
// an edit batch is stalled inside the journal append — applied in memory,
// not yet durable, not yet acknowledged — and checks the restarted daemon
// replays the journal to exactly the acknowledged state: deep-equal (by
// state hash) to a reference engine driven with the acknowledged edits
// only.
func TestChaosCrashMidEditBatchReplays(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, "-journal-dir", dir, "-failpoints")

	status, m := d.req(t, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	id := m["session"].(string)
	status, m = d.req(t, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "250ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("acked batch: %d %v", status, m)
	}

	// Reference: the acknowledged state only.
	des, err := netlist.ParseString(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := incremental.Open(celllib.Default(), des, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Apply(incremental.Edit{Op: incremental.Adjust, Inst: "g2", Delta: 250}); err != nil {
		t.Fatal(err)
	}

	// Stall the next journal append and crash while the unacked batch is
	// inside it.
	d.arm(t, "journal.append", "sleep(30s)")
	stalled := make(chan struct{})
	go func() {
		defer close(stalled)
		// The response (if any) is the crash's 'connection reset'; ignore it.
		b, _ := json.Marshal(map[string]any{
			"edits": []map[string]any{{"op": "adjust", "inst": "g3", "delta": "100ps"}},
		})
		http.Post(d.base+"/v1/sessions/"+id+"/edits", "application/json", bytes.NewReader(b))
	}()
	time.Sleep(300 * time.Millisecond) // let the batch reach the stalled append
	d.kill9(t)
	<-stalled

	// A crash can also tear the tail of the file; simulate the worst case
	// by appending half a record before restarting.
	f, err := os.OpenFile(filepath.Join(dir, id+".journal"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"kind":"edits","se`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := startDaemon(t, "-journal-dir", dir)
	status, sum := d2.req(t, "GET", "/v1/sessions/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("replayed session missing: %d %v", status, sum)
	}
	if sum["state_hash"] != ref.StateHash() {
		t.Fatalf("replayed state %v != acknowledged reference %s", sum["state_hash"], ref.StateHash())
	}
	// The restored session keeps working.
	status, m = d2.req(t, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g3", "delta": "100ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edit after replay: %d %v", status, m)
	}
}

// TestChaosGracefulShutdownPersistsSessions checks a SIGTERM shutdown
// flushes journals so sessions survive a clean restart too.
func TestChaosGracefulShutdownPersistsSessions(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, "-journal-dir", dir, "-shutdown-grace", "3s")
	status, m := d.req(t, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	id := m["session"].(string)
	_, sum := d.req(t, "GET", "/v1/sessions/"+id, nil)
	hash := sum["state_hash"]

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-d.done; err != nil {
		t.Fatalf("daemon exited uncleanly: %v", err)
	}

	d2 := startDaemon(t, "-journal-dir", dir)
	status, sum2 := d2.req(t, "GET", "/v1/sessions/"+id, nil)
	if status != http.StatusOK || sum2["state_hash"] != hash {
		t.Fatalf("session lost across clean restart: %d %v (want hash %v)", status, sum2, hash)
	}
}

// TestChaosPanicIsolation injects a panic into one session's edit path of
// a live daemon and checks the process survives, the faulting session is
// quarantined, and a sibling session keeps serving.
func TestChaosPanicIsolation(t *testing.T) {
	d := startDaemon(t, "-failpoints")
	_, m1 := d.req(t, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	victim := m1["session"].(string)
	_, m2 := d.req(t, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	bystander := m2["session"].(string)

	d.arm(t, "incr.classify", "1*panic(chaos)")
	status, _ := d.req(t, "POST", "/v1/sessions/"+victim+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "1ps"}},
	})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking edit: %d", status)
	}
	if status, _ := d.req(t, "GET", "/v1/sessions/"+victim, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("victim not quarantined: %d", status)
	}
	status, m := d.req(t, "POST", "/v1/sessions/"+bystander+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "1ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("bystander edit after panic: %d %v", status, m)
	}
}

// TestChaosDeadlineExpiryTyped stalls a full re-analysis and checks the
// daemon returns the typed cancelled error within ±100ms of the request
// deadline (acceptance criterion).
func TestChaosDeadlineExpiryTyped(t *testing.T) {
	const deadline = 300 * time.Millisecond
	d := startDaemon(t, "-failpoints", "-request-timeout", deadline.String())
	status, m := d.req(t, "POST", "/v1/sessions", map[string]any{"design": chainSrc(25)})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	id := m["session"].(string)

	// ~25 clusters x 20ms sleep per visit: the full re-analysis needs
	// ~500ms+ of wall clock, so the 300ms deadline always expires, and
	// cancellation is detected within one 20ms cluster visit.
	d.arm(t, "sta.cluster", "sleep(20ms)")
	t0 := time.Now()
	status, m = d.req(t, "POST", "/v1/sessions/"+id+"/edits", fullEdit("tap"))
	elapsed := time.Since(t0)
	if status != http.StatusGatewayTimeout || m["kind"] != "cancelled" {
		t.Fatalf("deadline expiry: %d %v", status, m)
	}
	if elapsed < deadline-100*time.Millisecond || elapsed > deadline+100*time.Millisecond {
		t.Fatalf("typed error after %v, want %v +/- 100ms", elapsed, deadline)
	}
}

// TestChaosOverloadSheds saturates the single in-flight slot of a live
// daemon and checks excess load is shed with 429 + Retry-After.
func TestChaosOverloadSheds(t *testing.T) {
	d := startDaemon(t, "-failpoints", "-max-inflight", "1", "-queue-timeout", "100ms")
	status, m := d.req(t, "POST", "/v1/sessions", map[string]any{"design": chainSrc(25)})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	id := m["session"].(string)

	d.arm(t, "sta.cluster", "sleep(30ms)")
	slow := make(chan struct{})
	go func() {
		defer close(slow)
		b, _ := json.Marshal(fullEdit("tap"))
		resp, err := http.Post(d.base+"/v1/sessions/"+id+"/edits", "application/json", bytes.NewReader(b))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(300 * time.Millisecond) // the slow edit now holds the slot

	resp, err := http.Get(d.base + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	<-slow
}

// TestChaosMetricsScrape plays Prometheus against a live daemon: after
// real traffic, a crash and a journal replay, /metrics must still parse
// as text exposition, /healthz must be green and /readyz must report the
// replayed daemon ready for traffic.
func TestChaosMetricsScrape(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, "-journal-dir", dir)
	status, m := d.req(t, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	id := m["session"].(string)
	for _, delta := range []string{"250ps", "-250ps"} {
		status, m = d.req(t, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
			"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": delta}},
		})
		if status != http.StatusOK {
			t.Fatalf("edit %s: %d %v", delta, status, m)
		}
	}

	scrape := func(d *daemon) {
		t.Helper()
		resp, err := http.Get(d.base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("metrics Content-Type = %q", ct)
		}
		if err := telemetry.CheckExposition(bytes.NewReader(body)); err != nil {
			t.Fatalf("metrics exposition invalid: %v\n%s", err, body)
		}
		// The traffic above must show up: request latency histograms and
		// the enabled marker.
		for _, want := range []string{"hb_telemetry_enabled 1", "hb_server_request_edits_seconds_bucket"} {
			if !strings.Contains(string(body), want) {
				t.Errorf("scrape lacks %q", want)
			}
		}
		if status, h := d.req(t, "GET", "/healthz", nil); status != http.StatusOK || h["ok"] != true {
			t.Fatalf("healthz: %d %v", status, h)
		}
		if status, rdy := d.req(t, "GET", "/readyz", nil); status != http.StatusOK || rdy["ready"] != true {
			t.Fatalf("readyz: %d %v", status, rdy)
		}
		if status, bi := d.req(t, "GET", "/buildinfo", nil); status != http.StatusOK || bi["goVersion"] == "" {
			t.Fatalf("buildinfo: %d %v", status, bi)
		}
	}
	scrape(d)

	// Crash, restart over the same journals, scrape again: the replayed
	// daemon must come back ready and still speak valid exposition.
	d.kill9(t)
	d2 := startDaemon(t, "-journal-dir", dir)
	if status, _ := d2.req(t, "GET", "/v1/sessions/"+id, nil); status != http.StatusOK {
		t.Fatalf("session not replayed: %d", status)
	}
	scrape(d2)
}
