//go:build failpoint

// Chaos suite: drives a real hummingbirdd process (the test binary
// re-execing run()) through crashes, panics, deadline expiry and
// overload. Build-tag gated because the tests kill processes and sleep on
// real wall clock; run with
//
//	go test -tags failpoint ./cmd/hummingbirdd/ -run TestChaos
//
// The subprocess harness (TestMain re-exec, startDaemon, kill9) lives
// untagged in proc_test.go so the fleet failover tests share it.
package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/incremental"
	"hummingbird/internal/netlist"
	"hummingbird/internal/telemetry"
)

// TestChaosCrashMidEditBatchReplays kills the daemon with SIGKILL while
// an edit batch is stalled inside the journal append — applied in memory,
// not yet durable, not yet acknowledged — and checks the restarted daemon
// replays the journal to exactly the acknowledged state: deep-equal (by
// state hash) to a reference engine driven with the acknowledged edits
// only.
func TestChaosCrashMidEditBatchReplays(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, "-journal-dir", dir, "-failpoints")

	status, m := d.req(t, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	id := m["session"].(string)
	status, m = d.req(t, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "250ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("acked batch: %d %v", status, m)
	}

	// Reference: the acknowledged state only.
	des, err := netlist.ParseString(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := incremental.Open(celllib.Default(), des, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Apply(incremental.Edit{Op: incremental.Adjust, Inst: "g2", Delta: 250}); err != nil {
		t.Fatal(err)
	}

	// Stall the next journal append and crash while the unacked batch is
	// inside it.
	d.arm(t, "journal.append", "sleep(30s)")
	stalled := make(chan struct{})
	go func() {
		defer close(stalled)
		// The response (if any) is the crash's 'connection reset'; ignore it.
		b, _ := json.Marshal(map[string]any{
			"edits": []map[string]any{{"op": "adjust", "inst": "g3", "delta": "100ps"}},
		})
		http.Post(d.base+"/v1/sessions/"+id+"/edits", "application/json", bytes.NewReader(b))
	}()
	time.Sleep(300 * time.Millisecond) // let the batch reach the stalled append
	d.kill9(t)
	<-stalled

	// A crash can also tear the tail of the file; simulate the worst case
	// by appending half a record before restarting.
	f, err := os.OpenFile(filepath.Join(dir, id+".journal"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"kind":"edits","se`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := startDaemon(t, "-journal-dir", dir)
	status, sum := d2.req(t, "GET", "/v1/sessions/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("replayed session missing: %d %v", status, sum)
	}
	if sum["state_hash"] != ref.StateHash() {
		t.Fatalf("replayed state %v != acknowledged reference %s", sum["state_hash"], ref.StateHash())
	}
	// The restored session keeps working.
	status, m = d2.req(t, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g3", "delta": "100ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edit after replay: %d %v", status, m)
	}
}

// TestChaosGracefulShutdownPersistsSessions checks a SIGTERM shutdown
// flushes journals so sessions survive a clean restart too.
func TestChaosGracefulShutdownPersistsSessions(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, "-journal-dir", dir, "-shutdown-grace", "3s")
	status, m := d.req(t, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	id := m["session"].(string)
	_, sum := d.req(t, "GET", "/v1/sessions/"+id, nil)
	hash := sum["state_hash"]

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-d.done; err != nil {
		t.Fatalf("daemon exited uncleanly: %v", err)
	}

	d2 := startDaemon(t, "-journal-dir", dir)
	status, sum2 := d2.req(t, "GET", "/v1/sessions/"+id, nil)
	if status != http.StatusOK || sum2["state_hash"] != hash {
		t.Fatalf("session lost across clean restart: %d %v (want hash %v)", status, sum2, hash)
	}
}

// TestChaosPanicIsolation injects a panic into one session's edit path of
// a live daemon and checks the process survives, the faulting session is
// quarantined, and a sibling session keeps serving.
func TestChaosPanicIsolation(t *testing.T) {
	d := startDaemon(t, "-failpoints")
	_, m1 := d.req(t, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	victim := m1["session"].(string)
	_, m2 := d.req(t, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	bystander := m2["session"].(string)

	d.arm(t, "incr.classify", "1*panic(chaos)")
	status, _ := d.req(t, "POST", "/v1/sessions/"+victim+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "1ps"}},
	})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking edit: %d", status)
	}
	if status, _ := d.req(t, "GET", "/v1/sessions/"+victim, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("victim not quarantined: %d", status)
	}
	status, m := d.req(t, "POST", "/v1/sessions/"+bystander+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "1ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("bystander edit after panic: %d %v", status, m)
	}
}

// TestChaosDeadlineExpiryTyped stalls a full re-analysis and checks the
// daemon returns the typed cancelled error within ±100ms of the request
// deadline (acceptance criterion).
func TestChaosDeadlineExpiryTyped(t *testing.T) {
	const deadline = 300 * time.Millisecond
	d := startDaemon(t, "-failpoints", "-request-timeout", deadline.String())
	status, m := d.req(t, "POST", "/v1/sessions", map[string]any{"design": chainSrc(25)})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	id := m["session"].(string)

	// ~25 clusters x 20ms sleep per visit: the full re-analysis needs
	// ~500ms+ of wall clock, so the 300ms deadline always expires, and
	// cancellation is detected within one 20ms cluster visit.
	d.arm(t, "sta.cluster", "sleep(20ms)")
	t0 := time.Now()
	status, m = d.req(t, "POST", "/v1/sessions/"+id+"/edits", fullEdit("tap"))
	elapsed := time.Since(t0)
	if status != http.StatusGatewayTimeout || m["kind"] != "cancelled" {
		t.Fatalf("deadline expiry: %d %v", status, m)
	}
	if elapsed < deadline-100*time.Millisecond || elapsed > deadline+100*time.Millisecond {
		t.Fatalf("typed error after %v, want %v +/- 100ms", elapsed, deadline)
	}
}

// TestChaosOverloadSheds saturates the single in-flight slot of a live
// daemon and checks excess load is shed with 429 + Retry-After.
func TestChaosOverloadSheds(t *testing.T) {
	d := startDaemon(t, "-failpoints", "-max-inflight", "1", "-queue-timeout", "100ms")
	status, m := d.req(t, "POST", "/v1/sessions", map[string]any{"design": chainSrc(25)})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	id := m["session"].(string)

	d.arm(t, "sta.cluster", "sleep(30ms)")
	slow := make(chan struct{})
	go func() {
		defer close(slow)
		b, _ := json.Marshal(fullEdit("tap"))
		resp, err := http.Post(d.base+"/v1/sessions/"+id+"/edits", "application/json", bytes.NewReader(b))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(300 * time.Millisecond) // the slow edit now holds the slot

	resp, err := http.Get(d.base + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	<-slow
}

// TestChaosMetricsScrape plays Prometheus against a live daemon: after
// real traffic, a crash and a journal replay, /metrics must still parse
// as text exposition, /healthz must be green and /readyz must report the
// replayed daemon ready for traffic.
func TestChaosMetricsScrape(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, "-journal-dir", dir)
	status, m := d.req(t, "POST", "/v1/sessions", map[string]any{"design": pipeSrc})
	if status != http.StatusCreated {
		t.Fatalf("open: %d %v", status, m)
	}
	id := m["session"].(string)
	for _, delta := range []string{"250ps", "-250ps"} {
		status, m = d.req(t, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
			"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": delta}},
		})
		if status != http.StatusOK {
			t.Fatalf("edit %s: %d %v", delta, status, m)
		}
	}

	scrape := func(d *daemon) {
		t.Helper()
		resp, err := http.Get(d.base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("metrics Content-Type = %q", ct)
		}
		if err := telemetry.CheckExposition(bytes.NewReader(body)); err != nil {
			t.Fatalf("metrics exposition invalid: %v\n%s", err, body)
		}
		// The traffic above must show up: request latency histograms and
		// the enabled marker.
		for _, want := range []string{"hb_telemetry_enabled 1", "hb_server_request_edits_seconds_bucket"} {
			if !strings.Contains(string(body), want) {
				t.Errorf("scrape lacks %q", want)
			}
		}
		if status, h := d.req(t, "GET", "/healthz", nil); status != http.StatusOK || h["ok"] != true {
			t.Fatalf("healthz: %d %v", status, h)
		}
		if status, rdy := d.req(t, "GET", "/readyz", nil); status != http.StatusOK || rdy["ready"] != true {
			t.Fatalf("readyz: %d %v", status, rdy)
		}
		if status, bi := d.req(t, "GET", "/buildinfo", nil); status != http.StatusOK || bi["goVersion"] == "" {
			t.Fatalf("buildinfo: %d %v", status, bi)
		}
	}
	scrape(d)

	// Crash, restart over the same journals, scrape again: the replayed
	// daemon must come back ready and still speak valid exposition.
	d.kill9(t)
	d2 := startDaemon(t, "-journal-dir", dir)
	if status, _ := d2.req(t, "GET", "/v1/sessions/"+id, nil); status != http.StatusOK {
		t.Fatalf("session not replayed: %d", status)
	}
	scrape(d2)
}
