package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/netlist"
	"hummingbird/internal/workload"
)

// benchDesign serialises the ALU workload back to netlist text so the
// session-open benchmarks exercise a realistically sized design rather
// than the toy pipe fixture.
func benchDesign(b *testing.B) string {
	b.Helper()
	d, err := workload.ALU()
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	if err := netlist.Write(&sb, d); err != nil {
		b.Fatal(err)
	}
	return sb.String()
}

// do drives a handler directly (no TCP) and fails the benchmark on an
// unexpected status.
func do(b *testing.B, h http.Handler, method, path, body string, want int) map[string]any {
	b.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != want {
		b.Fatalf("%s %s: status %d, want %d: %s", method, path, rec.Code, want, rec.Body.String())
	}
	m := map[string]any{}
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			b.Fatalf("decode %s: %v", rec.Body.Bytes(), err)
		}
	}
	return m
}

func openBody(b *testing.B, design string) string {
	b.Helper()
	body, err := json.Marshal(map[string]any{"design": design})
	if err != nil {
		b.Fatal(err)
	}
	return string(body)
}

// BenchmarkSessionOpen_Cold is the pre-sharing baseline: every open pays a
// full parse + elaboration + compile + first analysis. cacheSize 0 keeps
// closed sessions out of the LRU; closing the session also drops the last
// compile-cache reference, so the next open is cold again.
func BenchmarkSessionOpen_Cold(b *testing.B) {
	srv := newServer(celllib.Default(), serverConfig{maxSessions: 4, cacheSize: 0})
	h := srv.handler()
	body := openBody(b, benchDesign(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := do(b, h, "POST", "/v1/sessions", body, http.StatusCreated)
		do(b, h, "DELETE", "/v1/sessions/"+m["session"].(string), "", http.StatusOK)
	}
}

// BenchmarkSessionOpen_SharedDesign holds one publisher session open so
// every benchmarked open acquires the shared CompiledDesign from the
// compile cache: it pays parsing and a fresh AnalysisState + first
// analysis, but no elaboration or compile.
func BenchmarkSessionOpen_SharedDesign(b *testing.B) {
	srv := newServer(celllib.Default(), serverConfig{maxSessions: 4, cacheSize: 0})
	h := srv.handler()
	body := openBody(b, benchDesign(b))
	do(b, h, "POST", "/v1/sessions", body, http.StatusCreated) // publisher stays open
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := do(b, h, "POST", "/v1/sessions", body, http.StatusCreated)
		if i == 0 && m["shared_design"] != true {
			b.Fatalf("open did not share the compiled design: %v", m)
		}
		do(b, h, "DELETE", "/v1/sessions/"+m["session"].(string), "", http.StatusOK)
	}
}

// BenchmarkSessionOpen_ParkResume closes into the LRU and re-opens: the
// whole engine (compiled design + analysis state + report) is parked, so a
// resume is a cache probe plus summary serialisation.
func BenchmarkSessionOpen_ParkResume(b *testing.B) {
	srv := newServer(celllib.Default(), serverConfig{maxSessions: 4, cacheSize: 4})
	h := srv.handler()
	body := openBody(b, benchDesign(b))
	m := do(b, h, "POST", "/v1/sessions", body, http.StatusCreated)
	do(b, h, "DELETE", "/v1/sessions/"+m["session"].(string), "", http.StatusOK) // park
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := do(b, h, "POST", "/v1/sessions", body, http.StatusCreated)
		if i == 0 && m["cached"] != true {
			b.Fatalf("open did not resume the parked state: %v", m)
		}
		do(b, h, "DELETE", "/v1/sessions/"+m["session"].(string), "", http.StatusOK)
	}
}
