package main

import (
	"fmt"
	"hash/crc32"
	"testing"

	"hummingbird/internal/journal"
)

// fuzzFrame builds one framed journal line the way journal.Writer does:
// "<crc32c-hex> <record-json>\n". Used only to seed the fuzz corpus with
// well-formed input so mutation starts from the interesting region.
func fuzzFrame(kind string, seq int64, body string) []byte {
	payload := fmt.Sprintf(`{"kind":%q,"seq":%d,"body":%s}`, kind, seq, body)
	crc := crc32.Checksum([]byte(payload), crc32.MakeTable(crc32.Castagnoli))
	return []byte(fmt.Sprintf("%08x %s\n", crc, payload))
}

// FuzzStandbyAppend throws arbitrary replication bodies at the standby
// store's frame-append path — the surface a primary (or an attacker on
// the replication port) controls byte-for-byte. Invariants, regardless
// of input:
//
//   - no panic, and the reported next sequence never decreases;
//   - a conflict report never mutates the journal;
//   - the on-disk standby journal is always a fully intact frame
//     sequence: every line passes the CRC-32C + seq-continuity check and
//     the intact count equals the reported next (no torn or skipped
//     frames are ever admitted).
func FuzzStandbyAppend(f *testing.F) {
	open := fuzzFrame(journal.KindOpen, 0, `{"design":"design d1\nend"}`)
	edit := fuzzFrame(journal.KindEdits, 1, `[{"op":"adjust","inst":"u1","delta":100}]`)
	f.Add(open, int64(0), edit, int64(1))
	f.Add(append(append([]byte{}, open...), edit...), int64(0), edit, int64(5))
	f.Add(edit, int64(1), open, int64(0))
	f.Add([]byte("00000000 {\"kind\":\"open\",\"seq\":0}"), int64(0), []byte("torn"), int64(-3))

	f.Fuzz(func(t *testing.T, body1 []byte, seq1 int64, body2 []byte, seq2 int64) {
		st, err := newStandbyStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		const id = "fz-s1"
		prev := int64(0)
		for i, push := range []struct {
			body []byte
			seq  int64
		}{{body1, seq1}, {body2, seq2}} {
			next, conflict, aerr := st.appendFrames(id, splitFrames(push.body), push.seq)
			if next < prev {
				t.Fatalf("push %d: next went backwards: %d -> %d", i, prev, next)
			}
			frames, rerr := journal.ReadFrames(st.path(id))
			if rerr != nil && next > 0 {
				t.Fatalf("push %d: next=%d but standby unreadable: %v", i, next, rerr)
			}
			if conflict && int64(len(frames)) != prev {
				t.Fatalf("push %d: conflict mutated the journal: %d -> %d frames", i, prev, len(frames))
			}
			if aerr == nil && !conflict && int64(len(frames)) != next {
				t.Fatalf("push %d: reported next=%d but %d intact frames on disk", i, next, len(frames))
			}
			// ReadFrames already enforces CRC + contiguity; recheck
			// explicitly so a loosened reader can't mask admission bugs.
			for j, fr := range frames {
				if _, cerr := journal.CheckFrame(fr, int64(j)); cerr != nil {
					t.Fatalf("push %d: admitted frame %d fails recheck: %v", i, j, cerr)
				}
			}
			prev = next
		}
	})
}
