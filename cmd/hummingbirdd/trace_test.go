package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hummingbird/internal/journal"
	"hummingbird/internal/telemetry/span"
)

// syncBuffer is an errLog sink safe to read while the server still holds
// it: finishRequest runs in a deferred frame that may outlive the HTTP
// response the test already received.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// doTraced issues a request and returns the status, decoded body and the
// X-Trace-Id header the guard echoed.
func doTraced(t *testing.T, ts *httptest.Server, method, path string, body any) (int, map[string]any, string) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	return resp.StatusCode, m, resp.Header.Get("X-Trace-Id")
}

// traceLast fetches and decodes /trace/last for a session. The endpoint
// is unguarded, so reading it must not replace the trace it reports.
func traceLast(t *testing.T, ts *httptest.Server, id string) (string, *span.Node, int) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/" + id + "/trace/last")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", nil, resp.StatusCode
	}
	var tr struct {
		ID   string     `json:"id"`
		Root *span.Node `json:"root"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("trace/last decode: %v", err)
	}
	return tr.ID, tr.Root, resp.StatusCode
}

// findSpan returns the first node with the given name, depth-first.
func findSpan(n *span.Node, name string) *span.Node {
	if hits := findSpans(n, name); len(hits) > 0 {
		return hits[0]
	}
	return nil
}

// findSpans returns every node with the given name, depth-first.
func findSpans(n *span.Node, name string) []*span.Node {
	if n == nil {
		return nil
	}
	var hits []*span.Node
	if n.Name == name {
		hits = append(hits, n)
	}
	for _, c := range n.Children {
		hits = append(hits, findSpans(c, name)...)
	}
	return hits
}

// checkNested asserts every child's interval lies within its parent's.
func checkNested(t *testing.T, n *span.Node) {
	t.Helper()
	for _, c := range n.Children {
		if c.OffsetNs < n.OffsetNs {
			t.Errorf("span %s starts at %d before parent %s at %d",
				c.Name, c.OffsetNs, n.Name, n.OffsetNs)
		}
		if c.OffsetNs+c.DurNs > n.OffsetNs+n.DurNs {
			t.Errorf("span %s ends at %d after parent %s at %d",
				c.Name, c.OffsetNs+c.DurNs, n.Name, n.OffsetNs+n.DurNs)
		}
		checkNested(t, c)
	}
}

// TestRequestTrace drives one journaled edit batch and checks the
// acceptance span tree: admission, journal append (with its fsync),
// classification, per-sweep recompute, and response encoding, all
// properly nested under the request root — plus the Chrome trace-event
// export in -trace-dir.
func TestRequestTrace(t *testing.T) {
	jm, err := journal.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	traceDir := t.TempDir()
	srv, ts := newTestServerCfg(t, serverConfig{
		maxSessions: 4, cacheSize: 4,
		maxInflight: 4, queueTimeout: time.Second,
		journal: jm, traceDir: traceDir,
	})
	srv.recoverSessions()

	id, _ := openSession(t, ts, pipeSrc)
	// A 9ns adjust violates timing, so the fixed point actually runs
	// slack-transfer sweeps (a passing design converges before the first
	// sweep and would leave no core.sweep spans to check).
	status, m, editTID := doTraced(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "9ns"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edits: %d %v", status, m)
	}
	if editTID == "" {
		t.Fatal("edit response has no X-Trace-Id header")
	}

	// finishRequest runs in a deferred frame after the response body is
	// written; poll briefly for the trace to land on the session.
	var gotID string
	var root *span.Node
	deadline := time.Now().Add(2 * time.Second)
	for {
		var st int
		gotID, root, st = traceLast(t, ts, id)
		if st == http.StatusOK && gotID == editTID {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace/last never served trace %s (last: %d id %s)", editTID, st, gotID)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if root.Name != "server.edits" {
		t.Fatalf("root span %q, want server.edits", root.Name)
	}
	if root.Attrs["session"] != id {
		t.Fatalf("root session attr %q, want %q", root.Attrs["session"], id)
	}
	for _, name := range []string{"admission", "incr.classify", "journal.append", "core.sweep", "sta.recompute", "encode"} {
		if findSpan(root, name) == nil {
			t.Errorf("trace lacks %q span", name)
		}
	}
	// The fsync barrier nests under the append that waited on it, and the
	// recompute under the sweep that invoked it.
	if app := findSpan(root, "journal.append"); app == nil || findSpan(app, "journal.fsync") == nil {
		t.Error("journal.fsync span is not a descendant of journal.append")
	}
	sweeps := findSpans(root, "core.sweep")
	recomputing := 0
	for _, sw := range sweeps {
		if sw.Attrs["iteration"] == "" {
			t.Errorf("core.sweep span lacks iteration attr: %v", sw.Attrs)
		}
		if findSpan(sw, "sta.recompute") != nil {
			recomputing++
		}
	}
	// The final sweep of each iteration converges (moved == 0) and
	// recomputes nothing, but a violating design must have at least one
	// sweep that transferred slack and re-analysed its dirty clusters.
	if recomputing == 0 {
		t.Errorf("none of %d core.sweep spans has an sta.recompute child", len(sweeps))
	}
	if cl := findSpan(root, "incr.classify"); cl != nil && cl.Attrs["edits"] != "1" {
		t.Errorf("classify edits attr %q, want 1", cl.Attrs["edits"])
	}
	checkNested(t, root)

	// Chrome export: one file per request, an array of complete events.
	path := filepath.Join(traceDir, editTID+".trace.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace export: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace export not a Chrome event array: %v", err)
	}
	if len(events) < 5 {
		t.Fatalf("trace export has %d events, want >= 5", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" && ev["ph"] != "M" {
			t.Fatalf("event %v is not a complete or metadata event", ev)
		}
	}
}

// TestTraceFreshAfterReplay restarts a journaling server and checks that
// journal replay leaves no stale trace behind: the recovered session has
// no /trace/last until its first live request, which gets a fresh id.
func TestTraceFreshAfterReplay(t *testing.T) {
	dir := t.TempDir()
	jm1, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, ts1 := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 4, journal: jm1})
	srv1.recoverSessions()
	id, _ := openSession(t, ts1, pipeSrc)
	status, m, preTID := doTraced(t, ts1, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "100ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edit before crash: %d %v", status, m)
	}

	// Crash-restart over the same journal directory.
	jm2, err := journal.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 4, journal: jm2})
	if n := srv2.recoverSessions(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	if _, _, st := traceLast(t, ts2, id); st != http.StatusNotFound {
		t.Fatalf("replayed session serves a trace before any live request: %d", st)
	}

	status, m, postTID := doTraced(t, ts2, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "-100ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edit after replay: %d %v", status, m)
	}
	if postTID == "" || postTID == preTID {
		t.Fatalf("post-replay trace id %q not fresh (pre-crash %q)", postTID, preTID)
	}
}

// TestReadyzGatesOnReplay checks /readyz stays 503 until the journal
// directory has been replayed, while /healthz is green the whole time.
func TestReadyzGatesOnReplay(t *testing.T) {
	jm, err := journal.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServerCfg(t, serverConfig{maxSessions: 4, cacheSize: 4, journal: jm})

	status, h := call(t, ts, "GET", "/healthz", nil)
	if status != http.StatusOK || h["ok"] != true {
		t.Fatalf("healthz during replay: %d %v", status, h)
	}
	status, rdy := call(t, ts, "GET", "/readyz", nil)
	if status != http.StatusServiceUnavailable || rdy["ready"] != false {
		t.Fatalf("readyz before replay: %d %v", status, rdy)
	}
	srv.recoverSessions()
	status, rdy = call(t, ts, "GET", "/readyz", nil)
	if status != http.StatusOK || rdy["ready"] != true {
		t.Fatalf("readyz after replay: %d %v", status, rdy)
	}
}

// TestSlowRequestLog sets a threshold every request exceeds and checks
// the span tree lands in the error log.
func TestSlowRequestLog(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServerCfg(t, serverConfig{
		maxSessions: 4, cacheSize: 4,
		slowThreshold: time.Nanosecond,
		errLog:        &logBuf,
	})
	id, _ := openSession(t, ts, pipeSrc)
	status, m, _ := doTraced(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{{"op": "adjust", "inst": "g2", "delta": "150ps"}},
	})
	if status != http.StatusOK {
		t.Fatalf("edits: %d %v", status, m)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		out := logBuf.String()
		if strings.Contains(out, "slow request edits") &&
			strings.Contains(out, "server.edits") &&
			strings.Contains(out, "incr.classify") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow-request log missing span tree:\n%s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestVersionFlag checks -version prints a build line and exits cleanly
// without starting a listener.
func TestVersionFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-version"}, &out, &errOut); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	line := out.String()
	if !strings.HasPrefix(line, "hummingbirdd ") || !strings.HasSuffix(line, "\n") {
		t.Fatalf("version output %q", line)
	}
	if !strings.Contains(line, "go") {
		t.Fatalf("version output %q lacks toolchain version", line)
	}
}
