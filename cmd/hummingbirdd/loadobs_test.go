package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hummingbird/internal/celllib"
	"hummingbird/internal/loadgen"
	"hummingbird/internal/telemetry"
)

// TestReadyzDrainingState checks the distinct draining state: a server
// that begins graceful shutdown must answer 503 with state "draining"
// so load generators stop scheduling new sessions against it, while the
// existing endpoints keep serving.
func TestReadyzDrainingState(t *testing.T) {
	srv := newServer(celllib.Default(), serverConfig{maxSessions: 4, cacheSize: 4})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	status, rdy := call(t, ts, "GET", "/readyz", nil)
	if status != http.StatusOK || rdy["state"] != "ready" || rdy["ready"] != true {
		t.Fatalf("fresh server readyz: %d %v", status, rdy)
	}

	srv.draining.Store(true)
	status, rdy = call(t, ts, "GET", "/readyz", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status %d, want 503", status)
	}
	if rdy["state"] != "draining" || rdy["ready"] != false {
		t.Fatalf("draining readyz body: %v", rdy)
	}

	// Draining refuses new routing, not existing work: a session can
	// still be opened directly (the load balancer is what honours
	// readyz) and served.
	id, _ := openSession(t, ts, pipeSrc)
	if status, m := call(t, ts, "GET", "/v1/sessions/"+id+"/report", nil); status != http.StatusOK {
		t.Fatalf("report while draining: %d %v", status, m)
	}

	srv.draining.Store(false)
	if status, rdy = call(t, ts, "GET", "/readyz", nil); status != http.StatusOK || rdy["state"] != "ready" {
		t.Fatalf("undrained readyz: %d %v", status, rdy)
	}
}

// TestInboundTraceID checks that a well-formed client X-Trace-Id is
// adopted as the request's trace id (echoed in the response header and
// visible at /trace/last), while malformed ids fall back to a
// server-generated one.
func TestInboundTraceID(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	ts := newTestServer(t, 4, 4)
	id, _ := openSession(t, ts, pipeSrc)

	post := func(traceID string) *http.Response {
		t.Helper()
		body := bytes.NewReader([]byte(`{"edits":[{"op":"adjust","inst":"g2","delta":"10ps"}]}`))
		req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/"+id+"/edits", body)
		if err != nil {
			t.Fatal(err)
		}
		if traceID != "" {
			req.Header.Set("X-Trace-Id", traceID)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	before := telemetry.Snapshot().Counters["server.trace_ids_inherited"]
	resp := post("loadgen-7.test_42")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "loadgen-7.test_42" {
		t.Fatalf("echoed trace id %q, want the inbound one", got)
	}
	if after := telemetry.Snapshot().Counters["server.trace_ids_inherited"]; after != before+1 {
		t.Fatalf("trace_ids_inherited %d -> %d, want +1", before, after)
	}

	// The adopted id is the one served from the session's /trace/last.
	status, tr := call(t, ts, "GET", "/v1/sessions/"+id+"/trace/last", nil)
	if status != http.StatusOK || tr["id"] != "loadgen-7.test_42" {
		t.Fatalf("trace/last after tagged request: %d %v", status, tr)
	}

	// Malformed ids (bad characters, oversized) are not adopted.
	for _, bad := range []string{"has space", "semi;colon", strings.Repeat("x", 65)} {
		resp := post(bad)
		if got := resp.Header.Get("X-Trace-Id"); got == bad || got == "" {
			t.Fatalf("malformed inbound id %q must be replaced, got %q", bad, got)
		}
	}
}

// TestExpositionCoversLoadObservability checks the full Prometheus
// surface stays valid with the new draining gauge and inherited-trace
// counter registered, and that both metrics actually render.
func TestExpositionCoversLoadObservability(t *testing.T) {
	ts := newTestServer(t, 4, 4)
	mTraceInherited.Inc() // counters render only once non-registered-at-zero paths ran

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.CheckExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{"hb_server_draining", "hb_server_trace_ids_inherited_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestTopoEditBatchAddRemove pins the contract the load generator's
// edit_topo class relies on: adding and removing a uniquely named
// buffer in one batch is accepted, classified as a full rebuild (the
// topology changed mid-batch), and leaves the design's timing intact.
func TestTopoEditBatchAddRemove(t *testing.T) {
	ts := newTestServer(t, 4, 4)
	id, m0 := openSession(t, ts, pipeSrc)
	worst0 := m0["worst_slack"]

	status, m := call(t, ts, "POST", "/v1/sessions/"+id+"/edits", map[string]any{
		"edits": []map[string]any{
			{"op": "add", "inst": "lg_tmp_1", "ref": "BUF_X1",
				"conns": map[string]string{"A": "n2", "Y": "lg_tmp_1_y"}},
			{"op": "remove", "inst": "lg_tmp_1"},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("topo batch: %d %v", status, m)
	}
	if m["incremental"] != false {
		t.Fatalf("add+remove batch must force a full rebuild: %v", m)
	}
	if m["worst_slack"] != worst0 {
		t.Fatalf("net-zero topo batch changed worst slack: %v -> %v", worst0, m["worst_slack"])
	}
	// The session stays usable for the steady-state mix afterwards.
	if status, m := call(t, ts, "GET", "/v1/sessions/"+id+"/report", nil); status != http.StatusOK {
		t.Fatalf("report after topo batch: %d %v", status, m)
	}
}

// TestLoadgenAgainstRealDaemon runs the open-loop generator end to end
// against the real server handler: the full default mix (delay edits,
// topology edits, what-ifs, reports, park/resume) at a modest rate,
// with trace tagging on. Nothing may 5xx, every scheduled class must
// complete work, and the slowest op's span tree must be retrievable.
func TestLoadgenAgainstRealDaemon(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	srv := newServer(celllib.Default(), serverConfig{maxSessions: 64, cacheSize: 16})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:   ts.URL,
		Rate:      150,
		Arrivals:  loadgen.ArrivalsPoisson,
		Duration:  700 * time.Millisecond,
		Sessions:  8,
		Workload:  "pipe",
		Design:    pipeSrc,
		EditInsts: []string{"g2", "g3"},
		TopoNets:  []string{"n2"},
		Seed:      11,
		TraceTag:  "e2e",
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Failed5xx(); n != 0 {
		t.Fatalf("%d failed ops against the real daemon: %+v", n, res.Classes)
	}
	for _, class := range []string{loadgen.OpEditDelay, loadgen.OpEditTopo, loadgen.OpWhatIf, loadgen.OpReport, loadgen.OpParkResume} {
		c := res.Classes[class]
		if c == nil || c.Completed == 0 {
			t.Errorf("class %s completed no operations: %+v", class, c)
		}
	}
	if res.SlowestTrace == nil {
		t.Fatalf("slowest-op trace not fetched (slowest %s on %s)", res.SlowestTraceID, res.SlowestClass)
	}
	// The daemon's admission counters moved during the run.
	delta := res.ServerDelta()
	if delta["hummingbirdd.edit_calls"] <= 0 {
		t.Fatalf("server-side edit counter did not move: %v", delta)
	}
}

// TestDebugMux checks the profiling mux serves the pprof index and
// named profiles (heap, goroutine) without exposing the service API.
func TestDebugMux(t *testing.T) {
	ts := httptest.NewServer(debugMux())
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("service API must not be reachable on the debug port")
	}
}
