// Subprocess harness shared by the chaos suite (failpoint-tagged) and
// the fleet failover tests (untagged): the test binary re-execs itself
// as a real hummingbirdd via run(), so process-level faults — SIGKILL,
// torn journal tails, replica death under a fleet router — hit the same
// code paths production does.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	// Child mode: become the daemon. The parent passes the argument vector
	// JSON-encoded to sidestep shell quoting.
	if argsJSON := os.Getenv("HB_CHAOS_DAEMON_ARGS"); argsJSON != "" {
		var args []string
		if err := json.Unmarshal([]byte(argsJSON), &args); err != nil {
			fmt.Fprintln(os.Stderr, "chaos daemon: bad args:", err)
			os.Exit(2)
		}
		if err := run(args, os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "chaos daemon:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one live hummingbirdd child process under test.
type daemon struct {
	base string
	cmd  *exec.Cmd
	done chan error
}

// startDaemon re-execs the test binary as a hummingbirdd with the given
// extra flags and waits until /healthz answers.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	args := append([]string{"-addr", addr}, extra...)
	argsJSON, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "HB_CHAOS_DAEMON_ARGS="+string(argsJSON))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{base: "http://" + addr, cmd: cmd, done: make(chan error, 1)}
	go func() {
		d.done <- cmd.Wait()
		close(d.done) // later receives (cleanup after an explicit kill) read nil
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-d.done
	})

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon at %s never became healthy", d.base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill9 delivers SIGKILL — the crash the journal must survive.
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d.done
}

// req issues one JSON request against the live daemon.
func (d *daemon) req(t *testing.T, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	httpReq, err := http.NewRequest(method, d.base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	return resp.StatusCode, m
}

// arm arms a failpoint in the live daemon over HTTP.
func (d *daemon) arm(t *testing.T, name, spec string) {
	t.Helper()
	httpReq, err := http.NewRequest("PUT", d.base+"/debug/failpoints/"+name, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arm %s=%s: %d", name, spec, resp.StatusCode)
	}
}
