// Command hummingbirdd is the long-lived analysis session server: clients
// open a design, stream edits against it and receive delta timing reports,
// the way a resynthesis tool drives the analyzer in the paper's Algorithm 3
// loop — but over HTTP/JSON so the elaborated network and cached analysis
// state survive between calls.
//
// Protocol (see docs/INCREMENTAL.md for a worked curl session):
//
//	POST   /v1/sessions                 {"design": "<netlist text>"} → session + first report
//	GET    /v1/sessions                 list open sessions
//	GET    /v1/sessions/{id}            session summary
//	POST   /v1/sessions/{id}/edits      {"edits":[...]} → delta report
//	GET    /v1/sessions/{id}/report     full analysis JSON
//	GET    /v1/sessions/{id}/constraints?net=N  Algorithm 2 budgets
//	DELETE /v1/sessions/{id}            close (parks the state in the LRU cache)
//	GET    /healthz                     liveness
//	GET    /metrics                     telemetry snapshot JSON
//
// Sessions are concurrent; edits within one session are serialized. Closed
// sessions' engines are parked in an LRU cache keyed by the design's state
// hash, so re-opening the same design (adjustments included) skips the full
// elaboration.
package main

import (
	"container/list"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/incremental"
	"hummingbird/internal/netlist"
	"hummingbird/internal/report"
	"hummingbird/internal/telemetry"
)

var (
	mSessionsOpened = telemetry.NewCounter("hummingbirdd.sessions_opened")
	mSessionsClosed = telemetry.NewCounter("hummingbirdd.sessions_closed")
	mEditCalls      = telemetry.NewCounter("hummingbirdd.edit_calls")
	mCacheHits      = telemetry.NewCounter("hummingbirdd.cache_hits")
	mCacheMisses    = telemetry.NewCounter("hummingbirdd.cache_misses")
	mCacheEvictions = telemetry.NewCounter("hummingbirdd.cache_evictions")
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hummingbirdd:", err)
		os.Exit(1)
	}
}

func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("hummingbirdd", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		addr        = fs.String("addr", "127.0.0.1:7077", "listen address")
		libFile     = fs.String("lib", "", "cell library file (default: built-in library)")
		maxSessions = fs.Int("max-sessions", 64, "maximum concurrently open sessions")
		cacheSize   = fs.Int("cache", 16, "LRU capacity for parked analysis states")
		metricsOut  = fs.String("metrics-out", "", "write a JSON telemetry snapshot to this file on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	lib := celllib.Default()
	if *libFile != "" {
		lf, err := os.Open(*libFile)
		if err != nil {
			return err
		}
		var perr error
		lib, perr = celllib.ParseLibrary(lf)
		lf.Close()
		if perr != nil {
			return perr
		}
	}
	telemetry.Enable()
	defer telemetry.Disable()

	srv := newServer(lib, *maxSessions, *cacheSize)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(w, "hummingbirdd listening on %s\n", *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(w, "hummingbirdd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteSnapshot(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote telemetry snapshot to %s\n", *metricsOut)
	}
	return nil
}

// sess is one open analysis session. Its mutex serializes edits and
// report reads within the session; different sessions run concurrently.
type sess struct {
	id string

	mu      sync.Mutex
	eng     *incremental.Engine
	edits   int
	created time.Time
	// prevSlack maps net name → slack after the previous analysis, for
	// delta reports (by name so full rebuilds that renumber nets still
	// diff correctly).
	prevSlack map[string]clock.Time
}

// server owns the session table and the parked-state cache.
type server struct {
	lib  *celllib.Library
	opts core.Options

	mu          sync.Mutex
	sessions    map[string]*sess
	nextID      int
	maxSessions int
	cache       *lruCache
}

func newServer(lib *celllib.Library, maxSessions, cacheSize int) *server {
	return &server{
		lib:         lib,
		opts:        core.DefaultOptions(),
		sessions:    make(map[string]*sess),
		maxSessions: maxSessions,
		cache:       newLRU(cacheSize),
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleOpen)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSummary)
	mux.HandleFunc("POST /v1/sessions/{id}/edits", s.handleEdits)
	mux.HandleFunc("GET /v1/sessions/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/sessions/{id}/constraints", s.handleConstraints)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleClose)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		telemetry.WriteSnapshot(w)
	})
	return mux
}

type openRequest struct {
	// Design is the netlist text (the .hb format).
	Design string `json:"design"`
	// Adjustments maps instance names to additive delay adjustments
	// ("200ps", "-1ns").
	Adjustments map[string]string `json:"adjustments,omitempty"`
}

func (s *server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req openRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	design, err := netlist.ParseString(req.Design)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "parse design: %v", err)
		return
	}
	opts := s.opts
	opts.Adjustments = map[string]clock.Time{}
	for inst, v := range req.Adjustments {
		t, err := netlist.ParseTime(v)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "adjustment %s: %v", inst, err)
			return
		}
		opts.Adjustments[inst] = t
	}

	s.mu.Lock()
	if len(s.sessions) >= s.maxSessions {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "session limit (%d) reached", s.maxSessions)
		return
	}
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	// Probe the parked-state cache before paying for an elaboration.
	key := incremental.StateKey(design, opts.Adjustments)
	eng := s.cache.take(key)
	s.mu.Unlock()

	cached := eng != nil
	if cached {
		mCacheHits.Inc()
	} else {
		mCacheMisses.Inc()
		var err error
		eng, err = incremental.Open(s.lib, design, opts)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "open design: %v", err)
			return
		}
	}
	ss := &sess{id: id, eng: eng, created: time.Now()}
	ss.rememberSlacks()
	s.mu.Lock()
	s.sessions[id] = ss
	s.mu.Unlock()
	mSessionsOpened.Inc()

	resp := map[string]any{
		"session": id,
		"cached":  cached,
	}
	ss.mu.Lock()
	addSummary(resp, ss)
	ss.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		if ss := s.session(id); ss != nil {
			ss.mu.Lock()
			m := map[string]any{"session": ss.id}
			addSummary(m, ss)
			ss.mu.Unlock()
			out = append(out, m)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *server) session(id string) *sess {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	ss.mu.Lock()
	resp := map[string]any{"session": ss.id}
	addSummary(resp, ss)
	ss.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// addSummary fills the common session fields; callers hold ss.mu.
func addSummary(m map[string]any, ss *sess) {
	eng := ss.eng
	d := eng.Design()
	m["design"] = d.Name
	m["edits"] = ss.edits
	m["state_hash"] = eng.StateHash()
	if rep := eng.Report(); rep != nil {
		m["ok"] = rep.OK
		m["worst_slack"] = timeJSON(rep.WorstSlack())
		m["slow_elements"] = len(rep.SlowElems)
	}
	a := eng.Analyzer()
	m["cells"] = len(d.Instances)
	m["nets"] = len(a.NW.Nets)
	m["clusters"] = len(a.NW.Clusters)
}

type editJSON struct {
	Op    string            `json:"op"`
	Inst  string            `json:"inst,omitempty"`
	To    string            `json:"to,omitempty"`
	Delta string            `json:"delta,omitempty"`
	Pin   string            `json:"pin,omitempty"`
	Net   string            `json:"net,omitempty"`
	Ref   string            `json:"ref,omitempty"`
	Conns map[string]string `json:"conns,omitempty"`
}

func (e *editJSON) toEdit() (incremental.Edit, error) {
	var ed incremental.Edit
	switch e.Op {
	case "adjust":
		ed.Op = incremental.Adjust
		t, err := netlist.ParseTime(e.Delta)
		if err != nil {
			return ed, fmt.Errorf("adjust %s: delta: %w", e.Inst, err)
		}
		ed.Delta = t
	case "resize":
		ed.Op = incremental.Resize
	case "replace":
		ed.Op = incremental.Replace
	case "add":
		ed.Op = incremental.AddInst
		ed.New = &netlist.Instance{Name: e.Inst, Ref: e.Ref, Conns: e.Conns}
	case "remove":
		ed.Op = incremental.RemoveInst
	case "rewire":
		ed.Op = incremental.Rewire
	default:
		return ed, fmt.Errorf("unknown op %q", e.Op)
	}
	ed.Inst = e.Inst
	ed.To = e.To
	ed.Pin = e.Pin
	ed.Net = e.Net
	return ed, nil
}

func (s *server) handleEdits(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	var req struct {
		Edits []editJSON `json:"edits"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Edits) == 0 {
		httpError(w, http.StatusBadRequest, "no edits")
		return
	}
	edits := make([]incremental.Edit, len(req.Edits))
	for i := range req.Edits {
		ed, err := req.Edits[i].toEdit()
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "edit %d: %v", i, err)
			return
		}
		edits[i] = ed
	}
	mEditCalls.Inc()

	ss.mu.Lock()
	defer ss.mu.Unlock()
	prevWorst := clock.Inf
	if rep := ss.eng.Report(); rep != nil {
		prevWorst = rep.WorstSlack()
	}
	t0 := time.Now()
	out, err := ss.eng.Apply(edits...)
	elapsed := time.Since(t0)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "apply: %v", err)
		return
	}
	ss.edits += len(edits)

	rep := out.Report
	resp := map[string]any{
		"session":     ss.id,
		"incremental": out.Incremental,
		"elapsed_us":  elapsed.Microseconds(),
		"ok":          rep.OK,
		"worst_slack": timeJSON(rep.WorstSlack()),
	}
	if out.Incremental {
		resp["dirty_clusters"] = out.DirtyClusters
	} else {
		resp["fallback_reason"] = out.FallbackReason
	}
	if prevWorst != clock.Inf && rep.WorstSlack() != clock.Inf {
		resp["worst_slack_delta_ps"] = int64(rep.WorstSlack() - prevWorst)
	}
	resp["changed_nets"] = ss.slackDeltas()
	ss.rememberSlacks()
	writeJSON(w, http.StatusOK, resp)
}

// rememberSlacks snapshots per-net slacks for the next delta report;
// callers hold ss.mu.
func (ss *sess) rememberSlacks() {
	rep := ss.eng.Report()
	if rep == nil {
		ss.prevSlack = nil
		return
	}
	nw := ss.eng.Analyzer().NW
	m := make(map[string]clock.Time, len(nw.Nets))
	for i, name := range nw.Nets {
		m[name] = rep.Result.NetSlack[i]
	}
	ss.prevSlack = m
}

// slackDeltas lists the nets whose slack moved since the previous
// analysis, tightest new slack first, capped at 20 entries.
func (ss *sess) slackDeltas() []map[string]any {
	rep := ss.eng.Report()
	if rep == nil {
		return nil
	}
	nw := ss.eng.Analyzer().NW
	type delta struct {
		net      string
		now, was clock.Time
		hasWas   bool
	}
	var ds []delta
	for i, name := range nw.Nets {
		now := rep.Result.NetSlack[i]
		was, ok := ss.prevSlack[name]
		if ok && was == now {
			continue
		}
		if !ok && now == clock.Inf {
			continue
		}
		ds = append(ds, delta{net: name, now: now, was: was, hasWas: ok})
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].now != ds[j].now {
			return ds[i].now < ds[j].now
		}
		return ds[i].net < ds[j].net
	})
	total := len(ds)
	if total > 20 {
		ds = ds[:20]
	}
	out := make([]map[string]any, 0, len(ds)+1)
	for _, d := range ds {
		m := map[string]any{"net": d.net, "slack": timeJSON(d.now)}
		if d.hasWas {
			m["was"] = timeJSON(d.was)
		}
		out = append(out, m)
	}
	if total > len(ds) {
		out = append(out, map[string]any{"truncated": total - len(ds)})
	}
	return out
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	rep := ss.eng.Report()
	if rep == nil {
		httpError(w, http.StatusConflict, "no valid analysis (last edit failed to converge)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := report.WriteJSON(w, ss.eng.Analyzer(), rep); err != nil {
		httpError(w, http.StatusInternalServerError, "encode report: %v", err)
	}
}

func (s *server) handleConstraints(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	cons, err := ss.eng.Constraints()
	if err != nil {
		httpError(w, http.StatusConflict, "constraints: %v", err)
		return
	}
	a := ss.eng.Analyzer()
	var names []string
	if q := r.URL.Query()["net"]; len(q) > 0 {
		names = q
	} else {
		names = append(names, a.NW.Nets...)
	}
	type netTimes struct {
		Net      string `json:"net"`
		Cluster  int    `json:"cluster"`
		Pass     int    `json:"pass"`
		Ready    any    `json:"ready"`
		Required any    `json:"required"`
	}
	var out []netTimes
	for _, name := range names {
		id, ok := a.NW.NetIdx[name]
		if !ok {
			httpError(w, http.StatusUnprocessableEntity, "unknown net %q", name)
			return
		}
		for _, nt := range cons.NetTimes(id) {
			if nt.Ready() == -clock.Inf && nt.Required() == clock.Inf {
				continue
			}
			out = append(out, netTimes{
				Net: name, Cluster: nt.Cluster, Pass: nt.Pass,
				Ready: timeJSON(nt.Ready()), Required: timeJSON(nt.Required()),
			})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":           ss.id,
		"backward_snatches": cons.BackwardSnatches,
		"forward_snatches":  cons.ForwardSnatches,
		"nets":              out,
	})
}

func (s *server) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ss := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	mSessionsClosed.Inc()
	ss.mu.Lock()
	eng := ss.eng
	ss.eng = nil
	ss.mu.Unlock()
	parked := false
	if eng != nil && eng.Report() != nil {
		s.mu.Lock()
		if evicted := s.cache.put(eng.StateHash(), eng); evicted {
			mCacheEvictions.Inc()
		}
		s.mu.Unlock()
		parked = true
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "closed": true, "parked": parked})
}

// timeJSON renders a clock.Time as a JSON-friendly value: integer
// picoseconds, or the string "inf"/"-inf" at the sentinels.
func timeJSON(t clock.Time) any {
	switch t {
	case clock.Inf:
		return "inf"
	case -clock.Inf:
		return "-inf"
	}
	return int64(t)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	// Keep error bodies single-line JSON for easy client handling.
	msg = strings.ReplaceAll(msg, "\n", " ")
	writeJSON(w, status, map[string]any{"error": msg})
}

// lruCache parks closed sessions' engines, keyed by state hash. take
// transfers ownership out of the cache (an engine is never shared).
type lruCache struct {
	max int
	ll  *list.List
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	eng *incremental.Engine
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lruCache) take(key string) *incremental.Engine {
	el, ok := c.m[key]
	if !ok {
		return nil
	}
	c.ll.Remove(el)
	delete(c.m, key)
	return el.Value.(*lruEntry).eng
}

func (c *lruCache) put(key string, eng *incremental.Engine) (evicted bool) {
	if c.max <= 0 {
		return false
	}
	if el, ok := c.m[key]; ok {
		// Same state already parked; keep the existing one fresh.
		c.ll.MoveToFront(el)
		return false
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, eng: eng})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
		return true
	}
	return false
}
