// Command hummingbirdd is the long-lived analysis session server: clients
// open a design, stream edits against it and receive delta timing reports,
// the way a resynthesis tool drives the analyzer in the paper's Algorithm 3
// loop — but over HTTP/JSON so the elaborated network and cached analysis
// state survive between calls.
//
// Protocol (see docs/INCREMENTAL.md for a worked curl session):
//
//	POST   /v1/sessions                 {"design": "<netlist text>"} → session + first report
//	GET    /v1/sessions                 list open sessions
//	GET    /v1/sessions/{id}            session summary
//	POST   /v1/sessions/{id}/edits      {"edits":[...]} → delta report
//	GET    /v1/sessions/{id}/report     full analysis JSON
//	GET    /v1/sessions/{id}/constraints?net=N  Algorithm 2 budgets
//	GET    /v1/sessions/{id}/trace/last span tree of the session's last request
//	DELETE /v1/sessions/{id}            close (parks the state in the LRU cache)
//	GET    /healthz                     liveness
//	GET    /readyz                      readiness; "state" names why not: starting/degraded/draining
//	GET    /metrics                     Prometheus text exposition
//	GET    /metrics.json                telemetry snapshot JSON
//	GET    /buildinfo                   build metadata (module version, VCS revision)
//
// Sessions are concurrent; edits within one session are serialized. Closed
// sessions' engines are parked in an LRU cache keyed by the design's state
// hash, so re-opening the same design (adjustments included) skips the full
// elaboration.
//
// Observability (see docs/OBSERVABILITY.md): every request runs under a
// trace whose id is generated at admission — or adopted from a well-formed
// client X-Trace-Id request header (load generators tag their ops this
// way) — and returned in the X-Trace-Id header; nested spans cover
// admission wait, journal append+fsync, edit classification, dirty-cluster
// recompute, each fixed-point sweep, and response encoding. The finished span tree of a session's latest request
// is served at /trace/last, every trace is written in Chrome trace-event
// format under -trace-dir when set, and any request slower than
// -slow-threshold dumps its tree to the server log.
//
// Fault tolerance (see docs/ROBUSTNESS.md):
//
//   - Every request runs under a deadline (-request-timeout); an analysis
//     that exceeds it is cancelled between clusters and reported as a typed
//     "cancelled" error (504). Non-converging designs exhaust the sweep
//     budget (-max-sweeps) and report a typed "non_convergence" error (422).
//   - Handler panics are recovered; the session they ran against is
//     quarantined — later operations on it fail fast with 503 and the panic
//     diagnostic — while every other session keeps serving.
//   - With -journal-dir set, every session-mutating operation is journaled
//     and fsynced before the response is acknowledged; a restarted daemon
//     replays the journals and restores the sessions under their old ids.
//   - Admission control (-max-inflight, -queue-timeout) sheds load with
//     429 + Retry-After instead of queueing without bound.
//   - -failpoints exposes /debug/failpoints for fault injection (chaos
//     tests); HB_FAILPOINTS arms points at startup.
//
// Load testing and live profiling: -debug-addr starts a second listener
// serving net/http/pprof (CPU/heap/goroutine/mutex/block profiles of a
// daemon under load, never routed through — or shed by — the service mux);
// on SIGINT/SIGTERM the daemon reports "draining" at /readyz for
// -drain-grace before closing the listener, so balancers and
// cmd/hummingbirdload stop routing new sessions to it first.
package main

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hummingbird/internal/buildinfo"
	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/core"
	"hummingbird/internal/failpoint"
	"hummingbird/internal/fleet"
	"hummingbird/internal/incremental"
	"hummingbird/internal/journal"
	"hummingbird/internal/netlist"
	"hummingbird/internal/report"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/flight"
	"hummingbird/internal/telemetry/span"
)

var (
	mSessionsOpened  = telemetry.NewCounter("hummingbirdd.sessions_opened")
	mSessionsClosed  = telemetry.NewCounter("hummingbirdd.sessions_closed")
	mEditCalls       = telemetry.NewCounter("hummingbirdd.edit_calls")
	mCacheHits       = telemetry.NewCounter("hummingbirdd.cache_hits")
	mCacheMisses     = telemetry.NewCounter("hummingbirdd.cache_misses")
	mCacheEvictions  = telemetry.NewCounter("hummingbirdd.cache_evictions")
	mPanicsRecovered = telemetry.NewCounter("server.panics_recovered")
	mRequestsShed    = telemetry.NewCounter("server.requests_shed")
	mQuarantined     = telemetry.NewCounter("server.sessions_quarantined")
	mReplayed        = telemetry.NewCounter("server.sessions_replayed")
	mTraceInherited  = telemetry.NewCounter("server.trace_ids_inherited")
)

// requestTimers holds one latency histogram per guarded endpoint; the op
// names match the guard() labels so the Prometheus surface exposes
// hb_server_request_<op>_seconds histograms.
var requestTimers = map[string]*telemetry.Timer{
	"open":        telemetry.NewTimer("server.request.open"),
	"list":        telemetry.NewTimer("server.request.list"),
	"summary":     telemetry.NewTimer("server.request.summary"),
	"edits":       telemetry.NewTimer("server.request.edits"),
	"report":      telemetry.NewTimer("server.request.report"),
	"constraints": telemetry.NewTimer("server.request.constraints"),
	"close":       telemetry.NewTimer("server.request.close"),
	"park":        telemetry.NewTimer("server.request.park"),
}

// traceSeq disambiguates trace ids generated within one millisecond.
var traceSeq atomic.Int64

// newTraceID generates a request trace id at admission: wall-clock millis
// in base36 plus a process-wide sequence number, unique within and across
// restarts of one daemon.
func newTraceID() string {
	return strconv.FormatInt(time.Now().UnixMilli(), 36) + "-" +
		strconv.FormatInt(traceSeq.Add(1), 36)
}

// headerTokenOK validates a caller-supplied trace or span identifier:
// adopting an arbitrary header verbatim would let a client inject
// log/filename garbage, so only short ids over a conservative alphabet
// are accepted.
func headerTokenOK(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// inboundTraceID validates a client-supplied X-Trace-Id. A load
// generator (or an upstream proxy, or the fleet router's failover
// orchestration) tags its requests so a slow response can be matched to
// the daemon's trace exports.
func inboundTraceID(r *http.Request) (string, bool) {
	id := r.Header.Get(span.TraceIDHeader)
	if !headerTokenOK(id) {
		return "", false
	}
	return id, true
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hummingbirdd:", err)
		os.Exit(1)
	}
}

func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("hummingbirdd", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		addr        = fs.String("addr", "127.0.0.1:7077", "listen address")
		libFile     = fs.String("lib", "", "cell library file (default: built-in library)")
		maxSessions = fs.Int("max-sessions", 64, "maximum concurrently open sessions")
		cacheSize   = fs.Int("cache", 16, "LRU capacity for parked analysis states")
		metricsOut  = fs.String("metrics-out", "", "write a JSON telemetry snapshot to this file on shutdown")
		reqTimeout  = fs.Duration("request-timeout", 30*time.Second, "per-request deadline; slow analyses are cancelled (0 = none)")
		maxInflight = fs.Int("max-inflight", 32, "maximum concurrently served requests (0 = unbounded)")
		queueWait   = fs.Duration("queue-timeout", time.Second, "how long an over-limit request may wait before 429")
		maxSweeps   = fs.Int("max-sweeps", 0, "fixed-point sweep budget per iteration (0 = auto)")
		workers     = fs.Int("workers", 0, "parallel analysis workers per request; full analyses and large incremental recomputes spread across this many goroutines (<=1 = sequential)")
		journalDir  = fs.String("journal-dir", "", "directory for per-session edit journals (crash recovery; empty = off)")
		shutGrace   = fs.Duration("shutdown-grace", 5*time.Second, "how long shutdown may drain connections and flush journals")
		failpoints  = fs.Bool("failpoints", false, "expose /debug/failpoints fault-injection endpoints")
		traceDir    = fs.String("trace-dir", "", "write every finished request trace here in Chrome trace-event format (empty = off)")
		slowThresh  = fs.Duration("slow-threshold", 0, "log the full span tree of any request slower than this (0 = off)")
		debugAddr   = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		mutexFrac   = fs.Int("mutex-profile-fraction", 0, "runtime mutex contention sampling rate for /debug/pprof/mutex (0 = off)")
		blockRate   = fs.Int("block-profile-rate", 0, "runtime blocking sampling rate in ns for /debug/pprof/block (0 = off)")
		drainGrace  = fs.Duration("drain-grace", 0, "how long /readyz advertises draining before the listener stops accepting (0 = immediate)")
		replicaID   = fs.String("replica-id", "", "stable replica id in a fleet (prefixes session ids, labels metrics; empty = standalone)")
		traceRetain = fs.Int("trace-retain", 256, "finished request traces retained for GET /v1/traces/{id}")
		eventRetain = fs.Int("events-retain", 512, "lifecycle events retained in the flight recorder (GET /events)")
		version     = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.WriteVersion(w, "hummingbirdd")
		return nil
	}
	if env := os.Getenv("HB_FAILPOINTS"); env != "" {
		if err := failpoint.ArmFromEnv(env); err != nil {
			return err
		}
	}
	lib := celllib.Default()
	if *libFile != "" {
		lf, err := os.Open(*libFile)
		if err != nil {
			return err
		}
		var perr error
		lib, perr = celllib.ParseLibrary(lf)
		lf.Close()
		if perr != nil {
			return perr
		}
	}
	telemetry.Enable()
	defer telemetry.Disable()
	telemetry.RegisterRuntimeGauges()
	if *replicaID != "" {
		// Every Prometheus sample this process exposes carries the replica
		// label, so a fleet-wide scrape can tell the members apart.
		telemetry.SetConstLabels(map[string]string{"replica": *replicaID})
	}

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return err
		}
	}
	cfg := serverConfig{
		maxSessions:    *maxSessions,
		cacheSize:      *cacheSize,
		requestTimeout: *reqTimeout,
		maxInflight:    *maxInflight,
		queueTimeout:   *queueWait,
		maxSweeps:      *maxSweeps,
		workers:        *workers,
		failpoints:     *failpoints,
		traceDir:       *traceDir,
		slowThreshold:  *slowThresh,
		replicaID:      *replicaID,
		traceRetain:    *traceRetain,
		eventsRetain:   *eventRetain,
		errLog:         errW,
	}
	if *journalDir != "" {
		jm, err := journal.NewManager(*journalDir)
		if err != nil {
			return err
		}
		cfg.journal = jm
	}
	srv := newServer(lib, cfg)
	if cfg.journal != nil {
		restored := srv.recoverSessions()
		if restored > 0 {
			fmt.Fprintf(w, "hummingbirdd: replayed %d session(s) from %s\n", restored, *journalDir)
		}
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	// The profiling listener is separate from the service listener so a
	// scrape or a 30s CPU capture can never consume an admission slot,
	// and so the service port never exposes pprof. Mutex and block
	// profiles only sample when their runtime rates are set.
	var dbgSrv *http.Server
	if *debugAddr != "" {
		runtime.SetMutexProfileFraction(*mutexFrac)
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
		}
		dbgSrv = &http.Server{Addr: *debugAddr, Handler: debugMux()}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(errW, "hummingbirdd: debug listener: %v\n", err)
			}
		}()
		fmt.Fprintf(w, "hummingbirdd debug (pprof) on %s\n", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(w, "hummingbirdd listening on %s\n", *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown, in two phases: first advertise draining on
	// /readyz for the grace window — load balancers and load generators
	// stop sending new sessions while the listener still serves — then
	// stop accepting and drain in-flight connections.
	srv.draining.Store(true)
	fmt.Fprintln(w, "hummingbirdd: draining")
	if *drainGrace > 0 {
		timer := time.NewTimer(*drainGrace)
		select {
		case <-timer.C:
		case err := <-errc:
			timer.Stop()
			return err
		}
	}
	fmt.Fprintln(w, "hummingbirdd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), *shutGrace)
	defer cancel()
	err := httpSrv.Shutdown(shutCtx)
	if dbgSrv != nil {
		dbgSrv.Shutdown(shutCtx)
	}
	// Flush and close journals, drop parked state — even when the drain
	// above timed out, acknowledged records must reach the disk.
	srv.shutdown()
	if err != nil {
		return err
	}
	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteSnapshot(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote telemetry snapshot to %s\n", *metricsOut)
	}
	return nil
}

// debugMux serves the live profiling surface: pprof index plus the CPU,
// trace, and symbol endpoints. Heap, goroutine, mutex, block and allocs
// profiles are reachable through the index handler's named lookup
// (/debug/pprof/heap etc.). Registered on an explicit mux — never
// http.DefaultServeMux — so nothing else in the process can leak
// handlers onto the debug port.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "debug": true})
	})
	return mux
}

// sess is one open analysis session. Its mutex serializes edits and
// report reads within the session; different sessions run concurrently.
type sess struct {
	id string

	mu      sync.Mutex
	eng     *incremental.Engine
	jw      *journal.Writer // nil when journaling is off
	edits   int
	created time.Time
	// designKey is the fleet routing key (hash of design + adjustments);
	// reported in the replication inventory so a reconciling router can
	// re-pin the session without replaying its journal.
	designKey string
	// prevSlack maps net name → slack after the previous analysis, for
	// delta reports (by name so full rebuilds that renumber nets still
	// diff correctly).
	prevSlack map[string]clock.Time
	// lastTrace is the finished span tree of the session's most recent
	// guarded request (served at /trace/last). It dies with the session.
	lastTrace *span.Trace
}

// serverConfig bundles the run-time knobs of the daemon.
type serverConfig struct {
	maxSessions    int
	cacheSize      int
	requestTimeout time.Duration // 0 = no deadline
	maxInflight    int           // 0 = unbounded
	queueTimeout   time.Duration
	maxSweeps      int              // 0 = auto
	workers        int              // parallel analysis workers; <=1 = sequential
	journal        *journal.Manager // nil = journaling off
	failpoints     bool             // expose /debug/failpoints
	traceDir       string           // Chrome trace-event export dir; "" = off
	slowThreshold  time.Duration    // slow-request log threshold; 0 = off
	replicaID      string           // fleet replica id; "" = standalone
	traceRetain    int              // trace ring capacity; <=0 = default
	eventsRetain   int              // flight recorder capacity; <=0 = default
	errLog         io.Writer        // panic stacks and replay diagnostics
}

// server owns the session table and the parked-state cache.
type server struct {
	lib  *celllib.Library
	opts core.Options
	cfg  serverConfig

	// inflight is the admission semaphore; nil when unbounded.
	inflight chan struct{}

	// ready flips to true once every journal has been replayed (or
	// immediately when journaling is off); /readyz gates on it.
	ready atomic.Bool

	// draining flips to true when graceful shutdown begins: /readyz
	// answers 503 with state "draining" so load balancers and load
	// generators stop routing new sessions here while in-flight work
	// completes.
	draining atomic.Bool

	mu          sync.Mutex
	sessions    map[string]*sess
	quarantined map[string]string // id → diagnostic of the fault
	nextID      int
	cache       *lruCache

	// compile refcounts CompiledDesigns by state key, its own lock —
	// independent of s.mu so engine release callbacks (fired under a
	// session's mutex) can never deadlock against the session table.
	compile *compileCache

	// Fleet replication (see replication.go): outbound journal streams by
	// session, inbound standby journals from peers, and the HTTP client
	// the streams share. adoptMu serializes adopt promotions.
	streams      *fleet.StreamSet
	standby      *standbyStore
	streamClient *http.Client
	adoptMu      sync.Mutex

	// warm holds compile-cache references pre-acquired from streamed
	// standby frame 0, so adopting a session here finds its
	// CompiledDesign hot. Guarded by warmMu; a nil value marks a warm
	// build in flight (see warmStandby in replication.go).
	warmMu sync.Mutex
	warm   map[string]func()

	// traces retains recently finished request traces for
	// GET /v1/traces/{id} — the fragment store the fleet router's
	// cross-process trace stitcher pulls from. flight is the bounded
	// lifecycle-event timeline behind GET /events.
	traces *span.Ring
	flight *flight.Recorder
}

// processName labels this daemon's trace fragments and flight events:
// the replica id in a fleet, the binary name standalone.
func (s *server) processName() string {
	if s.cfg.replicaID != "" {
		return s.cfg.replicaID
	}
	return "hummingbirdd"
}

func newServer(lib *celllib.Library, cfg serverConfig) *server {
	if cfg.errLog == nil {
		cfg.errLog = io.Discard
	}
	opts := core.DefaultOptions()
	opts.MaxSweeps = cfg.maxSweeps
	opts.Workers = cfg.workers
	if cfg.traceRetain <= 0 {
		cfg.traceRetain = 256
	}
	s := &server{
		lib:         lib,
		opts:        opts,
		cfg:         cfg,
		sessions:    make(map[string]*sess),
		quarantined: make(map[string]string),
		cache:       newLRU(cfg.cacheSize),
		compile:     newCompileCache(),
		warm:        make(map[string]func()),
		traces:      span.NewRing(cfg.traceRetain),
	}
	name := "hummingbirdd"
	if cfg.replicaID != "" {
		name = cfg.replicaID
	}
	s.flight = flight.NewRecorder(name, cfg.eventsRetain)
	if cfg.maxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.maxInflight)
	}
	if cfg.journal == nil {
		s.ready.Store(true) // nothing to replay
	} else {
		s.streams = fleet.NewStreamSet()
		s.streamClient = &http.Client{Timeout: 5 * time.Second}
		st, err := newStandbyStore(cfg.journal.Dir())
		if err != nil {
			fmt.Fprintf(cfg.errLog, "hummingbirdd: %v (journal replication disabled)\n", err)
		} else {
			s.standby = st
		}
		telemetry.NewGaugeFunc("fleet.stream_lag_frames", func() float64 {
			return float64(s.streams.TotalLag())
		})
		telemetry.NewGaugeFunc("fleet.streams_active", func() float64 {
			return float64(s.streams.Len())
		})
	}
	// Server-health gauges. NewGaugeFunc replaces by name, so tests that
	// build several servers in one process always read the newest one.
	telemetry.NewGaugeFunc("server.inflight", func() float64 {
		return float64(len(s.inflight))
	})
	telemetry.NewGaugeFunc("server.draining", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	telemetry.NewGaugeFunc("server.sessions_open", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.sessions))
	})
	telemetry.NewGaugeFunc("server.sessions_quarantined", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.quarantined))
	})
	telemetry.NewGaugeFunc("server.parked_lru", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.cache.len())
	})
	// Compile-cache gauges (rendered as hb_compile_cache_designs and
	// hb_compile_cache_refs on /metrics): distinct shared CompiledDesigns
	// and the total session references on them.
	telemetry.NewGaugeFunc("compile_cache.designs", func() float64 {
		return float64(s.compile.designs())
	})
	telemetry.NewGaugeFunc("compile_cache.refs", func() float64 {
		return float64(s.compile.totalRefs())
	})
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.guard("open", s.handleOpen))
	mux.HandleFunc("GET /v1/sessions", s.guard("list", s.handleList))
	mux.HandleFunc("GET /v1/sessions/{id}", s.guard("summary", s.handleSummary))
	mux.HandleFunc("POST /v1/sessions/{id}/edits", s.guard("edits", s.handleEdits))
	mux.HandleFunc("GET /v1/sessions/{id}/report", s.guard("report", s.handleReport))
	mux.HandleFunc("GET /v1/sessions/{id}/constraints", s.guard("constraints", s.handleConstraints))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.guard("close", s.handleClose))
	mux.HandleFunc("GET /v1/sessions/{id}/trace/last", s.handleTraceLast)
	// Fleet control plane (replication.go). Park runs under the guard
	// (it mutates a session, so it gets tracing, quarantine fast-fail
	// and panic isolation); the replication endpoints are unguarded like
	// /readyz — the router's failover orchestration must keep working
	// while the service lanes are saturated.
	mux.HandleFunc("POST /v1/sessions/{id}/park", s.guard("park", s.handlePark))
	mux.HandleFunc("GET /v1/sessions/{id}/journal", s.handleJournalExport)
	mux.HandleFunc("POST /v1/replication/sessions/{id}/frames", s.traced("repl_frames", s.handleReplFrames))
	mux.HandleFunc("POST /v1/replication/sessions/{id}/adopt", s.traced("repl_adopt", s.handleReplAdopt))
	mux.HandleFunc("POST /v1/replication/sessions/{id}/release", s.traced("repl_release", s.handleReplRelease))
	mux.HandleFunc("POST /v1/replication/sessions/{id}/forget", s.traced("repl_forget", s.handleReplForget))
	mux.HandleFunc("GET /v1/replication/inventory", s.handleReplInventory)
	// Fleet observability: retained trace fragments (the router's
	// /fleet/trace stitcher pulls these) and the flight-recorder event
	// timeline. Unguarded — they must answer during failover storms.
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	mux.HandleFunc("GET /events", s.flight.ServeHTTP)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		telemetry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		telemetry.WriteSnapshot(w)
	})
	mux.HandleFunc("GET /buildinfo", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			buildinfo.Info
			Replica string `json:"replica,omitempty"`
		}{buildinfo.Collect(), s.cfg.replicaID})
	})
	if s.cfg.failpoints {
		mux.HandleFunc("GET /debug/failpoints", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]any{"failpoints": failpoint.List()})
		})
		mux.HandleFunc("PUT /debug/failpoints/{name}", func(w http.ResponseWriter, r *http.Request) {
			spec, err := io.ReadAll(io.LimitReader(r.Body, 4096))
			if err != nil {
				httpError(w, http.StatusBadRequest, "read spec: %v", err)
				return
			}
			name := r.PathValue("name")
			if err := failpoint.Arm(name, strings.TrimSpace(string(spec))); err != nil {
				httpError(w, http.StatusUnprocessableEntity, "%v", err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"failpoint": name, "armed": true})
		})
		mux.HandleFunc("DELETE /debug/failpoints/{name}", func(w http.ResponseWriter, r *http.Request) {
			failpoint.Disarm(r.PathValue("name"))
			writeJSON(w, http.StatusOK, map[string]any{"failpoint": r.PathValue("name"), "armed": false})
		})
	}
	return mux
}

// guard is the middleware wrapped around every session endpoint: admission
// control (bounded in-flight requests with a queue timeout), the
// per-request deadline, the quarantine fast-fail, and panic isolation. A
// panicking handler quarantines only the session it ran against; the
// recover here keeps the rest of the process serving.
// startTracker wraps a ResponseWriter and records whether the response has
// been started, so the panic recovery in guard knows whether it may still
// write an error body or would only corrupt an in-flight response.
type startTracker struct {
	http.ResponseWriter
	started bool
}

func (t *startTracker) WriteHeader(code int) {
	t.started = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *startTracker) Write(b []byte) (int, error) {
	t.started = true
	return t.ResponseWriter.Write(b)
}

func (s *server) guard(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		w := &startTracker{ResponseWriter: rw}
		// The trace starts the moment the request reaches the guard; its id
		// is echoed in X-Trace-Id so a client can correlate a slow response
		// with the daemon's trace exports. A valid client-supplied
		// X-Trace-Id is adopted instead, so a load generator can tag a
		// request and later pull its span tree from /trace/last. This
		// finish defer is declared before the recover defer below, so a
		// panicking request's spans are force-ended and recorded too
		// (defers run LIFO).
		traceID := newTraceID()
		if id, ok := inboundTraceID(r); ok {
			traceID = id
			mTraceInherited.Inc()
		}
		tr := span.New(traceID, "server."+op)
		tr.SetProcess(s.processName())
		// A valid X-Hb-Parent-Span alongside the trace id marks this
		// request as one hop of a distributed operation (the router's
		// failover or migration): the fragment records which remote span
		// it hangs off so the fleet stitcher can splice it into the
		// cross-process tree.
		if ps := r.Header.Get(span.ParentSpanHeader); headerTokenOK(ps) {
			tr.SetRemoteParent(ps)
		}
		if id := r.PathValue("id"); id != "" {
			tr.Root().Annotate("session", id)
		}
		w.Header().Set("X-Trace-Id", tr.ID())
		defer s.finishRequest(op, tr)
		trCtx := span.NewContext(r.Context(), tr)
		// The admission span's returned context is discarded: later spans
		// nest under the root, as siblings of the wait.
		_, adm := span.Start(trCtx, "admission")
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				timer := time.NewTimer(s.cfg.queueTimeout)
				select {
				case s.inflight <- struct{}{}:
					timer.Stop()
					defer func() { <-s.inflight }()
				case <-timer.C:
					mRequestsShed.Inc()
					adm.End()
					w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.queueTimeout)))
					httpError(w, http.StatusTooManyRequests, "server at capacity (%d in flight)", s.cfg.maxInflight)
					return
				case <-r.Context().Done():
					timer.Stop()
					return
				}
			}
		}
		adm.End()
		if id := r.PathValue("id"); id != "" {
			if diag, ok := s.quarantineInfo(id); ok {
				if r.Method == http.MethodDelete {
					// Closing a quarantined session acknowledges the fault
					// and releases the id.
					s.clearQuarantine(id)
					writeJSON(w, http.StatusOK, map[string]any{
						"session": id, "closed": true, "quarantined": true,
					})
					return
				}
				httpError(w, http.StatusServiceUnavailable, "session %s quarantined: %s", id, diag)
				return
			}
		}
		ctx := trCtx
		if s.cfg.requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.requestTimeout)
			defer cancel()
		}
		r = r.WithContext(ctx)
		defer func() {
			if v := recover(); v != nil {
				mPanicsRecovered.Inc()
				fmt.Fprintf(s.cfg.errLog, "hummingbirdd: panic in %s %s: %v\n%s\n", op, r.URL.Path, v, debug.Stack())
				diag := fmt.Sprintf("panic during %s: %v", op, v)
				if id := r.PathValue("id"); id != "" {
					s.quarantine(id, diag)
				}
				// Only answer if the handler had not started a response — a
				// late WriteHeader would corrupt whatever was in flight. The
				// body is deliberately generic; the panic value stays in the
				// server log and the quarantine diagnostic.
				if !w.started {
					httpError(w, http.StatusInternalServerError, "internal error during %s", op)
				}
			}
		}()
		h(w, r)
	}
}

// traced wraps an unguarded replication endpoint with opt-in tracing: a
// span tree is created only when the caller sent a valid X-Trace-Id.
// The router's failover and migration orchestration tags its hops, so
// those requests become retained trace fragments this daemon serves at
// /v1/traces/{id}; the high-rate standby frame stream from a peer
// primary carries no trace header and keeps its zero-overhead path.
func (s *server) traced(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		traceID, ok := inboundTraceID(r)
		if !ok {
			h(w, r)
			return
		}
		mTraceInherited.Inc()
		tr := span.New(traceID, "server."+op)
		tr.SetProcess(s.processName())
		if ps := r.Header.Get(span.ParentSpanHeader); headerTokenOK(ps) {
			tr.SetRemoteParent(ps)
		}
		if id := r.PathValue("id"); id != "" {
			tr.Root().Annotate("session", id)
		}
		w.Header().Set(span.TraceIDHeader, tr.ID())
		defer func() {
			tr.Finish()
			s.traces.Add(tr)
		}()
		h(w, r.WithContext(span.NewContext(r.Context(), tr)))
	}
}

// handleTraceGet serves one retained trace fragment in its wire form
// (span.Export) — the unit the router's /fleet/trace/{id} stitcher
// collects from every member and splices into a cross-process tree.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.traces.Get(id)
	if t == nil {
		httpError(w, http.StatusNotFound, "trace %q not retained on this replica", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	t.Export().WriteJSON(w)
}

// finishRequest closes a request's trace and fans it out: the per-op
// latency histogram, the owning session's /trace/last slot, the
// slow-request log, and the -trace-dir Chrome export.
func (s *server) finishRequest(op string, tr *span.Trace) {
	total := tr.Finish()
	s.traces.Add(tr)
	if t := requestTimers[op]; t != nil {
		t.Observe(total)
	}
	if sid := tr.Root().Attr("session"); sid != "" {
		if ss := s.session(sid); ss != nil {
			ss.mu.Lock()
			ss.lastTrace = tr
			ss.mu.Unlock()
		}
	}
	if s.cfg.slowThreshold > 0 && total >= s.cfg.slowThreshold {
		var sb strings.Builder
		fmt.Fprintf(&sb, "hummingbirdd: slow request %s took %v:\n", op, total)
		tr.WriteText(&sb)
		// The flight-recorder tail rides along: a slow request usually has
		// fleet-lifecycle context (a failover in progress, a stream backing
		// off) that the span tree alone cannot show.
		if tail := s.flight.Tail(12); len(tail) > 0 {
			fmt.Fprintf(&sb, "recent flight events:\n")
			s.flight.WriteText(&sb, 12)
		}
		fmt.Fprint(s.cfg.errLog, sb.String())
	}
	if s.cfg.traceDir != "" {
		path := filepath.Join(s.cfg.traceDir, tr.ID()+".trace.json")
		f, err := os.Create(path)
		if err == nil {
			err = tr.WriteChrome(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(s.cfg.errLog, "hummingbirdd: write trace %s: %v\n", path, err)
		}
	}
}

// handleReadyz reports readiness: journals replayed, no session
// quarantined, the admission semaphore below its ceiling, and not
// draining. Load balancers use it to stop routing to a daemon that is
// still alive (healthz) but should not receive new work. The "state"
// field distinguishes why: "starting" (journals replaying), "draining"
// (graceful shutdown in progress — existing requests still complete),
// "degraded" (quarantine or saturation), "ready".
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	quarantined := len(s.quarantined)
	s.mu.Unlock()
	inflight, ceiling := 0, 0
	if s.inflight != nil {
		inflight, ceiling = len(s.inflight), cap(s.inflight)
	}
	draining := s.draining.Load()
	ready := !draining && s.ready.Load() && quarantined == 0 && (s.inflight == nil || inflight < ceiling)
	state := "ready"
	switch {
	case draining:
		state = "draining"
	case !s.ready.Load():
		state = "starting"
	case !ready:
		state = "degraded"
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	body := map[string]any{
		"ready":        ready,
		"state":        state,
		"replayed":     s.ready.Load(),
		"quarantined":  quarantined,
		"inflight":     inflight,
		"max_inflight": ceiling,
	}
	if s.cfg.replicaID != "" {
		body["replica"] = s.cfg.replicaID
	}
	writeJSON(w, status, body)
}

// handleTraceLast serves the span tree of the session's most recent
// guarded request as JSON. Unguarded: it must stay readable while the
// server is saturated, and must not overwrite the trace it reports.
func (s *server) handleTraceLast(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	ss.mu.Lock()
	tr := ss.lastTrace
	ss.mu.Unlock()
	if tr == nil {
		httpError(w, http.StatusNotFound, "no trace recorded for session yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tr.WriteJSON(w)
}

// retryAfterSeconds rounds the queue timeout up to a whole non-zero number
// of seconds for the Retry-After header.
func retryAfterSeconds(d time.Duration) int {
	n := int((d + time.Second - 1) / time.Second)
	if n < 1 {
		n = 1
	}
	return n
}

// quarantine removes the session from service and records the diagnostic;
// its journal is set aside for post-mortem rather than replayed into the
// next process. Callers must not hold any session mutex: the target's
// journal writer is detached under ss.mu (handlers mutate ss.jw under the
// same lock) before it is closed; the engine state is abandoned as-is.
func (s *server) quarantine(id, diag string) {
	s.mu.Lock()
	ss := s.sessions[id]
	delete(s.sessions, id)
	s.quarantined[id] = diag
	s.mu.Unlock()
	mQuarantined.Inc()
	s.flight.Record(flight.Error, "session.quarantine", id, "", "%s", diag)
	s.detachStream(id)
	if ss != nil {
		ss.mu.Lock()
		jw := ss.jw
		ss.jw = nil
		ss.mu.Unlock()
		if jw != nil {
			jw.Close()
		}
	}
	s.quarantineJournalFile(id)
}

// quarantineUnserved records a quarantine for an id with no live session
// (replay or rewrite failure during recovery): diagnostic plus journal
// set-aside, nothing to detach.
func (s *server) quarantineUnserved(id, diag string) {
	s.mu.Lock()
	s.quarantined[id] = diag
	s.mu.Unlock()
	mQuarantined.Inc()
	s.flight.Record(flight.Error, "session.quarantine", id, "", "%s", diag)
	s.quarantineJournalFile(id)
}

// quarantineJournalFile renames the id's journal aside (best-effort).
func (s *server) quarantineJournalFile(id string) {
	if s.cfg.journal == nil {
		return
	}
	if err := s.cfg.journal.Quarantine(id); err != nil {
		fmt.Fprintf(s.cfg.errLog, "hummingbirdd: quarantine journal %s: %v\n", id, err)
	}
}

func (s *server) quarantineInfo(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	diag, ok := s.quarantined[id]
	return diag, ok
}

func (s *server) clearQuarantine(id string) {
	s.mu.Lock()
	delete(s.quarantined, id)
	s.mu.Unlock()
}

// shutdown flushes and closes every session journal, stops outbound
// replication streams, and drops the parked LRU state (shutdown path;
// the HTTP listener is already drained).
func (s *server) shutdown() {
	if s.streams != nil {
		s.streams.CloseAll()
	}
	// Drop any compile references held for pre-warmed standbys.
	s.warmMu.Lock()
	warm := s.warm
	s.warm = make(map[string]func())
	s.warmMu.Unlock()
	for _, release := range warm {
		if release != nil {
			release()
		}
	}
	s.mu.Lock()
	sessions := make([]*sess, 0, len(s.sessions))
	for _, ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	parked := s.cache.drain()
	s.cache = newLRU(0)
	s.mu.Unlock()
	for _, eng := range parked {
		eng.ReleaseShared()
	}
	for _, ss := range sessions {
		ss.mu.Lock()
		if ss.jw != nil {
			if err := ss.jw.Close(); err != nil {
				fmt.Fprintf(s.cfg.errLog, "hummingbirdd: close journal %s: %v\n", ss.id, err)
			}
			ss.jw = nil
		}
		ss.mu.Unlock()
	}
}

// sidPrefix is the prefix of every session id this replica allocates:
// "s" standalone, "<replica-id>-s" in a fleet — so ids stay unique
// fleet-wide and a failed-over session keeps its id on the peer without
// colliding with the peer's own allocations.
func (s *server) sidPrefix() string {
	if s.cfg.replicaID != "" {
		return s.cfg.replicaID + "-s"
	}
	return "s"
}

type openRequest struct {
	// Design is the netlist text (the .hb format).
	Design string `json:"design"`
	// Adjustments maps instance names to additive delay adjustments
	// ("200ps", "-1ns").
	Adjustments map[string]string `json:"adjustments,omitempty"`
}

// parseOpen turns an open request into a parsed design and options; it is
// shared by the live handler and journal replay so both construct sessions
// identically.
func (s *server) parseOpen(req *openRequest) (*netlist.Design, core.Options, error) {
	design, err := netlist.ParseString(req.Design)
	if err != nil {
		return nil, core.Options{}, fmt.Errorf("parse design: %w", err)
	}
	opts := s.opts
	opts.Adjustments = map[string]clock.Time{}
	for inst, v := range req.Adjustments {
		t, err := netlist.ParseTime(v)
		if err != nil {
			return nil, core.Options{}, fmt.Errorf("adjustment %s: %w", inst, err)
		}
		opts.Adjustments[inst] = t
	}
	return design, opts, nil
}

func (s *server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req openRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	design, opts, err := s.parseOpen(&req)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	s.mu.Lock()
	if len(s.sessions) >= s.cfg.maxSessions {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "session limit (%d) reached", s.cfg.maxSessions)
		return
	}
	s.nextID++
	id := fmt.Sprintf("%s%d", s.sidPrefix(), s.nextID)
	// Probe the parked-state cache before paying for an elaboration.
	key := incremental.StateKey(design, opts.Adjustments)
	eng := s.cache.take(key)
	s.mu.Unlock()

	cached := eng != nil
	sharedDesign := false
	if cached {
		mCacheHits.Inc()
	} else {
		mCacheMisses.Inc()
		var err error
		if cd, release := s.compile.acquire(key); cd != nil {
			// Another session already compiled this exact design+adjustments:
			// share its CompiledDesign read-only and skip elaboration. The
			// engine gets only a private AnalysisState.
			sharedDesign = true
			eng, err = incremental.OpenSharedContext(r.Context(), s.lib, design, opts, cd, release)
		} else {
			eng, err = incremental.OpenContext(r.Context(), s.lib, design, opts)
			if err == nil {
				// Publish the freshly compiled design so the next same-key
				// open shares it. If a racing open published first, this
				// engine simply stays private.
				if release, ok := s.compile.publish(key, eng.CompiledDesign()); ok {
					eng.ShareCompiled(release)
				}
			}
		}
		if err != nil {
			writeAnalysisError(w, "open design", err)
			return
		}
	}
	ss := &sess{id: id, eng: eng, created: time.Now()}
	if b, merr := json.Marshal(&req); merr == nil {
		ss.designKey = fleet.DesignKey(b)
	}
	if s.cfg.journal != nil {
		// The open record is fsynced before the session becomes visible, so
		// a crash can never leave an acknowledged session without a journal.
		jw, err := s.cfg.journal.Create(id, &req)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, "journal open: %v", err)
			return
		}
		ss.jw = jw
		// Fleet replication: when the router names a standby chain, stream
		// this session's frames to every chain member. Attached before the
		// session is visible, so no committed frame can miss the streams.
		s.attachStreams(id, jw, fleet.ParsePeers(r.Header))
	}
	ss.rememberSlacks()
	s.mu.Lock()
	s.sessions[id] = ss
	s.mu.Unlock()
	mSessionsOpened.Inc()
	// Associate the request trace with the freshly allocated id so the
	// guard's finish hook files it under the new session.
	span.Current(r.Context()).Annotate("session", id)

	resp := map[string]any{
		"session":       id,
		"cached":        cached,
		"shared_design": sharedDesign,
	}
	ss.mu.Lock()
	addSummary(resp, ss)
	ss.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

// recoverSessions replays every intact journal in the journal directory,
// restoring the sessions a previous process had open under their original
// ids. Journals that fail to replay are quarantined (renamed aside) with a
// diagnostic, not deleted. Returns the number of sessions restored.
func (s *server) recoverSessions() int {
	ids, err := s.cfg.journal.Sessions()
	if err != nil {
		fmt.Fprintf(s.cfg.errLog, "hummingbirdd: list journals: %v\n", err)
		return 0
	}
	restored, maxID := 0, 0
	for _, id := range ids {
		// Every journal on disk claims its id — replayable or not — so a
		// freshly allocated session id can never collide with one that
		// ends up quarantined below. Only ids carrying this replica's own
		// prefix advance the allocator; adopted foreign journals live in a
		// different namespace.
		if rest, ok := strings.CutPrefix(id, s.sidPrefix()); ok {
			if n, err := strconv.Atoi(rest); err == nil && n > maxID {
				maxID = n
			}
		}
		ss, req, batches, err := s.replaySession(id)
		if err != nil {
			fmt.Fprintf(s.cfg.errLog, "hummingbirdd: replay %s: %v (journal quarantined)\n", id, err)
			s.quarantineUnserved(id, fmt.Sprintf("journal replay failed: %v", err))
			continue
		}
		// Rewrite a compact journal for the restored session: the open
		// record plus every acknowledged batch, dropping any torn tail.
		// The rewrite is atomic (temp file + rename); if it fails, the
		// session is quarantined rather than served without durability.
		jw, err := s.cfg.journal.Rewrite(id, req, batches)
		if err != nil {
			fmt.Fprintf(s.cfg.errLog, "hummingbirdd: rewrite journal %s: %v (session quarantined)\n", id, err)
			s.quarantineUnserved(id, fmt.Sprintf("journal rewrite failed: %v", err))
			continue
		}
		ss.jw = jw
		s.mu.Lock()
		s.sessions[id] = ss
		s.mu.Unlock()
		mReplayed.Inc()
		restored++
	}
	s.mu.Lock()
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.mu.Unlock()
	s.ready.Store(true)
	return restored
}

// replaySession rebuilds one session from its journal records, returning
// the restored session plus the open request and edit batches needed to
// rewrite a compact journal.
func (s *server) replaySession(id string) (*sess, *openRequest, []json.RawMessage, error) {
	recs, err := s.cfg.journal.Read(id)
	if err != nil {
		return nil, nil, nil, err
	}
	var req openRequest
	if err := json.Unmarshal(recs[0].Body, &req); err != nil {
		return nil, nil, nil, fmt.Errorf("decode open record: %w", err)
	}
	design, opts, err := s.parseOpen(&req)
	if err != nil {
		return nil, nil, nil, err
	}
	// Route replay through the compile cache exactly like a live open:
	// recovery and adoption then share CompiledDesigns across sessions —
	// and find the one a standby pre-warm already built (replication.go).
	key := incremental.StateKey(design, opts.Adjustments)
	var eng *incremental.Engine
	if cd, release := s.compile.acquire(key); cd != nil {
		eng, err = incremental.OpenShared(s.lib, design, opts, cd, release)
	} else {
		eng, err = incremental.Open(s.lib, design, opts)
		if err == nil {
			if release, ok := s.compile.publish(key, eng.CompiledDesign()); ok {
				eng.ShareCompiled(release)
			}
		}
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reopen design: %w", err)
	}
	var batches []json.RawMessage
	for i, rec := range recs[1:] {
		if rec.Kind != journal.KindEdits {
			return nil, nil, nil, fmt.Errorf("record %d: unexpected kind %q", i+1, rec.Kind)
		}
		var ejs []editJSON
		if err := json.Unmarshal(rec.Body, &ejs); err != nil {
			return nil, nil, nil, fmt.Errorf("record %d: decode edits: %w", i+1, err)
		}
		edits := make([]incremental.Edit, len(ejs))
		for j := range ejs {
			ed, err := ejs[j].toEdit()
			if err != nil {
				return nil, nil, nil, fmt.Errorf("record %d edit %d: %w", i+1, j, err)
			}
			edits[j] = ed
		}
		if _, err := eng.Apply(edits...); err != nil {
			return nil, nil, nil, fmt.Errorf("record %d: re-apply: %w", i+1, err)
		}
		batches = append(batches, rec.Body)
	}
	ss := &sess{id: id, eng: eng, created: time.Now()}
	ss.designKey = fleet.DesignKey(recs[0].Body)
	ss.edits = 0
	for _, b := range batches {
		var ejs []editJSON
		if json.Unmarshal(b, &ejs) == nil {
			ss.edits += len(ejs)
		}
	}
	ss.rememberSlacks()
	return ss, &req, batches, nil
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		if ss := s.session(id); ss != nil {
			ss.mu.Lock()
			m := map[string]any{"session": ss.id}
			addSummary(m, ss)
			ss.mu.Unlock()
			out = append(out, m)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *server) session(id string) *sess {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	ss.mu.Lock()
	resp := map[string]any{"session": ss.id}
	addSummary(resp, ss)
	ss.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// addSummary fills the common session fields; callers hold ss.mu.
func addSummary(m map[string]any, ss *sess) {
	eng := ss.eng
	d := eng.Design()
	m["design"] = d.Name
	m["edits"] = ss.edits
	m["state_hash"] = eng.StateHash()
	if rep := eng.Report(); rep != nil {
		m["ok"] = rep.OK
		m["worst_slack"] = timeJSON(rep.WorstSlack())
		m["slow_elements"] = len(rep.SlowElems)
	}
	a := eng.Analyzer()
	m["cells"] = len(d.Instances)
	m["nets"] = len(a.CD.Nets)
	m["clusters"] = len(a.CD.Clusters)
}

type editJSON struct {
	Op    string            `json:"op"`
	Inst  string            `json:"inst,omitempty"`
	To    string            `json:"to,omitempty"`
	Delta string            `json:"delta,omitempty"`
	Pin   string            `json:"pin,omitempty"`
	Net   string            `json:"net,omitempty"`
	Ref   string            `json:"ref,omitempty"`
	Conns map[string]string `json:"conns,omitempty"`
}

func (e *editJSON) toEdit() (incremental.Edit, error) {
	var ed incremental.Edit
	switch e.Op {
	case "adjust":
		ed.Op = incremental.Adjust
		t, err := netlist.ParseTime(e.Delta)
		if err != nil {
			return ed, fmt.Errorf("adjust %s: delta: %w", e.Inst, err)
		}
		ed.Delta = t
	case "resize":
		ed.Op = incremental.Resize
	case "replace":
		ed.Op = incremental.Replace
	case "add":
		ed.Op = incremental.AddInst
		ed.New = &netlist.Instance{Name: e.Inst, Ref: e.Ref, Conns: e.Conns}
	case "remove":
		ed.Op = incremental.RemoveInst
	case "rewire":
		ed.Op = incremental.Rewire
	default:
		return ed, fmt.Errorf("unknown op %q", e.Op)
	}
	ed.Inst = e.Inst
	ed.To = e.To
	ed.Pin = e.Pin
	ed.Net = e.Net
	return ed, nil
}

func (s *server) handleEdits(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	var req struct {
		Edits []editJSON `json:"edits"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Edits) == 0 {
		httpError(w, http.StatusBadRequest, "no edits")
		return
	}
	edits := make([]incremental.Edit, len(req.Edits))
	for i := range req.Edits {
		ed, err := req.Edits[i].toEdit()
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "edit %d: %v", i, err)
			return
		}
		edits[i] = ed
	}
	mEditCalls.Inc()

	// The closure owns ss.mu (defer keeps the unlock panic-safe for the
	// guard's recovery, which re-acquires it); the quarantine and the 503
	// for a dead journal happen after the lock is released.
	resp, jerr := func() (map[string]any, error) {
		ss.mu.Lock()
		defer ss.mu.Unlock()
		if ss.eng == nil {
			// The session was closed while this request waited on ss.mu.
			httpError(w, http.StatusNotFound, "session closed")
			return nil, nil
		}
		prevWorst := clock.Inf
		if rep := ss.eng.Report(); rep != nil {
			prevWorst = rep.WorstSlack()
		}
		t0 := time.Now()
		out, err := ss.eng.ApplyContext(r.Context(), edits...)
		elapsed := time.Since(t0)
		if err != nil {
			// ApplyContext is atomic: a cancelled or failed batch was rolled
			// back, the engine still matches the journal, and nothing is
			// recorded — a client retry applies the batch exactly once.
			writeAnalysisError(w, "apply", err)
			return nil, nil
		}
		if ss.jw != nil {
			// Acknowledged edits must be durable: the record is fsynced
			// before the response. A dead journal poisons the session — its
			// disk state can no longer be trusted to match the in-memory
			// engine — so the session stops serving before the lock is
			// released (eng == nil reads as closed to waiting requests).
			if jerr := ss.jw.AppendContext(r.Context(), journal.KindEdits, req.Edits); jerr != nil {
				ss.jw.Close()
				ss.jw = nil
				ss.eng = nil
				return nil, jerr
			}
		}
		ss.edits += len(edits)

		rep := out.Report
		resp := map[string]any{
			"session":     ss.id,
			"incremental": out.Incremental,
			"elapsed_us":  elapsed.Microseconds(),
			"ok":          rep.OK,
			"worst_slack": timeJSON(rep.WorstSlack()),
		}
		if out.Incremental {
			resp["dirty_clusters"] = out.DirtyClusters
		} else {
			resp["fallback_reason"] = out.FallbackReason
		}
		if prevWorst != clock.Inf && rep.WorstSlack() != clock.Inf {
			resp["worst_slack_delta_ps"] = int64(rep.WorstSlack() - prevWorst)
		}
		resp["changed_nets"] = ss.slackDeltas()
		ss.rememberSlacks()
		return resp, nil
	}()
	if jerr != nil {
		s.quarantine(ss.id, fmt.Sprintf("journal append failed: %v", jerr))
		httpError(w, http.StatusServiceUnavailable, "journal append failed, session quarantined: %v", jerr)
		return
	}
	if resp == nil {
		return
	}
	_, esp := span.Start(r.Context(), "encode")
	writeJSON(w, http.StatusOK, resp)
	esp.End()
}

// writeAnalysisError maps analysis failures to typed HTTP errors:
//
//   - a cancelled analysis (request deadline or client disconnect) → 504
//     with kind "cancelled" and the interruption point — the caller knows
//     partial work was discarded;
//   - a non-converging fixed point (sweep budget exhausted) → 422 with
//     kind "non_convergence" and the budget that was exhausted;
//   - anything else (bad edit, unknown instance, ...) → 422 untyped.
func writeAnalysisError(w http.ResponseWriter, op string, err error) {
	var ce *core.CancelledError
	var nc *core.NonConvergenceError
	switch {
	case errors.As(err, &ce):
		writeJSON(w, http.StatusGatewayTimeout, map[string]any{
			"error":     fmt.Sprintf("%s: %v", op, err),
			"kind":      "cancelled",
			"iteration": ce.Iteration,
			"sweep":     ce.Sweep,
			"partial":   true,
		})
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, map[string]any{
			"error":   fmt.Sprintf("%s: %v", op, err),
			"kind":    "cancelled",
			"partial": true,
		})
	case errors.As(err, &nc):
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error":      fmt.Sprintf("%s: %v", op, err),
			"kind":       "non_convergence",
			"iteration":  nc.Iteration,
			"max_sweeps": nc.MaxSweeps,
		})
	default:
		httpError(w, http.StatusUnprocessableEntity, "%s: %v", op, err)
	}
}

// rememberSlacks snapshots per-net slacks for the next delta report;
// callers hold ss.mu.
func (ss *sess) rememberSlacks() {
	rep := ss.eng.Report()
	if rep == nil {
		ss.prevSlack = nil
		return
	}
	nw := ss.eng.Analyzer().CD.Network
	m := make(map[string]clock.Time, len(nw.Nets))
	for i, name := range nw.Nets {
		m[name] = rep.Result.NetSlack[i]
	}
	ss.prevSlack = m
}

// slackDeltas lists the nets whose slack moved since the previous
// analysis, tightest new slack first, capped at 20 entries.
func (ss *sess) slackDeltas() []map[string]any {
	rep := ss.eng.Report()
	if rep == nil {
		return nil
	}
	nw := ss.eng.Analyzer().CD.Network
	type delta struct {
		net      string
		now, was clock.Time
		hasWas   bool
	}
	var ds []delta
	for i, name := range nw.Nets {
		now := rep.Result.NetSlack[i]
		was, ok := ss.prevSlack[name]
		if ok && was == now {
			continue
		}
		if !ok && now == clock.Inf {
			continue
		}
		ds = append(ds, delta{net: name, now: now, was: was, hasWas: ok})
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].now != ds[j].now {
			return ds[i].now < ds[j].now
		}
		return ds[i].net < ds[j].net
	})
	total := len(ds)
	if total > 20 {
		ds = ds[:20]
	}
	out := make([]map[string]any, 0, len(ds)+1)
	for _, d := range ds {
		m := map[string]any{"net": d.net, "slack": timeJSON(d.now)}
		if d.hasWas {
			m["was"] = timeJSON(d.was)
		}
		out = append(out, m)
	}
	if total > len(ds) {
		out = append(out, map[string]any{"truncated": total - len(ds)})
	}
	return out
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.eng == nil {
		httpError(w, http.StatusNotFound, "session closed")
		return
	}
	rep := ss.eng.Report()
	if rep == nil {
		httpError(w, http.StatusConflict, "no valid analysis (last edit failed to converge)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := report.WriteJSON(w, ss.eng.Analyzer(), rep); err != nil {
		httpError(w, http.StatusInternalServerError, "encode report: %v", err)
	}
}

func (s *server) handleConstraints(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.eng == nil {
		httpError(w, http.StatusNotFound, "session closed")
		return
	}
	cons, err := ss.eng.ConstraintsContext(r.Context())
	if err != nil {
		writeAnalysisError(w, "constraints", err)
		return
	}
	a := ss.eng.Analyzer()
	var names []string
	if q := r.URL.Query()["net"]; len(q) > 0 {
		names = q
	} else {
		names = append(names, a.CD.Nets...)
	}
	type netTimes struct {
		Net      string `json:"net"`
		Cluster  int    `json:"cluster"`
		Pass     int    `json:"pass"`
		Ready    any    `json:"ready"`
		Required any    `json:"required"`
	}
	var out []netTimes
	for _, name := range names {
		id, ok := a.CD.NetIdx[name]
		if !ok {
			httpError(w, http.StatusUnprocessableEntity, "unknown net %q", name)
			return
		}
		for _, nt := range cons.NetTimes(id) {
			if nt.Ready() == -clock.Inf && nt.Required() == clock.Inf {
				continue
			}
			out = append(out, netTimes{
				Net: name, Cluster: nt.Cluster, Pass: nt.Pass,
				Ready: timeJSON(nt.Ready()), Required: timeJSON(nt.Required()),
			})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":           ss.id,
		"backward_snatches": cons.BackwardSnatches,
		"forward_snatches":  cons.ForwardSnatches,
		"nets":              out,
	})
}

func (s *server) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ss := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	mSessionsClosed.Inc()
	s.detachStream(id)
	ss.mu.Lock()
	eng := ss.eng
	ss.eng = nil
	jw := ss.jw
	ss.jw = nil
	ss.mu.Unlock()
	// A deliberate close has nothing left to replay: drop the journal.
	if jw != nil {
		jw.Close()
	}
	if s.cfg.journal != nil {
		if err := s.cfg.journal.Remove(id); err != nil {
			fmt.Fprintf(s.cfg.errLog, "hummingbirdd: remove journal %s: %v\n", id, err)
		}
	}
	parked := s.parkEngine(eng)
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "closed": true, "parked": parked})
}

// timeJSON renders a clock.Time as a JSON-friendly value: integer
// picoseconds, or the string "inf"/"-inf" at the sentinels.
func timeJSON(t clock.Time) any {
	switch t {
	case clock.Inf:
		return "inf"
	case -clock.Inf:
		return "-inf"
	}
	return int64(t)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	// Keep error bodies single-line JSON for easy client handling.
	msg = strings.ReplaceAll(msg, "\n", " ")
	writeJSON(w, status, map[string]any{"error": msg})
}

// lruCache parks closed sessions' engines, keyed by state hash. take
// transfers ownership out of the cache (an engine is never shared).
type lruCache struct {
	max int
	ll  *list.List
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	eng *incremental.Engine
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lruCache) len() int { return c.ll.Len() }

func (c *lruCache) take(key string) *incremental.Engine {
	el, ok := c.m[key]
	if !ok {
		return nil
	}
	c.ll.Remove(el)
	delete(c.m, key)
	return el.Value.(*lruEntry).eng
}

// put parks an engine. stored reports whether the cache kept it (false at
// zero capacity or when the key is already parked); evicted is the engine
// pushed out to make room, if any. The caller owns whatever the cache did
// not keep.
func (c *lruCache) put(key string, eng *incremental.Engine) (evicted *incremental.Engine, stored bool) {
	if c.max <= 0 {
		return nil, false
	}
	if el, ok := c.m[key]; ok {
		// Same state already parked; keep the existing one fresh.
		c.ll.MoveToFront(el)
		return nil, false
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, eng: eng})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
		return oldest.Value.(*lruEntry).eng, true
	}
	return nil, true
}

// drain empties the cache, returning every parked engine.
func (c *lruCache) drain() []*incremental.Engine {
	var out []*incremental.Engine
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).eng)
	}
	c.ll.Init()
	c.m = make(map[string]*list.Element)
	return out
}

// compileCache refcounts immutable CompiledDesigns by state key so that
// every session opened on the same design hash shares one compiled design,
// cutting steady-state memory by ~N× for N same-design sessions. It has
// its own mutex: engine release callbacks fire from arbitrary goroutines
// (often under a session's lock) and must never contend on s.mu.
type compileCache struct {
	mu sync.Mutex
	m  map[string]*compileEntry
}

type compileEntry struct {
	cd   *cluster.CompiledDesign
	refs int
}

func newCompileCache() *compileCache {
	return &compileCache{m: make(map[string]*compileEntry)}
}

// acquire returns the cached design for key with its reference count
// bumped, plus the matching release callback — or (nil, nil) on a miss.
func (c *compileCache) acquire(key string) (*cluster.CompiledDesign, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.m[key]
	if !ok {
		return nil, nil
	}
	ent.refs++
	return ent.cd, c.releaseFunc(key)
}

// publish installs a freshly compiled design under key with one reference
// and returns its release callback. If the key is already present (a
// racing open published first), nothing is stored and ok is false — the
// caller's design stays private.
func (c *compileCache) publish(key string, cd *cluster.CompiledDesign) (release func(), ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[key]; exists {
		return nil, false
	}
	c.m[key] = &compileEntry{cd: cd, refs: 1}
	return c.releaseFunc(key), true
}

// releaseFunc builds the once-per-reference drop callback for key; the
// entry is evicted when its last reference goes.
func (c *compileCache) releaseFunc(key string) func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		ent, ok := c.m[key]
		if !ok {
			return
		}
		ent.refs--
		if ent.refs <= 0 {
			delete(c.m, key)
		}
	}
}

// designs counts the distinct shared compiled designs.
func (c *compileCache) designs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// totalRefs sums the session references across all shared designs.
func (c *compileCache) totalRefs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ent := range c.m {
		n += ent.refs
	}
	return n
}
