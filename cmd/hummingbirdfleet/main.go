// Command hummingbirdfleet is the fleet router in front of N hummingbirdd
// replicas: it pins sessions to replicas on a consistent-hash ring keyed
// by design hash (same design + adjustments → same replica → one shared
// compile), tells each primary which peer to stream its journal to, and
// re-homes sessions onto that peer when a replica dies or drains — the
// peer replays the streamed journal and serves the same session id.
//
// Protocol: the full hummingbirdd session surface, proxied
// (POST/GET/DELETE /v1/sessions...), plus fleet-level endpoints:
//
//	GET  /readyz              aggregated member readiness ("state": ready/degraded/down)
//	GET  /metrics             router telemetry + per-replica liveness gauges
//	GET  /events              router flight-recorder timeline (?since=&session=)
//	GET  /fleet/metrics       federated Prometheus exposition across every member
//	GET  /fleet/status        one-page fleet JSON: members, pins, recent events
//	GET  /fleet/trace/{id}    stitched cross-process trace (?format=chrome for a Chrome trace)
//	GET  /fleet/members       member detail (up, draining, readyz state, ring membership)
//	POST /fleet/members/join  {"id","url"}: add a replica at runtime, rebalance displaced sessions
//	POST /fleet/members/leave {"id"}: drain and remove a replica at runtime
//	POST /fleet/reconcile     rebuild the session pin table from member inventories
//	POST /fleet/drain/{id}    take a member out of the ring and migrate its sessions away
//	POST /fleet/undrain/{id}  return a drained member to the ring
//
// The router keeps no persistent state: at startup it reconciles the pin
// table from the replicas themselves, so a crashed router can simply be
// restarted with the same member list.
//
// See docs/FLEET.md for topology, replication guarantees, failover
// semantics, and the rolling-drain runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hummingbird/internal/buildinfo"
	"hummingbird/internal/fleet"
	"hummingbird/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hummingbirdfleet:", err)
		os.Exit(1)
	}
}

func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("hummingbirdfleet", flag.ContinueOnError)
	fs.SetOutput(errW)
	var members []fleet.Member
	fs.Func("member", "replica as id=url (repeatable), e.g. -member r1=http://127.0.0.1:8091", func(v string) error {
		id, url, ok := strings.Cut(v, "=")
		if !ok || id == "" || url == "" {
			return fmt.Errorf("want id=url, got %q", v)
		}
		members = append(members, fleet.Member{ID: id, URL: url})
		return nil
	})
	var (
		addr       = fs.String("addr", "127.0.0.1:7070", "router listen address")
		vnodes     = fs.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default)")
		healthIvl  = fs.Duration("health-interval", 500*time.Millisecond, "member /readyz poll interval")
		failAfter  = fs.Int("fail-after", 2, "consecutive failed probes before a member is marked down")
		proxyTO    = fs.Duration("proxy-timeout", 60*time.Second, "per-request upstream timeout")
		standbys   = fs.Int("standbys", 2, "replication-chain length: journal frames stream to this many ring successors")
		migrateCC  = fs.Int("migrate-concurrency", 4, "sessions migrated at once during drain/join/leave rebalancing")
		shutGrace  = fs.Duration("shutdown-grace", 5*time.Second, "how long shutdown may drain connections")
		eventCap   = fs.Int("events-retain", 512, "flight-recorder ring size: lifecycle events kept for GET /events")
		traceCap   = fs.Int("trace-retain", 256, "operation traces kept for GET /fleet/trace/{id}")
		metricsOut = fs.String("metrics-out", "", "write a JSON telemetry snapshot to this file on shutdown")
		version    = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.WriteVersion(w, "hummingbirdfleet")
		return nil
	}
	if len(members) == 0 {
		return fmt.Errorf("at least one -member id=url is required")
	}
	telemetry.Enable()
	defer telemetry.Disable()
	telemetry.RegisterRuntimeGauges()

	router, err := fleet.NewRouter(fleet.Config{
		Members:            members,
		Vnodes:             *vnodes,
		Client:             &http.Client{Timeout: *proxyTO},
		HealthInterval:     *healthIvl,
		FailAfter:          *failAfter,
		Standbys:           *standbys,
		MigrateConcurrency: *migrateCC,
		EventCapacity:      *eventCap,
		TraceCapacity:      *traceCap,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(errW, "hummingbirdfleet: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	router.Start()
	defer router.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: router.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(w, "hummingbirdfleet listening on %s (%d members)\n", *addr, len(members))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(w, "hummingbirdfleet: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), *shutGrace)
	defer cancel()
	err = httpSrv.Shutdown(shutCtx)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if *metricsOut != "" {
		mf, cerr := os.Create(*metricsOut)
		if cerr != nil {
			return cerr
		}
		if cerr := telemetry.WriteSnapshot(mf); cerr != nil {
			mf.Close()
			return cerr
		}
		if cerr := mf.Close(); cerr != nil {
			return cerr
		}
		fmt.Fprintf(w, "wrote telemetry snapshot to %s\n", *metricsOut)
	}
	return nil
}
