// Command benchtables regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index) and prints them in
// a form directly comparable with the published numbers:
//
//	-table1     run-time table over DES/ALU/SM1F/SM1H (paper Table 1)
//	-fig1       minimum settling times for the Figure 1 configuration
//	-fig2       generic synchronising-element model demonstration (Figure 2)
//	-fig3       transparent-latch offset example (Figure 3)
//	-fig4       break-open directed-graph example (Figure 4)
//	-ablations  A1 block-vs-enumeration, A2 borrowing, A3 break search,
//	            A4 redesign loop, A5 scaling
//	-all        everything above (default when no flag is given)
//	-scaling    workers x design-size parallel-analysis scaling table on
//	            the SoC workload (opt-in: the 1M-cell point is expensive,
//	            so -all does not imply it)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hummingbird/internal/baseline"
	"hummingbird/internal/benchfmt"
	"hummingbird/internal/breakopen"
	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/incremental"
	"hummingbird/internal/netlist"
	"hummingbird/internal/report"
	"hummingbird/internal/resynth"
	"hummingbird/internal/sta"
	"hummingbird/internal/syncelem"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/workload"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table 1")
		fig1      = flag.Bool("fig1", false, "regenerate the Figure 1 experiment")
		fig2      = flag.Bool("fig2", false, "demonstrate the Figure 2 element model")
		fig3      = flag.Bool("fig3", false, "reproduce the Figure 3 offset example")
		fig4      = flag.Bool("fig4", false, "reproduce the Figure 4 break-open example")
		ablations = flag.Bool("ablations", false, "run the A1-A5 ablations")
		all       = flag.Bool("all", false, "run everything")
		jsonOut   = flag.String("json-out", "", "write the Table-1 rows as a benchfmt JSON run to this file (implies -table1)")
		label     = flag.String("label", "local", "label recorded in the -json-out run")
		date      = flag.String("date", "", "date (YYYY-MM-DD) recorded in the -json-out run; required with -json-out")

		scaling        = flag.Bool("scaling", false, "run the workers x design-size scaling table on the SoC workload")
		scalingCells   = flag.String("scaling-cells", "10000,100000,1000000", "comma-separated SoC cell counts for -scaling")
		scalingWorkers = flag.String("scaling-workers", "1,2,4,8", "comma-separated worker counts for -scaling")
		scalingGate    = flag.Float64("scaling-gate", 0, "with -scaling: exit non-zero unless the highest worker count reaches this speedup over 1 worker on the largest design (0 = no gate)")
		scalingJSON    = flag.String("scaling-json", "", "merge the -scaling rows into this benchfmt JSON file (created with -label/-date when absent)")
	)
	flag.Parse()
	w := os.Stdout
	if *jsonOut != "" {
		*table1 = true
		if *date == "" {
			must(fmt.Errorf("-json-out requires -date (the run date is recorded, never guessed)"))
		}
	}
	any := *table1 || *fig1 || *fig2 || *fig3 || *fig4 || *ablations || *scaling
	if *all || !any {
		*table1, *fig1, *fig2, *fig3, *fig4, *ablations = true, true, true, true, true, true
	}
	if *table1 {
		rows := runTable1(w)
		if *jsonOut != "" {
			run := benchfmt.NewRun(*label, *date)
			for _, r := range rows {
				run.Rows = append(run.Rows, benchfmt.FromReportRow(r))
			}
			must(benchfmt.WriteFile(*jsonOut, run))
			fmt.Fprintf(w, "wrote %d benchmark rows to %s\n\n", len(run.Rows), *jsonOut)
		}
	}
	if *fig1 {
		runFig1(w)
	}
	if *fig2 {
		runFig2(w)
	}
	if *fig3 {
		runFig3(w)
	}
	if *fig4 {
		runFig4(w)
	}
	if *ablations {
		runAblations(w)
	}
	if *scaling {
		rows := runScaling(w, parseIntList(*scalingCells), parseIntList(*scalingWorkers))
		if *scalingJSON != "" {
			run, err := benchfmt.ReadFile(*scalingJSON)
			if os.IsNotExist(err) {
				if *date == "" {
					must(fmt.Errorf("-scaling-json on a new file requires -date"))
				}
				run, err = benchfmt.NewRun(*label, *date), nil
			}
			must(err)
			run.MergeScaling(rows)
			must(benchfmt.WriteFile(*scalingJSON, run))
			fmt.Fprintf(w, "merged %d scaling rows into %s\n\n", len(rows), *scalingJSON)
		}
		checkScalingGate(rows, *scalingGate)
	}
}

// parseIntList splits a comma-separated list of positive integers.
func parseIntList(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		must(err)
		if n < 1 {
			must(fmt.Errorf("list entry %d < 1", n))
		}
		out = append(out, n)
	}
	return out
}

// checkScalingGate enforces the CI speedup floor: on the largest design
// measured, the highest worker count must beat the 1-worker time by the
// given factor.
func checkScalingGate(rows []benchfmt.ScalingRow, gate float64) {
	if gate <= 0 {
		return
	}
	maxCells, maxWorkers := 0, 0
	for _, r := range rows {
		if r.Cells > maxCells {
			maxCells = r.Cells
		}
	}
	for _, r := range rows {
		if r.Cells == maxCells && r.Workers > maxWorkers {
			maxWorkers = r.Workers
		}
	}
	for _, r := range rows {
		if r.Cells == maxCells && r.Workers == maxWorkers {
			if r.Speedup < gate {
				must(fmt.Errorf("scaling gate: %d workers reach %.2fx on %d cells, need %.2fx",
					maxWorkers, r.Speedup, maxCells, gate))
			}
			fmt.Printf("scaling gate ok: %d workers reach %.2fx on %d cells (floor %.2fx)\n",
				maxWorkers, r.Speedup, maxCells, gate)
			return
		}
	}
	must(fmt.Errorf("scaling gate: no row for %d cells at %d workers (is 1 in -scaling-workers?)", maxCells, maxWorkers))
}

// runScaling measures the level-scheduled parallel analysis across the
// workers x design-size grid on the SoC workload, plus the parallel
// incremental recompute over a large dirty set, best of three each.
func runScaling(w io.Writer, cellSizes, workerCounts []int) []benchfmt.ScalingRow {
	fmt.Fprintln(w, "== Scaling: level-scheduled parallel analysis, workers x design size (SoC workload) ==")
	fmt.Fprintf(w, "host: %d CPUs, GOMAXPROCS %d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	lib := celllib.Default()
	var out []benchfmt.ScalingRow
	fmt.Fprintf(w, "%9s %9s %7s %8s %12s %9s %14s %7s\n",
		"cells", "clusters", "levels", "workers", "analyze", "speedup", "recompute", "dirty")
	for _, cells := range cellSizes {
		d := mustGen(workload.SoCCells(cells, 1))
		stats := d.Stats(lib)
		a, err := core.Load(lib, d, core.DefaultOptions())
		must(err)
		cd, st := a.CD, a.St
		// Dirty set for the incremental point: evenly spaced cluster ids,
		// capped at 256 — large enough for the parallel path on every
		// design size measured here.
		nDirty := len(cd.CC)
		if nDirty > 256 {
			nDirty = 256
		}
		ids := make([]int, nDirty)
		for i := range ids {
			ids[i] = i * len(cd.CC) / nDirty
		}
		res := sta.Analyze(cd, st)
		var base time.Duration
		for _, workers := range workerCounts {
			var analyze, recompute time.Duration
			for i := 0; i < 3; i++ {
				t0 := time.Now()
				sta.AnalyzeParallel(cd, st, workers)
				if e := time.Since(t0); analyze == 0 || e < analyze {
					analyze = e
				}
				t1 := time.Now()
				sta.RecomputeParallel(cd, st, res, ids, workers)
				if e := time.Since(t1); recompute == 0 || e < recompute {
					recompute = e
				}
			}
			if workers == 1 {
				base = analyze
			}
			row := benchfmt.ScalingRow{
				Workload: d.Name, Cells: stats.Cells,
				Clusters: len(cd.CC), Levels: cd.NumLevels(), Workers: workers,
				AnalyzeNs:   analyze.Nanoseconds(),
				RecomputeNs: recompute.Nanoseconds(), DirtyClusters: nDirty,
			}
			if base > 0 {
				row.Speedup = float64(base) / float64(analyze)
			}
			out = append(out, row)
			fmt.Fprintf(w, "%9d %9d %7d %8d %12v %8.2fx %14v %7d\n",
				row.Cells, row.Clusters, row.Levels, row.Workers,
				analyze.Round(time.Microsecond), row.Speedup,
				recompute.Round(time.Microsecond), nDirty)
		}
	}
	fmt.Fprintln(w)
	return out
}

// mustGen unwraps a workload generator result.
func mustGen(d *netlist.Design, err error) *netlist.Design {
	must(err)
	return d
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

// analyzeTimed loads and analyses one design, returning the Table-1 row.
// Telemetry is enabled around the run so the row carries the work counters
// (cluster recomputes, delay evaluations) alongside the wall times.
func analyzeTimed(lib *celllib.Library, d *netlist.Design) report.Row {
	st := d.Stats(lib)
	telemetry.Enable()
	telemetry.Reset()
	defer telemetry.Disable()
	t0 := time.Now()
	a, err := core.Load(lib, d, core.DefaultOptions())
	must(err)
	pre := time.Since(t0)
	t1 := time.Now()
	rep, err := a.IdentifySlowPaths()
	must(err)
	ana := time.Since(t1)
	snap := telemetry.Snapshot()
	return report.Row{
		Name: d.Name, Cells: st.Cells, Nets: st.Nets, Latches: st.Latches,
		Clusters: len(a.CD.Clusters), Passes: a.CD.TotalPasses(),
		PreProcess: pre, Analysis: ana,
		Sweeps:     rep.ForwardSweeps + rep.BackwardSweeps,
		Recomputes: snap.Counters["sta.clusters_analyzed"],
		DelayEvals: snap.Counters["delaycalc.evaluations"],
		OK:         rep.OK,
	}
}

// table1Row measures one Table-1 row including the incremental-edit
// speedup columns.
func table1Row(lib *celllib.Library, d *netlist.Design) report.Row {
	row := analyzeTimed(lib, d)
	row.IncrEdit, row.FullEdit = editSpeedup(lib, d)
	row.OpenCold, row.OpenShared = sessionOpen(lib, d)
	return row
}

// sessionOpen measures the two ways a viewing session comes up: cold
// (elaborate + compile + first analysis) and against an already compiled
// design (a fresh AnalysisState over a shared immutable CompiledDesign, as
// hummingbirdd's compile cache does for concurrent sessions on the same
// design), best of three each.
func sessionOpen(lib *celllib.Library, d *netlist.Design) (cold, shared time.Duration) {
	publisher, err := incremental.Open(lib, d, core.DefaultOptions())
	must(err)
	cd := publisher.CompiledDesign()
	opts := publisher.Options()
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		_, err := incremental.Open(lib, d, opts)
		must(err)
		if e := time.Since(t0); cold == 0 || e < cold {
			cold = e
		}
	}
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		_, err := incremental.OpenShared(lib, d, opts, cd, nil)
		must(err)
		if e := time.Since(t0); shared == 0 || e < shared {
			shared = e
		}
	}
	return cold, shared
}

// editSpeedup measures the cost of re-analysing after a single-gate delay
// edit: once through the incremental engine (only the dirty clusters are
// recomputed) and once from scratch (full elaboration + Algorithm 1),
// best of three each.
func editSpeedup(lib *celllib.Library, d *netlist.Design) (incr, full time.Duration) {
	eng, err := incremental.Open(lib, d, core.DefaultOptions())
	must(err)
	inst := pickEditInst(eng)
	delta := clock.Time(100)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		out, err := eng.Apply(incremental.Edit{Op: incremental.Adjust, Inst: inst, Delta: delta})
		must(err)
		if !out.Incremental {
			must(fmt.Errorf("edit on %s fell back to full analysis", inst))
		}
		if e := time.Since(t0); incr == 0 || e < incr {
			incr = e
		}
		delta = -delta
	}
	opts := eng.Options()
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		a, err := core.Load(lib, eng.Design(), opts)
		must(err)
		_, err = a.IdentifySlowPaths()
		must(err)
		if e := time.Since(t0); full == 0 || e < full {
			full = e
		}
	}
	return incr, full
}

// pickEditInst finds an instance whose delay adjustment stays on the
// incremental path (a combinational gate off the clock cones).
func pickEditInst(eng *incremental.Engine) string {
	d := eng.Design()
	for i := range d.Instances {
		name := d.Instances[i].Name
		out, err := eng.Apply(incremental.Edit{Op: incremental.Adjust, Inst: name, Delta: 100})
		if err != nil {
			continue
		}
		if _, err := eng.Apply(incremental.Edit{Op: incremental.Adjust, Inst: name, Delta: -100}); err != nil {
			must(err)
		}
		if out.Incremental {
			return name
		}
	}
	must(fmt.Errorf("%s: no incrementally editable instance", d.Name))
	return ""
}

// runTable1 prints the Table-1 reproduction and returns every measured
// row (paper rows first, then the extension rows) for -json-out.
func runTable1(w io.Writer) []report.Row {
	fmt.Fprintln(w, "== Table 1: run times (paper: VAX 8800 CPU seconds; here: this machine) ==")
	fmt.Fprintln(w, "paper reference: DES 3681 cells analysed in 14.87s total on a VAX 8800")
	fmt.Fprintln(w, "incr-edit/full-edit: re-analysis after a single-gate delay edit, incremental engine vs from scratch")
	lib := celllib.Default()
	rows := []report.Row{
		table1Row(lib, mustGen(workload.DES())),
		table1Row(lib, mustGen(workload.ALU())),
		table1Row(lib, workload.SM1F()),
		table1Row(lib, workload.SM1H()),
	}
	report.Table1(w, rows)
	fmt.Fprintln(w, "extension rows (not in the paper's Table 1): gated clock / 2x second clock")
	ext := []report.Row{
		table1Row(lib, mustGen(workload.DESGated())),
		table1Row(lib, mustGen(workload.DESMultiFreq())),
	}
	report.Table1(w, ext)
	fmt.Fprintln(w)
	return append(rows, ext...)
}

func runFig1(w io.Writer) {
	fmt.Fprintln(w, "== Figure 1: time-multiplexed logic across four clock phases ==")
	lib := celllib.Default()
	d := workload.Figure1()
	a, err := core.Load(lib, d, core.DefaultOptions())
	must(err)
	rep, err := a.IdentifySlowPaths()
	must(err)
	mid := a.CD.NetIdx["m"]
	for _, cl := range a.CD.Clusters {
		if cl.LocalIndex(mid) < 0 {
			continue
		}
		fmt.Fprintf(w, "shared-gate cluster: %d analysis passes (minimum settling times per node: %d)\n",
			cl.Plan.Passes(), cl.Plan.Passes())
		for pi, beta := range cl.Plan.Breaks {
			fmt.Fprintf(w, "  pass %d: clock period broken open at %v\n", pi, beta)
		}
	}
	fmt.Fprintf(w, "total passes across all clusters: %d (clusters: %d)\n",
		a.CD.TotalPasses(), len(a.CD.Clusters))
	fmt.Fprintf(w, "timing verdict: ok=%v worst slack %v\n\n", rep.OK, rep.WorstSlack())
}

func runFig2(w io.Writer) {
	fmt.Fprintln(w, "== Figure 2: generic synchronising-element model ==")
	cs, err := clock.NewSet(clock.Signal{Name: "phi", Period: 100 * clock.Ns, RiseAt: 0, FallAt: 20 * clock.Ns})
	must(err)
	st := &celllib.SyncTiming{Dsetup: 150, Ddz: 280, Dcz: 320}
	elems, err := syncelem.Build("demo", celllib.Transparent, st, cs, 0, false, 2*clock.Ns, 1*clock.Ns)
	must(err)
	e := elems[0]
	fmt.Fprintf(w, "element %s: transparent, pulse [%v, %v), W=%v\n", e.Name(), e.LeadAt, e.TrailAt, e.Width)
	fmt.Fprintf(w, "  offsets: Odc=%v Odz=%v Ozc=%v Ozd=%v (Oat=%v)\n", e.Odc(), e.Odz, e.Ozc(), e.Ozd(), e.Oat())
	fmt.Fprintf(w, "  input closure  = ideal %v + min(Odc,Odz) = %v\n", e.IdealClose, e.InputClosure())
	fmt.Fprintf(w, "  output assert  = ideal %v + max(Ozc,Ozd) = %v\n", e.IdealAssert, e.OutputAssert())
	fmt.Fprintf(w, "  Odz freedom: [%v, %v]\n\n", e.OdzMin(), e.OdzMax())
}

func runFig3(w io.Writer) {
	fmt.Fprintln(w, "== Figure 3: transparent-latch offset relationship (paper's worked example) ==")
	cs, err := clock.NewSet(clock.Signal{Name: "phi", Period: 100 * clock.Ns, RiseAt: 0, FallAt: 20 * clock.Ns})
	must(err)
	st := &celllib.SyncTiming{} // no internal delays, as in the paper's example
	elems, err := syncelem.Build("lat", celllib.Transparent, st, cs, 0, false, 2*clock.Ns, 2*clock.Ns)
	must(err)
	e := elems[0]
	e.Odz = -15 * clock.Ns
	must(e.Validate())
	fmt.Fprintf(w, "20ns control pulse, no internal delays, output asserted 5ns after the leading edge:\n")
	fmt.Fprintf(w, "  Ozd = %v (paper: 5ns), Odz = %v (paper: -15ns)\n", e.Ozd(), e.Odz)
	fmt.Fprintf(w, "  2ns clock-to-control delay: Oat = Ozc = %v (paper: 2ns)\n", e.Ozc())
	fmt.Fprintf(w, "  identity Ozd = W + Odz + Ddz: %v = %v + %v + %v\n\n", e.Ozd(), e.Width, e.Odz, e.Ddz)
}

func runFig4(w io.Writer) {
	fmt.Fprintln(w, "== Figure 4: breaking open the clock period ==")
	// Eight edge times A..H around an 800-unit period; one requirement:
	// edge E (assertion) must precede edge C (closure).
	T := clock.Time(800)
	names := "ABCDEFGH"
	var cands []clock.Time
	for i := range names {
		cands = append(cands, clock.Time(100*i))
	}
	o := breakopen.Output{ID: 0, Close: 200 /*C*/, Asserts: []clock.Time{400 /*E*/}}
	fmt.Fprintln(w, "requirement: edge E occurs before edge C")
	fmt.Fprint(w, "breaks satisfying it:")
	for i := range names {
		if breakopen.Applies(o, cands[i], T) {
			fmt.Fprintf(w, " %c", names[i])
		}
	}
	fmt.Fprintln(w, "  (paper: removing original arc D->E orders E F G H A B C D)")
	plan, err := breakopen.Solve(T, cands, []breakopen.Output{o})
	must(err)
	letters := make([]string, 0, len(plan.Breaks))
	for _, b := range plan.Breaks {
		letters = append(letters, string(names[int(b)/100]))
	}
	fmt.Fprintf(w, "minimum passes: %d, chosen break edge(s): %v\n\n", plan.Passes(), letters)
}

func runAblations(w io.Writer) {
	lib := celllib.Default()
	fmt.Fprintln(w, "== A1: block method vs explicit path enumeration ==")
	{
		d := workload.SM1F()
		a, err := core.Load(lib, d, core.DefaultOptions())
		must(err)
		t0 := time.Now()
		res := sta.Analyze(a.CD, a.St)
		blockT := time.Since(t0)
		t1 := time.Now()
		enum := baseline.EnumerateSlacks(a.CD, a.St)
		enumT := time.Since(t1)
		mism := baseline.CountMismatches(res, enum)
		fmt.Fprintf(w, "sm1f: block %v, enumeration %v over %d transition-paths; mismatching nets: %d\n",
			blockT, enumT, enum.Paths, mism)
	}
	fmt.Fprintln(w, "\n== A2: transparent vs opaque latch modelling (McWilliams-class baseline) ==")
	{
		d := borrowingDesign()
		cmp, err := baseline.CompareBorrowing(lib, d, core.DefaultOptions())
		must(err)
		fmt.Fprintf(w, "borrowing pipeline: transparent ok=%v (worst %v); opaque ok=%v (worst %v, %d slow terminals)\n",
			cmp.TransparentOK, cmp.TransparentWorst, cmp.OpaqueOK, cmp.OpaqueWorst, cmp.OpaqueSlow)
	}
	fmt.Fprintln(w, "\n== A3: exhaustive vs greedy break-open search ==")
	{
		d := workload.Figure1()
		a, err := core.Load(lib, d, core.DefaultOptions())
		must(err)
		exhaust, greedy := 0, 0
		for _, cl := range a.CD.Clusters {
			exhaust += cl.Plan.Passes()
		}
		// Rerun each cluster's plan greedily.
		for _, cl := range a.CD.Clusters {
			outs := clusterOutputs(a, cl.ID)
			p, err := breakopen.SolveGreedy(a.CD.Clocks.Overall(), a.CD.EdgeTimes, outs)
			must(err)
			greedy += p.Passes()
		}
		fmt.Fprintf(w, "figure1: exhaustive passes=%d, greedy passes=%d\n", exhaust, greedy)
	}
	fmt.Fprintln(w, "\n== A4: Algorithm 3 analysis-redesign loop ==")
	{
		d := redesignDesign()
		res, err := resynth.Run(lib, d, core.DefaultOptions(), 60)
		must(err)
		fmt.Fprintf(w, "closure ok=%v in %d iterations, %d resizings, area %d -> %d, final worst %v\n",
			res.OK, res.Iterations, len(res.Changes), res.AreaBefore, res.AreaAfter, res.WorstSlack)
	}
	fmt.Fprintln(w, "\n== A5: analysis-time scaling with design size ==")
	{
		fmt.Fprintf(w, "%8s %12s %12s\n", "cells", "preprocess", "analysis")
		for _, n := range []int{250, 500, 1000, 2000, 4000} {
			d := mustGen(workload.Scaling(n, 11))
			row := analyzeTimed(lib, d)
			fmt.Fprintf(w, "%8d %12v %12v\n", row.Cells, row.PreProcess, row.Analysis)
		}
	}
}

// clusterOutputs rebuilds the breakopen inputs of one cluster (for the A3
// greedy re-solve).
func clusterOutputs(a *core.Analyzer, clusterID int) []breakopen.Output {
	cl := a.CD.Clusters[clusterID]
	outs := make([]breakopen.Output, len(cl.Outputs))
	for oi, out := range cl.Outputs {
		o := breakopen.Output{ID: oi, Close: a.CD.Elems[out.Elem].IdealClose}
		for ii := range cl.Inputs {
			if cl.Reach[ii][oi] {
				o.Asserts = append(o.Asserts, a.CD.Elems[cl.Inputs[ii].Elem].IdealAssert)
			}
		}
		outs[oi] = o
	}
	return outs
}

// borrowingDesign is feasible only through transparent-latch borrowing.
func borrowingDesign() *netlist.Design {
	text := `
design borrow
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 BUF_X1 A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi1 Q=q1
inst c1 INV_X1 A=q1 Y=w1
inst c2 INV_X1 A=w1 Y=w2
inst c3 INV_X1 A=w2 Y=w3
inst c4 INV_X1 A=w3 Y=w4
inst c5 INV_X1 A=w4 Y=w5
inst c6 INV_X1 A=w5 Y=w6
inst c7 INV_X1 A=w6 Y=w7
inst c8 INV_X1 A=w7 Y=w8
inst c9 INV_X1 A=w8 Y=w9
inst c10 INV_X1 A=w9 Y=w10
inst c11 INV_X1 A=w10 Y=w11
inst c12 INV_X1 A=w11 Y=w12
inst c13 INV_X1 A=w12 Y=w13
inst c14 INV_X1 A=w13 Y=w14
inst c15 INV_X1 A=w14 Y=w15
inst c16 INV_X1 A=w15 Y=w16
inst c17 INV_X1 A=w16 Y=w17
inst c18 INV_X1 A=w17 Y=w18
inst c19 INV_X1 A=w18 Y=w19
inst c20 INV_X1 A=w19 Y=w20
inst c21 INV_X1 A=w20 Y=w21
inst c22 INV_X1 A=w21 Y=w22
inst c23 INV_X1 A=w22 Y=w23
inst c24 INV_X1 A=w23 Y=w24
inst c25 INV_X1 A=w24 Y=w25
inst c26 INV_X1 A=w25 Y=w26
inst c27 INV_X1 A=w26 Y=w27
inst c28 INV_X1 A=w27 Y=w28
inst c29 INV_X1 A=w28 Y=w29
inst c30 INV_X1 A=w29 Y=w30
inst f2 DFF_X1 D=w30 CK=phi2 Q=q2
inst g3 BUF_X1 A=q2 Y=OUT
end
`
	d, err := netlist.ParseString(text)
	must(err)
	return d
}

// redesignDesign is a marginally slow FF chain the sizing loop can close.
func redesignDesign() *netlist.Design {
	text := `
design sizing
clock phi period 2200ps rise 0 fall 880ps
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=c0
inst i0 INV_X1 A=c0 Y=c1
inst d00 INV_X1 A=c0 Y=x00
inst d01 INV_X1 A=c0 Y=x01
inst d02 INV_X1 A=c0 Y=x02
inst i1 INV_X1 A=c1 Y=c2
inst d10 INV_X1 A=c1 Y=x10
inst d11 INV_X1 A=c1 Y=x11
inst d12 INV_X1 A=c1 Y=x12
inst i2 INV_X1 A=c2 Y=c3
inst d20 INV_X1 A=c2 Y=x20
inst d21 INV_X1 A=c2 Y=x21
inst d22 INV_X1 A=c2 Y=x22
inst i3 INV_X1 A=c3 Y=c4
inst d30 INV_X1 A=c3 Y=x30
inst d31 INV_X1 A=c3 Y=x31
inst d32 INV_X1 A=c3 Y=x32
inst i4 INV_X1 A=c4 Y=c5
inst d40 INV_X1 A=c4 Y=x40
inst d41 INV_X1 A=c4 Y=x41
inst d42 INV_X1 A=c4 Y=x42
inst i5 INV_X1 A=c5 Y=c6
inst f2 DFF_X1 D=c6 CK=phi Q=qo
inst go BUF_X1 A=qo Y=OUT
end
`
	d, err := netlist.ParseString(text)
	must(err)
	return d
}
