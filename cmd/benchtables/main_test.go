package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"hummingbird/internal/benchfmt"
	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/workload"
)

func TestRunFig1(t *testing.T) {
	var sb strings.Builder
	runFig1(&sb)
	out := sb.String()
	if !strings.Contains(out, "2 analysis passes") {
		t.Fatalf("fig1 output:\n%s", out)
	}
	if !strings.Contains(out, "ok=true") {
		t.Fatalf("fig1 verdict:\n%s", out)
	}
}

func TestRunFig2(t *testing.T) {
	var sb strings.Builder
	runFig2(&sb)
	out := sb.String()
	for _, want := range []string{"W=20ns", "min(Odc,Odz)", "max(Ozc,Ozd)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 lacks %q:\n%s", want, out)
		}
	}
}

func TestRunFig3PaperNumbers(t *testing.T) {
	var sb strings.Builder
	runFig3(&sb)
	out := sb.String()
	for _, want := range []string{"Ozd = 5ns (paper: 5ns)", "Odz = -15ns (paper: -15ns)", "Oat = Ozc = 2ns (paper: 2ns)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3 lacks %q:\n%s", want, out)
		}
	}
}

func TestRunFig4(t *testing.T) {
	var sb strings.Builder
	runFig4(&sb)
	out := sb.String()
	if !strings.Contains(out, "breaks satisfying it: C D E") {
		t.Fatalf("fig4 zone wrong:\n%s", out)
	}
	if !strings.Contains(out, "minimum passes: 1") {
		t.Fatalf("fig4 passes wrong:\n%s", out)
	}
}

func TestRunTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 runs the DES-sized analysis")
	}
	var sb strings.Builder
	runTable1(&sb)
	out := sb.String()
	for _, want := range []string{"des", "3681", "alu", "899", "sm1f", "sm1h", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "false") {
		t.Fatalf("a Table 1 design failed timing:\n%s", out)
	}
}

// TestTable1RowsToBenchfmt checks runTable1's returned rows round-trip
// through the benchfmt schema with the measurements intact (the
// -json-out path).
func TestTable1RowsToBenchfmt(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 runs the DES-sized analysis")
	}
	rows := runTable1(io.Discard)
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 4 paper + 2 extension", len(rows))
	}
	run := benchfmt.NewRun("test", "2026-01-01")
	for _, r := range rows {
		run.Rows = append(run.Rows, benchfmt.FromReportRow(r))
	}
	var buf bytes.Buffer
	if err := benchfmt.Write(&buf, run); err != nil {
		t.Fatal(err)
	}
	back, err := benchfmt.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range back.Rows {
		if r.Workload != rows[i].Name || r.AnalysisNs != rows[i].Analysis.Nanoseconds() {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, r, rows[i])
		}
		if !r.OK || r.IncrEditNs <= 0 || r.OpenSharedNs <= 0 {
			t.Fatalf("row %d incomplete: %+v", i, r)
		}
	}
}

func TestRunAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations include the scaling sweep")
	}
	var sb strings.Builder
	runAblations(&sb)
	out := sb.String()
	for _, want := range []string{
		"mismatching nets: 0",
		"transparent ok=true", "opaque ok=false",
		"exhaustive passes=6, greedy passes=6",
		"closure ok=true",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations lack %q:\n%s", want, out)
		}
	}
}

func TestFixtureDesignsValid(t *testing.T) {
	lib := celllib.Default()
	for _, d := range []interface {
		Validate(*celllib.Library) error
	}{borrowingDesign(), redesignDesign()} {
		if err := d.Validate(lib); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterOutputsMatchPlanInputs(t *testing.T) {
	lib := celllib.Default()
	a, err := core.Load(lib, workload.Figure1(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range a.CD.Clusters {
		outs := clusterOutputs(a, cl.ID)
		if len(outs) != len(cl.Outputs) {
			t.Fatalf("cluster %d: %d vs %d outputs", cl.ID, len(outs), len(cl.Outputs))
		}
	}
}
