package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"hummingbird/internal/benchfmt"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("edit_delay=0.5, report=0.3,whatif=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if mix["edit_delay"] != 0.5 || mix["report"] != 0.3 || mix["whatif"] != 0.2 {
		t.Fatalf("mix %v", mix)
	}
	if m, err := parseMix(""); err != nil || m != nil {
		t.Fatalf("empty spec: %v %v", m, err)
	}
	for _, bad := range []string{"noequals", "x=notanumber", "x=-1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("%q: want error", bad)
		}
	}
}

func TestBuildWorkloadAndProbe(t *testing.T) {
	d, err := buildWorkload("sm1f")
	if err != nil {
		t.Fatal(err)
	}
	insts, nets, err := probeDesign(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) == 0 || len(insts) > 8 || len(nets) == 0 {
		t.Fatalf("probe: %d insts, %d nets", len(insts), len(nets))
	}
	if _, err := buildWorkload("nonesuch"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	oldRun := benchfmt.NewRun("old", "2026-01-01")
	oldRun.Load = []benchfmt.LoadRow{{
		Workload: "sm1f", OpClass: "edit_delay", Arrivals: "const",
		Ops: 1000, P50Ns: 1e6, P99Ns: 5e6, P999Ns: 8e6, Throughput: 200,
	}}
	newRun := benchfmt.NewRun("new", "2026-01-02")
	newRun.Load = []benchfmt.LoadRow{{
		Workload: "sm1f", OpClass: "edit_delay", Arrivals: "const",
		Ops: 1000, P50Ns: 1e6, P99Ns: 20e6, P999Ns: 30e6, Throughput: 200,
	}}
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := benchfmt.WriteFile(oldPath, oldRun); err != nil {
		t.Fatal(err)
	}
	if err := benchfmt.WriteFile(newPath, newRun); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := run([]string{"-compare", oldPath, newPath, "-noise", "0.25"}, &out, io.Discard)
	if err == nil {
		t.Fatalf("4x p99 regression must fail the compare; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "p99Ns") {
		t.Fatalf("comparison output names the regressed metric:\n%s", out.String())
	}
	// Same file against itself: no regressions.
	if err := run([]string{"-compare", oldPath, oldPath}, io.Discard, io.Discard); err != nil {
		t.Fatalf("self-compare: %v", err)
	}
	// Wrong arity is a usage error.
	if err := run([]string{"-compare", oldPath}, io.Discard, io.Discard); err == nil {
		t.Fatal("one-arg compare must error")
	}
}

// fakeServer is a protocol-compatible stub accepting any session work,
// for exercising the CLI end to end without a real daemon.
func fakeServer() *httptest.Server {
	var next atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]any{"session": fmt.Sprintf("s%d", next.Add(1)), "ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"ready": true, "state": "ready"})
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"enabled": true, "counters": map[string]int64{}})
	})
	mux.HandleFunc("GET /fleet/members", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"members": []map[string]any{
			{"id": "r1", "up": true}, {"id": "r2", "up": true},
		}})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		json.NewEncoder(w).Encode(map[string]any{"ok": true, "id": "x"})
	})
	return httptest.NewServer(mux)
}

func TestRunWritesAndMergesJSON(t *testing.T) {
	ts := fakeServer()
	defer ts.Close()
	dir := t.TempDir()
	outPath := filepath.Join(dir, "BENCH_test.json")

	// Seed the file the way benchtables would: table rows, no load rows.
	seed := benchfmt.NewRun("test", "2026-02-03")
	seed.Rows = []benchfmt.Row{{Workload: "sm1f", Cells: 40, AnalysisNs: 1000, OK: true}}
	if err := benchfmt.WriteFile(outPath, seed); err != nil {
		t.Fatal(err)
	}

	args := []string{
		"-addr", ts.URL, "-workload", "sm1f",
		"-rate", "150", "-duration", "400ms", "-sessions", "3",
		"-mix", "edit_delay=0.7,report=0.3", "-trace-tag", "",
		"-json-in", outPath, "-json-out", outPath,
		"-assert-no-5xx", "-assert-max-p99", "5s",
		// Deliberately wrong: the live /fleet/members probe (2 members in
		// fakeServer) must override this on the recorded rows.
		"-replicas", "7",
	}
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}

	got, err := benchfmt.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0].Workload != "sm1f" {
		t.Fatalf("table rows clobbered: %+v", got.Rows)
	}
	if len(got.Load) == 0 {
		t.Fatalf("no load rows merged; output:\n%s", out.String())
	}
	for _, lr := range got.Load {
		if lr.Workload != "sm1f" || lr.Ops == 0 && lr.OpClass != "open" {
			t.Fatalf("bad load row %+v", lr)
		}
		if lr.Replicas != 2 {
			t.Fatalf("load row kept -replicas flag instead of live member count: %+v", lr)
		}
	}
	// Re-running replaces rows by key instead of duplicating them.
	nLoad := len(got.Load)
	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	got2, err := benchfmt.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Load) != nLoad {
		t.Fatalf("merge duplicated rows: %d -> %d", nLoad, len(got2.Load))
	}
}

func TestFreshJSONOutRequiresDate(t *testing.T) {
	err := run([]string{"-json-out", "x.json"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-date") {
		t.Fatalf("want date-required error, got %v", err)
	}
}

func TestAssertNo5xxFails(t *testing.T) {
	// Every op 500s: the assertion must fail the run.
	mux := http.NewServeMux()
	var next atomic.Int64
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]any{"session": fmt.Sprintf("s%d", next.Add(1))})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]any{"error": "boom"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	err := run([]string{
		"-addr", ts.URL, "-workload", "sm1f", "-rate", "80",
		"-duration", "300ms", "-sessions", "1", "-mix", "edit_delay=1",
		"-trace-tag", "", "-assert-no-5xx",
	}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "5xx") {
		t.Fatalf("want 5xx assertion failure, got %v", err)
	}
}
