// Command hummingbirdload drives a running hummingbirdd with an
// open-loop workload and reports coordinated-omission-safe latency
// distributions per operation class (see internal/loadgen). It speaks
// the same benchfmt JSON as cmd/benchtables, so one BENCH_<label>.json
// file carries both the single-threaded Table-1 numbers and the
// serving-path load numbers for the same commit.
//
// Typical runs:
//
//	hummingbirdload -addr http://127.0.0.1:7077 -workload sm1f -rate 200 -duration 30s -sessions 100
//	hummingbirdload -workload des -rate 50 -arrivals poisson -json-in BENCH_x.json -json-out BENCH_x.json
//	hummingbirdload -compare BENCH_old.json BENCH_new.json -noise 0.30
//
// The target designs are the paper's Table-1 workloads, generated
// locally and shipped to the daemon as netlist text. Before the run the
// tool probes the design in-process to find instances whose delay
// adjustments stay on the incremental path (the edit_delay population)
// and nets a temporary buffer may be hung off (the edit_topo
// population), so the load mix exercises both the delay-only fast path
// and the full-rebuild path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hummingbird/internal/benchfmt"
	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/incremental"
	"hummingbird/internal/loadgen"
	"hummingbird/internal/netlist"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hummingbirdload:", err)
		os.Exit(1)
	}
}

func run(args []string, w, errW io.Writer) error {
	fs := flag.NewFlagSet("hummingbirdload", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		addr      = fs.String("addr", "http://127.0.0.1:7077", "base URL of the target hummingbirdd (or fleet router)")
		readyzAdr = fs.String("readyz-addr", "", "base URL whose /readyz the drain poller watches (default: -addr); point at one replica when -addr is a fleet router")
		replicas  = fs.Int("replicas", 0, "fleet size behind -addr, recorded on bench rows (0 = standalone)")
		wlName    = fs.String("workload", "sm1f", "target design: des, alu, sm1f, sm1h or soc (100k-cell hierarchical grid)")
		rate      = fs.Float64("rate", 200, "scheduled arrival rate, operations/sec")
		duration  = fs.Duration("duration", 10*time.Second, "steady-state run length (after session ramp)")
		sessions  = fs.Int("sessions", 64, "concurrent sessions held open")
		arrivals  = fs.String("arrivals", loadgen.ArrivalsConst, "arrival process: const or poisson")
		mixSpec   = fs.String("mix", "", "op mix as class=weight,... (default: the built-in interactive mix)")
		maxConc   = fs.Int("concurrency", 0, "max in-flight operations (0 = 512)")
		seed      = fs.Int64("seed", 1, "random seed: same seed, same schedule")
		traceTag  = fs.String("trace-tag", "hbl", "X-Trace-Id prefix; empty disables tagging and the slowest-op trace fetch")
		editCount = fs.Int("edit-insts", 16, "how many delay-editable instances to probe for")
		label     = fs.String("label", "local", "label recorded in -json-out (ignored with -json-in)")
		date      = fs.String("date", "", "date (YYYY-MM-DD) recorded in -json-out; required for a fresh file")
		jsonOut   = fs.String("json-out", "", "write/update a benchfmt JSON run at this path")
		jsonIn    = fs.String("json-in", "", "existing benchfmt JSON run to merge load rows into (e.g. a benchtables -json-out file)")
		compare   = fs.Bool("compare", false, "compare two benchfmt files (args: old.json new.json) and exit 1 on regression")
		checkExpo = fs.String("check-exposition", "", "fetch this Prometheus exposition URL (e.g. a router's /fleet/metrics), validate it, and exit")
		noise     = fs.Float64("noise", 0.25, "relative noise threshold for -compare (0.25 = 25%)")
		maxP99    = fs.Duration("assert-max-p99", 0, "fail if any op class's intent-measured p99 exceeds this (0 = off)")
		no5xx     = fs.Bool("assert-no-5xx", false, "fail if any operation got a 5xx or transport error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare {
		if fs.NArg() < 2 {
			return fmt.Errorf("-compare needs two arguments: old.json new.json")
		}
		oldPath, newPath := fs.Arg(0), fs.Arg(1)
		// flag stops at the first positional argument; re-parse what
		// follows the two files so "-compare old new -noise 0.3" works.
		if fs.NArg() > 2 {
			if err := fs.Parse(fs.Args()[2:]); err != nil {
				return err
			}
		}
		oldRun, err := benchfmt.ReadFile(oldPath)
		if err != nil {
			return err
		}
		newRun, err := benchfmt.ReadFile(newPath)
		if err != nil {
			return err
		}
		if n := benchfmt.WriteComparison(w, oldRun, newRun, *noise); n > 0 {
			return fmt.Errorf("%d regression(s) beyond the %.0f%% noise threshold", n, *noise*100)
		}
		return nil
	}

	if *checkExpo != "" {
		return checkExposition(w, *checkExpo)
	}

	if *jsonOut != "" && *jsonIn == "" && *date == "" {
		return fmt.Errorf("-json-out on a fresh file requires -date (the run date is recorded, never guessed)")
	}

	design, err := buildWorkload(*wlName)
	if err != nil {
		return err
	}
	var designText strings.Builder
	if err := netlist.Write(&designText, design); err != nil {
		return err
	}
	editInsts, topoNets, err := probeDesign(design, *editCount)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workload %s: %d instances probed for delay edits, %d topo nets\n",
		*wlName, len(editInsts), len(topoNets))

	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := loadgen.Config{
		BaseURL:       strings.TrimRight(*addr, "/"),
		Rate:          *rate,
		Arrivals:      *arrivals,
		Duration:      *duration,
		Sessions:      *sessions,
		MaxConcurrent: *maxConc,
		Workload:      *wlName,
		Design:        designText.String(),
		EditInsts:     editInsts,
		TopoNets:      topoNets,
		Mix:           mix,
		Seed:          *seed,
		TraceTag:      *traceTag,
		Replicas:      *replicas,
		Log:           w,
	}
	if *readyzAdr != "" {
		cfg.ReadyzURL = strings.TrimRight(*readyzAdr, "/") + "/readyz"
	}
	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	// When the target is a fleet router, record the member count the
	// router actually ended the run with — join/leave during the run make
	// the -replicas flag stale, and bench rows keyed by a wrong fleet
	// size poison perf comparisons.
	if n, ok := liveMemberCount(cfg.BaseURL); ok {
		if *replicas != 0 && n != *replicas {
			fmt.Fprintf(w, "fleet members: %d live (overriding -replicas %d on bench rows)\n", n, *replicas)
		}
		res.Replicas = n
	}
	res.WriteText(w)

	if *jsonOut != "" {
		var run *benchfmt.Run
		if *jsonIn != "" {
			if run, err = benchfmt.ReadFile(*jsonIn); err != nil {
				return err
			}
			if *date != "" {
				run.Date = *date
			}
		} else {
			run = benchfmt.NewRun(*label, *date)
		}
		run.MergeLoad(res.BenchRows())
		if err := benchfmt.WriteFile(*jsonOut, run); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d table rows + %d load rows to %s\n", len(run.Rows), len(run.Load), *jsonOut)
	}

	var failures []string
	if *no5xx {
		if n := res.Failed5xx(); n > 0 {
			failures = append(failures, fmt.Sprintf("%d operation(s) failed with 5xx or transport errors", n))
		}
	}
	if *maxP99 > 0 {
		if worst := res.WorstP99(); worst > *maxP99 {
			failures = append(failures, fmt.Sprintf("worst op-class p99 %v exceeds the %v ceiling", worst, *maxP99))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("assertion failed: %s", strings.Join(failures, "; "))
	}
	return nil
}

// checkExposition fetches a Prometheus text exposition and runs the
// same structural validator the tests use (help/type lines, histogram
// bucket monotonicity, _sum/_count consistency). It is how CI asserts a
// live /metrics or federated /fleet/metrics endpoint is scrapeable,
// without needing a Prometheus binary in the container.
func checkExposition(w io.Writer, url string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if err := telemetry.CheckExposition(strings.NewReader(string(body))); err != nil {
		return fmt.Errorf("%s: invalid exposition: %w", url, err)
	}
	lines := 0
	for _, ln := range strings.Split(string(body), "\n") {
		if ln != "" && !strings.HasPrefix(ln, "#") {
			lines++
		}
	}
	fmt.Fprintf(w, "exposition ok: %s (%d samples)\n", url, lines)
	return nil
}

// liveMemberCount asks the target for GET /fleet/members and returns how
// many members the ring holds. ok is false when the target is a plain
// hummingbirdd (404) or the probe fails — the -replicas flag then stands.
func liveMemberCount(baseURL string) (int, bool) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(baseURL + "/fleet/members")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	var body struct {
		Members []struct {
			ID string `json:"id"`
		} `json:"members"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body) != nil {
		return 0, false
	}
	if len(body.Members) == 0 {
		return 0, false
	}
	return len(body.Members), true
}

// buildWorkload generates one of the paper's Table-1 designs by name.
func buildWorkload(name string) (*netlist.Design, error) {
	switch strings.ToLower(name) {
	case "des":
		return workload.DES()
	case "alu":
		return workload.ALU()
	case "sm1f":
		return workload.SM1F(), nil
	case "sm1h":
		return workload.SM1H(), nil
	case "soc":
		return workload.SoCCells(100_000, 1)
	}
	return nil, fmt.Errorf("unknown workload %q (want des, alu, sm1f, sm1h or soc)", name)
}

// probeDesign opens the design in-process and finds up to n instances
// whose delay adjustment stays incremental (no fallback to a full
// rebuild), plus the output nets of those instances as attachment
// points for temporary topology-edit buffers.
func probeDesign(d *netlist.Design, n int) (editInsts, topoNets []string, err error) {
	eng, err := incremental.Open(celllib.Default(), d, core.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	netSet := make(map[string]bool)
	for i := range d.Instances {
		if len(editInsts) >= n {
			break
		}
		inst := d.Instances[i]
		out, aerr := eng.Apply(incremental.Edit{Op: incremental.Adjust, Inst: inst.Name, Delta: 100})
		if aerr != nil {
			continue
		}
		if _, rerr := eng.Apply(incremental.Edit{Op: incremental.Adjust, Inst: inst.Name, Delta: -100}); rerr != nil {
			return nil, nil, fmt.Errorf("probe revert on %s: %w", inst.Name, rerr)
		}
		if !out.Incremental {
			continue
		}
		editInsts = append(editInsts, inst.Name)
		if y := inst.Conns["Y"]; y != "" {
			netSet[y] = true
		}
	}
	if len(editInsts) == 0 {
		return nil, nil, fmt.Errorf("%s: no incrementally editable instances found", d.Name)
	}
	for net := range netSet {
		topoNets = append(topoNets, net)
	}
	sort.Strings(topoNets)
	if len(topoNets) == 0 {
		return nil, nil, fmt.Errorf("%s: no topology-edit attachment nets found", d.Name)
	}
	return editInsts, topoNets, nil
}

// parseMix parses "class=weight,class=weight" into a loadgen mix.
func parseMix(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil // loadgen substitutes DefaultMix
	}
	mix := make(map[string]float64)
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want class=weight)", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad mix weight %q", v)
		}
		mix[k] = f
	}
	return mix, nil
}
