package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const pipeHB = `
design pipe
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset -0.5ns
inst g1 BUF_X1 A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi1 Q=q1
inst g2 INV_X1 A=q1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst l2 DFF_X1 D=n3 CK=phi2 Q=q2
inst g4 BUF_X1 A=q2 Y=OUT
end
`

const slowHB = `
design slowcli
clock phi period 1ns rise 0 fall 400ps
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=q1
inst g1 INV_X1 A=q1 Y=n1
inst g2 INV_X1 A=n1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst g4 INV_X1 A=n3 Y=n4
inst f2 DFF_X1 D=n4 CK=phi Q=q2
inst g5 BUF_X1 A=q2 Y=OUT
end
`

func writeDesign(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "design.hb")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasic(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-plan", "-slacks", "3", "-supp", writeDesign(t, pipeHB)}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"design pipe", "VERDICT: all paths fast enough",
		"cluster 0", "break at", "slack", "supplementary constraints: all satisfied",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output lacks %q:\n%s", want, text)
		}
	}
}

func TestRunSlowDesignShowsPaths(t *testing.T) {
	var out strings.Builder
	if err := run([]string{writeDesign(t, slowHB)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "too-slow paths") || !strings.Contains(text, "slow path 1:") {
		t.Fatalf("slow output wrong:\n%s", text)
	}
}

func TestRunConstraints(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-constraints", "-nets", "n2,bogus", writeDesign(t, pipeHB)}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "n2") || !strings.Contains(text, "unknown net \"bogus\"") {
		t.Fatalf("constraints output wrong:\n%s", text)
	}
}

func TestRunFlagsFile(t *testing.T) {
	dir := t.TempDir()
	flags := filepath.Join(dir, "flags.oct")
	var out strings.Builder
	if err := run([]string{"-flags", flags, writeDesign(t, slowHB)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(flags)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "hb.verdict") || !strings.Contains(string(data), "slow") {
		t.Fatalf("flags file wrong:\n%s", data)
	}
}

// TestVersionFlag checks -version prints a build line and exits before
// the usual "design file required" check.
func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	line := out.String()
	if !strings.HasPrefix(line, "hummingbird ") || !strings.HasSuffix(line, "\n") {
		t.Fatalf("version output %q", line)
	}
	if !strings.Contains(line, "go") {
		t.Fatalf("version output %q lacks toolchain version", line)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"/nonexistent/file.hb"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Fatal("unreadable file accepted")
	}
	bad := writeDesign(t, "design x\n") // missing end
	if err := run([]string{bad}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Fatal("malformed netlist accepted")
	}
}

func TestReplCommands(t *testing.T) {
	var out strings.Builder
	script := strings.Join([]string{
		"help",
		"slacks 2",
		"paths",
		"plan",
		"supp",
		"analyze",
		"adjust g2 5ns",  // slows g2: design becomes slow at 10ns? generous clock: stays ok
		"adjust g2 -5ns", // restore
		"clock phi1 fall 3ns",
		"clock phi1 fall 4ns",
		"clock nosuch period 5ns",
		"clock phi1 bogusfield 5ns",
		"adjust g2 nonsense",
		"constraints n2",
		"unknowncmd",
		"",
		"quit",
	}, "\n")
	err := run([]string{"-i", writeDesign(t, pipeHB)}, strings.NewReader(script), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"interactive mode", "commands:", "VERDICT",
		"unknown clock \"nosuch\"", "unknown clock field", "unknown command",
		"bad time literal",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("repl output lacks %q:\n%s", want, text)
		}
	}
}

func TestReplAdjustChangesVerdict(t *testing.T) {
	var out strings.Builder
	// pipe at a 10ns clock has ~4ns of margin; +9ns on g2 breaks it.
	script := "adjust g2 9ns\nquit\n"
	if err := run([]string{"-i", writeDesign(t, pipeHB)}, strings.NewReader(script), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "too-slow paths") {
		t.Fatalf("adjustment did not break timing:\n%s", out.String())
	}
}

func TestReplFlagsCommand(t *testing.T) {
	dir := t.TempDir()
	flags := filepath.Join(dir, "f.oct")
	var out strings.Builder
	script := "flags " + flags + "\nquit\n"
	if err := run([]string{"-i", writeDesign(t, pipeHB)}, strings.NewReader(script), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(flags); err != nil {
		t.Fatal("flags file not written")
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatal(out.String())
	}
}

func TestReplEOFExitsCleanly(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-i", writeDesign(t, pipeHB)}, strings.NewReader("plan\n"), &out, io.Discard); err != nil {
		t.Fatalf("EOF exit: %v", err)
	}
}

func TestRunCustomLibrary(t *testing.T) {
	dir := t.TempDir()
	libPath := filepath.Join(dir, "cells.lib")
	libText := `
library tiny
cell MYBUF kind comb area 1 drive 1
  pin A in cap 2
  pin Y out
  arc A Y sense pos maxrise 100 1 maxfall 100 1
endcell
cell MYFF kind edge area 2 drive 1
  pin D in cap 2
  pin CK in control cap 2
  pin Q out
  arc D Q sense pos maxrise 0 0 maxfall 0 0
  sync setup 50 ddz 0 dcz 100
endcell
end
`
	if err := os.WriteFile(libPath, []byte(libText), 0o644); err != nil {
		t.Fatal(err)
	}
	design := `
design custom
clock phi period 10ns rise 0 fall 4ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 MYFF D=IN CK=phi Q=q1
inst g1 MYBUF A=q1 Y=n1
inst f2 MYFF D=n1 CK=phi Q=q2
inst g2 MYBUF A=q2 Y=OUT
end
`
	var out strings.Builder
	if err := run([]string{"-lib", libPath, writeDesign(t, design)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "all paths fast enough") {
		t.Fatalf("custom library run:\n%s", out.String())
	}
	// A bad library file errors cleanly.
	if err := run([]string{"-lib", "/nonexistent.lib", writeDesign(t, design)}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Fatal("missing library accepted")
	}
}

func TestRunVerilogFlow(t *testing.T) {
	dir := t.TempDir()
	vPath := filepath.Join(dir, "top.v")
	vText := `
module top(a, ck, y);
  input a, ck;
  output y;
  wire n1, q1;
  INV_X1 g1(.A(a), .Y(n1));
  DLATCH_X1 l1(.D(n1), .G(ck), .Q(q1));
  BUF_X1 g2(.A(q1), .Y(y));
endmodule
`
	if err := os.WriteFile(vPath, []byte(vText), 0o644); err != nil {
		t.Fatal(err)
	}
	consPath := filepath.Join(dir, "cons.hb")
	consText := `
design cons
clock ck period 10ns rise 0 fall 4ns
input a clock ck edge fall offset 0
output y clock ck edge fall offset 0
end
`
	if err := os.WriteFile(consPath, []byte(consText), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-verilog", "-timing", consPath, vPath}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "all paths fast enough") {
		t.Fatalf("verilog flow output:\n%s", out.String())
	}
	// Without constraints the ports lack clock references: clean error.
	if err := run([]string{"-verilog", vPath}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Fatal("unconstrained verilog accepted")
	}
	// Bad top name.
	if err := run([]string{"-verilog", "-top", "nope", "-timing", consPath, vPath}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Fatal("bad top accepted")
	}
}

func TestArgN(t *testing.T) {
	if argN([]string{"slacks"}, 7) != 7 {
		t.Fatal("default")
	}
	if argN([]string{"slacks", "3"}, 7) != 3 {
		t.Fatal("explicit")
	}
	if argN([]string{"slacks", "x"}, 7) != 7 {
		t.Fatal("garbage")
	}
	if argN([]string{"slacks", "-2"}, 7) != 7 {
		t.Fatal("negative")
	}
}

func TestRunWorstPaths(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-worst", "3", writeDesign(t, pipeHB)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "path 1:") {
		t.Fatalf("worst paths missing:\n%s", out.String())
	}
	// And via the repl.
	out.Reset()
	if err := run([]string{"-i", writeDesign(t, pipeHB)}, strings.NewReader("worst 2\nquit\n"), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "path 1:") {
		t.Fatalf("repl worst missing:\n%s", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	var out strings.Builder
	if err := run([]string{"-json", jsonPath, writeDesign(t, pipeHB)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"design\": \"pipe\"") || !strings.Contains(string(data), "\"ok\": true") {
		t.Fatalf("json content:\n%s", data)
	}
}

func TestRunSimFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sim", "12", writeDesign(t, pipeHB)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "simulated 12 cycles") {
		t.Fatalf("sim output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Fatalf("fast design showed violations:\n%s", out.String())
	}
	// The slow design reports violations dynamically too.
	out.Reset()
	slow := `
design slowcli2
clock phi period 1ns rise 0 fall 400ps
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=q1
inst g1 INV_X1 A=q1 Y=n1
inst g2 INV_X1 A=n1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst f2 DFF_X1 D=n3 CK=phi Q=q2
inst g5 BUF_X1 A=q2 Y=OUT
end
`
	if err := run([]string{"-sim", "40", writeDesign(t, slow)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), " 0 violations") {
		t.Fatalf("slow design showed no dynamic violations:\n%s", out.String())
	}
}

func TestRunSimRaceDetection(t *testing.T) {
	skew := `
design skewcli
clock phi period 20ns rise 0 fall 8ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=q1
inst g1 INV_X1 A=q1 Y=n1
inst cb1 BUF_X4 A=phi Y=ck1
inst cb2 BUF_X4 A=ck1 Y=ck2
inst cb3 BUF_X4 A=ck2 Y=ck3
inst cb4 BUF_X4 A=ck3 Y=ck4
inst cb5 BUF_X4 A=ck4 Y=ck5
inst f2 DFF_X1 D=n1 CK=ck5 Q=q2
inst g2 BUF_X1 A=q2 Y=OUT
end
`
	var out strings.Builder
	if err := run([]string{"-sim", "16", writeDesign(t, skew)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "RACE f2") {
		t.Fatalf("skew race not reported:\n%s", out.String())
	}
	// The clean pipe reports zero disagreements.
	out.Reset()
	if err := run([]string{"-sim", "16", writeDesign(t, pipeHB)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "race check: 0 disagreements") {
		t.Fatalf("clean design raced:\n%s", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-no-such-flag", writeDesign(t, pipeHB)}, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(errOut.String(), "usage: hummingbird") || !strings.Contains(errOut.String(), "-metrics-out") {
		t.Fatalf("no usage on stderr for unknown flag:\n%s", errOut.String())
	}

	errOut.Reset()
	if err := run(nil, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("missing input accepted")
	}
	if !strings.Contains(errOut.String(), "usage: hummingbird") {
		t.Fatalf("no usage on stderr for missing input:\n%s", errOut.String())
	}

	errOut.Reset()
	if err := run([]string{writeDesign(t, pipeHB), "extra.hb"}, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("extra argument accepted")
	}
	if !strings.Contains(errOut.String(), "usage: hummingbird") {
		t.Fatalf("no usage on stderr for extra argument:\n%s", errOut.String())
	}
}

func TestRunTraceConvergence(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trace-convergence", writeDesign(t, slowHB)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "msg=sweep") || !strings.Contains(got, "iteration=forward") {
		t.Fatalf("no structured sweep lines in output:\n%s", got)
	}
	if !strings.Contains(got, "worst_slack_ps=") || !strings.Contains(got, "moved=") {
		t.Fatalf("sweep lines missing fields:\n%s", got)
	}
}

func TestRunMetricsOut(t *testing.T) {
	mPath := filepath.Join(t.TempDir(), "metrics.json")
	var out strings.Builder
	if err := run([]string{"-metrics-out", mPath, writeDesign(t, slowHB)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote telemetry snapshot to "+mPath) {
		t.Fatalf("no snapshot confirmation:\n%s", out.String())
	}
	data, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Enabled  bool             `json:"enabled"`
		Counters map[string]int64 `json:"counters"`
		Timers   map[string]struct {
			Count   int64 `json:"count"`
			TotalNs int64 `json:"totalNs"`
		} `json:"timers"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, data)
	}
	if !snap.Enabled {
		t.Fatal("snapshot says telemetry disabled")
	}
	for _, c := range []string{"core.sweeps", "sta.clusters_analyzed", "delaycalc.evaluations"} {
		if snap.Counters[c] <= 0 {
			t.Fatalf("counter %s not collected: %v", c, snap.Counters)
		}
	}
	for _, tm := range []string{"phase.load", "phase.analysis"} {
		st, ok := snap.Timers[tm]
		if !ok || st.Count <= 0 {
			t.Fatalf("timer %s not collected: %v", tm, snap.Timers)
		}
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var out strings.Builder
	if err := run([]string{"-cpuprofile", cpu, "-memprofile", mem, writeDesign(t, pipeHB)}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	if !strings.Contains(out.String(), "wrote heap profile to "+mem) {
		t.Fatalf("no heap-profile confirmation:\n%s", out.String())
	}
}
