// Command hummingbird is the timing-analyzer front end: it loads a textual
// netlist (the repository's OCT stand-in), runs the slow-path
// identification of Algorithm 1 and, on request, the constraint generation
// of Algorithm 2, the supplementary (double-clocking) checks, the cluster
// pass plan, and an interactive what-if mode in which clock waveforms and
// component delays may be adjusted and the design re-analysed (§8).
//
// Usage:
//
//	hummingbird [flags] design.hb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hummingbird/internal/buildinfo"
	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/incremental"
	"hummingbird/internal/logic"
	"hummingbird/internal/netlist"
	"hummingbird/internal/octdb"
	"hummingbird/internal/report"
	"hummingbird/internal/sim"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/verilog"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hummingbird:", err)
		os.Exit(1)
	}
}

// session holds the mutable analysis state of one CLI run: the incremental
// engine plus cached views of its analyzer and report. Delay adjustments
// flow through the engine's edit API (patching only the dirty clusters);
// structural changes like clock reshaping reopen the engine.
type session struct {
	lib    *celllib.Library
	design *netlist.Design
	opts   core.Options

	eng      *incremental.Engine
	analyzer *core.Analyzer
	rep      *core.Report
	pre, ana time.Duration
}

// rebuild (re)opens the incremental engine: a full elaboration + analysis.
func (s *session) rebuild() error {
	t0 := time.Now()
	eng, err := incremental.Open(s.lib, s.design, s.opts)
	if err != nil {
		return err
	}
	s.pre = time.Since(t0)
	s.ana = 0
	s.eng = eng
	s.sync()
	return nil
}

// sync refreshes the cached views after the engine re-analyzed (the engine
// replaces its analyzer — and possibly its design — on topology edits).
func (s *session) sync() {
	s.design = s.eng.Design()
	s.opts = s.eng.Options()
	s.analyzer = s.eng.Analyzer()
	s.rep = s.eng.Report()
}

// apply routes one edit through the engine and refreshes the views.
func (s *session) apply(w io.Writer, edits ...incremental.Edit) error {
	t0 := time.Now()
	out, err := s.eng.Apply(edits...)
	if err != nil {
		return err
	}
	s.ana = time.Since(t0)
	s.sync()
	if out.Incremental {
		fmt.Fprintf(w, "re-analysis: incremental, %d dirty clusters, %v\n", out.DirtyClusters, s.ana)
	} else {
		fmt.Fprintf(w, "re-analysis: full rebuild (%s), %v\n", out.FallbackReason, s.ana)
	}
	return nil
}

func run(args []string, stdin io.Reader, w, errW io.Writer) error {
	fs := flag.NewFlagSet("hummingbird", flag.ContinueOnError)
	fs.SetOutput(errW)
	fs.Usage = func() {
		fmt.Fprintln(errW, "usage: hummingbird [flags] design.hb")
		fs.PrintDefaults()
	}
	var (
		constraints = fs.Bool("constraints", false, "run Algorithm 2 and dump net budgets")
		plan        = fs.Bool("plan", false, "print the per-cluster pass plan")
		slacks      = fs.Int("slacks", 0, "print the N tightest net slacks")
		paths       = fs.Int("paths", 10, "print up to N worst slow paths when the design is slow")
		supp        = fs.Bool("supp", false, "check supplementary (min-delay) constraints")
		flagsOut    = fs.String("flags", "", "write OCT-style slow-path annotations to this file")
		interactive = fs.Bool("i", false, "interactive mode")
		nets        = fs.String("nets", "", "comma-separated nets for -constraints output")
		libFile     = fs.String("lib", "", "cell library file (default: built-in library)")
		verilogIn   = fs.Bool("verilog", false, "treat the input as structural Verilog")
		worst       = fs.Int("worst", 0, "print the N most critical endpoint paths (whether or not they violate)")
		jsonOut     = fs.String("json", "", "write the full analysis result as JSON to this file")
		skew        = fs.Bool("skew", false, "print per-clock control-path skew")
		simCycles   = fs.Int("sim", 0, "dynamically validate: simulate N overall clock periods with random stimulus and report capture violations")
		topName     = fs.String("top", "", "top module name for -verilog (default: auto-detect)")
		consFile    = fs.String("timing", "", "clock/port timing constraints file for -verilog (netlist format)")
		traceConv   = fs.Bool("trace-convergence", false, "emit one structured trace line per fixed-point sweep")
		metricsOut  = fs.String("metrics-out", "", "write a JSON telemetry snapshot (counters, phase timers) to this file")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile to this file before exiting")
		version     = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.WriteVersion(w, "hummingbird")
		return nil
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one input design, got %d", fs.NArg())
	}
	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *traceConv || *metricsOut != "" {
		telemetry.Enable()
		telemetry.Reset()
		defer telemetry.Disable()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	var design *netlist.Design
	if *verilogIn {
		design, err = verilog.Import(f, *topName)
	} else {
		design, err = netlist.Parse(f)
	}
	f.Close()
	if err != nil {
		return err
	}
	if *consFile != "" {
		cf, err := os.Open(*consFile)
		if err != nil {
			return err
		}
		cons, err := netlist.Parse(cf)
		cf.Close()
		if err != nil {
			return err
		}
		if err := verilog.Constrain(design, cons); err != nil {
			return err
		}
	}
	lib := celllib.Default()
	if *libFile != "" {
		lf, err := os.Open(*libFile)
		if err != nil {
			return err
		}
		lib, err = celllib.ParseLibrary(lf)
		lf.Close()
		if err != nil {
			return err
		}
	}
	s := &session{
		lib:    lib,
		design: design,
		opts:   core.DefaultOptions(),
	}
	s.opts.Adjustments = map[string]clock.Time{}
	if *traceConv {
		s.opts.Trace = telemetry.NewTracer(w)
	}
	if err := s.rebuild(); err != nil {
		return err
	}

	report.Summary(w, s.analyzer, s.rep)
	fmt.Fprintf(w, "elaboration + analysis %v\n", s.pre)
	if !s.rep.OK && *paths > 0 {
		report.SlowPaths(w, s.analyzer, s.rep, *paths)
	}
	if *plan {
		report.Plan(w, s.analyzer)
	}
	if *slacks > 0 {
		report.Slacks(w, s.analyzer, s.rep.Result, *slacks)
	}
	if *worst > 0 {
		report.CriticalPaths(w, s.analyzer, s.rep.Result, *worst)
	}
	if *constraints {
		c, err := s.eng.Constraints()
		if err != nil {
			return err
		}
		var names []string
		if *nets != "" {
			names = strings.Split(*nets, ",")
		}
		report.Constraints(w, s.analyzer, c, names)
	}
	if *supp {
		printSupplementary(w, s)
	}
	if *skew {
		report.ClockSkew(w, s.analyzer)
	}
	if *simCycles > 0 {
		if err := runSim(w, s, *simCycles); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		jf, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(jf, s.analyzer, s.rep); err != nil {
			jf.Close()
			return err
		}
		if err := jf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote JSON result to %s\n", *jsonOut)
	}
	if *flagsOut != "" {
		db := octdb.New(design)
		octdb.FlagSlowPaths(db, s.analyzer, s.rep)
		out, err := os.Create(*flagsOut)
		if err != nil {
			return err
		}
		if err := db.Save(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d annotations to %s\n", db.Len(), *flagsOut)
	}
	if *interactive {
		if err := repl(s, stdin, w); err != nil {
			return err
		}
	}
	if *memProfile != "" {
		runtime.GC()
		mf, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		if err := pprof.WriteHeapProfile(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote heap profile to %s\n", *memProfile)
	}
	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteSnapshot(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote telemetry snapshot to %s\n", *metricsOut)
	}
	return nil
}

func printSupplementary(w io.Writer, s *session) {
	v := s.analyzer.CheckSupplementary()
	if len(v) == 0 {
		fmt.Fprintln(w, "supplementary constraints: all satisfied")
		return
	}
	for _, x := range v {
		fmt.Fprintf(w, "supplementary violation: %s -> %s (min delay %v, must exceed %v)\n",
			s.analyzer.CD.Elems[x.FromElem].Name(), s.analyzer.CD.Elems[x.ToElem].Name(),
			x.MinDelay, x.Bound)
	}
}

// runSim performs the -sim dynamic validation: worst-case event-driven
// simulation with deterministic pseudo-random stimulus, then the capture
// setup check (the first quarter of the run is treated as warm-up).
func runSim(w io.Writer, s *session, cycles int) error {
	simr, nw, err := sim.FromDesign(s.lib, s.design, s.opts.Delay, s.opts.Adjustments)
	if err != nil {
		return err
	}
	r := rand.New(rand.NewSource(1))
	tr := simr.Run(cycles, func(cycle int, port string) logic.Value {
		return logic.FromBool(r.Intn(2) == 0)
	})
	warm := clock.Time(cycles/4) * nw.Clocks.Overall()
	viol := sim.CheckSetup(nw, tr, warm)
	fmt.Fprintf(w, "simulated %d cycles: %d captures, %d violations after warm-up\n",
		cycles, len(tr.Captures), len(viol))
	for i, v := range viol {
		if i >= 10 {
			fmt.Fprintf(w, "  ... %d more\n", len(viol)-10)
			break
		}
		kind := "setup window hit"
		if v.CapturedX {
			kind = "captured X"
		}
		fmt.Fprintf(w, "  %s at %v: %s (last change %v)\n", v.Inst, v.At, kind, v.LastChange)
	}
	// Two-corner race detection: rerun at minimum delays with identical
	// stimulus and diff the capture sequences (catches clock-skew hold
	// hazards the static analysis does not model).
	simr2, _, err := sim.FromDesign(s.lib, s.design, s.opts.Delay, s.opts.Adjustments)
	if err != nil {
		return err
	}
	simr2.UseMinDelays(true)
	r2 := rand.New(rand.NewSource(1))
	tr2 := simr2.Run(cycles, func(cycle int, port string) logic.Value {
		return logic.FromBool(r2.Intn(2) == 0)
	})
	races := sim.CompareCaptures(tr, tr2, warm)
	fmt.Fprintf(w, "two-corner race check: %d disagreements\n", len(races))
	for i, rr := range races {
		if i >= 10 {
			fmt.Fprintf(w, "  ... %d more\n", len(races)-10)
			break
		}
		fmt.Fprintf(w, "  RACE %s capture %d at %v: max-corner %v, min-corner %v\n",
			rr.Inst, rr.Index, rr.At, rr.MaxValue, rr.MinValue)
	}
	return nil
}

const replHelp = `commands:
  analyze                      re-run Algorithm 1 and print the summary
  clock NAME period|rise|fall TIME
                               reshape a clock waveform and re-analyse
  adjust INST DELTA            add DELTA (e.g. 200ps, -1ns) to a component's delays
                               (incremental: only the affected clusters re-analyse)
  resize INST CELL             repoint a component at another library cell
  slacks [N]                   print the N tightest net slacks (default 10)
  paths [N]                    print the N worst slow paths (default 10)
  worst [N]                    print the N most critical endpoint paths
  plan                         print the per-cluster pass plan
  constraints NET [NET...]     run Algorithm 2 and print budgets for nets
  supp                         check supplementary constraints
  skew                         per-clock control-path skew
  flags FILE                   write OCT-style annotations to FILE
  help                         this text
  quit                         exit`

// repl implements the §8 interactive mode: "changes may be made to the
// shapes of the clock waveforms to determine the effect on system timing.
// Adjustments may also be made to component delays."
func repl(s *session, in io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(in)
	fmt.Fprintln(w, "interactive mode; 'help' lists commands")
	for {
		fmt.Fprint(w, "hb> ")
		if !sc.Scan() {
			fmt.Fprintln(w)
			return sc.Err()
		}
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "quit", "exit", "q":
			return nil
		case "help":
			fmt.Fprintln(w, replHelp)
		case "analyze":
			if err := s.rebuild(); err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			report.Summary(w, s.analyzer, s.rep)
		case "clock":
			if len(f) != 4 {
				fmt.Fprintln(w, "usage: clock NAME period|rise|fall TIME")
				continue
			}
			if err := reshapeClock(s, f[1], f[2], f[3]); err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			report.Summary(w, s.analyzer, s.rep)
		case "adjust":
			if len(f) != 3 {
				fmt.Fprintln(w, "usage: adjust INST DELTA")
				continue
			}
			delta, err := netlist.ParseTime(f[2])
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			if err := s.apply(w, incremental.Edit{Op: incremental.Adjust, Inst: f[1], Delta: delta}); err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			report.Summary(w, s.analyzer, s.rep)
		case "resize":
			if len(f) != 3 {
				fmt.Fprintln(w, "usage: resize INST CELL")
				continue
			}
			if err := s.apply(w, incremental.Edit{Op: incremental.Resize, Inst: f[1], To: f[2]}); err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			report.Summary(w, s.analyzer, s.rep)
		case "slacks":
			report.Slacks(w, s.analyzer, s.rep.Result, argN(f, 10))
		case "paths":
			report.SlowPaths(w, s.analyzer, s.rep, argN(f, 10))
		case "worst":
			report.CriticalPaths(w, s.analyzer, s.rep.Result, argN(f, 10))
		case "plan":
			report.Plan(w, s.analyzer)
		case "constraints":
			// The engine reuses the final Algorithm 1 analysis and
			// restores the fixed-point offsets afterwards, so no rebuild
			// is needed between constraint dumps and other commands.
			c, err := s.eng.Constraints()
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			report.Constraints(w, s.analyzer, c, f[1:])
		case "supp":
			printSupplementary(w, s)
		case "skew":
			report.ClockSkew(w, s.analyzer)
		case "flags":
			if len(f) != 2 {
				fmt.Fprintln(w, "usage: flags FILE")
				continue
			}
			db := octdb.New(s.design)
			octdb.FlagSlowPaths(db, s.analyzer, s.rep)
			out, err := os.Create(f[1])
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			if err := db.Save(out); err != nil {
				fmt.Fprintln(w, "error:", err)
			}
			out.Close()
			fmt.Fprintf(w, "wrote %d annotations\n", db.Len())
		default:
			fmt.Fprintf(w, "unknown command %q ('help' lists commands)\n", f[0])
		}
	}
}

func argN(f []string, def int) int {
	if len(f) < 2 {
		return def
	}
	var n int
	if _, err := fmt.Sscanf(f[1], "%d", &n); err != nil || n <= 0 {
		return def
	}
	return n
}

func reshapeClock(s *session, name, field, val string) error {
	t, err := netlist.ParseTime(val)
	if err != nil {
		return err
	}
	for i := range s.design.Clocks {
		if s.design.Clocks[i].Name != name {
			continue
		}
		c := s.design.Clocks[i]
		switch field {
		case "period":
			c.Period = t
		case "rise":
			c.RiseAt = t
		case "fall":
			c.FallAt = t
		default:
			return fmt.Errorf("unknown clock field %q", field)
		}
		if err := c.Validate(); err != nil {
			return err
		}
		s.design.Clocks[i] = c
		return s.rebuild()
	}
	return fmt.Errorf("unknown clock %q", name)
}
