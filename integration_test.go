package hummingbird

// Integration tests: end-to-end flows across every subsystem — textual
// netlist in, analysis, constraint generation, database flagging, and
// format round-trips preserving analysis results.

import (
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
	"hummingbird/internal/octdb"
	"hummingbird/internal/workload"
)

// kitchenSink exercises, in one design: two frequencies (phi2 at 2×),
// a buffered clock tree, an inverted (active-low-effective) latch control,
// hierarchy, a tristate bus, transparent latches, flip-flops, and
// offset-carrying primary ports.
const kitchenSink = `
design kitchen
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 50ns rise 25ns fall 45ns
input A clock phi1 edge rise offset 1ns
input B clock phi1 edge rise offset 0
output Y clock phi1 edge fall offset -1ns
output Z clock phi2 edge fall offset 0
module DP
  input X0 X1
  output S C
  inst x1 XOR2_X1 A=X0 B=X1 Y=S
  inst a1 AND2_X1 A=X0 B=X1 Y=C
endmodule
inst ckb1 BUF_X2 A=phi1 Y=ck1
inst cki1 INV_X2 A=ck1 Y=ck1n
inst u1 DP X0=A X1=B S=s1 C=c1
inst l1 DLATCH_X1 D=s1 G=ck1 Q=q1
inst l2 DLATCH_X1 D=c1 G=ck1n Q=q2
inst t1 TBUF_X1 A=q1 EN=phi1 Y=bus
inst t2 TBUF_X1 A=q2 EN=phi2 Y=bus
inst g1 INV_X1 A=bus Y=n1
inst f1 DFF_X1 D=n1 CK=phi2 Q=qf
inst g2 BUF_X1 A=qf Y=Y
inst g3 INV_X1 A=qf Y=Z
end
`

func loadKitchen(t *testing.T) (*core.Analyzer, *core.Report) {
	t.Helper()
	d, err := netlist.ParseString(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Load(celllib.Default(), d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	return a, rep
}

func TestKitchenSinkEndToEnd(t *testing.T) {
	a, rep := loadKitchen(t)

	// Hierarchy rolled up.
	if a.Lib.Cell("DP") == nil {
		t.Fatal("module DP not rolled up")
	}
	// phi2-controlled elements replicate (2 pulses per overall 100ns).
	if got := len(a.CD.ElemsOf("f1")); got != 2 {
		t.Fatalf("f1 elements = %d, want 2", got)
	}
	if got := len(a.CD.ElemsOf("t2")); got != 2 {
		t.Fatalf("t2 elements = %d, want 2", got)
	}
	// Inverted control detected on l2.
	for _, s := range a.CD.Sites {
		if s.Name == "l2" && !s.Inverted {
			t.Fatal("l2 control inversion missed")
		}
		if s.Name == "l1" && s.Inverted {
			t.Fatal("l1 spuriously inverted")
		}
		if (s.Name == "l1" || s.Name == "l2") && s.CtrlMax <= 0 {
			t.Fatalf("%s control delay = %v", s.Name, s.CtrlMax)
		}
	}
	if !rep.OK {
		t.Fatalf("kitchen sink slow: worst %v", rep.WorstSlack())
	}

	// Algorithm 2 produces coherent budgets for every data arc.
	c, err := a.GenerateConstraints()
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range a.CD.Clusters {
		for _, arc := range cl.Arcs {
			if b := c.Allowed(arc.From, arc.To); b < arc.D.Max() {
				t.Fatalf("budget %v below arc delay %v on %s", b, arc.D.Max(), arc.Inst)
			}
		}
	}
}

func TestKitchenSinkDatabaseFlow(t *testing.T) {
	a, rep := loadKitchen(t)
	d := a.Design
	db := octdb.New(d)
	octdb.FlagSlowPaths(db, a, rep)
	v, ok := db.Get(octdb.DesignObj, "", octdb.PropVerdict)
	if !ok || v.Str != "ok" {
		t.Fatalf("verdict property: %+v %v", v, ok)
	}
	var sb strings.Builder
	if err := db.Save(&sb); err != nil {
		t.Fatal(err)
	}
	db2 := octdb.New(d)
	if err := db2.Load(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("database round trip: %d vs %d", db2.Len(), db.Len())
	}
}

// TestNetlistRoundTripPreservesAnalysis: writing and re-parsing the design
// must not change any analysis outcome.
func TestNetlistRoundTripPreservesAnalysis(t *testing.T) {
	d, err := netlist.ParseString(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := netlist.Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	d2, err := netlist.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	lib := celllib.Default()
	a1, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.Load(lib, d2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a1.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a2.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if r1.OK != r2.OK || r1.WorstSlack() != r2.WorstSlack() {
		t.Fatalf("round trip changed verdict: %v/%v vs %v/%v",
			r1.OK, r1.WorstSlack(), r2.OK, r2.WorstSlack())
	}
	// Per-net slacks identical.
	for net, s := range r1.Result.NetSlack {
		name := a1.CD.Nets[net]
		id2, ok := a2.CD.NetIdx[name]
		if !ok {
			t.Fatalf("net %s lost in round trip", name)
		}
		if r2.Result.NetSlack[id2] != s {
			t.Fatalf("net %s slack %v vs %v", name, s, r2.Result.NetSlack[id2])
		}
	}
}

// TestLibraryRoundTripPreservesAnalysis: the same property for the cell
// library format.
func TestLibraryRoundTripPreservesAnalysis(t *testing.T) {
	lib := celllib.Default()
	var sb strings.Builder
	if err := celllib.WriteLibrary(&sb, lib); err != nil {
		t.Fatal(err)
	}
	lib2, err := celllib.ParseLibraryString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	d, err := netlist.ParseString(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.Load(lib2, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := a1.IdentifySlowPaths()
	r2, _ := a2.IdentifySlowPaths()
	if r1.WorstSlack() != r2.WorstSlack() {
		t.Fatalf("library round trip changed worst slack: %v vs %v",
			r1.WorstSlack(), r2.WorstSlack())
	}
}

// TestWorkloadAnalysisDeterministic: two independent full runs over the
// ALU workload agree on every element slack.
func TestWorkloadAnalysisDeterministic(t *testing.T) {
	runOnce := func() (*core.Analyzer, *core.Report) {
		d, err := workload.ALU()
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Load(celllib.Default(), d, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.IdentifySlowPaths()
		if err != nil {
			t.Fatal(err)
		}
		return a, rep
	}
	a1, r1 := runOnce()
	a2, r2 := runOnce()
	if len(r1.Result.InSlack) != len(r2.Result.InSlack) {
		t.Fatal("element counts differ")
	}
	for i := range r1.Result.InSlack {
		if r1.Result.InSlack[i] != r2.Result.InSlack[i] || r1.Result.OutSlack[i] != r2.Result.OutSlack[i] {
			t.Fatalf("element %s slacks differ across runs", a1.CD.Elems[i].Name())
		}
	}
	_ = a2
}

// TestMinPeriodThenVerify: the min-period search result is consistent with
// a direct re-analysis at the found period.
func TestMinPeriodThenVerify(t *testing.T) {
	lib := celllib.Default()
	d := workload.SM1F()
	base := d.Clocks[0].Period
	p, err := core.MinFeasiblePeriod(lib, d, core.DefaultOptions(), 1*clock.Ns, base, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > base {
		t.Fatalf("min period %v out of range", p)
	}
	ok, err := core.FeasibleAt(lib, d, core.DefaultOptions(), int64(p), int64(base))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("found period not feasible")
	}
}
