// Package hummingbird is a from-scratch Go reproduction of "Timing Analysis
// in a Logic Synthesis Environment" (Weiner & Sangiovanni-Vincentelli, DAC
// 1989) — the Hummingbird system-level static timing analyzer for networks
// of combinational logic and synchronising elements under arbitrary
// multi-phase, multi-frequency clocking, with correct modelling of
// level-sensitive (transparent) latches.
//
// The library lives under internal/ (one package per subsystem; see
// DESIGN.md for the inventory), the executables under cmd/, runnable usage
// examples under examples/, and the benchmark harness that regenerates
// every table and figure of the paper in bench_test.go (run with
// go test -bench=. -benchmem) and cmd/benchtables.
package hummingbird
