// Package sim is the dynamic-validation harness: an event-driven,
// three-valued gate-level simulator over the same elaborated network the
// static analyzer uses. It operationalises the paper's notion of intended
// behaviour — clocks toggle, gates propagate with their worst-case
// library delays, latches are transparent while their control pulse is
// active — and records every capture event, so a design the static
// analysis passes can be checked to never capture unsettled (or X) data,
// and a design it rejects can be shown violating physically.
//
// The simulator is deliberately worst-case: every gate output changes
// exactly its maximum rise/fall delay after an input event (transport
// delays, glitches preserved), making the last transition before a capture
// comparable with the static ready times.
package sim

import (
	"container/heap"
	"fmt"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/delaycalc"
	"hummingbird/internal/logic"
	"hummingbird/internal/netlist"
)

// Transition is one recorded net value change.
type Transition struct {
	At clock.Time
	V  logic.Value
}

// Capture is one synchronising-element capture event: the instant the
// element became opaque and the data value it latched.
type Capture struct {
	Inst string
	At   clock.Time
	DNet int
	V    logic.Value
}

// Trace is the simulation record.
type Trace struct {
	// End is the simulated horizon.
	End clock.Time
	// Transitions lists every value change per net, in time order.
	Transitions map[int][]Transition
	// Captures lists every capture event, in time order.
	Captures []Capture
}

// LastChangeBefore returns the time and value of the last transition of
// net at or before t, or ok=false if the net never changed.
func (tr *Trace) LastChangeBefore(net int, t clock.Time) (clock.Time, logic.Value, bool) {
	ts := tr.Transitions[net]
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid].At <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, logic.X, false
	}
	return ts[lo-1].At, ts[lo-1].V, true
}

// ValueAt returns the net's value at time t (X before its first event).
func (tr *Trace) ValueAt(net int, t clock.Time) logic.Value {
	_, v, ok := tr.LastChangeBefore(net, t)
	if !ok {
		return logic.X
	}
	return v
}

// event is one scheduled net update.
type event struct {
	at  clock.Time
	seq int
	net int
	v   logic.Value
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// gate is one combinational instance prepared for simulation.
type gate struct {
	name      string
	expr      *logic.Expr
	inPins    []string
	inNets    []int
	outNet    int
	riseDelay clock.Time
	fallDelay clock.Time
	minRise   clock.Time
	minFall   clock.Time
	lastOut   logic.Value
	// env is the reusable evaluation scratch map (avoids a per-event
	// allocation in the event loop).
	env map[string]logic.Value
}

// latchSim is one synchronising instance prepared for simulation.
type latchSim struct {
	name      string
	kind      celllib.Kind
	dNet      int
	ctrlNet   int
	qNet      int
	activeLow bool
	ddz, dcz  clock.Time
	active    bool
}

// Simulator drives one design.
type Simulator struct {
	nw        *cluster.Network
	gates     []gate
	byNet     map[int][]int // net -> gate indices
	lats      []latchSim
	latsByNet map[int][]int // net -> latch indices (D or ctrl)
	vals      []logic.Value
	queue     eventHeap
	seq       int
	trace     *Trace
	// minDelays switches gate propagation to the library's best-case
	// delays — the fast corner used by the race detector.
	minDelays bool
}

// UseMinDelays selects the best-case (min) gate delays for subsequent
// runs. Comparing the capture sequences of a min-delay run against a
// max-delay run exposes races: a design whose captured values depend on
// where delays fall inside their ranges is not delay-safe (clock-skew
// hold hazards — the failure class the paper's algorithms explicitly do
// not detect).
func (s *Simulator) UseMinDelays(min bool) { s.minDelays = min }

// New prepares a simulator from an elaborated network. Every combinational
// cell must carry a parsable function (hierarchical super-cells do not —
// flatten the design before simulating).
func New(nw *cluster.Network) (*Simulator, error) {
	s := &Simulator{
		nw:        nw,
		byNet:     map[int][]int{},
		latsByNet: map[int][]int{},
		vals:      make([]logic.Value, len(nw.Nets)),
	}
	for i := range nw.Design.Instances {
		inst := &nw.Design.Instances[i]
		cell := nw.Lib.Cell(inst.Ref)
		if cell == nil {
			return nil, fmt.Errorf("sim: unresolved instance %s", inst.Name)
		}
		if cell.IsSync() {
			ls := latchSim{
				name: inst.Name, kind: cell.Kind,
				activeLow: cell.Sync.ActiveLow,
				ddz:       cell.Sync.Ddz, dcz: cell.Sync.Dcz,
				dNet: -1, ctrlNet: -1, qNet: -1,
			}
			if n, ok := inst.Conns[cell.DataPins()[0]]; ok {
				ls.dNet = nw.NetIdx[n]
			}
			if n, ok := inst.Conns[cell.ControlPin()]; ok {
				ls.ctrlNet = nw.NetIdx[n]
			}
			if n, ok := inst.Conns[cell.Outputs()[0]]; ok {
				ls.qNet = nw.NetIdx[n]
			}
			li := len(s.lats)
			s.lats = append(s.lats, ls)
			if ls.dNet >= 0 {
				s.latsByNet[ls.dNet] = append(s.latsByNet[ls.dNet], li)
			}
			if ls.ctrlNet >= 0 {
				s.latsByNet[ls.ctrlNet] = append(s.latsByNet[ls.ctrlNet], li)
			}
			continue
		}
		expr, err := logic.Parse(cell.Function)
		if err != nil {
			return nil, fmt.Errorf("sim: instance %s (%s): %v", inst.Name, inst.Ref, err)
		}
		outNet, ok := inst.Conns[expr.Out]
		if !ok {
			continue // dangling output: nothing to drive
		}
		g := gate{name: inst.Name, expr: expr, outNet: nw.NetIdx[outNet], lastOut: logic.X,
			env: make(map[string]logic.Value, len(expr.Inputs()))}
		for _, pin := range expr.Inputs() {
			net, ok := inst.Conns[pin]
			if !ok {
				return nil, fmt.Errorf("sim: instance %s: function input %q unconnected", inst.Name, pin)
			}
			g.inPins = append(g.inPins, pin)
			g.inNets = append(g.inNets, nw.NetIdx[net])
		}
		// Worst-case delays at the instance's actual load.
		for ai := range cell.Arcs {
			arc := &cell.Arcs[ai]
			if arc.To != expr.Out {
				continue
			}
			d := nw.Calc.ArcDelays(inst, arc)
			if d.MaxRise > g.riseDelay {
				g.riseDelay = d.MaxRise
			}
			if d.MaxFall > g.fallDelay {
				g.fallDelay = d.MaxFall
			}
		}
		gi := len(s.gates)
		s.gates = append(s.gates, g)
		for _, n := range g.inNets {
			s.byNet[n] = append(s.byNet[n], gi)
		}
	}
	return s, nil
}

// Stimulus provides primary-input values: it is called once per (cycle,
// port) with the overall-period cycle index and must return 0/1/X.
type Stimulus func(cycle int, port string) logic.Value

// Run simulates the given number of overall clock periods and returns the
// trace. Initial net values are X; drive enough warm-up cycles for the
// pipeline to fill before asserting on captures.
func (s *Simulator) Run(cycles int, stim Stimulus) *Trace {
	T := s.nw.Clocks.Overall()
	end := clock.Time(cycles) * T
	s.trace = &Trace{End: end, Transitions: map[int][]Transition{}}
	for i := range s.vals {
		s.vals[i] = logic.X
	}
	s.queue = s.queue[:0]
	s.seq = 0

	// Clock generator events.
	for _, c := range s.nw.Design.Clocks {
		net, ok := s.nw.NetIdx[c.Name]
		if !ok {
			continue
		}
		for t := clock.Time(0); t < end; t += c.Period {
			s.post(t+c.RiseAt, net, logic.One)
			s.post(t+c.FallAt, net, logic.Zero)
		}
	}
	// Primary-input stimulus at the ports' assertion times.
	for _, p := range s.nw.Design.Ports {
		if p.Dir != netlist.Input || p.RefClock == "" {
			continue
		}
		sig := s.nw.Clocks.Index(p.RefClock)
		if sig < 0 {
			continue
		}
		c := s.nw.Clocks.Signal(sig)
		net := s.nw.NetIdx[p.Name]
		base := c.RiseAt
		if p.RefEdge == clock.Fall {
			base = c.FallAt
		}
		cyc := 0
		for t := base + p.Offset; t < end; t += c.Period {
			if t >= 0 {
				s.post(t, net, stim(cyc, p.Name))
			}
			cyc++
		}
	}

	// Event loop.
	heap.Init(&s.queue)
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(event)
		if e.at > end {
			break
		}
		if s.vals[e.net] == e.v {
			continue
		}
		s.vals[e.net] = e.v
		s.trace.Transitions[e.net] = append(s.trace.Transitions[e.net], Transition{At: e.at, V: e.v})
		// Combinational fanout.
		for _, gi := range s.byNet[e.net] {
			g := &s.gates[gi]
			for k, pin := range g.inPins {
				g.env[pin] = s.vals[g.inNets[k]]
			}
			out := g.expr.Eval(g.env)
			if out == g.lastOut {
				continue
			}
			g.lastOut = out
			rise, fall := g.riseDelay, g.fallDelay
			if s.minDelays {
				rise, fall = g.minRise, g.minFall
			}
			d := rise
			if out == logic.Zero {
				d = fall
			} else if out == logic.X && fall > d {
				d = fall
			}
			s.post(e.at+d, g.outNet, out)
		}
		// Synchronising fanout.
		for _, li := range s.latsByNet[e.net] {
			l := &s.lats[li]
			if e.net == l.ctrlNet {
				s.controlEdge(l, e.at)
			}
			if e.net == l.dNet && l.active && l.kind != celllib.EdgeTriggered {
				if l.qNet >= 0 {
					s.post(e.at+l.ddz, l.qNet, s.vals[l.dNet])
				}
			}
		}
	}
	return s.trace
}

// controlEdge updates a latch's transparency and records captures.
func (s *Simulator) controlEdge(l *latchSim, at clock.Time) {
	v := s.vals[l.ctrlNet]
	var active bool
	switch v {
	case logic.One:
		active = !l.activeLow
	case logic.Zero:
		active = l.activeLow
	default:
		// Unknown control: output unknown; stay in the previous
		// transparency state.
		if l.qNet >= 0 {
			s.post(at+l.dcz, l.qNet, logic.X)
		}
		return
	}
	if active == l.active {
		return
	}
	l.active = active
	d := logic.X
	if l.dNet >= 0 {
		d = s.vals[l.dNet]
	}
	if active {
		// Leading edge: transparent kinds start following D; an
		// edge-triggered element does nothing until the trailing edge.
		if l.kind != celllib.EdgeTriggered && l.qNet >= 0 {
			s.post(at+l.dcz, l.qNet, d)
		}
		return
	}
	// Trailing edge: every kind captures.
	s.trace.Captures = append(s.trace.Captures, Capture{Inst: l.name, At: at, DNet: l.dNet, V: d})
	if l.kind == celllib.EdgeTriggered && l.qNet >= 0 {
		s.post(at+l.dcz, l.qNet, d)
	}
}

func (s *Simulator) post(at clock.Time, net int, v logic.Value) {
	s.seq++
	heap.Push(&s.queue, event{at: at, seq: s.seq, net: net, v: v})
}

// SetupViolation is one capture whose data was still unsettled.
type SetupViolation struct {
	Inst string
	At   clock.Time
	// LastChange is the offending data transition (or the capture time
	// itself when an X was latched).
	LastChange clock.Time
	CapturedX  bool
}

// CheckSetup scans the captures after the warm-up horizon: the data net
// must not have changed within the element's set-up window before the
// capture, and the captured value must be determined (not X).
func CheckSetup(nw *cluster.Network, tr *Trace, warmup clock.Time) []SetupViolation {
	var out []SetupViolation
	setup := map[string]clock.Time{}
	for i := range nw.Design.Instances {
		inst := &nw.Design.Instances[i]
		if cell := nw.Lib.Cell(inst.Ref); cell != nil && cell.IsSync() {
			setup[inst.Name] = cell.Sync.Dsetup
		}
	}
	for _, c := range tr.Captures {
		if c.At < warmup {
			continue
		}
		if c.V == logic.X {
			out = append(out, SetupViolation{Inst: c.Inst, At: c.At, LastChange: c.At, CapturedX: true})
			continue
		}
		if c.DNet < 0 {
			continue
		}
		// A transition exactly at the capture instant belongs to the next
		// cycle (the netlist convention asserts inputs *at* edges), so the
		// window is strictly before the capture.
		last, _, ok := tr.LastChangeBefore(c.DNet, c.At-1)
		if ok && c.At-last < setup[c.Inst] {
			out = append(out, SetupViolation{Inst: c.Inst, At: c.At, LastChange: last})
		}
	}
	return out
}

// FromDesign builds a simulator straight from a design, flattening any
// hierarchy first (super-cells carry no simulatable functions) and
// re-elaborating against the base library. adjustments (may be nil) are
// per-instance additive delay adjustments, matching core.Options so the
// simulation sees the same what-if state as the static analysis.
func FromDesign(lib *celllib.Library, design *netlist.Design, opts delaycalc.Options, adjustments map[string]clock.Time) (*Simulator, *cluster.Network, error) {
	d := design
	if len(design.Modules) > 0 {
		d = design.Flatten(lib)
	}
	if err := d.Validate(lib); err != nil {
		return nil, nil, err
	}
	cs, err := d.ClockSet()
	if err != nil {
		return nil, nil, err
	}
	calc, err := delaycalc.New(lib, d, opts)
	if err != nil {
		return nil, nil, err
	}
	for inst, delta := range adjustments {
		calc.Adjust(inst, delta)
	}
	nw, err := cluster.Build(lib, d, cs, calc)
	if err != nil {
		return nil, nil, err
	}
	s, err := New(nw)
	if err != nil {
		return nil, nil, err
	}
	return s, nw, nil
}

// Race is one capture whose value differs between the slow (max-delay) and
// fast (min-delay) corners.
type Race struct {
	Inst string
	// Index is the capture's ordinal for this element.
	Index    int
	At       clock.Time
	MaxValue logic.Value
	MinValue logic.Value
}

// CompareCaptures aligns two traces' capture sequences per element (they
// capture at identical, delay-independent control instants) and returns
// every post-warm-up disagreement — evidence the design's behaviour
// depends on where delays fall within their ranges.
func CompareCaptures(maxRun, minRun *Trace, warmup clock.Time) []Race {
	type key struct{ inst string }
	group := func(tr *Trace) map[string][]Capture {
		m := map[string][]Capture{}
		for _, c := range tr.Captures {
			m[c.Inst] = append(m[c.Inst], c)
		}
		return m
	}
	a, b := group(maxRun), group(minRun)
	var out []Race
	for inst, as := range a {
		bs := b[inst]
		n := len(as)
		if len(bs) < n {
			n = len(bs)
		}
		for i := 0; i < n; i++ {
			if as[i].At < warmup {
				continue
			}
			if as[i].V != bs[i].V {
				out = append(out, Race{Inst: inst, Index: i, At: as[i].At,
					MaxValue: as[i].V, MinValue: bs[i].V})
			}
		}
	}
	return out
}
