package sim

import (
	"math/rand"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/core"
	"hummingbird/internal/delaycalc"
	"hummingbird/internal/logic"
	"hummingbird/internal/netlist"
	"hummingbird/internal/workload"
)

var lib = celllib.Default()

func build(t *testing.T, text string) *cluster.Network {
	t.Helper()
	d, err := netlist.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(lib); err != nil {
		t.Fatal(err)
	}
	cs, err := d.ClockSet()
	if err != nil {
		t.Fatal(err)
	}
	calc, err := delaycalc.New(lib, d, delaycalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nw, err := cluster.Build(lib, d, cs, calc)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

const pipeText = `
design pipe
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 BUF_X1 A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi1 Q=q1
inst g2 INV_X1 A=q1 Y=n2
inst l2 DFF_X1 D=n2 CK=phi2 Q=q2
inst g3 BUF_X1 A=q2 Y=OUT
end
`

func TestSimulatorCombPropagation(t *testing.T) {
	nw := build(t, pipeText)
	s, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Run(6, func(cycle int, port string) logic.Value {
		return logic.FromBool(cycle%2 == 0)
	})
	// IN toggles at 9ns, 19ns, ... and n1 follows one buffer delay later.
	in := nw.NetIdx["IN"]
	n1 := nw.NetIdx["n1"]
	if len(tr.Transitions[in]) == 0 || len(tr.Transitions[n1]) == 0 {
		t.Fatalf("no activity: IN %d n1 %d", len(tr.Transitions[in]), len(tr.Transitions[n1]))
	}
	// n1's first determined transition lags IN's by the buffer delay.
	tIn := tr.Transitions[in][0].At
	var tN1 clock.Time = -1
	for _, x := range tr.Transitions[n1] {
		if x.At > tIn {
			tN1 = x.At
			break
		}
	}
	if tN1 <= tIn {
		t.Fatalf("n1 did not follow IN (tIn=%v)", tIn)
	}
	// Clock nets toggle every period.
	phi1 := nw.NetIdx["phi1"]
	if len(tr.Transitions[phi1]) != 12 {
		t.Fatalf("phi1 transitions = %d, want 12", len(tr.Transitions[phi1]))
	}
}

func TestSimulatorLatchSemantics(t *testing.T) {
	nw := build(t, pipeText)
	s, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Run(6, func(cycle int, port string) logic.Value {
		return logic.FromBool(cycle%2 == 0)
	})
	// Captures occur on every trailing edge of both elements.
	var l1Caps, l2Caps int
	for _, c := range tr.Captures {
		switch c.Inst {
		case "l1":
			l1Caps++
			if c.At%(10*clock.Ns) != 4*clock.Ns {
				t.Fatalf("l1 capture at %v, want trailing edges of phi1", c.At)
			}
		case "l2":
			l2Caps++
			if c.At%(10*clock.Ns) != 9*clock.Ns {
				t.Fatalf("l2 capture at %v", c.At)
			}
		}
	}
	if l1Caps != 6 || l2Caps != 6 {
		t.Fatalf("captures l1=%d l2=%d, want 6 each", l1Caps, l2Caps)
	}
	// After warm-up the captured values alternate with the stimulus:
	// IN at cycle k (9ns+10k) is buffered into n1, latched by l1 during
	// the next phi1 pulse, inverted, captured by l2 at 9ns+10(k+1).
	warm := tr.Captures[:0]
	for _, c := range tr.Captures {
		if c.Inst == "l2" && c.At > 20*clock.Ns {
			warm = append(warm, c)
		}
	}
	for _, c := range warm {
		cycle := int(c.At / (10 * clock.Ns))
		wantIn := logic.FromBool((cycle-1)%2 == 0)
		if c.V != logic.Not(wantIn) {
			t.Fatalf("l2 captured %v at %v (cycle %d), want %v", c.V, c.At, cycle, logic.Not(wantIn))
		}
	}
}

// TestSimulatorTransparency: while the latch is open, Q follows D; while
// closed, Q holds.
func TestSimulatorTransparency(t *testing.T) {
	nw := build(t, pipeText)
	s, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Run(8, func(cycle int, port string) logic.Value {
		return logic.FromBool(cycle%2 == 0)
	})
	q1 := nw.NetIdx["q1"]
	// Between phi1 fall (4ns) and the next rise (10ns) q1 must not change.
	for _, x := range tr.Transitions[q1] {
		phase := x.At % (10 * clock.Ns)
		// Allow the Ddz/Dcz lag after the window: transitions must
		// originate from the transparent window [0, 4ns) plus latch delay.
		limit := 4*clock.Ns + lib.Cell("DLATCH_X1").Sync.Ddz
		if phase >= limit {
			t.Fatalf("q1 changed at %v (phase %v) while latch closed", x.At, phase)
		}
	}
}

// TestStaticPassImpliesNoSetupViolations: the central cross-validation —
// when Algorithm 1 passes the design, worst-case simulation never captures
// changing or unknown data.
func TestStaticPassImpliesNoSetupViolations(t *testing.T) {
	texts := []string{pipeText, `
design wide
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input A clock phi2 edge fall offset 0
input B clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 NAND2_X1 A=A B=B Y=n1
inst g2 XOR2_X1 A=n1 B=A Y=n2
inst l1 DLATCH_X1 D=n2 G=phi1 Q=q1
inst g3 AOI21_X1 A=q1 B=n1x C=q1 Y=n3
inst gx INV_X1 A=q1 Y=n1x
inst l2 DFF_X1 D=n3 CK=phi2 Q=q2
inst g4 BUF_X1 A=q2 Y=OUT
end
`}
	for ti, text := range texts {
		nw := build(t, text)
		a := core.LoadFlat(nw, core.Options{})
		rep, err := a.IdentifySlowPaths()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Fatalf("fixture %d: static analysis fails (worst %v)", ti, rep.WorstSlack())
		}
		// Rebuild (Algorithm 1 moved offsets; sim doesn't care, but keep
		// the network pristine for clarity).
		nw2 := build(t, text)
		s, err := New(nw2)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(ti) + 9))
		tr := s.Run(30, func(cycle int, port string) logic.Value {
			return logic.FromBool(r.Intn(2) == 0)
		})
		viol := CheckSetup(nw2, tr, 30*clock.Ns)
		if len(viol) != 0 {
			t.Fatalf("fixture %d: static pass but dynamic setup violations: %+v", ti, viol[0])
		}
	}
}

// TestStaticFailShowsDynamicViolation: a design the analyzer rejects
// violates physically under toggling stimulus.
func TestStaticFailShowsDynamicViolation(t *testing.T) {
	// Three loaded inverters put the arrival ~875ps after the launch edge
	// — inside the 150ps set-up window before the next 1ns capture. (With
	// one more inverter the data would land just *after* the capture: the
	// element would latch stale data — equally broken, but a failure mode
	// the set-up check alone cannot see; the static analysis flags both.)
	text := `
design slow
clock phi period 1ns rise 0 fall 400ps
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=q1
inst g1 INV_X1 A=q1 Y=n1
inst g2 INV_X1 A=n1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst f2 DFF_X1 D=n3 CK=phi Q=q2
inst g5 BUF_X1 A=q2 Y=OUT
end
`
	nw := build(t, text)
	a := core.LoadFlat(nw, core.Options{})
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("fixture should fail statically")
	}
	nw2 := build(t, text)
	s, err := New(nw2)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Run(40, func(cycle int, port string) logic.Value {
		return logic.FromBool(cycle%2 == 0) // toggle every cycle
	})
	viol := CheckSetup(nw2, tr, 5*clock.Ns)
	if len(viol) == 0 {
		t.Fatal("static fail but no dynamic violation observed")
	}
	// The violating element is the second flip-flop.
	found := false
	for _, v := range viol {
		if v.Inst == "f2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations lack f2: %+v", viol)
	}
}

func TestSimulatorRejectsUnparsableFunctions(t *testing.T) {
	// Hierarchical super-cells carry informational function strings; the
	// simulator must refuse rather than mis-simulate.
	d, err := netlist.ParseString(`
design h
clock phi period 10ns rise 0 fall 4ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
module M
  input A
  output Y
  inst i1 INV_X1 A=A Y=Y
endmodule
inst u1 M A=IN Y=n1
inst g2 BUF_X1 A=n1 Y=OUT
end
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(a.CD.Network); err == nil {
		t.Fatal("super-cell function accepted")
	}
}

func TestTraceQueries(t *testing.T) {
	tr := &Trace{Transitions: map[int][]Transition{
		3: {{At: 10, V: logic.One}, {At: 20, V: logic.Zero}, {At: 30, V: logic.One}},
	}}
	if v := tr.ValueAt(3, 5); v != logic.X {
		t.Fatalf("ValueAt(5) = %v", v)
	}
	if v := tr.ValueAt(3, 25); v != logic.Zero {
		t.Fatalf("ValueAt(25) = %v", v)
	}
	if v := tr.ValueAt(3, 30); v != logic.One {
		t.Fatalf("ValueAt(30) = %v", v)
	}
	at, v, ok := tr.LastChangeBefore(3, 1000)
	if !ok || at != 30 || v != logic.One {
		t.Fatalf("LastChangeBefore = %v %v %v", at, v, ok)
	}
	if _, _, ok := tr.LastChangeBefore(99, 50); ok {
		t.Fatal("unknown net reported a change")
	}
}

// TestCrossValidationRandomPipelines: for a family of randomly generated
// latch/FF pipelines that pass the static analysis, worst-case simulation
// under random stimulus never produces a setup violation or an X capture.
func TestCrossValidationRandomPipelines(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := workload.PipeConfig{
			Name:   "xv",
			Stages: 2 + int(seed%3), Width: 3 + int(seed%4), Depth: 2,
			Latch: "DLATCH_X1", Latch2: "DFF_X1",
			ClockBufs: int(seed % 2), Seed: seed,
			GatedBank: seed%2 == 0,
		}
		d, err := workload.Pipeline(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := core.Load(lib, d, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := a.IdentifySlowPaths()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Fatalf("seed %d: generated pipeline fails statically (worst %v)", seed, rep.WorstSlack())
		}
		s, err := New(a.CD.Network)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := rand.New(rand.NewSource(seed * 131))
		tr := s.Run(25, func(cycle int, port string) logic.Value {
			return logic.FromBool(r.Intn(2) == 0)
		})
		warm := clock.Time(8) * a.CD.Clocks.Overall()
		if viol := CheckSetup(a.CD.Network, tr, warm); len(viol) != 0 {
			t.Fatalf("seed %d: static pass but dynamic violation %+v", seed, viol[0])
		}
		if len(tr.Captures) == 0 {
			t.Fatalf("seed %d: no captures at all", seed)
		}
	}
}

// TestSimulatorTristateBus: two clocked tristate drivers time-share a bus;
// each drive window carries its own source's value.
func TestSimulatorTristateBus(t *testing.T) {
	nw := build(t, `
design bus
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input A clock phi2 edge fall offset 0
input B clock phi1 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst t1 TBUF_X1 A=A EN=phi1 Y=bus
inst t2 TBUF_X1 A=B EN=phi2 Y=bus
inst g1 BUF_X1 A=bus Y=OUT
end
`)
	s, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	// A always 1, B always 0: the bus alternates 1 (phi1 window) and 0
	// (phi2 window) every cycle after warm-up.
	tr := s.Run(6, func(cycle int, port string) logic.Value {
		return logic.FromBool(port == "A")
	})
	bus := nw.NetIdx["bus"]
	var after []Transition
	for _, x := range tr.Transitions[bus] {
		if x.At >= 20*clock.Ns {
			after = append(after, x)
		}
	}
	if len(after) < 4 {
		t.Fatalf("bus transitions after warm-up = %d", len(after))
	}
	for i := 1; i < len(after); i++ {
		if after[i].V == after[i-1].V {
			t.Fatalf("bus did not alternate: %+v", after)
		}
		if after[i].V == logic.X {
			t.Fatalf("X on bus after warm-up: %+v", after[i])
		}
	}
}

// TestSimulatorActiveLowLatch: DLATCHN is transparent while its control is
// low; captures happen on the control's rising edge.
func TestSimulatorActiveLowLatch(t *testing.T) {
	nw := build(t, `
design al
clock phi period 10ns rise 0 fall 4ns
input IN clock phi edge rise offset 1ns
output OUT clock phi edge fall offset 0
inst l1 DLATCHN_X1 D=IN G=phi Q=q1
inst g1 BUF_X1 A=q1 Y=OUT
end
`)
	s, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Run(5, func(cycle int, port string) logic.Value {
		return logic.FromBool(cycle%2 == 0)
	})
	for _, c := range tr.Captures {
		if c.Inst != "l1" {
			continue
		}
		// Captures at the control RISING edges (phase 0 mod 10ns).
		if c.At%(10*clock.Ns) != 0 {
			t.Fatalf("active-low latch captured at %v", c.At)
		}
	}
}

// TestSimulatorDeterministic: identical runs produce identical traces.
func TestSimulatorDeterministic(t *testing.T) {
	mk := func() *Trace {
		nw := build(t, pipeText)
		s, err := New(nw)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(7))
		return s.Run(10, func(cycle int, port string) logic.Value {
			return logic.FromBool(r.Intn(2) == 0)
		})
	}
	a, b := mk(), mk()
	if len(a.Captures) != len(b.Captures) {
		t.Fatal("capture counts differ")
	}
	for i := range a.Captures {
		if a.Captures[i] != b.Captures[i] {
			t.Fatalf("capture %d differs: %+v vs %+v", i, a.Captures[i], b.Captures[i])
		}
	}
	for net, ts := range a.Transitions {
		if len(b.Transitions[net]) != len(ts) {
			t.Fatalf("net %d transition counts differ", net)
		}
		for i := range ts {
			if ts[i] != b.Transitions[net][i] {
				t.Fatalf("net %d transition %d differs", net, i)
			}
		}
	}
}

// TestFromDesignFlattensHierarchy: hierarchical designs simulate after
// automatic flattening.
func TestFromDesignFlattensHierarchy(t *testing.T) {
	d, err := netlist.ParseString(`
design h
clock phi period 10ns rise 0 fall 4ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
module M
  input A
  output Y
  inst i1 INV_X1 A=A Y=t
  inst i2 INV_X1 A=t Y=Y
endmodule
inst u1 M A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi Q=q1
inst g2 BUF_X1 A=q1 Y=OUT
end
`)
	if err != nil {
		t.Fatal(err)
	}
	s, nw, err := FromDesign(lib, d, delaycalc.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Run(6, func(cycle int, port string) logic.Value {
		return logic.FromBool(cycle%2 == 0)
	})
	if len(tr.Captures) == 0 {
		t.Fatal("no captures")
	}
	if viol := CheckSetup(nw, tr, 20*clock.Ns); len(viol) != 0 {
		t.Fatalf("violations: %+v", viol)
	}
}

// TestStaticReadyMatchesSimArrival: on a flip-flop chain whose worst path
// toggles every cycle, the static ready time at the capture net equals the
// simulated arrival exactly — both sides consume the same delay model, so
// any discrepancy is a bug in one of them.
func TestStaticReadyMatchesSimArrival(t *testing.T) {
	text := `
design eq
clock phi period 20ns rise 0 fall 8ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=q1
inst g1 INV_X1 A=q1 Y=n1
inst g2 INV_X1 A=n1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst f2 DFF_X1 D=n3 CK=phi Q=q2
inst g4 BUF_X1 A=q2 Y=OUT
end
`
	nw := build(t, text)
	a := core.LoadFlat(nw, core.Options{})
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("fixture slow: %v", rep.WorstSlack())
	}
	// Static: ready at n3 in f2's cluster pass, relative to the launch
	// (f1's capture edge at 8ns). The window starts at the break β; the
	// launch asserts at AssertPos(8ns) + Dcz.
	var staticArrival clock.Time = -1
	n3 := nw.NetIdx["n3"]
	f1 := nw.ElemsOf("f1")[0]
	for _, pd := range rep.Result.Passes {
		for li, net := range pd.Nets {
			if net != n3 {
				continue
			}
			r := pd.ReadyR[li]
			if pd.ReadyF[li] > r {
				r = pd.ReadyF[li]
			}
			if r == -clock.Inf {
				continue
			}
			// Convert window position to delay-after-launch.
			e := nw.Elems[f1]
			launch := e.OutputAssert() - e.IdealAssert // = Dcz offset
			// Launch position in this window:
			lp := (e.IdealAssert - pd.Beta) % nw.Clocks.Overall()
			if lp < 0 {
				lp += nw.Clocks.Overall()
			}
			lp += launch
			staticArrival = r - lp // pure combinational path delay
		}
	}
	if staticArrival < 0 {
		t.Fatal("static arrival not found")
	}

	// Dynamic: last transition of n3 before a post-warm-up capture,
	// relative to the launch edge (capture time - period + Dcz).
	s, err := New(nw)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Run(10, func(cycle int, port string) logic.Value {
		return logic.FromBool(cycle%2 == 0) // toggle: sensitizes the chain
	})
	dcz := lib.Cell("DFF_X1").Sync.Dcz
	var simArrival clock.Time = -1
	for _, c := range tr.Captures {
		if c.Inst != "f2" || c.At < 60*clock.Ns {
			continue
		}
		last, _, ok := tr.LastChangeBefore(c.DNet, c.At-1)
		if !ok {
			continue
		}
		launchAt := c.At - 20*clock.Ns + dcz // previous capture edge + Dcz
		if d := last - launchAt; d > simArrival {
			simArrival = d
		}
	}
	if simArrival < 0 {
		t.Fatal("sim arrival not found")
	}
	if simArrival != staticArrival {
		t.Fatalf("static arrival %v != simulated arrival %v", staticArrival, simArrival)
	}
}

// TestRaceDetectorFindsSkewHold: a clock-skew hold hazard — short logic
// between two flip-flops whose capture clock is delayed by a buffer tree.
// The static analyzer, by the paper's own admission ("our algorithms do
// not detect these problems"), passes the design; the two-corner race
// detector catches it: with minimum delays the racing data beats the
// delayed capture edge and the element latches the *new* value.
func TestRaceDetectorFindsSkewHold(t *testing.T) {
	text := `
design skewhold
clock phi period 20ns rise 0 fall 8ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=q1
inst g1 INV_X1 A=q1 Y=n1
inst cb1 BUF_X4 A=phi Y=ck1
inst cb2 BUF_X4 A=ck1 Y=ck2
inst cb3 BUF_X4 A=ck2 Y=ck3
inst cb4 BUF_X4 A=ck3 Y=ck4
inst cb5 BUF_X4 A=ck4 Y=ck5
inst f2 DFF_X1 D=n1 CK=ck5 Q=q2
inst g2 BUF_X1 A=q2 Y=OUT
end
`
	nw := build(t, text)
	a := core.LoadFlat(nw, core.Options{})
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("max-delay (setup) analysis should pass: %v", rep.WorstSlack())
	}

	run := func(min bool) *Trace {
		nw2 := build(t, text)
		s, err := New(nw2)
		if err != nil {
			t.Fatal(err)
		}
		s.UseMinDelays(min)
		return s.Run(12, func(cycle int, port string) logic.Value {
			return logic.FromBool(cycle%2 == 0)
		})
	}
	maxTr, minTr := run(false), run(true)
	races := CompareCaptures(maxTr, minTr, 60*clock.Ns)
	if len(races) == 0 {
		t.Fatal("skew hold race not detected")
	}
	found := false
	for _, r := range races {
		if r.Inst == "f2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("races lack f2: %+v", races)
	}
}

// TestRaceDetectorCleanOnSafeDesign: the two corners agree on a design
// without skew.
func TestRaceDetectorCleanOnSafeDesign(t *testing.T) {
	run := func(min bool) (*Trace, *cluster.Network) {
		nw := build(t, pipeText)
		s, err := New(nw)
		if err != nil {
			t.Fatal(err)
		}
		s.UseMinDelays(min)
		r := rand.New(rand.NewSource(5))
		return s.Run(15, func(cycle int, port string) logic.Value {
			return logic.FromBool(r.Intn(2) == 0)
		}), nw
	}
	maxTr, _ := run(false)
	minTr, _ := run(true)
	if races := CompareCaptures(maxTr, minTr, 30*clock.Ns); len(races) != 0 {
		t.Fatalf("safe design raced: %+v", races)
	}
}
