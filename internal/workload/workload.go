// Package workload generates the benchmark designs of the paper's Table 1
// and Figure 1 as deterministic synthetic equivalents (the original OCT
// design files are not available — see DESIGN.md §2 for the substitution
// argument):
//
//	DES  — "a complete data encryption chip, made up from 3681 standard
//	       cells": a 16-round, 32-bit-wide two-phase latch pipeline with
//	       XOR/NAND round logic, padded to exactly 3681 cells.
//	ALU  — "a portion of a CPU chip made up from 899 standard cells":
//	       a 16-bit, 4-stage pipeline, exactly 899 cells.
//	SM1F — "a 12 bit finite state machine described as a 'flattened'
//	       network of standard cells".
//	SM1H — "a 'hierarchical' description of the same machine in which the
//	       combinational logic is contained in a single module".
//	Figure1 — latches controlled by four clock phases around one shared
//	       gate (the time-multiplexed configuration of Figure 1).
//
// All generators are deterministic: the same call always yields the same
// netlist.
package workload

import (
	"fmt"
	"math/rand"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/netlist"
)

// PipeConfig parameterises the synthetic pipeline generator.
type PipeConfig struct {
	Name string
	// Stages is the number of latch banks; combinational logic sits
	// between consecutive banks (and before the first / after the last).
	Stages int
	// Width is the number of bits per bank.
	Width int
	// Depth is the number of gate layers between banks.
	Depth int
	// Latch is the library cell used for the banks (e.g. "DLATCH_X1").
	Latch string
	// TwoPhase alternates banks between phi1 and phi2; otherwise all
	// banks share phi1.
	Latch2 string // optional alternate latch cell for even banks
	// ClockBufs inserts a buffer chain between each clock generator and
	// the latch control pins (a non-zero control path, §4's Oat).
	ClockBufs int
	// Seed drives gate and wiring choices.
	Seed int64
	// TargetCells, when non-zero, pads the design with buffer cells to
	// exactly this leaf-cell count.
	TargetCells int
	// Period is the clock period (default 100ns).
	Period clock.Time
	// FastSecondClock halves phi2's period: every phi2-controlled element
	// is replicated per pulse (§4) and the slow→fast crossings exercise
	// the multi-frequency pass machinery.
	FastSecondClock bool
	// GatedBank gates the phi1 control of bank 2 with an enable latched on
	// phi2 (an enable path, §4): the enable must settle before each gated
	// pulse begins.
	GatedBank bool
}

// gateChoice is one candidate gate shape for the random logic layers.
type gateChoice struct {
	cell string
	nIn  int
}

var gatePool = []gateChoice{
	{"NAND2_X1", 2}, {"NAND2_X2", 2}, {"NOR2_X1", 2}, {"XOR2_X1", 2},
	{"NAND3_X1", 3}, {"AOI21_X1", 3}, {"OAI21_X1", 3}, {"XNOR2_X1", 2},
	{"INV_X1", 1}, {"BUF_X1", 1}, {"AND2_X1", 2}, {"OR2_X1", 2},
}

// Pipeline builds a synthetic multi-stage latch pipeline. It fails when the
// configuration is inconsistent (e.g. the structural cells already exceed
// TargetCells, so no padding can reach the target exactly).
func Pipeline(cfg PipeConfig) (*netlist.Design, error) {
	if cfg.Period == 0 {
		cfg.Period = 100 * clock.Ns
	}
	if cfg.Latch == "" {
		cfg.Latch = "DLATCH_X1"
	}
	if cfg.Latch2 == "" {
		cfg.Latch2 = cfg.Latch
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	lib := celllib.Default()
	d := netlist.New(cfg.Name)
	p := cfg.Period
	d.AddClock(clock.Signal{Name: "phi1", Period: p, RiseAt: 0, FallAt: p * 2 / 5})
	if cfg.FastSecondClock {
		d.AddClock(clock.Signal{Name: "phi2", Period: p / 2, RiseAt: p / 4, FallAt: p/4 + p/5})
	} else {
		d.AddClock(clock.Signal{Name: "phi2", Period: p, RiseAt: p / 2, FallAt: p/2 + p*2/5})
	}

	cells := 0
	inst := func(name, ref string, conns map[string]string) {
		d.AddInstance(netlist.Instance{Name: name, Ref: ref, Conns: conns})
		cells++
	}

	// Clock buffer chains.
	clockNet := map[int]string{0: "phi1", 1: "phi2"}
	for ci := 0; ci < 2; ci++ {
		src := clockNet[ci]
		for b := 0; b < cfg.ClockBufs; b++ {
			dst := fmt.Sprintf("ck%d_%d", ci+1, b)
			inst(fmt.Sprintf("cb%d_%d", ci+1, b), "BUF_X4", map[string]string{"A": src, "Y": dst})
			src = dst
		}
		clockNet[ci] = src
	}

	// Primary inputs, asserted on the opposite phase of the first bank.
	cur := make([]string, cfg.Width)
	for w := 0; w < cfg.Width; w++ {
		name := fmt.Sprintf("IN%d", w)
		d.AddPort(netlist.Port{Name: name, Dir: netlist.Input, RefClock: "phi2", RefEdge: clock.Fall})
		cur[w] = name
	}

	layer := func(stage, l int, src []string) []string {
		out := make([]string, cfg.Width)
		for w := 0; w < cfg.Width; w++ {
			g := gatePool[r.Intn(len(gatePool))]
			conns := map[string]string{}
			ins := []string{"A", "B", "C"}
			// Bit-sliced structure: input A stays on the bit column so
			// every upstream net is consumed (no dangling latch outputs);
			// remaining inputs mix randomly across the word.
			conns[ins[0]] = src[w%len(src)]
			for i := 1; i < g.nIn; i++ {
				conns[ins[i]] = src[r.Intn(len(src))]
			}
			net := fmt.Sprintf("s%dl%dw%d", stage, l, w)
			conns["Y"] = net
			inst(fmt.Sprintf("g_s%dl%dw%d", stage, l, w), g.cell, conns)
			out[w] = net
		}
		return out
	}

	// Optional gated bank: an enable latched on phi2 gates bank 2's phi1.
	gatedCk := ""
	if cfg.GatedBank && cfg.Stages > 2 {
		inst("gate_le", "DLATCH_X1", map[string]string{"D": cur[0], "G": clockNet[1], "Q": "gate_en"})
		inst("gate_and", "AND2_X1", map[string]string{"A": clockNet[0], "B": "gate_en", "Y": "gate_ck"})
		gatedCk = "gate_ck"
	}

	for s := 0; s < cfg.Stages; s++ {
		for l := 0; l < cfg.Depth; l++ {
			cur = layer(s, l, cur)
		}
		// Latch bank.
		bank := make([]string, cfg.Width)
		latch := cfg.Latch
		ck := clockNet[0]
		if s%2 == 1 {
			latch = cfg.Latch2
			ck = clockNet[1]
		}
		if s == 2 && gatedCk != "" {
			ck = gatedCk
		}
		ctrlPin := "G"
		if cell := lib.Cell(latch); cell != nil && cell.Kind == celllib.EdgeTriggered {
			ctrlPin = "CK"
		}
		for w := 0; w < cfg.Width; w++ {
			q := fmt.Sprintf("b%dw%d", s, w)
			inst(fmt.Sprintf("lat_s%dw%d", s, w), latch,
				map[string]string{"D": cur[w], ctrlPin: ck, "Q": q})
			bank[w] = q
		}
		cur = bank
	}
	// Final logic layer and primary outputs.
	cur = layer(cfg.Stages, 0, cur)
	outPhase := "phi1"
	if cfg.Stages%2 == 1 {
		outPhase = "phi2"
	}
	for w := 0; w < cfg.Width; w++ {
		name := fmt.Sprintf("OUT%d", w)
		d.AddPort(netlist.Port{Name: name, Dir: netlist.Output, RefClock: outPhase, RefEdge: clock.Fall, Offset: -1 * clock.Ns})
		inst(fmt.Sprintf("go_w%d", w), "BUF_X2", map[string]string{"A": cur[w], "Y": name})
	}

	// Pad to the exact target cell count with a buffer chain.
	if cfg.TargetCells > 0 {
		if cells > cfg.TargetCells {
			return nil, fmt.Errorf("workload %s: %d cells exceeds target %d", cfg.Name, cells, cfg.TargetCells)
		}
		src := cur[0]
		for i := 0; cells < cfg.TargetCells; i++ {
			dst := fmt.Sprintf("pad%d", i)
			inst(fmt.Sprintf("padb%d", i), "BUF_X1", map[string]string{"A": src, "Y": dst})
			src = dst
		}
	}
	return d, nil
}

// DES builds the Table 1 DES-chip analogue: exactly 3681 standard cells in
// a 16-round two-phase transparent-latch pipeline.
func DES() (*netlist.Design, error) {
	return Pipeline(PipeConfig{
		Name: "des", Stages: 16, Width: 32, Depth: 5,
		Latch: "DLATCH_X1", Latch2: "DLATCH_X1",
		ClockBufs: 2, Seed: 0xDE5, TargetCells: 3681,
	})
}

// ALU builds the Table 1 ALU analogue: exactly 899 cells, 16 bits wide,
// mixing transparent latches and flip-flops.
func ALU() (*netlist.Design, error) {
	return Pipeline(PipeConfig{
		Name: "alu", Stages: 4, Width: 16, Depth: 7,
		Latch: "DLATCH_X1", Latch2: "DFF_X1",
		ClockBufs: 1, Seed: 0xA1, TargetCells: 899,
	})
}

// smCells builds the shared combinational core of the SM1 state machine:
// 12 state bits plus 4 inputs feed layered next-state logic. It returns the
// instance list and the names of the 12 next-state nets and 4 output nets,
// using only module-legal (combinational) cells.
func smCells(prefix string, stateNets, inNets []string, seed int64) (insts []netlist.Instance, next, outs []string) {
	r := rand.New(rand.NewSource(seed))
	src := append(append([]string(nil), stateNets...), inNets...)
	cur := src
	for l := 0; l < 4; l++ {
		width := 20 - 2*l
		var layer []string
		for w := 0; w < width; w++ {
			g := gatePool[r.Intn(len(gatePool))]
			conns := map[string]string{}
			ins := []string{"A", "B", "C"}
			conns[ins[0]] = cur[w%len(cur)]
			for i := 1; i < g.nIn; i++ {
				conns[ins[i]] = cur[r.Intn(len(cur))]
			}
			net := fmt.Sprintf("%sn%dw%d", prefix, l, w)
			conns["Y"] = net
			insts = append(insts, netlist.Instance{
				Name: fmt.Sprintf("%sg%dw%d", prefix, l, w), Ref: g.cell, Conns: conns,
			})
			layer = append(layer, net)
		}
		cur = append(layer, cur[:4]...)
	}
	for b := 0; b < 12; b++ {
		net := fmt.Sprintf("%snext%d", prefix, b)
		insts = append(insts, netlist.Instance{
			Name: fmt.Sprintf("%sgn%d", prefix, b), Ref: "XOR2_X1",
			Conns: map[string]string{"A": cur[b%len(cur)], "B": stateNets[b], "Y": net},
		})
		next = append(next, net)
	}
	for o := 0; o < 4; o++ {
		net := fmt.Sprintf("%sout%d", prefix, o)
		insts = append(insts, netlist.Instance{
			Name: fmt.Sprintf("%sgo%d", prefix, o), Ref: "NAND2_X1",
			Conns: map[string]string{"A": cur[o], "B": cur[o+4], "Y": net},
		})
		outs = append(outs, net)
	}
	return insts, next, outs
}

// smSkeleton adds the clock, ports and state register shared by SM1F/SM1H.
func smSkeleton(name string) (*netlist.Design, []string, []string) {
	d := netlist.New(name)
	d.AddClock(clock.Signal{Name: "phi", Period: 100 * clock.Ns, RiseAt: 0, FallAt: 40 * clock.Ns})
	var stateNets, inNets []string
	for i := 0; i < 4; i++ {
		in := fmt.Sprintf("IN%d", i)
		d.AddPort(netlist.Port{Name: in, Dir: netlist.Input, RefClock: "phi", RefEdge: clock.Fall})
		inNets = append(inNets, in)
	}
	for b := 0; b < 12; b++ {
		stateNets = append(stateNets, fmt.Sprintf("state%d", b))
	}
	return d, stateNets, inNets
}

// SM1F builds the flattened 12-bit state machine of Table 1.
func SM1F() *netlist.Design {
	d, stateNets, inNets := smSkeleton("sm1f")
	insts, next, outs := smCells("", stateNets, inNets, 0x51)
	for _, i := range insts {
		d.AddInstance(i)
	}
	for b := 0; b < 12; b++ {
		d.AddInstance(netlist.Instance{
			Name: fmt.Sprintf("ff%d", b), Ref: "DFF_X1",
			Conns: map[string]string{"D": next[b], "CK": "phi", "Q": stateNets[b]},
		})
	}
	for o, net := range outs {
		out := fmt.Sprintf("OUT%d", o)
		d.AddPort(netlist.Port{Name: out, Dir: netlist.Output, RefClock: "phi", RefEdge: clock.Fall, Offset: -1 * clock.Ns})
		d.AddInstance(netlist.Instance{
			Name: fmt.Sprintf("gob%d", o), Ref: "BUF_X1",
			Conns: map[string]string{"A": net, "Y": out},
		})
	}
	return d
}

// SM1H builds the hierarchical description of the same machine: the
// combinational logic is contained in a single module (whose pin-to-pin
// delays are rolled up into a super-cell by the analyzer), with only the
// state register at the top level.
func SM1H() *netlist.Design {
	d, stateNets, inNets := smSkeleton("sm1h")
	m := netlist.New("SMLOGIC")
	var mState, mIn []string
	for b := 0; b < 12; b++ {
		p := fmt.Sprintf("S%d", b)
		m.AddPort(netlist.Port{Name: p, Dir: netlist.Input})
		mState = append(mState, p)
	}
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("I%d", i)
		m.AddPort(netlist.Port{Name: p, Dir: netlist.Input})
		mIn = append(mIn, p)
	}
	insts, next, outs := smCells("", mState, mIn, 0x51)
	for _, inst := range insts {
		m.AddInstance(inst)
	}
	conns := map[string]string{}
	for b := 0; b < 12; b++ {
		p := fmt.Sprintf("N%d", b)
		m.AddPort(netlist.Port{Name: p, Dir: netlist.Output})
		// Tie the module's output port net to the internal next-state net
		// with a buffer (module ports are nets inside the module).
		m.AddInstance(netlist.Instance{
			Name: fmt.Sprintf("gb%d", b), Ref: "BUF_X1",
			Conns: map[string]string{"A": next[b], "Y": p},
		})
		conns[fmt.Sprintf("S%d", b)] = stateNets[b]
		conns[fmt.Sprintf("N%d", b)] = fmt.Sprintf("next%d", b)
	}
	for o := 0; o < 4; o++ {
		p := fmt.Sprintf("O%d", o)
		m.AddPort(netlist.Port{Name: p, Dir: netlist.Output})
		m.AddInstance(netlist.Instance{
			Name: fmt.Sprintf("gq%d", o), Ref: "BUF_X1",
			Conns: map[string]string{"A": outs[o], "Y": p},
		})
		conns[fmt.Sprintf("I%d", o)] = inNets[o]
		conns[fmt.Sprintf("O%d", o)] = fmt.Sprintf("outn%d", o)
	}
	d.AddModule(m)
	d.AddInstance(netlist.Instance{Name: "u_logic", Ref: "SMLOGIC", Conns: conns})
	for b := 0; b < 12; b++ {
		d.AddInstance(netlist.Instance{
			Name: fmt.Sprintf("ff%d", b), Ref: "DFF_X1",
			Conns: map[string]string{"D": fmt.Sprintf("next%d", b), "CK": "phi", "Q": stateNets[b]},
		})
	}
	for o := 0; o < 4; o++ {
		out := fmt.Sprintf("OUT%d", o)
		d.AddPort(netlist.Port{Name: out, Dir: netlist.Output, RefClock: "phi", RefEdge: clock.Fall, Offset: -1 * clock.Ns})
		d.AddInstance(netlist.Instance{
			Name: fmt.Sprintf("gob%d", o), Ref: "BUF_X1",
			Conns: map[string]string{"A": fmt.Sprintf("outn%d", o), "Y": out},
		})
	}
	return d
}

// Figure1 builds the four-phase time-multiplexed configuration of the
// paper's Figure 1: one shared gate whose inputs are latched on phi1/phi3
// and whose output is captured on phi2/phi4. Its central cluster requires
// exactly two analysis passes.
func Figure1() *netlist.Design {
	d := netlist.New("figure1")
	T := 200 * clock.Ns
	for i := 0; i < 4; i++ {
		start := clock.Time(i) * 50 * clock.Ns
		d.AddClock(clock.Signal{
			Name: fmt.Sprintf("phi%d", i+1), Period: T,
			RiseAt: start, FallAt: start + 30*clock.Ns,
		})
	}
	d.AddPort(netlist.Port{Name: "A", Dir: netlist.Input, RefClock: "phi4", RefEdge: clock.Fall})
	d.AddPort(netlist.Port{Name: "B", Dir: netlist.Input, RefClock: "phi2", RefEdge: clock.Fall})
	d.AddPort(netlist.Port{Name: "Y1", Dir: netlist.Output, RefClock: "phi3", RefEdge: clock.Rise})
	d.AddPort(netlist.Port{Name: "Y2", Dir: netlist.Output, RefClock: "phi1", RefEdge: clock.Rise})
	add := func(name, ref string, conns map[string]string) {
		d.AddInstance(netlist.Instance{Name: name, Ref: ref, Conns: conns})
	}
	add("la", "DLATCH_X1", map[string]string{"D": "A", "G": "phi1", "Q": "qa"})
	add("lb", "DLATCH_X1", map[string]string{"D": "B", "G": "phi3", "Q": "qb"})
	add("g", "NAND2_X1", map[string]string{"A": "qa", "B": "qb", "Y": "m"})
	add("lc", "DLATCH_X1", map[string]string{"D": "m", "G": "phi2", "Q": "qc"})
	add("ld", "DLATCH_X1", map[string]string{"D": "m", "G": "phi4", "Q": "qd"})
	add("gc", "INV_X1", map[string]string{"A": "qc", "Y": "Y1"})
	add("gd", "INV_X1", map[string]string{"A": "qd", "Y": "Y2"})
	return d
}

// Scaling builds a family of designs with growing cell counts for the A5
// scaling ablation.
func Scaling(cells int, seed int64) (*netlist.Design, error) {
	width := 16
	stages := 4
	depth := (cells/width - stages) / (stages + 1)
	if depth < 1 {
		depth = 1
	}
	return Pipeline(PipeConfig{
		Name: fmt.Sprintf("scale%d", cells), Stages: stages, Width: width,
		Depth: depth, Latch: "DLATCH_X1", Latch2: "DFF_X1",
		ClockBufs: 1, Seed: seed, TargetCells: cells,
	})
}

// DESGated is the DES analogue with one bank's clock gated by a latched
// enable — the §4 enable-path machinery at Table-1 scale. An extension row
// (not in the paper's Table 1).
func DESGated() (*netlist.Design, error) {
	return Pipeline(PipeConfig{
		Name: "des-gated", Stages: 16, Width: 32, Depth: 5,
		Latch: "DLATCH_X1", Latch2: "DLATCH_X1",
		ClockBufs: 2, Seed: 0xDE5, TargetCells: 3681, GatedBank: true,
	})
}

// DESMultiFreq is the DES analogue with phi2 at twice the frequency: half
// the banks are flip-flops clocked per fast pulse and replicate per §4.
// (Alternating *transparent* banks across a 2× frequency boundary is
// infeasible under the paper's next-closure semantics — the fast latch's
// assertion-to-slow-closure pair leaves less time than a stage needs on
// every other pulse — so the fast banks are edge-triggered, the realistic
// idiom.) An extension row, not in the paper's Table 1.
func DESMultiFreq() (*netlist.Design, error) {
	return Pipeline(PipeConfig{
		Name: "des-mf", Stages: 16, Width: 32, Depth: 5,
		Latch: "DLATCH_X1", Latch2: "DFF_X1",
		ClockBufs: 2, Seed: 0xDE5, TargetCells: 3681, FastSecondClock: true,
	})
}
