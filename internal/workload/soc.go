package workload

import (
	"fmt"
	"math/rand"

	"hummingbird/internal/clock"
	"hummingbird/internal/netlist"
)

// SoC-scale hierarchical workload generator.
//
// SoC composes Table-1-style pipeline blocks into a grid of latch-bounded
// chains, the shape of a flattened system-on-chip netlist at 100k–1M
// cells:
//
//   - The grid has ceil(blocks/depth) chains of up to `depth` blocks. One
//     block is an input latch bank followed by socLayers layers of random
//     bit-sliced logic — exactly the inter-bank region of Pipeline — so
//     every block becomes one combinational cluster, and the latch banks
//     become the inter-cluster edges of the DAG the level scheduler walks:
//     stage s of every chain lands on the same level, giving levels that
//     are ceil(blocks/depth) clusters wide.
//   - `domains` two-phase clock pairs share one period but are phase
//     shifted against each other (shift < period/10, so both pulses stay
//     in-period). Chain c runs in domain c%domains; the shared primary
//     input bus and the inter-chain links cross domains, exercising the
//     §4 multi-phase machinery at scale.
//   - After every stage, a link latch carries one bit from chain c into
//     chain c+1's next stage: cross-hierarchy wiring that adds diagonal
//     DAG edges without merging clusters (the latch is a synchronising
//     element).
//   - Every fourth stage of a chain latches on a gated clock — an enable
//     latched on the opposite phase ANDed with the phase clock — the §4
//     enable-path idiom of Pipeline's GatedBank at SoC density.
//
// The generator is deterministic: the same (blocks, depth, domains, seed)
// always yields the same netlist.

const (
	// socWidth is the bit width of every latch bank and logic layer.
	socWidth = 32
	// socLayers is the number of gate layers per block.
	socLayers = 4
)

// SoCBlockCells is the approximate leaf-cell count contributed by one
// block (latch bank plus gate layers); sizing helpers divide by it.
const SoCBlockCells = socWidth * (socLayers + 1)

// SoC builds the hierarchical SoC workload described in the package
// comment above. blocks is the total block count, depth the pipeline
// depth of each chain (clamped to blocks), domains the number of
// phase-shifted two-phase clock pairs.
func SoC(blocks, depth, domains int, seed int64) (*netlist.Design, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("workload soc: blocks %d < 1", blocks)
	}
	if depth < 1 {
		depth = 1
	}
	if depth > blocks {
		depth = blocks
	}
	if domains < 1 {
		domains = 1
	}
	chains := (blocks + depth - 1) / depth

	r := rand.New(rand.NewSource(seed))
	d := netlist.New(fmt.Sprintf("soc%d", blocks))
	p := 100 * clock.Ns

	// Phase-shifted two-phase pairs: clkA_d rises at the shift, clkB_d
	// half a period later. shift < p/10 keeps clkB's fall inside the
	// period for every domain.
	phase := func(dom, s int) string {
		if s%2 == 0 {
			return fmt.Sprintf("clkA_%d", dom)
		}
		return fmt.Sprintf("clkB_%d", dom)
	}
	for dom := 0; dom < domains; dom++ {
		shift := clock.Time(dom) * (p / 10) / clock.Time(domains)
		d.AddClock(clock.Signal{Name: phase(dom, 0), Period: p, RiseAt: shift, FallAt: shift + p*2/5})
		d.AddClock(clock.Signal{Name: phase(dom, 1), Period: p, RiseAt: shift + p/2, FallAt: shift + p/2 + p*2/5})
	}

	inst := func(name, ref string, conns map[string]string) {
		d.AddInstance(netlist.Instance{Name: name, Ref: ref, Conns: conns})
	}

	// One shared primary input bus feeds every chain's first latch bank.
	pi := make([]string, socWidth)
	for w := range pi {
		name := fmt.Sprintf("IN%d", w)
		d.AddPort(netlist.Port{Name: name, Dir: netlist.Input, RefClock: phase(0, 1), RefEdge: clock.Fall})
		pi[w] = name
	}

	// exists reports whether chain c has a block at stage s (only the
	// last chain can be short).
	exists := func(c, s int) bool { return s < depth && c*depth+s < blocks }

	cur := make([][]string, chains) // nets feeding each chain's next bank
	for c := range cur {
		cur[c] = pi
	}
	linkIn := make([]string, chains) // pending cross-chain link per chain

	for s := 0; s < depth; s++ {
		for c := 0; c < chains; c++ {
			if !exists(c, s) {
				continue
			}
			dom := c % domains
			ck := phase(dom, s)
			// Gated stage: enable latched on the opposite phase gates
			// this bank's clock.
			if s%4 == 3 {
				en := fmt.Sprintf("c%ds%d_en", c, s)
				gck := fmt.Sprintf("c%ds%d_gck", c, s)
				inst(fmt.Sprintf("gle_c%ds%d", c, s), "DLATCH_X1",
					map[string]string{"D": cur[c][0], "G": phase(dom, s+1), "Q": en})
				inst(fmt.Sprintf("gand_c%ds%d", c, s), "AND2_X1",
					map[string]string{"A": ck, "B": en, "Y": gck})
				ck = gck
			}
			// Input latch bank.
			bank := make([]string, socWidth)
			for w := 0; w < socWidth; w++ {
				q := fmt.Sprintf("c%ds%dw%d_q", c, s, w)
				inst(fmt.Sprintf("lat_c%ds%dw%d", c, s, w), "DLATCH_X1",
					map[string]string{"D": cur[c][w], "G": ck, "Q": q})
				bank[w] = q
			}
			// Gate layers; bit column A keeps every upstream net
			// consumed, the rest mix randomly across the word. The
			// incoming cross-chain link, when present, replaces bit 0
			// of layer 0 with an explicit two-input mix.
			src := bank
			for l := 0; l < socLayers; l++ {
				out := make([]string, socWidth)
				for w := 0; w < socWidth; w++ {
					net := fmt.Sprintf("c%ds%dl%dw%d", c, s, l, w)
					if l == 0 && w == 0 && linkIn[c] != "" {
						inst(fmt.Sprintf("glk_c%ds%d", c, s), "XOR2_X1",
							map[string]string{"A": src[0], "B": linkIn[c], "Y": net})
						out[w] = net
						continue
					}
					g := gatePool[r.Intn(len(gatePool))]
					conns := map[string]string{}
					ins := []string{"A", "B", "C"}
					conns[ins[0]] = src[w%len(src)]
					for i := 1; i < g.nIn; i++ {
						conns[ins[i]] = src[r.Intn(len(src))]
					}
					conns["Y"] = net
					inst(fmt.Sprintf("g_c%ds%dl%dw%d", c, s, l, w), g.cell, conns)
					out[w] = net
				}
				src = out
			}
			linkIn[c] = ""
			cur[c] = src
		}
		// Cross-chain links into the next stage: one bit of chain c,
		// latched in the target chain's next-stage phase, feeds chain
		// c+1. The latch keeps the clusters separate; the DAG gains a
		// level-monotone diagonal edge.
		next := make([]string, chains)
		for c := 0; c < chains; c++ {
			t := (c + 1) % chains
			if !exists(c, s) || !exists(t, s+1) {
				continue
			}
			ln := fmt.Sprintf("link_c%ds%d", c, s)
			inst(fmt.Sprintf("lk_c%ds%d", c, s), "DLATCH_X1",
				map[string]string{"D": cur[c][0], "G": phase(t%domains, s+1), "Q": ln})
			next[t] = ln
		}
		linkIn = next
	}

	// Per-chain primary output: XOR-reduce the final layer (so every net
	// is consumed) and buffer it out, referenced to the chain's domain.
	for c := 0; c < chains; c++ {
		dom := c % domains
		acc := cur[c][0]
		for w := 1; w < socWidth; w++ {
			net := fmt.Sprintf("red_c%dw%d", c, w)
			inst(fmt.Sprintf("gr_c%dw%d", c, w), "XOR2_X1",
				map[string]string{"A": acc, "B": cur[c][w], "Y": net})
			acc = net
		}
		out := fmt.Sprintf("OUT%d", c)
		lastStage := depth - 1
		if c == chains-1 {
			lastStage = blocks - c*depth - 1
		}
		d.AddPort(netlist.Port{Name: out, Dir: netlist.Output,
			RefClock: phase(dom, lastStage+1), RefEdge: clock.Fall, Offset: -1 * clock.Ns})
		inst(fmt.Sprintf("go_c%d", c), "BUF_X2", map[string]string{"A": acc, "Y": out})
	}
	return d, nil
}

// SoCCells builds an SoC workload sized to approximately the given leaf
// cell count (within a few percent — link latches, gating and output
// reduction ride on top of the block grid), with the default shape:
// depth-8 chains across four clock domains.
func SoCCells(cells int, seed int64) (*netlist.Design, error) {
	blocks := cells / SoCBlockCells
	if blocks < 1 {
		blocks = 1
	}
	return SoC(blocks, 8, 4, seed)
}
