package workload

import (
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
)

var lib = celllib.Default()

// mustGen unwraps a generator result; the static test configurations are
// valid by construction.
func mustGen(d *netlist.Design, err error) *netlist.Design {
	if err != nil {
		panic(err)
	}
	return d
}

func validate(t *testing.T, d *netlist.Design) netlist.Stats {
	t.Helper()
	if err := d.Validate(lib); err != nil {
		t.Fatalf("%s invalid: %v", d.Name, err)
	}
	return d.Stats(lib)
}

func TestDESCellCount(t *testing.T) {
	d := mustGen(DES())
	s := validate(t, d)
	if s.Cells != 3681 {
		t.Fatalf("DES cells = %d, want 3681 (Table 1)", s.Cells)
	}
	if s.Latches < 16*32 {
		t.Fatalf("DES latches = %d", s.Latches)
	}
	if s.Nets < 3000 {
		t.Fatalf("DES nets = %d, implausibly few", s.Nets)
	}
}

func TestALUCellCount(t *testing.T) {
	s := validate(t, mustGen(ALU()))
	if s.Cells != 899 {
		t.Fatalf("ALU cells = %d, want 899 (Table 1)", s.Cells)
	}
}

func TestSM1F(t *testing.T) {
	d := SM1F()
	s := validate(t, d)
	if s.Latches != 12 {
		t.Fatalf("SM1F state bits = %d, want 12", s.Latches)
	}
	if s.Modules != 0 {
		t.Fatal("SM1F should be flat")
	}
	if s.Cells < 60 || s.Cells > 200 {
		t.Fatalf("SM1F cells = %d, outside the plausible band", s.Cells)
	}
}

func TestSM1H(t *testing.T) {
	d := SM1H()
	s := validate(t, d)
	if s.Modules != 1 {
		t.Fatalf("SM1H modules = %d, want 1", s.Modules)
	}
	if s.Latches != 12 {
		t.Fatalf("SM1H state bits = %d", s.Latches)
	}
	// Same machine: flattened cell counts agree up to the port-tie
	// buffers the hierarchy adds.
	sf := SM1F().Stats(lib)
	if diff := s.Cells - sf.Cells; diff < 0 || diff > 20 {
		t.Fatalf("SM1H cells %d vs SM1F %d", s.Cells, sf.Cells)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := mustGen(DES()), mustGen(DES())
	if len(a.Instances) != len(b.Instances) {
		t.Fatal("nondeterministic instance count")
	}
	for i := range a.Instances {
		if a.Instances[i].Name != b.Instances[i].Name || a.Instances[i].Ref != b.Instances[i].Ref {
			t.Fatalf("instance %d differs", i)
		}
		for pin, net := range a.Instances[i].Conns {
			if b.Instances[i].Conns[pin] != net {
				t.Fatalf("instance %s pin %s differs", a.Instances[i].Name, pin)
			}
		}
	}
}

func TestAllWorkloadsAnalyzable(t *testing.T) {
	for _, d := range []*netlist.Design{mustGen(ALU()), SM1F(), SM1H(), Figure1()} {
		a, err := core.Load(lib, d, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		rep, err := a.IdentifySlowPaths()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if !rep.OK {
			t.Fatalf("%s: generated benchmark is not timing-clean (worst %v)", d.Name, rep.WorstSlack())
		}
	}
}

func TestDESAnalyzable(t *testing.T) {
	if testing.Short() {
		t.Skip("DES analysis in -short mode")
	}
	a, err := core.Load(lib, mustGen(DES()), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("DES not timing-clean (worst %v)", rep.WorstSlack())
	}
}

func TestFigure1TwoPasses(t *testing.T) {
	d := Figure1()
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mid := a.CD.NetIdx["m"]
	found := false
	for _, cl := range a.CD.Clusters {
		if cl.LocalIndex(mid) >= 0 {
			found = true
			if cl.Plan.Passes() != 2 {
				t.Fatalf("Figure 1 cluster passes = %d, want 2", cl.Plan.Passes())
			}
		}
	}
	if !found {
		t.Fatal("net m not in any cluster")
	}
	// Total settling-time evaluations stay minimal: every other cluster
	// needs one pass.
	for _, cl := range a.CD.Clusters {
		if cl.LocalIndex(mid) < 0 && cl.Plan.Passes() > 1 {
			t.Fatalf("cluster %d needs %d passes", cl.ID, cl.Plan.Passes())
		}
	}
}

func TestScalingFamily(t *testing.T) {
	prev := 0
	for _, target := range []int{200, 400, 800} {
		d := mustGen(Scaling(target, 7))
		s := validate(t, d)
		if s.Cells != target {
			t.Fatalf("Scaling(%d) cells = %d", target, s.Cells)
		}
		if s.Cells <= prev {
			t.Fatal("scaling family not growing")
		}
		prev = s.Cells
	}
}

func TestPipelineRejectsOverTarget(t *testing.T) {
	if _, err := Pipeline(PipeConfig{Name: "tiny", Stages: 4, Width: 16, Depth: 4, TargetCells: 10}); err == nil {
		t.Fatal("expected error when target below natural size")
	}
}

func TestGatedPipelineAnalyzable(t *testing.T) {
	d, err := Pipeline(PipeConfig{
		Name: "gated", Stages: 4, Width: 8, Depth: 3,
		Latch: "DLATCH_X1", GatedBank: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The gated bank produces enable endpoints.
	enables := 0
	for _, s := range a.CD.Sites {
		if strings.Contains(s.Name, ".en") {
			enables++
		}
	}
	if enables == 0 {
		t.Fatal("no enable endpoints in gated pipeline")
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("gated pipeline slow: %v", rep.WorstSlack())
	}
}

func TestFastClockPipelineAnalyzable(t *testing.T) {
	d, err := Pipeline(PipeConfig{
		Name: "mf", Stages: 4, Width: 8, Depth: 3,
		Latch: "DLATCH_X1", Latch2: "DFF_X1", FastSecondClock: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// phi2-controlled elements replicate.
	replicated := 0
	for _, s := range a.CD.Sites {
		if len(s.Elems) == 2 {
			replicated++
		}
	}
	if replicated == 0 {
		t.Fatal("no replicated elements under the fast clock")
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("multi-frequency pipeline slow: %v", rep.WorstSlack())
	}
}

func TestDESVariantsAnalyzable(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size variants in -short mode")
	}
	for _, d := range []*netlist.Design{mustGen(DESGated()), mustGen(DESMultiFreq())} {
		s := validate(t, d)
		if s.Cells != 3681 {
			t.Fatalf("%s cells = %d", d.Name, s.Cells)
		}
		a, err := core.Load(lib, d, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		rep, err := a.IdentifySlowPaths()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if !rep.OK {
			t.Fatalf("%s not timing-clean (worst %v)", d.Name, rep.WorstSlack())
		}
	}
	// The multi-frequency variant really replicates: 512 sync sites + 64
	// ports would give 576 elements unreplicated; the 256 fast FFs double.
	a, _ := core.Load(lib, mustGen(DESMultiFreq()), core.DefaultOptions())
	if len(a.CD.Elems) <= 700 {
		t.Fatalf("element count %d suggests no replication", len(a.CD.Elems))
	}
}
