package workload

import (
	"testing"

	"hummingbird/internal/core"
)

func TestSoCValid(t *testing.T) {
	d := mustGen(SoC(32, 8, 4, 1))
	s := validate(t, d)
	want := 32 * SoCBlockCells
	if s.Cells < want || s.Cells > want+want/10 {
		t.Fatalf("SoC cells = %d, want %d..%d", s.Cells, want, want+want/10)
	}
	if s.Latches < 32*socWidth {
		t.Fatalf("SoC latches = %d, want at least one bank per block (%d)", s.Latches, 32*socWidth)
	}
}

func TestSoCMultiDomain(t *testing.T) {
	d := mustGen(SoC(16, 4, 3, 2))
	validate(t, d)
	if got := len(d.Clocks); got != 6 {
		t.Fatalf("SoC clocks = %d, want 2 per domain (6)", got)
	}
	seen := map[int64]bool{}
	for _, c := range d.Clocks {
		seen[int64(c.RiseAt)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("SoC domain phases collide: %d distinct rise times of 6", len(seen))
	}
}

func TestSoCDeterminism(t *testing.T) {
	a, b := mustGen(SoC(24, 6, 2, 42)), mustGen(SoC(24, 6, 2, 42))
	if len(a.Instances) != len(b.Instances) {
		t.Fatal("nondeterministic instance count")
	}
	for i := range a.Instances {
		if a.Instances[i].Name != b.Instances[i].Name || a.Instances[i].Ref != b.Instances[i].Ref {
			t.Fatalf("instance %d differs", i)
		}
		for pin, net := range a.Instances[i].Conns {
			if b.Instances[i].Conns[pin] != net {
				t.Fatalf("instance %s pin %s differs", a.Instances[i].Name, pin)
			}
		}
	}
	c := mustGen(SoC(24, 6, 2, 43))
	diff := false
	for i := range a.Instances {
		if a.Instances[i].Ref != c.Instances[i].Ref {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical gate choices")
	}
}

func TestSoCAnalyzable(t *testing.T) {
	a, err := core.Load(lib, mustGen(SoC(32, 8, 4, 1)), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("SoC not timing-clean (worst %v)", rep.WorstSlack())
	}
}

func TestSoCLevelStructure(t *testing.T) {
	const blocks, depth, domains = 32, 8, 4
	a, err := core.Load(lib, mustGen(SoC(blocks, depth, domains, 1)), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cd := a.CD
	// One cluster per block plus the primary-input singletons and the
	// enable clusters of the gated stages.
	if len(cd.CC) < blocks {
		t.Fatalf("clusters = %d, want at least one per block (%d)", len(cd.CC), blocks)
	}
	// The chain stages pipeline through the DAG: at least depth+1 levels
	// (PI singletons, then one level per stage).
	if got := cd.NumLevels(); got < depth+1 {
		t.Fatalf("levels = %d, want >= %d", got, depth+1)
	}
	// Stage levels are as wide as the chain grid — that width is what
	// the level scheduler spreads across workers.
	chains := (blocks + depth - 1) / depth
	wide := 0
	for l := 0; l < cd.NumLevels(); l++ {
		if int(cd.LevelStart[l+1]-cd.LevelStart[l]) >= chains {
			wide++
		}
	}
	if wide < depth {
		t.Fatalf("only %d levels have >= %d clusters, want >= %d wide levels", wide, chains, depth)
	}
}

func TestSoCCellsSizing(t *testing.T) {
	if testing.Short() {
		t.Skip("large generation in -short mode")
	}
	const target = 50_000
	d, err := SoCCells(target, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := validate(t, d)
	if s.Cells < target*9/10 || s.Cells > target*11/10 {
		t.Fatalf("SoCCells(%d) = %d cells, outside 10%% band", target, s.Cells)
	}
}
