package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hummingbird/internal/failpoint"
)

type openRec struct {
	Design string `json:"design"`
}

type editRec struct {
	Op   string `json:"op"`
	Inst string `json:"inst"`
}

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(filepath.Join(t.TempDir(), "journals"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	m := newManager(t)
	w, err := m.Create("s1", openRec{Design: "design d\nend\n"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(KindEdits, []editRec{{Op: "adjust", Inst: fmt.Sprintf("g%d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	ids, err := m.Sessions()
	if err != nil || len(ids) != 1 || ids[0] != "s1" {
		t.Fatalf("sessions = %v, %v", ids, err)
	}
	recs, err := m.Read("s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].Kind != KindOpen {
		t.Fatalf("replayed %d records, first %q", len(recs), recs[0].Kind)
	}
	var op openRec
	if err := json.Unmarshal(recs[0].Body, &op); err != nil || !strings.HasPrefix(op.Design, "design d") {
		t.Fatalf("open body %s: %v", recs[0].Body, err)
	}
	var eds []editRec
	if err := json.Unmarshal(recs[2].Body, &eds); err != nil || eds[0].Inst != "g1" {
		t.Fatalf("edit body %s: %v", recs[2].Body, err)
	}
}

// TestTornTailDropsOnlyLastRecord simulates a crash mid-append: the intact
// prefix must replay, the torn line must be dropped.
func TestTornTailDropsOnlyLastRecord(t *testing.T) {
	m := newManager(t)
	w, err := m.Create("s1", openRec{Design: "x"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(KindEdits, []editRec{{Op: "adjust", Inst: fmt.Sprintf("g%d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	path := filepath.Join(m.Dir(), "s1.journal")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the final line.
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := m.Read("s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("torn journal replayed %d records, want 3", len(recs))
	}

	// Drop the torn line, then corrupt a byte inside the final intact
	// line's payload: the checksum must catch it.
	b, _ = os.ReadFile(path)
	b = b[:strings.LastIndexByte(string(b), '\n')+1]
	b[len(b)-3] ^= 0x20
	os.WriteFile(path, b, 0o644)
	recs, err = m.Read("s1")
	if err != nil || len(recs) != 2 {
		t.Fatalf("corrupt tail: %d records, %v; want 2, nil", len(recs), err)
	}
}

func TestReadRejectsEmptyAndHeaderless(t *testing.T) {
	m := newManager(t)
	if err := os.WriteFile(filepath.Join(m.Dir(), "bad.journal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read("bad"); err == nil {
		t.Fatal("empty journal replayed")
	}
	if _, err := m.Read("missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing journal: %v", err)
	}
}

func TestRemoveAndQuarantine(t *testing.T) {
	m := newManager(t)
	w, _ := m.Create("s1", openRec{})
	w.Close()
	if err := m.Quarantine("s1"); err != nil {
		t.Fatal(err)
	}
	if ids, _ := m.Sessions(); len(ids) != 0 {
		t.Fatalf("quarantined journal still listed: %v", ids)
	}
	if _, err := os.Stat(filepath.Join(m.Dir(), "s1.journal.quarantined")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	w2, _ := m.Create("s2", openRec{})
	w2.Close()
	if err := m.Remove("s2"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("s2"); err != nil {
		t.Fatalf("double remove: %v", err)
	}
}

// TestRewriteCompactsAtomically replays a journal with a torn tail,
// rewrites it compactly, and checks: the compacted file replays to exactly
// the acknowledged records, the writer keeps appending to the final path,
// and no temporary file is left behind.
func TestRewriteCompactsAtomically(t *testing.T) {
	m := newManager(t)
	w, err := m.Create("s1", openRec{Design: "x"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.Append(KindEdits, []editRec{{Op: "adjust", Inst: fmt.Sprintf("g%d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	path := filepath.Join(m.Dir(), "s1.journal")
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString(`deadbeef {"kind":"edits","se`)
	f.Close()

	recs, err := m.Read("s1")
	if err != nil || len(recs) != 3 {
		t.Fatalf("read: %d records, %v", len(recs), err)
	}
	var batches []json.RawMessage
	for _, r := range recs[1:] {
		batches = append(batches, r.Body)
	}
	w2, err := m.Rewrite("s1", json.RawMessage(recs[0].Body), batches)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Path() != path {
		t.Fatalf("rewritten journal at %s, want %s", w2.Path(), path)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("rewrite left its temp file: %v", err)
	}
	// The compacted journal replays identically and accepts new appends.
	if err := w2.Append(KindEdits, []editRec{{Op: "adjust", Inst: "g9"}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	recs2, err := m.Read("s1")
	if err != nil || len(recs2) != 4 {
		t.Fatalf("compacted read: %d records, %v; want 4", len(recs2), err)
	}
	if string(recs2[0].Body) != string(recs[0].Body) || string(recs2[1].Body) != string(recs[1].Body) {
		t.Fatal("compaction changed record bodies")
	}
}

// TestRewriteFailureKeepsOriginal injects an append fault into the rewrite
// and checks the original journal survives untouched — a failed (or
// crashed) compaction must never cost acknowledged records.
func TestRewriteFailureKeepsOriginal(t *testing.T) {
	failpoint.DisarmAll()
	t.Cleanup(failpoint.DisarmAll)
	m := newManager(t)
	w, err := m.Create("s1", openRec{Design: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindEdits, []editRec{{Op: "adjust", Inst: "g0"}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	before, err := os.ReadFile(filepath.Join(m.Dir(), "s1.journal"))
	if err != nil {
		t.Fatal(err)
	}

	if err := failpoint.Arm("journal.append", "1*error(disk full)"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rewrite("s1", openRec{Design: "x"}, nil); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("rewrite under failpoint: %v", err)
	}
	after, err := os.ReadFile(filepath.Join(m.Dir(), "s1.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed rewrite modified the original journal")
	}
	if _, err := os.Stat(filepath.Join(m.Dir(), "s1.journal.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed rewrite left its temp file")
	}
}

// TestNewManagerSweepsStaleTemporaries plants a leftover compaction temp
// (crash mid-rewrite) and checks NewManager removes it without touching
// real journals.
func TestNewManagerSweepsStaleTemporaries(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journals")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "s1.journal.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "s1.journal"), []byte("real"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "s1.journal.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale temp survived NewManager")
	}
	if _, err := os.Stat(filepath.Join(dir, "s1.journal")); err != nil {
		t.Fatalf("real journal removed by sweep: %v", err)
	}
}

// TestConcurrentAppends drives the group-commit barrier from many
// goroutines; with -race this is the journal's data-race check.
func TestConcurrentAppends(t *testing.T) {
	m := newManager(t)
	w, err := m.Create("s1", openRec{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- w.Append(KindEdits, []editRec{{Op: "adjust", Inst: fmt.Sprintf("g%d", i)}})
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	recs, err := m.Read("s1")
	if err != nil || len(recs) != n+1 {
		t.Fatalf("replayed %d records, %v; want %d", len(recs), err, n+1)
	}
}

func TestAppendFailpoint(t *testing.T) {
	failpoint.DisarmAll()
	t.Cleanup(failpoint.DisarmAll)
	m := newManager(t)
	w, err := m.Create("s1", openRec{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := failpoint.Arm("journal.append", "1*error(disk full)"); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindEdits, []editRec{}); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("append under failpoint: %v", err)
	}
	if err := w.Append(KindEdits, []editRec{}); err != nil {
		t.Fatalf("append after failpoint drained: %v", err)
	}
}
