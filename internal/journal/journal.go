// Package journal provides the append-only per-session edit journals that
// give hummingbirdd crash recovery: every session-mutating operation (the
// open request, then each applied edit batch) is appended as one
// CRC-framed JSON record before the response is acknowledged, so a daemon
// restarted after a crash can replay the journals and restore every
// session to its exact pre-crash state.
//
// # Format
//
// A journal is a text file of newline-terminated records:
//
//	<crc32c-hex> <payload-json>\n
//
// where the checksum covers the payload bytes. The payload is
//
//	{"kind":"open"|"edits","seq":N,"body":<caller JSON>}
//
// with seq increasing from 0 within one file. The framing makes replay
// torn-write-tolerant: a crash mid-append leaves a final line that is
// truncated or fails its checksum, and Read stops there, returning every
// record the daemon had previously acknowledged (records are fsynced
// before the HTTP response, so an acknowledged edit is never lost).
//
// # Durability
//
// Appends are group-committed: the record is written under the file lock,
// then Append waits on a shared fsync barrier — concurrent appenders that
// land while another fsync is in flight share the next one, so a burst of
// edits costs one or two fsyncs rather than one each.
package journal

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hummingbird/internal/failpoint"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/span"
)

var (
	mAppends   = telemetry.NewCounter("journal.appends")
	mSyncs     = telemetry.NewCounter("journal.syncs")
	mReplays   = telemetry.NewCounter("journal.replays")
	mTornTails = telemetry.NewCounter("journal.torn_tails")
	tFsync     = telemetry.NewTimer("journal.fsync")
)

// lastFsyncNs holds the duration of the most recent journal fsync in
// nanoseconds (across all writers) — the fsync-lag gauge on the daemon's
// metrics surface. Updated whenever telemetry is enabled or the fsync
// happens inside a traced request.
var lastFsyncNs atomic.Int64

func init() {
	telemetry.NewGaugeFunc("journal.fsync_last_ns", func() float64 {
		return float64(lastFsyncNs.Load())
	})
}

// castagnoli is the CRC-32C table (the polynomial used by modern storage
// stacks; any fixed table would do, this one is hardware-accelerated).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record kinds.
const (
	KindOpen  = "open"
	KindEdits = "edits"
)

// A Sink receives a session's committed journal frames for replication.
// Commit is called with one or more complete framed lines (each
// "<crc32c-hex> <payload-json>\n"), strictly in sequence order, and only
// after the frames are durable in the local journal (the group-commit
// fsync covering them has returned). Delivery is serialized: Commit is
// never called concurrently for one writer. A sink must not block
// indefinitely — it runs on the request path between fsync and the HTTP
// response — and it owns its own retry/buffering policy; Commit has no
// error return because replication failure must degrade (lag grows),
// never poison the local session.
type Sink interface {
	Commit(frames [][]byte)
}

// Record is one replayed journal entry.
type Record struct {
	Kind string          `json:"kind"`
	Seq  int64           `json:"seq"`
	Body json.RawMessage `json:"body"`
}

// Writer appends records to one session's journal file.
type Writer struct {
	mu   sync.Mutex // file writes + seq
	f    *os.File
	seq  int64
	path string

	// group-commit fsync barrier: writeGen counts records written,
	// syncGen records synced; an appender whose record is already
	// covered by a completed fsync skips its own.
	syncMu   sync.Mutex
	writeGen int64
	syncGen  int64

	// replication: frames written while a sink is set queue in pending
	// (under mu, so they carry sequence order) and are handed to the sink
	// after the fsync barrier, under sinkMu so delivery order matches
	// write order even when appenders race through the barrier.
	sinkMu  sync.Mutex
	sink    Sink
	pending [][]byte
}

// SetSink attaches (or, with nil, detaches) the replication sink. Frames
// appended from now on are delivered to it after they are durable;
// frames already in the file are the caller's to prime (see ReadFrames).
// Callers attach the sink before the writer is visible to concurrent
// appenders.
func (w *Writer) SetSink(s Sink) {
	w.mu.Lock()
	w.sink = s
	w.mu.Unlock()
}

// deliver drains the pending frame queue into the sink, preserving
// order. Called after a successful barrier; a no-op without a sink.
func (w *Writer) deliver() {
	w.sinkMu.Lock()
	defer w.sinkMu.Unlock()
	w.mu.Lock()
	sink := w.sink
	frames := w.pending
	w.pending = nil
	w.mu.Unlock()
	if sink != nil && len(frames) > 0 {
		sink.Commit(frames)
	}
}

// Manager owns a directory of session journals, one file per session id.
type Manager struct {
	dir string
}

// NewManager ensures the directory exists and returns a manager over it.
// Stale compaction temporaries (a crash mid-Rewrite) are removed: the
// original journal each was meant to replace is still intact.
func NewManager(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if e.Type().IsRegular() && strings.HasSuffix(e.Name(), ".journal.tmp") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return &Manager{dir: dir}, nil
}

// Dir returns the journal directory.
func (m *Manager) Dir() string { return m.dir }

func (m *Manager) path(session string) string {
	return filepath.Join(m.dir, session+".journal")
}

// Path returns the on-disk path of the session's journal file (which may
// not exist yet). Replication uses it to prime streams and to promote an
// adopted standby journal into the live directory.
func (m *Manager) Path(session string) string { return m.path(session) }

// Create starts a fresh journal for the session, writing (and syncing) the
// open record. An existing journal for the same id is truncated — the
// caller allocates ids that never collide with live sessions.
func (m *Manager) Create(session string, openBody any) (*Writer, error) {
	f, err := os.OpenFile(m.path(session), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f, path: m.path(session)}
	if err := w.Append(KindOpen, openBody); err != nil {
		f.Close()
		os.Remove(w.path)
		return nil, err
	}
	return w, nil
}

// Rewrite atomically replaces the session's journal with a compacted one —
// the open record plus the given acknowledged edit batches — and returns a
// writer appending to it. The compacted journal is assembled and fsynced in
// a temporary file and only then renamed over the original, so a crash (or
// an injected fault) at any point of the rewrite leaves either the old
// journal or the complete new one on disk, never neither; on error the
// original journal is untouched.
func (m *Manager) Rewrite(session string, openBody any, batches []json.RawMessage) (*Writer, error) {
	final := m.path(session)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f, path: tmp}
	err = w.Append(KindOpen, openBody)
	for _, b := range batches {
		if err != nil {
			break
		}
		err = w.Append(KindEdits, b)
	}
	if err == nil {
		if rerr := os.Rename(tmp, final); rerr != nil {
			err = fmt.Errorf("journal: rewrite %s: %w", session, rerr)
		}
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	w.path = final
	syncDir(m.dir)
	return w, nil
}

// syncDir fsyncs a directory so a just-completed rename or remove survives
// a power loss; best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Remove deletes the session's journal (normal close: the state is parked
// or discarded deliberately, so there is nothing left to replay).
func (m *Manager) Remove(session string) error {
	err := os.Remove(m.path(session))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// Quarantine renames the session's journal aside (suffix ".quarantined")
// so a poisoned session's history survives for diagnosis without being
// replayed into the next process.
func (m *Manager) Quarantine(session string) error {
	err := os.Rename(m.path(session), m.path(session)+".quarantined")
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// Sessions lists the session ids with a journal on disk, sorted.
func (m *Manager) Sessions() ([]string, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ".journal") {
			ids = append(ids, strings.TrimSuffix(name, ".journal"))
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Read replays the session's journal, tolerating a torn tail: records
// after the first truncated or checksum-failing line are dropped (they
// were never acknowledged). The returned slice starts with the KindOpen
// record. Counts one journal.replays.
func (m *Manager) Read(session string) ([]Record, error) {
	f, err := os.Open(m.path(session))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		crcHex, payload, ok := strings.Cut(string(line), " ")
		if !ok {
			mTornTails.Inc()
			break
		}
		want, err := strconv.ParseUint(crcHex, 16, 32)
		if err != nil || crc32.Checksum([]byte(payload), castagnoli) != uint32(want) {
			mTornTails.Inc()
			break
		}
		var rec Record
		if err := json.Unmarshal([]byte(payload), &rec); err != nil {
			mTornTails.Inc()
			break
		}
		if rec.Seq != int64(len(recs)) {
			// A sequence gap means the file was tampered with or
			// mis-assembled; stop at the last consistent prefix.
			mTornTails.Inc()
			break
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return recs, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("journal %s: no intact records", session)
	}
	if recs[0].Kind != KindOpen {
		return nil, fmt.Errorf("journal %s: first record is %q, want %q", session, recs[0].Kind, KindOpen)
	}
	mReplays.Inc()
	return recs, nil
}

// Append frames, writes and fsyncs one record. The record is durable when
// Append returns nil; on a write or sync error the journal should be
// treated as dead (the daemon quarantines the session).
func (w *Writer) Append(kind string, body any) error {
	return w.AppendContext(nil, kind, body)
}

// AppendContext is Append with request-span instrumentation: when ctx
// carries a trace the write appears as a "journal.append" span with a
// "journal.fsync" child covering the group-commit barrier. The context is
// used only for tracing, never for cancellation — an append the caller
// initiated must reach the disk regardless of deadlines, or the journal
// would disagree with the acknowledged state.
func (w *Writer) AppendContext(ctx context.Context, kind string, body any) error {
	sctx, sp := span.Start(ctx, "journal.append")
	defer sp.End()
	return w.append(sctx, kind, body)
}

func (w *Writer) append(ctx context.Context, kind string, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("journal: encode body: %w", err)
	}
	w.mu.Lock()
	rec := Record{Kind: kind, Seq: w.seq, Body: raw}
	payload, err := json.Marshal(rec)
	if err != nil {
		w.mu.Unlock()
		return fmt.Errorf("journal: encode record: %w", err)
	}
	if err := failpoint.Hit("journal.append"); err != nil {
		w.mu.Unlock()
		return err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.Checksum(payload, castagnoli), payload)
	if _, err := w.f.WriteString(line); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("journal: append: %w", err)
	}
	w.seq++
	w.writeGen++
	gen := w.writeGen
	if w.sink != nil {
		w.pending = append(w.pending, []byte(line))
	}
	w.mu.Unlock()
	mAppends.Inc()
	if err := w.barrier(ctx, gen); err != nil {
		return err
	}
	w.deliver()
	return nil
}

// barrier is the group-commit fsync: returns once a sync covering write
// generation gen has completed, issuing one itself only if needed. The
// sync it issues is timed (histogram + fsync-lag gauge) when telemetry is
// on, and appears as a "journal.fsync" span when ctx carries a trace.
func (w *Writer) barrier(ctx context.Context, gen int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncGen >= gen {
		return nil // a concurrent appender's fsync already covered us
	}
	if err := failpoint.Hit("journal.sync"); err != nil {
		return err
	}
	w.mu.Lock()
	covered := w.writeGen
	w.mu.Unlock()
	_, sp := span.Start(ctx, "journal.fsync")
	instrument := telemetry.Enabled() || sp != nil
	var t0 time.Time
	if instrument {
		t0 = time.Now()
	}
	err := w.f.Sync()
	if instrument {
		d := time.Since(t0)
		lastFsyncNs.Store(d.Nanoseconds())
		tFsync.Observe(d)
	}
	sp.End()
	if err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	mSyncs.Inc()
	w.syncGen = covered
	return nil
}

// Sync forces an fsync of everything appended so far (shutdown flush);
// any frames still queued for the replication sink are delivered.
func (w *Writer) Sync() error {
	w.mu.Lock()
	gen := w.writeGen
	w.mu.Unlock()
	if err := w.barrier(nil, gen); err != nil {
		return err
	}
	w.deliver()
	return nil
}

// Close syncs and closes the file; the journal stays on disk for replay.
func (w *Writer) Close() error {
	syncErr := w.Sync()
	if err := w.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// Path returns the journal file's path (diagnostics).
func (w *Writer) Path() string { return w.path }

// Seq returns the next sequence number the writer will append — equal to
// the count of records already in the file. The fleet's reconcile flow
// compares it across replicas to resolve double-claimed sessions.
func (w *Writer) Seq() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// ParseFrame validates one framed journal line the way CheckFrame does
// (any sequence) and returns the decoded record. Replicas use it to read
// the open record out of a streamed standby journal's first frame — for
// compile pre-warming and for recovering the session's design key —
// without replaying the file.
func ParseFrame(line []byte) (Record, error) {
	s := strings.TrimSuffix(string(line), "\n")
	crcHex, payload, ok := strings.Cut(s, " ")
	if !ok {
		return Record{}, fmt.Errorf("journal: frame has no checksum separator")
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return Record{}, fmt.Errorf("journal: bad frame checksum %q", crcHex)
	}
	if crc32.Checksum([]byte(payload), castagnoli) != uint32(want) {
		return Record{}, fmt.Errorf("journal: frame checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return Record{}, fmt.Errorf("journal: decode frame: %w", err)
	}
	return rec, nil
}

// CheckFrame validates one framed journal line (with or without its
// trailing newline): the checksum must cover the payload and the payload
// must decode to a record carrying sequence wantSeq (any sequence when
// wantSeq < 0). Returns the record kind. This is the admission check a
// replica runs on every replicated frame before appending it to a
// standby journal — a frame that fails here must be rejected, not
// stored, or the standby would replay differently from the primary.
func CheckFrame(line []byte, wantSeq int64) (string, error) {
	s := strings.TrimSuffix(string(line), "\n")
	crcHex, payload, ok := strings.Cut(s, " ")
	if !ok {
		return "", fmt.Errorf("journal: frame has no checksum separator")
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return "", fmt.Errorf("journal: bad frame checksum %q", crcHex)
	}
	if crc32.Checksum([]byte(payload), castagnoli) != uint32(want) {
		return "", fmt.Errorf("journal: frame checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return "", fmt.Errorf("journal: decode frame: %w", err)
	}
	if wantSeq >= 0 && rec.Seq != wantSeq {
		return "", fmt.Errorf("journal: frame seq %d, want %d", rec.Seq, wantSeq)
	}
	return rec.Kind, nil
}

// ReadFrames returns the intact framed lines of the journal file at
// path, trailing newlines included, stopping silently at the first torn
// or corrupt line (same tolerance as Read, without decoding bodies).
// Callers use it to prime a replication stream with a journal's existing
// frames and to recover a standby journal's next-expected sequence.
func ReadFrames(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var frames [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if _, err := CheckFrame(line, int64(len(frames))); err != nil {
			break
		}
		frame := make([]byte, len(line)+1)
		copy(frame, line)
		frame[len(line)] = '\n'
		frames = append(frames, frame)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return frames, err
	}
	return frames, nil
}
