// Package cluster elaborates a resolved netlist into the analyzable timing
// network of the paper: it identifies synchronising elements (replicating
// them per control pulse, §4), analyses control paths from the clock
// generators to every control input (computing Oat and the §3 monotonic
// inversion parity), extracts the combinational *clusters* ("a maximal
// connected network of combinational logic elements", §7), verifies the §3
// acyclicity assumption inside each, and runs the break-open pre-processing
// that decides the minimum set of analysis passes per cluster.
//
// Enable paths (§4) — combinational paths from a synchronising-element
// output (or a primary input) into the control input of another element
// through clock-gating logic — are supported conservatively: each enable
// net entering a control cone becomes a virtual capture endpoint whose
// ideal closure is the *leading* edge of every gated pulse, advanced by the
// worst-case delay of the gating logic between the enable net and the
// control pin. The clock-side spine of the cone must still be a monotonic
// function of exactly one clock; the enable side is ordinary data logic.
package cluster

import (
	"fmt"
	"sort"

	"hummingbird/internal/breakopen"
	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/delaycalc"
	"hummingbird/internal/graph"
	"hummingbird/internal/netlist"
	"hummingbird/internal/syncelem"
)

// Arc is one combinational timing arc between two nets, carrying its
// evaluated delays.
type Arc struct {
	Inst     string // owning instance, for reporting and re-synthesis
	FromPin  string
	ToPin    string
	From, To int // net ids
	Sense    celllib.Sense
	D        delaycalc.Delays
}

// In is a cluster input: one generic-element occurrence asserting onto a
// member net.
type In struct {
	Elem int // index into Network.Elems
	Net  int
}

// Out is a cluster output: one generic-element occurrence whose data input
// is fed from a member net.
type Out struct {
	Elem int // index into Network.Elems
	Net  int
}

// Cluster is one maximal connected combinational network, pre-processed for
// block analysis.
type Cluster struct {
	ID   int
	Nets []int // member net ids, sorted
	Arcs []Arc
	// Order is a topological order of the member nets (net ids).
	Order   []int
	Inputs  []In
	Outputs []Out
	// Reach[i][o] reports whether a combinational path connects input i's
	// net to output o's net (same net counts: a direct latch→latch
	// connection is a zero-delay path).
	Reach [][]bool
	// Plan is the break-open pass plan; Plan.Assign is keyed by output
	// position within Outputs.
	Plan *breakopen.Plan

	local map[int]int // net id -> index in Nets
	adj   map[int][]int
}

// LocalIndex returns the position of net id within Nets, or -1.
func (c *Cluster) LocalIndex(net int) int {
	if i, ok := c.local[net]; ok {
		return i
	}
	return -1
}

// ArcsFrom returns the indices into Arcs of arcs leaving the given net.
func (c *Cluster) ArcsFrom(net int) []int { return c.adj[net] }

// SyncSite is one physical synchronisation point: a latch/FF/tristate
// instance, a primary port, or a virtual enable-capture endpoint, expanded
// into one or more generic elements.
type SyncSite struct {
	Name   string
	IsPort bool
	Dir    netlist.PortDir // ports and enable endpoints only
	Kind   celllib.Kind
	// DataNet is the net feeding the data input (-1 for primary inputs);
	// OutNet is the driven net (-1 for primary outputs and enable
	// endpoints); CtrlNet is the control net (-1 for ports/endpoints).
	DataNet, OutNet, CtrlNet int
	Sig                      int
	Inverted                 bool
	CtrlMax, CtrlMin         clock.Time
	// Elems indexes the site's generic elements within Network.Elems.
	Elems []int
}

// Network is the fully elaborated timing view of one design.
type Network struct {
	Lib    *celllib.Library
	Design *netlist.Design
	Clocks *clock.Set
	Calc   *delaycalc.Calc

	Nets   []string
	NetIdx map[string]int

	Sites []SyncSite
	// Elems holds every generic element occurrence; Elems[i].Inst matches
	// the owning site's Name.
	Elems    []*syncelem.Element
	SiteOf   []int // element index -> site index
	Clusters []*Cluster

	// EdgeTimes are the distinct clock edge times (break candidates).
	EdgeTimes []clock.Time

	// ctrlNets marks the pure clock-cone nets (clock sources, buffers and
	// gating-gate outputs); enable-side nets stay false and remain data.
	ctrlNets []bool
}

// IsControlNet reports whether the net (global id) lies in a pure clock
// cone: a clock source, buffered clock or gating-gate output. Edits that
// touch control nets re-shape the clock cones and the sites built from
// them, so the incremental engine treats them as topology changes.
func (nw *Network) IsControlNet(id int) bool {
	return id >= 0 && id < len(nw.ctrlNets) && nw.ctrlNets[id]
}

// enableIn is one enable net feeding a control cone, with the worst-case
// gating-logic delay from that net to the control pin.
type enableIn struct {
	net         int
	delayToCtrl clock.Time
}

// Build elaborates a resolved design (every instance reference must resolve
// in lib — flatten or roll up hierarchy first).
func Build(lib *celllib.Library, design *netlist.Design, cs *clock.Set, calc *delaycalc.Calc) (*Network, error) {
	nw := &Network{Lib: lib, Design: design, Clocks: cs, Calc: calc}
	nw.Nets = design.NetNames()
	nw.NetIdx = make(map[string]int, len(nw.Nets))
	for i, n := range nw.Nets {
		nw.NetIdx[n] = i
	}
	seen := map[clock.Time]bool{}
	for _, e := range cs.Edges() {
		if !seen[e.At] {
			seen[e.At] = true
			nw.EdgeTimes = append(nw.EdgeTimes, e.At)
		}
	}
	sort.Slice(nw.EdgeTimes, func(i, j int) bool { return nw.EdgeTimes[i] < nw.EdgeTimes[j] })

	combArcs, err := nw.collectArcs()
	if err != nil {
		return nil, err
	}
	if err := nw.buildSites(combArcs); err != nil {
		return nil, err
	}
	if err := nw.extractClusters(combArcs); err != nil {
		return nil, err
	}
	return nw, nil
}

// collectArcs gathers every combinational timing arc (arcs of sync cells are
// handled through the element model instead).
func (nw *Network) collectArcs() ([]Arc, error) {
	var arcs []Arc
	for i := range nw.Design.Instances {
		inst := &nw.Design.Instances[i]
		cell := nw.Lib.Cell(inst.Ref)
		if cell == nil {
			return nil, fmt.Errorf("cluster: instance %s: unresolved reference %q (flatten or roll up first)", inst.Name, inst.Ref)
		}
		if cell.IsSync() {
			continue
		}
		for ai := range cell.Arcs {
			arc := &cell.Arcs[ai]
			fromNet, ok1 := inst.Conns[arc.From]
			toNet, ok2 := inst.Conns[arc.To]
			if !ok1 || !ok2 {
				continue
			}
			arcs = append(arcs, Arc{
				Inst: inst.Name, FromPin: arc.From, ToPin: arc.To,
				From: nw.NetIdx[fromNet], To: nw.NetIdx[toNet],
				Sense: arc.Sense,
				D:     nw.Calc.ArcDelays(inst, arc),
			})
		}
	}
	return arcs, nil
}

// ctrlInfo is the memoized control-path analysis result for one net.
type ctrlInfo struct {
	sig        int
	parityEven bool // some clock path with an even number of inversions
	parityOdd  bool
	maxDelay   clock.Time
	minDelay   clock.Time
	visiting   bool
	// isEnable marks a net whose cone contains no clock at all: it is
	// driven (transitively) by synchronising-element outputs or primary
	// inputs — the data side of an enable path (§4).
	isEnable bool
}

// buildSites identifies synchronising instances and ports, analyses their
// control paths (including enable-path classification) and builds the
// generic elements.
func (nw *Network) buildSites(arcs []Arc) error {
	inArcs := make(map[int][]*Arc)
	for i := range arcs {
		inArcs[arcs[i].To] = append(inArcs[arcs[i].To], &arcs[i])
	}
	clockNet := map[int]int{} // net id -> clock signal index
	for ci, c := range nw.Design.Clocks {
		if n, ok := nw.NetIdx[c.Name]; ok {
			clockNet[n] = ci
		}
	}
	syncOut := map[int]string{} // nets driven by sync outputs
	for i := range nw.Design.Instances {
		inst := &nw.Design.Instances[i]
		cell := nw.Lib.Cell(inst.Ref)
		if cell == nil || !cell.IsSync() {
			continue
		}
		for _, op := range cell.Outputs() {
			if net, ok := inst.Conns[op]; ok {
				syncOut[nw.NetIdx[net]] = inst.Name
			}
		}
	}
	piNet := map[int]bool{}
	for _, p := range nw.Design.Ports {
		if p.Dir == netlist.Input {
			piNet[nw.NetIdx[p.Name]] = true
		}
	}

	memo := make(map[int]*ctrlInfo)
	var trace func(net int) (*ctrlInfo, error)
	trace = func(net int) (*ctrlInfo, error) {
		if ci, ok := memo[net]; ok {
			if ci.visiting {
				return nil, fmt.Errorf("cluster: combinational cycle in control path through net %q", nw.Nets[net])
			}
			return ci, nil
		}
		ci := &ctrlInfo{sig: -1}
		memo[net] = ci
		if sig, ok := clockNet[net]; ok {
			ci.sig = sig
			ci.parityEven = true
			return ci, nil
		}
		// Synchronising-element outputs and primary inputs terminate the
		// cone on its data side: the net is an enable (§4).
		if _, ok := syncOut[net]; ok {
			ci.isEnable = true
			return ci, nil
		}
		if piNet[net] {
			ci.isEnable = true
			return ci, nil
		}
		preds := inArcs[net]
		if len(preds) == 0 {
			return nil, fmt.Errorf("cluster: control input traces back to undriven net %q", nw.Nets[net])
		}
		ci.visiting = true
		sawClock := false
		first := true
		for _, a := range preds {
			up, err := trace(a.From)
			if err != nil {
				return nil, err
			}
			if up.isEnable {
				continue // enable side: no monotonicity or delay role
			}
			sawClock = true
			if a.Sense == celllib.NonUnate {
				return nil, fmt.Errorf("cluster: control path through instance %s is non-monotonic in the clock (non-unate arc); violates the §3 control assumption", a.Inst)
			}
			if ci.sig == -1 {
				ci.sig = up.sig
			} else if up.sig != ci.sig {
				return nil, fmt.Errorf("cluster: net %q is a function of more than one clock signal", nw.Nets[net])
			}
			inv := a.Sense == celllib.NegativeUnate
			pe := (up.parityEven && !inv) || (up.parityOdd && inv)
			po := (up.parityOdd && !inv) || (up.parityEven && inv)
			ci.parityEven = ci.parityEven || pe
			ci.parityOdd = ci.parityOdd || po
			if d := up.maxDelay + a.D.Max(); d > ci.maxDelay {
				ci.maxDelay = d
			}
			md := up.minDelay + a.D.Min()
			if first || md < ci.minDelay {
				ci.minDelay = md
			}
			first = false
		}
		ci.visiting = false
		if !sawClock {
			ci.isEnable = true
			return ci, nil
		}
		if ci.parityEven && ci.parityOdd {
			return nil, fmt.Errorf("cluster: net %q has control paths of both inversion parities; violates the §3 monotonic-control assumption", nw.Nets[net])
		}
		return ci, nil
	}

	// collectEnables returns, for every enable net feeding one element's
	// control cone, the worst-case combinational delay from that net to the
	// control pin. The cone is acyclic (trace rejects cycles), so a
	// worklist longest-path over the cone is exact.
	collectEnables := func(ctrlNet int) []enableIn {
		best := map[int]clock.Time{}
		downTo := map[int]clock.Time{ctrlNet: 0}
		work := []int{ctrlNet}
		for len(work) > 0 {
			net := work[len(work)-1]
			work = work[:len(work)-1]
			acc := downTo[net]
			for _, a := range inArcs[net] {
				up := memo[a.From]
				if up == nil {
					continue
				}
				d := acc + a.D.Max()
				if up.isEnable {
					if prev, ok := best[a.From]; !ok || d > prev {
						best[a.From] = d
					}
					continue
				}
				if prev, ok := downTo[a.From]; !ok || d > prev {
					downTo[a.From] = d
					work = append(work, a.From)
				}
			}
		}
		out := make([]enableIn, 0, len(best))
		for net, d := range best {
			out = append(out, enableIn{net: net, delayToCtrl: d})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].net < out[j].net })
		return out
	}

	addSite := func(site SyncSite, elems []*syncelem.Element) {
		siteIdx := len(nw.Sites)
		for _, e := range elems {
			site.Elems = append(site.Elems, len(nw.Elems))
			nw.Elems = append(nw.Elems, e)
			nw.SiteOf = append(nw.SiteOf, siteIdx)
		}
		nw.Sites = append(nw.Sites, site)
	}

	for i := range nw.Design.Instances {
		inst := &nw.Design.Instances[i]
		cell := nw.Lib.Cell(inst.Ref)
		if cell == nil || !cell.IsSync() {
			continue
		}
		ctrlPin := cell.ControlPin()
		ctrlNetName, ok := inst.Conns[ctrlPin]
		if !ok {
			return fmt.Errorf("cluster: %s: control pin %s unconnected", inst.Name, ctrlPin)
		}
		ctrlNet := nw.NetIdx[ctrlNetName]
		ci, err := trace(ctrlNet)
		if err != nil {
			return fmt.Errorf("%w (control input of %s)", err, inst.Name)
		}
		if ci.isEnable || ci.sig < 0 {
			return fmt.Errorf("cluster: control input of %s is not a function of any clock", inst.Name)
		}
		dataPins := cell.DataPins()
		if len(dataPins) != 1 {
			return fmt.Errorf("cluster: %s (%s): synchronising elements must have exactly one data input, found %d", inst.Name, inst.Ref, len(dataPins))
		}
		dataNet := -1
		if n, ok := inst.Conns[dataPins[0]]; ok {
			dataNet = nw.NetIdx[n]
		} else {
			return fmt.Errorf("cluster: %s: data pin %s unconnected", inst.Name, dataPins[0])
		}
		outNet := -1
		if n, ok := inst.Conns[cell.Outputs()[0]]; ok {
			outNet = nw.NetIdx[n]
		}
		inverted := ci.parityOdd
		elems, err := syncelem.Build(inst.Name, cell.Kind, cell.Sync, nw.Clocks, ci.sig, inverted, ci.maxDelay, ci.minDelay)
		if err != nil {
			return err
		}
		addSite(SyncSite{
			Name: inst.Name, Kind: cell.Kind,
			DataNet: dataNet, OutNet: outNet, CtrlNet: ctrlNet,
			Sig: ci.sig, Inverted: inverted,
			CtrlMax: ci.maxDelay, CtrlMin: ci.minDelay,
		}, elems)

		// Enable paths into this element's control cone: one virtual
		// capture endpoint per enable net per control pulse, closing at
		// the pulse's leading edge advanced by the gating-logic depth
		// (the enable must be stable before the pulse it gates begins;
		// the clock network's own delay is conservatively ignored).
		for idx, en := range collectEnables(ctrlNet) {
			name := fmt.Sprintf("%s.en%d", inst.Name, idx)
			var enElems []*syncelem.Element
			for k, se := range elems {
				enElems = append(enElems, &syncelem.Element{
					Inst: name, Occur: k, Kind: celllib.EdgeTriggered,
					Sig:         ci.sig,
					IdealAssert: se.LeadAt, AssertEdge: se.LeadEdge,
					IdealClose: se.LeadAt, CloseEdge: se.LeadEdge,
					LeadEdge: se.LeadEdge, TrailEdge: se.LeadEdge,
					LeadAt: se.LeadAt, TrailAt: se.LeadAt,
					Port: true, PortOffset: -en.delayToCtrl,
				})
			}
			addSite(SyncSite{
				Name: name, IsPort: true, Dir: netlist.Output,
				Kind: celllib.EdgeTriggered, Sig: ci.sig,
				DataNet: en.net, OutNet: -1, CtrlNet: -1,
			}, enElems)
		}
	}

	for _, p := range nw.Design.Ports {
		if p.RefClock == "" {
			return fmt.Errorf("cluster: primary %s %q needs a clock reference for timing analysis", p.Dir, p.Name)
		}
		sig := nw.Clocks.Index(p.RefClock)
		if sig < 0 {
			return fmt.Errorf("cluster: port %q references unknown clock %q", p.Name, p.RefClock)
		}
		elems, err := syncelem.BuildPort(p.Name, nw.Clocks, sig, p.RefEdge, p.Offset)
		if err != nil {
			return err
		}
		net := nw.NetIdx[p.Name]
		site := SyncSite{Name: p.Name, IsPort: true, Dir: p.Dir, Kind: celllib.EdgeTriggered, Sig: sig,
			DataNet: -1, OutNet: -1, CtrlNet: -1}
		if p.Dir == netlist.Input {
			site.OutNet = net
		} else {
			site.DataNet = net
		}
		addSite(site, elems)
	}

	// The pure clock cone: clock source nets plus every traced net that is
	// not on the enable side.
	nw.ctrlNets = make([]bool, len(nw.Nets))
	for n := range clockNet {
		nw.ctrlNets[n] = true
	}
	for n, ci := range memo {
		if !ci.isEnable {
			nw.ctrlNets[n] = true
		}
	}
	return nil
}

// extractClusters partitions the combinational arcs into maximal connected
// clusters, excluding the pure clock cones, and pre-processes each.
func (nw *Network) extractClusters(arcs []Arc) error {
	n := len(nw.Nets)
	isCtrl := nw.ctrlNets
	if isCtrl == nil {
		isCtrl = make([]bool, n)
	}
	// A clock-cone net consumed as data is outside the supported class.
	for _, s := range nw.Sites {
		if s.DataNet >= 0 && isCtrl[s.DataNet] {
			return fmt.Errorf("cluster: control/clock net %q feeds the data input of %s; clock nets as data are not supported", nw.Nets[s.DataNet], s.Name)
		}
	}
	for i := range arcs {
		if isCtrl[arcs[i].From] && !isCtrl[arcs[i].To] {
			return fmt.Errorf("cluster: control net %q feeds data logic through instance %s", nw.Nets[arcs[i].From], arcs[i].Inst)
		}
	}

	// Union of data nets: weak components over data arcs.
	g := graph.New(n)
	for i := range arcs {
		if isCtrl[arcs[i].From] || isCtrl[arcs[i].To] {
			continue
		}
		if err := g.AddEdge(arcs[i].From, arcs[i].To); err != nil {
			return fmt.Errorf("cluster: arc of instance %s: %w", arcs[i].Inst, err)
		}
	}
	comp, _ := g.UndirectedComponents()
	byComp := make(map[int]*Cluster)
	getCluster := func(c int) *Cluster {
		cl, ok := byComp[c]
		if !ok {
			cl = &Cluster{ID: len(byComp), local: map[int]int{}, adj: map[int][]int{}}
			byComp[c] = cl
		}
		return cl
	}
	// Member nets: nets that carry data arcs or touch a sync terminal.
	touches := make([]bool, n)
	for i := range arcs {
		if !isCtrl[arcs[i].From] && !isCtrl[arcs[i].To] {
			touches[arcs[i].From] = true
			touches[arcs[i].To] = true
		}
	}
	for _, s := range nw.Sites {
		if s.OutNet >= 0 && !isCtrl[s.OutNet] {
			touches[s.OutNet] = true
		}
		if s.DataNet >= 0 {
			touches[s.DataNet] = true
		}
	}
	for net := 0; net < n; net++ {
		if !touches[net] || isCtrl[net] {
			continue
		}
		cl := getCluster(comp[net])
		cl.local[net] = len(cl.Nets)
		cl.Nets = append(cl.Nets, net)
	}
	for i := range arcs {
		if isCtrl[arcs[i].From] || isCtrl[arcs[i].To] {
			continue
		}
		cl := getCluster(comp[arcs[i].From])
		cl.adj[arcs[i].From] = append(cl.adj[arcs[i].From], len(cl.Arcs))
		cl.Arcs = append(cl.Arcs, arcs[i])
	}
	// Endpoints.
	for ei := range nw.Elems {
		site := nw.Sites[nw.SiteOf[ei]]
		if site.OutNet >= 0 && touches[site.OutNet] && !isCtrl[site.OutNet] {
			cl := getCluster(comp[site.OutNet])
			cl.Inputs = append(cl.Inputs, In{Elem: ei, Net: site.OutNet})
		}
		if site.DataNet >= 0 && touches[site.DataNet] {
			cl := getCluster(comp[site.DataNet])
			cl.Outputs = append(cl.Outputs, Out{Elem: ei, Net: site.DataNet})
		}
	}
	// Deterministic cluster order: by smallest member net id.
	var clusters []*Cluster
	for _, cl := range byComp {
		sort.Ints(cl.Nets)
		// Rebuild local index after sorting.
		for i, netID := range cl.Nets {
			cl.local[netID] = i
		}
		clusters = append(clusters, cl)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Nets[0] < clusters[j].Nets[0] })
	for i, cl := range clusters {
		cl.ID = i
		sort.Slice(cl.Inputs, func(a, b int) bool { return cl.Inputs[a].Elem < cl.Inputs[b].Elem })
		sort.Slice(cl.Outputs, func(a, b int) bool { return cl.Outputs[a].Elem < cl.Outputs[b].Elem })
		if err := nw.preprocess(cl); err != nil {
			return err
		}
	}
	nw.Clusters = clusters
	return nil
}

// preprocess checks acyclicity, orders the cluster, computes input→output
// reachability and solves the break-open plan (§7).
func (nw *Network) preprocess(cl *Cluster) error {
	local := graph.New(len(cl.Nets))
	for _, a := range cl.Arcs {
		if err := local.AddEdge(cl.local[a.From], cl.local[a.To]); err != nil {
			return fmt.Errorf("cluster %d: arc of instance %s: %w", cl.ID, a.Inst, err)
		}
	}
	orderLocal, err := local.TopoSort()
	if err != nil {
		cyc := local.FindCycle()
		names := make([]string, len(cyc))
		for i, v := range cyc {
			names[i] = nw.Nets[cl.Nets[v]]
		}
		return fmt.Errorf("cluster %d: combinational cycle through nets %v (violates the §3 acyclicity assumption)", cl.ID, names)
	}
	cl.Order = make([]int, len(orderLocal))
	for i, v := range orderLocal {
		cl.Order[i] = cl.Nets[v]
	}
	// Reachability input→output.
	cl.Reach = make([][]bool, len(cl.Inputs))
	for ii, in := range cl.Inputs {
		mask := local.ReachableFrom(cl.local[in.Net])
		row := make([]bool, len(cl.Outputs))
		for oi, out := range cl.Outputs {
			row[oi] = mask[cl.local[out.Net]]
		}
		cl.Reach[ii] = row
	}
	// Break-open outputs.
	outs := make([]breakopen.Output, len(cl.Outputs))
	for oi, out := range cl.Outputs {
		o := breakopen.Output{ID: oi, Close: nw.Elems[out.Elem].IdealClose}
		for ii := range cl.Inputs {
			if cl.Reach[ii][oi] {
				o.Asserts = append(o.Asserts, nw.Elems[cl.Inputs[ii].Elem].IdealAssert)
			}
		}
		outs[oi] = o
	}
	plan, err := breakopen.Solve(nw.Clocks.Overall(), nw.EdgeTimes, outs)
	if err != nil {
		return fmt.Errorf("cluster %d: %w", cl.ID, err)
	}
	cl.Plan = plan
	return nil
}

// TotalPasses sums the analysis passes over all clusters (pre-processing
// statistic reported alongside Table 1).
func (nw *Network) TotalPasses() int {
	total := 0
	for _, cl := range nw.Clusters {
		total += cl.Plan.Passes()
	}
	return total
}

// ElemsOf returns the element indices of the named site (instance, port or
// enable endpoint).
func (nw *Network) ElemsOf(name string) []int {
	for _, s := range nw.Sites {
		if s.Name == name {
			return s.Elems
		}
	}
	return nil
}
