package cluster

import (
	"testing"
)

// checkLevels validates the level CSR invariants of a compiled design:
// LevelOrder is a permutation of the cluster ids grouped by LevelStart,
// ascending within each level, and every acyclic inter-cluster edge goes
// strictly upward in level.
func checkLevels(t *testing.T, cd *CompiledDesign) {
	t.Helper()
	nc := len(cd.Network.Clusters)
	if len(cd.Level) != nc || len(cd.LevelOrder) != nc {
		t.Fatalf("level array sizes: Level=%d LevelOrder=%d clusters=%d",
			len(cd.Level), len(cd.LevelOrder), nc)
	}
	if cd.LevelStart[0] != 0 || int(cd.LevelStart[len(cd.LevelStart)-1]) != nc {
		t.Fatalf("LevelStart bounds %v (clusters %d)", cd.LevelStart, nc)
	}
	seen := make([]bool, nc)
	for l := 0; l < cd.NumLevels(); l++ {
		lo, hi := cd.LevelStart[l], cd.LevelStart[l+1]
		if lo > hi {
			t.Fatalf("LevelStart not monotone at level %d: %v", l, cd.LevelStart)
		}
		for i := lo; i < hi; i++ {
			c := cd.LevelOrder[i]
			if seen[c] {
				t.Fatalf("cluster %d appears twice in LevelOrder", c)
			}
			seen[c] = true
			if int(cd.Level[c]) != l {
				t.Fatalf("cluster %d in level %d group but Level=%d", c, l, cd.Level[c])
			}
			if i > lo && cd.LevelOrder[i-1] >= c {
				t.Fatalf("level %d not ascending by id: %v", l, cd.LevelOrder[lo:hi])
			}
		}
	}
	for _, ok := range seen {
		if !ok {
			t.Fatal("LevelOrder is not a permutation of the cluster ids")
		}
	}
	// Re-derive the inter-cluster edges and check the level property. An
	// edge into or out of the final level may close a cycle (levelize
	// lumps cyclic clusters there); all other edges must ascend.
	producers := map[int][]int{}
	for _, cl := range cd.Network.Clusters {
		for _, out := range cl.Outputs {
			producers[out.Elem] = append(producers[out.Elem], cl.ID)
		}
	}
	last := int32(cd.NumLevels() - 1)
	cyclicFinal := false
	for _, cl := range cd.Network.Clusters {
		for _, in := range cl.Inputs {
			for _, p := range producers[in.Elem] {
				if p == cl.ID {
					continue
				}
				if cd.Level[p] >= cd.Level[cl.ID] {
					if cd.Level[p] == last && cd.Level[cl.ID] == last {
						cyclicFinal = true
						continue
					}
					t.Fatalf("edge %d(level %d) -> %d(level %d) does not ascend",
						p, cd.Level[p], cl.ID, cd.Level[cl.ID])
				}
			}
		}
	}
	_ = cyclicFinal
}

func TestLevelizePipeline(t *testing.T) {
	nw := build(t, pipeText)
	cd := Compile(nw)
	checkLevels(t, cd)
	// The two-stage pipe has three combinational regions chained through
	// latches: IN→l1, l1→l2, l2→OUT. Levels must reflect the chain.
	if cd.NumLevels() != 3 {
		t.Fatalf("pipe levels = %d, want 3 (starts %v)", cd.NumLevels(), cd.LevelStart)
	}
}

// TestLevelizeFeedback: a state machine whose cluster feeds itself through
// a flip-flop must levelize (the self-loop is not an ordering edge).
func TestLevelizeFeedback(t *testing.T) {
	nw := build(t, `
design fsm
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset -1ns
inst g1 NAND2_X1 A=IN B=q0 Y=n0
inst f0 DFF_X1 D=n0 CK=phi Q=q0
inst g2 INV_X1 A=q0 Y=OUT
end
`)
	cd := Compile(nw)
	checkLevels(t, cd)
}

// TestLevelizeCrossFeedback: two clusters feeding each other through
// latches form a cycle in the cluster DAG; both land on the final level
// and the CSR invariants still hold.
func TestLevelizeCrossFeedback(t *testing.T) {
	nw := build(t, `
design cross
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi1 edge fall offset -1ns
inst ga NAND2_X1 A=IN B=qb Y=na
inst la DLATCH_X1 D=na G=phi1 Q=qa
inst gb NAND2_X1 A=qa B=qa Y=nb
inst lb DLATCH_X1 D=nb G=phi2 Q=qb
inst go INV_X1 A=qa Y=OUT
end
`)
	cd := Compile(nw)
	checkLevels(t, cd)
}

// TestLevelizeDeterministic: compiling the same network shape twice yields
// identical level arrays.
func TestLevelizeDeterministic(t *testing.T) {
	cd1 := Compile(build(t, pipeText))
	cd2 := Compile(build(t, pipeText))
	if len(cd1.LevelOrder) != len(cd2.LevelOrder) {
		t.Fatal("level order lengths differ")
	}
	for i := range cd1.LevelOrder {
		if cd1.LevelOrder[i] != cd2.LevelOrder[i] {
			t.Fatalf("LevelOrder[%d] differs: %d vs %d", i, cd1.LevelOrder[i], cd2.LevelOrder[i])
		}
	}
	for i := range cd1.Level {
		if cd1.Level[i] != cd2.Level[i] {
			t.Fatalf("Level[%d] differs", i)
		}
	}
}

// TestCloneArcsSharesLevels: the copy-on-write twin shares the immutable
// level arrays rather than recomputing them.
func TestCloneArcsSharesLevels(t *testing.T) {
	cd := Compile(build(t, pipeText))
	cd2 := cd.CloneArcs()
	if &cd.Level[0] != &cd2.Level[0] || &cd.LevelOrder[0] != &cd2.LevelOrder[0] ||
		&cd.LevelStart[0] != &cd2.LevelStart[0] {
		t.Fatal("CloneArcs must share the level arrays")
	}
}
