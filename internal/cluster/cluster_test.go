package cluster

import (
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/delaycalc"
	"hummingbird/internal/netlist"
)

var lib = celllib.Default()

func build(t *testing.T, text string) *Network {
	t.Helper()
	nw, err := tryBuild(text)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func tryBuild(text string) (*Network, error) {
	d, err := netlist.ParseString(text)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(lib); err != nil {
		return nil, err
	}
	cs, err := d.ClockSet()
	if err != nil {
		return nil, err
	}
	calc, err := delaycalc.New(lib, d, delaycalc.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return Build(lib, d, cs, calc)
}

const pipeText = `
design pipe
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset -1ns
inst g1 INV_X1 A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi1 Q=n2
inst g2 NAND2_X1 A=n2 B=n2 Y=n3
inst g3 INV_X1 A=n3 Y=n4
inst l2 DLATCH_X1 D=n4 G=phi2 Q=n5
inst g4 INV_X1 A=n5 Y=OUT
end
`

func TestBuildPipe(t *testing.T) {
	nw := build(t, pipeText)
	// Sites: l1, l2 plus ports IN, OUT.
	if len(nw.Sites) != 4 {
		t.Fatalf("sites = %d", len(nw.Sites))
	}
	if len(nw.Elems) != 4 {
		t.Fatalf("elems = %d", len(nw.Elems))
	}
	// Clusters: IN->l1.D; l1.Q->l2.D; l2.Q->OUT. Three clusters.
	if len(nw.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(nw.Clusters))
	}
	for _, cl := range nw.Clusters {
		if len(cl.Inputs) != 1 || len(cl.Outputs) != 1 {
			t.Fatalf("cluster %d endpoints: %d in, %d out", cl.ID, len(cl.Inputs), len(cl.Outputs))
		}
		if !cl.Reach[0][0] {
			t.Fatalf("cluster %d input does not reach output", cl.ID)
		}
		if cl.Plan.Passes() != 1 {
			t.Fatalf("cluster %d passes = %d, want 1", cl.ID, cl.Plan.Passes())
		}
	}
	if nw.TotalPasses() != 3 {
		t.Fatalf("total passes = %d", nw.TotalPasses())
	}
}

func TestControlPathDirect(t *testing.T) {
	nw := build(t, pipeText)
	var l1 *SyncSite
	for i := range nw.Sites {
		if nw.Sites[i].Name == "l1" {
			l1 = &nw.Sites[i]
		}
	}
	if l1 == nil {
		t.Fatal("l1 site missing")
	}
	if l1.CtrlMax != 0 || l1.CtrlMin != 0 || l1.Inverted {
		t.Fatalf("direct control path: %+v", l1)
	}
	if nw.Clocks.Signal(l1.Sig).Name != "phi1" {
		t.Fatal("wrong controlling clock")
	}
	e := nw.Elems[l1.Elems[0]]
	if e.LeadAt != 0 || e.TrailAt != 40*clock.Ns {
		t.Fatalf("element pulse %v..%v", e.LeadAt, e.TrailAt)
	}
}

const bufferedClockText = `
design bufclk
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst cb1 BUF_X2 A=phi Y=ck1
inst cb2 INV_X2 A=ck1 Y=ckn
inst l1 DLATCH_X1 D=IN G=ckn Q=n1
inst g1 INV_X1 A=n1 Y=OUT
end
`

func TestControlPathBufferedInverted(t *testing.T) {
	nw := build(t, bufferedClockText)
	var l1 *SyncSite
	for i := range nw.Sites {
		if nw.Sites[i].Name == "l1" {
			l1 = &nw.Sites[i]
		}
	}
	if !l1.Inverted {
		t.Fatal("inversion parity not detected")
	}
	if l1.CtrlMax <= 0 || l1.CtrlMin <= 0 || l1.CtrlMax < l1.CtrlMin {
		t.Fatalf("control delays: max=%v min=%v", l1.CtrlMax, l1.CtrlMin)
	}
	// The inverted latch is transparent while phi is low: lead at 40ns.
	e := nw.Elems[l1.Elems[0]]
	if e.LeadAt != 40*clock.Ns || e.Width != 60*clock.Ns {
		t.Fatalf("effective pulse lead=%v width=%v", e.LeadAt, e.Width)
	}
	// Clock-cone gates must not appear in data clusters.
	for _, cl := range nw.Clusters {
		for _, a := range cl.Arcs {
			if a.Inst == "cb1" || a.Inst == "cb2" {
				t.Fatalf("control gate %s leaked into cluster %d", a.Inst, cl.ID)
			}
		}
	}
}

func TestControlPathErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"PI drives control", `
design bad1
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
input EN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst l1 DLATCH_X1 D=IN G=EN Q=n1
inst g1 INV_X1 A=n1 Y=OUT
end
`, "not a function of any clock"},
		{"enable path", `
design bad2
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst l0 DLATCH_X1 D=IN G=phi Q=en
inst l1 DLATCH_X1 D=IN G=en Q=n1
inst g1 INV_X1 A=n1 Y=OUT
end
`, "not a function of any clock"},
		{"two clocks", `
design bad3
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge fall offset 0
output OUT clock phi1 edge fall offset 0
inst ga AND2_X1 A=phi1 B=phi2 Y=gck
inst l1 DLATCH_X1 D=IN G=gck Q=n1
inst g1 INV_X1 A=n1 Y=OUT
end
`, "more than one clock"},
		{"non-unate control", `
design bad4
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst gx XOR2_X1 A=phi B=phi Y=gck
inst l1 DLATCH_X1 D=IN G=gck Q=n1
inst g1 INV_X1 A=n1 Y=OUT
end
`, "non-monotonic"},
		{"mixed parity", `
design bad5
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst gi INV_X1 A=phi Y=phin
inst gm AND2_X1 A=phi B=phin Y=gck
inst l1 DLATCH_X1 D=IN G=gck Q=n1
inst g1 INV_X1 A=n1 Y=OUT
end
`, "both inversion parities"},
		{"clock as data", `
design bad6
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst l1 DLATCH_X1 D=phi G=phi Q=n1
inst g1 INV_X1 A=n1 Y=OUT
end
`, "data"},
	}
	for _, c := range cases {
		_, err := tryBuild(c.text)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCombCycleRejected(t *testing.T) {
	_, err := tryBuild(`
design cyc
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst g1 NAND2_X1 A=IN B=fb Y=x
inst g2 INV_X1 A=x Y=fb
inst g3 INV_X1 A=x Y=OUT
end
`)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("combinational cycle accepted: %v", err)
	}
}

func TestCycleThroughLatchAllowed(t *testing.T) {
	// A loop broken by a transparent latch is legal (§3: only portions of
	// combinational logic must be acyclic).
	nw := build(t, `
design latchloop
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge fall offset 0
output OUT clock phi1 edge fall offset 0
inst g1 NAND2_X1 A=IN B=q2 Y=d1
inst l1 DLATCH_X1 D=d1 G=phi1 Q=q1
inst g2 INV_X1 A=q1 Y=d2
inst l2 DLATCH_X1 D=d2 G=phi2 Q=q2
inst g3 INV_X1 A=q1 Y=OUT
end
`)
	if len(nw.Clusters) == 0 {
		t.Fatal("no clusters")
	}
}

func TestDirectLatchToLatch(t *testing.T) {
	// l1.Q wired straight into l2.D: a single-net cluster with a
	// zero-length path.
	nw := build(t, `
design direct
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge fall offset 0
output OUT clock phi1 edge fall offset 0
inst l1 DLATCH_X1 D=IN G=phi1 Q=q1
inst l2 DLATCH_X1 D=q1 G=phi2 Q=q2
inst g1 INV_X1 A=q2 Y=OUT
end
`)
	var single *Cluster
	for _, cl := range nw.Clusters {
		if len(cl.Nets) == 1 && nw.Nets[cl.Nets[0]] == "q1" {
			single = cl
		}
	}
	if single == nil {
		t.Fatal("no single-net cluster for q1")
	}
	if len(single.Inputs) != 1 || len(single.Outputs) != 1 {
		t.Fatalf("q1 cluster endpoints: %+v", single)
	}
	if !single.Reach[0][0] {
		t.Fatal("zero-length path not reachable")
	}
}

func TestMultifrequencyReplication(t *testing.T) {
	nw := build(t, `
design mfreq
clock slow period 100ns rise 0 fall 40ns
clock fast period 50ns rise 5ns fall 25ns
input IN clock slow edge fall offset 0
output OUT clock slow edge fall offset 0
inst l1 DLATCH_X1 D=IN G=fast Q=q1
inst g1 INV_X1 A=q1 Y=OUT
end
`)
	elems := nw.ElemsOf("l1")
	if len(elems) != 2 {
		t.Fatalf("fast latch elements = %d, want 2", len(elems))
	}
	if nw.Elems[elems[0]].IdealAssert != 5*clock.Ns || nw.Elems[elems[1]].IdealAssert != 55*clock.Ns {
		t.Fatalf("replica assert times %v %v",
			nw.Elems[elems[0]].IdealAssert, nw.Elems[elems[1]].IdealAssert)
	}
	// The cluster feeding OUT sees two input occurrences.
	for _, cl := range nw.Clusters {
		for _, o := range cl.Outputs {
			if nw.Elems[o.Elem].Inst == "OUT" {
				if len(cl.Inputs) != 2 {
					t.Fatalf("OUT cluster inputs = %d, want 2", len(cl.Inputs))
				}
			}
		}
	}
}

func TestPortsNeedClockRefs(t *testing.T) {
	_, err := tryBuild(`
design noref
clock phi period 100ns rise 0 fall 40ns
input IN
output OUT clock phi edge fall offset 0
inst g1 INV_X1 A=IN Y=OUT
end
`)
	if err == nil || !strings.Contains(err.Error(), "clock reference") {
		t.Fatalf("missing port clock ref accepted: %v", err)
	}
}

func TestEdgeTimesDistinctSorted(t *testing.T) {
	nw := build(t, pipeText)
	et := nw.EdgeTimes
	if len(et) != 4 {
		t.Fatalf("edge times = %v", et)
	}
	for i := 1; i < len(et); i++ {
		if et[i-1] >= et[i] {
			t.Fatalf("edge times not strictly sorted: %v", et)
		}
	}
}

func TestUnresolvedReferenceError(t *testing.T) {
	d := netlist.New("u")
	d.AddClock(clock.Signal{Name: "phi", Period: 100, RiseAt: 0, FallAt: 40})
	d.AddInstance(netlist.Instance{Name: "x", Ref: "GHOST", Conns: map[string]string{}})
	cs, _ := d.ClockSet()
	calc, err := delaycalc.New(lib, netlist.New("empty-but-valid"), delaycalc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(lib, d, cs, calc); err == nil {
		t.Fatal("unresolved reference accepted")
	}
}

func TestFigure1NetworkNeedsTwoPasses(t *testing.T) {
	// The Figure 1 configuration as a real netlist: latches on 4 phases
	// around one shared gate.
	nw := build(t, `
design fig1
clock phi1 period 200ns rise 0 fall 30ns
clock phi2 period 200ns rise 50ns fall 80ns
clock phi3 period 200ns rise 100ns fall 130ns
clock phi4 period 200ns rise 150ns fall 180ns
input A clock phi4 edge fall offset 0
input B clock phi2 edge fall offset 0
output Y1 clock phi3 edge rise offset 0
output Y2 clock phi1 edge rise offset 0
inst la DLATCH_X1 D=A G=phi1 Q=qa
inst lb DLATCH_X1 D=B G=phi3 Q=qb
inst g NAND2_X1 A=qa B=qb Y=m
inst lc DLATCH_X1 D=m G=phi2 Q=qc
inst ld DLATCH_X1 D=m G=phi4 Q=qd
inst gc INV_X1 A=qc Y=Y1
inst gd INV_X1 A=qd Y=Y2
end
`)
	// Find the cluster containing net m.
	var target *Cluster
	mid := nw.NetIdx["m"]
	for _, cl := range nw.Clusters {
		if cl.LocalIndex(mid) >= 0 {
			target = cl
		}
	}
	if target == nil {
		t.Fatal("cluster with net m not found")
	}
	if target.Plan.Passes() != 2 {
		t.Fatalf("Figure 1 cluster passes = %d, want 2", target.Plan.Passes())
	}
}

// TestEnablePathGatedClock: AND-gated clock — phi gated by a latch-driven
// enable. The clock side remains the control spine; the enable net becomes
// a virtual capture endpoint closing at the gated pulse's leading edge,
// advanced by the gating gate's delay.
func TestEnablePathGatedClock(t *testing.T) {
	nw := build(t, `
design gated
clock phi period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi edge fall offset 0
inst le DLATCH_X1 D=IN G=phi2 Q=en
inst ga AND2_X1 A=phi B=en Y=gck
inst l1 DLATCH_X1 D=IN G=gck Q=q1
inst g1 INV_X1 A=q1 Y=OUT
end
`)
	// l1's control spine resolves to phi, non-inverted, through the AND.
	var l1 *SyncSite
	for i := range nw.Sites {
		if nw.Sites[i].Name == "l1" {
			l1 = &nw.Sites[i]
		}
	}
	if l1 == nil {
		t.Fatal("l1 missing")
	}
	if nw.Clocks.Signal(l1.Sig).Name != "phi" || l1.Inverted {
		t.Fatalf("gated control spine wrong: %+v", l1)
	}
	if l1.CtrlMax <= 0 {
		t.Fatal("gating gate delay not accounted in Oat")
	}
	// One enable endpoint exists, capturing the en net.
	ids := nw.ElemsOf("l1.en0")
	if len(ids) != 1 {
		t.Fatalf("enable endpoint elements = %d, want 1", len(ids))
	}
	e := nw.Elems[ids[0]]
	if !e.Port || e.IdealClose != 0 {
		t.Fatalf("enable endpoint closes at %v (want the phi leading edge, 0)", e.IdealClose)
	}
	if e.PortOffset >= 0 {
		t.Fatalf("enable endpoint offset %v should be negative (gating depth)", e.PortOffset)
	}
	// The endpoint is a cluster output on net en.
	enNet := nw.NetIdx["en"]
	found := false
	for _, cl := range nw.Clusters {
		for _, o := range cl.Outputs {
			if o.Elem == ids[0] && o.Net == enNet {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("enable endpoint not a cluster output")
	}
	// The AND gate output (gck) stays out of data clusters.
	gck := nw.NetIdx["gck"]
	for _, cl := range nw.Clusters {
		if cl.LocalIndex(gck) >= 0 {
			t.Fatal("gating gate output leaked into a data cluster")
		}
	}
}

// TestEnablePathFromPI: a primary input may gate a clock; the PI becomes
// the enable launch.
func TestEnablePathFromPI(t *testing.T) {
	nw := build(t, `
design pigate
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
input EN clock phi edge rise offset 0
output OUT clock phi edge fall offset 0
inst ga AND2_X1 A=phi B=EN Y=gck
inst l1 DLATCH_X1 D=IN G=gck Q=q1
inst g1 INV_X1 A=q1 Y=OUT
end
`)
	ids := nw.ElemsOf("l1.en0")
	if len(ids) != 1 {
		t.Fatalf("enable endpoints = %d", len(ids))
	}
	// The EN cluster: PI launch (EN) -> enable capture, zero-length path.
	enNet := nw.NetIdx["EN"]
	var cl0 *Cluster
	for _, cl := range nw.Clusters {
		if cl.LocalIndex(enNet) >= 0 {
			cl0 = cl
		}
	}
	if cl0 == nil {
		t.Fatal("EN cluster missing")
	}
	if len(cl0.Inputs) != 1 || len(cl0.Outputs) != 1 || !cl0.Reach[0][0] {
		t.Fatalf("EN cluster endpoints wrong: %d in %d out", len(cl0.Inputs), len(cl0.Outputs))
	}
}

// TestEnablePathReplication: gating a fast clock replicates the enable
// endpoint per pulse.
func TestEnablePathReplication(t *testing.T) {
	nw := build(t, `
design gatedfast
clock slow period 100ns rise 0 fall 40ns
clock fast period 50ns rise 5ns fall 25ns
input IN clock slow edge fall offset 0
input EN clock slow edge rise offset 0
output OUT clock slow edge fall offset 0
inst ga AND2_X1 A=fast B=EN Y=gck
inst l1 DLATCH_X1 D=IN G=gck Q=q1
inst g1 INV_X1 A=q1 Y=OUT
end
`)
	ids := nw.ElemsOf("l1.en0")
	if len(ids) != 2 {
		t.Fatalf("enable endpoint replicas = %d, want 2", len(ids))
	}
	if nw.Elems[ids[0]].IdealClose != 5*clock.Ns || nw.Elems[ids[1]].IdealClose != 55*clock.Ns {
		t.Fatalf("replica closures %v %v", nw.Elems[ids[0]].IdealClose, nw.Elems[ids[1]].IdealClose)
	}
}

// TestThreeSettlingTimes: six equally spaced phases with three
// launch/capture pairs whose zones are pairwise disjoint force a shared
// cluster to three analysis passes — the "minimum number of settling
// times" generalises beyond Figure 1's two.
func TestThreeSettlingTimes(t *testing.T) {
	nw := build(t, `
design six
clock p1 period 300ns rise 0 fall 30ns
clock p2 period 300ns rise 50ns fall 80ns
clock p3 period 300ns rise 100ns fall 130ns
clock p4 period 300ns rise 150ns fall 180ns
clock p5 period 300ns rise 200ns fall 230ns
clock p6 period 300ns rise 250ns fall 280ns
input A clock p6 edge fall offset 0
input B clock p2 edge fall offset 0
input C clock p4 edge fall offset 0
output Y1 clock p3 edge rise offset 0
output Y2 clock p5 edge rise offset 0
output Y3 clock p1 edge rise offset 0
inst la DLATCH_X1 D=A G=p1 Q=qa
inst lb DLATCH_X1 D=B G=p3 Q=qb
inst lc DLATCH_X1 D=C G=p5 Q=qc
inst g1 NAND3_X1 A=qa B=qb C=qc Y=m
inst ld DLATCH_X1 D=m G=p2 Q=qd
inst le DLATCH_X1 D=m G=p4 Q=qe
inst lf DLATCH_X1 D=m G=p6 Q=qf
inst o1 INV_X1 A=qd Y=Y1
inst o2 INV_X1 A=qe Y=Y2
inst o3 INV_X1 A=qf Y=Y3
end
`)
	mid := nw.NetIdx["m"]
	for _, cl := range nw.Clusters {
		if cl.LocalIndex(mid) < 0 {
			continue
		}
		if cl.Plan.Passes() != 3 {
			t.Fatalf("six-phase shared cluster passes = %d, want 3", cl.Plan.Passes())
		}
		// Each capture lands in its own pass.
		seen := map[int]bool{}
		for oi := range cl.Outputs {
			seen[cl.Plan.Assign[oi]] = true
		}
		if len(seen) != 3 {
			t.Fatalf("captures share passes: %v", cl.Plan.Assign)
		}
		return
	}
	t.Fatal("shared cluster not found")
}
