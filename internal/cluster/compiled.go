package cluster

import (
	"hummingbird/internal/clock"
)

// CompiledCluster augments one cluster with flat CSR-style index arrays so
// the block-analysis kernel can walk the topology without map lookups. The
// arrays are frozen at Compile time and never mutated; the only per-analysis
// state they are read against lives in sta.AnalysisState.
type CompiledCluster struct {
	*Cluster

	// OrderLocal is Cluster.Order with every net id replaced by its local
	// index within Nets.
	OrderLocal []int32
	// ArcStart/ArcIdx are the CSR adjacency of arcs leaving each local net:
	// arcs out of local index li are ArcIdx[ArcStart[li]:ArcStart[li+1]],
	// each entry an index into Cluster.Arcs.
	ArcStart []int32
	ArcIdx   []int32
	// FromLocal/ToLocal give each arc's endpoints as local net indices,
	// parallel to Cluster.Arcs.
	FromLocal []int32
	ToLocal   []int32
	// InLocal/OutLocal give each Input's/Output's net as a local index,
	// parallel to Cluster.Inputs/Outputs.
	InLocal  []int32
	OutLocal []int32
}

// CompiledDesign is the frozen, analysis-ready view of one elaborated
// network: the structural half of the old mutable Network. It is produced
// once by Compile and is safe to share read-only across goroutines and
// sessions — no analysis mutates it. Per-analysis values (element offsets,
// slacks, scratch) live in sta.AnalysisState.
//
// CompiledDesign embeds *Network, so all read-only Network accessors
// (Nets, Elems, Clusters, ElemsOf, TotalPasses, ...) apply directly. The
// embedded network's element Odz fields are frozen at their initial values
// and must not be written; analyses carry their own offset vectors.
type CompiledDesign struct {
	*Network

	// Arcs is the design-wide flat arc backing: every cluster's Arcs slice
	// is a subslice of it, laid out in cluster order. CloneArcs copies this
	// one backing to unshare delays.
	Arcs []Arc

	// CC holds the compiled view of each cluster, parallel to
	// Network.Clusters.
	CC []*CompiledCluster

	// ElemClusters[e] lists the cluster ids owning element e's terminals
	// (its data-input endpoint and its output endpoint), for incremental
	// re-analysis after a slack transfer moves that element.
	ElemClusters [][]int

	// InitialOdz[e] is the offset Algorithm 1 starts element e from
	// (syncelem.InitialOdz); sta.NewState copies it into each fresh state.
	InitialOdz []clock.Time

	// MaxClusterNets is the largest cluster net count, sizing the pooled
	// per-cluster scratch arenas.
	MaxClusterNets int

	// Level[c] is cluster c's topological level in the cluster DAG: the
	// graph whose edge A→B exists when some synchronising element's data
	// input is captured by A (an Out of A) and whose output asserts into B
	// (an In of B). Levels order clusters for the level-scheduled parallel
	// analysis and group the incremental dirty walk; they are a scheduling
	// structure only — within one block analysis clusters touch disjoint
	// result slices, so no level ever *has* to finish before the next
	// starts. Clusters on combinational-feedback cycles through latches
	// (which levelization cannot order) are all placed together on one
	// final level.
	Level []int32

	// LevelStart/LevelOrder are the flat CSR form of the level grouping:
	// the clusters of level L are LevelOrder[LevelStart[L]:LevelStart[L+1]],
	// ascending by cluster id. Because the shared arc backing is laid out
	// in cluster-id order, a within-level walk of LevelOrder sweeps the
	// backing front to back — the cache-linear traversal the parallel
	// kernels chunk over.
	LevelStart []int32
	LevelOrder []int32
}

// NumLevels returns the number of topological levels in the cluster DAG.
func (cd *CompiledDesign) NumLevels() int { return len(cd.LevelStart) - 1 }

// Compile freezes an elaborated network into its analysis-ready form. The
// network's per-cluster arc slices are re-laid into one contiguous backing
// (cl.Arcs become subslices of cd.Arcs; within-cluster arc order — and so
// every arc index — is preserved), and the CSR index arrays, element→cluster
// map and initial offset vector are precomputed. After Compile the network
// structure must not change; delay edits go through CloneArcs.
func Compile(nw *Network) *CompiledDesign {
	cd := &CompiledDesign{
		Network:      nw,
		CC:           make([]*CompiledCluster, len(nw.Clusters)),
		ElemClusters: make([][]int, len(nw.Elems)),
		InitialOdz:   make([]clock.Time, len(nw.Elems)),
	}

	total := 0
	for _, cl := range nw.Clusters {
		total += len(cl.Arcs)
	}
	cd.Arcs = make([]Arc, 0, total)
	for _, cl := range nw.Clusters {
		start := len(cd.Arcs)
		cd.Arcs = append(cd.Arcs, cl.Arcs...)
		cl.Arcs = cd.Arcs[start : start+len(cl.Arcs) : start+len(cl.Arcs)]
	}

	for i, cl := range nw.Clusters {
		cd.CC[i] = compileCluster(cl)
		if n := len(cl.Nets); n > cd.MaxClusterNets {
			cd.MaxClusterNets = n
		}
	}

	add := func(e, cl int) {
		for _, have := range cd.ElemClusters[e] {
			if have == cl {
				return
			}
		}
		cd.ElemClusters[e] = append(cd.ElemClusters[e], cl)
	}
	for _, cl := range nw.Clusters {
		for _, in := range cl.Inputs {
			add(in.Elem, cl.ID)
		}
		for _, out := range cl.Outputs {
			add(out.Elem, cl.ID)
		}
	}

	for i, e := range nw.Elems {
		cd.InitialOdz[i] = e.InitialOdz()
	}
	cd.levelize()
	return cd
}

// levelize computes the topological level of every cluster over the
// inter-cluster element edges and lays the per-level cluster order out as
// flat CSR arrays (see the CompiledDesign field docs). Deterministic:
// edges are derived from the clusters' sorted Inputs/Outputs and levels
// from a Kahn relaxation whose result is independent of visit order.
func (cd *CompiledDesign) levelize() {
	nc := len(cd.Network.Clusters)
	cd.Level = make([]int32, nc)
	if nc == 0 {
		cd.LevelStart = []int32{0}
		return
	}

	// producers[e] lists the clusters capturing into element e (e's data
	// input is one of their Outputs).
	producers := make(map[int][]int, len(cd.Elems))
	for _, cl := range cd.Network.Clusters {
		for _, out := range cl.Outputs {
			producers[out.Elem] = append(producers[out.Elem], cl.ID)
		}
	}
	// Adjacency producer→consumer, deduplicated; self-loops (a latch whose
	// input and output touch the same cluster) carry no ordering and are
	// dropped.
	adj := make([][]int32, nc)
	indeg := make([]int32, nc)
	seen := make(map[int64]bool)
	for _, cl := range cd.Network.Clusters {
		for _, in := range cl.Inputs {
			for _, p := range producers[in.Elem] {
				if p == cl.ID {
					continue
				}
				key := int64(p)<<32 | int64(cl.ID)
				if seen[key] {
					continue
				}
				seen[key] = true
				adj[p] = append(adj[p], int32(cl.ID))
				indeg[cl.ID]++
			}
		}
	}

	// Kahn with level relaxation: level(c) = 1 + max level over its
	// predecessors. Clusters left with positive in-degree sit on cycles
	// (or downstream of one); they all land on one final level.
	queue := make([]int32, 0, nc)
	for c := 0; c < nc; c++ {
		if indeg[c] == 0 {
			queue = append(queue, int32(c))
		}
	}
	var maxLevel int32
	processed := 0
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		processed++
		if cd.Level[c] > maxLevel {
			maxLevel = cd.Level[c]
		}
		for _, d := range adj[c] {
			if l := cd.Level[c] + 1; l > cd.Level[d] {
				cd.Level[d] = l
			}
			if indeg[d]--; indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if processed < nc {
		cyclic := maxLevel + 1
		for c := 0; c < nc; c++ {
			if indeg[c] > 0 {
				cd.Level[c] = cyclic
			}
		}
		maxLevel = cyclic
	}

	// Counting sort into the CSR arrays; within a level ascending cluster
	// id = ascending arc-backing offset.
	nl := int(maxLevel) + 1
	cd.LevelStart = make([]int32, nl+1)
	for _, l := range cd.Level {
		cd.LevelStart[l+1]++
	}
	for l := 0; l < nl; l++ {
		cd.LevelStart[l+1] += cd.LevelStart[l]
	}
	cd.LevelOrder = make([]int32, nc)
	fill := append([]int32(nil), cd.LevelStart[:nl]...)
	for c := 0; c < nc; c++ {
		l := cd.Level[c]
		cd.LevelOrder[fill[l]] = int32(c)
		fill[l]++
	}
}

func compileCluster(cl *Cluster) *CompiledCluster {
	n := len(cl.Nets)
	cc := &CompiledCluster{
		Cluster:    cl,
		OrderLocal: make([]int32, len(cl.Order)),
		ArcStart:   make([]int32, n+1),
		ArcIdx:     make([]int32, len(cl.Arcs)),
		FromLocal:  make([]int32, len(cl.Arcs)),
		ToLocal:    make([]int32, len(cl.Arcs)),
		InLocal:    make([]int32, len(cl.Inputs)),
		OutLocal:   make([]int32, len(cl.Outputs)),
	}
	for i, netID := range cl.Order {
		cc.OrderLocal[i] = int32(cl.LocalIndex(netID))
	}
	for ai := range cl.Arcs {
		cc.FromLocal[ai] = int32(cl.LocalIndex(cl.Arcs[ai].From))
		cc.ToLocal[ai] = int32(cl.LocalIndex(cl.Arcs[ai].To))
	}
	// CSR over the existing adjacency: count, prefix-sum, fill.
	for li, netID := range cl.Nets {
		cc.ArcStart[li+1] = int32(len(cl.ArcsFrom(netID)))
	}
	for li := 0; li < n; li++ {
		cc.ArcStart[li+1] += cc.ArcStart[li]
	}
	fill := append([]int32(nil), cc.ArcStart[:n]...)
	for li, netID := range cl.Nets {
		for _, ai := range cl.ArcsFrom(netID) {
			cc.ArcIdx[fill[li]] = int32(ai)
			fill[li]++
		}
	}
	for i, in := range cl.Inputs {
		cc.InLocal[i] = int32(cl.LocalIndex(in.Net))
	}
	for i, out := range cl.Outputs {
		cc.OutLocal[i] = int32(cl.LocalIndex(out.Net))
	}
	return cc
}

// CloneArcs returns a copy-on-write twin of the design whose arc delays can
// be edited without affecting sharers: the flat arc backing is copied once
// and every cluster is re-pointed at its subslice of the copy. Everything
// else — nets, sites, elements, orders, plans, CSR arrays — stays shared,
// since delay edits never change them. The clusters themselves are
// shallow-copied (their Arcs field differs); the compiled views are rebuilt
// as cheap wrappers sharing the index arrays.
//
// The clone carries the receiver's Calc pointer; a caller that will re-run
// delay calculation must install its own private Calc before doing so.
func (cd *CompiledDesign) CloneArcs() *CompiledDesign {
	nw2 := *cd.Network
	nw2.Clusters = make([]*Cluster, len(cd.Network.Clusters))

	cd2 := &CompiledDesign{
		Network:        &nw2,
		Arcs:           append([]Arc(nil), cd.Arcs...),
		CC:             make([]*CompiledCluster, len(cd.CC)),
		ElemClusters:   cd.ElemClusters,
		InitialOdz:     cd.InitialOdz,
		MaxClusterNets: cd.MaxClusterNets,
		Level:          cd.Level,
		LevelStart:     cd.LevelStart,
		LevelOrder:     cd.LevelOrder,
	}
	off := 0
	for i, cl := range cd.Network.Clusters {
		cl2 := *cl
		cl2.Arcs = cd2.Arcs[off : off+len(cl.Arcs) : off+len(cl.Arcs)]
		off += len(cl.Arcs)
		nw2.Clusters[i] = &cl2

		cc2 := *cd.CC[i]
		cc2.Cluster = &cl2
		cd2.CC[i] = &cc2
	}
	return cd2
}
