// Package graph provides the small directed-graph substrate used throughout
// the timing analyzer: topological ordering, cycle detection, reachability
// and strongly connected components over dense integer-indexed node sets.
//
// The combinational portions of a design are required to be acyclic (paper
// §3, assumption 2); this package supplies the machinery both to verify that
// assumption and to levelise clusters for the block slack computation of §7.
package graph

import (
	"errors"
	"fmt"
)

// Digraph is a directed graph over nodes 0..N-1 with adjacency lists.
// The zero value is an empty graph; grow it with AddNode/AddEdge.
type Digraph struct {
	out [][]int
	in  [][]int
	m   int // edge count
}

// New returns a digraph with n nodes and no edges.
func New(n int) *Digraph {
	return &Digraph{out: make([][]int, n), in: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return len(g.out) }

// M returns the number of edges.
func (g *Digraph) M() int { return g.m }

// AddNode appends a new node and returns its index.
func (g *Digraph) AddNode() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return len(g.out) - 1
}

// AddEdge inserts the directed edge u -> v, rejecting out-of-range
// endpoints. Parallel edges are permitted; callers that need simple graphs
// must deduplicate themselves.
func (g *Digraph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.out) || v < 0 || v >= len(g.out) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.out))
	}
	g.addEdge(u, v)
	return nil
}

// addEdge is AddEdge for indices already known to be in range.
func (g *Digraph) addEdge(u, v int) {
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.m++
}

// Out returns the successors of u. The returned slice is owned by the graph
// and must not be modified.
func (g *Digraph) Out(u int) []int { return g.out[u] }

// In returns the predecessors of u. The returned slice is owned by the graph
// and must not be modified.
func (g *Digraph) In(u int) []int { return g.in[u] }

// OutDegree returns the number of edges leaving u.
func (g *Digraph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the number of edges entering u.
func (g *Digraph) InDegree(u int) int { return len(g.in[u]) }

// ErrCycle is returned by TopoSort when the graph contains a directed cycle.
var ErrCycle = errors.New("graph: directed cycle detected")

// TopoSort returns a topological ordering of all nodes, or ErrCycle if the
// graph is cyclic. The ordering is deterministic: among ready nodes the
// smallest index is emitted first (Kahn's algorithm with an ordered
// frontier), so repeated runs over the same graph agree.
func (g *Digraph) TopoSort() ([]int, error) {
	n := len(g.out)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.in[v])
	}
	// Min-heap frontier for determinism.
	h := &intHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			h.push(v)
		}
	}
	order := make([]int, 0, n)
	for h.len() > 0 {
		u := h.pop()
		order = append(order, u)
		for _, v := range g.out[u] {
			indeg[v]--
			if indeg[v] == 0 {
				h.push(v)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Levels assigns to every node its longest-path depth from any source
// (node with in-degree zero): sources get level 0 and each edge u->v forces
// level(v) >= level(u)+1. Returns ErrCycle on cyclic input.
func (g *Digraph) Levels() ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	lvl := make([]int, len(g.out))
	for _, u := range order {
		for _, v := range g.out[u] {
			if lvl[u]+1 > lvl[v] {
				lvl[v] = lvl[u] + 1
			}
		}
	}
	return lvl, nil
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *Digraph) HasCycle() bool {
	_, err := g.TopoSort()
	return err != nil
}

// FindCycle returns one directed cycle as a node sequence (first node not
// repeated at the end), or nil if the graph is acyclic. Used to produce
// actionable diagnostics when a design violates the §3 acyclicity
// assumption.
func (g *Digraph) FindCycle() []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	n := len(g.out)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = grey
		for _, v := range g.out[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case grey:
				// Back edge u->v closes a cycle v..u.
				cycle = []int{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse so the cycle reads in edge direction.
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n; u++ {
		if color[u] == white {
			if dfs(u) {
				return cycle
			}
		}
	}
	return nil
}

// ReachableFrom returns the set of nodes reachable from any of the given
// sources (sources included), as a boolean mask indexed by node.
func (g *Digraph) ReachableFrom(sources ...int) []bool {
	seen := make([]bool, len(g.out))
	stack := make([]int, 0, len(sources))
	for _, s := range sources {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.out[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// CoReachableTo returns the set of nodes from which any of the given sinks is
// reachable (sinks included), as a boolean mask indexed by node.
func (g *Digraph) CoReachableTo(sinks ...int) []bool {
	seen := make([]bool, len(g.out))
	stack := make([]int, 0, len(sinks))
	for _, s := range sinks {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.in[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// UndirectedComponents partitions the nodes into weakly connected components,
// ignoring edge direction. Component ids are dense, assigned in increasing
// order of the smallest node index they contain. Used by cluster extraction
// ("a cluster is a maximal connected network of combinational logic
// elements", §7).
func (g *Digraph) UndirectedComponents() (comp []int, count int) {
	n := len(g.out)
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.out[u] {
				if comp[v] == -1 {
					comp[v] = count
					stack = append(stack, v)
				}
			}
			for _, v := range g.in[u] {
				if comp[v] == -1 {
					comp[v] = count
					stack = append(stack, v)
				}
			}
		}
		count++
	}
	return comp, count
}

// SCC computes strongly connected components (Tarjan, iterative). The result
// assigns each node a component id; ids are in reverse topological order of
// the condensation (a component's id is larger than those of components it
// can reach). Cycles through transparent latches (paper §3: "an interesting
// feature ... a set of combinational logic paths that form a directed cycle
// traversing two, or more, transparent latches") appear as multi-node
// components in the sync-element adjacency graph.
func (g *Digraph) SCC() (comp []int, count int) {
	n := len(g.out)
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack, callStack, iterStack []int
	next := 0
	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		callStack = append(callStack[:0], s)
		iterStack = append(iterStack[:0], 0)
		index[s], low[s] = next, next
		next++
		stack = append(stack, s)
		onStack[s] = true
		for len(callStack) > 0 {
			u := callStack[len(callStack)-1]
			i := iterStack[len(iterStack)-1]
			if i < len(g.out[u]) {
				iterStack[len(iterStack)-1]++
				v := g.out[u][i]
				if index[v] == -1 {
					index[v], low[v] = next, next
					next++
					stack = append(stack, v)
					onStack[v] = true
					callStack = append(callStack, v)
					iterStack = append(iterStack, 0)
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			iterStack = iterStack[:len(iterStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1]
				if low[u] < low[p] {
					low[p] = low[u]
				}
			}
			if low[u] == index[u] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == u {
						break
					}
				}
				count++
			}
		}
	}
	return comp, count
}

// Sources returns all nodes with in-degree zero, in increasing order.
func (g *Digraph) Sources() []int {
	var s []int
	for v := 0; v < len(g.out); v++ {
		if len(g.in[v]) == 0 {
			s = append(s, v)
		}
	}
	return s
}

// Sinks returns all nodes with out-degree zero, in increasing order.
func (g *Digraph) Sinks() []int {
	var s []int
	for v := 0; v < len(g.out); v++ {
		if len(g.out[v]) == 0 {
			s = append(s, v)
		}
	}
	return s
}

// Induced returns the subgraph induced by keep (nodes where keep[v] is true)
// together with the mapping old->new index (-1 for dropped nodes) and
// new->old.
func (g *Digraph) Induced(keep []bool) (sub *Digraph, oldToNew, newToOld []int) {
	oldToNew = make([]int, len(g.out))
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for v := 0; v < len(g.out); v++ {
		if keep[v] {
			oldToNew[v] = len(newToOld)
			newToOld = append(newToOld, v)
		}
	}
	sub = New(len(newToOld))
	for u := 0; u < len(g.out); u++ {
		if !keep[u] {
			continue
		}
		for _, v := range g.out[u] {
			if keep[v] {
				sub.addEdge(oldToNew[u], oldToNew[v])
			}
		}
	}
	return sub, oldToNew, newToOld
}

// intHeap is a minimal binary min-heap of ints used by TopoSort.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
