package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mk(n int, edges [][2]int) *Digraph {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return g
}

func TestTopoSortLinear(t *testing.T) {
	g := mk(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	want := []int{0, 1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := mk(5, [][2]int{{4, 2}, {3, 2}, {2, 0}, {2, 1}})
	a, _ := g.TopoSort()
	b, _ := g.TopoSort()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic topo sort: %v vs %v", a, b)
		}
	}
	// Among ready nodes the smallest index is emitted first: 3 before 4.
	if a[0] != 3 || a[1] != 4 {
		t.Fatalf("expected smallest-first frontier, got %v", a)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := mk(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if _, err := g.TopoSort(); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if !g.HasCycle() {
		t.Fatal("HasCycle = false on a 3-cycle")
	}
}

func TestTopoSortEmpty(t *testing.T) {
	g := New(0)
	order, err := g.TopoSort()
	if err != nil || len(order) != 0 {
		t.Fatalf("empty graph: order=%v err=%v", order, err)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g := New(n)
		// Random DAG: edges only from lower to higher index.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(4) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLevels(t *testing.T) {
	//   0 -> 1 -> 3
	//   0 -> 2 -> 3 ; 2 -> 4
	g := mk(5, [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}, {2, 4}})
	lvl, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2, 2}
	for i := range want {
		if lvl[i] != want[i] {
			t.Fatalf("levels = %v, want %v", lvl, want)
		}
	}
}

func TestLevelsLongestPath(t *testing.T) {
	// Diamond with a long arm: level must be the LONGEST source distance.
	g := mk(5, [][2]int{{0, 4}, {0, 1}, {1, 2}, {2, 3}, {3, 4}})
	lvl, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lvl[4] != 4 {
		t.Fatalf("lvl[4] = %d, want 4 (longest path)", lvl[4])
	}
}

func TestFindCycleNilOnDAG(t *testing.T) {
	g := mk(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if c := g.FindCycle(); c != nil {
		t.Fatalf("FindCycle on DAG = %v, want nil", c)
	}
}

func TestFindCycleReturnsRealCycle(t *testing.T) {
	g := mk(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 1}, {3, 4}, {4, 5}})
	c := g.FindCycle()
	if len(c) == 0 {
		t.Fatal("no cycle found")
	}
	// Verify every consecutive pair is an edge, and last->first closes it.
	has := func(u, v int) bool {
		for _, w := range g.Out(u) {
			if w == v {
				return true
			}
		}
		return false
	}
	for i := 0; i < len(c); i++ {
		u, v := c[i], c[(i+1)%len(c)]
		if !has(u, v) {
			t.Fatalf("cycle %v: missing edge %d->%d", c, u, v)
		}
	}
}

func TestSelfLoopCycle(t *testing.T) {
	g := mk(2, [][2]int{{0, 0}})
	c := g.FindCycle()
	if len(c) != 1 || c[0] != 0 {
		t.Fatalf("self loop cycle = %v, want [0]", c)
	}
}

func TestReachableFrom(t *testing.T) {
	g := mk(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	r := g.ReachableFrom(0)
	want := []bool{true, true, true, false, false, false}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("reach = %v, want %v", r, want)
		}
	}
	r2 := g.ReachableFrom(0, 3)
	if !r2[4] || r2[5] {
		t.Fatalf("multi-source reach = %v", r2)
	}
}

func TestCoReachableTo(t *testing.T) {
	g := mk(5, [][2]int{{0, 1}, {1, 2}, {3, 2}, {2, 4}})
	r := g.CoReachableTo(2)
	want := []bool{true, true, true, true, false}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("coreach = %v, want %v", r, want)
		}
	}
}

func TestReachCoReachDual(t *testing.T) {
	// Property: v in ReachableFrom(u) <=> u in CoReachableTo(v).
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		u, v := r.Intn(n), r.Intn(n)
		return g.ReachableFrom(u)[v] == g.CoReachableTo(v)[u]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedComponents(t *testing.T) {
	g := mk(7, [][2]int{{0, 1}, {2, 1}, {3, 4}, {5, 5}})
	comp, n := g.UndirectedComponents()
	if n != 4 {
		t.Fatalf("count = %d, want 4 (comps %v)", n, comp)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("0,1,2 should share a component: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Fatalf("3,4 should share a component: %v", comp)
	}
	if comp[5] == comp[0] || comp[6] == comp[0] || comp[5] == comp[6] {
		t.Fatalf("5 and 6 should be singletons: %v", comp)
	}
	// Dense ids assigned by smallest contained node.
	if comp[0] != 0 || comp[3] != 1 || comp[5] != 2 || comp[6] != 3 {
		t.Fatalf("component id ordering: %v", comp)
	}
}

func TestSCCBasic(t *testing.T) {
	// Two 2-cycles joined by an edge plus a tail node.
	g := mk(5, [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}, {3, 4}})
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("scc count = %d (%v), want 3", n, comp)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[2] {
		t.Fatalf("scc assignment wrong: %v", comp)
	}
	// Reverse-topological ids: {0,1} reaches {2,3} reaches {4}.
	if !(comp[0] > comp[2] && comp[2] > comp[4]) {
		t.Fatalf("scc ids not reverse-topological: %v", comp)
	}
}

func TestSCCAllSingletonsOnDAG(t *testing.T) {
	g := mk(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	_, n := g.SCC()
	if n != 4 {
		t.Fatalf("scc count on DAG = %d, want 4", n)
	}
}

func TestSCCCountMatchesCycleFreedom(t *testing.T) {
	// Property: graph acyclic (ignoring self loops: none generated here
	// since u<v) <=> every SCC is a singleton.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(25)
		g := New(n)
		cyclic := r.Intn(2) == 1
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(4) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		if cyclic {
			// Force one cycle.
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				b = (a + 1) % n
			}
			if a > b {
				a, b = b, a
			}
			g.AddEdge(a, b)
			g.AddEdge(b, a)
		}
		_, c := g.SCC()
		singletons := c == n
		return singletons == !g.HasCycle()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSourcesSinks(t *testing.T) {
	g := mk(5, [][2]int{{0, 2}, {1, 2}, {2, 3}, {2, 4}})
	src, snk := g.Sources(), g.Sinks()
	if len(src) != 2 || src[0] != 0 || src[1] != 1 {
		t.Fatalf("sources = %v", src)
	}
	if len(snk) != 2 || snk[0] != 3 || snk[1] != 4 {
		t.Fatalf("sinks = %v", snk)
	}
}

func TestInduced(t *testing.T) {
	g := mk(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	keep := []bool{true, true, true, false, false}
	sub, o2n, n2o := g.Induced(keep)
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced N=%d M=%d", sub.N(), sub.M())
	}
	if o2n[3] != -1 || o2n[0] != 0 {
		t.Fatalf("oldToNew = %v", o2n)
	}
	if len(n2o) != 3 || n2o[2] != 2 {
		t.Fatalf("newToOld = %v", n2o)
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := New(2)
	for _, e := range [][2]int{{0, 5}, {-1, 0}, {2, 0}, {0, -3}} {
		if err := g.AddEdge(e[0], e[1]); err == nil {
			t.Errorf("edge %v accepted", e)
		}
	}
	if g.M() != 0 {
		t.Fatalf("rejected edges counted: M=%d", g.M())
	}
}

func TestAddNode(t *testing.T) {
	g := New(1)
	id := g.AddNode()
	if id != 1 || g.N() != 2 {
		t.Fatalf("AddNode id=%d N=%d", id, g.N())
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 {
		t.Fatal("degree bookkeeping wrong after AddNode")
	}
}

func TestInOut(t *testing.T) {
	g := mk(3, [][2]int{{0, 1}, {2, 1}})
	if len(g.In(1)) != 2 || g.In(1)[0] != 0 || g.In(1)[1] != 2 {
		t.Fatalf("In(1) = %v", g.In(1))
	}
	if len(g.In(0)) != 0 || len(g.Out(1)) != 0 {
		t.Fatal("empty adjacency wrong")
	}
	if g.M() != 2 || g.N() != 3 {
		t.Fatal("counts wrong")
	}
}
