package incremental

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
	"hummingbird/internal/workload"
)

// TestEquivalenceRandomEdits drives a randomized edit sequence over every
// workload and, after each edit, asserts that the engine's Report and
// Constraints deep-equal a from-scratch core.Load + IdentifySlowPaths +
// GenerateConstraints at the same cumulative options — the incremental
// path must be observationally identical to full re-analysis.
func TestEquivalenceRandomEdits(t *testing.T) {
	infallible := func(mk func() *netlist.Design) func() (*netlist.Design, error) {
		return func() (*netlist.Design, error) { return mk(), nil }
	}
	cases := []struct {
		name  string
		build func() (*netlist.Design, error)
		edits int
	}{
		{"Figure1", infallible(workload.Figure1), 8},
		{"SM1F", infallible(workload.SM1F), 8},
		{"SM1H", infallible(workload.SM1H), 8},
		{"ALU", workload.ALU, 6},
		{"DES", workload.DES, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			edits := tc.edits
			if testing.Short() {
				edits = 2
			}
			lib := celllib.Default()
			d, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			eng, err := Open(lib, d, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(len(tc.name)) * 7919))
			var added []string
			incr, full := 0, 0
			for i := 0; i < edits; i++ {
				ed := randomEdit(rng, eng, &added)
				out, err := eng.Apply(ed)
				if err != nil {
					t.Fatalf("edit %d (%s %s): %v", i, ed.Op, ed.Inst, err)
				}
				if out.Incremental {
					incr++
				} else {
					full++
				}
				verifyAgainstScratch(t, lib, eng, fmt.Sprintf("edit %d (%s)", i, ed.Op))
			}
			if incr == 0 {
				t.Errorf("randomized sequence never exercised the incremental path (%d full)", full)
			}
			t.Logf("%s: %d incremental, %d full-rebuild edits", tc.name, incr, full)
		})
	}
}

// verifyAgainstScratch loads the engine's current design from scratch with
// its cumulative options and deep-compares both algorithms' outputs.
func verifyAgainstScratch(t *testing.T, lib *celllib.Library, eng *Engine, ctx string) {
	t.Helper()
	a, err := core.Load(lib, eng.Design(), eng.Options())
	if err != nil {
		t.Fatalf("%s: scratch load: %v", ctx, err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatalf("%s: scratch analysis: %v", ctx, err)
	}
	if !reflect.DeepEqual(eng.Report(), rep) {
		t.Fatalf("%s: incremental report diverges from scratch (worst slack %v vs %v)",
			ctx, eng.Report().WorstSlack(), rep.WorstSlack())
	}
	cons, err := eng.Constraints()
	if err != nil {
		t.Fatalf("%s: engine constraints: %v", ctx, err)
	}
	cons2, err := a.GenerateConstraints()
	if err != nil {
		t.Fatalf("%s: scratch constraints: %v", ctx, err)
	}
	if !reflect.DeepEqual(cons, cons2) {
		t.Fatalf("%s: incremental constraints diverge from scratch", ctx)
	}
}

// randomEdit picks a design change: mostly delay-only edits (adjustments,
// drive resizes), sometimes structural ones (add a buffer tap, remove one
// added earlier) so both engine paths and the add/remove round trip get
// exercised.
func randomEdit(rng *rand.Rand, eng *Engine, added *[]string) Edit {
	d := eng.Design()
	switch k := rng.Intn(6); {
	case k <= 2: // adjust a random combinational instance
		name := randomCombInst(rng, eng)
		delta := clock.Time((rng.Intn(9) - 4) * 50)
		if delta == 0 {
			delta = 50
		}
		return Edit{Op: Adjust, Inst: name, Delta: delta}
	case k == 3: // drive-strength resize, if an alternative exists
		for tries := 0; tries < 8; tries++ {
			name := randomCombInst(rng, eng)
			cur := d.Instances[eng.instIdx[name]].Ref
			if to := resizeAlternative(eng, cur); to != "" {
				return Edit{Op: Resize, Inst: name, To: to}
			}
		}
		return Edit{Op: Adjust, Inst: randomCombInst(rng, eng), Delta: 100}
	case k == 4: // add a buffer tapping a random data net
		src := randomDataNet(rng, eng)
		name := fmt.Sprintf("zz_tap%d", len(*added))
		*added = append(*added, name)
		return Edit{Op: AddInst, New: &netlist.Instance{
			Name: name, Ref: "BUF_X1",
			Conns: map[string]string{"A": src, "Y": name + "_out"},
		}}
	default: // remove a previously added tap, else adjust
		if len(*added) > 0 {
			name := (*added)[len(*added)-1]
			*added = (*added)[:len(*added)-1]
			return Edit{Op: RemoveInst, Inst: name}
		}
		return Edit{Op: Adjust, Inst: randomCombInst(rng, eng), Delta: -100}
	}
}

// randomCombInst picks an instance whose resolved cell is combinational
// (library gates and rolled-up module super-cells alike).
func randomCombInst(rng *rand.Rand, eng *Engine) string {
	d := eng.Design()
	lib := eng.Analyzer().Lib
	for {
		inst := &d.Instances[rng.Intn(len(d.Instances))]
		if c := lib.Cell(inst.Ref); c != nil && !c.IsSync() {
			return inst.Name
		}
	}
}

// randomDataNet picks the output net of a random combinational instance —
// guaranteed to be a data net (never a clock cone).
func randomDataNet(rng *rand.Rand, eng *Engine) string {
	d := eng.Design()
	lib := eng.Analyzer().Lib
	for {
		inst := &d.Instances[rng.Intn(len(d.Instances))]
		c := lib.Cell(inst.Ref)
		if c == nil || c.IsSync() {
			continue
		}
		for _, out := range c.Outputs() {
			if net, ok := inst.Conns[out]; ok {
				return net
			}
		}
	}
}

// resizeAlternative returns a different library cell with the same
// interface as ref (the drive-strength ladder), or "".
func resizeAlternative(eng *Engine, ref string) string {
	lib := eng.Analyzer().Lib
	cur := lib.Cell(ref)
	if cur == nil || cur.IsSync() {
		return ""
	}
	for _, name := range lib.Names() {
		if name == ref {
			continue
		}
		if c := lib.Cell(name); c != nil && sameInterface(cur, c) {
			// Full rebuilds validate against the base library, so the
			// target must exist there too.
			if eng.lib.Cell(name) != nil {
				return name
			}
		}
	}
	return ""
}

// TestEquivalenceAfterFailedEdit checks that a rejected edit perturbs
// nothing: the next analysis still matches scratch.
func TestEquivalenceAfterFailedEdit(t *testing.T) {
	lib := celllib.Default()
	eng, err := Open(lib, workload.Figure1(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(Edit{Op: Adjust, Inst: "does_not_exist", Delta: 10}); err == nil {
		t.Fatal("edit on unknown instance succeeded")
	}
	name := randomCombInst(rand.New(rand.NewSource(1)), eng)
	if _, err := eng.Apply(Edit{Op: Adjust, Inst: name, Delta: 75}); err != nil {
		t.Fatal(err)
	}
	verifyAgainstScratch(t, lib, eng, "after failed edit")
}
