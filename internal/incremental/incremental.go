// Package incremental is a change-driven analysis engine over one design:
// an edit API (resize/replace cell, adjust delays, add/remove instances,
// rewire pins), a dirty-set propagator mapping each edit to the minimal set
// of affected clusters, and a cached block-analysis state reused across
// edits through sta.Recompute.
//
// The paper's Algorithm 3 re-analyzes the network after every resynthesis
// edit; a full re-analysis re-elaborates clusters and re-runs every pass
// even when one gate changed. The engine instead keeps the elaborated
// network alive between edits and classifies each edit batch:
//
//   - Delay-only edits (adjustments, and resizes that preserve the cell's
//     pin/arc interface, on combinational instances outside the clock
//     cones) patch the affected arc delays in place, recompute only the
//     clusters owning those arcs against the cached initial-offset result,
//     and re-run the Algorithm 1 fixed point from there. The fixed point
//     itself is incremental: each sweep recomputes only the clusters
//     adjacent to elements whose offsets moved (core.Analyzer.sweep).
//   - Anything that reshapes the timing network — replacing a cell with a
//     different interface, adding or removing instances, rewiring pins, or
//     touching a synchronising element or a control cone — falls back to a
//     full re-elaboration on a private copy of the design, so a failed
//     edit never corrupts the engine.
//
// A topology checksum over the design's structure (instances, connections,
// cell interfaces — but not delays or pin caps) backstops the classifier:
// if a supposedly delay-only batch changes the checksum the engine falls
// back to full analysis rather than trust a stale elaboration.
//
// Results are bit-identical to a from-scratch core.Load + IdentifySlowPaths
// + GenerateConstraints at the same cumulative options (the equivalence
// tests assert deep equality after randomized edit sequences).
package incremental

import (
	"context"
	"fmt"
	"sort"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/core"
	"hummingbird/internal/delaycalc"
	"hummingbird/internal/failpoint"
	"hummingbird/internal/netlist"
	"hummingbird/internal/sta"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/span"
)

// Edit-loop instruments, exposed in -metrics-out snapshots wherever the
// engine is linked (CLI, server, resynthesis).
var (
	mEdits             = telemetry.NewCounter("incr.edits")
	mIncrAnalyses      = telemetry.NewCounter("incr.incremental_analyses")
	mFullAnalyses      = telemetry.NewCounter("incr.full_analyses")
	mFullFallbacks     = telemetry.NewCounter("incr.full_fallbacks")
	mChecksumFallbacks = telemetry.NewCounter("incr.checksum_fallbacks")
	mDirtyClusters     = telemetry.NewCounter("incr.dirty_clusters")
	mCacheHits         = telemetry.NewCounter("incr.result_cache_hits")
	mCacheMisses       = telemetry.NewCounter("incr.result_cache_misses")
)

// Op enumerates the edit kinds.
type Op uint8

const (
	// Adjust adds Delta to every arc delay of instance Inst (the
	// interactive what-if mode of §8).
	Adjust Op = iota
	// Resize points Inst at cell To. When To has the same pin and arc
	// interface as the current cell (the drive-strength ladder case) the
	// edit is delay-only; otherwise it degrades to a Replace.
	Resize
	// Replace points Inst at cell (or module) To, whatever its interface.
	Replace
	// AddInst places the instance New.
	AddInst
	// RemoveInst deletes instance Inst.
	RemoveInst
	// Rewire connects pin Pin of instance Inst to net Net (empty Net
	// disconnects the pin).
	Rewire
)

// String names the op for reports and server responses.
func (o Op) String() string {
	switch o {
	case Adjust:
		return "adjust"
	case Resize:
		return "resize"
	case Replace:
		return "replace"
	case AddInst:
		return "add"
	case RemoveInst:
		return "remove"
	case Rewire:
		return "rewire"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Edit is one design change. Which fields matter depends on Op.
type Edit struct {
	Op    Op
	Inst  string
	To    string
	Delta clock.Time
	Pin   string
	Net   string
	New   *netlist.Instance
}

// Outcome describes how one Apply batch was analyzed.
type Outcome struct {
	// Incremental is true when the cached state was patched and only the
	// dirty clusters recomputed; false when the engine fell back to a full
	// re-elaboration.
	Incremental bool
	// DirtyClusters counts the clusters invalidated by the batch
	// (meaningful when Incremental).
	DirtyClusters int
	// FallbackReason explains a non-incremental analysis: "topology
	// change" for edits classified as structural, "checksum mismatch" when
	// the topology checksum caught a misclassified batch.
	FallbackReason string
	// Report is the Algorithm 1 report after the batch.
	Report *core.Report
}

// arcRef addresses one arc: Clusters[cluster].Arcs[arc].
type arcRef struct {
	cluster, arc int
}

// Engine holds one design's live analysis state.
//
// Engines are not safe for concurrent use; callers serialise access
// (hummingbirdd holds one mutex per session).
type Engine struct {
	lib  *celllib.Library
	opts core.Options // cumulative; Adjustments owned by the engine

	design *netlist.Design
	an     *core.Analyzer
	// base is the block analysis at the *initial* offsets (ResetOffsets
	// state) for the current design and delays: the cached sta.Result that
	// delay-only edits bring up to date with sta.Recompute instead of
	// re-running every cluster.
	base *sta.Result
	// spare is a retired base buffer recycled by the next rebase: the
	// delay-only path double-buffers e.base through sta.(*Result).CloneInto
	// so steady-state edits rebase without allocating.
	spare *sta.Result
	// Reusable applyDelayOnly scratch (cleared, never reallocated, so
	// steady-state delay edits stay off the allocator).
	scrArcs  map[arcRef]bool
	scrNets  map[string]bool
	scrUndo  []undoStep
	scrIDs   []int
	scrNames []string
	rep      *core.Report
	cons     *core.Constraints
	// odz snapshots the Algorithm-1 fixed-point offsets so Constraints()
	// (whose snatch sweeps move the offsets) can restore them.
	odz  []clock.Time
	topo uint64

	instIdx    map[string]int
	arcsByInst map[string][]arcRef
	arcsByTo   map[int][]arcRef

	// sharedCD marks that the analyzer's CompiledDesign is shared read-only
	// with other engines (opened through OpenShared or published to a
	// compile cache). The first mutation of arc delays unshares it via a
	// copy-on-write clone; release is then invoked exactly once to drop the
	// engine's reference on the shared design.
	sharedCD bool
	release  func()
}

// Open elaborates the design and runs the first full analysis. The design
// is edited in place by delay-only edits and replaced wholesale by
// topology edits — always read it back through Design().
func Open(lib *celllib.Library, design *netlist.Design, opts core.Options) (*Engine, error) {
	return OpenContext(nil, lib, design, opts)
}

// OpenContext is Open with cancellation of the initial analysis: on an
// expired deadline no engine is returned. A nil ctx is accepted and makes
// the open uninterruptible.
func OpenContext(ctx context.Context, lib *celllib.Library, design *netlist.Design, opts core.Options) (*Engine, error) {
	opts.Adjustments = cloneAdjust(opts.Adjustments)
	e := &Engine{lib: lib, opts: opts, design: design}
	if err := e.loadFull(ctx); err != nil {
		return nil, err
	}
	return e, nil
}

// OpenShared opens an engine directly on an already-compiled design,
// skipping elaboration: the first full analysis runs against cd with a
// fresh AnalysisState. design must be equivalent to the one cd was
// compiled from at the same cumulative options (callers key their compile
// caches by StateKey to guarantee this). release, if non-nil, is called
// exactly once when the engine stops referencing cd — on its first
// structural or delay mutation (which unshares onto a private copy), or
// through ReleaseShared.
func OpenShared(lib *celllib.Library, design *netlist.Design, opts core.Options, cd *cluster.CompiledDesign, release func()) (*Engine, error) {
	return OpenSharedContext(nil, lib, design, opts, cd, release)
}

// OpenSharedContext is OpenShared with cancellation of the initial
// analysis. On error the shared reference is released before returning.
func OpenSharedContext(ctx context.Context, lib *celllib.Library, design *netlist.Design, opts core.Options, cd *cluster.CompiledDesign, release func()) (*Engine, error) {
	opts.Adjustments = cloneAdjust(opts.Adjustments)
	e := &Engine{lib: lib, opts: opts, design: design, sharedCD: true, release: release}
	mFullAnalyses.Inc()
	mCacheMisses.Inc()
	an := core.LoadCompiled(cd, design, e.opts)
	if err := e.analyzeFresh(ctx, an); err != nil {
		e.ReleaseShared()
		return nil, err
	}
	return e, nil
}

// Design returns the engine's current design.
func (e *Engine) Design() *netlist.Design { return e.design }

// CompiledDesign returns the analyzer's current compiled design.
func (e *Engine) CompiledDesign() *cluster.CompiledDesign { return e.an.CD }

// SharedCompiled reports whether the compiled design is still shared.
func (e *Engine) SharedCompiled() bool { return e.sharedCD }

// ShareCompiled marks the engine's compiled design as shared and installs
// the reference-drop callback — the cold-open half of a compile cache:
// open privately, publish the compiled design, then mark it shared so a
// later mutation unshares instead of corrupting other sessions.
func (e *Engine) ShareCompiled(release func()) {
	e.sharedCD = true
	e.release = release
}

// ReleaseShared drops the engine's reference on a shared compiled design,
// if any, without unsharing. Idempotent. Owners (session servers) call it
// when discarding an engine.
func (e *Engine) ReleaseShared() {
	e.sharedCD = false
	if e.release != nil {
		e.release()
		e.release = nil
	}
}

// unshare gives the engine a private copy-on-write twin of a shared
// compiled design before the first delay mutation: the flat arc backing is
// copied, and a private delay calculator is rebuilt at the engine's
// cumulative adjustments (delay evaluation is deterministic, so the clone's
// delays are bit-identical to the shared ones). No-op on private designs.
func (e *Engine) unshare() error {
	if !e.sharedCD {
		return nil
	}
	cd2 := e.an.CD.CloneArcs()
	calc, err := delaycalc.New(e.an.Lib, e.design, e.opts.Delay)
	if err != nil {
		return err
	}
	for inst, delta := range e.opts.Adjustments {
		calc.Adjust(inst, delta)
	}
	cd2.Network.Calc = calc
	e.an.CD = cd2
	e.an.St.Rebind(cd2)
	e.ReleaseShared()
	return nil
}

// Analyzer returns the live analyzer (elaborated network, resolved
// library). It is replaced by topology edits — re-fetch after Apply.
func (e *Engine) Analyzer() *core.Analyzer { return e.an }

// Report returns the Algorithm 1 report for the current state, or nil if
// the last analysis failed (the next Apply or Constraints call rebuilds).
func (e *Engine) Report() *core.Report { return e.rep }

// Options returns the cumulative options (base options plus every
// adjustment applied so far); the Adjustments map is a copy. Loading the
// current Design() with these options from scratch reproduces the engine's
// state exactly.
func (e *Engine) Options() core.Options {
	opts := e.opts
	opts.Adjustments = cloneAdjust(opts.Adjustments)
	return opts
}

// Constraints runs Algorithm 2 at the current fixed point, reusing the
// final Algorithm 1 analysis instead of re-analyzing, and restores the
// fixed-point offsets afterwards (the snatch sweeps move them). The result
// is cached until the next edit.
func (e *Engine) Constraints() (*core.Constraints, error) {
	return e.ConstraintsContext(nil)
}

// ConstraintsContext is Constraints with cancellation. An interrupted
// snatch fixed point restores the Algorithm-1 offsets before returning,
// so the engine stays usable; only the constraints cache is left cold.
func (e *Engine) ConstraintsContext(ctx context.Context) (*core.Constraints, error) {
	if e.cons != nil {
		return e.cons, nil
	}
	if e.rep == nil {
		if err := e.loadFull(ctx); err != nil {
			return nil, err
		}
	}
	var cons *core.Constraints
	var err error
	if ctx != nil {
		cons, err = e.an.GenerateConstraintsFromCtx(ctx, e.rep.Result.Clone())
	} else {
		cons, err = e.an.GenerateConstraintsFrom(e.rep.Result.Clone())
	}
	e.restoreOffsets()
	if err != nil {
		return nil, err
	}
	e.cons = cons
	return cons, nil
}

// Apply applies a batch of edits as one unit and re-analyzes. Apply is
// atomic: on any error — validation, cancellation, or a non-convergent
// fixed point — the engine (design, adjustments, delays, cached report)
// is exactly as it was before the call, so the previous report keeps
// serving and retrying the same batch applies it exactly once.
func (e *Engine) Apply(edits ...Edit) (*Outcome, error) {
	return e.ApplyContext(nil, edits...)
}

// ApplyContext is Apply with cancellation of the re-analysis. The
// atomicity guarantee of Apply holds for interruptions too: a cancelled
// delay-only batch rolls its in-place patches back and a cancelled full
// rebuild never adopts the edited design copy, so callers that persist
// acknowledged batches (hummingbirdd's journal) stay consistent with the
// live engine across timeouts.
func (e *Engine) ApplyContext(ctx context.Context, edits ...Edit) (*Outcome, error) {
	if len(edits) == 0 {
		return &Outcome{Incremental: true, Report: e.rep}, nil
	}
	if e.rep == nil {
		if err := e.loadFull(ctx); err != nil {
			return nil, err
		}
	}
	_, csp := span.Start(ctx, "incr.classify")
	csp.AnnotateInt("edits", len(edits))
	delayOnly, err := e.classify(edits)
	if delayOnly {
		csp.Annotate("class", "delay-only")
	} else {
		csp.Annotate("class", "topology")
	}
	csp.End()
	if err != nil {
		return nil, err
	}
	mEdits.Add(int64(len(edits)))
	if !delayOnly {
		return e.applyFull(ctx, edits)
	}
	return e.applyDelayOnly(ctx, edits)
}

// classify validates every edit and reports whether the whole batch is
// delay-only. It performs no mutation — which makes it the chaos suite's
// injection site for "edit rejected before touching anything".
func (e *Engine) classify(edits []Edit) (bool, error) {
	if err := failpoint.Hit("incr.classify"); err != nil {
		return false, err
	}
	delayOnly := true
	// batch tracks instances added (true) or removed (false) by earlier
	// edits in this batch, so later edits can reference them.
	batch := map[string]bool{}
	exists := func(name string) bool {
		if v, ok := batch[name]; ok {
			return v
		}
		_, ok := e.instIdx[name]
		return ok
	}
	for i := range edits {
		ed := &edits[i]
		switch ed.Op {
		case AddInst:
			if ed.New == nil || ed.New.Name == "" {
				return false, fmt.Errorf("incremental: add: missing instance")
			}
			if exists(ed.New.Name) {
				return false, fmt.Errorf("incremental: add: duplicate instance %q", ed.New.Name)
			}
			batch[ed.New.Name] = true
			delayOnly = false
		case Adjust, Resize, Replace, RemoveInst, Rewire:
			if !exists(ed.Inst) {
				return false, fmt.Errorf("incremental: %s: unknown instance %q", ed.Op, ed.Inst)
			}
			switch ed.Op {
			case Adjust:
				if !e.delayLocal(ed.Inst) {
					delayOnly = false
				}
			case Resize, Replace:
				if e.lib.Cell(ed.To) == nil && e.design.Modules[ed.To] == nil {
					return false, fmt.Errorf("incremental: %s %s: unknown cell %q", ed.Op, ed.Inst, ed.To)
				}
				if ed.Op == Replace || !e.resizeCompatible(ed.Inst, ed.To) {
					delayOnly = false
				}
			case RemoveInst:
				batch[ed.Inst] = false
				delayOnly = false
			case Rewire:
				if ed.Pin == "" {
					return false, fmt.Errorf("incremental: rewire %s: missing pin", ed.Inst)
				}
				delayOnly = false
			}
		default:
			return false, fmt.Errorf("incremental: unknown op %d", ed.Op)
		}
	}
	return delayOnly, nil
}

// delayLocal reports whether edits to the instance's delays stay inside
// cluster arcs: a resolved combinational cell with no connection into a
// clock cone. Instances added earlier in the same batch never qualify.
func (e *Engine) delayLocal(name string) bool {
	idx, ok := e.instIdx[name]
	if !ok {
		return false
	}
	inst := &e.design.Instances[idx]
	cell := e.an.Lib.Cell(inst.Ref)
	if cell == nil || cell.IsSync() {
		return false
	}
	for _, net := range inst.Conns {
		if id, ok := e.an.CD.NetIdx[net]; ok && e.an.CD.IsControlNet(id) {
			return false
		}
	}
	return true
}

// resizeCompatible reports whether swapping the instance's cell for `to`
// preserves the elaborated network's shape (same pins, same arcs — only
// the delay expressions and input capacitances may differ).
func (e *Engine) resizeCompatible(name, to string) bool {
	if !e.delayLocal(name) {
		return false
	}
	cur := e.an.Lib.Cell(e.design.Instances[e.instIdx[name]].Ref)
	neu := e.an.Lib.Cell(to)
	return cur != nil && neu != nil && sameInterface(cur, neu)
}

func sameInterface(a, b *celllib.Cell) bool {
	if a.Kind != b.Kind || a.IsSync() || b.IsSync() {
		return false
	}
	if len(a.Pins) != len(b.Pins) || len(a.Arcs) != len(b.Arcs) {
		return false
	}
	pins := make(map[string]celllib.PinDir, len(a.Pins))
	for _, p := range a.Pins {
		pins[p.Name] = p.Dir
	}
	for _, p := range b.Pins {
		if d, ok := pins[p.Name]; !ok || d != p.Dir {
			return false
		}
	}
	type arcKey struct {
		from, to string
		sense    celllib.Sense
	}
	arcs := make(map[arcKey]int, len(a.Arcs))
	for _, ar := range a.Arcs {
		arcs[arcKey{ar.From, ar.To, ar.Sense}]++
	}
	for _, ar := range b.Arcs {
		k := arcKey{ar.From, ar.To, ar.Sense}
		if arcs[k] == 0 {
			return false
		}
		arcs[k]--
	}
	return true
}

// undoStep records how to reverse one delay-only mutation; adjustments
// are additive (reverse by negating the delta) and resizes restore the
// previous cell ref.
type undoStep struct {
	isAdjust bool
	inst     string     // Adjust: instance name
	delta    clock.Time // Adjust: applied delta
	instIdx  int        // Resize: instance index
	oldRef   string     // Resize: previous cell ref
}

// applyDelayOnly patches arc delays in place and recomputes only the dirty
// clusters against the cached initial-offset result. Every error path runs
// the undo log, so a failed batch (cancellation, non-convergence, a failed
// checksum-fallback rebuild) leaves the engine bit-identical to its state
// before the call — including the still-valid previous report.
func (e *Engine) applyDelayOnly(ctx context.Context, edits []Edit) (*Outcome, error) {
	// Delay-only edits mutate arc delays and the delay calculator — never
	// a shared compiled design. Unshare (copy-on-write) first.
	if err := e.unshare(); err != nil {
		return nil, err
	}
	if e.scrArcs == nil {
		e.scrArcs = map[arcRef]bool{}
		e.scrNets = map[string]bool{}
	}
	clear(e.scrArcs)
	clear(e.scrNets)
	affectedNets := e.scrNets
	dirtyArcs := e.scrArcs
	oldBase := e.base
	undo := e.scrUndo[:0]
	nets := e.scrNames[:0]
	rollback := func() {
		for i := len(undo) - 1; i >= 0; i-- {
			u := undo[i]
			if u.isAdjust {
				e.opts.Adjustments[u.inst] -= u.delta
				if e.opts.Adjustments[u.inst] == 0 {
					delete(e.opts.Adjustments, u.inst)
				}
				e.an.CD.Calc.Adjust(u.inst, -u.delta)
			} else {
				e.design.Instances[u.instIdx].Ref = u.oldRef
			}
		}
		e.an.CD.Calc.RefreshLoads(nets)
		for r := range dirtyArcs {
			e.reevalArc(r)
		}
		e.base = oldBase
		e.restoreOffsets()
	}
	// topo tracks the checksum across the batch: the sum-composed
	// TopologyChecksum lets each mutation shift it by (new term − old term)
	// without rehashing the whole design.
	topo := e.topo
	for _, ed := range edits {
		inst := &e.design.Instances[e.instIdx[ed.Inst]]
		switch ed.Op {
		case Adjust:
			if e.opts.Adjustments == nil {
				e.opts.Adjustments = map[string]clock.Time{}
			}
			e.opts.Adjustments[inst.Name] += ed.Delta
			if e.opts.Adjustments[inst.Name] == 0 {
				delete(e.opts.Adjustments, inst.Name)
			}
			e.an.CD.Calc.Adjust(inst.Name, ed.Delta)
			undo = append(undo, undoStep{isAdjust: true, inst: inst.Name, delta: ed.Delta})
		case Resize:
			cur := e.an.Lib.Cell(inst.Ref)
			neu := e.an.Lib.Cell(ed.To)
			// An input-pin capacitance change alters the load — and hence
			// the delay — of every arc driving that pin's net.
			for _, p := range cur.Pins {
				if p.Dir != celllib.In {
					continue
				}
				if np := neu.Pin(p.Name); np != nil && np.C != p.C {
					if net, ok := inst.Conns[p.Name]; ok {
						affectedNets[net] = true
					}
				}
			}
			topo -= instanceTerm(inst, e.an.Lib)
			undo = append(undo, undoStep{instIdx: e.instIdx[ed.Inst], oldRef: inst.Ref})
			inst.Ref = ed.To
			topo += instanceTerm(inst, e.an.Lib)
		}
		for _, r := range e.arcsByInst[inst.Name] {
			dirtyArcs[r] = true
		}
	}
	if len(affectedNets) > 0 {
		for n := range affectedNets {
			nets = append(nets, n)
		}
		sort.Strings(nets)
		e.an.CD.Calc.RefreshLoads(nets)
		for _, net := range nets {
			if id, ok := e.an.CD.NetIdx[net]; ok {
				for _, r := range e.arcsByTo[id] {
					dirtyArcs[r] = true
				}
			}
		}
	}
	ids := e.scrIDs[:0]
	for r := range dirtyArcs {
		e.reevalArc(r)
		seen := false
		for _, id := range ids {
			if id == r.cluster {
				seen = true
				break
			}
		}
		if !seen {
			ids = append(ids, r.cluster)
		}
	}
	sort.Ints(ids)
	e.scrUndo, e.scrIDs, e.scrNames = undo, ids, nets

	// Checksum fallback: if the batch somehow changed the design's
	// structure (e.g. a resize onto a cell whose interface differs in a way
	// the classifier's check missed), the elaboration above is stale —
	// rebuild everything.
	if topo != e.topo {
		mChecksumFallbacks.Inc()
		if err := e.loadFull(ctx); err != nil {
			// loadFull failed before adopting anything, so the surviving
			// analyzer still matches the pre-batch design once the patches
			// are reversed.
			rollback()
			return nil, err
		}
		return &Outcome{FallbackReason: "checksum mismatch", Report: e.rep}, nil
	}

	mIncrAnalyses.Inc()
	mCacheHits.Inc()
	mDirtyClusters.Add(int64(len(ids)))

	// Replay the from-scratch computation: initial offsets, cached base
	// result with just the dirty clusters recomputed, then the incremental
	// Algorithm 1 fixed point. Any interruption rolls the patches back —
	// the previous report and base cache stay live, and the caller can
	// retry the identical batch.
	e.an.ResetOffsets()
	res := e.base.Clone()
	if len(ids) > 0 {
		// Large dirty sets (≥ the sta threshold) ride the level-scheduled
		// parallel walk when the engine was opened with Options.Workers;
		// small ones stay on the sequential allocation-free path.
		if ctx != nil {
			if err := sta.RecomputeParallelContext(ctx, e.an.CD, e.an.St, res, ids, e.opts.Workers); err != nil {
				rollback()
				return nil, err
			}
		} else {
			sta.RecomputeParallel(e.an.CD, e.an.St, res, ids, e.opts.Workers)
		}
		e.base = res.CloneInto(e.spare)
		e.spare = nil
	}
	var rep *core.Report
	var err error
	if ctx != nil {
		rep, err = e.an.IdentifySlowPathsFromCtx(ctx, res)
	} else {
		rep, err = e.an.IdentifySlowPathsFrom(res)
	}
	if err != nil {
		rollback()
		return nil, err
	}
	e.rep, e.cons = rep, nil
	if oldBase != e.base {
		e.spare = oldBase // recycle the retired base for the next rebase
	}
	e.snapshotOffsets()
	return &Outcome{Incremental: true, DirtyClusters: len(ids), Report: rep}, nil
}

// reevalArc re-evaluates one cluster arc's delays at the current loads and
// adjustments.
func (e *Engine) reevalArc(r arcRef) {
	cl := e.an.CD.Network.Clusters[r.cluster]
	a := &cl.Arcs[r.arc]
	inst := &e.design.Instances[e.instIdx[a.Inst]]
	cell := e.an.Lib.Cell(inst.Ref)
	if cell == nil {
		return
	}
	for ai := range cell.Arcs {
		ca := &cell.Arcs[ai]
		if ca.From == a.FromPin && ca.To == a.ToPin {
			a.D = e.an.CD.Calc.ArcDelays(inst, ca)
			return
		}
	}
}

// applyFull applies the batch to a private copy of the design and
// re-elaborates; the engine only adopts the copy if the rebuild succeeds.
func (e *Engine) applyFull(ctx context.Context, edits []Edit) (*Outcome, error) {
	mFullFallbacks.Inc()
	d2 := cloneDesign(e.design)
	adj2 := cloneAdjust(e.opts.Adjustments)
	idx := make(map[string]int, len(d2.Instances))
	for i := range d2.Instances {
		idx[d2.Instances[i].Name] = i
	}
	for _, ed := range edits {
		switch ed.Op {
		case Adjust:
			adj2[ed.Inst] += ed.Delta
			if adj2[ed.Inst] == 0 {
				delete(adj2, ed.Inst)
			}
		case Resize, Replace:
			d2.Instances[idx[ed.Inst]].Ref = ed.To
		case AddInst:
			ni := netlist.Instance{Name: ed.New.Name, Ref: ed.New.Ref,
				Conns: make(map[string]string, len(ed.New.Conns))}
			for pin, net := range ed.New.Conns {
				ni.Conns[pin] = net
			}
			d2.Instances = append(d2.Instances, ni)
			idx[ni.Name] = len(d2.Instances) - 1
		case RemoveInst:
			i := idx[ed.Inst]
			d2.Instances = append(d2.Instances[:i], d2.Instances[i+1:]...)
			delete(adj2, ed.Inst)
			for j := i; j < len(d2.Instances); j++ {
				idx[d2.Instances[j].Name] = j
			}
			delete(idx, ed.Inst)
		case Rewire:
			inst := &d2.Instances[idx[ed.Inst]]
			if ed.Net == "" {
				delete(inst.Conns, ed.Pin)
			} else {
				inst.Conns[ed.Pin] = ed.Net
			}
		}
	}
	oldDesign, oldAdj := e.design, e.opts.Adjustments
	e.design, e.opts.Adjustments = d2, adj2
	if err := e.loadFull(ctx); err != nil {
		e.design, e.opts.Adjustments = oldDesign, oldAdj
		return nil, err
	}
	return &Outcome{FallbackReason: "topology change", Report: e.rep}, nil
}

// loadFull re-elaborates the current design and runs a full analysis,
// refreshing every cache (ctx may be nil: uninterruptible). The engine's
// previous state survives a failed or interrupted elaboration; a
// non-convergent fixed point invalidates the report.
func (e *Engine) loadFull(ctx context.Context) error {
	mFullAnalyses.Inc()
	mCacheMisses.Inc()
	an, err := core.Load(e.lib, e.design, e.opts)
	if err != nil {
		return err
	}
	if err := e.analyzeFresh(ctx, an); err != nil {
		return err
	}
	// The rebuilt analyzer owns a private compiled design; drop any
	// reference still held on a shared one.
	e.ReleaseShared()
	return nil
}

// analyzeFresh runs the first full analysis on a freshly constructed
// analyzer and, on success, adopts it along with rebuilt caches and
// indexes. The engine's previous state survives a failure.
func (e *Engine) analyzeFresh(ctx context.Context, an *core.Analyzer) error {
	var res *sta.Result
	var err error
	if ctx != nil {
		if res, err = sta.AnalyzeParallelContext(ctx, an.CD, an.St, an.Opts.Workers); err != nil {
			return err
		}
	} else {
		res = sta.AnalyzeParallel(an.CD, an.St, an.Opts.Workers)
	}
	base := res.Clone()
	var rep *core.Report
	if ctx != nil {
		rep, err = an.IdentifySlowPathsFromCtx(ctx, res)
	} else {
		rep, err = an.IdentifySlowPathsFrom(res)
	}
	if err != nil {
		return err
	}
	e.an, e.base, e.rep, e.cons = an, base, rep, nil
	e.snapshotOffsets()
	e.topo = e.topoHash()
	e.buildIndexes()
	return nil
}

func (e *Engine) snapshotOffsets() { e.odz = e.an.St.SnapshotOffsets(e.odz) }

func (e *Engine) restoreOffsets() { e.an.St.RestoreOffsets(e.odz) }

func (e *Engine) buildIndexes() {
	e.instIdx = make(map[string]int, len(e.design.Instances))
	for i := range e.design.Instances {
		e.instIdx[e.design.Instances[i].Name] = i
	}
	e.arcsByInst = map[string][]arcRef{}
	e.arcsByTo = map[int][]arcRef{}
	for ci, cl := range e.an.CD.Network.Clusters {
		for ai := range cl.Arcs {
			a := &cl.Arcs[ai]
			e.arcsByInst[a.Inst] = append(e.arcsByInst[a.Inst], arcRef{ci, ai})
			e.arcsByTo[a.To] = append(e.arcsByTo[a.To], arcRef{ci, ai})
		}
	}
}

// cloneDesign deep-copies the mutable parts of a design. Module bodies are
// shared: the engine never edits inside modules.
func cloneDesign(d *netlist.Design) *netlist.Design {
	c := &netlist.Design{
		Name:      d.Name,
		Clocks:    append([]clock.Signal(nil), d.Clocks...),
		Ports:     append([]netlist.Port(nil), d.Ports...),
		Instances: make([]netlist.Instance, len(d.Instances)),
		Modules:   d.Modules,
	}
	for i, inst := range d.Instances {
		conns := make(map[string]string, len(inst.Conns))
		for pin, net := range inst.Conns {
			conns[pin] = net
		}
		c.Instances[i] = netlist.Instance{Name: inst.Name, Ref: inst.Ref, Conns: conns}
	}
	return c
}

func cloneAdjust(m map[string]clock.Time) map[string]clock.Time {
	c := make(map[string]clock.Time, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
