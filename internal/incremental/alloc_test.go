package incremental

import (
	"testing"

	"hummingbird/internal/clock"
)

// TestDelayEditAllocs is the allocation-regression guard for incremental
// edit application: a steady-state delay-only Apply must stay within a
// handful of allocations — the fresh Result and Report handed to the caller
// (three for the result clone, one backing per dirty cluster's pass
// details, the report and outcome structs) and nothing per-arc, per-net or
// per-pass. The engine's scratch maps, undo log, dirty-cluster ids and
// spare base buffer are all reused across edits; a regression here (a
// per-call map, a second base clone, sort.Slice garbage) trips the guard.
func TestDelayEditAllocs(t *testing.T) {
	eng := openPipe(t)
	delta := clock.Time(100)
	apply := func() {
		out, err := eng.Apply(Edit{Op: Adjust, Inst: "g2", Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Incremental {
			t.Fatal("adjust fell back to full analysis")
		}
		delta = -delta
	}
	// Warm: first edit unshares nothing here but grows the scratch
	// structures and the spare buffer to steady-state size.
	apply()
	apply()

	allocs := testing.AllocsPerRun(50, apply)
	const limit = 10
	if allocs > limit {
		t.Fatalf("delay-only Apply allocates %.1f times per run, limit %d", allocs, limit)
	}
}
