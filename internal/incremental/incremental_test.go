package incremental

import (
	"context"
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
	"hummingbird/internal/workload"
)

const pipeSrc = `
design pipe
clock phi1 period 10ns rise 0 fall 4ns
clock phi2 period 10ns rise 5ns fall 9ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset -0.5ns
inst g1 BUF_X1 A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi1 Q=q1
inst g2 INV_X1 A=q1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst l2 DFF_X1 D=n3 CK=phi2 Q=q2
inst g4 BUF_X1 A=q2 Y=OUT
end
`

func openPipe(t *testing.T) *Engine {
	t.Helper()
	d, err := netlist.ParseString(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(celllib.Default(), d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestAdjustIsIncremental(t *testing.T) {
	eng := openPipe(t)
	out, err := eng.Apply(Edit{Op: Adjust, Inst: "g2", Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Incremental {
		t.Fatalf("adjust classified as full rebuild: %+v", out)
	}
	if out.DirtyClusters == 0 {
		t.Fatal("adjust dirtied no clusters")
	}
	if out.Report == nil || out.Report != eng.Report() {
		t.Fatal("outcome report not the engine's current report")
	}
}

func TestResizeSameInterfaceIsIncremental(t *testing.T) {
	eng := openPipe(t)
	out, err := eng.Apply(Edit{Op: Resize, Inst: "g2", To: "INV_X2"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Incremental {
		t.Fatalf("drive resize classified as full rebuild: %+v", out)
	}
	if got := eng.Design().Instances[2].Ref; got != "INV_X2" {
		t.Fatalf("resize not applied: ref %q", got)
	}
}

func TestResizeDifferentInterfaceFallsBack(t *testing.T) {
	eng := openPipe(t)
	// INV→BUF changes the arc sense, so the elaborated network differs.
	out, err := eng.Apply(Edit{Op: Resize, Inst: "g2", To: "BUF_X1"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Incremental {
		t.Fatal("interface-changing resize took the incremental path")
	}
	if out.FallbackReason != "topology change" {
		t.Fatalf("fallback reason %q", out.FallbackReason)
	}
}

func TestSyncEditFallsBack(t *testing.T) {
	eng := openPipe(t)
	out, err := eng.Apply(Edit{Op: Adjust, Inst: "l1", Delta: 50})
	if err != nil {
		t.Fatal(err)
	}
	if out.Incremental {
		t.Fatal("adjust on a latch took the incremental path")
	}
}

func TestAddRemoveRoundTrip(t *testing.T) {
	eng := openPipe(t)
	before := eng.StateHash()
	add := Edit{Op: AddInst, New: &netlist.Instance{
		Name: "gx", Ref: "BUF_X1", Conns: map[string]string{"A": "n2", "Y": "nx"}}}
	out, err := eng.Apply(add)
	if err != nil {
		t.Fatal(err)
	}
	if out.Incremental {
		t.Fatal("add took the incremental path")
	}
	if eng.StateHash() == before {
		t.Fatal("state hash unchanged after add")
	}
	if _, err := eng.Apply(Edit{Op: RemoveInst, Inst: "gx"}); err != nil {
		t.Fatal(err)
	}
	if eng.StateHash() != before {
		t.Fatal("state hash did not return after add+remove")
	}
}

func TestInvalidEditsLeaveEngineUnchanged(t *testing.T) {
	eng := openPipe(t)
	rep := eng.Report()
	hash := eng.StateHash()
	cases := []Edit{
		{Op: Adjust, Inst: "nope", Delta: 10},
		{Op: Resize, Inst: "g2", To: "NO_SUCH_CELL"},
		{Op: AddInst, New: &netlist.Instance{Name: "g2", Ref: "BUF_X1",
			Conns: map[string]string{"A": "n1", "Y": "ny"}}},
		// Rewiring the latch's data pin to an undriven net fails
		// validation inside the rebuild; the engine must roll back.
		{Op: Rewire, Inst: "l2", Pin: "D", Net: "floating_net"},
	}
	for _, ed := range cases {
		if _, err := eng.Apply(ed); err == nil {
			t.Fatalf("edit %+v unexpectedly succeeded", ed)
		}
		if eng.Report() != rep {
			t.Fatalf("edit %+v replaced the report despite failing", ed)
		}
		if eng.StateHash() != hash {
			t.Fatalf("edit %+v changed the design despite failing", ed)
		}
	}
}

// TestCancelledApplyRollsBack cancels a delay-only batch mid-analysis and
// checks atomicity: the engine keeps its previous state, hash and report,
// and retrying the identical batch applies it exactly once (matching a
// reference engine that never saw the cancellation).
func TestCancelledApplyRollsBack(t *testing.T) {
	eng := openPipe(t)
	ref := openPipe(t)
	hash := eng.StateHash()
	rep := eng.Report()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// An adjust plus a cap-changing drive resize: exercises the adjustment
	// map, the delay calculator, the load refresh and the arc patches.
	batch := []Edit{
		{Op: Adjust, Inst: "g2", Delta: 100},
		{Op: Resize, Inst: "g3", To: "INV_X4"},
	}
	if _, err := eng.ApplyContext(ctx, batch...); err == nil {
		t.Fatal("cancelled apply reported success")
	}
	if eng.StateHash() != hash {
		t.Fatal("cancelled apply changed the state hash")
	}
	if eng.Report() != rep {
		t.Fatal("cancelled apply replaced the report")
	}
	if got := eng.Options().Adjustments; len(got) != 0 {
		t.Fatalf("cancelled apply left adjustments behind: %v", got)
	}
	if got := eng.Design().Instances[3].Ref; got != "INV_X1" {
		t.Fatalf("cancelled apply left resize applied: ref %q", got)
	}
	if _, err := eng.Apply(batch...); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Apply(batch...); err != nil {
		t.Fatal(err)
	}
	if eng.StateHash() != ref.StateHash() {
		t.Fatalf("retried batch diverged: %s != %s", eng.StateHash(), ref.StateHash())
	}
	if eng.Report().WorstSlack() != ref.Report().WorstSlack() {
		t.Fatalf("retried batch worst slack %v != reference %v",
			eng.Report().WorstSlack(), ref.Report().WorstSlack())
	}
	// A further edit over the rolled-back-then-retried state must still be
	// bit-identical — stale arc delays or a stale base cache would show here.
	more := Edit{Op: Adjust, Inst: "g1", Delta: 50}
	if _, err := eng.Apply(more); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Apply(more); err != nil {
		t.Fatal(err)
	}
	if eng.Report().WorstSlack() != ref.Report().WorstSlack() {
		t.Fatal("post-retry edit diverged from reference")
	}
}

func TestBatchWithTopologyEditRebuildsOnce(t *testing.T) {
	eng := openPipe(t)
	out, err := eng.Apply(
		Edit{Op: Adjust, Inst: "g2", Delta: 100},
		Edit{Op: AddInst, New: &netlist.Instance{
			Name: "gx", Ref: "BUF_X1", Conns: map[string]string{"A": "n2", "Y": "nx"}}},
		Edit{Op: Rewire, Inst: "gx", Pin: "A", Net: "n3"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.Incremental {
		t.Fatal("batch with topology edits took the incremental path")
	}
	gx := eng.Design().Instances[len(eng.Design().Instances)-1]
	if gx.Name != "gx" || gx.Conns["A"] != "n3" {
		t.Fatalf("batch application wrong: %+v", gx)
	}
	if eng.Options().Adjustments["g2"] != 100 {
		t.Fatal("adjustment lost in topology batch")
	}
}

func TestConstraintsCachedAndOffsetsRestored(t *testing.T) {
	eng := openPipe(t)
	st := eng.Analyzer().St
	odz := st.SnapshotOffsets(nil)
	c1, err := eng.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range st.Odz {
		if v != odz[i] {
			t.Fatalf("element %d offset moved by Constraints: %v != %v", i, v, odz[i])
		}
	}
	c2, err := eng.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("second Constraints call did not hit the cache")
	}
	if _, err := eng.Apply(Edit{Op: Adjust, Inst: "g2", Delta: 10}); err != nil {
		t.Fatal(err)
	}
	c3, err := eng.Constraints()
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Fatal("edit did not invalidate the constraints cache")
	}
}

func TestTopologyChecksumInvariants(t *testing.T) {
	lib := celllib.Default()
	d1, _ := netlist.ParseString(pipeSrc)
	d2, _ := netlist.ParseString(pipeSrc)
	if TopologyChecksum(d1, lib) != TopologyChecksum(d2, lib) {
		t.Fatal("checksum not deterministic")
	}
	// Drive resize keeps the checksum (delay-only by construction).
	d2.Instances[2].Ref = "INV_X2"
	if TopologyChecksum(d1, lib) != TopologyChecksum(d2, lib) {
		t.Fatal("drive resize changed the topology checksum")
	}
	// Rewiring changes it.
	d2.Instances[2].Conns["A"] = "n3"
	if TopologyChecksum(d1, lib) == TopologyChecksum(d2, lib) {
		t.Fatal("rewire kept the topology checksum")
	}
}

func TestStateHashDistinguishesAdjustments(t *testing.T) {
	e1 := openPipe(t)
	e2 := openPipe(t)
	if e1.StateHash() != e2.StateHash() {
		t.Fatal("identical engines hash differently")
	}
	if _, err := e1.Apply(Edit{Op: Adjust, Inst: "g2", Delta: 25}); err != nil {
		t.Fatal(err)
	}
	if e1.StateHash() == e2.StateHash() {
		t.Fatal("adjustment not reflected in state hash")
	}
	if _, err := e1.Apply(Edit{Op: Adjust, Inst: "g2", Delta: -25}); err != nil {
		t.Fatal(err)
	}
	if e1.StateHash() != e2.StateHash() {
		t.Fatal("reversed adjustment did not restore the state hash")
	}
}

func TestModuleInstanceAdjustIsIncremental(t *testing.T) {
	d := workload.SM1H()
	eng, err := Open(celllib.Default(), d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var modInst string
	for _, inst := range eng.Design().Instances {
		if _, ok := eng.Design().Modules[inst.Ref]; ok {
			modInst = inst.Name
			break
		}
	}
	if modInst == "" {
		t.Skip("SM1H has no module instances")
	}
	out, err := eng.Apply(Edit{Op: Adjust, Inst: modInst, Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Incremental {
		t.Fatalf("adjust on rolled-up module instance %s fell back", modInst)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		Adjust: "adjust", Resize: "resize", Replace: "replace",
		AddInst: "add", RemoveInst: "remove", Rewire: "rewire",
	} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	if !strings.HasPrefix(Op(99).String(), "Op(") {
		t.Fatal("unknown op string")
	}
}
