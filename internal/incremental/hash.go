package incremental

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/fnv"
	"sort"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/netlist"
)

// TopologyChecksum hashes everything that shapes the elaborated timing
// network — clocks, ports, instance connectivity and each referenced
// cell's pin/arc interface and synchronising parameters — while excluding
// what delay-only edits may change: delay expressions, input capacitances
// and per-instance adjustments. Two designs with equal checksums elaborate
// to networks with identical clusters, sites and arcs (only the arc delay
// values may differ).
//
// The checksum is a wrap-around sum of one FNV-1a term per instance plus a
// header term, so a single-instance edit shifts the checksum by exactly
// (new instance term − old instance term) — which is what lets the engine
// verify a delay-only batch in O(edit) instead of rehashing the design.
func TopologyChecksum(d *netlist.Design, lib *celllib.Library) uint64 {
	sum := headerTerm(d)
	for i := range d.Instances {
		sum += instanceTerm(&d.Instances[i], lib)
	}
	return sum
}

// headerTerm hashes the design-wide structure: name, clocks, ports and
// module names.
func headerTerm(d *netlist.Design) uint64 {
	h := fnv.New64a()
	ws := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	wi := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	ws(d.Name)
	for _, c := range d.Clocks {
		ws(c.Name)
		wi(int64(c.Period))
		wi(int64(c.RiseAt))
		wi(int64(c.FallAt))
	}
	for _, p := range d.Ports {
		ws(p.Name)
		wi(int64(p.Dir))
		ws(p.RefClock)
		wi(int64(p.RefEdge))
		wi(int64(p.Offset))
	}
	mods := make([]string, 0, len(d.Modules))
	for m := range d.Modules {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	for _, m := range mods {
		ws(m)
	}
	return h.Sum64()
}

// instanceTerm hashes one instance's contribution to the checksum: its
// name, its cell's interface signature and its sorted connections.
func instanceTerm(inst *netlist.Instance, lib *celllib.Library) uint64 {
	h := fnv.New64a()
	ws := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	ws(inst.Name)
	if cell := lib.Cell(inst.Ref); cell != nil {
		cellSig(h, cell)
	} else {
		ws(inst.Ref)
	}
	pins := make([]string, 0, len(inst.Conns))
	for pin := range inst.Conns {
		pins = append(pins, pin)
	}
	sort.Strings(pins)
	for _, pin := range pins {
		ws(pin)
		ws(inst.Conns[pin])
	}
	return h.Sum64()
}

// cellSig writes the parts of a cell that shape the network: kind, pin
// names/directions/roles, arc endpoints/senses, and sync parameters.
// Delay expressions and pin capacitances are deliberately excluded so a
// drive-strength resize within the same interface keeps the checksum.
func cellSig(h hash.Hash64, c *celllib.Cell) {
	var b [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	ws := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	ws("cell")
	wi(int64(c.Kind))
	pins := make([]string, len(c.Pins))
	for i := range c.Pins {
		pins[i] = c.Pins[i].Name
	}
	sort.Strings(pins)
	for _, name := range pins {
		p := c.Pin(name)
		ws(p.Name)
		wi(int64(p.Dir))
		wi(int64(p.Role))
	}
	type arcKey struct {
		from, to string
		sense    celllib.Sense
	}
	arcs := make([]arcKey, len(c.Arcs))
	for i, a := range c.Arcs {
		arcs[i] = arcKey{a.From, a.To, a.Sense}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].from != arcs[j].from {
			return arcs[i].from < arcs[j].from
		}
		if arcs[i].to != arcs[j].to {
			return arcs[i].to < arcs[j].to
		}
		return arcs[i].sense < arcs[j].sense
	})
	for _, a := range arcs {
		ws(a.from)
		ws(a.to)
		wi(int64(a.sense))
	}
	if c.Sync != nil {
		wi(int64(c.Sync.Dsetup))
		wi(int64(c.Sync.Ddz))
		wi(int64(c.Sync.Dcz))
		if c.Sync.ActiveLow {
			wi(1)
		} else {
			wi(0)
		}
	}
}

func (e *Engine) topoHash() uint64 {
	return TopologyChecksum(e.design, e.an.Lib)
}

// StateHash identifies the engine's full analysis state: the canonical
// netlist text plus the cumulative delay adjustments. Two engines with
// equal state hashes produce identical reports, which is what lets
// hummingbirdd key its cache of parked analysis states on it.
func (e *Engine) StateHash() string {
	return StateKey(e.design, e.opts.Adjustments)
}

// StateKey computes the analysis-state hash for a design + adjustments
// pair without building an engine — servers use it to probe their cache
// before paying for a full elaboration.
func StateKey(d *netlist.Design, adjustments map[string]clock.Time) string {
	h := sha256.New()
	netlist.Write(h, d)
	names := make([]string, 0, len(adjustments))
	for n := range adjustments {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "adjust %s %d\n", n, int64(adjustments[n]))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
