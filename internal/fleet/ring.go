// Package fleet is the horizontal scale-out layer over hummingbirdd: a
// consistent-hash ring that pins sessions to one of N daemon replicas
// keyed by design hash (so replicas sharing a design also share its
// refcounted compile), a journal stream client that replicates each
// session's committed edit frames to a designated peer replica, and a
// router (cmd/hummingbirdfleet) that proxies the session protocol,
// aggregates member health, and performs hot failover — when a replica
// dies or drains, its sessions are re-homed to the peer, which replays
// the streamed journal and serves the session's next request under the
// same session id. See docs/FLEET.md.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per member. 128 points per
// member keeps the placement spread within a few percent of uniform and
// bounds key movement on a join/leave to ~K/N.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring. Lookups are deterministic:
// the same member set (in any order) and the same key always map to the
// same member, across processes and restarts — the router can be
// restarted without re-homing a single session.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members []string    // sorted member ids
}

type ringPoint struct {
	hash   uint64
	member string
}

// hash64 is the ring's point/key hash: FNV-1a 64 with an avalanche
// finalizer, chosen for determinism across builds (no seeding) and
// speed. Raw FNV output is correlated for short, similar inputs
// ("r1#0", "r3#17", ...), which skews vnode placement badly; the
// finalizer (the 64-bit murmur3 mixer) restores uniform spread. The
// ring does not need cryptographic strength, only spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NewRing builds a ring over the member ids with vnodes virtual points
// per member (DefaultVnodes when <= 0). Duplicate ids collapse; an empty
// member set yields a ring whose lookups return "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare with 64-bit points) break by member
		// id so the ring stays order-independent.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the sorted member ids on the ring.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size is the member count.
func (r *Ring) Size() int { return len(r.members) }

// Lookup returns the member owning key: the first ring point clockwise
// from the key's hash. Empty ring returns "".
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(hash64(key))].member
}

// Successor returns the first member clockwise from key that differs
// from exclude — the designated journal-replication peer for a session
// whose primary is exclude. With fewer than two members it returns "".
func (r *Ring) Successor(key, exclude string) string {
	if len(r.members) < 2 {
		return ""
	}
	i := r.search(hash64(key))
	for n := 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if p.member != exclude {
			return p.member
		}
	}
	return ""
}

// Successors returns the first n distinct members clockwise from key,
// skipping exclude — the session's replication chain: frames stream to
// each in ring order, and failover adopts from whichever holds the
// highest contiguous sequence. Fewer than n members remain after the
// exclusion, the chain is just shorter; it is never padded.
func (r *Ring) Successors(key, exclude string, n int) []string {
	if n <= 0 || len(r.members) < 2 {
		return nil
	}
	out := make([]string, 0, n)
	seen := map[string]bool{exclude: true}
	i := r.search(hash64(key))
	for step := 0; step < len(r.points) && len(out) < n; step++ {
		p := r.points[(i+step)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, p.member)
	}
	return out
}

// search returns the index of the first point with hash >= h, wrapping
// to 0 past the last point.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
