package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// conflictPeer is a fake replica whose frames endpoint always answers
// 409 with a fixed next sequence — a peer that persistently disagrees.
func conflictPeer(next int64) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusConflict)
		fmt.Fprintf(w, `{"next": %d}`, next)
	}))
	return ts, &hits
}

// TestStreamConflictBackoff: the first conflict in a flush realigns and
// retries immediately; persistent conflicts arm a doubling backoff that
// gates Commit-path flushes, and Flush (force) bypasses the gate.
func TestStreamConflictBackoff(t *testing.T) {
	ts, hits := conflictPeer(0)
	defer ts.Close()

	now := time.Unix(1000, 0)
	st := NewSessionStream(ts.Client(), ts.URL, "r2", "s1", nil)
	st.nowFn = func() time.Time { return now }

	// First Commit: realign + one retry, then conflicts=2 arms the base
	// backoff. Exactly two requests hit the peer.
	st.Commit([][]byte{[]byte("f0\n")})
	if got := hits.Load(); got != 2 {
		t.Fatalf("first flush made %d requests, want 2 (realign + retry)", got)
	}
	if st.Lag() != 1 {
		t.Fatalf("lag %d after rejected push, want 1", st.Lag())
	}

	// Inside the backoff window, Commit-path flushes are gated: frames
	// buffer, no request leaves.
	st.Commit([][]byte{[]byte("f1\n")})
	if got := hits.Load(); got != 2 {
		t.Fatalf("gated flush still sent a request (total %d)", got)
	}
	if st.Lag() != 2 {
		t.Fatalf("lag %d, want 2 buffered frames", st.Lag())
	}

	// Past the window the next Commit attempts once more; the conflict
	// re-arms with a doubled delay, so a Commit right after the first
	// base interval stays gated.
	now = now.Add(conflictBackoffBase + time.Millisecond)
	st.Commit([][]byte{[]byte("f2\n")})
	if got := hits.Load(); got != 3 {
		t.Fatalf("post-window flush made %d total requests, want 3", got)
	}
	now = now.Add(conflictBackoffBase + time.Millisecond) // 2x base still pending
	st.Commit([][]byte{[]byte("f3\n")})
	if got := hits.Load(); got != 3 {
		t.Fatalf("doubled backoff not honored: %d total requests", got)
	}

	// Flush bypasses the gate (one fresh attempt) and reports the lag.
	if err := st.Flush(); err == nil {
		t.Fatal("Flush returned nil while the peer still conflicts")
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("forced flush made %d total requests, want 4", got)
	}

	// The backoff never exceeds the cap no matter how many conflicts.
	for i := 0; i < 20; i++ {
		now = now.Add(conflictBackoffCap + time.Millisecond)
		st.Commit(nil)
	}
	st.mu.Lock()
	armed := st.retryAt.Sub(now)
	st.mu.Unlock()
	if armed > conflictBackoffCap {
		t.Fatalf("backoff %v exceeds cap %v", armed, conflictBackoffCap)
	}
}

// TestStreamConflictRecovery: a successful push resets the conflict
// counter and clears the gate.
func TestStreamConflictRecovery(t *testing.T) {
	var mode atomic.Int32 // 0: conflict, 1: ack everything
	var next atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mode.Load() == 0 {
			w.WriteHeader(http.StatusConflict)
			fmt.Fprintf(w, `{"next": 0}`)
			return
		}
		n := next.Add(1)
		fmt.Fprintf(w, `{"next": %d}`, n)
	}))
	defer ts.Close()

	now := time.Unix(2000, 0)
	st := NewSessionStream(ts.Client(), ts.URL, "r2", "s1", nil)
	st.nowFn = func() time.Time { return now }

	st.Commit([][]byte{[]byte("f0\n")}) // arms backoff
	mode.Store(1)
	if err := st.Flush(); err != nil { // forced attempt succeeds
		t.Fatalf("recovered flush: %v", err)
	}
	st.mu.Lock()
	conflicts, retryAt := st.conflicts, st.retryAt
	st.mu.Unlock()
	if conflicts != 0 || !retryAt.IsZero() {
		t.Fatalf("success did not clear conflict state: conflicts=%d retryAt=%v", conflicts, retryAt)
	}
	// And the next Commit posts immediately again.
	st.Commit([][]byte{[]byte("f1\n")})
	if st.Lag() != 0 {
		t.Fatalf("post-recovery commit left lag %d", st.Lag())
	}
}

// TestPeersHeaderRoundTrip: FormatPeers/ParsePeers carry a chain through
// headers; the legacy single-peer pair still parses; malformed entries
// drop silently.
func TestPeersHeaderRoundTrip(t *testing.T) {
	chain := []Member{{ID: "r2", URL: "http://h2:1"}, {ID: "r3", URL: "http://h3:1"}}
	h := http.Header{}
	h.Set(PeersHeader, FormatPeers(chain))
	got := ParsePeers(h)
	if len(got) != 2 || got[0] != chain[0] || got[1] != chain[1] {
		t.Fatalf("round trip: %+v", got)
	}

	legacy := http.Header{}
	legacy.Set(PeerHeader, "http://h2:1")
	legacy.Set(PeerIDHeader, "r2")
	if got := ParsePeers(legacy); len(got) != 1 || got[0].ID != "r2" || got[0].URL != "http://h2:1" {
		t.Fatalf("legacy pair: %+v", got)
	}

	bad := http.Header{}
	bad.Set(PeersHeader, "nourl,r2=http://h2:1,=x,r3=")
	if got := ParsePeers(bad); len(got) != 1 || got[0].ID != "r2" {
		t.Fatalf("malformed entries not dropped: %+v", got)
	}
	if got := ParsePeers(http.Header{}); got != nil {
		t.Fatalf("empty headers produced a chain: %+v", got)
	}
}

// TestMultiStreamFanout: Commit reaches every hop independently, Lag is
// the worst hop, and HopLags keeps chain order.
func TestMultiStreamFanout(t *testing.T) {
	type peerState struct {
		mu   sync.Mutex
		got  int64
		fail bool
	}
	mkPeer := func(ps *peerState) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ps.mu.Lock()
			defer ps.mu.Unlock()
			if ps.fail {
				w.WriteHeader(http.StatusInternalServerError)
				return
			}
			ps.got++
			fmt.Fprintf(w, `{"next": %d}`, ps.got)
		}))
	}
	var p1, p2 peerState
	ts1, ts2 := mkPeer(&p1), mkPeer(&p2)
	defer ts1.Close()
	defer ts2.Close()
	p2.fail = true

	ms := NewMultiStream(
		NewSessionStream(ts1.Client(), ts1.URL, "r2", "s1", nil),
		nil, // a dead hop at build time is skipped, not fatal
		NewSessionStream(ts2.Client(), ts2.URL, "r3", "s1", nil),
	)
	ms.Commit([][]byte{[]byte("f0\n")})
	if lag := ms.Lag(); lag != 1 {
		t.Fatalf("worst-hop lag %d, want 1 (r3 down)", lag)
	}
	hops := ms.HopLags()
	if len(hops) != 2 || hops[0].Peer != "r2" || hops[1].Peer != "r3" {
		t.Fatalf("hop order: %+v", hops)
	}
	if hops[0].Lag != 0 || hops[1].Lag != 1 {
		t.Fatalf("hop lags: %+v", hops)
	}
	if got := ms.Peers(); len(got) != 2 || got[0] != "r2" || got[1] != "r3" {
		t.Fatalf("peers: %v", got)
	}

	// The dead hop recovers on the next flush; both standbys converge.
	p2.mu.Lock()
	p2.fail = false
	p2.mu.Unlock()
	if err := ms.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if lag := ms.Lag(); lag != 0 {
		t.Fatalf("lag %d after recovery, want 0", lag)
	}
}
