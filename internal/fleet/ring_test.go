package fleet

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("design-%d", i)
	}
	return out
}

// TestRingDeterministicPlacement: the same member set — in any order —
// and the same key always map to the same member, across ring rebuilds.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing([]string{"r1", "r2", "r3"}, 0)
	b := NewRing([]string{"r3", "r1", "r2"}, 0)
	c := NewRing([]string{"r2", "r3", "r1", "r1"}, 0) // duplicate collapses
	for _, k := range keys(1000) {
		pa, pb, pc := a.Lookup(k), b.Lookup(k), c.Lookup(k)
		if pa != pb || pa != pc {
			t.Fatalf("key %q: placements diverge: %q %q %q", k, pa, pb, pc)
		}
		if pa == "" {
			t.Fatalf("key %q: empty placement on a populated ring", k)
		}
	}
}

// TestRingCoLocation: keys equal as strings land on the same member —
// the property that makes same-design-hash sessions share a replica and
// therefore one refcounted compiled design.
func TestRingCoLocation(t *testing.T) {
	r := NewRing([]string{"r1", "r2", "r3", "r4", "r5"}, 0)
	for _, k := range keys(200) {
		if r.Lookup(k) != r.Lookup(k) {
			t.Fatalf("key %q: lookup not stable", k)
		}
	}
	// Distinct session ids carrying the same design hash route by the
	// hash, not the session — simulated by looking the hash up twice from
	// two call sites.
	h := "designhash-abc123"
	if r.Lookup(h) != r.Lookup(h) {
		t.Fatal("same design hash did not co-locate")
	}
}

// TestRingBoundedMovement: adding or removing one member moves at most
// ~K/N keys (with generous slack for hash variance) and never moves a
// key between two members that are present in both rings.
func TestRingBoundedMovement(t *testing.T) {
	const K = 20000
	ks := keys(K)
	members := []string{"r1", "r2", "r3", "r4"}
	before := NewRing(members, 0)
	after := NewRing(append(append([]string{}, members...), "r5"), 0)

	moved := 0
	for _, k := range ks {
		was, now := before.Lookup(k), after.Lookup(k)
		if was == now {
			continue
		}
		moved++
		// Every moved key must have moved TO the new member; a move
		// between surviving members would be unbounded churn.
		if now != "r5" {
			t.Fatalf("key %q moved %q -> %q, not to the joining member", k, was, now)
		}
	}
	// Expectation is K/5 = 4000; allow 40% slack for vnode variance.
	if lim := K / 5 * 14 / 10; moved > lim {
		t.Fatalf("join moved %d/%d keys, want <= %d (~K/N)", moved, K, lim)
	}
	if moved == 0 {
		t.Fatal("join moved no keys; ring is ignoring the new member")
	}

	// Leave: removing r5 again restores the original placement exactly.
	shrunk := NewRing(members, 0)
	for _, k := range ks {
		if before.Lookup(k) != shrunk.Lookup(k) {
			t.Fatalf("key %q did not return to its pre-join member after leave", k)
		}
	}
}

// TestRingSpread: with vnodes on, no member owns a pathological share.
func TestRingSpread(t *testing.T) {
	r := NewRing([]string{"r1", "r2", "r3"}, 0)
	counts := map[string]int{}
	const K = 30000
	for _, k := range keys(K) {
		counts[r.Lookup(k)]++
	}
	for m, n := range counts {
		frac := float64(n) / K
		if frac < 0.20 || frac > 0.47 {
			t.Fatalf("member %s owns %.1f%% of keys; spread too skewed: %v", m, frac*100, counts)
		}
	}
}

// TestRingSuccessor: the peer is deterministic, never the primary, and
// lives on the ring.
func TestRingSuccessor(t *testing.T) {
	r := NewRing([]string{"r1", "r2", "r3"}, 0)
	onRing := map[string]bool{"r1": true, "r2": true, "r3": true}
	for _, k := range keys(500) {
		p := r.Lookup(k)
		peer := r.Successor(k, p)
		if peer == p {
			t.Fatalf("key %q: peer equals primary %q", k, p)
		}
		if !onRing[peer] {
			t.Fatalf("key %q: peer %q not a member", k, peer)
		}
		if peer != r.Successor(k, p) {
			t.Fatalf("key %q: successor not deterministic", k)
		}
	}
	single := NewRing([]string{"only"}, 0)
	if got := single.Successor("k", "only"); got != "" {
		t.Fatalf("single-member ring returned peer %q, want none", got)
	}
	if got := NewRing(nil, 0).Lookup("k"); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
}
