package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("design-%d", i)
	}
	return out
}

// TestRingDeterministicPlacement: the same member set — in any order —
// and the same key always map to the same member, across ring rebuilds.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing([]string{"r1", "r2", "r3"}, 0)
	b := NewRing([]string{"r3", "r1", "r2"}, 0)
	c := NewRing([]string{"r2", "r3", "r1", "r1"}, 0) // duplicate collapses
	for _, k := range keys(1000) {
		pa, pb, pc := a.Lookup(k), b.Lookup(k), c.Lookup(k)
		if pa != pb || pa != pc {
			t.Fatalf("key %q: placements diverge: %q %q %q", k, pa, pb, pc)
		}
		if pa == "" {
			t.Fatalf("key %q: empty placement on a populated ring", k)
		}
	}
}

// TestRingCoLocation: keys equal as strings land on the same member —
// the property that makes same-design-hash sessions share a replica and
// therefore one refcounted compiled design.
func TestRingCoLocation(t *testing.T) {
	r := NewRing([]string{"r1", "r2", "r3", "r4", "r5"}, 0)
	for _, k := range keys(200) {
		if r.Lookup(k) != r.Lookup(k) {
			t.Fatalf("key %q: lookup not stable", k)
		}
	}
	// Distinct session ids carrying the same design hash route by the
	// hash, not the session — simulated by looking the hash up twice from
	// two call sites.
	h := "designhash-abc123"
	if r.Lookup(h) != r.Lookup(h) {
		t.Fatal("same design hash did not co-locate")
	}
}

// TestRingBoundedMovement: adding or removing one member moves at most
// ~K/N keys (with generous slack for hash variance) and never moves a
// key between two members that are present in both rings.
func TestRingBoundedMovement(t *testing.T) {
	const K = 20000
	ks := keys(K)
	members := []string{"r1", "r2", "r3", "r4"}
	before := NewRing(members, 0)
	after := NewRing(append(append([]string{}, members...), "r5"), 0)

	moved := 0
	for _, k := range ks {
		was, now := before.Lookup(k), after.Lookup(k)
		if was == now {
			continue
		}
		moved++
		// Every moved key must have moved TO the new member; a move
		// between surviving members would be unbounded churn.
		if now != "r5" {
			t.Fatalf("key %q moved %q -> %q, not to the joining member", k, was, now)
		}
	}
	// Expectation is K/5 = 4000; allow 40% slack for vnode variance.
	if lim := K / 5 * 14 / 10; moved > lim {
		t.Fatalf("join moved %d/%d keys, want <= %d (~K/N)", moved, K, lim)
	}
	if moved == 0 {
		t.Fatal("join moved no keys; ring is ignoring the new member")
	}

	// Leave: removing r5 again restores the original placement exactly.
	shrunk := NewRing(members, 0)
	for _, k := range ks {
		if before.Lookup(k) != shrunk.Lookup(k) {
			t.Fatalf("key %q did not return to its pre-join member after leave", k)
		}
	}
}

// TestRingSpread: with vnodes on, no member owns a pathological share.
func TestRingSpread(t *testing.T) {
	r := NewRing([]string{"r1", "r2", "r3"}, 0)
	counts := map[string]int{}
	const K = 30000
	for _, k := range keys(K) {
		counts[r.Lookup(k)]++
	}
	for m, n := range counts {
		frac := float64(n) / K
		if frac < 0.20 || frac > 0.47 {
			t.Fatalf("member %s owns %.1f%% of keys; spread too skewed: %v", m, frac*100, counts)
		}
	}
}

// TestRingSuccessor: the peer is deterministic, never the primary, and
// lives on the ring.
func TestRingSuccessor(t *testing.T) {
	r := NewRing([]string{"r1", "r2", "r3"}, 0)
	onRing := map[string]bool{"r1": true, "r2": true, "r3": true}
	for _, k := range keys(500) {
		p := r.Lookup(k)
		peer := r.Successor(k, p)
		if peer == p {
			t.Fatalf("key %q: peer equals primary %q", k, p)
		}
		if !onRing[peer] {
			t.Fatalf("key %q: peer %q not a member", k, peer)
		}
		if peer != r.Successor(k, p) {
			t.Fatalf("key %q: successor not deterministic", k)
		}
	}
	single := NewRing([]string{"only"}, 0)
	if got := single.Successor("k", "only"); got != "" {
		t.Fatalf("single-member ring returned peer %q, want none", got)
	}
	if got := NewRing(nil, 0).Lookup("k"); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
}

// TestRingSuccessors: the chain is deterministic, holds distinct
// members, never contains the excluded primary, starts with the
// single-peer Successor (failover order is an extension, not a
// different answer), and is exactly min(n, N-1) long — never padded.
func TestRingSuccessors(t *testing.T) {
	members := []string{"r1", "r2", "r3", "r4", "r5"}
	r := NewRing(members, 0)
	onRing := map[string]bool{}
	for _, m := range members {
		onRing[m] = true
	}
	for _, k := range keys(500) {
		p := r.Lookup(k)
		for n := 0; n <= len(members)+2; n++ {
			chain := r.Successors(k, p, n)
			want := n
			if max := len(members) - 1; want > max {
				want = max
			}
			if len(chain) != want {
				t.Fatalf("key %q n=%d: chain %v has %d members, want %d", k, n, chain, len(chain), want)
			}
			seen := map[string]bool{}
			for _, m := range chain {
				if m == p {
					t.Fatalf("key %q: chain %v contains the primary %q", k, chain, p)
				}
				if seen[m] || !onRing[m] {
					t.Fatalf("key %q: chain %v has duplicate or foreign member %q", k, chain, m)
				}
				seen[m] = true
			}
			if n >= 1 && chain[0] != r.Successor(k, p) {
				t.Fatalf("key %q: chain head %q != Successor %q", k, chain[0], r.Successor(k, p))
			}
		}
	}
}

// TestRingSuccessorsEdgeCases: single member, empty ring, zero/negative
// n, and an exclude that is not on the ring at all.
func TestRingSuccessorsEdgeCases(t *testing.T) {
	if got := NewRing([]string{"only"}, 0).Successors("k", "only", 2); got != nil {
		t.Fatalf("single-member ring returned chain %v, want nil", got)
	}
	if got := NewRing(nil, 0).Successors("k", "x", 2); got != nil {
		t.Fatalf("empty ring returned chain %v, want nil", got)
	}
	two := NewRing([]string{"a", "b"}, 0)
	if got := two.Successors("k", "a", 0); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
	if got := two.Successors("k", "a", -3); got != nil {
		t.Fatalf("negative n returned %v, want nil", got)
	}
	// Excluding a non-member: the chain may legitimately contain the
	// key's owner (it is not the exclude), and caps at the member count.
	chain := two.Successors("k", "not-a-member", 5)
	if len(chain) != 2 {
		t.Fatalf("foreign exclude: chain %v, want both members", chain)
	}
}

// TestRingChurnProperty: across a randomized join/leave sequence, every
// single membership change moves at most ~K/N keys (with slack for
// vnode variance), and keys never move between two members that are in
// both the before and after rings.
func TestRingChurnProperty(t *testing.T) {
	const K = 10000
	ks := keys(K)
	rng := rand.New(rand.NewSource(42))
	members := []string{"r1", "r2", "r3"}
	nextID := 4
	ring := NewRing(members, 0)

	for step := 0; step < 12; step++ {
		prev, prevN := ring, len(members)
		join := rng.Intn(2) == 0 || len(members) <= 2
		var joined string
		if join {
			joined = fmt.Sprintf("r%d", nextID)
			nextID++
			members = append(members, joined)
		} else {
			gone := rng.Intn(len(members))
			members = append(members[:gone], members[gone+1:]...)
		}
		ring = NewRing(members, 0)

		moved := 0
		for _, k := range ks {
			was, now := prev.Lookup(k), ring.Lookup(k)
			if was == now {
				continue
			}
			moved++
			if join && now != joined {
				t.Fatalf("step %d: key %q moved %q -> %q, not to the joining member %q", step, k, was, now, joined)
			}
			if !join && ring.Lookup(k) == "" {
				t.Fatalf("step %d: key %q unplaced after leave", step, k)
			}
		}
		// The displaced share is K/N of the larger ring; allow 50% slack.
		n := prevN
		if len(members) > n {
			n = len(members)
		}
		if lim := K / n * 15 / 10; moved > lim {
			t.Fatalf("step %d (%d->%d members): moved %d/%d keys, want <= %d (~K/N)",
				step, prevN, len(members), moved, K, lim)
		}
		if moved == 0 {
			t.Fatalf("step %d: membership change moved no keys", step)
		}
	}
}
