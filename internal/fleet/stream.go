package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/flight"
)

var (
	mStreamFramesSent = telemetry.NewCounter("fleet.stream_frames_sent")
	mStreamAcks       = telemetry.NewCounter("fleet.stream_acks")
	mStreamErrors     = telemetry.NewCounter("fleet.stream_errors")
	mStreamRealigns   = telemetry.NewCounter("fleet.stream_realigns")
)

// FirstSeqHeader carries the sequence number of the first frame in a
// replication POST body. PeersHeader carries the session's replication
// chain as "id=url,id=url,..." in ring order; the legacy single-peer
// PeerHeader/PeerIDHeader pair is still parsed as a one-hop chain.
const (
	FirstSeqHeader = "X-Hb-First-Seq"
	PeersHeader    = "X-Hb-Peers"
	PeerHeader     = "X-Hb-Peer"
	PeerIDHeader   = "X-Hb-Peer-Id"
)

// FormatPeers renders a replication chain for the PeersHeader.
func FormatPeers(peers []Member) string {
	parts := make([]string, 0, len(peers))
	for _, p := range peers {
		if p.ID == "" || p.URL == "" {
			continue
		}
		parts = append(parts, p.ID+"="+p.URL)
	}
	return strings.Join(parts, ",")
}

// ParsePeers decodes a replication chain from request headers: the
// multi-hop PeersHeader when present, else the legacy single-peer pair.
// Malformed entries are dropped rather than failing the request — a
// session with a short (or empty) chain still serves.
func ParsePeers(h http.Header) []Member {
	var out []Member
	if v := h.Get(PeersHeader); v != "" {
		for _, part := range strings.Split(v, ",") {
			id, url, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok || id == "" || url == "" {
				continue
			}
			out = append(out, Member{ID: id, URL: url})
		}
		return out
	}
	if url, id := h.Get(PeerHeader), h.Get(PeerIDHeader); url != "" {
		out = append(out, Member{ID: id, URL: url})
	}
	return out
}

// framesPath is the replication endpoint for a session on a replica.
func framesPath(session string) string {
	return "/v1/replication/sessions/" + session + "/frames"
}

// Conflict-realign backoff: the first 409 in a flush realigns and
// retries immediately (the common catch-up case), but a second
// consecutive conflict means the peer and primary disagree persistently
// — further attempts back off exponentially instead of hot-looping on
// the request path.
const (
	conflictBackoffBase = 50 * time.Millisecond
	conflictBackoffCap  = 5 * time.Second
)

// SessionStream replicates one session's journal frames to a peer
// replica's standby endpoint. It implements journal.Sink: Commit is
// called by the journal writer after each group-commit fsync with the
// freshly durable frames, pushes everything unacknowledged to the peer
// and waits for the ack — so in the healthy path a client-acknowledged
// edit is on two machines before the HTTP response leaves the primary.
// When the peer is unreachable the frames stay buffered (Lag grows, the
// error is counted) and every later Commit or Flush retries the whole
// backlog; replication degrades, the session keeps serving.
type SessionStream struct {
	client  *http.Client
	peerURL string // peer base URL, no trailing slash
	peerID  string
	session string

	mu     sync.Mutex
	base   int64 // sequence number of buf[0]
	buf    [][]byte
	closed bool

	// 409-realign backoff state (under mu). conflicts counts consecutive
	// conflict responses; retryAt gates Commit-path flushes while set.
	conflicts int
	retryAt   time.Time
	nowFn     func() time.Time // test hook; nil = time.Now

	// events, when set, receives a flight event each time the conflict
	// backoff arms — the signal operators grep for when replication is
	// flapping.
	events *flight.Recorder
}

// SetFlightRecorder wires the stream to a flight recorder; backoff
// arming is recorded there. Safe to leave unset (events drop).
func (s *SessionStream) SetFlightRecorder(rec *flight.Recorder) {
	s.mu.Lock()
	s.events = rec
	s.mu.Unlock()
}

// NewSessionStream builds a stream to peerURL for the session, primed
// with the journal's existing frames (see journal.ReadFrames) so a
// stream attached after the open record — or after an adopt-time
// rewrite — replicates the whole file, not just the tail. The primed
// backlog is pushed on the first Commit or Flush.
func NewSessionStream(client *http.Client, peerURL, peerID, session string, primed [][]byte) *SessionStream {
	s := &SessionStream{
		client:  client,
		peerURL: peerURL,
		peerID:  peerID,
		session: session,
		buf:     append([][]byte(nil), primed...),
	}
	return s
}

func (s *SessionStream) now() time.Time {
	if s.nowFn != nil {
		return s.nowFn()
	}
	return time.Now()
}

// Commit implements journal.Sink.
func (s *SessionStream) Commit(frames [][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.buf = append(s.buf, frames...)
	s.flushLocked(false)
}

// Flush pushes the buffered backlog; it returns an error when frames
// remain unacknowledged afterwards. Park and drain paths call it so a
// migration never adopts a stale standby silently. Flush ignores the
// conflict backoff — a migration deserves one fresh attempt.
func (s *SessionStream) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.flushLocked(true)
	if n := len(s.buf); n > 0 {
		return fmt.Errorf("fleet: stream to %s lagging %d frame(s)", s.peerID, n)
	}
	return nil
}

// Lag is the number of locally durable frames the peer has not yet
// acknowledged.
func (s *SessionStream) Lag() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Peer returns the peer replica id the stream replicates to.
func (s *SessionStream) Peer() string { return s.peerID }

// PeerURL returns the peer base URL.
func (s *SessionStream) PeerURL() string { return s.peerURL }

// Close stops the stream; buffered frames are dropped (the session is
// closing or quarantined — the standby is released by the router).
func (s *SessionStream) Close() {
	s.mu.Lock()
	s.closed = true
	s.buf = nil
	s.mu.Unlock()
}

// flushLocked pushes the whole buffer in one POST and advances past the
// peer's acknowledged sequence. On a sequence conflict (the peer expects
// frames we still hold) it realigns and retries once; a second
// consecutive conflict arms a capped exponential backoff that gates
// Commit-path flushes (force bypasses it). Transport or server errors
// leave the buffer intact for the next attempt.
func (s *SessionStream) flushLocked(force bool) {
	if !force && !s.retryAt.IsZero() && s.now().Before(s.retryAt) {
		return // backing off after repeated conflicts; frames keep buffering
	}
	for attempt := 0; attempt < 2; attempt++ {
		if len(s.buf) == 0 {
			return
		}
		next, status, err := s.post()
		if err != nil {
			mStreamErrors.Inc()
			return
		}
		switch {
		case status == http.StatusOK, status == http.StatusConflict:
			// The peer tells us its next expected sequence either way;
			// drop what it holds and, after a conflict realign, retry.
			drop := next - s.base
			if drop < 0 {
				drop = 0
			}
			if drop > int64(len(s.buf)) {
				drop = int64(len(s.buf))
			}
			mStreamFramesSent.Add(drop)
			s.buf = s.buf[drop:]
			s.base = next
			if status == http.StatusOK {
				mStreamAcks.Inc()
				s.conflicts = 0
				s.retryAt = time.Time{}
				return
			}
			mStreamRealigns.Inc()
			s.conflicts++
			if s.conflicts >= 2 {
				d := conflictBackoffBase
				for i := 2; i < s.conflicts && d < conflictBackoffCap; i++ {
					d *= 2
				}
				if d > conflictBackoffCap {
					d = conflictBackoffCap
				}
				s.retryAt = s.now().Add(d)
				s.events.Record(flight.Warn, "stream.backoff", s.session, "",
					"realign conflict #%d with %s; backing off %s", s.conflicts, s.peerID, d)
				return
			}
		default:
			mStreamErrors.Inc()
			return
		}
	}
}

// post sends the buffered frames; returns the peer's next expected
// sequence.
func (s *SessionStream) post() (next int64, status int, err error) {
	body := bytes.Join(s.buf, nil)
	req, err := http.NewRequest(http.MethodPost, s.peerURL+framesPath(s.session), bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(FirstSeqHeader, strconv.FormatInt(s.base, 10))
	resp, err := s.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var m struct {
		Next int64 `json:"next"`
	}
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&m); derr != nil {
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusConflict {
			return 0, 0, fmt.Errorf("fleet: frames ack without next seq: %w", derr)
		}
	}
	return m.Next, resp.StatusCode, nil
}

// HopLag reports one hop of a session's replication chain.
type HopLag struct {
	Peer string `json:"peer"`
	URL  string `json:"url"`
	Lag  int    `json:"lag"`
}

// MultiStream replicates one session's journal to a chain of standby
// replicas — the session key's ring successors, in order. It implements
// journal.Sink by fanning each committed frame batch to every hop
// directly from the primary, so losing a mid-chain standby never starves
// the hops behind it; the chain *order* still matters, because failover
// prefers the earliest hop holding the highest contiguous sequence.
type MultiStream struct {
	hops []*SessionStream
}

// NewMultiStream builds the chain; nil hops are skipped.
func NewMultiStream(hops ...*SessionStream) *MultiStream {
	m := &MultiStream{}
	for _, h := range hops {
		if h != nil {
			m.hops = append(m.hops, h)
		}
	}
	return m
}

// Commit implements journal.Sink.
func (m *MultiStream) Commit(frames [][]byte) {
	for _, h := range m.hops {
		h.Commit(frames)
	}
}

// Flush pushes every hop's backlog; the returned error joins the hops
// that still lag (a migration needs to know which standbys are current).
func (m *MultiStream) Flush() error {
	var errs []string
	for _, h := range m.hops {
		if err := h.Flush(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	return nil
}

// Lag is the worst per-hop lag — the bound on how many frames a
// failover to the best standby might still need from a journal export.
func (m *MultiStream) Lag() int {
	worst := 0
	for _, h := range m.hops {
		if l := h.Lag(); l > worst {
			worst = l
		}
	}
	return worst
}

// HopLags reports each hop's peer and current lag, in chain order.
func (m *MultiStream) HopLags() []HopLag {
	out := make([]HopLag, 0, len(m.hops))
	for _, h := range m.hops {
		out = append(out, HopLag{Peer: h.Peer(), URL: h.PeerURL(), Lag: h.Lag()})
	}
	return out
}

// Peers lists the chain's replica ids in order.
func (m *MultiStream) Peers() []string {
	out := make([]string, 0, len(m.hops))
	for _, h := range m.hops {
		out = append(out, h.Peer())
	}
	return out
}

// Close stops every hop.
func (m *MultiStream) Close() {
	for _, h := range m.hops {
		h.Close()
	}
}

// StreamSet tracks the live replication chains of one replica, for the
// fleet.stream_lag_frames / per-hop lag gauges and for shutdown.
type StreamSet struct {
	mu        sync.Mutex
	m         map[string]*MultiStream
	hopGauges int // per-hop lag gauges registered so far
}

// NewStreamSet returns an empty set.
func NewStreamSet() *StreamSet { return &StreamSet{m: make(map[string]*MultiStream)} }

// Attach registers the session's chain, closing any previous one, and
// lazily registers a fleet.stream_lag_hop<N> gauge per chain position
// the first time a chain that deep appears.
func (t *StreamSet) Attach(session string, s *MultiStream) {
	t.mu.Lock()
	old := t.m[session]
	t.m[session] = s
	for i := t.hopGauges; i < len(s.hops); i++ {
		hop := i
		telemetry.NewGaugeFunc(fmt.Sprintf("fleet.stream_lag_hop%d", hop+1), func() float64 {
			return float64(t.HopLag(hop))
		})
		t.hopGauges = i + 1
	}
	t.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// Detach removes and returns the session's chain (nil when absent).
func (t *StreamSet) Detach(session string) *MultiStream {
	t.mu.Lock()
	s := t.m[session]
	delete(t.m, session)
	t.mu.Unlock()
	return s
}

// Get returns the session's chain (nil when absent).
func (t *StreamSet) Get(session string) *MultiStream {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[session]
}

// Len is the number of sessions with an active chain.
func (t *StreamSet) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

func (t *StreamSet) snapshot() []*MultiStream {
	t.mu.Lock()
	streams := make([]*MultiStream, 0, len(t.m))
	for _, s := range t.m {
		streams = append(streams, s)
	}
	t.mu.Unlock()
	return streams
}

// TotalLag sums the worst-hop unacknowledged frames across every
// session — the replication-lag gauge.
func (t *StreamSet) TotalLag() int {
	lag := 0
	for _, s := range t.snapshot() {
		lag += s.Lag()
	}
	return lag
}

// HopLag sums the lag at one chain position across every session.
func (t *StreamSet) HopLag(i int) int {
	lag := 0
	for _, s := range t.snapshot() {
		if i < len(s.hops) {
			lag += s.hops[i].Lag()
		}
	}
	return lag
}

// CloseAll closes every chain (replica shutdown).
func (t *StreamSet) CloseAll() {
	t.mu.Lock()
	streams := make([]*MultiStream, 0, len(t.m))
	for _, s := range t.m {
		streams = append(streams, s)
	}
	t.m = make(map[string]*MultiStream)
	t.mu.Unlock()
	for _, s := range streams {
		s.Close()
	}
}
