package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"hummingbird/internal/telemetry"
)

var (
	mStreamFramesSent = telemetry.NewCounter("fleet.stream_frames_sent")
	mStreamAcks       = telemetry.NewCounter("fleet.stream_acks")
	mStreamErrors     = telemetry.NewCounter("fleet.stream_errors")
)

// FirstSeqHeader carries the sequence number of the first frame in a
// replication POST body; PeerHeader tells a replica where to stream a
// session's journal (base URL of the peer replica); PeerIDHeader names
// that peer for diagnostics.
const (
	FirstSeqHeader = "X-Hb-First-Seq"
	PeerHeader     = "X-Hb-Peer"
	PeerIDHeader   = "X-Hb-Peer-Id"
)

// framesPath is the replication endpoint for a session on a replica.
func framesPath(session string) string {
	return "/v1/replication/sessions/" + session + "/frames"
}

// SessionStream replicates one session's journal frames to a peer
// replica's standby endpoint. It implements journal.Sink: Commit is
// called by the journal writer after each group-commit fsync with the
// freshly durable frames, pushes everything unacknowledged to the peer
// and waits for the ack — so in the healthy path a client-acknowledged
// edit is on two machines before the HTTP response leaves the primary.
// When the peer is unreachable the frames stay buffered (Lag grows, the
// error is counted) and every later Commit or Flush retries the whole
// backlog; replication degrades, the session keeps serving.
type SessionStream struct {
	client  *http.Client
	peerURL string // peer base URL, no trailing slash
	peerID  string
	session string

	mu     sync.Mutex
	base   int64 // sequence number of buf[0]
	buf    [][]byte
	closed bool
}

// NewSessionStream builds a stream to peerURL for the session, primed
// with the journal's existing frames (see journal.ReadFrames) so a
// stream attached after the open record — or after an adopt-time
// rewrite — replicates the whole file, not just the tail. The primed
// backlog is pushed on the first Commit or Flush.
func NewSessionStream(client *http.Client, peerURL, peerID, session string, primed [][]byte) *SessionStream {
	s := &SessionStream{
		client:  client,
		peerURL: peerURL,
		peerID:  peerID,
		session: session,
		buf:     append([][]byte(nil), primed...),
	}
	return s
}

// Commit implements journal.Sink.
func (s *SessionStream) Commit(frames [][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.buf = append(s.buf, frames...)
	s.flushLocked()
}

// Flush pushes the buffered backlog; it returns an error when frames
// remain unacknowledged afterwards. Park and drain paths call it so a
// migration never adopts a stale standby silently.
func (s *SessionStream) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.flushLocked()
	if n := len(s.buf); n > 0 {
		return fmt.Errorf("fleet: stream to %s lagging %d frame(s)", s.peerID, n)
	}
	return nil
}

// Lag is the number of locally durable frames the peer has not yet
// acknowledged.
func (s *SessionStream) Lag() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Peer returns the peer replica id the stream replicates to.
func (s *SessionStream) Peer() string { return s.peerID }

// PeerURL returns the peer base URL.
func (s *SessionStream) PeerURL() string { return s.peerURL }

// Close stops the stream; buffered frames are dropped (the session is
// closing or quarantined — the standby is released by the router).
func (s *SessionStream) Close() {
	s.mu.Lock()
	s.closed = true
	s.buf = nil
	s.mu.Unlock()
}

// flushLocked pushes the whole buffer in one POST and advances past the
// peer's acknowledged sequence. On a sequence conflict (the peer expects
// frames we still hold) it realigns and retries once; on transport or
// server errors it leaves the buffer intact for the next attempt.
func (s *SessionStream) flushLocked() {
	for attempt := 0; attempt < 2; attempt++ {
		if len(s.buf) == 0 {
			return
		}
		next, status, err := s.post()
		if err != nil {
			mStreamErrors.Inc()
			return
		}
		switch {
		case status == http.StatusOK, status == http.StatusConflict:
			// The peer tells us its next expected sequence either way;
			// drop what it holds and, after a conflict realign, retry.
			drop := next - s.base
			if drop < 0 {
				drop = 0
			}
			if drop > int64(len(s.buf)) {
				drop = int64(len(s.buf))
			}
			mStreamFramesSent.Add(drop)
			s.buf = s.buf[drop:]
			s.base = next
			if status == http.StatusOK {
				mStreamAcks.Inc()
				return
			}
		default:
			mStreamErrors.Inc()
			return
		}
	}
}

// post sends the buffered frames; returns the peer's next expected
// sequence.
func (s *SessionStream) post() (next int64, status int, err error) {
	body := bytes.Join(s.buf, nil)
	req, err := http.NewRequest(http.MethodPost, s.peerURL+framesPath(s.session), bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(FirstSeqHeader, strconv.FormatInt(s.base, 10))
	resp, err := s.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var m struct {
		Next int64 `json:"next"`
	}
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&m); derr != nil {
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusConflict {
			return 0, 0, fmt.Errorf("fleet: frames ack without next seq: %w", derr)
		}
	}
	return m.Next, resp.StatusCode, nil
}

// StreamSet tracks the live replication streams of one replica, for the
// fleet.stream_lag_frames and fleet.streams_active gauges and for
// shutdown.
type StreamSet struct {
	mu sync.Mutex
	m  map[string]*SessionStream
}

// NewStreamSet returns an empty set.
func NewStreamSet() *StreamSet { return &StreamSet{m: make(map[string]*SessionStream)} }

// Attach registers the session's stream, closing any previous one.
func (t *StreamSet) Attach(session string, s *SessionStream) {
	t.mu.Lock()
	old := t.m[session]
	t.m[session] = s
	t.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// Detach removes and returns the session's stream (nil when absent).
func (t *StreamSet) Detach(session string) *SessionStream {
	t.mu.Lock()
	s := t.m[session]
	delete(t.m, session)
	t.mu.Unlock()
	return s
}

// Get returns the session's stream (nil when absent).
func (t *StreamSet) Get(session string) *SessionStream {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[session]
}

// Len is the number of active streams.
func (t *StreamSet) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// TotalLag sums the unacknowledged frames across every stream — the
// replication-lag gauge.
func (t *StreamSet) TotalLag() int {
	t.mu.Lock()
	streams := make([]*SessionStream, 0, len(t.m))
	for _, s := range t.m {
		streams = append(streams, s)
	}
	t.mu.Unlock()
	lag := 0
	for _, s := range streams {
		lag += s.Lag()
	}
	return lag
}

// CloseAll closes every stream (replica shutdown).
func (t *StreamSet) CloseAll() {
	t.mu.Lock()
	streams := make([]*SessionStream, 0, len(t.m))
	for _, s := range t.m {
		streams = append(streams, s)
	}
	t.m = make(map[string]*SessionStream)
	t.mu.Unlock()
	for _, s := range streams {
		s.Close()
	}
}
