package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/flight"
	"hummingbird/internal/telemetry/span"
)

var (
	mRouted         = telemetry.NewCounter("fleet.requests_routed")
	mOpens          = telemetry.NewCounter("fleet.opens_routed")
	mProxyErrors    = telemetry.NewCounter("fleet.proxy_errors")
	mFailovers      = telemetry.NewCounter("fleet.failovers")
	mFailoverErrors = telemetry.NewCounter("fleet.failover_errors")
	mMigrations     = telemetry.NewCounter("fleet.migrations")
	mMemberDown     = telemetry.NewCounter("fleet.member_down_events")
	mMemberUp       = telemetry.NewCounter("fleet.member_up_events")
	mJoins          = telemetry.NewCounter("fleet.members_joined")
	mLeaves         = telemetry.NewCounter("fleet.members_left")
	mReconciles     = telemetry.NewCounter("fleet.reconciles")
	mReconConflicts = telemetry.NewCounter("fleet.reconcile_conflicts")
	mReconAdopts    = telemetry.NewCounter("fleet.reconcile_adopts")
)

// Member names one hummingbirdd replica: its stable replica id (the
// ring key and the value of its -replica-id flag) and its base URL.
type Member struct {
	ID  string
	URL string // e.g. http://127.0.0.1:8091, no trailing slash
}

// Config configures a Router.
type Config struct {
	Members []Member
	// Vnodes per member; DefaultVnodes when <= 0.
	Vnodes int
	// Client proxies session traffic. nil uses a default with a 60s
	// timeout (report recomputes on large designs are slow).
	Client *http.Client
	// HealthClient probes /readyz and /healthz; nil uses a 2s-timeout
	// client. Kept separate so a slow proxy cannot starve health checks.
	HealthClient *http.Client
	// HealthInterval between member polls (default 500ms).
	HealthInterval time.Duration
	// FailAfter is the consecutive probe-failure count that marks a
	// member down (default 2). Proxy transport errors confirm with a
	// single /healthz probe instead, so failover latency is one RTT.
	FailAfter int
	// MaxBody bounds buffered request/response bodies (default 16 MiB,
	// matching the daemon's own open limit).
	MaxBody int64
	// Standbys is the replication-chain length: each session's journal
	// streams to this many ring successors (default 2). With fewer
	// members available the chain is shorter, never padded.
	Standbys int
	// MigrateConcurrency bounds how many sessions a bulk migration
	// (drain, leave, join rebalance) moves at once (default 4).
	MigrateConcurrency int
	// EventCapacity bounds the flight-recorder ring behind GET /events
	// (default flight.DefaultCapacity).
	EventCapacity int
	// TraceCapacity bounds the operation-trace retention ring behind
	// GET /fleet/trace/{id} (default 256).
	TraceCapacity int
	// Logf receives router life-cycle events; nil discards.
	Logf func(format string, args ...any)
}

// memberState is the router's view of one replica.
type memberState struct {
	Member
	up       bool
	draining bool
	fails    int
	state    string // last /readyz "state"
}

// sessionRoute pins one session to its primary and replication chain
// (the standby members its journal streams to, in ring order). The
// per-route mutex single-flights failover and migration: concurrent
// requests against a dying primary elect exactly one re-homing.
type sessionRoute struct {
	mu      sync.Mutex
	id      string
	key     string
	primary string
	peers   []string
}

// Router is the fleet front-end: it owns the consistent-hash ring over
// healthy members, pins each opened session to a primary (+ journal
// peer), proxies the session protocol, and re-homes sessions on member
// failure or drain.
type Router struct {
	cfg      Config
	client   *http.Client
	healthc  *http.Client
	flight   *flight.Recorder
	traces   *span.Ring
	traceSeq atomic.Int64
	mu       sync.Mutex // members, ring, sessions
	members  map[string]*memberState
	ring     *Ring
	sessions map[string]*sessionRoute
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRouter builds a router over the configured members. Members start
// optimistically up; call PollOnce (or Start) to correct that view
// before serving.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("fleet: no members configured")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.HealthClient == nil {
		cfg.HealthClient = &http.Client{Timeout: 2 * time.Second}
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 16 << 20
	}
	if cfg.Standbys <= 0 {
		cfg.Standbys = 2
	}
	if cfg.MigrateConcurrency <= 0 {
		cfg.MigrateConcurrency = 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = 256
	}
	r := &Router{
		cfg:      cfg,
		client:   cfg.Client,
		healthc:  cfg.HealthClient,
		flight:   flight.NewRecorder("router", cfg.EventCapacity),
		traces:   span.NewRing(cfg.TraceCapacity),
		members:  make(map[string]*memberState, len(cfg.Members)),
		sessions: make(map[string]*sessionRoute),
		stop:     make(chan struct{}),
	}
	for _, m := range cfg.Members {
		id := m.ID
		if id == "" || r.members[id] != nil {
			return nil, fmt.Errorf("fleet: member ids must be unique and non-empty (got %q)", id)
		}
		r.members[id] = &memberState{Member: Member{ID: id, URL: strings.TrimRight(m.URL, "/")}, up: true, state: "ready"}
	}
	r.rebuildRingLocked()
	// Callback gauges; re-registering replaces, so routers rebuilt within
	// one process (tests) re-point them at the live instance.
	telemetry.NewGaugeFunc("fleet.members_up", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		n := 0
		for _, m := range r.members {
			if m.up {
				n++
			}
		}
		return float64(n)
	})
	telemetry.NewGaugeFunc("fleet.sessions_routed", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(len(r.sessions))
	})
	return r, nil
}

// Start reconciles the pin table against the fleet (which polls every
// member once synchronously, so the initial ring reflects reality) and
// launches the health loop. A router restarted after a crash rebuilds
// every session pin here before it serves a single request.
func (r *Router) Start() {
	r.Reconcile()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.PollOnce()
			}
		}
	}()
}

// Close stops the health loop.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// rebuildRingLocked recomputes the ring from members that are up and
// not draining. Caller holds r.mu.
func (r *Router) rebuildRingLocked() {
	ids := make([]string, 0, len(r.members))
	for id, m := range r.members {
		if m.up && !m.draining && m.state != "starting" {
			ids = append(ids, id)
		}
	}
	r.ring = NewRing(ids, r.cfg.Vnodes)
}

func (r *Router) member(id string) *memberState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[id]
}

// memberURL returns the base URL for a live member id, or "".
func (r *Router) memberURL(id string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.members[id]; m != nil {
		return m.URL
	}
	return ""
}

// chainLocked resolves a session's replication chain: the first
// Standbys distinct up members clockwise from key, skipping the
// primary. Caller holds r.mu.
func (r *Router) chainLocked(key, primary string) []Member {
	ids := r.ring.Successors(key, primary, r.cfg.Standbys)
	out := make([]Member, 0, len(ids))
	for _, id := range ids {
		if m := r.members[id]; m != nil && m.up {
			out = append(out, m.Member)
		}
	}
	return out
}

// setPeerHeaders writes a replication chain onto an outbound request:
// the multi-hop PeersHeader plus the legacy single-peer pair for hop 1.
func setPeerHeaders(hdr http.Header, peers []Member) {
	if len(peers) == 0 {
		return
	}
	hdr.Set(PeersHeader, FormatPeers(peers))
	hdr.Set(PeerHeader, peers[0].URL)
	hdr.Set(PeerIDHeader, peers[0].ID)
}

func memberIDs(peers []Member) []string {
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		out = append(out, p.ID)
	}
	return out
}

// newTraceID mints a router-originated trace id ("f" + base36 millis +
// sequence) for the operation traces the router opens itself (failover,
// migration, reconcile). The alphabet matches what the daemon accepts
// as an inbound X-Trace-Id.
func (r *Router) newTraceID() string {
	return "f" + strconv.FormatInt(time.Now().UnixMilli(), 36) +
		"-" + strconv.FormatInt(r.traceSeq.Add(1), 36)
}

// startOp opens one router-side operation trace: the returned context
// carries it, so every forward/control issued under it stamps the
// member request with the trace id and current span (the member's own
// fragment then splices back under that span via GET /fleet/trace/{id}).
// finish retains the trace in the ring; call it exactly once.
func (r *Router) startOp(name string) (ctx context.Context, tr *span.Trace, finish func()) {
	tr = span.New(r.newTraceID(), name)
	tr.SetProcess("router")
	return span.NewContext(context.Background(), tr), tr, func() {
		tr.Finish()
		r.traces.Add(tr)
	}
}

// FlightRecorder exposes the router's event ring (read-mostly; tests
// and embedding binaries).
func (r *Router) FlightRecorder() *flight.Recorder { return r.flight }

// validTraceID mirrors the daemon's inbound trace-id validation.
func validTraceID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		ok := r == '.' || r == '_' || r == '-' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// releaseStandbys drops the session's standby journal on each member —
// stale copies from a previous epoch must never pollute the fresh
// streams an adopt attaches.
func (r *Router) releaseStandbys(ctx context.Context, sid string, peers []Member) {
	for _, p := range peers {
		r.control(ctx, p.URL, http.MethodPost, "/v1/replication/sessions/"+sid+"/release", nil)
	}
}

// probeStandbySeq asks a replica how many contiguous frames its standby
// journal for the session holds; an empty frames POST mutates nothing.
func (r *Router) probeStandbySeq(ctx context.Context, baseURL, sid string) (int64, bool) {
	hdr := http.Header{}
	hdr.Set(FirstSeqHeader, "0")
	resp, err := r.forward(ctx, baseURL, http.MethodPost, framesPath(sid), hdr, nil)
	if err != nil || resp.status != http.StatusOK {
		return 0, false
	}
	var m struct {
		Next int64 `json:"next"`
	}
	if json.Unmarshal(resp.body, &m) != nil {
		return 0, false
	}
	return m.Next, true
}

// markDown flips a member down and rebuilds the ring. Returns true when
// the state changed.
func (r *Router) markDown(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.members[id]
	if m == nil || !m.up {
		return false
	}
	m.up = false
	mMemberDown.Inc()
	r.rebuildRingLocked()
	r.cfg.Logf("fleet: member %s down", id)
	r.flight.Record(flight.Error, "member.down", "", "", "member %s marked down (proxy failure confirmed dead)", id)
	return true
}

// markUp flips a member up and rebuilds the ring.
func (r *Router) markUp(id string) {
	r.mu.Lock()
	m := r.members[id]
	if m == nil || m.up {
		r.mu.Unlock()
		return
	}
	m.up = true
	m.fails = 0
	mMemberUp.Inc()
	r.rebuildRingLocked()
	r.mu.Unlock()
	r.cfg.Logf("fleet: member %s up", id)
	r.flight.Record(flight.Info, "member.up", "", "", "member %s back up", id)
	go r.reconcileRejoined(id)
}

// PollOnce probes every member's /readyz once and updates membership.
func (r *Router) PollOnce() {
	r.mu.Lock()
	ids := make([]string, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		r.pollMember(id)
	}
}

func (r *Router) pollMember(id string) {
	m := r.member(id)
	if m == nil {
		return
	}
	state, err := r.probeReadyz(m.URL)
	r.mu.Lock()
	wasUp, wasState := m.up, m.state
	if err != nil {
		m.fails++
		fails := m.fails
		failed := m.fails >= r.cfg.FailAfter && m.up
		if failed {
			m.up = false
			mMemberDown.Inc()
			r.rebuildRingLocked()
		}
		r.mu.Unlock()
		if failed {
			r.cfg.Logf("fleet: member %s down (%v)", id, err)
			r.flight.Record(flight.Error, "member.down", "", "", "member %s marked down after %d failed probes (%v)", id, fails, err)
			r.failoverAll(id)
		}
		return
	}
	m.fails = 0
	m.state = state
	selfDraining := state == "draining" && !m.draining
	if selfDraining {
		m.draining = true
	}
	if !m.up || wasState != state || selfDraining {
		m.up = true
		r.rebuildRingLocked()
	}
	r.mu.Unlock()
	if !wasUp {
		mMemberUp.Inc()
		r.cfg.Logf("fleet: member %s up (state %s)", id, state)
		r.flight.Record(flight.Info, "member.up", "", "", "member %s back up (state %s)", id, state)
		go r.reconcileRejoined(id)
	}
	if selfDraining {
		r.cfg.Logf("fleet: member %s draining; migrating its sessions", id)
		r.flight.Record(flight.Warn, "member.drain", "", "", "member %s reports draining; migrating its sessions", id)
		go r.drainMember(id)
	}
}

// probeReadyz fetches a member's /readyz and returns its "state" field;
// both 200 and 503 are live answers (draining replicas answer 503).
func (r *Router) probeReadyz(base string) (string, error) {
	resp, err := r.healthc.Get(base + "/readyz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err != nil {
		return "", fmt.Errorf("readyz decode: %w", err)
	}
	if body.State == "" {
		body.State = "ready"
	}
	return body.State, nil
}

// probeAlive distinguishes a dead member from a flaky connection with
// one cheap /healthz round trip.
func (r *Router) probeAlive(base string) bool {
	resp, err := r.healthc.Get(base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// DesignKey derives the ring key from an open-session request body:
// the FNV-1a 64 hash of the netlist text plus the sorted adjustment
// set. Two sessions opening the same design + adjustments get the same
// key, land on the same replica, and share one refcounted compile.
func DesignKey(body []byte) string {
	var req struct {
		Design      string            `json:"design"`
		Adjustments map[string]string `json:"adjustments"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Design == "" {
		// Unparseable bodies still need a deterministic home; the primary
		// rejects them with its own 4xx.
		return fmt.Sprintf("raw:%016x", hash64(string(body)))
	}
	h := fnv.New64a()
	io.WriteString(h, req.Design)
	adj := make([]string, 0, len(req.Adjustments))
	for k, v := range req.Adjustments {
		adj = append(adj, k+"="+v)
	}
	sort.Strings(adj)
	for _, kv := range adj {
		io.WriteString(h, "\x00"+kv)
	}
	return fmt.Sprintf("design:%016x", h.Sum64())
}

// Handler returns the router's HTTP surface: the daemon session
// protocol proxied by session pin, plus fleet-level health, metrics,
// and drain orchestration.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", r.handleOpen)
	mux.HandleFunc("GET /v1/sessions", r.handleList)
	mux.HandleFunc("/v1/sessions/{id}", r.handleSession)
	mux.HandleFunc("/v1/sessions/{id}/{rest...}", r.handleSession)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "role": "fleet-router"})
	})
	mux.HandleFunc("GET /readyz", r.handleReadyz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /events", r.flight.ServeHTTP)
	mux.HandleFunc("GET /fleet/metrics", r.handleFleetMetrics)
	mux.HandleFunc("GET /fleet/status", r.handleFleetStatus)
	mux.HandleFunc("GET /fleet/trace/{id}", r.handleFleetTrace)
	mux.HandleFunc("GET /fleet/members", r.handleMembers)
	mux.HandleFunc("POST /fleet/members/join", r.handleJoin)
	mux.HandleFunc("POST /fleet/members/leave", r.handleLeave)
	mux.HandleFunc("POST /fleet/reconcile", r.handleReconcile)
	mux.HandleFunc("POST /fleet/drain/{id}", r.handleDrain)
	mux.HandleFunc("POST /fleet/undrain/{id}", r.handleUndrain)
	return mux
}

// handleJoin adds a member to the fleet at runtime: the ring is rebuilt
// and the ~K/N sessions the new topology displaces are bulk-migrated to
// their new owners through park → journal hand-off → adopt.
func (r *Router) handleJoin(w http.ResponseWriter, req *http.Request) {
	var body struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<16)).Decode(&body); err != nil || body.ID == "" || body.URL == "" {
		httpError(w, http.StatusBadRequest, `join wants {"id":"rN","url":"http://host:port"}`)
		return
	}
	url := strings.TrimRight(body.URL, "/")
	state, err := r.probeReadyz(url)
	if err != nil {
		httpError(w, http.StatusBadGateway, "member %s not reachable at %s: %v", body.ID, url, err)
		return
	}
	r.mu.Lock()
	if r.members[body.ID] != nil {
		r.mu.Unlock()
		httpError(w, http.StatusConflict, "member %q already present", body.ID)
		return
	}
	r.members[body.ID] = &memberState{Member: Member{ID: body.ID, URL: url}, up: true, state: state}
	r.rebuildRingLocked()
	r.mu.Unlock()
	mJoins.Inc()
	r.cfg.Logf("fleet: member %s joined at %s (state %s)", body.ID, url, state)
	r.flight.Record(flight.Info, "member.join", "", "", "%s joined at %s (state %s)", body.ID, url, state)
	migrated, errs := r.rebalance()
	status := http.StatusOK
	if len(errs) > 0 {
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]any{
		"member": body.ID, "joined": true, "state": state, "migrated": migrated, "errors": errs,
	})
}

// handleLeave removes a member at runtime: a live member drains first
// (park → hand-off → adopt for each pinned session), a dead one has its
// sessions failed over to their standbys; the member leaves the table
// only once no session pins to it, so a stuck migration never strands a
// session on a forgotten replica.
func (r *Router) handleLeave(w http.ResponseWriter, req *http.Request) {
	var body struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<16)).Decode(&body); err != nil || body.ID == "" {
		httpError(w, http.StatusBadRequest, `leave wants {"id":"rN"}`)
		return
	}
	id := body.ID
	r.mu.Lock()
	m := r.members[id]
	if m == nil {
		r.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown member %q", id)
		return
	}
	wasUp := m.up
	m.draining = true
	r.rebuildRingLocked()
	r.mu.Unlock()
	var migrated int
	var errs []string
	if wasUp {
		migrated, errs = r.drainMember(id)
	} else {
		r.failoverAll(id)
	}
	r.mu.Lock()
	routes := make([]*sessionRoute, 0, len(r.sessions))
	for _, rt := range r.sessions {
		routes = append(routes, rt)
	}
	r.mu.Unlock()
	pinned := 0
	for _, rt := range routes {
		rt.mu.Lock()
		if rt.primary == id {
			pinned++
		}
		rt.mu.Unlock()
	}
	if pinned > 0 {
		writeJSON(w, http.StatusConflict, map[string]any{
			"member": id, "left": false, "migrated": migrated, "pinned": pinned, "errors": errs,
		})
		return
	}
	r.mu.Lock()
	delete(r.members, id)
	r.rebuildRingLocked()
	r.mu.Unlock()
	mLeaves.Inc()
	r.cfg.Logf("fleet: member %s left (%d session(s) migrated)", id, migrated)
	r.flight.Record(flight.Info, "member.leave", "", "", "%s left (%d session(s) migrated)", id, migrated)
	writeJSON(w, http.StatusOK, map[string]any{
		"member": id, "left": true, "migrated": migrated, "errors": errs,
	})
}

// handleReconcile rebuilds the pin table from member inventories on
// demand (see Reconcile).
func (r *Router) handleReconcile(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, r.Reconcile())
}

// handleOpen routes a session-open by design key, pins the session, and
// tells the primary where to stream its journal.
func (r *Router) handleOpen(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, r.cfg.MaxBody+1))
	if err != nil || int64(len(body)) > r.cfg.MaxBody {
		httpError(w, http.StatusRequestEntityTooLarge, "open body unreadable or over %d bytes", r.cfg.MaxBody)
		return
	}
	key := DesignKey(body)
	for attempt := 0; attempt < 2; attempt++ {
		r.mu.Lock()
		primary := r.ring.Lookup(key)
		chain := r.chainLocked(key, primary)
		var pm *memberState
		if primary != "" {
			pm = r.members[primary]
		}
		r.mu.Unlock()
		if pm == nil {
			httpError(w, http.StatusServiceUnavailable, "no ready replicas")
			return
		}
		hdr := http.Header{}
		copyProxyHeaders(hdr, req.Header)
		setPeerHeaders(hdr, chain)
		resp, rerr := r.forward(req.Context(), pm.URL, http.MethodPost, "/v1/sessions", hdr, body)
		if rerr != nil {
			mProxyErrors.Inc()
			if !r.probeAlive(pm.URL) && r.markDown(pm.ID) {
				go r.failoverAll(pm.ID)
			}
			continue
		}
		sid := resp.sessionID()
		if resp.status == http.StatusCreated && sid != "" {
			rt := &sessionRoute{id: sid, key: key, primary: pm.ID, peers: memberIDs(chain)}
			r.mu.Lock()
			r.sessions[sid] = rt
			r.mu.Unlock()
			w.Header().Set("X-Hb-Replica", pm.ID)
		}
		mOpens.Inc()
		resp.writeTo(w)
		return
	}
	httpError(w, http.StatusServiceUnavailable, "no replica could open the session")
}

// handleList reports the router's own session table — the fleet-level
// view, one row per pinned session.
func (r *Router) handleList(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	out := make([]map[string]any, 0, len(r.sessions))
	for _, rt := range r.sessions {
		row := map[string]any{
			"session": rt.id,
			"replica": rt.primary,
			"peers":   append([]string(nil), rt.peers...),
		}
		if len(rt.peers) > 0 {
			row["peer"] = rt.peers[0]
		}
		out = append(out, row)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i]["session"].(string) < out[j]["session"].(string) })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

// handleSession proxies a session-scoped request to its pinned primary,
// failing over to the journal peer when the primary is unreachable.
func (r *Router) handleSession(w http.ResponseWriter, req *http.Request) {
	sid := req.PathValue("id")
	r.mu.Lock()
	rt := r.sessions[sid]
	r.mu.Unlock()
	if rt == nil {
		httpError(w, http.StatusNotFound, "session %s is not routed by this fleet", sid)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, r.cfg.MaxBody+1))
	if err != nil || int64(len(body)) > r.cfg.MaxBody {
		httpError(w, http.StatusRequestEntityTooLarge, "body unreadable or over %d bytes", r.cfg.MaxBody)
		return
	}
	uri := req.URL.RequestURI()
	hdr := http.Header{}
	copyProxyHeaders(hdr, req.Header)

	rt.mu.Lock()
	primary := rt.primary
	rt.mu.Unlock()
	pm := r.member(primary)
	attempted := false
	if pm != nil && pm.up {
		resp, rerr := r.forward(req.Context(), pm.URL, req.Method, uri, hdr, body)
		if rerr == nil {
			r.finishSession(w, req, sid, rt, pm.ID, resp)
			return
		}
		mProxyErrors.Inc()
		attempted = true
		if r.probeAlive(pm.URL) {
			// The member is alive; the failure was transient transport. One
			// retry, any method — the request never reached a handler.
			if resp, rerr = r.forward(req.Context(), pm.URL, req.Method, uri, hdr, body); rerr == nil {
				r.finishSession(w, req, sid, rt, pm.ID, resp)
				return
			}
			mProxyErrors.Inc()
		}
		if r.markDown(pm.ID) {
			go r.failoverAll(pm.ID)
		}
	}

	// Primary is down: fail the session over to its journal peer (a
	// no-op returning the current pin when the health loop got there
	// first).
	newPrimary, ferr := r.failoverSession(sid, rt, primary)
	if ferr != nil {
		mFailoverErrors.Inc()
		httpError(w, http.StatusServiceUnavailable, "session %s: primary down, failover failed: %v", sid, ferr)
		return
	}
	if attempted && req.Method == http.MethodPost {
		// Our own POST (edit batch) died mid-flight: it may have committed
		// on the dying primary and replicated before the crash, so blindly
		// replaying it on the peer could double-apply. The client owns the
		// retry decision. POSTs that never left the router (attempted ==
		// false: the session was re-homed before we forwarded anything)
		// proceed normally below.
		w.Header().Set("Retry-After", "0")
		httpError(w, http.StatusConflict, "session %s re-homed to %s mid-request; retry the batch", sid, newPrimary)
		return
	}
	npm := r.member(newPrimary)
	if npm == nil {
		httpError(w, http.StatusServiceUnavailable, "session %s: new primary %s vanished", sid, newPrimary)
		return
	}
	resp, rerr := r.forward(req.Context(), npm.URL, req.Method, uri, hdr, body)
	if rerr != nil {
		mProxyErrors.Inc()
		httpError(w, http.StatusServiceUnavailable, "session %s: retry on %s failed: %v", sid, newPrimary, rerr)
		return
	}
	r.finishSession(w, req, sid, rt, newPrimary, resp)
}

// finishSession writes a proxied response and maintains the session
// table on close.
func (r *Router) finishSession(w http.ResponseWriter, req *http.Request, sid string, rt *sessionRoute, servedBy string, resp *bufferedResponse) {
	mRouted.Inc()
	if req.Method == http.MethodDelete && resp.status < 300 {
		rt.mu.Lock()
		peers := append([]string(nil), rt.peers...)
		rt.mu.Unlock()
		r.mu.Lock()
		delete(r.sessions, sid)
		r.mu.Unlock()
		// Best-effort: every chain member's standby journal is garbage
		// once the session is closed.
		for _, peer := range peers {
			if u := r.memberURL(peer); u != "" {
				r.control(req.Context(), u, http.MethodPost, "/v1/replication/sessions/"+sid+"/release", nil)
			}
		}
	}
	w.Header().Set("X-Hb-Replica", servedBy)
	resp.writeTo(w)
}

// failoverAll re-homes every session pinned to a dead member.
func (r *Router) failoverAll(dead string) {
	r.mu.Lock()
	routes := make([]*sessionRoute, 0)
	for _, rt := range r.sessions {
		routes = append(routes, rt)
	}
	r.mu.Unlock()
	for _, rt := range routes {
		rt.mu.Lock()
		primary := rt.primary
		rt.mu.Unlock()
		if primary != dead {
			continue
		}
		if _, err := r.failoverSession(rt.id, rt, dead); err != nil {
			mFailoverErrors.Inc()
			r.cfg.Logf("fleet: failover %s off %s: %v", rt.id, dead, err)
		}
	}
}

// failoverSession moves one session from its dead primary onto its
// replication chain: every reachable chain member is asked how many
// contiguous frames its standby journal holds, the earliest hop with
// the highest sequence adopts (promote + replay + compact), and the
// adopter's onward streams are wired to the key's new successors.
// Single-flighted per session; returns the (possibly already updated)
// primary.
func (r *Router) failoverSession(sid string, rt *sessionRoute, failed string) (target string, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.primary != failed {
		return rt.primary, nil // lost the race; someone already re-homed it
	}
	ctx, tr, finish := r.startOp("fleet.failover")
	defer finish()
	root := span.Current(ctx)
	root.Annotate("session", sid)
	root.Annotate("from", failed)
	r.flight.Record(flight.Warn, "failover.begin", sid, tr.ID(),
		"primary %s down; probing chain %v", failed, rt.peers)
	defer func() {
		if err != nil {
			root.Annotate("error", err.Error())
			r.flight.Record(flight.Error, "failover.error", sid, tr.ID(), "%v", err)
		}
	}()
	if len(rt.peers) == 0 {
		return "", fmt.Errorf("no journal peers")
	}
	var best *memberState
	var bestNext int64
	for _, pid := range rt.peers {
		pctx, ps := span.Start(ctx, "probe")
		ps.Annotate("peer", pid)
		m := r.member(pid)
		if m == nil || !m.up {
			ps.Annotate("result", "down")
			ps.End()
			continue
		}
		next, ok := r.probeStandbySeq(pctx, m.URL, sid)
		if !ok || next < 1 {
			ps.Annotate("result", "no-journal")
			ps.End()
			continue
		}
		ps.Annotate("seq", strconv.FormatInt(next, 10))
		ps.End()
		if best == nil || next > bestNext {
			best, bestNext = m, next
		}
	}
	if best == nil {
		return "", fmt.Errorf("no reachable standby holds session %s (chain %v)", sid, rt.peers)
	}
	target = best.ID
	root.Annotate("target", target)
	r.mu.Lock()
	newChain := r.chainLocked(rt.key, target)
	r.mu.Unlock()
	// Standby copies from the failed primary's epoch must not pollute the
	// fresh streams the adopter attaches.
	rctx, rs := span.Start(ctx, "release")
	r.releaseStandbys(rctx, sid, newChain)
	rs.End()
	actx, as := span.Start(ctx, "adopt")
	as.Annotate("target", target)
	hdr := http.Header{}
	setPeerHeaders(hdr, newChain)
	resp, err := r.forward(actx, best.URL, http.MethodPost, "/v1/replication/sessions/"+sid+"/adopt", hdr, nil)
	as.End()
	if err != nil {
		return "", fmt.Errorf("adopt on %s: %w", target, err)
	}
	if resp.status != http.StatusOK {
		return "", fmt.Errorf("adopt on %s: status %d: %s", target, resp.status, truncate(resp.body, 200))
	}
	rt.primary, rt.peers = target, memberIDs(newChain)
	mFailovers.Inc()
	r.cfg.Logf("fleet: session %s re-homed %s -> %s at seq %d (chain %v)", sid, failed, target, bestNext, rt.peers)
	r.flight.Record(flight.Info, "failover.end", sid, tr.ID(),
		"adopted on %s at seq %d (chain %v)", target, bestNext, rt.peers)
	return target, nil
}

// drainMember migrates every session off a draining (but still live)
// member via park → journal hand-off → adopt.
func (r *Router) drainMember(id string) (migrated int, errs []string) {
	return r.migrateMatching(func(_ *sessionRoute, primary string) bool {
		return primary == id
	})
}

// rebalance migrates every session whose ring owner changed (a member
// joined or left) to its new owner — the displaced ~K/N, nothing else.
func (r *Router) rebalance() (migrated int, errs []string) {
	return r.migrateMatching(func(rt *sessionRoute, primary string) bool {
		r.mu.Lock()
		desired := r.ring.Lookup(rt.key)
		m := r.members[primary]
		r.mu.Unlock()
		return m != nil && m.up && desired != "" && desired != primary
	})
}

// migrateMatching bulk-migrates every pinned session whose current
// primary matches, MigrateConcurrency sessions at a time; each failure
// rolls that one session back and is reported, the rest proceed.
func (r *Router) migrateMatching(match func(rt *sessionRoute, primary string) bool) (migrated int, errs []string) {
	r.mu.Lock()
	routes := make([]*sessionRoute, 0, len(r.sessions))
	for _, rt := range r.sessions {
		routes = append(routes, rt)
	}
	r.mu.Unlock()
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, r.cfg.MigrateConcurrency)
	)
	for _, rt := range routes {
		rt.mu.Lock()
		primary := rt.primary
		rt.mu.Unlock()
		if !match(rt, primary) {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(rt *sessionRoute, from string) {
			defer wg.Done()
			defer func() { <-sem }()
			err := r.migrateSession(rt, from)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Sprintf("%s: %v", rt.id, err))
				r.cfg.Logf("fleet: migrate %s off %s: %v", rt.id, from, err)
				return
			}
			migrated++
		}(rt, primary)
	}
	wg.Wait()
	return migrated, errs
}

// migrateSession is the planned (primary still alive) re-homing: park
// the session on the old primary, make sure the target holds the full
// journal (streamed standby when caught up, explicit export otherwise),
// adopt on the target, then forget the journal on the old primary.
func (r *Router) migrateSession(rt *sessionRoute, from string) (err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.primary != from {
		return nil
	}
	fm := r.member(from)
	if fm == nil || !fm.up {
		return fmt.Errorf("old primary %s not reachable; use failover", from)
	}
	r.mu.Lock()
	target := r.ring.Lookup(rt.key)
	var tm *memberState
	if target != "" {
		tm = r.members[target]
	}
	r.mu.Unlock()
	if tm == nil {
		return fmt.Errorf("no migration target")
	}
	if target == from {
		return nil // the ring still wants it here; nothing displaced
	}

	ctx, tr, finish := r.startOp("fleet.migrate")
	defer finish()
	root := span.Current(ctx)
	root.Annotate("session", rt.id)
	root.Annotate("from", from)
	root.Annotate("target", target)
	defer func() {
		if err != nil {
			root.Annotate("error", err.Error())
			r.flight.Record(flight.Error, "migrate.error", rt.id, tr.ID(), "%s -> %s: %v", from, target, err)
		}
	}()

	// rollback wraps rollbackPark in its own span so a failed migration's
	// trace shows the compensating re-adopt as a step.
	rollback := func() {
		rbctx, rb := span.Start(ctx, "rollback")
		r.rollbackPark(rbctx, fm, rt)
		rb.End()
		r.flight.Record(flight.Warn, "migrate.rollback", rt.id, tr.ID(), "re-adopted on %s", from)
	}

	// 1. Park on the old primary: flushes the replication chain and
	// reports each hop's residual lag.
	pctx, ps := span.Start(ctx, "park")
	presp, err := r.control(pctx, fm.URL, http.MethodPost, "/v1/sessions/"+rt.id+"/park", nil)
	ps.End()
	if err != nil {
		return fmt.Errorf("park on %s: %w", from, err)
	}
	if presp.status != http.StatusOK {
		return fmt.Errorf("park on %s: status %d: %s", from, presp.status, truncate(presp.body, 200))
	}
	var park struct {
		StreamLag  int      `json:"stream_lag"`
		StreamPeer string   `json:"stream_peer"`
		Hops       []HopLag `json:"hops"`
	}
	_ = json.Unmarshal(presp.body, &park)

	// 2. Guarantee the target holds the complete journal. The streamed
	// standby suffices only when the target was a chain hop whose flush
	// drained fully; otherwise drop whatever stale copy it may hold and
	// push the exported frames.
	caughtUp := false
	for _, h := range park.Hops {
		if h.Peer == target && h.Lag == 0 {
			caughtUp = true
		}
	}
	if !caughtUp && target == park.StreamPeer && park.StreamLag == 0 {
		caughtUp = true // legacy single-hop park response
	}
	if !caughtUp {
		hctx, hs := span.Start(ctx, "journal-handoff")
		hs.Annotate("target", target)
		exp, err := r.control(hctx, fm.URL, http.MethodGet, "/v1/sessions/"+rt.id+"/journal", nil)
		if err != nil || exp.status != http.StatusOK {
			hs.End()
			rollback()
			return fmt.Errorf("journal export from %s failed (err=%v status=%d)", from, err, exp.statusOr0())
		}
		r.control(hctx, tm.URL, http.MethodPost, "/v1/replication/sessions/"+rt.id+"/release", nil)
		hdr := http.Header{}
		hdr.Set(FirstSeqHeader, "0")
		push, err := r.forward(hctx, tm.URL, http.MethodPost, framesPath(rt.id), hdr, exp.body)
		hs.End()
		if err != nil || push.status != http.StatusOK {
			rollback()
			return fmt.Errorf("journal push to %s failed (err=%v status=%d)", target, err, push.statusOr0())
		}
	}

	// 3. Adopt on the target, wiring its onward replication chain. Chain
	// members' stale standbys are dropped first so the fresh streams
	// start clean.
	r.mu.Lock()
	newChain := r.chainLocked(rt.key, target)
	r.mu.Unlock()
	actx, as := span.Start(ctx, "adopt")
	as.Annotate("target", target)
	r.releaseStandbys(actx, rt.id, newChain)
	hdr := http.Header{}
	setPeerHeaders(hdr, newChain)
	aresp, err := r.forward(actx, tm.URL, http.MethodPost, "/v1/replication/sessions/"+rt.id+"/adopt", hdr, nil)
	as.End()
	if err != nil || aresp.status != http.StatusOK {
		rollback()
		return fmt.Errorf("adopt on %s failed (err=%v status=%d)", target, err, aresp.statusOr0())
	}

	// 4. The old primary's journal (and any stale standby on old chain
	// members the new chain does not reuse) are now shadows; drop them so
	// a restart cannot resurrect the session in two places.
	fctx, fs := span.Start(ctx, "forget")
	r.control(fctx, fm.URL, http.MethodPost, "/v1/replication/sessions/"+rt.id+"/forget", nil)
	reused := map[string]bool{target: true}
	for _, p := range newChain {
		reused[p.ID] = true
	}
	for _, old := range rt.peers {
		if reused[old] {
			continue
		}
		if u := r.memberURL(old); u != "" {
			r.control(fctx, u, http.MethodPost, "/v1/replication/sessions/"+rt.id+"/release", nil)
		}
	}
	fs.End()
	rt.primary, rt.peers = target, memberIDs(newChain)
	mMigrations.Inc()
	r.cfg.Logf("fleet: session %s migrated %s -> %s (chain %v)", rt.id, from, target, rt.peers)
	r.flight.Record(flight.Info, "migrate.end", rt.id, tr.ID(), "%s -> %s (chain %v)", from, target, rt.peers)
	return nil
}

// rollbackPark re-adopts a parked session on its own primary after a
// failed migration, so the session keeps serving where it was; its
// replication chain is rebuilt from the current ring. Caller holds
// rt.mu.
func (r *Router) rollbackPark(ctx context.Context, fm *memberState, rt *sessionRoute) {
	r.mu.Lock()
	chain := r.chainLocked(rt.key, fm.ID)
	r.mu.Unlock()
	r.releaseStandbys(ctx, rt.id, chain)
	hdr := http.Header{}
	setPeerHeaders(hdr, chain)
	r.forward(ctx, fm.URL, http.MethodPost, "/v1/replication/sessions/"+rt.id+"/adopt", hdr, nil)
}

// inventory mirrors the daemon's GET /v1/replication/inventory reply.
type inventory struct {
	Replica string `json:"replica"`
	Live    []struct {
		Session string   `json:"session"`
		Seq     int64    `json:"seq"`
		Key     string   `json:"key"`
		Peers   []string `json:"peers"`
	} `json:"live"`
	Standby []struct {
		Session string `json:"session"`
		Next    int64  `json:"next"`
		Key     string `json:"key"`
	} `json:"standby"`
}

// Reconcile rebuilds the session pin table from the fleet itself, so a
// router restarted after a crash (or started against an already-running
// fleet) recovers every pin without any persistent state of its own.
// Every up member reports the sessions it serves — with design key,
// journal sequence, and active stream peers — and the standby journals
// it holds. Sessions served by exactly one member are pinned there;
// double-claims resolve to the highest journal sequence (ties prefer
// the ring owner, then the smaller id) and the loser's copy is
// force-closed; sessions surviving only as standby journals are adopted
// on the holder with the highest contiguous sequence. Runs at Start and
// on POST /fleet/reconcile.
func (r *Router) Reconcile() map[string]any {
	mReconciles.Inc()
	ctx, tr, finish := r.startOp("fleet.reconcile")
	defer finish()
	root := span.Current(ctx)
	r.PollOnce()
	r.mu.Lock()
	polled := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		if m.up {
			polled = append(polled, m.Member)
		}
	}
	r.mu.Unlock()
	sort.Slice(polled, func(i, j int) bool { return polled[i].ID < polled[j].ID })

	type liveClaim struct {
		member string
		seq    int64
		key    string
		peers  []string
	}
	type standbyClaim struct {
		member string
		next   int64
		key    string
	}
	liveBy := make(map[string][]liveClaim)
	standbyBy := make(map[string][]standbyClaim)
	inventoried := 0
	complete := true
	ictx, is := span.Start(ctx, "inventory")
	for _, m := range polled {
		resp, err := r.control(ictx, m.URL, http.MethodGet, "/v1/replication/inventory", nil)
		if err != nil || resp.status != http.StatusOK {
			complete = false
			continue
		}
		var inv inventory
		if json.Unmarshal(resp.body, &inv) != nil {
			complete = false
			continue
		}
		inventoried++
		for _, l := range inv.Live {
			liveBy[l.Session] = append(liveBy[l.Session], liveClaim{m.ID, l.Seq, l.Key, l.Peers})
		}
		for _, sb := range inv.Standby {
			standbyBy[sb.Session] = append(standbyBy[sb.Session], standbyClaim{m.ID, sb.Next, sb.Key})
		}
	}
	is.AnnotateInt("members", inventoried)
	is.End()

	pinned, conflicts, adopted, released := 0, 0, 0, 0
	liveSids := make([]string, 0, len(liveBy))
	for sid := range liveBy {
		liveSids = append(liveSids, sid)
	}
	sort.Strings(liveSids)
	for _, sid := range liveSids {
		claims := liveBy[sid]
		r.mu.Lock()
		owner := r.ring.Lookup(claims[0].key)
		r.mu.Unlock()
		sort.Slice(claims, func(i, j int) bool {
			a, b := claims[i], claims[j]
			if a.seq != b.seq {
				return a.seq > b.seq
			}
			if (a.member == owner) != (b.member == owner) {
				return a.member == owner
			}
			return a.member < b.member
		})
		winner := claims[0]
		for _, loser := range claims[1:] {
			conflicts++
			mReconConflicts.Inc()
			r.cfg.Logf("fleet: reconcile: force-closing double-claimed %s on %s (seq %d; winner %s at seq %d)",
				sid, loser.member, loser.seq, winner.member, winner.seq)
			r.flight.Record(flight.Warn, "reconcile.conflict", sid, tr.ID(),
				"force-closing on %s (seq %d; winner %s at seq %d)", loser.member, loser.seq, winner.member, winner.seq)
			if u := r.memberURL(loser.member); u != "" {
				cctx, cs := span.Start(ctx, "force-close")
				cs.Annotate("session", sid)
				cs.Annotate("loser", loser.member)
				r.control(cctx, u, http.MethodDelete, "/v1/sessions/"+sid, nil)
				cs.End()
			}
		}
		r.pinSession(sid, winner.key, winner.member, r.knownMembers(winner.peers))
		pinned++
		// Standby copies on members outside the winner's active chain are
		// leftovers from an older epoch; drop them.
		chain := make(map[string]bool, len(winner.peers))
		for _, p := range winner.peers {
			chain[p] = true
		}
		for _, sb := range standbyBy[sid] {
			if sb.member == winner.member || chain[sb.member] {
				continue
			}
			if u := r.memberURL(sb.member); u != "" {
				r.control(ctx, u, http.MethodPost, "/v1/replication/sessions/"+sid+"/release", nil)
				released++
			}
		}
	}

	standbySids := make([]string, 0, len(standbyBy))
	for sid := range standbyBy {
		if liveBy[sid] == nil {
			standbySids = append(standbySids, sid)
		}
	}
	sort.Strings(standbySids)
	for _, sid := range standbySids {
		claims := standbyBy[sid]
		sort.Slice(claims, func(i, j int) bool {
			if claims[i].next != claims[j].next {
				return claims[i].next > claims[j].next
			}
			return claims[i].member < claims[j].member
		})
		best := claims[0]
		if best.next < 1 {
			continue
		}
		bm := r.member(best.member)
		if bm == nil || !bm.up {
			continue
		}
		r.mu.Lock()
		newChain := r.chainLocked(best.key, best.member)
		r.mu.Unlock()
		actx, as := span.Start(ctx, "adopt")
		as.Annotate("session", sid)
		as.Annotate("target", best.member)
		r.releaseStandbys(actx, sid, newChain)
		hdr := http.Header{}
		setPeerHeaders(hdr, newChain)
		resp, err := r.forward(actx, bm.URL, http.MethodPost, "/v1/replication/sessions/"+sid+"/adopt", hdr, nil)
		as.End()
		if err != nil || resp.status != http.StatusOK {
			r.cfg.Logf("fleet: reconcile: adopt orphaned %s on %s failed (err=%v status=%d)",
				sid, best.member, err, resp.statusOr0())
			continue
		}
		mReconAdopts.Inc()
		r.pinSession(sid, best.key, best.member, memberIDs(newChain))
		adopted++
		r.cfg.Logf("fleet: reconcile: adopted orphaned session %s on %s at seq %d", sid, best.member, best.next)
		r.flight.Record(flight.Info, "reconcile.adopt", sid, tr.ID(),
			"orphaned session adopted on %s at seq %d", best.member, best.next)
	}

	// Pins nothing in the fleet backs are stale — but only drop them when
	// every up member answered, and never while the pinned primary is
	// down (its journal may come back with it).
	dropped := 0
	if complete {
		r.mu.Lock()
		var stale []string
		for sid, rt := range r.sessions {
			if liveBy[sid] != nil || standbyBy[sid] != nil {
				continue
			}
			if m := r.members[rt.primary]; m != nil && !m.up {
				continue
			}
			stale = append(stale, sid)
		}
		for _, sid := range stale {
			delete(r.sessions, sid)
			dropped++
		}
		r.mu.Unlock()
		if dropped > 0 {
			r.cfg.Logf("fleet: reconcile: dropped %d stale pin(s)", dropped)
		}
	}
	root.AnnotateInt("pinned", pinned)
	root.AnnotateInt("conflicts", conflicts)
	root.AnnotateInt("adopted", adopted)
	r.flight.Record(flight.Info, "reconcile.end", "", tr.ID(),
		"inventoried %d member(s): pinned %d, conflicts %d, adopted %d, released %d, dropped %d",
		inventoried, pinned, conflicts, adopted, released, dropped)
	return map[string]any{
		"members_inventoried": inventoried,
		"complete":            complete,
		"pinned":              pinned,
		"conflicts":           conflicts,
		"adopted":             adopted,
		"released":            released,
		"dropped":             dropped,
	}
}

// pinSession installs (or overwrites) one session pin.
func (r *Router) pinSession(sid, key, primary string, peers []string) {
	r.mu.Lock()
	rt := r.sessions[sid]
	if rt == nil {
		rt = &sessionRoute{id: sid}
		r.sessions[sid] = rt
	}
	r.mu.Unlock()
	rt.mu.Lock()
	rt.key, rt.primary, rt.peers = key, primary, peers
	rt.mu.Unlock()
}

// knownMembers filters a reported peer list down to ids the router
// actually has as members.
func (r *Router) knownMembers(ids []string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if r.members[id] != nil {
			out = append(out, id)
		}
	}
	return out
}

// reconcileRejoined clears sessions a rejoining member still holds from
// a pre-failover life: any session it serves that the router has pinned
// elsewhere (or forgotten) is closed there so one session id never runs
// on two replicas.
func (r *Router) reconcileRejoined(id string) {
	m := r.member(id)
	if m == nil {
		return
	}
	resp, err := r.control(context.Background(), m.URL, http.MethodGet, "/v1/sessions", nil)
	if err != nil || resp.status != http.StatusOK {
		return
	}
	var list struct {
		Sessions []struct {
			Session string `json:"session"`
		} `json:"sessions"`
	}
	if json.Unmarshal(resp.body, &list) != nil {
		return
	}
	for _, s := range list.Sessions {
		r.mu.Lock()
		rt := r.sessions[s.Session]
		r.mu.Unlock()
		stale := rt == nil
		if rt != nil {
			rt.mu.Lock()
			stale = rt.primary != id
			rt.mu.Unlock()
		}
		if stale {
			r.cfg.Logf("fleet: closing stale copy of %s on rejoined %s", s.Session, id)
			r.control(context.Background(), m.URL, http.MethodDelete, "/v1/sessions/"+s.Session, nil)
		}
	}
}

// handleReadyz aggregates member readiness into fleet-level health.
func (r *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	members := make(map[string]any, len(r.members))
	up, routable := 0, 0
	for id, m := range r.members {
		st := m.state
		if !m.up {
			st = "down"
		} else if m.draining {
			st = "draining"
		}
		members[id] = map[string]any{"up": m.up, "state": st}
		if m.up {
			up++
			if !m.draining && m.state != "starting" {
				routable++
			}
		}
	}
	total := len(r.members)
	nsess := len(r.sessions)
	r.mu.Unlock()

	state := "ready"
	switch {
	case routable == 0:
		state = "down"
	case up < total:
		state = "degraded"
	}
	status := http.StatusOK
	if routable == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":    routable > 0,
		"state":    state,
		"members":  members,
		"up":       up,
		"total":    total,
		"sessions": nsess,
	})
}

// handleMetrics renders the router's own telemetry plus per-member
// liveness gauges in Prometheus text exposition.
func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	telemetry.WritePrometheus(&buf)
	r.mu.Lock()
	ids := make([]string, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(&buf, "# HELP hb_fleet_member_up Member liveness by replica (1 up, 0 down).\n# TYPE hb_fleet_member_up gauge\n")
	for _, id := range ids {
		v := 0
		if r.members[id].up {
			v = 1
		}
		fmt.Fprintf(&buf, "hb_fleet_member_up{replica=%q} %d\n", id, v)
	}
	fmt.Fprintf(&buf, "# HELP hb_fleet_member_sessions Sessions currently pinned to each replica.\n# TYPE hb_fleet_member_sessions gauge\n")
	counts := make(map[string]int, len(ids))
	for _, rt := range r.sessions {
		counts[rt.primary]++
	}
	for _, id := range ids {
		fmt.Fprintf(&buf, "hb_fleet_member_sessions{replica=%q} %d\n", id, counts[id])
	}
	r.mu.Unlock()
	w.Write(buf.Bytes())
}

// scrapeMemberMetrics fetches one member's /metrics.json snapshot with
// the short health-probe client, so a hung member cannot stall a
// federated scrape.
func (r *Router) scrapeMemberMetrics(baseURL string) (telemetry.Metrics, error) {
	var m telemetry.Metrics
	resp, err := r.healthc.Get(baseURL + "/metrics.json")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&m); err != nil {
		return m, err
	}
	return m, nil
}

// upMembersSorted snapshots the up members in id order.
func (r *Router) upMembersSorted() []Member {
	r.mu.Lock()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		if m.up {
			out = append(out, m.Member)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// handleFleetMetrics federates the fleet: it scrapes every up member's
// /metrics.json snapshot, merges it with the router's own instruments
// (replica "router"), and re-exposes one Prometheus exposition —
// per-member series labelled replica="<id>" plus hb_fleet_* rollup
// families carrying the merged values (see telemetry.WriteFederated).
// Unreachable members are skipped and counted in
// hb_fleet_federated_scrape_errors.
func (r *Router) handleFleetMetrics(w http.ResponseWriter, _ *http.Request) {
	members := []telemetry.MemberMetrics{{Replica: "router", Metrics: telemetry.Snapshot()}}
	scrapeErrs := 0
	for _, m := range r.upMembersSorted() {
		snap, err := r.scrapeMemberMetrics(m.URL)
		if err != nil {
			scrapeErrs++
			r.cfg.Logf("fleet: federated scrape of %s failed: %v", m.ID, err)
			continue
		}
		members = append(members, telemetry.MemberMetrics{Replica: m.ID, Metrics: snap})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	telemetry.WriteFederated(&buf, members)
	fmt.Fprintf(&buf, "# HELP hb_fleet_federated_scrape_errors Members that failed to scrape on this federation pass.\n")
	fmt.Fprintf(&buf, "# TYPE hb_fleet_federated_scrape_errors gauge\nhb_fleet_federated_scrape_errors %d\n", scrapeErrs)
	w.Write(buf.Bytes())
}

// handleFleetStatus is the operator one-pager: fleet health state,
// every member with its pinned-session count and per-hop replication
// lag (from the member's fleet.stream_lag_hop* gauges), the session pin
// table, and the tail of the router's flight-recorder timeline.
func (r *Router) handleFleetStatus(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	type memberRow struct {
		ID       string             `json:"id"`
		URL      string             `json:"url"`
		Up       bool               `json:"up"`
		Draining bool               `json:"draining"`
		State    string             `json:"state"`
		Sessions int                `json:"sessions"`
		HopLag   map[string]float64 `json:"hopLag,omitempty"`
	}
	rows := make([]*memberRow, 0, len(r.members))
	byID := make(map[string]*memberRow, len(r.members))
	up, total := 0, len(r.members)
	for _, m := range r.members {
		row := &memberRow{ID: m.ID, URL: m.URL, Up: m.up, Draining: m.draining, State: m.state}
		rows = append(rows, row)
		byID[m.ID] = row
		if m.up {
			up++
		}
	}
	pins := make(map[string]map[string]any, len(r.sessions))
	routes := make([]*sessionRoute, 0, len(r.sessions))
	for _, rt := range r.sessions {
		routes = append(routes, rt)
	}
	r.mu.Unlock()
	for _, rt := range routes {
		rt.mu.Lock()
		pins[rt.id] = map[string]any{"primary": rt.primary, "peers": rt.peers}
		if row := byID[rt.primary]; row != nil {
			row.Sessions++
		}
		rt.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	for _, row := range rows {
		if !row.Up {
			continue
		}
		snap, err := r.scrapeMemberMetrics(row.URL)
		if err != nil {
			continue
		}
		for name, v := range snap.Gauges {
			if strings.HasPrefix(name, "fleet.stream_lag_hop") {
				if row.HopLag == nil {
					row.HopLag = map[string]float64{}
				}
				row.HopLag[strings.TrimPrefix(name, "fleet.stream_lag_")] = v
			}
		}
	}
	state := "ready"
	switch {
	case up == 0:
		state = "down"
	case up < total:
		state = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"state":    state,
		"up":       up,
		"total":    total,
		"standbys": r.cfg.Standbys,
		"sessions": len(pins),
		"members":  rows,
		"pins":     pins,
		"events":   r.flight.Tail(10),
	})
}

// handleFleetTrace reassembles one distributed trace: the router's own
// fragment (retained in its trace ring) plus the fragment each up
// member retained for the same trace id (GET /v1/traces/{id}), spliced
// by span.Stitch into a single cross-process tree. ?format=chrome
// downloads it as a Chrome trace-event file; the default is the span
// tree as JSON.
func (r *Router) handleFleetTrace(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if !validTraceID(id) {
		httpError(w, http.StatusBadRequest, "bad trace id")
		return
	}
	var frags []*span.Export
	if t := r.traces.Get(id); t != nil {
		frags = append(frags, t.Export())
	}
	for _, m := range r.upMembersSorted() {
		resp, err := r.healthc.Get(m.URL + "/v1/traces/" + id)
		if err != nil {
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		var e span.Export
		if json.Unmarshal(body, &e) == nil && e.Root != nil {
			frags = append(frags, &e)
		}
	}
	if len(frags) == 0 {
		httpError(w, http.StatusNotFound, "trace %q not retained anywhere in the fleet", id)
		return
	}
	stitched := span.Stitch(frags)
	if req.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "trace-"+id+".json"))
		stitched.WriteChrome(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	stitched.WriteJSON(w)
}

// handleMembers reports full member detail for operators.
func (r *Router) handleMembers(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	out := make([]map[string]any, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, map[string]any{
			"id": m.ID, "url": m.URL, "up": m.up,
			"draining": m.draining, "state": m.state,
		})
	}
	ringMembers := r.ring.Members()
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i]["id"].(string) < out[j]["id"].(string) })
	writeJSON(w, http.StatusOK, map[string]any{
		"members": out, "ring": ringMembers, "standbys": r.cfg.Standbys,
	})
}

// handleDrain marks a member draining (no new sessions) and migrates
// its sessions to ring targets. The replica itself stays up; the
// operator stops it afterwards.
func (r *Router) handleDrain(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r.mu.Lock()
	m := r.members[id]
	if m == nil {
		r.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown member %q", id)
		return
	}
	m.draining = true
	r.rebuildRingLocked()
	r.mu.Unlock()
	r.flight.Record(flight.Info, "member.drain", "", "", "%s draining (operator request)", id)
	migrated, errs := r.drainMember(id)
	status := http.StatusOK
	if len(errs) > 0 {
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]any{
		"member": id, "draining": true, "migrated": migrated, "errors": errs,
	})
}

// handleUndrain returns a drained member to the ring.
func (r *Router) handleUndrain(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r.mu.Lock()
	m := r.members[id]
	if m == nil {
		r.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown member %q", id)
		return
	}
	m.draining = false
	r.rebuildRingLocked()
	r.mu.Unlock()
	r.flight.Record(flight.Info, "member.undrain", "", "", "%s back in the ring", id)
	writeJSON(w, http.StatusOK, map[string]any{"member": id, "draining": false})
}

// bufferedResponse is a fully buffered upstream response, so a
// transport failure can never leave a half-written downstream reply and
// retries stay safe.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
}

func (b *bufferedResponse) statusOr0() int {
	if b == nil {
		return 0
	}
	return b.status
}

func (b *bufferedResponse) sessionID() string {
	var m struct {
		Session string `json:"session"`
	}
	if json.Unmarshal(b.body, &m) != nil {
		return ""
	}
	return m.Session
}

func (b *bufferedResponse) writeTo(w http.ResponseWriter) {
	copyProxyHeaders(w.Header(), b.header)
	w.WriteHeader(b.status)
	w.Write(b.body)
}

// forward proxies one request to a member and buffers the reply. Every
// outbound hop is tagged: when the explicit headers carry no trace id,
// the trace on ctx (a proxied client's request trace, or a router
// operation trace from startOp) is injected as X-Trace-Id plus the
// current span id as X-Hb-Parent-Span, so member-side fragments splice
// back into one cross-process tree.
func (r *Router) forward(ctx context.Context, baseURL, method, uri string, hdr http.Header, body []byte) (*bufferedResponse, error) {
	req, err := http.NewRequest(method, baseURL+uri, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if req.Header.Get(span.TraceIDHeader) == "" {
		span.Inject(ctx, req.Header)
	}
	if req.Header.Get("Content-Type") == "" && len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxBody))
	if err != nil {
		return nil, err
	}
	return &bufferedResponse{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// control issues a short fleet-control request (park, adopt, release,
// forget, export) against a member, trace-tagged from ctx like forward.
func (r *Router) control(ctx context.Context, baseURL, method, uri string, body []byte) (*bufferedResponse, error) {
	return r.forward(ctx, baseURL, method, uri, nil, body)
}

// proxyHeaders is the one whitelist both proxy directions share:
// client→member requests and member→client responses copy exactly
// these headers; hop-by-hop and routing headers stay out. Retry-After
// rides along in both directions so shed/realign signals survive every
// proxied path.
var proxyHeaders = []string{"Content-Type", "Accept", "X-Trace-Id", "Retry-After"}

// copyProxyHeaders copies the shared whitelist from src to dst.
func copyProxyHeaders(dst, src http.Header) {
	for _, k := range proxyHeaders {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}

func truncate(b []byte, n int) string {
	s := strings.TrimSpace(string(b))
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
