// Fleet observability surface tests against fake members: metrics
// federation (merged counters must equal the per-member scrapes and the
// exposition must satisfy the strict validator), the /fleet/status
// one-pager, the /events flight timeline, and cross-process trace
// stitching via /fleet/trace/{id}.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/flight"
	"hummingbird/internal/telemetry/span"
)

// fakeMember serves just enough of the daemon surface for the router's
// observability handlers: health, a canned metrics snapshot, and an
// optional retained trace fragment.
type fakeMember struct {
	id      string
	metrics telemetry.Metrics
	trace   *span.Export // served at /v1/traces/{id} when non-nil
}

func (f *fakeMember) serve(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"state": "ready"})
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, f.metrics)
	})
	mux.HandleFunc("GET /v1/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		if f.trace == nil || f.trace.ID != r.PathValue("id") {
			httpError(w, http.StatusNotFound, "not retained")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		f.trace.WriteJSON(w)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func obsRouter(t *testing.T, fakes ...*fakeMember) (*Router, *httptest.Server) {
	t.Helper()
	members := make([]Member, 0, len(fakes))
	for _, f := range fakes {
		members = append(members, Member{ID: f.id, URL: f.serve(t).URL})
	}
	r, err := NewRouter(Config{Members: members, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r.Handler())
	t.Cleanup(front.Close)
	return r, front
}

func obsGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestFleetMetricsFederation(t *testing.T) {
	m1 := &fakeMember{id: "r1", metrics: telemetry.Metrics{
		Counters: map[string]int64{"server.requests": 11, "fleet.frames_received": 4},
		Gauges:   map[string]float64{"server.sessions_open": 2},
	}}
	m2 := &fakeMember{id: "r2", metrics: telemetry.Metrics{
		Counters: map[string]int64{"server.requests": 31},
		Gauges:   map[string]float64{"server.sessions_open": 3},
	}}
	_, front := obsRouter(t, m1, m2)

	status, body := obsGet(t, front.URL+"/fleet/metrics")
	if status != http.StatusOK {
		t.Fatalf("fleet metrics: %d", status)
	}
	out := string(body)
	if err := telemetry.CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("federated exposition invalid: %v\n%s", err, out)
	}
	// Per-member series survive with replica labels; the rollup is the
	// exact sum of the member scrapes.
	for _, want := range []string{
		`hb_server_requests_total{replica="r1"} 11`,
		`hb_server_requests_total{replica="r2"} 31`,
		"hb_fleet_server_requests_total 42",
		`hb_fleet_frames_received_total{replica="r1"} 4`,
		"hb_fleet_fleet_frames_received_total 4",
		"hb_fleet_server_sessions_open 5",
		"hb_fleet_federated_members 3", // router + 2 members
		"hb_fleet_federated_scrape_errors 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated exposition lacks %q", want)
		}
	}
}

func TestFleetMetricsSkipsDeadMember(t *testing.T) {
	m1 := &fakeMember{id: "r1", metrics: telemetry.Metrics{
		Counters: map[string]int64{"server.requests": 7},
	}}
	m2 := &fakeMember{id: "r2"}
	r, front := obsRouter(t, m1, m2)
	// Take r2 down in the router's view: its scrape must be skipped, not
	// fail the whole federation.
	r.mu.Lock()
	r.members["r2"].up = false
	r.mu.Unlock()

	status, body := obsGet(t, front.URL+"/fleet/metrics")
	if status != http.StatusOK {
		t.Fatalf("fleet metrics with down member: %d", status)
	}
	out := string(body)
	if err := telemetry.CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("federated exposition invalid: %v", err)
	}
	if strings.Contains(out, `replica="r2"`) {
		t.Error("down member leaked into the federation")
	}
	if !strings.Contains(out, `hb_server_requests_total{replica="r1"} 7`) {
		t.Error("up member missing from the federation")
	}
}

func TestFleetStatus(t *testing.T) {
	m1 := &fakeMember{id: "r1", metrics: telemetry.Metrics{
		Gauges: map[string]float64{"fleet.stream_lag_hop1": 3, "fleet.stream_lag_hop2": 1},
	}}
	m2 := &fakeMember{id: "r2"}
	r, front := obsRouter(t, m1, m2)
	r.pinSession("r1-1", "design:1", "r1", []string{"r2"})
	r.flight.Record(flight.Warn, "failover.begin", "r1-1", "tr-1", "probing")

	status, body := obsGet(t, front.URL+"/fleet/status")
	if status != http.StatusOK {
		t.Fatalf("fleet status: %d", status)
	}
	var st struct {
		State    string `json:"state"`
		Up       int    `json:"up"`
		Total    int    `json:"total"`
		Sessions int    `json:"sessions"`
		Members  []struct {
			ID       string             `json:"id"`
			Up       bool               `json:"up"`
			Sessions int                `json:"sessions"`
			HopLag   map[string]float64 `json:"hopLag"`
		} `json:"members"`
		Pins   map[string]map[string]any `json:"pins"`
		Events []flight.Event            `json:"events"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status decode: %v\n%s", err, body)
	}
	if st.State != "ready" || st.Up != 2 || st.Total != 2 || st.Sessions != 1 {
		t.Fatalf("status header: %+v", st)
	}
	if len(st.Members) != 2 || st.Members[0].ID != "r1" || st.Members[0].Sessions != 1 {
		t.Fatalf("member rows: %+v", st.Members)
	}
	if st.Members[0].HopLag["hop1"] != 3 || st.Members[0].HopLag["hop2"] != 1 {
		t.Fatalf("hop lag: %+v", st.Members[0].HopLag)
	}
	if st.Pins["r1-1"]["primary"] != "r1" {
		t.Fatalf("pins: %+v", st.Pins)
	}
	if len(st.Events) == 0 || st.Events[len(st.Events)-1].Kind != "failover.begin" {
		t.Fatalf("events tail: %+v", st.Events)
	}
}

func TestFleetEventsEndpoint(t *testing.T) {
	m1 := &fakeMember{id: "r1"}
	r, front := obsRouter(t, m1)
	r.flight.Record(flight.Info, "member.join", "", "", "r9 joined")
	r.flight.Record(flight.Error, "failover.error", "s1", "tr-9", "boom")

	status, body := obsGet(t, front.URL+"/events")
	if status != http.StatusOK {
		t.Fatalf("events: %d", status)
	}
	var got struct {
		Replica string         `json:"replica"`
		Next    int64          `json:"next"`
		Events  []flight.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("events decode: %v", err)
	}
	if got.Replica != "router" || len(got.Events) != 2 {
		t.Fatalf("events payload: %+v", got)
	}
	// ?since resumes after the cursor the previous response returned.
	status, body = obsGet(t, fmt.Sprintf("%s/events?since=%d", front.URL, got.Next))
	if status != http.StatusOK {
		t.Fatalf("events since: %d", status)
	}
	var empty struct {
		Events []flight.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &empty); err != nil || len(empty.Events) != 0 {
		t.Fatalf("resume should be empty: %v %+v", err, empty)
	}
}

func TestFleetTraceStitchesAcrossProcesses(t *testing.T) {
	m1 := &fakeMember{id: "r1"}
	r, front := obsRouter(t, m1)

	// A real router operation leaves a trace in the ring and its id in a
	// flight event — the same discovery path an operator uses. The fake
	// member serves no inventory endpoint, so the reconcile trace exists
	// regardless of what it concluded.
	r.Reconcile()
	events, _ := r.flight.Since(0, "")
	traceID := ""
	for _, ev := range events {
		if ev.Kind == "reconcile.end" {
			traceID = ev.Trace
		}
	}
	if traceID == "" {
		t.Fatalf("no reconcile.end event with a trace id: %+v", events)
	}

	// Give the fake member a fragment for the same trace, hanging off a
	// remote parent, as a daemon that served one traced hop would retain.
	tr := span.New(traceID, "server.repl_adopt")
	tr.SetProcess("r1")
	tr.SetRemoteParent("2")
	tr.Finish()
	m1.trace = tr.Export()

	status, body := obsGet(t, front.URL+"/fleet/trace/"+traceID)
	if status != http.StatusOK {
		t.Fatalf("fleet trace: %d %s", status, body)
	}
	var exp span.Export
	if err := json.Unmarshal(body, &exp); err != nil {
		t.Fatalf("stitched decode: %v", err)
	}
	procs := map[string]bool{}
	var walk func(n *span.Node)
	walk = func(n *span.Node) {
		if n == nil {
			return
		}
		if n.Process != "" {
			procs[n.Process] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(exp.Root)
	if !procs["router"] || !procs["r1"] {
		t.Fatalf("stitched trace spans processes %v, want router and r1", procs)
	}

	// Chrome form: two distinct pids and a metadata name per process.
	status, body = obsGet(t, front.URL+"/fleet/trace/"+traceID+"?format=chrome")
	if status != http.StatusOK {
		t.Fatalf("chrome trace: %d", status)
	}
	var evs []map[string]any
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatalf("chrome decode: %v", err)
	}
	pids := map[float64]bool{}
	for _, ev := range evs {
		pids[ev["pid"].(float64)] = true
	}
	if len(pids) != 2 {
		t.Fatalf("chrome trace has %d pid(s), want 2", len(pids))
	}

	if status, _ := obsGet(t, front.URL+"/fleet/trace/absent-id"); status != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d, want 404", status)
	}
	if status, _ := obsGet(t, front.URL+"/fleet/trace/bad%20id"); status != http.StatusBadRequest {
		t.Fatalf("invalid trace id: %d, want 400", status)
	}
}

// TestFailoverOperationTraced drives a failover against fake members
// far enough to fail (no standby holds the session) and checks the
// operation still leaves a finished trace with probe spans and error
// flight events — the observability contract when things go wrong.
func TestFailoverOperationTraced(t *testing.T) {
	m1 := &fakeMember{id: "r1"}
	m2 := &fakeMember{id: "r2"}
	r, _ := obsRouter(t, m1, m2)
	r.pinSession("r1-1", "design:1", "r1", []string{"r2"})
	r.mu.Lock()
	rt := r.sessions["r1-1"]
	r.mu.Unlock()

	if _, err := r.failoverSession("r1-1", rt, "r1"); err == nil {
		t.Fatal("failover against a fake with no standby should fail")
	}
	events, _ := r.flight.Since(0, "r1-1")
	kinds := map[string]string{}
	for _, ev := range events {
		kinds[ev.Kind] = ev.Trace
	}
	if kinds["failover.begin"] == "" || kinds["failover.error"] == "" {
		t.Fatalf("failover events missing trace ids: %v", kinds)
	}
	if kinds["failover.begin"] != kinds["failover.error"] {
		t.Fatalf("begin/error trace ids differ: %v", kinds)
	}
	tr := r.traces.Get(kinds["failover.begin"])
	if tr == nil {
		t.Fatal("failover trace not retained in the ring")
	}
	exp := tr.Export()
	names := map[string]int{}
	var walk func(n *span.Node)
	walk = func(n *span.Node) {
		names[n.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(exp.Root)
	if names["fleet.failover"] != 1 || names["probe"] == 0 {
		t.Fatalf("failover trace shape: %v", names)
	}
	if exp.Root.Attrs["session"] != "r1-1" || exp.Root.Attrs["error"] == "" {
		t.Fatalf("failover root attrs: %v", exp.Root.Attrs)
	}
}
