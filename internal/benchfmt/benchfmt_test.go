package benchfmt

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hummingbird/internal/report"
)

func sampleRun() *Run {
	r := NewRun("test", "2026-08-07")
	r.Rows = []Row{
		{Workload: "des", Cells: 3681, AnalysisNs: 810_000, PreProcessNs: 21_000_000, OK: true},
		{Workload: "alu", Cells: 899, AnalysisNs: 200_000, PreProcessNs: 5_000_000, OK: true},
	}
	r.Load = []LoadRow{
		{
			Workload: "sm1f", OpClass: "edit_delay", Arrivals: "poisson",
			TargetRate: 100, Sessions: 32, DurationNs: int64(10 * time.Second),
			Scheduled: 1000, Ops: 1000, Throughput: 99.7,
			P50Ns: 400_000, P90Ns: 900_000, P99Ns: 2_000_000, P999Ns: 5_000_000,
		},
	}
	r.Scaling = []ScalingRow{
		{Workload: "soc625", Cells: 103_380, Clusters: 814, Levels: 9,
			Workers: 1, AnalyzeNs: 40_000_000, Speedup: 1},
		{Workload: "soc625", Cells: 103_380, Clusters: 814, Levels: 9,
			Workers: 8, AnalyzeNs: 8_000_000, Speedup: 5,
			RecomputeNs: 3_000_000, DirtyClusters: 256},
	}
	return r
}

func TestMergeScalingReplacesByKey(t *testing.T) {
	run := sampleRun()
	run.MergeScaling([]ScalingRow{
		{Workload: "soc625", Cells: 103_380, Workers: 8, AnalyzeNs: 7_000_000, Speedup: 5.7},
		{Workload: "soc625", Cells: 1_030_000, Workers: 1, AnalyzeNs: 400_000_000, Speedup: 1},
	})
	if len(run.Scaling) != 3 {
		t.Fatalf("want 3 scaling rows after merge, got %d", len(run.Scaling))
	}
	// Sorted by (workload, cells, workers); the 8-worker row was replaced
	// in place and the 1M-cell row appended after the 100k rows.
	if run.Scaling[1].Workers != 8 || run.Scaling[1].AnalyzeNs != 7_000_000 {
		t.Fatalf("merge did not replace by key: %+v", run.Scaling)
	}
	if run.Scaling[2].Cells != 1_030_000 {
		t.Fatalf("merge order wrong: %+v", run.Scaling)
	}
}

func TestRoundTrip(t *testing.T) {
	run := sampleRun()
	var buf bytes.Buffer
	if err := Write(&buf, run); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", run, got)
	}
}

func TestReadRejectsUnknownSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schemaVersion": 999}`)); err == nil {
		t.Fatal("want error for unknown schema version")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	run := sampleRun()
	if err := WriteFile(path, run); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "test" || got.Date != "2026-08-07" {
		t.Fatalf("metadata lost: %+v", got)
	}
	if len(got.Rows) != 2 || len(got.Load) != 1 {
		t.Fatalf("rows lost: %d rows, %d load", len(got.Rows), len(got.Load))
	}
}

func TestFromReportRow(t *testing.T) {
	row := FromReportRow(report.Row{
		Name: "des", Cells: 3681, Nets: 4000, Latches: 512,
		Clusters: 33, Passes: 40,
		PreProcess: 21 * time.Millisecond, Analysis: 810 * time.Microsecond,
		Sweeps: 3, Recomputes: 66, DelayEvals: 9000,
		IncrEdit: 42 * time.Microsecond, FullEdit: 22 * time.Millisecond,
		OpenCold: 9 * time.Millisecond, OpenShared: 4 * time.Millisecond,
		OK: true,
	})
	if row.Workload != "des" || row.AnalysisNs != 810_000 || row.IncrEditNs != 42_000 {
		t.Fatalf("conversion wrong: %+v", row)
	}
	if !row.OK || row.Cells != 3681 || row.OpenSharedNs != 4_000_000 {
		t.Fatalf("conversion wrong: %+v", row)
	}
}

func TestCompareFlagsLatencyRegression(t *testing.T) {
	old, new := sampleRun(), sampleRun()
	new.Rows[0].AnalysisNs = old.Rows[0].AnalysisNs * 2 // 2x slower analysis on des
	new.Load[0].P99Ns = old.Load[0].P99Ns * 3           // 3x p99 on the load row
	regs := Compare(old, new, 0.25)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %d: %v", len(regs), regs)
	}
	// Sorted worst-ratio first: the 3x p99 outranks the 2x analysis.
	if regs[0].Metric != "p99Ns" || regs[0].Where != "sm1f/edit_delay/poisson" {
		t.Fatalf("worst first: %+v", regs[0])
	}
	if regs[1].Metric != "analysisNs" || regs[1].Where != "des" {
		t.Fatalf("second: %+v", regs[1])
	}
	if !strings.Contains(regs[1].String(), "analysisNs") {
		t.Fatalf("String(): %s", regs[1])
	}
}

func TestCompareWithinNoiseIsClean(t *testing.T) {
	old, new := sampleRun(), sampleRun()
	new.Rows[0].AnalysisNs = old.Rows[0].AnalysisNs * 11 / 10 // +10%
	new.Load[0].Throughput = old.Load[0].Throughput * 0.95    // -5%
	if regs := Compare(old, new, 0.25); len(regs) != 0 {
		t.Fatalf("within noise, got %v", regs)
	}
}

func TestCompareFlagsThroughputAndErrors(t *testing.T) {
	old, new := sampleRun(), sampleRun()
	new.Load[0].Throughput = old.Load[0].Throughput / 2
	new.Load[0].Errors = map[string]int64{"503": 100}
	regs := Compare(old, new, 0.25)
	metrics := map[string]bool{}
	for _, r := range regs {
		metrics[r.Metric] = true
	}
	if !metrics["throughput"] || !metrics["errorRate"] {
		t.Fatalf("want throughput+errorRate regressions, got %v", regs)
	}
}

func TestCompareMissingRow(t *testing.T) {
	old, new := sampleRun(), sampleRun()
	new.Rows = new.Rows[:1]
	new.Load = nil
	regs := Compare(old, new, 0.25)
	missing := 0
	for _, r := range regs {
		if r.Metric == "missing" {
			missing++
		}
	}
	if missing != 2 {
		t.Fatalf("want 2 missing rows, got %v", regs)
	}
}

func TestCompareSkipsUntakenMeasurements(t *testing.T) {
	// A metric that is zero on either side (not measured) never flags.
	old, new := sampleRun(), sampleRun()
	old.Rows[0].IncrEditNs = 0
	new.Rows[0].IncrEditNs = 1_000_000_000
	if regs := Compare(old, new, 0.25); len(regs) != 0 {
		t.Fatalf("unmeasured metric flagged: %v", regs)
	}
}

func TestCompareOKFlip(t *testing.T) {
	old, new := sampleRun(), sampleRun()
	new.Rows[1].OK = false
	regs := Compare(old, new, 0.25)
	if len(regs) != 1 || regs[0].Metric != "ok" || regs[0].Where != "alu" {
		t.Fatalf("want ok flip on alu, got %v", regs)
	}
}

func TestMergeLoadReplacesByKey(t *testing.T) {
	run := sampleRun()
	run.MergeLoad([]LoadRow{
		{Workload: "sm1f", OpClass: "edit_delay", Arrivals: "poisson", P99Ns: 42},
		{Workload: "des", OpClass: "report", Arrivals: "const", P99Ns: 7},
	})
	if len(run.Load) != 2 {
		t.Fatalf("want 2 load rows after merge, got %d", len(run.Load))
	}
	// Sorted: des before sm1f; the sm1f row was replaced in place.
	if run.Load[0].Workload != "des" || run.Load[1].P99Ns != 42 {
		t.Fatalf("merge wrong: %+v", run.Load)
	}
}

func TestWriteComparison(t *testing.T) {
	old, new := sampleRun(), sampleRun()
	var buf bytes.Buffer
	if n := WriteComparison(&buf, old, new, 0.25); n != 0 {
		t.Fatalf("identical runs: %d regressions\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Fatalf("output: %s", buf.String())
	}
	buf.Reset()
	new.Load[0].P99Ns *= 10
	if n := WriteComparison(&buf, old, new, 0.25); n != 1 {
		t.Fatalf("want 1 regression, got %d\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("output: %s", buf.String())
	}
}
