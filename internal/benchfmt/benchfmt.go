// Package benchfmt defines the machine-readable benchmark trajectory
// format the repository's BENCH_<label>.json files use. One Run captures
// a benchmark session: metadata that pins the run to a build (commit, go
// version, host shape, an explicitly supplied date), the Table-1-style
// per-workload metric rows emitted by cmd/benchtables, and the open-loop
// load-test rows emitted by cmd/hummingbirdload. Compare diffs two runs
// and flags metric movements beyond a configurable noise threshold, so a
// BENCH file committed by one PR becomes the regression baseline for the
// next.
//
// The schema is append-only: fields may be added, never renamed or
// repurposed, and SchemaVersion is bumped on every shape change so a
// comparison across incompatible files fails loudly instead of silently
// diffing the wrong columns.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"hummingbird/internal/buildinfo"
	"hummingbird/internal/report"
)

// SchemaVersion identifies the current file shape.
const SchemaVersion = 1

// Host describes the machine shape a run was measured on — enough to
// explain why two trajectories are not directly comparable.
type Host struct {
	OS     string `json:"os"`
	Arch   string `json:"arch"`
	NumCPU int    `json:"numCpu"`
}

// CollectHost reads the running process's host shape.
func CollectHost() Host {
	return Host{OS: runtime.GOOS, Arch: runtime.GOARCH, NumCPU: runtime.NumCPU()}
}

// Run is one benchmark session: metadata plus metric rows. Either Rows
// (benchtables) or Load (hummingbirdload) may be empty; a combined
// trajectory file carries both.
type Run struct {
	SchemaVersion int `json:"schemaVersion"`
	// Label names the run ("2026-08-07", "ci", "pr6-candidate").
	Label string `json:"label"`
	// Date is supplied explicitly by the producer (not read from the
	// clock at encode time) so re-generated files stay reproducible.
	Date  string         `json:"date"`
	Build buildinfo.Info `json:"build"`
	Host  Host           `json:"host"`
	// Rows are the Table-1-style analysis metrics per workload.
	Rows []Row `json:"rows,omitempty"`
	// Load are the open-loop load-test results per (workload, op class).
	Load []LoadRow `json:"load,omitempty"`
	// Scaling are the workers x design-size parallel-analysis points
	// emitted by benchtables -scaling.
	Scaling []ScalingRow `json:"scaling,omitempty"`
}

// NewRun builds the metadata envelope for a run.
func NewRun(label, date string) *Run {
	return &Run{
		SchemaVersion: SchemaVersion,
		Label:         label,
		Date:          date,
		Build:         buildinfo.Collect(),
		Host:          CollectHost(),
	}
}

// Row is one workload's analysis metrics — the JSON shape of a
// report.Row, with durations in integer nanoseconds.
type Row struct {
	Workload     string `json:"workload"`
	Cells        int    `json:"cells"`
	Nets         int    `json:"nets"`
	Latches      int    `json:"latches"`
	Clusters     int    `json:"clusters"`
	Passes       int    `json:"passes"`
	PreProcessNs int64  `json:"preprocessNs"`
	AnalysisNs   int64  `json:"analysisNs"`
	Sweeps       int    `json:"sweeps"`
	Recomputes   int64  `json:"recomputes"`
	DelayEvals   int64  `json:"delayEvals"`
	IncrEditNs   int64  `json:"incrEditNs,omitempty"`
	FullEditNs   int64  `json:"fullEditNs,omitempty"`
	OpenColdNs   int64  `json:"openColdNs,omitempty"`
	OpenSharedNs int64  `json:"openSharedNs,omitempty"`
	OK           bool   `json:"ok"`
}

// FromReportRow converts a benchtables table row into its JSON shape.
func FromReportRow(r report.Row) Row {
	return Row{
		Workload:     r.Name,
		Cells:        r.Cells,
		Nets:         r.Nets,
		Latches:      r.Latches,
		Clusters:     r.Clusters,
		Passes:       r.Passes,
		PreProcessNs: r.PreProcess.Nanoseconds(),
		AnalysisNs:   r.Analysis.Nanoseconds(),
		Sweeps:       r.Sweeps,
		Recomputes:   r.Recomputes,
		DelayEvals:   r.DelayEvals,
		IncrEditNs:   r.IncrEdit.Nanoseconds(),
		FullEditNs:   r.FullEdit.Nanoseconds(),
		OpenColdNs:   r.OpenCold.Nanoseconds(),
		OpenSharedNs: r.OpenShared.Nanoseconds(),
		OK:           r.OK,
	}
}

// LoadRow is one (workload, op class) cell of an open-loop load test.
// Latency percentiles are measured from each operation's scheduled
// intent time (coordinated-omission safe); the service percentiles are
// measured from request send, so LatencyP99Ns - ServiceP99Ns reads as
// client-side queueing delay.
type LoadRow struct {
	Workload string `json:"workload"`
	OpClass  string `json:"opClass"`
	// Arrivals is "const" or "poisson".
	Arrivals string `json:"arrivals"`
	// TargetRate is the scheduled arrival rate for this class, ops/sec.
	TargetRate float64 `json:"targetRate"`
	Sessions   int     `json:"sessions"`
	// Replicas is the fleet size behind the driven endpoint: 0/absent for
	// a standalone daemon, N when the load went through a fleet router
	// fronting N replicas. Part of the row identity — single-replica and
	// fleet rows for the same workload never overwrite each other.
	Replicas   int   `json:"replicas,omitempty"`
	DurationNs int64 `json:"durationNs"`
	// Ops counts completed operations (including errored ones); Scheduled
	// counts intents the generator issued (Scheduled - Ops = still in
	// flight or dropped at harness overload).
	Scheduled int64 `json:"scheduled"`
	Ops       int64 `json:"ops"`
	// Errors maps HTTP status (as a string, e.g. "429") to count; Shed is
	// the 429 subset, Failed the 5xx+transport-error subset.
	Errors map[string]int64 `json:"errors,omitempty"`
	Shed   int64            `json:"shed"`
	Failed int64            `json:"failed"`
	// Throughput is achieved completed ops/sec over the run window.
	Throughput float64 `json:"throughput"`
	MeanNs     int64   `json:"meanNs"`
	P50Ns      int64   `json:"p50Ns"`
	P90Ns      int64   `json:"p90Ns"`
	P99Ns      int64   `json:"p99Ns"`
	P999Ns     int64   `json:"p999Ns"`
	MaxNs      int64   `json:"maxNs"`
	// Service-time percentiles (from send, not intent).
	ServiceP50Ns int64 `json:"serviceP50Ns"`
	ServiceP99Ns int64 `json:"serviceP99Ns"`
}

// ScalingRow is one (workload, cells, workers) point of the parallel
// scaling table: wall time of a full level-scheduled analysis and of an
// incremental recompute over a large dirty set, at a fixed worker count.
type ScalingRow struct {
	Workload string `json:"workload"`
	Cells    int    `json:"cells"`
	Clusters int    `json:"clusters"`
	Levels   int    `json:"levels"`
	Workers  int    `json:"workers"`
	// AnalyzeNs is the best-of-N wall time of one full analysis.
	AnalyzeNs int64 `json:"analyzeNs"`
	// Speedup is the 1-worker AnalyzeNs of the same (workload, cells)
	// divided by this row's — 1.0 on the 1-worker row by construction.
	Speedup float64 `json:"speedup,omitempty"`
	// RecomputeNs is the best-of-N wall time of recomputing
	// DirtyClusters dirty clusters through the same scheduler.
	RecomputeNs   int64 `json:"recomputeNs,omitempty"`
	DirtyClusters int   `json:"dirtyClusters,omitempty"`
}

// MergeScaling appends scaling rows to the run, replacing any existing
// row with the same (workload, cells, workers) key so re-measuring one
// configuration updates it in place.
func (r *Run) MergeScaling(rows []ScalingRow) {
	for _, nr := range rows {
		replaced := false
		for i, old := range r.Scaling {
			if old.Workload == nr.Workload && old.Cells == nr.Cells && old.Workers == nr.Workers {
				r.Scaling[i] = nr
				replaced = true
				break
			}
		}
		if !replaced {
			r.Scaling = append(r.Scaling, nr)
		}
	}
	sort.Slice(r.Scaling, func(i, j int) bool {
		if r.Scaling[i].Workload != r.Scaling[j].Workload {
			return r.Scaling[i].Workload < r.Scaling[j].Workload
		}
		if r.Scaling[i].Cells != r.Scaling[j].Cells {
			return r.Scaling[i].Cells < r.Scaling[j].Cells
		}
		return r.Scaling[i].Workers < r.Scaling[j].Workers
	})
}

// Write serialises a run as indented JSON.
func Write(w io.Writer, r *Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes a run to path (the whole file is replaced).
func WriteFile(path string, r *Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes one run, rejecting unknown schema versions.
func Read(rd io.Reader) (*Run, error) {
	var r Run
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, err
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("unsupported schema version %d (this build reads %d)", r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// ReadFile reads a run from path.
func ReadFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// MergeLoad appends load rows to the run, replacing any existing row
// with the same (workload, op class, arrivals, replicas) key so a
// re-run of one workload updates its rows in place.
func (r *Run) MergeLoad(rows []LoadRow) {
	for _, nr := range rows {
		replaced := false
		for i, old := range r.Load {
			if old.Workload == nr.Workload && old.OpClass == nr.OpClass && old.Arrivals == nr.Arrivals && old.Replicas == nr.Replicas {
				r.Load[i] = nr
				replaced = true
				break
			}
		}
		if !replaced {
			r.Load = append(r.Load, nr)
		}
	}
	sort.Slice(r.Load, func(i, j int) bool {
		if r.Load[i].Workload != r.Load[j].Workload {
			return r.Load[i].Workload < r.Load[j].Workload
		}
		if r.Load[i].OpClass != r.Load[j].OpClass {
			return r.Load[i].OpClass < r.Load[j].OpClass
		}
		return r.Load[i].Arrivals < r.Load[j].Arrivals
	})
}

// fmtNs renders a nanosecond metric value human-readably in regression
// listings.
func fmtNs(ns float64) string {
	return time.Duration(int64(ns)).Round(time.Microsecond).String()
}
