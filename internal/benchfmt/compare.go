// Regression detection between two benchmark runs: every comparable
// metric is diffed against a relative noise threshold, lower-is-better
// for latencies and higher-is-better for throughput.

package benchfmt

import (
	"fmt"
	"io"
	"sort"
)

// Direction says which way a metric is allowed to move freely.
type Direction int

const (
	// LowerIsBetter flags new > old*(1+noise).
	LowerIsBetter Direction = iota
	// HigherIsBetter flags new < old*(1-noise).
	HigherIsBetter
)

// Regression is one metric that moved beyond the noise threshold
// between two runs, or a row present in the old run but missing from
// the new one.
type Regression struct {
	// Where identifies the row: workload name, plus op class and arrival
	// mode for load rows.
	Where string `json:"where"`
	// Metric is the JSON field name that regressed ("p99Ns",
	// "analysisNs", "throughput", ...), or "missing" for a vanished row.
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Ratio is New/Old (0 when Old is 0 or the row is missing).
	Ratio float64 `json:"ratio"`
	// Nanoseconds marks duration metrics so they render as durations.
	Nanoseconds bool `json:"-"`
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: row missing from new run", r.Where)
	}
	if r.Nanoseconds {
		return fmt.Sprintf("%s %s: %s -> %s (%.2fx)", r.Where, r.Metric, fmtNs(r.Old), fmtNs(r.New), r.Ratio)
	}
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%.2fx)", r.Where, r.Metric, r.Old, r.New, r.Ratio)
}

// check appends a regression when the metric moved the wrong way beyond
// the noise fraction. Metrics absent from either run (zero) are skipped:
// a measurement that was not taken cannot regress.
func check(regs []Regression, where, metric string, dir Direction, old, new float64, noise float64, ns bool) []Regression {
	if old <= 0 || new <= 0 {
		return regs
	}
	bad := false
	switch dir {
	case LowerIsBetter:
		bad = new > old*(1+noise)
	case HigherIsBetter:
		bad = new < old*(1-noise)
	}
	if !bad {
		return regs
	}
	return append(regs, Regression{
		Where: where, Metric: metric,
		Old: old, New: new, Ratio: new / old, Nanoseconds: ns,
	})
}

// Compare diffs two runs row by row (rows are matched by workload, load
// rows by workload+opClass+arrivals) and returns every metric that
// regressed beyond the relative noise threshold, sorted worst first
// within each kind. noise is a fraction: 0.25 tolerates a 25% slowdown
// before flagging. Rows present only in the new run are additions, not
// regressions; rows that vanished are reported with metric "missing".
func Compare(old, new *Run, noise float64) []Regression {
	var regs []Regression
	newRows := make(map[string]Row, len(new.Rows))
	for _, r := range new.Rows {
		newRows[r.Workload] = r
	}
	for _, o := range old.Rows {
		n, ok := newRows[o.Workload]
		if !ok {
			regs = append(regs, Regression{Where: o.Workload, Metric: "missing"})
			continue
		}
		w := o.Workload
		regs = check(regs, w, "preprocessNs", LowerIsBetter, float64(o.PreProcessNs), float64(n.PreProcessNs), noise, true)
		regs = check(regs, w, "analysisNs", LowerIsBetter, float64(o.AnalysisNs), float64(n.AnalysisNs), noise, true)
		regs = check(regs, w, "incrEditNs", LowerIsBetter, float64(o.IncrEditNs), float64(n.IncrEditNs), noise, true)
		regs = check(regs, w, "fullEditNs", LowerIsBetter, float64(o.FullEditNs), float64(n.FullEditNs), noise, true)
		regs = check(regs, w, "openColdNs", LowerIsBetter, float64(o.OpenColdNs), float64(n.OpenColdNs), noise, true)
		regs = check(regs, w, "openSharedNs", LowerIsBetter, float64(o.OpenSharedNs), float64(n.OpenSharedNs), noise, true)
		if o.OK && !n.OK {
			regs = append(regs, Regression{Where: w, Metric: "ok", Old: 1, New: 0})
		}
	}
	type loadKey struct {
		w, c, a  string
		replicas int
	}
	newLoad := make(map[loadKey]LoadRow, len(new.Load))
	for _, r := range new.Load {
		newLoad[loadKey{r.Workload, r.OpClass, r.Arrivals, r.Replicas}] = r
	}
	for _, o := range old.Load {
		n, ok := newLoad[loadKey{o.Workload, o.OpClass, o.Arrivals, o.Replicas}]
		w := fmt.Sprintf("%s/%s/%s", o.Workload, o.OpClass, o.Arrivals)
		if o.Replicas > 0 {
			w = fmt.Sprintf("%s/x%d", w, o.Replicas)
		}
		if !ok {
			regs = append(regs, Regression{Where: w, Metric: "missing"})
			continue
		}
		regs = check(regs, w, "p50Ns", LowerIsBetter, float64(o.P50Ns), float64(n.P50Ns), noise, true)
		regs = check(regs, w, "p99Ns", LowerIsBetter, float64(o.P99Ns), float64(n.P99Ns), noise, true)
		regs = check(regs, w, "p999Ns", LowerIsBetter, float64(o.P999Ns), float64(n.P999Ns), noise, true)
		regs = check(regs, w, "throughput", HigherIsBetter, o.Throughput, n.Throughput, noise, false)
		// Error-rate regressions use an absolute floor on top of the
		// relative threshold: a jump from 1 to 2 stray errors is noise, a
		// jump in the failure fraction is not.
		oldRate := errRate(o)
		newRate := errRate(n)
		if newRate > oldRate+0.01 && newRate > oldRate*(1+noise) {
			regs = append(regs, Regression{
				Where: w, Metric: "errorRate",
				Old: oldRate, New: newRate, Ratio: ratio(newRate, oldRate),
			})
		}
	}
	sort.SliceStable(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs
}

func errRate(r LoadRow) float64 {
	if r.Ops == 0 {
		return 0
	}
	var errs int64
	for _, n := range r.Errors {
		errs += n
	}
	return float64(errs) / float64(r.Ops)
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WriteComparison renders a comparison report; it returns the number of
// regressions so callers can exit non-zero.
func WriteComparison(w io.Writer, old, new *Run, noise float64) int {
	regs := Compare(old, new, noise)
	fmt.Fprintf(w, "comparing %s (%s) -> %s (%s), noise threshold %.0f%%\n",
		old.Label, old.Date, new.Label, new.Date, noise*100)
	if len(regs) == 0 {
		fmt.Fprintln(w, "no regressions beyond threshold")
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(w, "REGRESSION %s\n", r)
	}
	return len(regs)
}
