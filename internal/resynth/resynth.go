// Package resynth closes the analysis–redesign loop of Algorithm 3:
//
//	Synthesise initial area optimised combinational logic modules.
//	Until all paths are fast enough:
//	  - perform timing analysis to identify all paths that are too slow;
//	  - provide input data ready times and output required times for all
//	    modules traversed by paths that are too slow;
//	  - select one such module and speed up slow paths.
//
// The paper delegates the "speed up" step to the timing-optimisation work
// of Singh et al. [1]; this package substitutes the simplest member of that
// family — drive-strength (gate) sizing against the Algorithm 2 delay
// budgets — which exercises the same loop structure: analysis, constraint
// generation, module selection, modification, re-analysis.
package resynth

import (
	"context"
	"fmt"
	"strings"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/incremental"
	"hummingbird/internal/netlist"
)

// Change records one applied redesign step.
type Change struct {
	Inst     string
	FromCell string
	ToCell   string
	// Gain is the estimated arc-delay improvement that motivated the
	// change.
	Gain clock.Time
}

// Result summarises one Algorithm 3 run.
type Result struct {
	// OK reports whether the loop reached timing closure.
	OK bool
	// Iterations is the number of analysis→redesign round trips.
	Iterations int
	// Changes lists the applied gate resizings in order.
	Changes []Change
	// AreaBefore/AreaAfter are the summed cell areas (the cost of
	// closure; the initial design is area-optimised, §1).
	AreaBefore, AreaAfter int64
	// WorstSlack is the final worst terminal slack.
	WorstSlack clock.Time
}

// upsize returns the next drive strength of a cell name using the _X<n>
// convention, or "" when the cell is already at the largest available
// drive.
func upsize(lib *celllib.Library, name string) string {
	i := strings.LastIndex(name, "_X")
	if i < 0 {
		return ""
	}
	base := name[:i]
	var cur int
	if _, err := fmt.Sscanf(name[i:], "_X%d", &cur); err != nil {
		return ""
	}
	for _, next := range []int{cur * 2, cur * 4} {
		cand := fmt.Sprintf("%s_X%d", base, next)
		if lib.Cell(cand) != nil {
			return cand
		}
	}
	return ""
}

// designArea sums the leaf cell areas of a resolved design.
func designArea(lib *celllib.Library, d *netlist.Design) int64 {
	var area int64
	for _, inst := range d.Instances {
		if c := lib.Cell(inst.Ref); c != nil {
			area += c.Area
		}
	}
	return area
}

// Run drives the Algorithm 3 loop on the design, mutating it in place
// (instance references are retargeted to larger drives). maxIter bounds
// the number of redesign steps.
//
// The loop runs through the incremental engine: the design is elaborated
// once, and each drive resize re-analyses only the clusters whose arc
// delays (own arcs plus arcs driving the resized gate's input nets)
// actually changed — the paper's Algorithm 3 "re-perform timing analysis"
// step at incremental cost.
func Run(lib *celllib.Library, design *netlist.Design, opts core.Options, maxIter int) (*Result, error) {
	return RunContext(nil, lib, design, opts, maxIter)
}

// RunContext is Run with cancellation: the context is threaded into every
// analysis and constraint generation, and also checked at the top of each
// redesign iteration, so a deadline interrupts the loop between steps as
// well as inside one. A nil ctx is accepted and runs to completion.
func RunContext(ctx context.Context, lib *celllib.Library, design *netlist.Design, opts core.Options, maxIter int) (*Result, error) {
	res := &Result{AreaBefore: designArea(lib, design)}
	var eng *incremental.Engine
	defer func() {
		d := design
		if eng != nil {
			d = eng.Design()
		}
		res.AreaAfter = designArea(lib, d)
	}()

	eng, err := incremental.OpenContext(ctx, lib, design, opts)
	if err != nil {
		return nil, err
	}
	for iter := 0; ; iter++ {
		if ctx != nil && ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		rep := eng.Report()
		res.Iterations = iter + 1
		res.WorstSlack = rep.WorstSlack()
		if rep.OK {
			res.OK = true
			return res, nil
		}
		if iter >= maxIter {
			return res, nil
		}
		// Constraint generation for the modules traversed by slow paths
		// (Algorithm 2); the budgets steer candidate selection.
		constraints, err := eng.ConstraintsContext(ctx)
		if err != nil {
			return nil, err
		}
		change, ok := pickChange(eng.Analyzer(), rep, constraints)
		if !ok {
			return res, nil // no move available: report failure honestly
		}
		if _, err := eng.ApplyContext(ctx, incremental.Edit{Op: incremental.Resize, Inst: change.Inst, To: change.ToCell}); err != nil {
			return nil, err
		}
		res.Changes = append(res.Changes, change)
	}
}

// pickChange selects the most promising gate on a slow path: the instance
// whose upsizing buys the largest arc-delay reduction on an arc that
// violates its Algorithm 2 budget.
func pickChange(a *core.Analyzer, rep *core.Report, c *core.Constraints) (Change, bool) {
	nw := a.CD.Network
	lib := a.Lib
	seen := map[string]bool{}
	best := Change{}
	var bestGain clock.Time = 0

	consider := func(instName string) {
		if seen[instName] {
			return
		}
		seen[instName] = true
		var inst *netlist.Instance
		for i := range a.Design.Instances {
			if a.Design.Instances[i].Name == instName {
				inst = &a.Design.Instances[i]
			}
		}
		if inst == nil {
			return
		}
		next := upsize(lib, inst.Ref)
		if next == "" {
			return
		}
		curCell, nextCell := lib.Cell(inst.Ref), lib.Cell(next)
		// Estimated gain: worst arc delay at the present load, minus the
		// upsized cell's delay at the same load, minus the knock-on cost
		// of the increased input capacitance on the driving gates
		// (approximated with the average slope of the library's X1
		// drivers, ~10 ps/fF).
		var gain clock.Time
		for ai := range curCell.Arcs {
			arc := &curCell.Arcs[ai]
			outNet, ok := inst.Conns[arc.To]
			if !ok {
				continue
			}
			load := nw.Calc.NetLoad(outNet)
			var narc *celllib.Arc
			for ni := range nextCell.Arcs {
				if nextCell.Arcs[ni].From == arc.From && nextCell.Arcs[ni].To == arc.To {
					narc = &nextCell.Arcs[ni]
				}
			}
			if narc == nil {
				continue
			}
			d0 := arc.Delay.MaxRise.Eval(load)
			if f := arc.Delay.MaxFall.Eval(load); f > d0 {
				d0 = f
			}
			d1 := narc.Delay.MaxRise.Eval(load)
			if f := narc.Delay.MaxFall.Eval(load); f > d1 {
				d1 = f
			}
			if g := d0 - d1; g > gain {
				gain = g
			}
		}
		var capPenalty clock.Time
		for i := range curCell.Pins {
			p := &curCell.Pins[i]
			if p.Dir != celllib.In {
				continue
			}
			if np := nextCell.Pin(p.Name); np != nil && np.C > p.C {
				capPenalty += clock.Time(int64(np.C-p.C) * 10)
			}
		}
		gain -= capPenalty
		if gain > bestGain {
			bestGain = gain
			best = Change{Inst: instName, FromCell: inst.Ref, ToCell: next, Gain: gain}
		}
	}

	// Candidates: every instance on a traced slow path, worst paths first.
	paths := append([]core.SlowPath(nil), rep.SlowPaths...)
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if paths[j].Slack < paths[i].Slack {
				paths[i], paths[j] = paths[j], paths[i]
			}
		}
	}
	for _, p := range paths {
		for k, instName := range p.Insts {
			// Only bother with arcs that actually violate their budget.
			if k+1 < len(p.Nets) {
				budget := c.Allowed(p.Nets[k], p.Nets[k+1])
				if budget == clock.Inf {
					continue
				}
			}
			consider(instName)
		}
	}
	if bestGain <= 0 {
		return Change{}, false
	}
	return best, true
}
