package resynth

import (
	"fmt"
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
)

var lib = celllib.Default()

func TestUpsize(t *testing.T) {
	if got := upsize(lib, "INV_X1"); got != "INV_X2" {
		t.Fatalf("upsize INV_X1 = %q", got)
	}
	if got := upsize(lib, "INV_X2"); got != "INV_X4" {
		t.Fatalf("upsize INV_X2 = %q", got)
	}
	if got := upsize(lib, "INV_X4"); got != "" {
		t.Fatalf("upsize INV_X4 = %q", got)
	}
	if got := upsize(lib, "DLATCH_X1"); got != "DLATCH_X2" {
		t.Fatalf("upsize DLATCH_X1 = %q", got)
	}
	if got := upsize(lib, "NOSUFFIX"); got != "" {
		t.Fatalf("upsize NOSUFFIX = %q", got)
	}
}

// slowChain builds an FF-to-FF design whose logic chain just misses the
// clock period at drive X1 but fits once key gates are upsized: n heavily
// loaded inverters between two flip-flops. The period is in picoseconds.
func slowChain(t *testing.T, n, periodPs int) *netlist.Design {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, `
design chain
clock phi period %dps rise 0 fall %dps
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=c0
`, periodPs, periodPs*2/5)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "inst inv%d INV_X1 A=c%d Y=c%d\n", i, i, i+1)
		// Fanout dummies load every stage.
		for d := 0; d < 4; d++ {
			fmt.Fprintf(&sb, "inst dum%d_%d INV_X1 A=c%d Y=dd%d_%d\n", i, d, i, i, d)
		}
	}
	fmt.Fprintf(&sb, "inst f2 DFF_X1 D=c%d CK=phi Q=qo\n", n)
	fmt.Fprintf(&sb, "inst go BUF_X1 A=qo Y=OUT\nend\n")
	d, err := netlist.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(lib); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAlgorithm3ReachesClosure(t *testing.T) {
	// Find a period where the X1 design is slow (so the loop has work).
	var design *netlist.Design
	period := 0
	for p := 4500; p >= 2000; p -= 250 {
		d := slowChain(t, 8, p)
		a, err := core.Load(lib, d, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.IdentifySlowPaths()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK && rep.WorstSlack() > -3000 {
			design, period = slowChain(t, 8, p), p
			break
		}
	}
	if design == nil {
		t.Fatal("could not construct a marginally slow chain")
	}
	res, err := Run(lib, design, core.DefaultOptions(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("no closure at period %dps: worst %v after %d iterations (%d changes)",
			period, res.WorstSlack, res.Iterations, len(res.Changes))
	}
	if len(res.Changes) == 0 {
		t.Fatal("closure without any redesign?")
	}
	if res.AreaAfter <= res.AreaBefore {
		t.Fatalf("speed-up was free: area %d -> %d", res.AreaBefore, res.AreaAfter)
	}
	// Verify the mutated design independently.
	a, err := core.Load(lib, design, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatal("final design fails independent re-analysis")
	}
	// All changes target real instances and increase drive.
	for _, ch := range res.Changes {
		if ch.Gain <= 0 {
			t.Fatalf("non-positive gain change: %+v", ch)
		}
		if upsize(lib, ch.FromCell) != ch.ToCell {
			t.Fatalf("change is not a single-step upsize: %+v", ch)
		}
	}
}

func TestAlgorithm3AlreadyFast(t *testing.T) {
	d := slowChain(t, 2, 50000)
	res, err := Run(lib, d, core.DefaultOptions(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Iterations != 1 || len(res.Changes) != 0 {
		t.Fatalf("fast design mishandled: %+v", res)
	}
	if res.AreaAfter != res.AreaBefore {
		t.Fatal("area changed without changes")
	}
}

func TestAlgorithm3GivesUpHonestly(t *testing.T) {
	// A 1ns period is unreachable no matter the sizing.
	d := slowChain(t, 8, 1000)
	res, err := Run(lib, d, core.DefaultOptions(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("impossible target reported closed")
	}
	if res.WorstSlack >= 0 {
		t.Fatalf("worst slack %v on failed closure", res.WorstSlack)
	}
}

func TestDesignAreaAccounting(t *testing.T) {
	d := slowChain(t, 2, 50000)
	a0 := designArea(lib, d)
	if a0 <= 0 {
		t.Fatal("zero area")
	}
	// Upsizing one instance increases total area by the cell delta.
	for i := range d.Instances {
		if d.Instances[i].Name == "inv0" {
			d.Instances[i].Ref = "INV_X4"
		}
	}
	a1 := designArea(lib, d)
	want := lib.Cell("INV_X4").Area - lib.Cell("INV_X1").Area
	if a1-a0 != want {
		t.Fatalf("area delta = %d, want %d", a1-a0, want)
	}
}
