package delaycalc

import (
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/netlist"
)

var lib = celllib.Default()

func parse(t *testing.T, text string) *netlist.Design {
	t.Helper()
	d, err := netlist.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(lib); err != nil {
		t.Fatal(err)
	}
	return d
}

const chainText = `
design chain
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst g1 INV_X1 A=IN Y=n1
inst g2 INV_X1 A=n1 Y=n2
inst g3 NAND2_X1 A=n2 B=n1 Y=OUT
end
`

func TestNetLoads(t *testing.T) {
	d := parse(t, chainText)
	c, err := New(lib, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// n1 feeds g2.A (4 fF) and g3.B (4 fF) plus wire 2 + 2*3 = 8.
	if got := c.NetLoad("n1"); got != 16 {
		t.Fatalf("load(n1) = %d, want 16", got)
	}
	// n2 feeds g3.A only: 4 + 2 + 3 = 9.
	if got := c.NetLoad("n2"); got != 9 {
		t.Fatalf("load(n2) = %d, want 9", got)
	}
	// OUT is a primary output: default port load 10 + wire 2+3 = 15.
	if got := c.NetLoad("OUT"); got != 15 {
		t.Fatalf("load(OUT) = %d, want 15", got)
	}
	// Undriven unknown nets report zero.
	if got := c.NetLoad("ghost"); got != 0 {
		t.Fatalf("load(ghost) = %d", got)
	}
}

func TestArcDelaysMatchLinearModel(t *testing.T) {
	d := parse(t, chainText)
	c, err := New(lib, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inst := &d.Instances[0] // g1 INV_X1 driving n1 (load 16)
	cell := lib.Cell("INV_X1")
	arc := &cell.Arcs[0]
	got := c.ArcDelays(inst, arc)
	wantRise := arc.Delay.MaxRise.Eval(16)
	if got.MaxRise != wantRise {
		t.Fatalf("MaxRise = %v, want %v", got.MaxRise, wantRise)
	}
	if got.MinRise > got.MaxRise || got.MinFall > got.MaxFall {
		t.Fatal("min exceeds max")
	}
}

func TestHigherFanoutSlowsGate(t *testing.T) {
	d1 := parse(t, chainText)
	c1, _ := New(lib, d1, DefaultOptions())
	// Same structure, but n1 fans out to two more inverters.
	d2 := parse(t, `
design chain2
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst g1 INV_X1 A=IN Y=n1
inst g2 INV_X1 A=n1 Y=n2
inst x1 INV_X1 A=n1 Y=u1
inst x2 INV_X1 A=n1 Y=u2
inst g3 NAND2_X1 A=n2 B=n1 Y=OUT
end
`)
	c2, _ := New(lib, d2, DefaultOptions())
	cell := lib.Cell("INV_X1")
	a := c1.ArcDelays(&d1.Instances[0], &cell.Arcs[0])
	b := c2.ArcDelays(&d2.Instances[0], &cell.Arcs[0])
	if b.MaxRise <= a.MaxRise {
		t.Fatalf("fanout did not slow gate: %v vs %v", b.MaxRise, a.MaxRise)
	}
}

func TestAdjust(t *testing.T) {
	d := parse(t, chainText)
	c, _ := New(lib, d, DefaultOptions())
	inst := &d.Instances[0]
	cell := lib.Cell("INV_X1")
	before := c.ArcDelays(inst, &cell.Arcs[0])
	c.Adjust("g1", 500)
	after := c.ArcDelays(inst, &cell.Arcs[0])
	if after.MaxRise != before.MaxRise+500 || after.MinFall != before.MinFall+500 {
		t.Fatalf("adjust not applied: %+v vs %+v", after, before)
	}
	if c.Adjustment("g1") != 500 {
		t.Fatal("Adjustment readback")
	}
	// Large negative adjustments floor min at zero and keep max >= min.
	c.Adjust("g1", -10000)
	neg := c.ArcDelays(inst, &cell.Arcs[0])
	if neg.MinRise != 0 || neg.MinFall != 0 {
		t.Fatalf("min not floored: %+v", neg)
	}
	if neg.MaxRise < neg.MinRise {
		t.Fatalf("max below min: %+v", neg)
	}
	// Other instances untouched.
	if c.Adjustment("g2") != 0 {
		t.Fatal("adjustment leaked")
	}
}

func TestNewRejectsUnresolved(t *testing.T) {
	d := netlist.New("bad")
	d.AddInstance(netlist.Instance{Name: "u", Ref: "MYSTERY", Conns: map[string]string{}})
	if _, err := New(lib, d, DefaultOptions()); err == nil {
		t.Fatal("unresolved reference accepted")
	}
}

const hierText = `
design hier
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
module COMB
  input A B
  output Y Z
  inst i1 INV_X1 A=A Y=t1
  inst i2 NAND2_X1 A=t1 B=B Y=Y
  inst i3 INV_X1 A=B Y=Z
endmodule
inst u1 COMB A=IN B=IN Y=OUT Z=z
end
`

func TestRollUpModules(t *testing.T) {
	d := parse(t, hierText)
	ext, err := RollUpModules(lib, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sc := ext.Cell("COMB")
	if sc == nil {
		t.Fatal("super-cell missing")
	}
	if sc.Kind != celllib.Comb || sc.IsSync() {
		t.Fatal("super-cell misclassified")
	}
	// Arcs: A->Y (through i1,i2); B->Y (through i2); B->Z (through i3).
	// No A->Z path.
	type key struct{ from, to string }
	arcs := map[key]*celllib.Arc{}
	for i := range sc.Arcs {
		arcs[key{sc.Arcs[i].From, sc.Arcs[i].To}] = &sc.Arcs[i]
	}
	if len(arcs) != 3 {
		t.Fatalf("arc set = %v", arcs)
	}
	if _, bad := arcs[key{"A", "Z"}]; bad {
		t.Fatal("phantom A->Z arc")
	}
	ay, by := arcs[key{"A", "Y"}], arcs[key{"B", "Y"}]
	if ay == nil || by == nil {
		t.Fatal("missing arcs")
	}
	// A->Y traverses two gates, B->Y one: longer delay.
	if ay.Delay.MaxRise.Intrinsic <= by.Delay.MaxRise.Intrinsic {
		t.Fatalf("2-gate path (%v) not slower than 1-gate (%v)",
			ay.Delay.MaxRise.Intrinsic, by.Delay.MaxRise.Intrinsic)
	}
	// Min path <= max path.
	if ay.Delay.MinRise.Intrinsic > ay.Delay.MaxRise.Intrinsic {
		t.Fatal("min above max in roll-up")
	}
	// Super-cell area = sum of member areas.
	want := 2*lib.Cell("INV_X1").Area + lib.Cell("NAND2_X1").Area
	if sc.Area != want {
		t.Fatalf("area = %d, want %d", sc.Area, want)
	}
	// Extended library still holds the base cells.
	if ext.Cell("INV_X1") == nil {
		t.Fatal("base cells dropped")
	}
	// The hierarchical design is now resolvable.
	if _, err := New(ext, d, DefaultOptions()); err != nil {
		t.Fatalf("hier design unresolved after roll-up: %v", err)
	}
}

func TestRollUpRejectsCycle(t *testing.T) {
	d := netlist.New("top")
	d.AddClock(clock.Signal{Name: "phi", Period: 100, RiseAt: 0, FallAt: 40})
	m := netlist.New("LOOP")
	m.AddPort(netlist.Port{Name: "A", Dir: netlist.Input})
	m.AddPort(netlist.Port{Name: "Y", Dir: netlist.Output})
	m.AddInstance(netlist.Instance{Name: "i1", Ref: "NAND2_X1", Conns: map[string]string{"A": "A", "B": "fb", "Y": "fb"}})
	m.AddInstance(netlist.Instance{Name: "i2", Ref: "INV_X1", Conns: map[string]string{"A": "fb", "Y": "Y"}})
	d.AddModule(m)
	_, err := RollUpModules(lib, d, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestDelaysMaxMin(t *testing.T) {
	d := Delays{MaxRise: 10, MaxFall: 20, MinRise: 3, MinFall: 2}
	if d.Max() != 20 || d.Min() != 2 {
		t.Fatalf("Max/Min = %v/%v", d.Max(), d.Min())
	}
	d2 := Delays{MaxRise: 30, MaxFall: 20, MinRise: 3, MinFall: 5}
	if d2.Max() != 30 || d2.Min() != 3 {
		t.Fatalf("Max/Min = %v/%v", d2.Max(), d2.Min())
	}
}
