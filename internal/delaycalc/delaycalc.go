// Package delaycalc performs component propagation-delay estimation (§1):
// it evaluates the library's empirical load-dependent delay expressions
// against the actual connected loads of a design, and rolls hierarchical
// combinational modules up into single super-cells whose pin-to-pin delays
// are the combined internal path delays ("For combinational logic modules
// the delays have been combined to generate estimates of the module
// propagation delays", §8).
//
// The paper separates component delay estimation from system timing
// analysis so that different estimation methods can be combined; this
// package is the single place the rest of the analyzer obtains component
// delays from, so swapping the estimation model never touches the analysis
// algorithms.
package delaycalc

import (
	"fmt"
	"time"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/graph"
	"hummingbird/internal/netlist"
	"hummingbird/internal/telemetry"
)

// mEvals counts delay-expression evaluations (one per arc per call),
// the unit the paper's estimation cost scales with. tRefreshLoads times
// the incremental engine's post-resize load recomputations.
var (
	mEvals        = telemetry.NewCounter("delaycalc.evaluations")
	tRefreshLoads = telemetry.NewTimer("delaycalc.refresh_loads")
)

// Delays is one timing arc's evaluated propagation delays at its actual
// load: the worst (max) and best (min) delay for each output transition
// direction.
type Delays struct {
	MaxRise, MaxFall clock.Time
	MinRise, MinFall clock.Time
}

// Max returns the worst delay over both transitions (used where rise/fall
// are not tracked separately).
func (d Delays) Max() clock.Time {
	if d.MaxRise > d.MaxFall {
		return d.MaxRise
	}
	return d.MaxFall
}

// Min returns the best delay over both transitions.
func (d Delays) Min() clock.Time {
	if d.MinRise < d.MinFall {
		return d.MinRise
	}
	return d.MinFall
}

// Options tunes the estimation model.
type Options struct {
	// WireCapBase is added to every driven net's load (routing stub).
	WireCapBase celllib.Cap
	// WireCapPerFanout is added per sink pin on the net.
	WireCapPerFanout celllib.Cap
	// DefaultPortLoad is the load assumed on nets that leave the design
	// (primary outputs, module boundary pins during roll-up).
	DefaultPortLoad celllib.Cap
}

// DefaultOptions returns the wire-load model used by the benchmarks.
func DefaultOptions() Options {
	return Options{WireCapBase: 2, WireCapPerFanout: 3, DefaultPortLoad: 10}
}

// Calc evaluates arc delays for one design. The design must be *resolved*:
// every instance reference must name a cell in the (possibly extended)
// library — hierarchical designs are first rolled up with RollUpModules or
// flattened with netlist.Flatten.
type Calc struct {
	lib    *celllib.Library
	design *netlist.Design
	opts   Options
	loads  map[string]celllib.Cap
	// adjust holds per-instance additive delay adjustments (interactive
	// mode, §8: "Adjustments may also be made to component delays").
	adjust map[string]clock.Time
}

// New builds a calculator, computing every net's capacitive load.
func New(lib *celllib.Library, design *netlist.Design, opts Options) (*Calc, error) {
	c := &Calc{lib: lib, design: design, opts: opts,
		loads:  make(map[string]celllib.Cap),
		adjust: make(map[string]clock.Time)}
	sinkCount := map[string]int{}
	pinCap := map[string]celllib.Cap{}
	for _, inst := range design.Instances {
		cell := lib.Cell(inst.Ref)
		if cell == nil {
			return nil, fmt.Errorf("delaycalc: instance %s references unresolved component %q", inst.Name, inst.Ref)
		}
		for pin, net := range inst.Conns {
			p := cell.Pin(pin)
			if p == nil {
				return nil, fmt.Errorf("delaycalc: instance %s (%s): unknown pin %q", inst.Name, inst.Ref, pin)
			}
			if p.Dir == celllib.In {
				sinkCount[net]++
				pinCap[net] += p.C
			}
		}
	}
	for _, p := range design.Ports {
		if p.Dir == netlist.Output {
			sinkCount[p.Name]++
			pinCap[p.Name] += opts.DefaultPortLoad
		}
	}
	for _, net := range design.NetNames() {
		load := pinCap[net]
		if n := sinkCount[net]; n > 0 {
			load += c.opts.WireCapBase + celllib.Cap(n)*c.opts.WireCapPerFanout
		}
		c.loads[net] = load
	}
	return c, nil
}

// RefreshLoads recomputes the capacitive loads of the named nets from the
// design's current instances. The incremental engine calls this after a
// cell resize: the resized instance's input pin capacitances change the
// loads — and hence the arc delays — of the nets driving it.
func (c *Calc) RefreshLoads(nets []string) {
	if len(nets) == 0 {
		return
	}
	if telemetry.Enabled() {
		defer func(t0 time.Time) { tRefreshLoads.Observe(time.Since(t0)) }(time.Now())
	}
	want := make(map[string]bool, len(nets))
	for _, n := range nets {
		want[n] = true
	}
	sinkCount := map[string]int{}
	pinCap := map[string]celllib.Cap{}
	for _, inst := range c.design.Instances {
		cell := c.lib.Cell(inst.Ref)
		if cell == nil {
			continue
		}
		for pin, net := range inst.Conns {
			if !want[net] {
				continue
			}
			if p := cell.Pin(pin); p != nil && p.Dir == celllib.In {
				sinkCount[net]++
				pinCap[net] += p.C
			}
		}
	}
	for _, p := range c.design.Ports {
		if p.Dir == netlist.Output && want[p.Name] {
			sinkCount[p.Name]++
			pinCap[p.Name] += c.opts.DefaultPortLoad
		}
	}
	for _, net := range nets {
		load := pinCap[net]
		if n := sinkCount[net]; n > 0 {
			load += c.opts.WireCapBase + celllib.Cap(n)*c.opts.WireCapPerFanout
		}
		c.loads[net] = load
	}
}

// NetLoad returns the total capacitive load on the named net.
func (c *Calc) NetLoad(net string) celllib.Cap { return c.loads[net] }

// Adjust adds delta picoseconds to every max/min arc delay of the named
// instance (negative deltas speed the instance up; min delays are floored
// at zero). Supports the interactive what-if mode of §8.
func (c *Calc) Adjust(instName string, delta clock.Time) {
	c.adjust[instName] += delta
}

// Adjustment returns the current additive adjustment of an instance.
func (c *Calc) Adjustment(instName string) clock.Time { return c.adjust[instName] }

// ArcDelays evaluates one arc of one instance at its connected load.
func (c *Calc) ArcDelays(inst *netlist.Instance, arc *celllib.Arc) Delays {
	mEvals.Inc()
	load := c.opts.DefaultPortLoad
	if net, ok := inst.Conns[arc.To]; ok {
		load = c.loads[net]
	}
	adj := c.adjust[inst.Name]
	d := Delays{
		MaxRise: arc.Delay.MaxRise.Eval(load) + adj,
		MaxFall: arc.Delay.MaxFall.Eval(load) + adj,
		MinRise: arc.Delay.MinRise.Eval(load) + adj,
		MinFall: arc.Delay.MinFall.Eval(load) + adj,
	}
	if d.MinRise < 0 {
		d.MinRise = 0
	}
	if d.MinFall < 0 {
		d.MinFall = 0
	}
	if d.MaxRise < d.MinRise {
		d.MaxRise = d.MinRise
	}
	if d.MaxFall < d.MinFall {
		d.MaxFall = d.MinFall
	}
	return d
}

// RollUpModules converts every module of a hierarchical design into a
// synthetic combinational super-cell whose input→output arcs carry the
// module's internal worst (and best) path delays, and returns an extended
// library containing the originals plus the super-cells. Instance
// references are left untouched: a reference to module "FOO" resolves to
// the super-cell named "FOO" in the returned library.
func RollUpModules(lib *celllib.Library, design *netlist.Design, opts Options) (*celllib.Library, error) {
	ext := celllib.NewLibrary(lib.Name + "+modules")
	for _, name := range lib.Names() {
		if err := ext.Add(lib.Cell(name)); err != nil {
			return nil, err
		}
	}
	for name, m := range design.Modules {
		cell, err := rollUp(lib, m, opts)
		if err != nil {
			return nil, fmt.Errorf("delaycalc: module %s: %w", name, err)
		}
		if err := ext.Add(cell); err != nil {
			return nil, fmt.Errorf("delaycalc: module %s: %w", name, err)
		}
	}
	return ext, nil
}

// rollUp computes the super-cell for one combinational module. Internal
// delays are evaluated at the module's internal loads; boundary outputs see
// DefaultPortLoad. The super-cell's arcs are constant (zero-slope): the
// paper's module delay estimates are likewise single combined numbers.
// Mixed inversions inside a module make the arc sense NonUnate (safe).
func rollUp(lib *celllib.Library, m *netlist.Design, opts Options) (*celllib.Cell, error) {
	calc, err := New(lib, m, opts)
	if err != nil {
		return nil, err
	}
	// Net-level DAG: node per net; arcs per instance input→output.
	nets := m.NetNames()
	id := make(map[string]int, len(nets))
	for i, n := range nets {
		id[n] = i
	}
	g := graph.New(len(nets))
	type edge struct {
		from, to int
		d        Delays
		sense    celllib.Sense
	}
	var edges []edge
	for i := range m.Instances {
		inst := &m.Instances[i]
		cell := lib.Cell(inst.Ref)
		for ai := range cell.Arcs {
			arc := &cell.Arcs[ai]
			fromNet, ok1 := inst.Conns[arc.From]
			toNet, ok2 := inst.Conns[arc.To]
			if !ok1 || !ok2 {
				continue
			}
			if err := g.AddEdge(id[fromNet], id[toNet]); err != nil {
				return nil, fmt.Errorf("module %s: arc of instance %s: %w", m.Name, inst.Name, err)
			}
			edges = append(edges, edge{id[fromNet], id[toNet], calc.ArcDelays(inst, arc), arc.Sense})
		}
	}
	order, err := g.TopoSort()
	if err != nil {
		cyc := g.FindCycle()
		names := make([]string, len(cyc))
		for i, v := range cyc {
			names[i] = nets[v]
		}
		return nil, fmt.Errorf("combinational cycle through nets %v", names)
	}
	adj := make(map[int][]edge)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}

	const unset = clock.Time(-1)
	var pins []celllib.Pin
	var arcs []celllib.Arc
	for _, p := range m.Ports {
		if p.Dir == netlist.Input {
			pins = append(pins, celllib.Pin{Name: p.Name, Dir: celllib.In, Role: celllib.Data, C: opts.DefaultPortLoad})
		} else {
			pins = append(pins, celllib.Pin{Name: p.Name, Dir: celllib.Out})
		}
	}
	for _, in := range m.Ports {
		if in.Dir != netlist.Input {
			continue
		}
		// Longest/shortest path DP from this input, rise/fall tracked via
		// Delays pairs; senses are collapsed to NonUnate so rise and fall
		// both take the max across senses (conservative).
		maxd := make([]clock.Time, len(nets))
		mind := make([]clock.Time, len(nets))
		for i := range maxd {
			maxd[i], mind[i] = unset, unset
		}
		src := id[in.Name]
		maxd[src], mind[src] = 0, 0
		for _, u := range order {
			if maxd[u] == unset {
				continue
			}
			for _, e := range adj[u] {
				if t := maxd[u] + e.d.Max(); maxd[e.to] == unset || t > maxd[e.to] {
					maxd[e.to] = t
				}
				if t := mind[u] + e.d.Min(); mind[e.to] == unset || t < mind[e.to] {
					mind[e.to] = t
				}
			}
		}
		for _, out := range m.Ports {
			if out.Dir != netlist.Output {
				continue
			}
			dst := id[out.Name]
			if maxd[dst] == unset {
				continue // no path input→output
			}
			arcs = append(arcs, celllib.Arc{
				From: in.Name, To: out.Name, Sense: celllib.NonUnate,
				Delay: celllib.ArcDelay{
					MaxRise: celllib.Linear{Intrinsic: maxd[dst]},
					MaxFall: celllib.Linear{Intrinsic: maxd[dst]},
					MinRise: celllib.Linear{Intrinsic: mind[dst]},
					MinFall: celllib.Linear{Intrinsic: mind[dst]},
				},
			})
		}
	}
	var area int64
	for _, inst := range m.Instances {
		area += lib.Cell(inst.Ref).Area
	}
	return &celllib.Cell{
		Name: m.Name, Kind: celllib.Comb,
		Function: fmt.Sprintf("module %s (%d cells)", m.Name, len(m.Instances)),
		Area:     area, Drive: 1, Pins: pins, Arcs: arcs,
	}, nil
}
