package report

import (
	"encoding/json"
	"io"

	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/telemetry"
)

// JSONResult is the machine-readable analysis export: verdict, per-net
// slacks, per-endpoint slacks, traced paths and the pass plan. Times are
// integer picoseconds; infinite (unconstrained) slacks are omitted.
type JSONResult struct {
	Design    string           `json:"design"`
	OK        bool             `json:"ok"`
	WorstPs   int64            `json:"worstPs"`
	Cells     int              `json:"cells"`
	Nets      int              `json:"nets"`
	Elements  int              `json:"elements"`
	Clusters  int              `json:"clusters"`
	Passes    int              `json:"passes"`
	Sweeps    JSONSweeps       `json:"sweeps"`
	NetSlacks map[string]int64 `json:"netSlacksPs"`
	Endpoints []JSONEndpoint   `json:"endpoints"`
	SlowPaths []JSONPath       `json:"slowPaths,omitempty"`
	PlanByID  []JSONPlan       `json:"plan"`
	// Convergence is the fixed-point trajectory, one event per sweep.
	// Present only when the analysis ran with a convergence tracer.
	Convergence []telemetry.SweepEvent `json:"convergence,omitempty"`
}

// JSONSweeps records the Algorithm 1 iteration counts.
type JSONSweeps struct {
	Forward  int `json:"forward"`
	Backward int `json:"backward"`
}

// JSONEndpoint is one synchronising-element terminal and its slack.
type JSONEndpoint struct {
	Element string `json:"element"`
	Kind    string `json:"terminal"` // "capture" or "launch"
	SlackPs int64  `json:"slackPs"`
}

// JSONPath is one traced path.
type JSONPath struct {
	From    string   `json:"from"`
	To      string   `json:"to"`
	SlackPs int64    `json:"slackPs"`
	DelayPs int64    `json:"delayPs"`
	Cluster int      `json:"cluster"`
	Pass    int      `json:"pass"`
	Nets    []string `json:"nets"`
	Insts   []string `json:"insts"`
}

// JSONPlan is one cluster's break-open plan.
type JSONPlan struct {
	Cluster  int     `json:"cluster"`
	NetCount int     `json:"nets"`
	Passes   []int64 `json:"breaksPs"`
	Greedy   bool    `json:"greedy,omitempty"`
}

// BuildJSON assembles the export structure.
func BuildJSON(a *core.Analyzer, rep *core.Report) *JSONResult {
	st := a.Design.Stats(a.Lib)
	out := &JSONResult{
		Design: a.Design.Name, OK: rep.OK, WorstPs: int64(rep.WorstSlack()),
		Cells: st.Cells, Nets: st.Nets,
		Elements: len(a.CD.Elems), Clusters: len(a.CD.Clusters),
		Passes:      a.CD.TotalPasses(),
		Sweeps:      JSONSweeps{Forward: rep.ForwardSweeps, Backward: rep.BackwardSweeps},
		NetSlacks:   map[string]int64{},
		Convergence: rep.Trajectory,
	}
	for n, s := range rep.Result.NetSlack {
		if s != clock.Inf {
			out.NetSlacks[a.CD.Nets[n]] = int64(s)
		}
	}
	for ei, e := range a.CD.Elems {
		if s := rep.Result.InSlack[ei]; s != clock.Inf {
			out.Endpoints = append(out.Endpoints, JSONEndpoint{Element: e.Name(), Kind: "capture", SlackPs: int64(s)})
		}
		if s := rep.Result.OutSlack[ei]; s != clock.Inf {
			out.Endpoints = append(out.Endpoints, JSONEndpoint{Element: e.Name(), Kind: "launch", SlackPs: int64(s)})
		}
	}
	for _, p := range rep.SlowPaths {
		jp := JSONPath{
			From: a.CD.Elems[p.FromElem].Name(), To: a.CD.Elems[p.ToElem].Name(),
			SlackPs: int64(p.Slack), DelayPs: int64(p.Delay),
			Cluster: p.Cluster, Pass: p.Pass, Insts: p.Insts,
		}
		for _, n := range p.Nets {
			jp.Nets = append(jp.Nets, a.CD.Nets[n])
		}
		out.SlowPaths = append(out.SlowPaths, jp)
	}
	for _, cl := range a.CD.Clusters {
		jp := JSONPlan{Cluster: cl.ID, NetCount: len(cl.Nets), Greedy: !cl.Plan.Exhaustive}
		for _, b := range cl.Plan.Breaks {
			jp.Passes = append(jp.Passes, int64(b))
		}
		out.PlanByID = append(out.PlanByID, jp)
	}
	return out
}

// WriteJSON serialises the analysis result as indented JSON.
func WriteJSON(w io.Writer, a *core.Analyzer, rep *core.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSON(a, rep))
}
