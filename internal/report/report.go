// Package report renders the analyzer's results as the textual reports the
// Hummingbird program produced: run-time tables in the style of Table 1,
// slack summaries, slow-path listings, pass plans and constraint dumps.
package report

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
	"hummingbird/internal/sta"
)

// Row is one design's entry in the Table-1-style run-time table.
type Row struct {
	Name    string
	Cells   int
	Nets    int
	Latches int
	// Clusters and Passes summarise the §7 pre-processing outcome.
	Clusters, Passes int
	// PreProcess covers elaboration: delay calculation, cluster
	// generation and the break-open algorithm ("Pre-processing times
	// include the times taken for generating combinational logic clusters
	// and for performing the algorithm described in Section 7").
	PreProcess time.Duration
	// Analysis is the Algorithm 1 run time.
	Analysis time.Duration
	// Sweeps records forward+backward complete-transfer cycles.
	Sweeps int
	// Recomputes counts cluster analyses during the run (from the
	// telemetry snapshot; zero when telemetry was disabled).
	Recomputes int64
	// DelayEvals counts delay-expression evaluations (likewise).
	DelayEvals int64
	// IncrEdit and FullEdit are the re-analysis times after a single-gate
	// delay edit: through the incremental engine (dirty clusters only) and
	// from scratch (full elaboration + Algorithm 1). Zero when the
	// measurement was not taken.
	IncrEdit, FullEdit time.Duration
	// OpenCold and OpenShared are session-open times: from scratch
	// (elaborate + compile + first analysis) and against an already
	// compiled design (fresh AnalysisState over a shared CompiledDesign).
	// Zero when the measurement was not taken.
	OpenCold, OpenShared time.Duration
	// OK is the timing verdict.
	OK bool
}

// Table1 renders rows in the shape of the paper's Table 1 (with this
// machine's times substituted for VAX 8800 CPU seconds).
func Table1(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "%-8s %7s %7s %8s %9s %7s %12s %12s %7s %9s %9s %10s %10s %8s %10s %11s %9s %5s\n",
		"name", "cells", "nets", "latches", "clusters", "passes",
		"preprocess", "analysis", "sweeps", "recomps", "devals",
		"incr-edit", "full-edit", "speedup",
		"open-cold", "open-shared", "open-gain", "ok")
	for _, r := range rows {
		incr, full, speedup := "-", "-", "-"
		if r.IncrEdit > 0 && r.FullEdit > 0 {
			incr, full = fmtDur(r.IncrEdit), fmtDur(r.FullEdit)
			speedup = fmt.Sprintf("%.1fx", float64(r.FullEdit)/float64(r.IncrEdit))
		}
		cold, shared, gain := "-", "-", "-"
		if r.OpenCold > 0 && r.OpenShared > 0 {
			cold, shared = fmtDur(r.OpenCold), fmtDur(r.OpenShared)
			gain = fmt.Sprintf("%.1fx", float64(r.OpenCold)/float64(r.OpenShared))
		}
		fmt.Fprintf(w, "%-8s %7d %7d %8d %9d %7d %12s %12s %7d %9d %9d %10s %10s %8s %10s %11s %9s %5v\n",
			r.Name, r.Cells, r.Nets, r.Latches, r.Clusters, r.Passes,
			fmtDur(r.PreProcess), fmtDur(r.Analysis), r.Sweeps, r.Recomputes, r.DelayEvals,
			incr, full, speedup, cold, shared, gain, r.OK)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Summary prints the analysis verdict, the worst slack and per-terminal
// counts.
func Summary(w io.Writer, a *core.Analyzer, rep *core.Report) {
	st := a.Design.Stats(a.Lib)
	fmt.Fprintf(w, "design %s: %d cells, %d nets, %d synchronising elements (%d generic)\n",
		a.Design.Name, st.Cells, st.Nets, st.Latches, len(a.CD.Elems))
	fmt.Fprintf(w, "clusters: %d, analysis passes: %d\n", len(a.CD.Clusters), a.CD.TotalPasses())
	fmt.Fprintf(w, "sweeps: %d forward, %d backward\n", rep.ForwardSweeps, rep.BackwardSweeps)
	if rep.OK {
		fmt.Fprintf(w, "VERDICT: all paths fast enough (worst slack %v)\n", rep.WorstSlack())
		return
	}
	fmt.Fprintf(w, "VERDICT: %d synchronising-element terminals on too-slow paths (worst slack %v)\n",
		len(rep.SlowElems), rep.WorstSlack())
}

// SlowPaths lists the traced worst paths, most violated first.
func SlowPaths(w io.Writer, a *core.Analyzer, rep *core.Report, limit int) {
	paths := append([]core.SlowPath(nil), rep.SlowPaths...)
	sort.Slice(paths, func(i, j int) bool { return paths[i].Slack < paths[j].Slack })
	if limit > 0 && len(paths) > limit {
		paths = paths[:limit]
	}
	Paths(w, a, "slow path", paths)
}

// CriticalPaths lists the n most critical endpoint paths whether or not
// they violate — the conventional per-endpoint path report.
func CriticalPaths(w io.Writer, a *core.Analyzer, res *sta.Result, n int) {
	Paths(w, a, "path", a.WorstPaths(res, n))
}

// Paths renders traced paths with their per-arc trail.
func Paths(w io.Writer, a *core.Analyzer, label string, paths []core.SlowPath) {
	for i, p := range paths {
		from := a.CD.Elems[p.FromElem]
		to := a.CD.Elems[p.ToElem]
		fmt.Fprintf(w, "%s %d: %s -> %s  slack %v  delay %v (cluster %d pass %d)\n",
			label, i+1, from.Name(), to.Name(), p.Slack, p.Delay, p.Cluster, p.Pass)
		for k, net := range p.Nets {
			if k == 0 {
				fmt.Fprintf(w, "    %s\n", a.CD.Nets[net])
				continue
			}
			fmt.Fprintf(w, "    %s (through %s)\n", a.CD.Nets[net], p.Insts[k-1])
		}
	}
}

// Slacks prints the worst per-net slacks, tightest first.
func Slacks(w io.Writer, a *core.Analyzer, res *sta.Result, limit int) {
	type ns struct {
		net   int
		slack clock.Time
	}
	var all []ns
	for n, s := range res.NetSlack {
		if s != clock.Inf {
			all = append(all, ns{n, s})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].slack != all[j].slack {
			return all[i].slack < all[j].slack
		}
		return all[i].net < all[j].net
	})
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	fmt.Fprintf(w, "%-24s %12s\n", "net", "slack")
	for _, x := range all {
		fmt.Fprintf(w, "%-24s %12v\n", a.CD.Nets[x.net], x.slack)
	}
}

// Plan prints each cluster's break-open plan: pass count, window starts and
// the per-output assignment (§7's pre-processing output).
func Plan(w io.Writer, a *core.Analyzer) {
	for _, cl := range a.CD.Clusters {
		fmt.Fprintf(w, "cluster %d: %d nets, %d arcs, %d inputs, %d outputs, %d passes",
			cl.ID, len(cl.Nets), len(cl.Arcs), len(cl.Inputs), len(cl.Outputs), cl.Plan.Passes())
		if !cl.Plan.Exhaustive {
			fmt.Fprintf(w, " (greedy)")
		}
		fmt.Fprintln(w)
		for pi, beta := range cl.Plan.Breaks {
			fmt.Fprintf(w, "  pass %d: break at %v, outputs:", pi, beta)
			for oi, out := range cl.Outputs {
				if p, ok := cl.Plan.Assign[oi]; ok && p == pi {
					fmt.Fprintf(w, " %s", a.CD.Elems[out.Elem].Name())
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// Constraints dumps the Algorithm 2 ready/required times for the named
// nets (or for all nets with finite values when names is empty).
func Constraints(w io.Writer, a *core.Analyzer, c *core.Constraints, names []string) {
	nets := make([]int, 0)
	if len(names) == 0 {
		for n := range a.CD.Nets {
			nets = append(nets, n)
		}
	} else {
		for _, name := range names {
			if id, ok := a.CD.NetIdx[name]; ok {
				nets = append(nets, id)
			} else {
				fmt.Fprintf(w, "unknown net %q\n", name)
			}
		}
	}
	fmt.Fprintf(w, "%-24s %8s %6s %12s %12s\n", "net", "cluster", "pass", "ready", "required")
	for _, n := range nets {
		for _, nt := range c.NetTimes(n) {
			if nt.Ready() == -clock.Inf && nt.Required() == clock.Inf {
				continue
			}
			fmt.Fprintf(w, "%-24s %8d %6d %12v %12v\n",
				a.CD.Nets[n], nt.Cluster, nt.Pass, nt.Ready(), nt.Required())
		}
	}
}

// ClockSkew summarises the control path delays per clock domain: the
// spread between the fastest and slowest clock-to-control-input path. The
// paper warns that "badly asymmetric control path delays (eg. clock skew)"
// cause supplementary-constraint failures its algorithms do not detect;
// this report surfaces the asymmetry directly (pair it with the
// CheckSupplementary extension).
func ClockSkew(w io.Writer, a *core.Analyzer) {
	type domain struct {
		min, max clock.Time
		n        int
	}
	domains := map[int]*domain{}
	for _, s := range a.CD.Sites {
		if s.IsPort || s.CtrlNet < 0 {
			continue
		}
		d, ok := domains[s.Sig]
		if !ok {
			d = &domain{min: clock.Inf, max: -clock.Inf}
			domains[s.Sig] = d
		}
		if s.CtrlMax > d.max {
			d.max = s.CtrlMax
		}
		if s.CtrlMin < d.min {
			d.min = s.CtrlMin
		}
		d.n++
	}
	fmt.Fprintf(w, "%-12s %9s %12s %12s %12s\n", "clock", "elements", "min ctrl", "max ctrl", "skew")
	sigs := make([]int, 0, len(domains))
	for sig := range domains {
		sigs = append(sigs, sig)
	}
	sort.Ints(sigs)
	for _, sig := range sigs {
		d := domains[sig]
		fmt.Fprintf(w, "%-12s %9d %12v %12v %12v\n",
			a.CD.Clocks.Signal(sig).Name, d.n, d.min, d.max, d.max-d.min)
	}
}

// Endpoints lists every synchronising-element terminal with its slack,
// tightest first — the per-endpoint timing report of a conventional STA
// tool.
func Endpoints(w io.Writer, a *core.Analyzer, res *sta.Result, limit int) {
	type ep struct {
		name  string
		kind  string
		slack clock.Time
	}
	var eps []ep
	for ei, e := range a.CD.Elems {
		if res.InSlack[ei] != clock.Inf {
			eps = append(eps, ep{e.Name(), "capture", res.InSlack[ei]})
		}
		if res.OutSlack[ei] != clock.Inf {
			eps = append(eps, ep{e.Name(), "launch", res.OutSlack[ei]})
		}
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].slack != eps[j].slack {
			return eps[i].slack < eps[j].slack
		}
		if eps[i].name != eps[j].name {
			return eps[i].name < eps[j].name
		}
		return eps[i].kind < eps[j].kind
	})
	if limit > 0 && len(eps) > limit {
		eps = eps[:limit]
	}
	fmt.Fprintf(w, "%-20s %-8s %12s\n", "element", "terminal", "slack")
	for _, e := range eps {
		fmt.Fprintf(w, "%-20s %-8s %12v\n", e.name, e.kind, e.slack)
	}
}

// Stats renders one design's inventory line.
func Stats(w io.Writer, d *netlist.Design, s netlist.Stats) {
	fmt.Fprintf(w, "%s: %d cells (%d synchronising), %d nets, %d top-level module instances\n",
		d.Name, s.Cells, s.Latches, s.Nets, s.Modules)
}
