package report

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hummingbird/internal/celllib"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
	"hummingbird/internal/workload"
)

func loadFig1(t *testing.T) (*core.Analyzer, *core.Report) {
	t.Helper()
	lib := celllib.Default()
	a, err := core.Load(lib, workload.Figure1(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	return a, rep
}

func TestTable1Format(t *testing.T) {
	var sb strings.Builder
	Table1(&sb, []Row{
		{Name: "des", Cells: 3681, Nets: 3700, Latches: 512, Clusters: 17, Passes: 17,
			PreProcess: 12 * time.Millisecond, Analysis: 3 * time.Millisecond, Sweeps: 4, OK: true},
		{Name: "alu", Cells: 899, Nets: 901, Latches: 64, Clusters: 5, Passes: 5,
			PreProcess: 900 * time.Microsecond, Analysis: 120 * time.Microsecond, Sweeps: 3, OK: true},
	})
	out := sb.String()
	for _, want := range []string{"des", "3681", "alu", "899", "preprocess", "analysis", "12.00ms", "120.0µs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table lacks %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count %d", len(lines))
	}
}

func TestFmtDur(t *testing.T) {
	if got := fmtDur(500 * time.Nanosecond); got != "0.5µs" {
		t.Fatalf("fmtDur ns = %q", got)
	}
	if got := fmtDur(2500 * time.Millisecond); got != "2.500s" {
		t.Fatalf("fmtDur s = %q", got)
	}
}

func TestSummaryAndPlan(t *testing.T) {
	a, rep := loadFig1(t)
	var sb strings.Builder
	Summary(&sb, a, rep)
	out := sb.String()
	if !strings.Contains(out, "figure1") || !strings.Contains(out, "VERDICT") {
		t.Fatalf("summary:\n%s", out)
	}
	sb.Reset()
	Plan(&sb, a)
	out = sb.String()
	if !strings.Contains(out, "passes") || !strings.Contains(out, "break at") {
		t.Fatalf("plan:\n%s", out)
	}
	// The Figure 1 centre cluster shows two passes.
	if !strings.Contains(out, "2 passes") {
		t.Fatalf("no 2-pass cluster in plan:\n%s", out)
	}
}

func TestSlacksOutput(t *testing.T) {
	a, rep := loadFig1(t)
	var sb strings.Builder
	Slacks(&sb, a, rep.Result, 5)
	out := strings.TrimSpace(sb.String())
	lines := strings.Split(out, "\n")
	if len(lines) < 2 || len(lines) > 6 {
		t.Fatalf("slack lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "net") || !strings.Contains(lines[0], "slack") {
		t.Fatalf("header missing:\n%s", out)
	}
}

func TestSlowPathsOutput(t *testing.T) {
	lib := celllib.Default()
	d, err := netlist.ParseString(`
design slow
clock phi period 1ns rise 0 fall 400ps
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=q1
inst g1 INV_X1 A=q1 Y=n1
inst g2 INV_X1 A=n1 Y=n2
inst g2b INV_X1 A=n2 Y=n2b
inst g2c INV_X1 A=n2b Y=n2c
inst f2 DFF_X1 D=n2c CK=phi Q=q2
inst g3 BUF_X1 A=q2 Y=OUT
end
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("fixture should be slow")
	}
	var sb strings.Builder
	SlowPaths(&sb, a, rep, 3)
	out := sb.String()
	if !strings.Contains(out, "slow path 1:") || !strings.Contains(out, "slack") {
		t.Fatalf("slow paths:\n%s", out)
	}
	if !strings.Contains(out, "through g") {
		t.Fatalf("path instances missing:\n%s", out)
	}
	// Constraints dump.
	c, err := a.GenerateConstraints()
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	Constraints(&sb, a, c, []string{"n1", "nonexistent"})
	out = sb.String()
	if !strings.Contains(out, "n1") || !strings.Contains(out, "unknown net") {
		t.Fatalf("constraints:\n%s", out)
	}
}

func TestClockSkewReport(t *testing.T) {
	lib := celllib.Default()
	d, err := netlist.ParseString(`
design skew
clock phi period 10ns rise 0 fall 4ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst cb1 BUF_X1 A=phi Y=ck1
inst cb2 BUF_X1 A=ck1 Y=ck2
inst l1 DLATCH_X1 D=IN G=phi Q=q1
inst l2 DLATCH_X1 D=q1 G=ck2 Q=q2
inst g1 BUF_X1 A=q2 Y=OUT
end
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	ClockSkew(&sb, a)
	out := sb.String()
	if !strings.Contains(out, "phi") || !strings.Contains(out, "skew") {
		t.Fatalf("skew report:\n%s", out)
	}
	// l1 sees zero control delay, l2 a two-buffer tree: nonzero skew.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("skew line count:\n%s", out)
	}
	if strings.Contains(lines[1], " 0ns") && strings.Count(lines[1], "0ns") > 2 {
		t.Fatalf("skew should be nonzero:\n%s", out)
	}
}

func TestEndpointsReport(t *testing.T) {
	a, rep := loadFig1(t)
	var sb strings.Builder
	Endpoints(&sb, a, rep.Result, 6)
	out := strings.TrimSpace(sb.String())
	lines := strings.Split(out, "\n")
	if len(lines) != 7 {
		t.Fatalf("endpoint lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "element") || !strings.Contains(lines[0], "terminal") {
		t.Fatalf("header:\n%s", out)
	}
	// Sorted tightest first: extract slacks? Just check both kinds appear.
	if !strings.Contains(out, "capture") || !strings.Contains(out, "launch") {
		t.Fatalf("terminal kinds missing:\n%s", out)
	}
}

func TestStatsLine(t *testing.T) {
	lib := celllib.Default()
	d := workload.SM1F()
	var sb strings.Builder
	Stats(&sb, d, d.Stats(lib))
	if !strings.Contains(sb.String(), "sm1f") {
		t.Fatal(sb.String())
	}
}

func TestWriteJSON(t *testing.T) {
	a, rep := loadFig1(t)
	var sb strings.Builder
	if err := WriteJSON(&sb, a, rep); err != nil {
		t.Fatal(err)
	}
	var back JSONResult
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Design != "figure1" || !back.OK {
		t.Fatalf("header: %+v", back)
	}
	if back.Clusters != 5 || back.Passes != 6 {
		t.Fatalf("plan summary: %+v", back)
	}
	if len(back.NetSlacks) == 0 || len(back.Endpoints) == 0 {
		t.Fatal("slack maps empty")
	}
	if len(back.SlowPaths) != 0 {
		t.Fatal("slow paths on a passing design")
	}
	// The 2-pass cluster appears in the plan.
	two := false
	for _, p := range back.PlanByID {
		if len(p.Passes) == 2 {
			two = true
		}
	}
	if !two {
		t.Fatal("two-pass cluster missing from JSON plan")
	}
	// Worst slack consistent with the endpoint minimum.
	min := int64(1) << 62
	for _, e := range back.Endpoints {
		if e.SlackPs < min {
			min = e.SlackPs
		}
	}
	if min != back.WorstPs {
		t.Fatalf("worst %d != endpoint min %d", back.WorstPs, min)
	}
}

func TestWriteJSONSlowDesign(t *testing.T) {
	lib := celllib.Default()
	d, err := netlist.ParseString(`
design slow
clock phi period 1ns rise 0 fall 400ps
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=q1
inst g1 INV_X1 A=q1 Y=n1
inst g2 INV_X1 A=n1 Y=n2
inst g3 INV_X1 A=n2 Y=n3
inst g4 INV_X1 A=n3 Y=n4
inst f2 DFF_X1 D=n4 CK=phi Q=q2
inst g5 BUF_X1 A=q2 Y=OUT
end
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Load(lib, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, a, rep); err != nil {
		t.Fatal(err)
	}
	var back JSONResult
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.OK || len(back.SlowPaths) == 0 || back.WorstPs >= 0 {
		t.Fatalf("slow export wrong: ok=%v paths=%d worst=%d", back.OK, len(back.SlowPaths), back.WorstPs)
	}
	p := back.SlowPaths[0]
	if p.From == "" || p.To == "" || len(p.Nets) < 2 || len(p.Insts) != len(p.Nets)-1 {
		t.Fatalf("path shape: %+v", p)
	}
}
