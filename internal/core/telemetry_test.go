package core

import (
	"errors"
	"strings"
	"testing"

	"hummingbird/internal/telemetry"
)

// borrowPipe needs real slack transfers: at the initial offsets the
// downstream half violates and forward sweeps must move l1 (same
// fixture as TestAlgorithm1Borrowing).
const borrowPipe = `
design borrow
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D1NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 D55NS A=q1 Y=n2
inst f2 FFD D=n2 CK=phi2 Q=q2
inst g3 D1NS A=q2 Y=OUT
end
`

// nearCriticalLoop is the §3 combinational cycle through two
// transparent latches around a 100ns period with asymmetric halves
// (69ns and ~28.1ns, so only ~2.9ns of loop slack). Starting from the
// latest-closure offsets, complete forward transfer circulates small
// slack donations around the loop, needing on the order of
// W/loop-slack sweeps to settle (§6) — the configuration the
// convergence trace exists to diagnose.
const nearCriticalLoop = `
design nearcrit
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge rise offset 0
output OUT clock phi1 edge rise offset 0
inst gx XORD A=IN B=q2 Y=d1
inst l1 LAT D=d1 G=phi1 Q=q1
inst g2a D40NS A=q1 Y=d2a
inst g2b D20NS A=d2a Y=d2b
inst g2c D5NS A=d2b Y=d2c
inst g2d D1NS A=d2c Y=d2d
inst g2e D1NS A=d2d Y=d2e
inst g2f D1NS A=d2e Y=d2g
inst g2g D1NS A=d2g Y=d2
inst l2 LAT D=d2 G=phi2 Q=q2x
inst g4a D20NS A=q2x Y=q2a
inst g4b D5NS A=q2a Y=q2b
inst g4c D1NS A=q2b Y=q2c
inst g4d D1NS A=q2c Y=q2d
inst g4e D1NS A=q2d Y=q2
inst g3 BUFD A=q1 Y=OUT
end
`

func TestNonConvergenceErrorCarriesTrajectory(t *testing.T) {
	a := analyzer(t, nearCriticalLoop)
	a.Opts.MaxSweeps = 3
	_, err := a.IdentifySlowPaths()
	if err == nil {
		t.Fatal("near-critical loop converged within 4 sweeps; fixture no longer near-critical")
	}
	var nce *NonConvergenceError
	if !errors.As(err, &nce) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if nce.Iteration != "forward" || nce.MaxSweeps != 3 {
		t.Fatalf("error fields: %+v", nce)
	}
	if len(nce.Trail) == 0 {
		t.Fatal("no trajectory tail on error")
	}
	for _, ev := range nce.Trail {
		if ev.Moved == 0 {
			t.Fatalf("near-critical loop sweep moved nothing: %+v", ev)
		}
	}
	msg := err.Error()
	for _, want := range []string{"non-convergence", "trailing sweeps", "moved", "worst", "MaxSweeps"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error message lacks %q: %s", want, msg)
		}
	}
}

func TestNearCriticalLoopConvergesWithEnoughSweeps(t *testing.T) {
	// The same fixture settles under the default cap, as §6 promises for
	// any feasible loop.
	a := analyzer(t, nearCriticalLoop)
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("feasible near-critical loop reported slow: worst=%v", rep.WorstSlack())
	}
	if rep.ForwardSweeps < 4 {
		t.Fatalf("fixture converged in %d sweeps; not near-critical enough to exercise the trace", rep.ForwardSweeps)
	}
}

func TestTraceRetainsTrajectory(t *testing.T) {
	var buf strings.Builder
	a := analyzer(t, borrowPipe)
	a.Opts.Trace = telemetry.NewTracer(&buf)
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trajectory) == 0 {
		t.Fatal("no trajectory retained with tracing on")
	}
	first := rep.Trajectory[0]
	if first.Iteration != "forward" || first.Sweep != 0 || first.Moved == 0 {
		t.Fatalf("first event: %+v", first)
	}
	// Every sweep emitted one structured line.
	if n := strings.Count(buf.String(), "msg=sweep"); n != len(rep.Trajectory) {
		t.Fatalf("%d trace lines for %d events:\n%s", n, len(rep.Trajectory), buf.String())
	}
	if !strings.Contains(buf.String(), "iteration=forward") {
		t.Fatalf("trace output:\n%s", buf.String())
	}

	// Constraint generation traces its snatch iterations too.
	buf.Reset()
	c, err := a.GenerateConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Trajectory) == 0 || c.Trajectory[0].Iteration != "snatch-backward" {
		t.Fatalf("constraints trajectory: %+v", c.Trajectory)
	}
	if !strings.Contains(buf.String(), "iteration=snatch-backward") {
		t.Fatalf("constraints trace output:\n%s", buf.String())
	}
}

func TestTrajectoryAbsentWithoutTracer(t *testing.T) {
	a := analyzer(t, borrowPipe)
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trajectory != nil {
		t.Fatalf("trajectory retained without a tracer: %d events", len(rep.Trajectory))
	}
}

func TestSweepMetricsCounted(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	before := telemetry.Snapshot().Counters
	a := analyzer(t, borrowPipe)
	if _, err := a.IdentifySlowPaths(); err != nil {
		t.Fatal(err)
	}
	after := telemetry.Snapshot().Counters
	for _, name := range []string{"core.sweeps", "core.offsets_moved", "core.incremental_clusters", "sta.clusters_analyzed", "sta.passes"} {
		if after[name] <= before[name] {
			t.Fatalf("counter %s did not advance (%d -> %d)", name, before[name], after[name])
		}
	}
	// Full-sweep mode counts on the other side of the split.
	a2 := analyzer(t, borrowPipe)
	a2.Opts.FullSweeps = true
	mid := telemetry.Snapshot().Counters
	if _, err := a2.IdentifySlowPaths(); err != nil {
		t.Fatal(err)
	}
	final := telemetry.Snapshot().Counters
	if final["core.full_recomputes"] <= mid["core.full_recomputes"] {
		t.Fatal("full-sweep counter did not advance")
	}
}
