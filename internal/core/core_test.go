package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/netlist"
	"hummingbird/internal/sta"
	"hummingbird/internal/testlib"
)

func analyzer(t *testing.T, text string) *Analyzer {
	t.Helper()
	nw := testlib.Network(t, text)
	return LoadFlat(nw, Options{})
}

const fastPipe = `
design fast
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D10NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 D10NS A=q1 Y=n2
inst f2 FFD D=n2 CK=phi2 Q=q2
inst g3 D5NS A=q2 Y=OUT
end
`

func TestAlgorithm1FastDesign(t *testing.T) {
	a := analyzer(t, fastPipe)
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("fast design reported slow: worst=%v slow=%v", rep.WorstSlack(), rep.SlowElems)
	}
	if rep.WorstSlack() <= 0 {
		t.Fatalf("worst slack %v not positive", rep.WorstSlack())
	}
	if len(rep.SlowPaths) != 0 || len(rep.SlowElems) != 0 {
		t.Fatal("slow artifacts on fast design")
	}
}

// TestAlgorithm1Borrowing: at the initial offsets (latch closure as late as
// legal, assertion at the trailing edge) the downstream half violates: l1
// asserts at 40ns, 55ns of logic, FF capture at 90ns → 95 > 90. Forward
// slack transfer borrows from the generous upstream half and the design
// passes.
func TestAlgorithm1Borrowing(t *testing.T) {
	a := analyzer(t, `
design borrow
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D1NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 D55NS A=q1 Y=n2
inst f2 FFD D=n2 CK=phi2 Q=q2
inst g3 D1NS A=q2 Y=OUT
end
`)
	// Verify the premise: the initial offsets do violate.
	pre := sta.Analyze(a.CD, a.St)
	f2 := testlib.Elem(t, a.CD.Network, "f2")
	if pre.InSlack[f2] > 0 {
		t.Fatalf("premise broken: initial InSlack(f2) = %v", pre.InSlack[f2])
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("borrowing failed: worst=%v", rep.WorstSlack())
	}
	// The latch DOF must actually have moved.
	li := testlib.Elem(t, a.CD.Network, "l1")
	if a.St.Odz[li] >= a.CD.Elems[li].OdzMax() {
		t.Fatalf("no borrowing happened: Odz=%v", a.St.Odz[li])
	}
}

func TestAlgorithm1GenuinelySlow(t *testing.T) {
	// 55+60 = 115ns of logic across one latch stage in a 100ns period:
	// no offset assignment can fix it.
	a := analyzer(t, `
design slow
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D60NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 D55NS A=q1 Y=n2
inst f2 FFD D=n2 CK=phi2 Q=q2
inst g3 D1NS A=q2 Y=OUT
end
`)
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("impossible design reported fast")
	}
	if len(rep.SlowElems) == 0 {
		t.Fatal("no slow elements")
	}
	if len(rep.SlowPaths) == 0 {
		t.Fatal("no slow paths traced")
	}
	// The traced path must run IN -> n1 -> (latch) or q1 -> n2; check one
	// path ends at a capture with non-positive slack and has consistent
	// nets.
	for _, p := range rep.SlowPaths {
		if p.Slack > 0 {
			t.Fatalf("slow path with positive slack: %+v", p)
		}
		if len(p.Nets) < 2 || len(p.Insts) != len(p.Nets)-1 {
			t.Fatalf("malformed path: %+v", p)
		}
		if p.Delay <= 0 {
			t.Fatalf("path delay %v", p.Delay)
		}
	}
	// Slow nets flagged.
	if len(a.SlowNets(rep.Result)) == 0 {
		t.Fatal("no slow nets flagged")
	}
}

func TestAlgorithm1CycleThroughLatches(t *testing.T) {
	// A combinational cycle traversing two transparent latches (§3's
	// "interesting feature"): each half has 30ns of logic; phases phi1
	// [0,40) and phi2 [50,90). The loop is feasible.
	a := analyzer(t, `
design loop
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge rise offset 0
output OUT clock phi1 edge rise offset 0
inst gx XORD A=IN B=q2 Y=d1
inst l1 LAT D=d1 G=phi1 Q=q1
inst g2 D30NS A=q1 Y=d2
inst l2 LAT D=d2 G=phi2 Q=q2x
inst g4 D30NS A=q2x Y=q2
inst g3 BUFD A=q1 Y=OUT
end
`)
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("feasible latch loop reported slow: worst=%v", rep.WorstSlack())
	}
}

func TestAlgorithm1InfeasibleCycle(t *testing.T) {
	// The same loop with 60ns halves: 120ns around a 100ns-period loop.
	// Both halves cannot be satisfied simultaneously — the second
	// condition of the §4 proposition.
	a := analyzer(t, `
design loopbad
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge rise offset 0
output OUT clock phi1 edge rise offset 0
inst gx XORD A=IN B=q2 Y=d1
inst l1 LAT D=d1 G=phi1 Q=q1
inst g2 D60NS A=q1 Y=d2
inst l2 LAT D=d2 G=phi2 Q=q2x
inst g4 D60NS A=q2x Y=q2
inst g3 BUFD A=q1 Y=OUT
end
`)
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("infeasible loop reported fast")
	}
}

func TestSweepCountsBounded(t *testing.T) {
	a := analyzer(t, fastPipe)
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: at most one more than the number of sync elements on a
	// directed path, "typically less that ten".
	if rep.ForwardSweeps > 10 || rep.BackwardSweeps > 10 {
		t.Fatalf("sweeps = %d/%d", rep.ForwardSweeps, rep.BackwardSweeps)
	}
}

// TestViolationSetIndependentOfInitialOffsets: Algorithm 1's classification
// must not depend on which valid initial offsets were chosen (§4's
// proposition quantifies over all satisfying offset sets).
func TestViolationSetIndependentOfInitialOffsets(t *testing.T) {
	slowSet := func(seed int64) []string {
		nw := testlib.Network(t, `
design mix
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D20NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 D55NS A=q1 Y=n2
inst l2 LAT D=n2 G=phi2 Q=q2
inst g4 D55NS A=q2 Y=n3
inst l3 LAT D=n3 G=phi1 Q=q3
inst g5 D10NS A=q3 Y=OUT
end
`)
		a := LoadFlat(nw, Options{})
		r := rand.New(rand.NewSource(seed))
		for ei, e := range nw.Elems {
			if e.HasDOF() {
				span := int64(e.OdzMax() - e.OdzMin())
				a.St.Odz[ei] = e.OdzMin() + clock.Time(r.Int63n(span+1))
			}
		}
		rep, err := a.IdentifySlowPaths()
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, ei := range rep.SlowElems {
			names = append(names, nw.Elems[ei].Name())
		}
		sort.Strings(names)
		return names
	}
	ref := slowSet(1)
	for seed := int64(2); seed < 8; seed++ {
		got := slowSet(seed)
		if len(got) != len(ref) {
			t.Fatalf("seed %d: slow set %v != %v", seed, got, ref)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: slow set %v != %v", seed, got, ref)
			}
		}
	}
}

// TestIncrementalMatchesFullSweeps: the incremental sweep mode (recompute
// only clusters adjacent to moved elements) must match the full-recompute
// mode bit for bit on verdicts and slacks, for fast, borrowing and slow
// designs.
func TestIncrementalMatchesFullSweeps(t *testing.T) {
	designs := []string{fastPipe, fixText, `
design deep
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D20NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 D55NS A=q1 Y=n2
inst l2 LAT D=n2 G=phi2 Q=q2
inst g4 D55NS A=q2 Y=n3
inst l3 LAT D=n3 G=phi1 Q=q3
inst g5 D30NS A=q3 Y=n4
inst l4 LAT D=n4 G=phi2 Q=q4
inst g6 D10NS A=q4 Y=OUT
end
`}
	for di, text := range designs {
		runMode := func(full bool) (*Analyzer, *Report) {
			nw := testlib.Network(t, text)
			a := LoadFlat(nw, Options{FullSweeps: full})
			rep, err := a.IdentifySlowPaths()
			if err != nil {
				t.Fatal(err)
			}
			return a, rep
		}
		aInc, rInc := runMode(false)
		aFull, rFull := runMode(true)
		if rInc.OK != rFull.OK || rInc.WorstSlack() != rFull.WorstSlack() {
			t.Fatalf("design %d: verdicts differ: %v/%v vs %v/%v",
				di, rInc.OK, rInc.WorstSlack(), rFull.OK, rFull.WorstSlack())
		}
		for ei := range aInc.CD.Elems {
			if rInc.Result.InSlack[ei] != rFull.Result.InSlack[ei] ||
				rInc.Result.OutSlack[ei] != rFull.Result.OutSlack[ei] {
				t.Fatalf("design %d: element %s slacks differ (%v/%v vs %v/%v)",
					di, aInc.CD.Elems[ei].Name(),
					rInc.Result.InSlack[ei], rInc.Result.OutSlack[ei],
					rFull.Result.InSlack[ei], rFull.Result.OutSlack[ei])
			}
		}
		for n := range rInc.Result.NetSlack {
			if rInc.Result.NetSlack[n] != rFull.Result.NetSlack[n] {
				t.Fatalf("design %d: net %s slack differs", di, aInc.CD.Nets[n])
			}
		}
		_ = aFull
	}
}

// TestIncrementalConstraintsMatch: Algorithm 2 budgets agree across modes.
func TestIncrementalConstraintsMatch(t *testing.T) {
	budgets := func(full bool) (map[[2]string]clock.Time, *Analyzer) {
		nw := testlib.Network(t, fixText)
		a := LoadFlat(nw, Options{FullSweeps: full})
		if _, err := a.IdentifySlowPaths(); err != nil {
			t.Fatal(err)
		}
		c, err := a.GenerateConstraints()
		if err != nil {
			t.Fatal(err)
		}
		out := map[[2]string]clock.Time{}
		for _, cl := range a.CD.Clusters {
			for _, arc := range cl.Arcs {
				out[[2]string{a.CD.Nets[arc.From], a.CD.Nets[arc.To]}] = c.Allowed(arc.From, arc.To)
			}
		}
		return out, a
	}
	inc, _ := budgets(false)
	full, _ := budgets(true)
	if len(inc) != len(full) {
		t.Fatal("budget key sets differ")
	}
	for k, v := range inc {
		if full[k] != v {
			t.Fatalf("budget %v: %v vs %v", k, v, full[k])
		}
	}
}

// TestSlackTransferMonotone checks the §6 proposition: performing any
// complete or partial slack transfer never shrinks the set of satisfied
// constraints — an element terminal whose slack was non-negative stays
// non-negative.
func TestSlackTransferMonotone(t *testing.T) {
	const text = `
design mono
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D20NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 D30NS A=q1 Y=n2
inst l2 LAT D=n2 G=phi2 Q=q2
inst g4 D40NS A=q2 Y=n3
inst l3 LAT D=n3 G=phi1 Q=q3
inst g5 D10NS A=q3 Y=OUT
end
`
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		nw := testlib.Network(t, text)
		cd := cluster.Compile(nw)
		st := sta.NewState(cd)
		// Random valid starting offsets.
		for ei, e := range nw.Elems {
			if e.HasDOF() {
				span := int64(e.OdzMax() - e.OdzMin())
				st.Odz[ei] = e.OdzMin() + clock.Time(r.Int63n(span+1))
			}
		}
		before := sta.Analyze(cd, st)
		// One random legal transfer on one random element.
		ei := r.Intn(len(nw.Elems))
		e := nw.Elems[ei]
		switch r.Intn(4) {
		case 0:
			st.Odz[ei], _ = e.CompleteForwardAt(st.Odz[ei], before.InSlack[ei])
		case 1:
			st.Odz[ei], _ = e.CompleteBackwardAt(st.Odz[ei], before.OutSlack[ei])
		case 2:
			st.Odz[ei], _ = e.PartialForwardAt(st.Odz[ei], before.InSlack[ei], int64(2+r.Intn(3)))
		case 3:
			st.Odz[ei], _ = e.PartialBackwardAt(st.Odz[ei], before.OutSlack[ei], int64(2+r.Intn(3)))
		}
		after := sta.Analyze(cd, st)
		for i := range before.InSlack {
			if before.InSlack[i] >= 0 && after.InSlack[i] < 0 {
				t.Fatalf("trial %d: input terminal %s lost satisfaction (%v -> %v)",
					trial, nw.Elems[i].Name(), before.InSlack[i], after.InSlack[i])
			}
			if before.OutSlack[i] >= 0 && after.OutSlack[i] < 0 {
				t.Fatalf("trial %d: output terminal %s lost satisfaction (%v -> %v)",
					trial, nw.Elems[i].Name(), before.OutSlack[i], after.OutSlack[i])
			}
		}
	}
}

func TestResetOffsets(t *testing.T) {
	a := analyzer(t, fastPipe)
	li := testlib.Elem(t, a.CD.Network, "l1")
	a.St.Odz[li] = a.CD.Elems[li].OdzMin()
	a.ResetOffsets()
	if a.St.Odz[li] != a.CD.Elems[li].OdzMax() {
		t.Fatal("ResetOffsets did not restore")
	}
}

func TestGenerateConstraintsFastDesign(t *testing.T) {
	a := analyzer(t, fastPipe)
	if _, err := a.IdentifySlowPaths(); err != nil {
		t.Fatal(err)
	}
	c, err := a.GenerateConstraints()
	if err != nil {
		t.Fatal(err)
	}
	// §3 guarantee on fast designs: for every arc, required(to) − ready(from)
	// exceeds the arc delay.
	for _, cl := range a.CD.Clusters {
		for _, arc := range cl.Arcs {
			budget := c.Allowed(arc.From, arc.To)
			if budget < arc.D.Max() {
				t.Fatalf("arc %s %s->%s: budget %v < delay %v",
					arc.Inst, a.CD.Nets[arc.From], a.CD.Nets[arc.To], budget, arc.D.Max())
			}
		}
	}
	// Ready < required everywhere analyzed on a fast design.
	for n := range a.CD.Nets {
		for _, nt := range c.NetTimes(n) {
			if nt.Ready() != -clock.Inf && nt.Required() != clock.Inf && nt.Ready() >= nt.Required() {
				t.Fatalf("net %s: ready %v >= required %v", a.CD.Nets[n], nt.Ready(), nt.Required())
			}
		}
	}
}

func TestGenerateConstraintsSlowDesign(t *testing.T) {
	a := analyzer(t, `
design slowc
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D60NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 D55NS A=q1 Y=n2
inst f2 FFD D=n2 CK=phi2 Q=q2
inst g3 D1NS A=q2 Y=OUT
end
`)
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("premise broken")
	}
	c, err := a.GenerateConstraints()
	if err != nil {
		t.Fatal(err)
	}
	// On the slow arcs, the budget is less than the actual delay: the gap
	// is the speed-up required to make the path just fast enough.
	in, n2 := a.CD.NetIdx["IN"], a.CD.NetIdx["n2"]
	q1 := a.CD.NetIdx["q1"]
	// Total path IN→n1 budget + q1→n2 budget must be less than the actual
	// 115ns (the design is infeasible by 115 − available).
	b1 := c.Allowed(in, a.CD.NetIdx["n1"])
	b2 := c.Allowed(q1, n2)
	if b1 >= 60*clock.Ns && b2 >= 55*clock.Ns {
		t.Fatalf("no speed-up demanded: budgets %v / %v", b1, b2)
	}
	if b1 == clock.Inf || b2 == clock.Inf {
		t.Fatal("budgets missing")
	}
	// Snatch sweeps converged.
	if c.BackwardSnatches == 0 || c.ForwardSnatches == 0 {
		t.Fatal("snatch counts zero")
	}
}

// TestConstraintsSufficiency: the generated budget for a slow arc is the
// speed-up target; rebuilding the design with the arc just inside its
// budget yields a design Algorithm 1 accepts.
//
// Fixture: IN (asserted 90ns) → 55ns → l1 (LAT phi1) → 60ns → f2 (FF phi2,
// closes 90ns), T = 100ns. Upstream needs closure ≥ 145 ≡ requires
// Odz ≥ +5 (impossible, max 0); the interaction with the downstream stage
// (which needs Odz ≤ −10) demands the IN→n1 budget come out ≤ 40ns.
const fixText = `
design fix
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D55NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 D60NS A=q1 Y=n2
inst f2 FFD D=n2 CK=phi2 Q=q2
inst g3 D1NS A=q2 Y=OUT
end
`

func TestConstraintsSufficiency(t *testing.T) {
	nw := testlib.Network(t, fixText)
	a := LoadFlat(nw, Options{})
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("premise broken: design should be slow")
	}
	c, err := a.GenerateConstraints()
	if err != nil {
		t.Fatal(err)
	}
	in, n1 := nw.NetIdx["IN"], nw.NetIdx["n1"]
	budget := c.Allowed(in, n1)
	if budget <= 0 || budget > 40*clock.Ns {
		t.Fatalf("budget %v out of expected range (0, 40ns]", budget)
	}
	// Rebuild and patch g1 strictly inside its budget (exactly at the
	// budget the path is only *just* fast enough — zero slack — which the
	// simplified model conservatively flags, §6).
	nw2 := testlib.Network(t, fixText)
	target := budget - 1*clock.Ns
	for _, cl := range nw2.Clusters {
		for ai := range cl.Arcs {
			if cl.Arcs[ai].Inst == "g1" {
				cl.Arcs[ai].D.MaxRise, cl.Arcs[ai].D.MaxFall = target, target
				cl.Arcs[ai].D.MinRise, cl.Arcs[ai].D.MinFall = target/2, target/2
			}
		}
	}
	a2 := LoadFlat(nw2, Options{})
	rep2, err := a2.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK {
		t.Fatalf("design still slow after meeting the budget %v (worst %v)", budget, rep2.WorstSlack())
	}
}

// TestConstraintsSlowdownBound: the other half of Algorithm 2's contract —
// for paths that are fast enough, the generated times "bound the degree to
// which a path may be slowed down" (§3). Slowing an arc to just inside its
// budget keeps the design passing; pushing past the budget breaks it.
func TestConstraintsSlowdownBound(t *testing.T) {
	build := func() *Analyzer {
		nw := testlib.Network(t, fastPipe)
		return LoadFlat(nw, Options{})
	}
	a := build()
	if _, err := a.IdentifySlowPaths(); err != nil {
		t.Fatal(err)
	}
	c, err := a.GenerateConstraints()
	if err != nil {
		t.Fatal(err)
	}
	q1, n2 := a.CD.NetIdx["q1"], a.CD.NetIdx["n2"]
	budget := c.Allowed(q1, n2) // currently a 10ns stage
	if budget <= 10*clock.Ns {
		t.Fatalf("budget %v not above current delay", budget)
	}
	patch := func(target clock.Time) *Analyzer {
		a2 := build()
		for _, cl := range a2.CD.Clusters {
			for ai := range cl.Arcs {
				if cl.Arcs[ai].Inst == "g2" {
					cl.Arcs[ai].D.MaxRise, cl.Arcs[ai].D.MaxFall = target, target
					cl.Arcs[ai].D.MinRise, cl.Arcs[ai].D.MinFall = target/2, target/2
				}
			}
		}
		return a2
	}
	// Just inside the budget: still fast. (The budget is a *safe* bound —
	// exceeding it may still be feasible through further borrowing, so no
	// converse is asserted at budget+ε.)
	inside := patch(budget - 1*clock.Ns)
	rep, err := inside.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("slowing to budget-1ns (%v) broke timing (worst %v)", budget-1*clock.Ns, rep.WorstSlack())
	}
	// Beyond any possible window (launch cannot precede phi1.rise at 0,
	// capture is at 90ns): must fail.
	outside := patch(95 * clock.Ns)
	rep2, err := outside.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK {
		t.Fatalf("95ns through a 90ns window did not break timing (budget %v)", budget)
	}
}

func TestSupplementaryViolation(t *testing.T) {
	// Launch from a slow FF (period 100ns, trail 40ns) into a fast FF
	// (period 50ns): the fast capture occurrence one half-period later
	// pairs with the stale launch; bound = 55−50 = 5ns > dmin (50ps).
	a := analyzer(t, `
design supp
clock slow period 100ns rise 0 fall 40ns
clock fast period 50ns rise 20ns fall 45ns
input IN clock slow edge fall offset 0
output OUT clock slow edge fall offset 0
inst f1 FFD D=IN CK=slow Q=q1
inst g1 BUFD A=q1 Y=n1
inst f2 FFD D=n1 CK=fast Q=q2
inst g2 BUFD A=q2 Y=OUT
end
`)
	if _, err := a.IdentifySlowPaths(); err != nil {
		t.Fatal(err)
	}
	v := a.CheckSupplementary()
	if len(v) == 0 {
		t.Fatal("expected a supplementary (double-clocking) violation")
	}
	found := false
	for _, x := range v {
		from := a.CD.Elems[x.FromElem]
		to := a.CD.Elems[x.ToElem]
		if from.Inst == "f1" && to.Inst == "f2" && x.MinDelay <= x.Bound {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations lack f1->f2: %+v", v)
	}
}

func TestSupplementaryCleanDesign(t *testing.T) {
	a := analyzer(t, fastPipe)
	if _, err := a.IdentifySlowPaths(); err != nil {
		t.Fatal(err)
	}
	if v := a.CheckSupplementary(); len(v) != 0 {
		t.Fatalf("unexpected supplementary violations: %+v", v)
	}
}

func TestLoadEndToEndWithDefaultLibrary(t *testing.T) {
	lib := celllib.Default()
	d, err := netlist.ParseString(`
design e2e
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset -0.5ns
module STAGE
  input A
  output Y
  inst i1 INV_X1 A=A Y=t
  inst i2 INV_X2 A=t Y=Y
endmodule
inst u1 STAGE A=IN Y=n1
inst l1 DLATCH_X1 D=n1 G=phi1 Q=q1
inst u2 STAGE A=q1 Y=n2
inst f2 DFF_X1 D=n2 CK=phi2 Q=q2
inst g3 BUF_X1 A=q2 Y=OUT
end
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Load(lib, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Hierarchy resolved: STAGE must be a super-cell in the analyzer's lib.
	if a.Lib.Cell("STAGE") == nil {
		t.Fatal("module not rolled up")
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("realistic pipe reported slow: %v", rep.WorstSlack())
	}
}

// TestTristateBusAnalysis: two clocked tristate drivers time-share one bus
// (enabled on disjoint phases); each behaves as a transparent latch (§5).
// The bus cluster sees two launching elements and the capture terminals see
// the worst of them.
func TestTristateBusAnalysis(t *testing.T) {
	lib := celllib.Default()
	d, err := netlist.ParseString(`
design bus
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input A clock phi2 edge fall offset 0
input B clock phi1 edge fall offset 0
output OUT1 clock phi2 edge fall offset 0
output OUT2 clock phi1 edge fall offset 0
inst t1 TBUF_X1 A=A EN=phi1 Y=bus
inst t2 TBUF_X1 A=B EN=phi2 Y=bus
inst g1 INV_X1 A=bus Y=n1
inst c1 DLATCH_X1 D=n1 G=phi2 Q=q1
inst c2 DLATCH_X1 D=n1 G=phi1 Q=q2
inst o1 BUF_X1 A=q1 Y=OUT1
inst o2 BUF_X1 A=q2 Y=OUT2
end
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Load(lib, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Both drivers appear as elements with transparent-latch freedom.
	for _, name := range []string{"t1", "t2"} {
		ids := a.CD.ElemsOf(name)
		if len(ids) != 1 {
			t.Fatalf("%s elements = %d", name, len(ids))
		}
		if !a.CD.Elems[ids[0]].HasDOF() {
			t.Fatalf("%s lacks the transparent DOF", name)
		}
	}
	// The bus cluster holds both launch occurrences.
	busNet := a.CD.NetIdx["bus"]
	var busCl bool
	for _, cl := range a.CD.Clusters {
		if cl.LocalIndex(busNet) < 0 {
			continue
		}
		busCl = true
		launches := 0
		for _, in := range cl.Inputs {
			if in.Net == busNet {
				launches++
			}
		}
		if launches != 2 {
			t.Fatalf("bus launches = %d, want 2", launches)
		}
	}
	if !busCl {
		t.Fatal("bus not in any cluster")
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("tristate bus design slow: %v", rep.WorstSlack())
	}
}

// Property: Algorithm 1 never reports slow on designs where every
// launch-to-capture window comfortably exceeds the inserted delay, and
// always reports slow when some stage exceeds its maximum possible window.
func TestAlgorithm1WindowProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Stage delay in ns: 1..120; the phi1->phi2 window with borrowing
		// spans up to 90ns (assert as early as phi1.rise=0, capture at
		// phi2.fall=90 at the latest legal closure); beyond it must fail.
		dly := []clock.Time{1, 5, 10, 20, 30, 40, 55, 60}[r.Intn(8)]
		text := `
design p
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi2 edge fall offset 0
inst g1 D1NS A=IN Y=n1
inst l1 LAT D=n1 G=phi1 Q=q1
inst g2 ` + map[clock.Time]string{1: "D1NS", 5: "D5NS", 10: "D10NS", 20: "D20NS", 30: "D30NS", 40: "D40NS", 55: "D55NS", 60: "D60NS"}[dly] + ` A=q1 Y=n2
inst f2 FFD D=n2 CK=phi2 Q=q2
inst g3 D1NS A=q2 Y=OUT
end
`
		nw := testlib.Network(t, text)
		a := LoadFlat(nw, Options{})
		rep, err := a.IdentifySlowPaths()
		if err != nil {
			return false
		}
		// Launch earliest at phi1.rise (0), capture at 90: feasible iff
		// delay <= 90ns. All listed delays are <= 60: must pass. Also the
		// upstream stage (1ns into a 40+ns window) always passes.
		return rep.OK
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestWorstPaths: critical paths are traceable on passing designs too,
// sorted tightest first, and consistent with the endpoint slacks.
func TestWorstPaths(t *testing.T) {
	a := analyzer(t, fastPipe)
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatal("premise: fastPipe passes")
	}
	paths := a.WorstPaths(rep.Result, 0)
	if len(paths) == 0 {
		t.Fatal("no critical paths traced on a passing design")
	}
	for i := 1; i < len(paths); i++ {
		if paths[i-1].Slack > paths[i].Slack {
			t.Fatal("paths not sorted by slack")
		}
	}
	for _, p := range paths {
		if p.Slack != rep.Result.InSlack[p.ToElem] {
			t.Fatalf("path slack %v != endpoint slack %v", p.Slack, rep.Result.InSlack[p.ToElem])
		}
		if p.Slack <= 0 {
			t.Fatal("passing design produced non-positive path slack")
		}
		if len(p.Nets) < 1 || len(p.Insts) != len(p.Nets)-1 {
			t.Fatalf("malformed path %+v", p)
		}
	}
	// Capped variant returns the prefix.
	top2 := a.WorstPaths(rep.Result, 2)
	if len(top2) != 2 || top2[0].Slack != paths[0].Slack {
		t.Fatalf("cap wrong: %+v", top2)
	}
}

// TestEnablePathTiming: end-to-end §4 enable-path analysis. The enable
// signal is launched by a latch on phi2 (assert ≈ 50ns at the earliest) and
// gates phi1 pulses (leading edges at 0 ≡ 100ns): the enable has ~50ns of
// margin when its logic is fast, and violates when far more than 50ns of
// logic sits in the enable path.
func TestEnablePathTiming(t *testing.T) {
	lib := celllib.Default()
	build := func(enDelayGates int) (*Analyzer, error) {
		var sb strings.Builder
		sb.WriteString(`
design gated
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi1 edge fall offset 0
inst le DLATCH_X1 D=IN G=phi2 Q=en0
`)
		prev := "en0"
		for i := 0; i < enDelayGates; i++ {
			next := fmt.Sprintf("en%d", i+1)
			fmt.Fprintf(&sb, "inst gd%d BUF_X4 A=%s Y=%s\n", i, prev, next)
			prev = next
		}
		fmt.Fprintf(&sb, "inst ga AND2_X1 A=phi1 B=%s Y=gck\n", prev)
		sb.WriteString(`inst l1 DLATCH_X1 D=IN G=gck Q=q1
inst g1 BUF_X1 A=q1 Y=OUT
end
`)
		d, err := netlist.ParseString(sb.String())
		if err != nil {
			return nil, err
		}
		return Load(lib, d, DefaultOptions())
	}

	// Fast enable logic: passes, and the enable endpoint has positive
	// finite slack.
	a, err := build(2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("fast gated design slow: %v", rep.WorstSlack())
	}
	ids := a.CD.ElemsOf("l1.en0")
	if len(ids) != 1 {
		t.Fatalf("enable endpoints = %d", len(ids))
	}
	s := rep.Result.InSlack[ids[0]]
	if s == clock.Inf || s <= 0 {
		t.Fatalf("enable endpoint slack = %v", s)
	}
	// The enable must settle before the NEXT phi1 leading edge (0 ≡
	// 100ns) after its ~50.3ns assertion: margin just under 50ns.
	if s > 50*clock.Ns {
		t.Fatalf("enable slack %v implausibly large", s)
	}

	// Slow enable logic (the latch asserts ~50ns, then ~200 buffer delays
	// exceed the ~49.7ns budget): the enable endpoint must be flagged.
	slow, err := build(200)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := slow.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK {
		t.Fatal("slow enable path not flagged")
	}
	ids2 := slow.CD.ElemsOf("l1.en0")
	if rep2.Result.InSlack[ids2[0]] > 0 {
		t.Fatalf("enable endpoint slack = %v, want <= 0", rep2.Result.InSlack[ids2[0]])
	}
}
