// Package core implements the paper's system-level timing-analysis
// algorithms: Algorithm 1 (identification of slow paths via complete and
// partial slack transfer) and Algorithm 2 (timing-constraint generation via
// time snatching), over the elaborated network of internal/cluster and the
// block slack computation of internal/sta.
//
// The analyzer owns the synchronising-element offsets (the Odz degrees of
// freedom of the transparent latches) and drives them to the fixed points
// the paper defines. After Algorithm 1, every synchronising-element
// terminal on a too-slow path has non-positive node slack and all other
// terminals have strictly positive slack (marginally fast paths may be
// flagged slow — a consequence of the simplified element model the paper
// accepts, §6).
package core

import (
	"context"
	"math/bits"
	"time"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/delaycalc"
	"hummingbird/internal/netlist"
	"hummingbird/internal/sta"
	"hummingbird/internal/syncelem"
	"hummingbird/internal/telemetry"
	"hummingbird/internal/telemetry/span"
)

// Options tunes the analyzer.
type Options struct {
	// PartialDivisor is the divisor n > 1 of the §6 partial slack
	// transfers (iterations 3 and 4 of Algorithm 1). Default 2.
	PartialDivisor int64
	// MaxSweeps caps each iteration's sweep count as a safety net. The
	// paper bounds acyclic designs at one more sweep than the number of
	// synchronising elements on a directed path; combinational cycles
	// through latches (§3) circulate their deficit, and a *feasible* loop
	// operating near its critical utilisation can need on the order of
	// W/loop-slack sweeps before the borrowing settles. Default:
	// max(64, 4 × elements); raise it for near-critical loop-heavy
	// designs if the non-convergence error suggests so.
	MaxSweeps int
	// Delay evaluation options for the load model.
	Delay delaycalc.Options
	// Adjustments holds per-instance additive delay adjustments (ps),
	// applied before elaboration — the interactive what-if mode of §8.
	Adjustments map[string]clock.Time
	// Workers sets the worker count of the level-scheduled parallel block
	// analysis: full analyses and sufficiently large incremental
	// recomputes are spread across this many goroutines (see
	// sta.AnalyzeParallel / sta.RecomputeParallel). 0 or 1 keeps every
	// analysis sequential; results are identical either way.
	Workers int
	// FullSweeps disables incremental re-analysis: every fixed-point sweep
	// recomputes every cluster, as the paper's plain formulation does.
	// The default (incremental) recomputes only the clusters adjacent to
	// elements whose offsets moved; results are identical (the A6
	// ablation measures the speed difference).
	FullSweeps bool
	// Trace, when non-nil, receives one structured telemetry.SweepEvent
	// per fixed-point sweep (convergence tracing) and causes the full
	// trajectory to be retained on the Report / Constraints. Leave nil
	// on production hot paths: the untraced per-sweep cost is a ring
	// buffer write with no allocation and no clock read.
	Trace *telemetry.Tracer
}

// DefaultOptions returns the options used by the benchmarks.
func DefaultOptions() Options {
	return Options{PartialDivisor: 2, Delay: delaycalc.DefaultOptions()}
}

// defaultMaxSweeps sizes the sweep safety cap; see Options.MaxSweeps.
func defaultMaxSweeps(elems int) int {
	if n := 4 * elems; n > 64 {
		return n
	}
	return 64
}

// Analyzer binds a design to its compiled timing view and drives the
// timing algorithms. The compiled design (CD) is immutable and may be
// shared with other analyzers; everything the algorithms move — the
// element offsets and scratch — lives in the private analysis state (St).
type Analyzer struct {
	Lib    *celllib.Library // resolved library (base + rolled-up modules)
	Design *netlist.Design
	CD     *cluster.CompiledDesign
	St     *sta.AnalysisState
	Opts   Options

	// dirty/dirtyIDs are sweep's reusable dirty-cluster bitset and sorted
	// id scratch, so fixed-point sweeps stop allocating on the hot path.
	dirty    []uint64
	dirtyIDs []int

	// conv is the convergence trail of the current fixed-point run (see
	// trace.go); reset at the top of IdentifySlowPaths and
	// GenerateConstraints.
	conv convTrail
}

// newAnalyzer wires an analyzer onto a compiled design with a fresh state.
func newAnalyzer(lib *celllib.Library, design *netlist.Design, cd *cluster.CompiledDesign, opts Options) *Analyzer {
	return &Analyzer{
		Lib: lib, Design: design, CD: cd,
		St:    sta.NewState(cd),
		Opts:  opts,
		dirty: make([]uint64, (len(cd.Network.Clusters)+63)/64),
	}
}

// sweep applies op to every element against the current result, then
// refreshes res — incrementally over the touched clusters unless
// FullSweeps is set. It returns how many element offsets moved and how
// many clusters were recomputed. iter and k name the fixed-point
// iteration and the sweep's index within it, labelling the per-sweep
// request span (each sweep of a traced request becomes one "core.sweep"
// child whose own child is the sta recompute it triggered). A nil ctx
// (the legacy entry points) makes the sweep uninterruptible; with a
// context the re-analysis is abandoned mid-sweep on expiry, returning
// the cause — res is then stale and must be discarded.
func (a *Analyzer) sweep(ctx context.Context, iter string, k int, res *sta.Result, op func(ei int, e *syncelem.Element) clock.Time) (*sta.Result, int, int, error) {
	mSweeps.Inc()
	sctx, sp := span.Start(ctx, "core.sweep")
	sp.Annotate("iteration", iter)
	sp.AnnotateInt("sweep", k)
	defer sp.End()
	// The dirty-cluster set is a reusable bitset on the analyzer: one
	// sweep runs per fixed-point step, so a per-call map is hot-path
	// garbage.
	for i := range a.dirty {
		a.dirty[i] = 0
	}
	moved := 0
	for ei, e := range a.CD.Elems {
		if op(ei, e) > 0 {
			moved++
			for _, cl := range a.CD.ElemClusters[ei] {
				a.dirty[cl>>6] |= 1 << (uint(cl) & 63)
			}
		}
	}
	sp.AnnotateInt("moved", moved)
	if moved == 0 {
		return res, 0, 0, nil
	}
	mOffsetsMoved.Add(int64(moved))
	if a.Opts.FullSweeps {
		mFullSweeps.Inc()
		if ctx != nil {
			r, err := sta.AnalyzeParallelContext(sctx, a.CD, a.St, a.Opts.Workers)
			return r, moved, len(a.CD.CC), err
		}
		return sta.AnalyzeParallel(a.CD, a.St, a.Opts.Workers), moved, len(a.CD.CC), nil
	}
	ids := a.dirtyIDs[:0]
	for w, word := range a.dirty {
		for ; word != 0; word &= word - 1 {
			ids = append(ids, w*64+bits.TrailingZeros64(word))
		}
	}
	a.dirtyIDs = ids
	mIncrClusters.Add(int64(len(ids)))
	mIncrSkipped.Add(int64(len(a.CD.CC) - len(ids)))
	if ctx != nil {
		if err := sta.RecomputeParallelContext(sctx, a.CD, a.St, res, ids, a.Opts.Workers); err != nil {
			return nil, moved, len(ids), err
		}
		return res, moved, len(ids), nil
	}
	sta.RecomputeParallel(a.CD, a.St, res, ids, a.Opts.Workers)
	return res, moved, len(ids), nil
}

// Load validates a design, resolves its hierarchy (rolling combinational
// modules up into super-cells, §8's SM1H path), evaluates component delays
// and elaborates the timing network. It is the single entry point the
// executables and examples use.
func Load(lib *celllib.Library, design *netlist.Design, opts Options) (*Analyzer, error) {
	t0 := time.Now()
	defer func() { tLoad.Observe(time.Since(t0)) }()
	if opts.PartialDivisor <= 1 {
		opts.PartialDivisor = 2
	}
	if err := design.Validate(lib); err != nil {
		return nil, err
	}
	resolved := lib
	if len(design.Modules) > 0 {
		ext, err := delaycalc.RollUpModules(lib, design, opts.Delay)
		if err != nil {
			return nil, err
		}
		resolved = ext
	}
	cs, err := design.ClockSet()
	if err != nil {
		return nil, err
	}
	calc, err := delaycalc.New(resolved, design, opts.Delay)
	if err != nil {
		return nil, err
	}
	for inst, delta := range opts.Adjustments {
		calc.Adjust(inst, delta)
	}
	nw, err := cluster.Build(resolved, design, cs, calc)
	if err != nil {
		return nil, err
	}
	if opts.MaxSweeps <= 0 {
		opts.MaxSweeps = defaultMaxSweeps(len(nw.Elems))
	}
	return newAnalyzer(resolved, design, cluster.Compile(nw), opts), nil
}

// LoadFlat is Load for an already-resolved (flat) design with a prebuilt
// network — used by tests that construct networks directly. The network is
// compiled (frozen) here; it must not be mutated afterwards.
func LoadFlat(nw *cluster.Network, opts Options) *Analyzer {
	return LoadCompiled(cluster.Compile(nw), nw.Design, opts)
}

// LoadCompiled binds a new analyzer — with its own fresh AnalysisState —
// onto an existing compiled design, sharing it read-only with whoever else
// holds it. This is how same-design sessions avoid re-elaborating: compile
// once, open many.
func LoadCompiled(cd *cluster.CompiledDesign, design *netlist.Design, opts Options) *Analyzer {
	if opts.PartialDivisor <= 1 {
		opts.PartialDivisor = 2
	}
	if opts.MaxSweeps <= 0 {
		opts.MaxSweeps = defaultMaxSweeps(len(cd.Elems))
	}
	if design == nil {
		design = cd.Design
	}
	return newAnalyzer(cd.Lib, design, cd, opts)
}

// Report is the outcome of Algorithm 1.
type Report struct {
	// OK is true when every path is fast enough (all slacks positive).
	OK bool
	// Result is the final block analysis at the fixed-point offsets.
	Result *sta.Result
	// ForwardSweeps / BackwardSweeps count the complete-transfer cycles of
	// iterations 1 and 2 (the paper's run-time driver: "the number of
	// iterations required ... depend[s] upon the specified clock speeds").
	ForwardSweeps, BackwardSweeps int
	// SlowElems lists the element indices whose terminals ended with
	// non-positive slack (members of too-slow paths).
	SlowElems []int
	// SlowPaths holds one worst path per violated capture terminal.
	SlowPaths []SlowPath
	// Trajectory is the full convergence trace — one event per
	// fixed-point sweep, in execution order. Populated only when
	// Options.Trace is set.
	Trajectory []telemetry.SweepEvent
}

// WorstSlack returns the minimum terminal slack of the final analysis.
func (r *Report) WorstSlack() clock.Time { return r.Result.WorstSlack() }

// allPositive reports whether every element terminal slack is > 0.
func allPositive(res *sta.Result) bool {
	for i := range res.InSlack {
		if res.InSlack[i] <= 0 || res.OutSlack[i] <= 0 {
			return false
		}
	}
	return true
}

// ResetOffsets restores every element's initial offsets (Algorithm 1's
// "select any set of offsets satisfying the synchronising element
// constraints" uses the latest-closure initialisation of syncelem.Build).
func (a *Analyzer) ResetOffsets() { a.St.Reset() }

// IdentifySlowPaths runs Algorithm 1 and returns the report. It cannot be
// interrupted; servers and other callers with deadlines use
// IdentifySlowPathsCtx.
func (a *Analyzer) IdentifySlowPaths() (*Report, error) {
	t0 := time.Now()
	defer func() { tAnalysis.Observe(time.Since(t0)) }()
	return a.identifySlowPathsFrom(nil, sta.AnalyzeParallel(a.CD, a.St, a.Opts.Workers))
}

// IdentifySlowPathsCtx is IdentifySlowPaths with cancellation: the context
// is checked inside every fixed-point sweep (between cluster
// re-analyses), so an expired deadline interrupts even a single
// long-running sweep. The returned error is a *CancelledError wrapping
// the cause.
func (a *Analyzer) IdentifySlowPathsCtx(ctx context.Context) (*Report, error) {
	t0 := time.Now()
	defer func() { tAnalysis.Observe(time.Since(t0)) }()
	res, err := sta.AnalyzeParallelContext(ctx, a.CD, a.St, a.Opts.Workers)
	if err != nil {
		a.conv.reset(a.Opts.Trace != nil)
		return nil, a.cancelled("", 0, err)
	}
	return a.identifySlowPathsFrom(ctx, res)
}

// IdentifySlowPathsFrom runs Algorithm 1 starting from res, which must be
// the block analysis of the network at its current offsets (for example a
// cached result brought up to date with sta.Recompute). res is consumed:
// the fixed point mutates it in place and the report retains it.
func (a *Analyzer) IdentifySlowPathsFrom(res *sta.Result) (*Report, error) {
	t0 := time.Now()
	defer func() { tAnalysis.Observe(time.Since(t0)) }()
	return a.identifySlowPathsFrom(nil, res)
}

// IdentifySlowPathsFromCtx is IdentifySlowPathsFrom with cancellation;
// see IdentifySlowPathsCtx. On error res has been partially mutated and
// must be discarded along with the offsets (call ResetOffsets before
// reusing the analyzer).
func (a *Analyzer) IdentifySlowPathsFromCtx(ctx context.Context, res *sta.Result) (*Report, error) {
	t0 := time.Now()
	defer func() { tAnalysis.Observe(time.Since(t0)) }()
	return a.identifySlowPathsFrom(ctx, res)
}

// identifySlowPathsFrom is Algorithm 1. A nil ctx runs it to completion
// unconditionally; a non-nil ctx makes every sweep interruptible, with
// interruptions surfaced as *CancelledError.
func (a *Analyzer) identifySlowPathsFrom(ctx context.Context, res *sta.Result) (*Report, error) {
	a.conv.reset(a.Opts.Trace != nil)
	rep := &Report{}

	// Iteration 1: complete forward slack transfer to a fixed point.
	for sweep := 0; ; sweep++ {
		if sweep > a.Opts.MaxSweeps {
			return nil, a.nonConverged("forward")
		}
		rep.ForwardSweeps++
		if allPositive(res) {
			return a.finish(rep, res)
		}
		start := a.sweepStart()
		var moved, recomputed int
		var err error
		res, moved, recomputed, err = a.sweep(ctx, "forward", sweep, res, func(ei int, e *syncelem.Element) clock.Time {
			odz, amt := e.CompleteForwardAt(a.St.Odz[ei], res.InSlack[ei])
			a.St.Odz[ei] = odz
			return amt
		})
		if err != nil {
			return nil, a.cancelled("forward", sweep, err)
		}
		a.record("forward", sweep, moved, recomputed, res, start)
		if moved == 0 {
			break
		}
	}

	// Iteration 2: complete backward slack transfer to a fixed point.
	for sweep := 0; ; sweep++ {
		if sweep > a.Opts.MaxSweeps {
			return nil, a.nonConverged("backward")
		}
		rep.BackwardSweeps++
		if allPositive(res) {
			return a.finish(rep, res)
		}
		start := a.sweepStart()
		var moved, recomputed int
		var err error
		res, moved, recomputed, err = a.sweep(ctx, "backward", sweep, res, func(ei int, e *syncelem.Element) clock.Time {
			odz, amt := e.CompleteBackwardAt(a.St.Odz[ei], res.OutSlack[ei])
			a.St.Odz[ei] = odz
			return amt
		})
		if err != nil {
			return nil, a.cancelled("backward", sweep, err)
		}
		a.record("backward", sweep, moved, recomputed, res, start)
		if moved == 0 {
			break
		}
	}

	// Iteration 3: one partial forward transfer per complete backward
	// cycle made; iteration 4: one partial backward per forward cycle.
	// These return some time to every fast-enough path so it ends with
	// strictly positive slack (§6).
	for k := 0; k < rep.BackwardSweeps; k++ {
		start := a.sweepStart()
		var moved, recomputed int
		var err error
		res, moved, recomputed, err = a.sweep(ctx, "partial-forward", k, res, func(ei int, e *syncelem.Element) clock.Time {
			odz, amt := e.PartialForwardAt(a.St.Odz[ei], res.InSlack[ei], a.Opts.PartialDivisor)
			a.St.Odz[ei] = odz
			return amt
		})
		if err != nil {
			return nil, a.cancelled("partial-forward", k, err)
		}
		a.record("partial-forward", k, moved, recomputed, res, start)
	}
	for k := 0; k < rep.ForwardSweeps; k++ {
		start := a.sweepStart()
		var moved, recomputed int
		var err error
		res, moved, recomputed, err = a.sweep(ctx, "partial-backward", k, res, func(ei int, e *syncelem.Element) clock.Time {
			odz, amt := e.PartialBackwardAt(a.St.Odz[ei], res.OutSlack[ei], a.Opts.PartialDivisor)
			a.St.Odz[ei] = odz
			return amt
		})
		if err != nil {
			return nil, a.cancelled("partial-backward", k, err)
		}
		a.record("partial-backward", k, moved, recomputed, res, start)
	}

	// Final step: all node slacks are current in res (sweep keeps them up
	// to date, incrementally or in full).
	return a.finish(rep, res)
}

func (a *Analyzer) finish(rep *Report, res *sta.Result) (*Report, error) {
	rep.Result = res
	rep.OK = allPositive(res)
	rep.Trajectory = a.conv.full
	if !rep.OK {
		for ei := range a.CD.Elems {
			if res.InSlack[ei] <= 0 || res.OutSlack[ei] <= 0 {
				rep.SlowElems = append(rep.SlowElems, ei)
			}
		}
		rep.SlowPaths = a.traceSlowPaths(res)
	}
	return rep, nil
}

// SlowNets returns the names of all nets whose final node slack is
// non-positive — the nets the OCT-flagging option of §8 would mark.
func (a *Analyzer) SlowNets(res *sta.Result) []string {
	var out []string
	for n, s := range res.NetSlack {
		if s <= 0 {
			out = append(out, a.CD.Nets[n])
		}
	}
	return out
}
