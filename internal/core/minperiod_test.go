package core

import (
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/netlist"
	"hummingbird/internal/testlib"
)

func parseDesign(t *testing.T, text string) *netlist.Design {
	t.Helper()
	d, err := netlist.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestScaleClocks(t *testing.T) {
	d := parseDesign(t, `
design s
clock phi period 100ns rise 10ns fall 50ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst g1 BUFD A=IN Y=OUT
end
`)
	s, err := ScaleClocks(d, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clocks[0]
	if c.Period != 50*clock.Ns || c.RiseAt != 5*clock.Ns || c.FallAt != 25*clock.Ns {
		t.Fatalf("scaled clock = %+v", c)
	}
	// The original design is untouched.
	if d.Clocks[0].Period != 100*clock.Ns {
		t.Fatal("source mutated")
	}
	if _, err := ScaleClocks(d, 0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	// Collapsing a pulse to zero width is rejected.
	tiny := parseDesign(t, `
design t
clock phi period 10ns rise 0 fall 1ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst g1 BUFD A=IN Y=OUT
end
`)
	if _, err := ScaleClocks(tiny, 1, 2000); err == nil {
		t.Fatal("degenerate scale accepted")
	}
}

// TestMinFeasiblePeriod: a single-clock FF pipeline with a known chain
// delay. Launch at the fall edge (2/5 of the period), capture one period
// later; with the fixture FF (zero setup, zero Dcz) the constraint is
// period > chain delay, so the minimum feasible period is the chain delay
// (40ns) within resolution.
func TestMinFeasiblePeriod(t *testing.T) {
	lib := testlib.Lib()
	d := parseDesign(t, `
design mp
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 FFD D=IN CK=phi Q=q1
inst g1 D40NS A=q1 Y=n1
inst f2 FFD D=n1 CK=phi Q=q2
inst g2 D1NS A=q2 Y=OUT
end
`)
	got, err := MinFeasiblePeriod(lib, d, Options{}, 10*clock.Ns, 100*clock.Ns, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum is 40ns + epsilon (slack must be strictly positive).
	if got < 40*clock.Ns || got > 41*clock.Ns {
		t.Fatalf("min period = %v, want ~40ns", got)
	}
	// Feasibility brackets the returned value.
	if ok, _ := FeasibleAt(lib, d, Options{}, int64(got), int64(100*clock.Ns)); !ok {
		t.Fatal("returned period infeasible")
	}
	if ok, _ := FeasibleAt(lib, d, Options{}, int64(got-500), int64(100*clock.Ns)); ok {
		t.Fatal("period well below the optimum is feasible")
	}
}

func TestMinFeasiblePeriodErrors(t *testing.T) {
	lib := testlib.Lib()
	d := parseDesign(t, `
design mp2
clock phi period 100ns rise 0 fall 40ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 FFD D=IN CK=phi Q=q1
inst g1 D60NS A=q1 Y=n1
inst f2 FFD D=n1 CK=phi Q=q2
inst g2 D1NS A=q2 Y=OUT
end
`)
	if _, err := MinFeasiblePeriod(lib, d, Options{}, 10*clock.Ns, 50*clock.Ns, 100); err == nil {
		t.Fatal("infeasible-at-hi accepted")
	}
	if _, err := MinFeasiblePeriod(lib, d, Options{}, 0, 50*clock.Ns, 100); err == nil {
		t.Fatal("bad range accepted")
	}
	noClock := netlist.New("none")
	if _, err := MinFeasiblePeriod(lib, noClock, Options{}, 1, 2, 1); err == nil {
		t.Fatal("clockless design accepted")
	}
}

// TestMinFeasiblePeriodBorrowing: with a transparent latch mid-pipeline the
// minimum period is set by the loop constraint rather than a single stage:
// 30ns+30ns of logic around two latch stages fits in one period once the
// period exceeds ~60ns (both stages borrow), far below the 2×-per-stage FF
// bound.
func TestMinFeasiblePeriodBorrowing(t *testing.T) {
	lib := testlib.Lib()
	text := `
design mpb
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge rise offset 0
output OUT clock phi1 edge rise offset 0
inst gx XORD A=IN B=q2b Y=d1
inst l1 LAT D=d1 G=phi1 Q=q1
inst g2 D30NS A=q1 Y=d2
inst l2 LAT D=d2 G=phi2 Q=q2
inst g4 D30NS A=q2 Y=q2b
inst g3 BUFD A=q1 Y=OUT
end
`
	dLatch := parseDesign(t, text)
	latchMin, err := MinFeasiblePeriod(lib, dLatch, Options{}, 20*clock.Ns, 200*clock.Ns, 1*clock.Ns)
	if err != nil {
		t.Fatal(err)
	}
	// The 60.1ns loop must fit within one overall period plus the
	// transparency windows; it is certainly feasible below 100ns and
	// cannot beat the total loop delay.
	if latchMin >= 100*clock.Ns || latchMin <= 60*clock.Ns {
		t.Fatalf("latch pipeline min period = %v", latchMin)
	}
	// The opaque equivalent (FFs) needs roughly a full period per stage:
	// its minimum is substantially larger.
	dFF := parseDesign(t, `
design mpf
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge rise offset 0
output OUT clock phi1 edge rise offset 0
inst gx XORD A=IN B=q2b Y=d1
inst l1 FFD D=d1 CK=phi1 Q=q1
inst g2 D30NS A=q1 Y=d2
inst l2 FFD D=d2 CK=phi2 Q=q2
inst g4 D30NS A=q2 Y=q2b
inst g3 BUFD A=q1 Y=OUT
end
`)
	ffMin, err := MinFeasiblePeriod(lib, dFF, Options{}, 20*clock.Ns, 400*clock.Ns, 1*clock.Ns)
	if err != nil {
		t.Fatal(err)
	}
	if ffMin <= latchMin {
		t.Fatalf("FF pipeline (%v) should need a longer period than the latch pipeline (%v)", ffMin, latchMin)
	}
}

// TestScaleClocksPreservesHarmonicRelation: scaling a multi-frequency set
// by an awkward ratio must keep the periods harmonically related (the
// overall period scales proportionally instead of exploding).
func TestScaleClocksPreservesHarmonicRelation(t *testing.T) {
	d := parseDesign(t, `
design mf
clock slow period 100ns rise 0 fall 40ns
clock fast period 50ns rise 20ns fall 45ns
input IN clock slow edge fall offset 0
output OUT clock slow edge fall offset 0
inst g1 BUFD A=IN Y=OUT
end
`)
	s, err := ScaleClocks(d, 33333, 100000)
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := s.Clocks[0], s.Clocks[1]
	if slow.Period%fast.Period != 0 {
		t.Fatalf("harmonic relation broken: %v vs %v", slow.Period, fast.Period)
	}
	cs, err := clock.NewSet(slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Overall() != slow.Period {
		t.Fatalf("overall %v != slow period %v", cs.Overall(), slow.Period)
	}
	// The scaled design remains analyzable end to end.
	lib := testlib.Lib()
	if _, err := Load(lib, s, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestMinFeasiblePeriodMultiFrequency terminates quickly on a two-frequency
// design (the regression that motivated grid-based scaling).
func TestMinFeasiblePeriodMultiFrequency(t *testing.T) {
	lib := testlib.Lib()
	d := parseDesign(t, `
design mf2
clock slow period 100ns rise 0 fall 40ns
clock fast period 50ns rise 20ns fall 45ns
input IN clock slow edge fall offset 0
output OUT clock slow edge fall offset 0
inst f1 FFD D=IN CK=slow Q=q1
inst g1 D1NS A=q1 Y=n1
inst f2 FFD D=n1 CK=fast Q=q2
inst g2 D1NS A=q2 Y=OUT
end
`)
	p, err := MinFeasiblePeriod(lib, d, Options{}, 1*clock.Ns, 100*clock.Ns, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The binding pair is the slow→fast crossing: launch at slow.fall
	// (2/5 P) into the fast capture at 9/20 P — a window of P/20. The 1ns
	// stage therefore needs P ≳ 20ns.
	if p < 15*clock.Ns || p > 30*clock.Ns {
		t.Fatalf("multi-frequency min period = %v, want ~20ns", p)
	}
}

func TestFeasibleAtMatchesDirectAnalysis(t *testing.T) {
	lib := celllib.Default()
	d := parseDesign(t, `
design fa
clock phi period 10ns rise 0 fall 4ns
input IN clock phi edge fall offset 0
output OUT clock phi edge fall offset 0
inst f1 DFF_X1 D=IN CK=phi Q=q1
inst g1 INV_X1 A=q1 Y=n1
inst f2 DFF_X1 D=n1 CK=phi Q=q2
inst g2 BUF_X1 A=q2 Y=OUT
end
`)
	ok, err := FeasibleAt(lib, d, DefaultOptions(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Load(lib, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if ok != rep.OK {
		t.Fatalf("FeasibleAt=%v, direct=%v", ok, rep.OK)
	}
}
