package core

import (
	"fmt"
	"strings"
	"time"

	"hummingbird/internal/clock"
	"hummingbird/internal/sta"
	"hummingbird/internal/telemetry"
)

// Hot-path instruments of the fixed-point driver. Sweep counts and the
// incremental-vs-full recompute split are the measurements the
// Options.FullSweeps tradeoff (ablation A6) is decided by.
var (
	mSweeps       = telemetry.NewCounter("core.sweeps")
	mOffsetsMoved = telemetry.NewCounter("core.offsets_moved")
	mFullSweeps   = telemetry.NewCounter("core.full_recomputes")
	mIncrClusters = telemetry.NewCounter("core.incremental_clusters")
	mIncrSkipped  = telemetry.NewCounter("core.incremental_clusters_skipped")

	tLoad        = telemetry.NewTimer("phase.load")
	tAnalysis    = telemetry.NewTimer("phase.analysis")
	tConstraints = telemetry.NewTimer("phase.constraints")
)

// trailLen is how many of the most recent sweeps every analysis run
// retains for non-convergence diagnostics, tracing or not.
const trailLen = 6

// convTrail is the convergence-trace state of one fixed-point run: an
// always-on ring of the most recent sweep events (preallocated — the
// untraced path must not allocate per sweep) plus, when a Tracer is
// attached, the full trajectory for the Report.
type convTrail struct {
	ring   [trailLen]telemetry.SweepEvent
	n      int
	retain bool
	full   []telemetry.SweepEvent
}

func (c *convTrail) reset(retain bool) {
	c.n = 0
	c.retain = retain
	c.full = nil
}

func (c *convTrail) add(ev telemetry.SweepEvent) {
	c.ring[c.n%trailLen] = ev
	c.n++
	if c.retain {
		c.full = append(c.full, ev)
	}
}

// tail returns the retained most-recent events, oldest first.
func (c *convTrail) tail() []telemetry.SweepEvent {
	k := c.n
	if k > trailLen {
		k = trailLen
	}
	out := make([]telemetry.SweepEvent, 0, k)
	for i := c.n - k; i < c.n; i++ {
		out = append(out, c.ring[i%trailLen])
	}
	return out
}

// NonConvergenceError reports a fixed-point iteration that exhausted
// Options.MaxSweeps. Trail carries the last few convergence-trajectory
// entries so a user can tell a genuinely diverging configuration from a
// feasible near-critical latch loop (§6: such loops legitimately need
// on the order of W/loop-slack sweeps — raise MaxSweeps for those).
type NonConvergenceError struct {
	// Iteration names the loop that failed to settle (see
	// telemetry.SweepEvent.Iteration).
	Iteration string
	// MaxSweeps is the cap that was exhausted.
	MaxSweeps int
	// Trail holds the trailing sweep events, oldest first.
	Trail []telemetry.SweepEvent
}

func (e *NonConvergenceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %s iteration exceeded %d sweeps (non-convergence); "+
		"a feasible near-critical latch loop may need ~W/loop-slack sweeps — raise Options.MaxSweeps if the trailing slacks are still improving", e.Iteration, e.MaxSweeps)
	if len(e.Trail) > 0 {
		b.WriteString("; trailing sweeps:")
		for _, ev := range e.Trail {
			fmt.Fprintf(&b, " [%s %d: moved %d, recomputed %d, worst %v]",
				ev.Iteration, ev.Sweep, ev.Moved, ev.Recomputed, clock.Time(ev.WorstSlackPs))
		}
	}
	return b.String()
}

// nonConverged builds the error for the named iteration from the
// current trail.
func (a *Analyzer) nonConverged(iter string) error {
	return &NonConvergenceError{Iteration: iter, MaxSweeps: a.Opts.MaxSweeps, Trail: a.conv.tail()}
}

// CancelledError reports a fixed-point run interrupted before it settled —
// a request deadline expired, the caller cancelled, or a fault was
// injected. It carries the same trailing convergence trajectory as
// NonConvergenceError, so the partial progress is visible, and unwraps to
// the cause: errors.Is(err, context.DeadlineExceeded) distinguishes a
// deadline from an explicit cancel.
type CancelledError struct {
	// Iteration names the loop that was interrupted (empty if the
	// interruption hit the initial full analysis, before any sweep).
	Iteration string
	// Sweep is the sweep index within the iteration at interruption.
	Sweep int
	// Trail holds the trailing sweep events, oldest first.
	Trail []telemetry.SweepEvent
	// Cause is the underlying interruption (context cause or injected
	// fault).
	Cause error
}

func (e *CancelledError) Error() string {
	where := "initial analysis"
	if e.Iteration != "" {
		where = fmt.Sprintf("%s iteration, sweep %d", e.Iteration, e.Sweep)
	}
	return fmt.Sprintf("core: analysis cancelled during %s: %v", where, e.Cause)
}

func (e *CancelledError) Unwrap() error { return e.Cause }

// cancelled builds the error for an interruption in the named iteration.
func (a *Analyzer) cancelled(iter string, sweep int, cause error) error {
	return &CancelledError{Iteration: iter, Sweep: sweep, Trail: a.conv.tail(), Cause: cause}
}

// sweepStart reads the clock only when a tracer is attached: untraced
// sweeps never pay for time.Now.
func (a *Analyzer) sweepStart() time.Time {
	if a.Opts.Trace != nil {
		return time.Now()
	}
	return time.Time{}
}

// record captures one sweep's convergence event: always into the ring
// (for error tails), and to the tracer + retained trajectory when
// tracing is on.
func (a *Analyzer) record(iter string, sweep, moved, recomputed int, res *sta.Result, start time.Time) {
	ev := telemetry.SweepEvent{
		Iteration: iter, Sweep: sweep, Moved: moved, Recomputed: recomputed,
		WorstSlackPs: int64(res.WorstSlack()),
	}
	if a.Opts.Trace != nil {
		ev.ElapsedNs = time.Since(start).Nanoseconds()
		a.Opts.Trace.Sweep(ev)
	}
	a.conv.add(ev)
}
