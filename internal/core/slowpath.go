package core

import (
	"sort"

	"hummingbird/internal/breakopen"
	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/sta"
)

// SlowPath is one too-slow combinational path: the worst path into one
// violated capture terminal, traced back through the nodes that determined
// its ready time.
type SlowPath struct {
	// Cluster is the owning cluster id; Pass the analysis pass index.
	Cluster, Pass int
	// FromElem / ToElem are network element indices: the launching
	// synchronising-element occurrence and the violated capture occurrence.
	FromElem, ToElem int
	// Nets is the path's net id sequence, launch net first.
	Nets []int
	// Insts is the instance sequence realising the path's arcs
	// (len(Nets)-1 entries).
	Insts []string
	// Slack is the violated terminal's node slack (non-positive).
	Slack clock.Time
	// Delay is the traced path's propagation delay.
	Delay clock.Time
}

// traceSlowPaths extracts one worst path per violated capture terminal.
func (a *Analyzer) traceSlowPaths(res *sta.Result) []SlowPath {
	return a.tracePaths(res, func(slack clock.Time) bool { return slack <= 0 })
}

// WorstPaths traces the critical (ready-time-determining) path into every
// capture terminal — violated or not — and returns the n tightest, most
// critical first. This is the conventional per-endpoint timing report; with
// n <= 0 every traceable endpoint is returned.
func (a *Analyzer) WorstPaths(res *sta.Result, n int) []SlowPath {
	paths := a.tracePaths(res, func(clock.Time) bool { return true })
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].Slack != paths[j].Slack {
			return paths[i].Slack < paths[j].Slack
		}
		return paths[i].ToElem < paths[j].ToElem
	})
	if n > 0 && len(paths) > n {
		paths = paths[:n]
	}
	return paths
}

// tracePaths walks every capture terminal whose slack the filter selects.
func (a *Analyzer) tracePaths(res *sta.Result, want func(clock.Time) bool) []SlowPath {
	nw := a.CD.Network
	var paths []SlowPath
	for _, cl := range nw.Clusters {
		// Reverse adjacency within the cluster.
		inArcs := map[int][]int{}
		for ai := range cl.Arcs {
			inArcs[cl.Arcs[ai].To] = append(inArcs[cl.Arcs[ai].To], ai)
		}
		for oi, out := range cl.Outputs {
			if res.InSlack[out.Elem] == clock.Inf || !want(res.InSlack[out.Elem]) {
				continue
			}
			pi, ok := cl.Plan.Assign[oi]
			if !ok {
				continue
			}
			detail := findPass(res, cl.ID, pi)
			if detail == nil {
				continue
			}
			if p, ok := a.traceOne(cl, detail, inArcs, out, res.InSlack[out.Elem]); ok {
				paths = append(paths, p)
			}
		}
	}
	return paths
}

func findPass(res *sta.Result, clusterID, pass int) *sta.PassDetail {
	for i := range res.Passes {
		if res.Passes[i].Cluster == clusterID && res.Passes[i].Pass == pass {
			return &res.Passes[i]
		}
	}
	return nil
}

// traceOne walks back from the violated output along the arcs that
// determined the critical ready time.
func (a *Analyzer) traceOne(cl *cluster.Cluster, d *sta.PassDetail, inArcs map[int][]int, out cluster.Out, slack clock.Time) (SlowPath, bool) {
	nw := a.CD.Network
	T := nw.Clocks.Overall()
	local := func(net int) int { return cl.LocalIndex(net) }

	cur := out.Net
	// Critical transition: the later of rise/fall ready.
	rise := d.ReadyR[local(cur)] >= d.ReadyF[local(cur)]
	ready := func(net int, r bool) clock.Time {
		if r {
			return d.ReadyR[local(net)]
		}
		return d.ReadyF[local(net)]
	}
	start := ready(cur, rise)
	nets := []int{cur}
	var insts []string

	for steps := 0; steps <= len(cl.Arcs)+1; steps++ {
		target := ready(cur, rise)
		advanced := false
		for _, ai := range inArcs[cur] {
			arc := &cl.Arcs[ai]
			// Which input transition feeds this output transition, and
			// with what delay?
			var srcRise bool
			var delay clock.Time
			switch arc.Sense {
			case celllib.PositiveUnate:
				srcRise = rise
			case celllib.NegativeUnate:
				srcRise = !rise
			default: // NonUnate: pick the later source transition
				srcRise = ready(arc.From, true) >= ready(arc.From, false)
			}
			if rise {
				delay = arc.D.MaxRise
			} else {
				delay = arc.D.MaxFall
			}
			src := ready(arc.From, srcRise)
			if src == -clock.Inf {
				continue
			}
			if src+delay == target {
				nets = append(nets, arc.From)
				insts = append(insts, arc.Inst)
				cur = arc.From
				rise = srcRise
				advanced = true
				break
			}
		}
		if !advanced {
			break
		}
	}

	// The trace should have ended at a cluster input whose assertion time
	// equals the remaining ready value.
	endReady := ready(cur, rise)
	fromElem := -1
	for _, in := range cl.Inputs {
		if in.Net != cur {
			continue
		}
		e := nw.Elems[in.Elem]
		assert := breakopen.AssertPos(e.IdealAssert, d.Beta, T) + e.OutputOffsetAt(a.St.Odz[in.Elem])
		if assert == endReady {
			fromElem = in.Elem
			break
		}
	}
	if fromElem < 0 {
		return SlowPath{}, false
	}
	// Reverse to launch-first order.
	for i, j := 0, len(nets)-1; i < j; i, j = i+1, j-1 {
		nets[i], nets[j] = nets[j], nets[i]
	}
	for i, j := 0, len(insts)-1; i < j; i, j = i+1, j-1 {
		insts[i], insts[j] = insts[j], insts[i]
	}
	return SlowPath{
		Cluster: cl.ID, Pass: d.Pass,
		FromElem: fromElem, ToElem: out.Elem,
		Nets: nets, Insts: insts,
		Slack: slack, Delay: start - endReady,
	}, true
}
