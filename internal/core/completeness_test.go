package core

// Completeness of the slack-transfer search: Algorithm 1 accepts a design
// if and only if some assignment of the transparent-latch offsets satisfies
// every constraint (§4's proposition). The test compares Algorithm 1's
// verdict against an exhaustive grid search over the Odz degrees of freedom
// of small random pipelines, using the same block evaluator (sta.Analyze)
// for both — so it checks the *search*, not the evaluator.

import (
	"fmt"
	"math/rand"
	"testing"

	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/sta"
	"hummingbird/internal/testlib"
)

// gridFeasible exhaustively scans the DOFs in `step` increments and reports
// whether any assignment leaves every terminal slack strictly positive.
func gridFeasible(t *testing.T, text string, step clock.Time) bool {
	net := testlib.Network(t, text)
	cd := cluster.Compile(net)
	st := sta.NewState(cd)
	var dofs []int
	for ei, e := range net.Elems {
		if e.HasDOF() {
			dofs = append(dofs, ei)
		}
	}
	var scan func(k int) bool
	scan = func(k int) bool {
		if k == len(dofs) {
			res := sta.Analyze(cd, st)
			for i := range res.InSlack {
				if res.InSlack[i] <= 0 || res.OutSlack[i] <= 0 {
					return false
				}
			}
			return true
		}
		e := net.Elems[dofs[k]]
		for v := e.OdzMin(); v <= e.OdzMax(); v += step {
			st.Odz[dofs[k]] = v
			if scan(k + 1) {
				return true
			}
		}
		// Include the exact upper bound.
		st.Odz[dofs[k]] = e.OdzMax()
		return scan(k + 1)
	}
	return scan(0)
}

// TestAlgorithm1Completeness: whenever the grid finds a strictly positive
// assignment, Algorithm 1 must reach timing closure too.
func TestAlgorithm1Completeness(t *testing.T) {
	delays := []string{"D1NS", "D5NS", "D10NS", "D20NS", "D30NS", "D40NS", "D55NS", "D60NS"}
	r := rand.New(rand.NewSource(20260704))
	agreeOK, agreeSlow := 0, 0
	for trial := 0; trial < 40; trial++ {
		// Random 2-latch pipeline: IN -> d0 -> LAT(phi1) -> d1 ->
		// LAT(phi2) -> d2 -> FF(phi1).
		d0 := delays[r.Intn(len(delays))]
		d1 := delays[r.Intn(len(delays))]
		d2 := delays[r.Intn(len(delays))]
		text := fmt.Sprintf(`
design comp
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi2 edge fall offset 0
output OUT clock phi1 edge fall offset 0
inst g0 %s A=IN Y=n0
inst l1 LAT D=n0 G=phi1 Q=q1
inst g1 %s A=q1 Y=n1
inst l2 LAT D=n1 G=phi2 Q=q2
inst g2 %s A=q2 Y=n2
inst f3 FFD D=n2 CK=phi1 Q=q3
inst g3 D1NS A=q3 Y=OUT
end
`, d0, d1, d2)

		a := LoadFlat(testlib.Network(t, text), Options{})
		rep, err := a.IdentifySlowPaths()
		if err != nil {
			t.Fatal(err)
		}
		feasible := gridFeasible(t, text, 1*clock.Ns)
		if feasible && !rep.OK {
			t.Fatalf("trial %d (%s,%s,%s): grid found a satisfying assignment but Algorithm 1 reported slow (worst %v)",
				trial, d0, d1, d2, rep.WorstSlack())
		}
		// The converse: Algorithm 1's fixed-point offsets are themselves a
		// witness — already asserted by rep.OK ⇒ allPositive. Count
		// agreement for reporting.
		if rep.OK {
			agreeOK++
		} else {
			agreeSlow++
		}
		// Soundness spot-check: when Algorithm 1 says OK, its final
		// offsets satisfy the element constraints.
		if rep.OK {
			for ei, e := range a.CD.Elems {
				if err := e.ValidateAt(a.St.Odz[ei]); err != nil {
					t.Fatalf("trial %d: fixed point violates element constraints: %v", trial, err)
				}
			}
		}
	}
	if agreeOK == 0 || agreeSlow == 0 {
		t.Fatalf("degenerate trial mix: %d ok, %d slow — fixture delays need retuning", agreeOK, agreeSlow)
	}
}

// TestAlgorithm1CompletenessCycle: the same completeness check on the
// two-latch loop topology (§3's directed cycle through latches), where the
// two DOFs genuinely interact.
func TestAlgorithm1CompletenessCycle(t *testing.T) {
	delays := []string{"D10NS", "D20NS", "D30NS", "D40NS", "D55NS", "D60NS"}
	r := rand.New(rand.NewSource(77))
	okSeen, slowSeen := false, false
	for trial := 0; trial < 25; trial++ {
		dA := delays[r.Intn(len(delays))]
		dB := delays[r.Intn(len(delays))]
		text := fmt.Sprintf(`
design loopc
clock phi1 period 100ns rise 0 fall 40ns
clock phi2 period 100ns rise 50ns fall 90ns
input IN clock phi1 edge rise offset 0
output OUT clock phi1 edge rise offset 0
inst gx XORD A=IN B=fb Y=d1
inst l1 LAT D=d1 G=phi1 Q=q1
inst ga %s A=q1 Y=d2
inst l2 LAT D=d2 G=phi2 Q=q2
inst gb %s A=q2 Y=fb
inst g3 BUFD A=q1 Y=OUT
end
`, dA, dB)
		a := LoadFlat(testlib.Network(t, text), Options{})
		rep, err := a.IdentifySlowPaths()
		if err != nil {
			t.Fatal(err)
		}
		feasible := gridFeasible(t, text, 1*clock.Ns)
		if feasible && !rep.OK {
			t.Fatalf("trial %d (%s,%s): grid feasible but Algorithm 1 slow (worst %v)",
				trial, dA, dB, rep.WorstSlack())
		}
		if rep.OK {
			okSeen = true
		} else {
			slowSeen = true
		}
	}
	if !okSeen || !slowSeen {
		t.Fatal("degenerate loop trial mix")
	}
}
