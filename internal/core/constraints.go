package core

import (
	"context"
	"time"

	"hummingbird/internal/clock"
	"hummingbird/internal/sta"
	"hummingbird/internal/syncelem"
	"hummingbird/internal/telemetry"
)

// Constraints is Algorithm 2's output: signal ready times (traced forward,
// iteration 1) and required times (traced backward, iteration 2) for every
// net, per cluster analysis pass, in that pass's window coordinates.
//
// For every node on a too-slow path these are the *actual* times; for every
// other node they are an upper bound on the ready time and a lower bound on
// the required time such that, for any two nodes on a combinational path,
// the difference exceeds the path delay (§3). A re-synthesis tool may speed
// any path up to meet them, or slow a fast path down within them.
type Constraints struct {
	// Ready holds the pass details after the backward-snatch fixed point;
	// its ReadyR/ReadyF fields are the recorded ready times at all cell
	// inputs.
	Ready []sta.PassDetail
	// Required holds the pass details after the forward-snatch fixed
	// point; its ReqR/ReqF fields are the recorded required times at all
	// cell outputs.
	Required []sta.PassDetail
	// BackwardSnatches and ForwardSnatches count the fixed-point sweeps.
	BackwardSnatches, ForwardSnatches int
	// Trajectory is the convergence trace of the snatch iterations, one
	// event per sweep. Populated only when Options.Trace is set.
	Trajectory []telemetry.SweepEvent
}

// GenerateConstraints runs Algorithm 2. The analyzer's offsets should
// already be at Algorithm 1's fixed point (Initialise: "Use Algorithm 1 to
// generate initial offsets"); call IdentifySlowPaths first.
func (a *Analyzer) GenerateConstraints() (*Constraints, error) {
	t0 := time.Now()
	defer func() { tConstraints.Observe(time.Since(t0)) }()
	return a.generateConstraintsFrom(nil, sta.Analyze(a.CD, a.St))
}

// GenerateConstraintsCtx is GenerateConstraints with cancellation, checked
// inside every snatch sweep; interruptions surface as *CancelledError.
// On error the element offsets have moved and must be restored (or the
// analyzer reloaded) before further use.
func (a *Analyzer) GenerateConstraintsCtx(ctx context.Context) (*Constraints, error) {
	t0 := time.Now()
	defer func() { tConstraints.Observe(time.Since(t0)) }()
	res, err := sta.AnalyzeContext(ctx, a.CD, a.St)
	if err != nil {
		a.conv.reset(a.Opts.Trace != nil)
		return nil, a.cancelled("", 0, err)
	}
	return a.generateConstraintsFrom(ctx, res)
}

// GenerateConstraintsFrom runs Algorithm 2 starting from res, which must be
// the block analysis of the network at the current (post-Algorithm-1)
// offsets — typically a clone of the Report's final Result. res is consumed:
// the snatch fixed points mutate it in place. Note the snatches also move
// the element offsets; callers that want to keep using the Algorithm-1
// fixed point must save and restore the offsets around this call.
func (a *Analyzer) GenerateConstraintsFrom(res *sta.Result) (*Constraints, error) {
	t0 := time.Now()
	defer func() { tConstraints.Observe(time.Since(t0)) }()
	return a.generateConstraintsFrom(nil, res)
}

// GenerateConstraintsFromCtx is GenerateConstraintsFrom with
// cancellation; see GenerateConstraintsCtx.
func (a *Analyzer) GenerateConstraintsFromCtx(ctx context.Context, res *sta.Result) (*Constraints, error) {
	t0 := time.Now()
	defer func() { tConstraints.Observe(time.Since(t0)) }()
	return a.generateConstraintsFrom(ctx, res)
}

// generateConstraintsFrom is Algorithm 2. A nil ctx runs it to completion
// unconditionally; a non-nil ctx makes every sweep interruptible.
func (a *Analyzer) generateConstraintsFrom(ctx context.Context, res *sta.Result) (*Constraints, error) {
	a.conv.reset(a.Opts.Trace != nil)
	c := &Constraints{}

	// Iteration 1: snatch time backward across all synchronising elements
	// until none is snatched; this traces actual ready times forward
	// through the network, stopping when the actual times have been found
	// for nodes in paths that are too slow.
	for sweep := 0; ; sweep++ {
		if sweep > a.Opts.MaxSweeps {
			return nil, a.nonConverged("snatch-backward")
		}
		c.BackwardSnatches++
		start := a.sweepStart()
		var moved, recomputed int
		var err error
		res, moved, recomputed, err = a.sweep(ctx, "snatch-backward", sweep, res, func(ei int, e *syncelem.Element) clock.Time {
			odz, amt := e.SnatchBackwardAt(a.St.Odz[ei], res.InSlack[ei])
			a.St.Odz[ei] = odz
			return amt
		})
		if err != nil {
			return nil, a.cancelled("snatch-backward", sweep, err)
		}
		a.record("snatch-backward", sweep, moved, recomputed, res, start)
		if moved == 0 {
			c.Ready = append([]sta.PassDetail(nil), res.Passes...)
			break
		}
	}

	// Iteration 2: snatch time forward until none; traces required times
	// backwards.
	for sweep := 0; ; sweep++ {
		if sweep > a.Opts.MaxSweeps {
			return nil, a.nonConverged("snatch-forward")
		}
		c.ForwardSnatches++
		start := a.sweepStart()
		var moved, recomputed int
		var err error
		res, moved, recomputed, err = a.sweep(ctx, "snatch-forward", sweep, res, func(ei int, e *syncelem.Element) clock.Time {
			odz, amt := e.SnatchForwardAt(a.St.Odz[ei], res.OutSlack[ei])
			a.St.Odz[ei] = odz
			return amt
		})
		if err != nil {
			return nil, a.cancelled("snatch-forward", sweep, err)
		}
		a.record("snatch-forward", sweep, moved, recomputed, res, start)
		if moved == 0 {
			c.Required = append([]sta.PassDetail(nil), res.Passes...)
			break
		}
	}
	c.Trajectory = a.conv.full
	return c, nil
}

// NetTimes is the recorded timing of one net in one analysis pass.
type NetTimes struct {
	Cluster, Pass        int
	Beta                 clock.Time
	ReadyRise, ReadyFall clock.Time
	ReqRise, ReqFall     clock.Time
}

// Ready returns the later of the recorded rise/fall ready times.
func (n NetTimes) Ready() clock.Time {
	if n.ReadyRise > n.ReadyFall {
		return n.ReadyRise
	}
	return n.ReadyFall
}

// Required returns the earlier of the recorded rise/fall required times.
func (n NetTimes) Required() clock.Time {
	if n.ReqRise < n.ReqFall {
		return n.ReqRise
	}
	return n.ReqFall
}

// NetTimes collects the per-pass recorded times of one net (global id).
func (c *Constraints) NetTimes(net int) []NetTimes {
	var out []NetTimes
	for pi := range c.Ready {
		rp := &c.Ready[pi]
		var qp *sta.PassDetail
		for qi := range c.Required {
			if c.Required[qi].Cluster == rp.Cluster && c.Required[qi].Pass == rp.Pass {
				qp = &c.Required[qi]
				break
			}
		}
		if qp == nil {
			continue
		}
		for li, id := range rp.Nets {
			if id != net {
				continue
			}
			out = append(out, NetTimes{
				Cluster: rp.Cluster, Pass: rp.Pass, Beta: rp.Beta,
				ReadyRise: rp.ReadyR[li], ReadyFall: rp.ReadyF[li],
				ReqRise: qp.ReqR[li], ReqFall: qp.ReqF[li],
			})
		}
	}
	return out
}

// Allowed returns the tightest delay budget between two nets over all
// passes where both are analyzed: min over passes of (required(to) −
// ready(from)). A combinational path from→to is fast enough whenever its
// worst delay does not exceed this budget. Returns +Inf if the pair never
// appears in a common pass.
func (c *Constraints) Allowed(from, to int) clock.Time {
	budget := clock.Inf
	for pi := range c.Ready {
		rp := &c.Ready[pi]
		var qp *sta.PassDetail
		for qi := range c.Required {
			if c.Required[qi].Cluster == rp.Cluster && c.Required[qi].Pass == rp.Pass {
				qp = &c.Required[qi]
				break
			}
		}
		if qp == nil {
			continue
		}
		fi, ti := -1, -1
		for li, id := range rp.Nets {
			if id == from {
				fi = li
			}
			if id == to {
				ti = li
			}
		}
		if fi < 0 || ti < 0 {
			continue
		}
		ready := rp.ReadyR[fi]
		if rp.ReadyF[fi] > ready {
			ready = rp.ReadyF[fi]
		}
		req := qp.ReqR[ti]
		if qp.ReqF[ti] < req {
			req = qp.ReqF[ti]
		}
		if ready == -clock.Inf || req == clock.Inf {
			continue
		}
		if b := req - ready; b < budget {
			budget = b
		}
	}
	return budget
}
