package core

import (
	"fmt"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/netlist"
)

// ScaleClocks returns a copy of the design whose clock waveforms are scaled
// by num/den — the §8 interactive mode's "changes may be made to the shapes
// of the clock waveforms" as a bulk operation.
//
// Scaling must preserve the §3 harmonic relation between the periods;
// rounding each period independently would break it and make the overall
// period (the LCM) explode. All periods are therefore expressed on their
// common grid G = gcd(periods): the grid is scaled and rounded once, and
// every period is rebuilt as its exact multiple of the scaled grid. Phases
// are rounded independently (they carry no harmonic constraint). An error
// is reported if scaling collapses the grid or a pulse.
func ScaleClocks(design *netlist.Design, num, den int64) (*netlist.Design, error) {
	if num <= 0 || den <= 0 {
		return nil, fmt.Errorf("core: scale %d/%d must be positive", num, den)
	}
	if len(design.Clocks) == 0 {
		return nil, fmt.Errorf("core: design %s has no clocks to scale", design.Name)
	}
	var g clock.Time
	for _, c := range design.Clocks {
		g = gcdT(g, c.Period)
	}
	gScaled := g * clock.Time(num) / clock.Time(den)
	if gScaled <= 0 {
		return nil, fmt.Errorf("core: scale %d/%d collapses the clock grid %v", num, den, g)
	}
	d := *design
	d.Clocks = append([]clock.Signal(nil), design.Clocks...)
	for i := range d.Clocks {
		c := &d.Clocks[i]
		c.Period = (c.Period / g) * gScaled
		c.RiseAt = c.RiseAt * clock.Time(num) / clock.Time(den)
		c.FallAt = c.FallAt * clock.Time(num) / clock.Time(den)
		// Rounding may land a phase exactly on the (smaller) period.
		if c.RiseAt >= c.Period {
			c.RiseAt = c.Period - 1
		}
		if c.FallAt >= c.Period {
			c.FallAt = c.Period - 1
		}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("core: scaling %d/%d: %w", num, den, err)
		}
	}
	return &d, nil
}

func gcdT(a, b clock.Time) clock.Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// FeasibleAt reports whether the design meets timing with its clocks scaled
// by num/den.
func FeasibleAt(lib *celllib.Library, design *netlist.Design, opts Options, num, den int64) (bool, error) {
	scaled, err := ScaleClocks(design, num, den)
	if err != nil {
		return false, err
	}
	a, err := Load(lib, scaled, opts)
	if err != nil {
		return false, err
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		return false, err
	}
	return rep.OK, nil
}

// MinFeasiblePeriod binary-searches the smallest overall clock period (in
// picoseconds, at the given resolution) at which the design meets timing,
// scaling every clock waveform proportionally. It returns the period of
// the design's *first* clock at the feasible optimum. The search assumes
// feasibility is monotone in the scale — true for proportional scaling,
// since every window grows with the period while component delays stay
// fixed. Returns an error if the design is infeasible even at hi.
func MinFeasiblePeriod(lib *celllib.Library, design *netlist.Design, opts Options, lo, hi, resolution clock.Time) (clock.Time, error) {
	if len(design.Clocks) == 0 {
		return 0, fmt.Errorf("core: design %s has no clocks", design.Name)
	}
	if resolution <= 0 {
		resolution = 1
	}
	base := design.Clocks[0].Period
	if lo <= 0 || hi < lo {
		return 0, fmt.Errorf("core: bad search range [%v, %v]", lo, hi)
	}
	ok, err := FeasibleAt(lib, design, opts, int64(hi), int64(base))
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("core: design %s infeasible even at period %v", design.Name, hi)
	}
	// Invariant: feasible at hi; unknown at lo (tested first).
	if ok, err = FeasibleAt(lib, design, opts, int64(lo), int64(base)); err != nil {
		// Degenerate scaled waveforms at the low end count as infeasible.
		ok = false
	}
	if ok {
		return lo, nil
	}
	for hi-lo > resolution {
		mid := lo + (hi-lo)/2
		ok, err := FeasibleAt(lib, design, opts, int64(mid), int64(base))
		if err != nil {
			ok = false
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
