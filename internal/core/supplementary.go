package core

import (
	"hummingbird/internal/breakopen"
	"hummingbird/internal/clock"
	"hummingbird/internal/sta"
)

// SupplementaryViolation reports one violated supplementary path constraint
// (§4): the signal at a data input was updated more than one controlling
// clock period before the input closure time — the fast-path /
// double-clocking hazard. The paper defines these constraints but its
// algorithms do not check them ("Our algorithms do not detect these
// problems"); this check is a documented extension of the reproduction.
type SupplementaryViolation struct {
	Cluster  int
	FromElem int // launching occurrence
	ToElem   int // capturing occurrence
	// MinDelay is the fastest path delay between the two terminals.
	MinDelay clock.Time
	// Bound is the required strict lower bound D_p − O_x + O_y − T_β.
	Bound clock.Time
}

// CheckSupplementary evaluates dmin_p > D_p − O_x + O_y − T_β for every
// launch/capture pair of every cluster, at the current offsets, where T_β
// is the capturing element's controlling clock period. The constraint is
// checked in the capture occurrence's assigned pass window, where
// (D_p − O_x + O_y) is exactly closure position − assertion position.
func (a *Analyzer) CheckSupplementary() []SupplementaryViolation {
	nw := a.CD.Network
	T := nw.Clocks.Overall()
	var out []SupplementaryViolation
	for _, cl := range nw.Clusters {
		for oi, o := range cl.Outputs {
			pi, ok := cl.Plan.Assign[oi]
			if !ok {
				continue
			}
			beta := cl.Plan.Breaks[pi]
			capt := nw.Elems[o.Elem]
			period := nw.Clocks.Signal(capt.Sig).Period
			cpos := breakopen.ClosePos(capt.IdealClose, beta, T) + capt.InputOffsetAt(a.St.Odz[o.Elem])
			for ii, in := range cl.Inputs {
				if !cl.Reach[ii][oi] {
					continue
				}
				launch := nw.Elems[in.Elem]
				apos := breakopen.AssertPos(launch.IdealAssert, beta, T) + launch.OutputOffsetAt(a.St.Odz[in.Elem])
				bound := cpos - apos - period
				if bound < 0 {
					continue // trivially satisfied: dmin >= 0 > bound
				}
				dmin := sta.PathDelayMin(cl, in.Net, o.Net)
				if dmin < 0 {
					continue // no structural path
				}
				if dmin <= bound {
					out = append(out, SupplementaryViolation{
						Cluster:  cl.ID,
						FromElem: in.Elem,
						ToElem:   o.Elem,
						MinDelay: dmin,
						Bound:    bound,
					})
				}
			}
		}
	}
	return out
}
