// Package flight is the fleet's flight recorder: a bounded in-memory
// ring of structured lifecycle events — failover begin/end, migration
// step outcomes, 409-realign backoff arming, quarantine, membership
// mutation, reconcile double-claim resolutions — each carrying a
// severity, the emitting replica, the session involved, and the trace
// id of the operation that produced it, so an event timeline can be
// cross-referenced with the distributed span trees.
//
// Both the daemon and the router own a Recorder and expose it at
// GET /events?since=&session=. Every Recorder method is nil-safe, so
// call sites record unconditionally; a nil recorder costs one branch.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hummingbird/internal/telemetry"
)

// Severities. Free-form strings on the wire; these three are the ones
// the system emits.
const (
	Info  = "info"
	Warn  = "warn"
	Error = "error"
)

// Event is one recorded lifecycle event. Seq increases by one per
// event per recorder and never resets, so pollers resume with
// ?since=<last seen seq>.
type Event struct {
	Seq        int64  `json:"seq"`
	TimeUnixNs int64  `json:"timeUnixNs"`
	Severity   string `json:"severity"`
	Kind       string `json:"kind"`
	Replica    string `json:"replica,omitempty"`
	Session    string `json:"session,omitempty"`
	Trace      string `json:"trace,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

var eventsRecorded = telemetry.NewCounter("flight.events_recorded")

// Recorder is a bounded ring of events. The zero value is unusable;
// construct with NewRecorder. All methods are safe for concurrent use
// and on a nil receiver.
type Recorder struct {
	replica string

	mu   sync.Mutex
	buf  []Event // ring storage, len == cap once full
	next int64   // seq of the next event to be recorded
}

// DefaultCapacity is the ring size used when NewRecorder is given a
// non-positive capacity.
const DefaultCapacity = 512

// NewRecorder returns a recorder attributing events to the given
// replica name ("router" for the fleet router).
func NewRecorder(replica string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{replica: replica, buf: make([]Event, 0, capacity)}
}

// Record appends an event. detail is a Sprintf format string.
func (r *Recorder) Record(severity, kind, session, trace, detail string, args ...any) {
	if r == nil {
		return
	}
	if len(args) > 0 {
		detail = fmt.Sprintf(detail, args...)
	}
	eventsRecorded.Inc()
	r.mu.Lock()
	ev := Event{
		Seq:        r.next,
		TimeUnixNs: time.Now().UnixNano(),
		Severity:   severity,
		Kind:       kind,
		Replica:    r.replica,
		Session:    session,
		Trace:      trace,
		Detail:     detail,
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next%int64(cap(r.buf))] = ev
	}
	r.next++
	r.mu.Unlock()
}

// Since returns, oldest first, the retained events with Seq >= since,
// optionally filtered to one session, and the seq the caller should
// pass next (one past the newest recorded event).
func (r *Recorder) Since(since int64, session string) ([]Event, int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int64(len(r.buf))
	if n == 0 {
		return nil, r.next
	}
	oldest := r.next - n
	if since < oldest {
		since = oldest
	}
	var out []Event
	for seq := since; seq < r.next; seq++ {
		ev := r.buf[seq%int64(cap(r.buf))]
		if session != "" && ev.Session != session {
			continue
		}
		out = append(out, ev)
	}
	return out, r.next
}

// Tail returns the newest n events, oldest first.
func (r *Recorder) Tail(n int) []Event {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	from := r.next - int64(n)
	r.mu.Unlock()
	if from < 0 {
		from = 0
	}
	evs, _ := r.Since(from, "")
	return evs
}

// WriteText renders the newest n events one per line — appended to the
// slow-request log after the span tree, so a slow request's dump
// carries the fleet events that surrounded it.
func (r *Recorder) WriteText(w io.Writer, n int) {
	for _, ev := range r.Tail(n) {
		ts := time.Unix(0, ev.TimeUnixNs).UTC().Format("15:04:05.000")
		fmt.Fprintf(w, "  [%s] %s %s %s", ts, ev.Severity, ev.Replica, ev.Kind)
		if ev.Session != "" {
			fmt.Fprintf(w, " session=%s", ev.Session)
		}
		if ev.Trace != "" {
			fmt.Fprintf(w, " trace=%s", ev.Trace)
		}
		if ev.Detail != "" {
			fmt.Fprintf(w, " %s", ev.Detail)
		}
		fmt.Fprintln(w)
	}
}

// eventsResponse is the GET /events payload.
type eventsResponse struct {
	Replica string  `json:"replica"`
	Next    int64   `json:"next"`
	Events  []Event `json:"events"`
}

// ServeHTTP implements GET /events?since=<seq>&session=<id>&limit=<n>.
// The response's next field is the since value that resumes polling
// without gaps or duplicates.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		http.Error(w, `{"error":"flight recorder disabled"}`, http.StatusNotFound)
		return
	}
	var since int64
	if v := req.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, `{"error":"bad since"}`, http.StatusBadRequest)
			return
		}
		since = n
	}
	events, next := r.Since(since, req.URL.Query().Get("session"))
	if v := req.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, `{"error":"bad limit"}`, http.StatusBadRequest)
			return
		}
		if len(events) > n {
			events = events[len(events)-n:]
		}
	}
	if events == nil {
		events = []Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(eventsResponse{Replica: r.replica, Next: next, Events: events})
}
