package flight

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRecordSinceAndWrap(t *testing.T) {
	r := NewRecorder("r1", 4)
	for i := 0; i < 6; i++ {
		r.Record(Info, "k", fmt.Sprintf("s%d", i%2), "", "event %d", i)
	}
	// Capacity 4, 6 recorded: seqs 2..5 retained.
	evs, next := r.Since(0, "")
	if next != 6 || len(evs) != 4 {
		t.Fatalf("next=%d events=%d, want 6/4", next, len(evs))
	}
	if evs[0].Seq != 2 || evs[3].Seq != 5 {
		t.Fatalf("retained seqs %d..%d, want 2..5", evs[0].Seq, evs[3].Seq)
	}
	if evs[0].Detail != "event 2" || evs[0].Replica != "r1" {
		t.Fatalf("event content: %+v", evs[0])
	}
	// since resumes without duplicates.
	evs2, _ := r.Since(4, "")
	if len(evs2) != 2 || evs2[0].Seq != 4 {
		t.Fatalf("since=4 → %+v", evs2)
	}
	// Session filter.
	only, _ := r.Since(0, "s1")
	for _, ev := range only {
		if ev.Session != "s1" {
			t.Fatalf("filter leaked %+v", ev)
		}
	}
	if len(only) != 2 {
		t.Fatalf("s1 events = %d, want 2", len(only))
	}
}

func TestTailAndWriteText(t *testing.T) {
	r := NewRecorder("router", 8)
	r.Record(Warn, "failover.begin", "sess-1", "tr-9", "standby=%s seq=%d", "r2", 41)
	r.Record(Info, "failover.end", "sess-1", "tr-9", "")
	tail := r.Tail(1)
	if len(tail) != 1 || tail[0].Kind != "failover.end" {
		t.Fatalf("tail = %+v", tail)
	}
	if got := r.Tail(0); got != nil {
		t.Fatalf("Tail(0) = %v", got)
	}
	var sb strings.Builder
	r.WriteText(&sb, 10)
	out := sb.String()
	for _, want := range []string{"warn router failover.begin", "session=sess-1", "trace=tr-9", "standby=r2 seq=41"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText lacks %q:\n%s", want, out)
		}
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Record(Info, "k", "", "", "ignored")
	if evs, next := r.Since(0, ""); evs != nil || next != 0 {
		t.Fatal("nil recorder returned events")
	}
	if r.Tail(3) != nil {
		t.Fatal("nil recorder tail")
	}
	var sb strings.Builder
	r.WriteText(&sb, 3)
	if sb.Len() != 0 {
		t.Fatal("nil recorder wrote text")
	}
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
	if rec.Code != 404 {
		t.Fatalf("nil recorder handler status %d", rec.Code)
	}
}

func TestHandler(t *testing.T) {
	r := NewRecorder("r2", 16)
	r.Record(Info, "adopt", "sess-a", "tr-1", "records=%d", 7)
	r.Record(Error, "quarantine", "sess-b", "", "panic")

	get := func(url string) (int, eventsResponse) {
		rec := httptest.NewRecorder()
		r.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var resp eventsResponse
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("bad JSON from %s: %v", url, err)
			}
		}
		return rec.Code, resp
	}

	code, resp := get("/events")
	if code != 200 || resp.Replica != "r2" || len(resp.Events) != 2 || resp.Next != 2 {
		t.Fatalf("GET /events → %d %+v", code, resp)
	}
	code, resp = get("/events?since=" + fmt.Sprint(resp.Next))
	if code != 200 || len(resp.Events) != 0 {
		t.Fatalf("resume poll returned %d events", len(resp.Events))
	}
	code, resp = get("/events?session=sess-b")
	if code != 200 || len(resp.Events) != 1 || resp.Events[0].Kind != "quarantine" {
		t.Fatalf("session filter → %+v", resp.Events)
	}
	code, resp = get("/events?limit=1")
	if code != 200 || len(resp.Events) != 1 || resp.Events[0].Kind != "quarantine" {
		t.Fatalf("limit → %+v", resp.Events)
	}
	if code, _ := get("/events?since=bogus"); code != 400 {
		t.Fatalf("bad since → %d", code)
	}
	if code, _ := get("/events?limit=-1"); code != 400 {
		t.Fatalf("bad limit → %d", code)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder("r1", 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Info, "k", "", "", "")
			}
		}()
	}
	wg.Wait()
	evs, next := r.Since(0, "")
	if next != 800 || len(evs) != 32 {
		t.Fatalf("next=%d retained=%d, want 800/32", next, len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d → %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
