package telemetry

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// statsFromObs builds the TimerStats a single process would snapshot
// after observing every duration in obs — the ground truth the
// bucket-wise merge must reproduce.
func statsFromObs(obs []int64) TimerStats {
	var cs [timerBuckets + 1]int64
	var total int64
	for _, ns := range obs {
		cs[bucketIndex(ns)]++
		total += ns
	}
	n := int64(len(obs))
	return TimerStats{
		Count:   n,
		TotalNs: total,
		P50Ns:   percentile(cs, n, 0.50),
		P90Ns:   percentile(cs, n, 0.90),
		P99Ns:   percentile(cs, n, 0.99),
		Buckets: append([]int64(nil), cs[:]...),
	}
}

// TestMergeMetricsShardInvariance is the federation property test:
// however a stream of observations is split across shards (replicas),
// merging the per-shard histograms bucket-wise reproduces the
// single-process histogram exactly — total count, total time, every
// bucket, and therefore every percentile — and the merged percentiles
// stay monotone (p50 <= p90 <= p99).
func TestMergeMetricsShardInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		nObs := 1 + rng.Intn(2000)
		obs := make([]int64, nObs)
		for i := range obs {
			// Log-uniform over ~1µs .. ~16s so every bucket regime
			// (first, middle, +Inf overflow) is exercised.
			shift := 8 + rng.Intn(27)
			obs[i] = (int64(1) << shift) + rng.Int63n(int64(1)<<shift)
		}
		full := statsFromObs(obs)

		nShards := 1 + rng.Intn(6)
		shards := make([][]int64, nShards)
		for _, ns := range obs {
			k := rng.Intn(nShards)
			shards[k] = append(shards[k], ns)
		}
		members := make([]Metrics, nShards)
		var counterSum int64
		for k, sh := range shards {
			c := rng.Int63n(1000)
			counterSum += c
			members[k] = Metrics{
				Counters: map[string]int64{"ops": c},
				Timers:   map[string]TimerStats{"lat": statsFromObs(sh)},
				Gauges:   map[string]float64{"g": float64(k)},
			}
		}

		merged := MergeMetrics(members...)
		if merged.Counters["ops"] != counterSum {
			t.Fatalf("trial %d: counter sum %d != %d", trial, merged.Counters["ops"], counterSum)
		}
		got := merged.Timers["lat"]
		if got.Count != full.Count || got.TotalNs != full.TotalNs {
			t.Fatalf("trial %d: merged count/total %d/%d, want %d/%d",
				trial, got.Count, got.TotalNs, full.Count, full.TotalNs)
		}
		for i := range full.Buckets {
			if got.Buckets[i] != full.Buckets[i] {
				t.Fatalf("trial %d: bucket %d = %d, want %d", trial, i, got.Buckets[i], full.Buckets[i])
			}
		}
		if got.P50Ns != full.P50Ns || got.P90Ns != full.P90Ns || got.P99Ns != full.P99Ns {
			t.Fatalf("trial %d: merged percentiles %d/%d/%d, want %d/%d/%d",
				trial, got.P50Ns, got.P90Ns, got.P99Ns, full.P50Ns, full.P90Ns, full.P99Ns)
		}
		if got.P50Ns > got.P90Ns || got.P90Ns > got.P99Ns {
			t.Fatalf("trial %d: percentiles not monotone: %d/%d/%d", trial, got.P50Ns, got.P90Ns, got.P99Ns)
		}
	}
}

func TestMergeMetricsBucketlessMember(t *testing.T) {
	withBuckets := Metrics{Timers: map[string]TimerStats{
		"lat": statsFromObs([]int64{2000, 3000, 4000}),
	}}
	legacy := Metrics{Timers: map[string]TimerStats{
		"lat": {Count: 5, TotalNs: 50_000},
	}}
	m := MergeMetrics(withBuckets, legacy)
	got := m.Timers["lat"]
	if got.Count != 8 || got.TotalNs != 59_000 {
		t.Fatalf("merged count/total = %d/%d", got.Count, got.TotalNs)
	}
	if len(got.Buckets) != timerBuckets+1 {
		t.Fatalf("merged buckets len %d", len(got.Buckets))
	}
}

func TestWriteFederatedExposition(t *testing.T) {
	members := []MemberMetrics{
		{Replica: "r1", Metrics: Metrics{
			Counters: map[string]int64{"server.requests": 10, "fleet.frames_received": 3},
			Timers:   map[string]TimerStats{"server.request.open": statsFromObs([]int64{1500, 900_000})},
			Gauges:   map[string]float64{"server.sessions_active": 2},
		}},
		{Replica: "r2", Metrics: Metrics{
			Counters: map[string]int64{"server.requests": 32},
			Timers:   map[string]TimerStats{"server.request.open": statsFromObs([]int64{70_000})},
			Gauges:   map[string]float64{"server.sessions_active": 5},
		}},
	}
	var sb strings.Builder
	if err := WriteFederated(&sb, members); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// The federated exposition must satisfy the strict validator even
	// though one histogram family carries several labelled series.
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("federated exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		`hb_server_requests_total{replica="r1"} 10`,
		`hb_server_requests_total{replica="r2"} 32`,
		"hb_fleet_server_requests_total 42",
		`hb_fleet_frames_received_total{replica="r1"} 3`,
		"hb_fleet_fleet_frames_received_total 3",
		`hb_server_sessions_active{replica="r1"} 2`,
		"hb_fleet_server_sessions_active 7",
		`hb_server_request_open_seconds_count{replica="r2"} 1`,
		"hb_fleet_server_request_open_seconds_count 3",
		"hb_fleet_federated_members 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("federated exposition lacks %q:\n%s", want, out)
		}
	}
}

func TestCheckExpositionLabelledHistograms(t *testing.T) {
	// Two replicas' series of one family interleave: each series is
	// cumulative on its own, but the raw line sequence is not — the
	// validator must key state per label set.
	good := `# TYPE hb_lat_seconds histogram
hb_lat_seconds_bucket{replica="r1",le="0.001"} 1
hb_lat_seconds_bucket{replica="r1",le="+Inf"} 2
hb_lat_seconds_sum{replica="r1"} 0.5
hb_lat_seconds_count{replica="r1"} 2
hb_lat_seconds_bucket{replica="r2",le="0.001"} 0
hb_lat_seconds_bucket{replica="r2",le="+Inf"} 1
hb_lat_seconds_sum{replica="r2"} 0.9
hb_lat_seconds_count{replica="r2"} 1
`
	if err := CheckExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("labelled histograms rejected: %v", err)
	}
	// Within one series, non-cumulative buckets must still be caught.
	bad := `# TYPE hb_lat_seconds histogram
hb_lat_seconds_bucket{replica="r1",le="0.001"} 5
hb_lat_seconds_bucket{replica="r1",le="0.002"} 3
hb_lat_seconds_bucket{replica="r1",le="+Inf"} 5
hb_lat_seconds_sum{replica="r1"} 0.5
hb_lat_seconds_count{replica="r1"} 5
`
	if err := CheckExposition(strings.NewReader(bad)); err == nil {
		t.Fatal("non-cumulative series passed")
	}
	// A series missing its +Inf bucket must still be caught even when a
	// sibling series has one.
	missing := `# TYPE hb_lat_seconds histogram
hb_lat_seconds_bucket{replica="r1",le="+Inf"} 2
hb_lat_seconds_sum{replica="r1"} 0.5
hb_lat_seconds_count{replica="r1"} 2
hb_lat_seconds_bucket{replica="r2",le="0.001"} 1
hb_lat_seconds_sum{replica="r2"} 0.1
hb_lat_seconds_count{replica="r2"} 1
`
	if err := CheckExposition(strings.NewReader(missing)); err == nil {
		t.Fatal("series without +Inf bucket passed")
	}
}

func TestFleetNameCannotCollide(t *testing.T) {
	// A genuine fleet.* instrument and the rollup namespace must stay
	// distinguishable: rollups always carry the doubled prefix.
	if got := fleetName("fleet.requests_routed"); got != "hb_fleet_fleet_requests_routed" {
		t.Fatalf("fleetName = %q", got)
	}
	if got := fleetName("server.requests"); got != "hb_fleet_server_requests" {
		t.Fatalf("fleetName = %q", got)
	}
}

func BenchmarkMergeMetrics(b *testing.B) {
	members := make([]Metrics, 4)
	for i := range members {
		obs := make([]int64, 256)
		for j := range obs {
			obs[j] = int64(1000 * (j + 1))
		}
		members[i] = Metrics{
			Counters: map[string]int64{"a": 1, "b": 2, "c": 3},
			Timers: map[string]TimerStats{
				fmt.Sprintf("t%d", i%2): statsFromObs(obs),
			},
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeMetrics(members...)
	}
}
