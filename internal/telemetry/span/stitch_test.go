package span

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSpanIDsAndInject(t *testing.T) {
	tr := New("tid-1", "op")
	ctx := NewContext(context.Background(), tr)
	if got := tr.Root().ID(); got != "1" {
		t.Fatalf("root span id = %q, want 1", got)
	}
	c1, a := Start(ctx, "a")
	_, b := Start(c1, "b")
	if a.ID() != "2" || b.ID() != "3" {
		t.Fatalf("span ids = %q, %q, want 2, 3", a.ID(), b.ID())
	}
	var nilSpan *Span
	if nilSpan.ID() != "" {
		t.Fatal("nil span has an id")
	}

	h := http.Header{}
	Inject(c1, h)
	if h.Get(TraceIDHeader) != "tid-1" || h.Get(ParentSpanHeader) != "2" {
		t.Fatalf("Inject wrote %q/%q", h.Get(TraceIDHeader), h.Get(ParentSpanHeader))
	}
	// No trace in ctx → no headers.
	h2 := http.Header{}
	Inject(context.Background(), h2)
	if len(h2) != 0 {
		t.Fatalf("Inject without trace wrote %v", h2)
	}
}

func TestExportCarriesStitchMetadata(t *testing.T) {
	tr := New("tid-2", "op")
	tr.SetProcess("r1")
	tr.SetRemoteParent("5")
	tr.Finish()
	e := tr.Export()
	if e.Process != "r1" || e.ParentSpan != "5" || e.StartUnixNs == 0 {
		t.Fatalf("export metadata: %+v", e)
	}
	if e.Root.Process != "r1" || e.Root.SpanID != "1" {
		t.Fatalf("root node metadata: %+v", e.Root)
	}
	if tr.RemoteParent() != "5" {
		t.Fatalf("RemoteParent = %q", tr.RemoteParent())
	}
}

// buildFragment makes an export by hand so the wall-clock anchors are
// exact instead of depending on timer resolution.
func frag(id, process, parent string, startNs int64, root *Node) *Export {
	return &Export{ID: id, Process: process, ParentSpan: parent, StartUnixNs: startNs, Root: root}
}

func TestStitchSplicesAndRebases(t *testing.T) {
	base := frag("T", "router", "", 1_000_000, &Node{
		Name: "fleet.failover", SpanID: "1", DurNs: 500_000,
		Children: []*Node{
			{Name: "probe", SpanID: "2", OffsetNs: 10_000, DurNs: 100_000},
			{Name: "adopt", SpanID: "3", OffsetNs: 200_000, DurNs: 200_000},
		},
	})
	remote := frag("T", "r2", "3", 1_250_000, &Node{
		Name: "server.repl_adopt", SpanID: "1", OffsetNs: 0, DurNs: 90_000,
		Children: []*Node{{Name: "replay", SpanID: "2", OffsetNs: 5_000, DurNs: 50_000}},
	})

	st := Stitch([]*Export{remote, base}) // order must not matter
	if st == nil || st.Process != "router" || st.ID != "T" {
		t.Fatalf("stitched = %+v", st)
	}
	adopt := st.Root.Children[1]
	if adopt.Name != "adopt" || len(adopt.Children) != 1 {
		t.Fatalf("fragment not spliced under adopt: %+v", adopt)
	}
	sub := adopt.Children[0]
	if sub.Name != "server.repl_adopt" || sub.Process != "r2" {
		t.Fatalf("spliced root: %+v", sub)
	}
	// Offsets rebased by the wall-clock delta (250µs).
	if sub.OffsetNs != 250_000 {
		t.Fatalf("spliced offset = %d, want 250000", sub.OffsetNs)
	}
	if sub.Children[0].OffsetNs != 255_000 {
		t.Fatalf("spliced child offset = %d, want 255000", sub.Children[0].OffsetNs)
	}
	// Inputs must not be mutated by the splice.
	if remote.Root.OffsetNs != 0 || len(base.Root.Children[1].Children) != 0 {
		t.Fatal("Stitch mutated its inputs")
	}
}

func TestStitchOrphanAndEmpty(t *testing.T) {
	if Stitch(nil) != nil {
		t.Fatal("Stitch(nil) non-nil")
	}
	base := frag("T", "router", "", 0, &Node{Name: "root", SpanID: "1"})
	orphan := frag("T", "r9", "99", 100, &Node{Name: "lost", SpanID: "1"})
	st := Stitch([]*Export{base, orphan})
	if len(st.Root.Children) != 1 || st.Root.Children[0].Name != "lost" {
		t.Fatalf("orphan fragment not attached under root: %+v", st.Root)
	}
	// With no parentless fragment, the earliest anchor becomes the base.
	a := frag("T", "r1", "7", 500, &Node{Name: "a", SpanID: "1"})
	b := frag("T", "r2", "8", 100, &Node{Name: "b", SpanID: "1"})
	st2 := Stitch([]*Export{a, b})
	if st2.Process != "r2" {
		t.Fatalf("base pick = %q, want earliest (r2)", st2.Process)
	}
}

func TestStitchedChromeHasTwoProcesses(t *testing.T) {
	base := frag("T", "router", "", 0, &Node{
		Name: "fleet.failover", SpanID: "1", DurNs: 100,
		Children: []*Node{{Name: "adopt", SpanID: "2", DurNs: 50}},
	})
	remote := frag("T", "r2", "2", 10, &Node{Name: "server.repl_adopt", SpanID: "1", DurNs: 40})
	st := Stitch([]*Export{base, remote})

	var sb strings.Builder
	if err := st.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatal(err)
	}
	procNames := map[string]bool{}
	pids := map[int]bool{}
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procNames[ev.Args["name"]] = true
		}
		if ev.Ph == "X" {
			pids[ev.Pid] = true
		}
	}
	if !procNames["router"] || !procNames["r2"] {
		t.Fatalf("process names = %v, want router + r2", procNames)
	}
	if len(pids) != 2 {
		t.Fatalf("distinct pids = %d, want 2", len(pids))
	}
}

func TestRingRetainsAndEvicts(t *testing.T) {
	r := NewRing(2)
	t1, t2, t3 := New("a", "op"), New("b", "op"), New("c", "op")
	r.Add(t1)
	r.Add(t2)
	if r.Get("a") != t1 || r.Get("b") != t2 || r.Len() != 2 {
		t.Fatal("ring lost fresh traces")
	}
	r.Add(t3) // evicts "a"
	if r.Get("a") != nil || r.Get("c") != t3 || r.Len() != 2 {
		t.Fatalf("eviction wrong: a=%v c=%v len=%d", r.Get("a"), r.Get("c"), r.Len())
	}
	// Re-adding an id replaces in place without eviction.
	t2b := New("b", "op2")
	r.Add(t2b)
	if r.Get("b") != t2b || r.Len() != 2 {
		t.Fatal("re-add did not replace in place")
	}
	// Nil safety.
	var nilRing *Ring
	nilRing.Add(t1)
	if nilRing.Get("a") != nil || nilRing.Len() != 0 {
		t.Fatal("nil ring misbehaved")
	}
	r.Add(nil)
}

func TestExportRoundTripsThroughJSON(t *testing.T) {
	tr := New("rt", "op")
	tr.SetProcess("r1")
	ctx := NewContext(context.Background(), tr)
	_, sp := Start(ctx, "phase")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Finish()

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var e Export
	if err := json.Unmarshal([]byte(sb.String()), &e); err != nil {
		t.Fatal(err)
	}
	if e.ID != "rt" || e.Process != "r1" || e.StartUnixNs == 0 {
		t.Fatalf("round-trip lost metadata: %+v", e)
	}
	if len(e.Root.Children) != 1 || e.Root.Children[0].SpanID != "2" {
		t.Fatalf("round-trip lost span ids: %+v", e.Root)
	}
}
