// Package span is the request-scoped tracing layer of the telemetry
// substrate: one Trace per served request, carried through the call
// stack via context.Context, with nested Spans marking the phases the
// request passes through (admission wait, journal append, edit
// classification, dirty-cluster recompute, individual fixed-point
// sweeps, response encoding, ...).
//
// The disabled path is designed for instrumentation that is always
// compiled in: Start on a context with no trace attached costs one
// context value lookup and returns a nil *Span, and every Span method
// is nil-safe, so instrumented code calls Start/Annotate/End
// unconditionally. A nil context is accepted everywhere (the CLI entry
// points pass nil through the analysis layers) and behaves like a
// context without a trace.
//
// Finished traces export three ways: a JSON span tree (WriteJSON, the
// GET /v1/sessions/{id}/trace/last payload), the Chrome trace-event
// format (WriteChrome; load the file at chrome://tracing or in
// Perfetto), and an indented text rendering (WriteText, the daemon's
// slow-request log).
package span

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// ctxKey carries the current *Span through a context chain.
type ctxKey struct{}

// Trace is one request's span tree. All mutation goes through the
// trace mutex, so spans may be created and ended from any goroutine.
type Trace struct {
	id string

	mu   sync.Mutex
	root *Span
}

// Span is one timed phase within a trace. The zero *Span (nil) is a
// valid no-op receiver for every method.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    map[string]string
	children []*Span
}

// New starts a trace: the root span (named for the operation) begins
// immediately.
func New(id, name string) *Trace {
	tr := &Trace{id: id}
	tr.root = &Span{tr: tr, name: name, start: time.Now()}
	return tr
}

// ID returns the trace id generated at admission.
func (t *Trace) ID() string { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// NewContext returns a context carrying the trace, with the root span
// current: Start calls on the returned context create children of the
// root.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t.root)
}

// FromContext returns the trace attached to ctx, or nil. A nil ctx is
// accepted.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	if sp, ok := ctx.Value(ctxKey{}).(*Span); ok {
		return sp.tr
	}
	return nil
}

// Active reports whether ctx carries a trace — for callers that want to
// gate clock reads or other span-only work.
func Active(ctx context.Context) bool { return FromContext(ctx) != nil }

// Start opens a child span of ctx's current span and returns a context
// in which the child is current. Without a trace (or with a nil ctx) it
// returns its arguments' context unchanged and a nil span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return nil, nil
	}
	parent, ok := ctx.Value(ctxKey{}).(*Span)
	if !ok {
		return ctx, nil
	}
	child := &Span{tr: parent.tr, name: name, start: time.Now()}
	parent.tr.mu.Lock()
	parent.children = append(parent.children, child)
	parent.tr.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, child), child
}

// Current returns ctx's current span (the one new Starts would nest
// under), or nil.
func Current(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// End closes the span, fixing its duration. Double-End keeps the first
// duration; nil receivers no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// Annotate attaches a key/value attribute to the span; nil-safe.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.tr.mu.Unlock()
}

// AnnotateInt is Annotate for integer values.
func (s *Span) AnnotateInt(key string, value int) {
	s.Annotate(key, strconv.Itoa(value))
}

// Attr returns the value of a previously attached attribute ("" if
// absent); nil-safe.
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.attrs[key]
}

// Finish ends the root span — and, so every export is well-nested,
// force-ends any still-open descendant at the same instant — and
// returns the trace's total duration. Idempotent.
func (t *Trace) Finish() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.endLocked(t.root)
	return t.root.dur
}

func (t *Trace) endLocked(s *Span) {
	for _, c := range s.children {
		t.endLocked(c)
	}
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
}

// Duration returns the root span's duration (zero until Finish or the
// root's End).
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.dur
}

// Node is the exported form of one span: offsets are nanoseconds since
// the trace started, so child intervals can be checked against their
// parent's without wall-clock arithmetic.
type Node struct {
	Name     string            `json:"name"`
	OffsetNs int64             `json:"offsetNs"`
	DurNs    int64             `json:"durNs"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Node           `json:"children,omitempty"`
}

// Tree snapshots the span tree. Unfinished spans export with the
// duration they have accumulated so far.
func (t *Trace) Tree() *Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exportLocked(t.root)
}

func (t *Trace) exportLocked(s *Span) *Node {
	n := &Node{
		Name:     s.name,
		OffsetNs: s.start.Sub(t.root.start).Nanoseconds(),
		DurNs:    s.dur.Nanoseconds(),
	}
	if !s.ended {
		n.DurNs = time.Since(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			n.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, t.exportLocked(c))
	}
	return n
}

// jsonTrace is the WriteJSON schema.
type jsonTrace struct {
	ID   string `json:"id"`
	Root *Node  `json:"root"`
}

// WriteJSON serialises the trace as an indented JSON span tree.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonTrace{ID: t.id, Root: t.Tree()})
}

// chromeEvent is one complete ("ph":"X") Chrome trace event.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // µs since trace start
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome serialises the trace in the Chrome trace-event format
// (a JSON array of complete events), loadable in chrome://tracing and
// Perfetto.
func (t *Trace) WriteChrome(w io.Writer) error {
	var events []chromeEvent
	var walk func(n *Node)
	walk = func(n *Node) {
		events = append(events, chromeEvent{
			Name: n.Name, Ph: "X",
			Ts:  float64(n.OffsetNs) / 1e3,
			Dur: float64(n.DurNs) / 1e3,
			Pid: 1, Tid: 1,
			Args: n.Attrs,
		})
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Tree())
	return json.NewEncoder(w).Encode(events)
}

// WriteText renders the trace as an indented tree, one span per line —
// the slow-request log format.
func (t *Trace) WriteText(w io.Writer) {
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(w, "%*s%s %v", 2*depth, "", n.Name, time.Duration(n.DurNs))
		if len(n.Attrs) > 0 {
			b, _ := json.Marshal(n.Attrs)
			fmt.Fprintf(w, " %s", b)
		}
		fmt.Fprintln(w)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	fmt.Fprintf(w, "trace %s\n", t.id)
	walk(t.Tree(), 1)
}
