// Package span is the request-scoped tracing layer of the telemetry
// substrate: one Trace per served request, carried through the call
// stack via context.Context, with nested Spans marking the phases the
// request passes through (admission wait, journal append, edit
// classification, dirty-cluster recompute, individual fixed-point
// sweeps, response encoding, ...).
//
// The disabled path is designed for instrumentation that is always
// compiled in: Start on a context with no trace attached costs one
// context value lookup and returns a nil *Span, and every Span method
// is nil-safe, so instrumented code calls Start/Annotate/End
// unconditionally. A nil context is accepted everywhere (the CLI entry
// points pass nil through the analysis layers) and behaves like a
// context without a trace.
//
// Traces cross process boundaries: every span has a per-trace id, and
// Inject stamps outbound requests with the trace id and the current
// span's id (X-Trace-Id / X-Hb-Parent-Span). A receiving process that
// adopts both headers produces a fragment whose Parent names the span
// it hung off in the caller, and Stitch splices fragments from several
// processes back into one tree using their wall-clock anchors.
//
// Finished traces export three ways: a JSON span tree (WriteJSON, the
// GET /v1/sessions/{id}/trace/last payload), the Chrome trace-event
// format (WriteChrome; load the file at chrome://tracing or in
// Perfetto), and an indented text rendering (WriteText, the daemon's
// slow-request log).
package span

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceIDHeader carries the trace id across process boundaries.
const TraceIDHeader = "X-Trace-Id"

// ParentSpanHeader carries the caller's current span id alongside
// TraceIDHeader, so the receiving process's trace fragment records
// which remote span it nests under.
const ParentSpanHeader = "X-Hb-Parent-Span"

// ctxKey carries the current *Span through a context chain.
type ctxKey struct{}

// Trace is one request's span tree. All mutation goes through the
// trace mutex, so spans may be created and ended from any goroutine.
type Trace struct {
	id string

	mu      sync.Mutex
	root    *Span
	process string // emitting process ("router", "r2"); "" if unset
	parent  string // remote parent span id, "" for a trace root
	nextID  int64  // span id allocator; root is "1"
}

// Span is one timed phase within a trace. The zero *Span (nil) is a
// valid no-op receiver for every method.
type Span struct {
	tr       *Trace
	id       string
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    map[string]string
	children []*Span
}

// New starts a trace: the root span (named for the operation) begins
// immediately.
func New(id, name string) *Trace {
	tr := &Trace{id: id, nextID: 1}
	tr.root = &Span{tr: tr, id: "1", name: name, start: time.Now()}
	return tr
}

// ID returns the trace id generated at admission.
func (t *Trace) ID() string { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// SetProcess names the process emitting this trace fragment (a replica
// id, or "router"). The name rides along in exports so stitched trees
// can attribute spans to processes.
func (t *Trace) SetProcess(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.process = name
	t.mu.Unlock()
}

// SetRemoteParent records the span id (in the calling process) that
// this trace fragment nests under — the value of ParentSpanHeader on
// the inbound request.
func (t *Trace) SetRemoteParent(spanID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.parent = spanID
	t.mu.Unlock()
}

// RemoteParent returns the remote parent span id ("" for a root
// fragment).
func (t *Trace) RemoteParent() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.parent
}

// NewContext returns a context carrying the trace, with the root span
// current: Start calls on the returned context create children of the
// root.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t.root)
}

// FromContext returns the trace attached to ctx, or nil. A nil ctx is
// accepted.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	if sp, ok := ctx.Value(ctxKey{}).(*Span); ok {
		return sp.tr
	}
	return nil
}

// Active reports whether ctx carries a trace — for callers that want to
// gate clock reads or other span-only work.
func Active(ctx context.Context) bool { return FromContext(ctx) != nil }

// Start opens a child span of ctx's current span and returns a context
// in which the child is current. Without a trace (or with a nil ctx) it
// returns its arguments' context unchanged and a nil span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return nil, nil
	}
	parent, ok := ctx.Value(ctxKey{}).(*Span)
	if !ok {
		return ctx, nil
	}
	child := &Span{tr: parent.tr, name: name, start: time.Now()}
	parent.tr.mu.Lock()
	parent.tr.nextID++
	child.id = strconv.FormatInt(parent.tr.nextID, 10)
	parent.children = append(parent.children, child)
	parent.tr.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, child), child
}

// Current returns ctx's current span (the one new Starts would nest
// under), or nil.
func Current(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ID returns the span's per-trace id ("1" for the root); nil-safe.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Inject stamps outbound request headers with ctx's trace id and
// current span id, so the receiving process can open a correlated
// trace fragment. No-op without a trace.
func Inject(ctx context.Context, h http.Header) {
	sp := Current(ctx)
	if sp == nil {
		return
	}
	h.Set(TraceIDHeader, sp.tr.id)
	h.Set(ParentSpanHeader, sp.id)
}

// End closes the span, fixing its duration. Double-End keeps the first
// duration; nil receivers no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// Annotate attaches a key/value attribute to the span; nil-safe.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.tr.mu.Unlock()
}

// AnnotateInt is Annotate for integer values.
func (s *Span) AnnotateInt(key string, value int) {
	s.Annotate(key, strconv.Itoa(value))
}

// Attr returns the value of a previously attached attribute ("" if
// absent); nil-safe.
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.attrs[key]
}

// Finish ends the root span — and, so every export is well-nested,
// force-ends any still-open descendant at the same instant — and
// returns the trace's total duration. Idempotent.
func (t *Trace) Finish() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.endLocked(t.root)
	return t.root.dur
}

func (t *Trace) endLocked(s *Span) {
	for _, c := range s.children {
		t.endLocked(c)
	}
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
}

// Duration returns the root span's duration (zero until Finish or the
// root's End).
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.dur
}

// Node is the exported form of one span: offsets are nanoseconds since
// the trace started, so child intervals can be checked against their
// parent's without wall-clock arithmetic. SpanID and Process survive
// stitching: a spliced-in fragment's root carries the process it ran
// in (descendants inherit it implicitly).
type Node struct {
	Name     string            `json:"name"`
	SpanID   string            `json:"spanId,omitempty"`
	Process  string            `json:"process,omitempty"`
	OffsetNs int64             `json:"offsetNs"`
	DurNs    int64             `json:"durNs"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Node           `json:"children,omitempty"`
}

// Tree snapshots the span tree. Unfinished spans export with the
// duration they have accumulated so far.
func (t *Trace) Tree() *Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exportLocked(t.root)
}

func (t *Trace) exportLocked(s *Span) *Node {
	n := &Node{
		Name:     s.name,
		SpanID:   s.id,
		OffsetNs: s.start.Sub(t.root.start).Nanoseconds(),
		DurNs:    s.dur.Nanoseconds(),
	}
	if !s.ended {
		n.DurNs = time.Since(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			n.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, t.exportLocked(c))
	}
	return n
}

// Export is the wire form of one process's trace fragment: the span
// tree plus the metadata Stitch needs to splice fragments from several
// processes (which remote span it hangs off, and a wall-clock anchor
// for rebasing offsets across processes).
type Export struct {
	ID          string `json:"id"`
	Process     string `json:"process,omitempty"`
	ParentSpan  string `json:"parentSpan,omitempty"`
	StartUnixNs int64  `json:"startUnixNs,omitempty"`
	Root        *Node  `json:"root"`
}

// Export snapshots the trace in its wire form.
func (t *Trace) Export() *Export {
	root := t.Tree()
	t.mu.Lock()
	defer t.mu.Unlock()
	root.Process = t.process
	return &Export{
		ID:          t.id,
		Process:     t.process,
		ParentSpan:  t.parent,
		StartUnixNs: t.root.start.UnixNano(),
		Root:        root,
	}
}

// WriteJSON serialises the trace as an indented JSON span tree.
func (t *Trace) WriteJSON(w io.Writer) error {
	return t.Export().WriteJSON(w)
}

// WriteJSON serialises the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// Stitch splices trace fragments from several processes into one tree.
// The base fragment is the one without a remote parent (ties and
// absence fall back to the earliest wall-clock start); every other
// fragment is attached under the span whose id matches its ParentSpan,
// with all its offsets rebased by the wall-clock delta between the two
// fragments' starts. Fragments whose parent span cannot be found attach
// under the base root rather than being dropped. Stitch returns nil for
// an empty input.
func Stitch(frags []*Export) *Export {
	var rest []*Export
	var base *Export
	for _, f := range frags {
		if f == nil || f.Root == nil {
			continue
		}
		better := base == nil ||
			(f.ParentSpan == "" && base.ParentSpan != "") ||
			(f.ParentSpan == "") == (base.ParentSpan == "") && f.StartUnixNs < base.StartUnixNs
		if better {
			if base != nil {
				rest = append(rest, base)
			}
			base = f
		} else {
			rest = append(rest, f)
		}
	}
	if base == nil {
		return nil
	}
	// Fragments splice in wall-clock order so a chained fragment can
	// find its parent span inside an earlier-attached fragment.
	sort.SliceStable(rest, func(i, j int) bool { return rest[i].StartUnixNs < rest[j].StartUnixNs })

	out := &Export{ID: base.ID, Process: base.Process, StartUnixNs: base.StartUnixNs, Root: cloneNode(base.Root)}
	index := make(map[string]*Node)
	indexSpans(index, out.Root)
	for _, f := range rest {
		frag := cloneNode(f.Root)
		frag.Process = f.Process
		shift := f.StartUnixNs - base.StartUnixNs
		shiftOffsets(frag, shift)
		parent := index[f.ParentSpan]
		if parent == nil {
			parent = out.Root
		}
		parent.Children = append(parent.Children, frag)
		// Span ids are per-fragment counters, so later fragments only
		// claim ids the tree does not already hold — earlier processes
		// win lookups, which keeps depth-2 stitches (router → replica)
		// exact and deeper chains deterministic.
		indexSpans(index, frag)
	}
	return out
}

func cloneNode(n *Node) *Node {
	c := *n
	if len(n.Attrs) > 0 {
		c.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			c.Attrs[k] = v
		}
	}
	c.Children = nil
	for _, ch := range n.Children {
		c.Children = append(c.Children, cloneNode(ch))
	}
	return &c
}

func shiftOffsets(n *Node, delta int64) {
	n.OffsetNs += delta
	for _, c := range n.Children {
		shiftOffsets(c, delta)
	}
}

func indexSpans(index map[string]*Node, n *Node) {
	if n.SpanID != "" {
		if _, taken := index[n.SpanID]; !taken {
			index[n.SpanID] = n
		}
	}
	for _, c := range n.Children {
		indexSpans(index, c)
	}
}

// chromeEvent is one Chrome trace event ("X" complete events for
// spans, "M" metadata events for process names).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // µs since trace start
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome serialises the trace in the Chrome trace-event format
// (a JSON array of complete events), loadable in chrome://tracing and
// Perfetto.
func (t *Trace) WriteChrome(w io.Writer) error {
	return t.Export().WriteChrome(w)
}

// WriteChrome serialises the export — possibly a stitched multi-process
// tree — as Chrome trace events. Each distinct process in the tree gets
// its own pid (spans inherit their nearest ancestor's process) plus a
// process_name metadata event, so a stitched failover renders as two
// labelled process lanes in one file.
func (e *Export) WriteChrome(w io.Writer) error {
	pids := map[string]int{}
	pid := func(process string) int {
		if p, ok := pids[process]; ok {
			return p
		}
		p := len(pids) + 1
		pids[process] = p
		return p
	}
	var events []chromeEvent
	var walk func(n *Node, process string)
	walk = func(n *Node, process string) {
		if n.Process != "" {
			process = n.Process
		}
		events = append(events, chromeEvent{
			Name: n.Name, Ph: "X",
			Ts:  float64(n.OffsetNs) / 1e3,
			Dur: float64(n.DurNs) / 1e3,
			Pid: pid(process), Tid: 1,
			Args: n.Attrs,
		})
		for _, c := range n.Children {
			walk(c, process)
		}
	}
	root := e.Root
	if root == nil {
		root = &Node{Name: "empty"}
	}
	base := e.Process
	if base == "" {
		base = "trace"
	}
	walk(root, base)
	meta := make([]chromeEvent, 0, len(pids))
	for name, p := range pids {
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: p, Tid: 1,
			Args: map[string]string{"name": name},
		})
	}
	sort.Slice(meta, func(i, j int) bool { return meta[i].Pid < meta[j].Pid })
	return json.NewEncoder(w).Encode(append(meta, events...))
}

// WriteText renders the trace as an indented tree, one span per line —
// the slow-request log format.
func (t *Trace) WriteText(w io.Writer) {
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(w, "%*s%s %v", 2*depth, "", n.Name, time.Duration(n.DurNs))
		if len(n.Attrs) > 0 {
			b, _ := json.Marshal(n.Attrs)
			fmt.Fprintf(w, " %s", b)
		}
		fmt.Fprintln(w)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	fmt.Fprintf(w, "trace %s\n", t.id)
	walk(t.Tree(), 1)
}

// Ring is a bounded retention buffer of finished traces, keyed by id:
// the store behind GET /v1/traces/{id}. Adding past capacity evicts
// the oldest id; re-adding an id replaces its trace in place.
type Ring struct {
	mu    sync.Mutex
	cap   int
	order []string
	byID  map[string]*Trace
}

// NewRing returns a ring retaining up to capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{cap: capacity, byID: make(map[string]*Trace, capacity)}
}

// Add retains the trace, evicting the oldest if the ring is full;
// nil-safe on both receiver and trace.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil || t.id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[t.id]; ok {
		r.byID[t.id] = t
		return
	}
	if len(r.order) >= r.cap {
		old := r.order[0]
		r.order = r.order[1:]
		delete(r.byID, old)
	}
	r.order = append(r.order, t.id)
	r.byID[t.id] = t
}

// Get returns the retained trace with the given id, or nil.
func (r *Ring) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Len reports how many traces the ring currently retains.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}
