package span

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNestingAndExport(t *testing.T) {
	tr := New("t1", "server.request")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}

	ctx2, admission := Start(ctx, "admission")
	time.Sleep(time.Millisecond)
	admission.End()
	if Current(ctx2) != admission {
		t.Fatal("Start did not make the child current")
	}

	// A span started from the original ctx is a sibling of admission,
	// not a child of it.
	ctx3, journal := Start(ctx, "journal.append")
	_, fsync := Start(ctx3, "journal.fsync")
	fsync.Annotate("bytes", "128")
	time.Sleep(time.Millisecond)
	fsync.End()
	journal.End()

	total := tr.Finish()
	if total <= 0 {
		t.Fatalf("trace duration %v", total)
	}
	root := tr.Tree()
	if root.Name != "server.request" || len(root.Children) != 2 {
		t.Fatalf("bad tree shape: %+v", root)
	}
	names := []string{root.Children[0].Name, root.Children[1].Name}
	if names[0] != "admission" || names[1] != "journal.append" {
		t.Fatalf("children = %v", names)
	}
	jr := root.Children[1]
	if len(jr.Children) != 1 || jr.Children[0].Name != "journal.fsync" {
		t.Fatalf("fsync not nested under append: %+v", jr)
	}
	if jr.Children[0].Attrs["bytes"] != "128" {
		t.Fatalf("attrs lost: %+v", jr.Children[0])
	}

	// Child durations must fit inside their parent's interval.
	var check func(n *Node)
	check = func(n *Node) {
		for _, c := range n.Children {
			if c.OffsetNs < n.OffsetNs {
				t.Fatalf("child %s starts before parent %s", c.Name, n.Name)
			}
			if c.OffsetNs+c.DurNs > n.OffsetNs+n.DurNs+int64(time.Millisecond) {
				t.Fatalf("child %s (%d+%d) overruns parent %s (%d+%d)",
					c.Name, c.OffsetNs, c.DurNs, n.Name, n.OffsetNs, n.DurNs)
			}
			check(c)
		}
	}
	check(root)
}

func TestFinishForceEndsOpenSpans(t *testing.T) {
	tr := New("t2", "req")
	ctx := NewContext(context.Background(), tr)
	_, leaked := Start(ctx, "never.ended")
	_ = leaked // deliberately not ended
	tr.Finish()
	n := tr.Tree().Children[0]
	if n.DurNs <= 0 {
		t.Fatalf("unfinished child exported without duration: %+v", n)
	}
	// Tree after Finish is stable.
	a := tr.Tree()
	time.Sleep(2 * time.Millisecond)
	b := tr.Tree()
	if a.Children[0].DurNs != b.Children[0].DurNs {
		t.Fatal("finished span duration kept growing")
	}
}

func TestNilSafety(t *testing.T) {
	// All of these must be no-ops, not panics.
	var s *Span
	s.End()
	s.Annotate("k", "v")
	s.AnnotateInt("k", 1)
	if s.Attr("k") != "" {
		t.Fatal("nil span has attrs")
	}
	if tr := FromContext(nil); tr != nil {
		t.Fatal("nil ctx produced a trace")
	}
	if Active(nil) {
		t.Fatal("nil ctx active")
	}
	if c, sp := Start(nil, "x"); c != nil || sp != nil {
		t.Fatal("Start(nil) allocated")
	}
	if Current(nil) != nil {
		t.Fatal("Current(nil) non-nil")
	}
	// Context without a trace: Start returns it unchanged, nil span.
	ctx := context.Background()
	c2, sp := Start(ctx, "x")
	if c2 != ctx || sp != nil {
		t.Fatal("Start without trace changed the context")
	}
	if Active(ctx) {
		t.Fatal("traceless ctx active")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("t3", "req")
	ctx := NewContext(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c, sp := Start(ctx, "worker")
				_, inner := Start(c, "inner")
				inner.AnnotateInt("j", j)
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Tree().Children); got != 400 {
		t.Fatalf("children = %d, want 400", got)
	}
}

func TestWriteJSONAndChrome(t *testing.T) {
	tr := New("abc123", "req")
	ctx := NewContext(context.Background(), tr)
	_, sp := Start(ctx, "phase")
	sp.Annotate("op", "edit")
	sp.End()
	tr.Finish()

	var jb strings.Builder
	if err := tr.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string `json:"id"`
		Root *Node  `json:"root"`
	}
	if err := json.Unmarshal([]byte(jb.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON not valid JSON: %v", err)
	}
	if decoded.ID != "abc123" || decoded.Root.Name != "req" || len(decoded.Root.Children) != 1 {
		t.Fatalf("bad JSON export: %+v", decoded)
	}

	var cb strings.Builder
	if err := tr.WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(cb.String()), &events); err != nil {
		t.Fatalf("WriteChrome not a JSON array: %v", err)
	}
	var complete, meta int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected event phase: %v", ev)
		}
	}
	if complete != 2 || meta != 1 {
		t.Fatalf("chrome events: %d complete + %d metadata, want 2 + 1", complete, meta)
	}

	var tb strings.Builder
	tr.WriteText(&tb)
	out := tb.String()
	for _, want := range []string{"trace abc123", "req ", "  phase", `"op":"edit"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("text export lacks %q:\n%s", want, out)
		}
	}
}
