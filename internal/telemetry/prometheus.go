// Prometheus text exposition (format version 0.0.4) over the registry:
// counters render as counters with a _total suffix, timers as classic
// histograms in seconds, gauges as gauges. Instrument names map to the
// metric namespace by prefixing "hb_" and replacing every character
// outside [a-zA-Z0-9_] with '_' ("sta.clusters_analyzed" →
// "hb_sta_clusters_analyzed_total"). CheckExposition is the shared
// validator the unit and chaos tests scrape /metrics with.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// constLabels are rendered on every sample WritePrometheus emits, e.g.
// replica="r1" so each member of a fleet is distinguishable in one
// aggregated scrape. Set once at process startup.
var constLabels struct {
	mu sync.Mutex
	s  string // pre-rendered `k="v",k2="v2"` without braces
}

// SetConstLabels sets (or, with an empty map, clears) the constant
// labels attached to every exposed sample. Label values are escaped per
// the exposition format.
func SetConstLabels(labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		// %q escapes backslash, quote and newline exactly as the text
		// exposition format requires.
		parts = append(parts, fmt.Sprintf("%s=%q", promLabelName(k), labels[k]))
	}
	constLabels.mu.Lock()
	constLabels.s = strings.Join(parts, ",")
	constLabels.mu.Unlock()
}

// promLabelName sanitises a label name ([a-zA-Z_][a-zA-Z0-9_]*).
func promLabelName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_',
			r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promName sanitises an instrument name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 3)
	b.WriteString("hb_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trippable decimal.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format. Like Snapshot it iterates instruments in name
// order and evaluates gauge callbacks outside the registry lock, so a
// scrape never blocks the instrument fast paths.
func WritePrometheus(w io.Writer) error {
	type counterSample struct {
		name string
		v    int64
	}
	type timerSample struct {
		name    string
		count   int64
		totalNs int64
		buckets [timerBuckets + 1]int64
	}
	registry.mu.Lock()
	sortRegistry()
	counters := make([]counterSample, 0, len(registry.counters))
	for _, c := range registry.counters {
		counters = append(counters, counterSample{c.name, c.v.Load()})
	}
	timers := make([]timerSample, 0, len(registry.timers))
	for _, t := range registry.timers {
		timers = append(timers, timerSample{t.name, t.count.Load(), t.total.Load(), t.counts()})
	}
	gaugeNames := make([]string, 0, len(registry.gauges))
	gaugeFns := make(map[string]func() float64, len(registry.gauges))
	for name, fn := range registry.gauges {
		gaugeNames = append(gaugeNames, name)
		gaugeFns[name] = fn
	}
	registry.mu.Unlock()
	sort.Strings(gaugeNames)

	// lbl renders the brace-wrapped label set for one sample: the
	// process-wide constant labels plus any sample-specific labels (the
	// histogram "le" stays last, per convention).
	constLabels.mu.Lock()
	cl := constLabels.s
	constLabels.mu.Unlock()
	lbl := func(extra string) string {
		switch {
		case cl == "" && extra == "":
			return ""
		case cl == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + cl + "}"
		default:
			return "{" + cl + "," + extra + "}"
		}
	}

	bw := bufio.NewWriter(w)
	enabledVal := 0
	if enabled.Load() {
		enabledVal = 1
	}
	fmt.Fprintf(bw, "# HELP hb_telemetry_enabled Whether metric collection is on (instruments only accumulate while 1).\n")
	fmt.Fprintf(bw, "# TYPE hb_telemetry_enabled gauge\nhb_telemetry_enabled%s %d\n", lbl(""), enabledVal)
	for _, c := range counters {
		n := promName(c.name) + "_total"
		fmt.Fprintf(bw, "# HELP %s Event count for %s.\n# TYPE %s counter\n%s%s %d\n", n, c.name, n, n, lbl(""), c.v)
	}
	for _, g := range gaugeNames {
		n := promName(g)
		fmt.Fprintf(bw, "# HELP %s Gauge %s.\n# TYPE %s gauge\n%s%s %s\n", n, g, n, n, lbl(""), formatFloat(gaugeFns[g]()))
	}
	for _, t := range timers {
		n := promName(t.name) + "_seconds"
		fmt.Fprintf(bw, "# HELP %s Duration histogram for %s.\n# TYPE %s histogram\n", n, t.name, n)
		cum := int64(0)
		for i := 0; i < timerBuckets; i++ {
			cum += t.buckets[i]
			le := formatFloat(float64(int64(1)<<(timerMinShift+i)) / 1e9)
			fmt.Fprintf(bw, "%s_bucket%s %d\n", n, lbl(fmt.Sprintf("le=%q", le)), cum)
		}
		fmt.Fprintf(bw, "%s_bucket%s %d\n", n, lbl(`le="+Inf"`), t.count)
		fmt.Fprintf(bw, "%s_sum%s %s\n", n, lbl(""), formatFloat(float64(t.totalNs)/1e9))
		fmt.Fprintf(bw, "%s_count%s %d\n", n, lbl(""), t.count)
	}
	return bw.Flush()
}

// CheckExposition validates a Prometheus text exposition: every sample
// line must parse, belong to a # TYPE-declared family, histogram bucket
// counts must be cumulative with a +Inf bucket equal to _count, and
// every histogram must carry _sum and _count. It is deliberately strict
// about the subset this package emits — the CI chaos job scrapes the
// live daemon through it.
func CheckExposition(r io.Reader) error {
	type histState struct {
		lastLe    float64
		lastCount int64
		infCount  int64
		haveInf   bool
		haveSum   bool
		haveCount bool
	}
	// Histogram state is tracked per series — (family, label set minus
	// le) — not per family, so a federated exposition that interleaves
	// one family's histograms from several replicas still validates
	// bucket cumulativity within each replica's series.
	seriesKey := func(family, labels string) string {
		if labels == "" {
			return family
		}
		kvs := strings.Split(labels, ",")
		kept := kvs[:0]
		for _, kv := range kvs {
			if k, _, ok := strings.Cut(kv, "="); !ok || strings.TrimSpace(k) != "le" {
				kept = append(kept, kv)
			}
		}
		if len(kept) == 0 {
			return family
		}
		sort.Strings(kept)
		return family + "{" + strings.Join(kept, ",") + "}"
	}
	types := map[string]string{} // family → type
	hists := map[string]*histState{}
	sawSample := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					types[fields[2]] = fields[3]
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
			}
			continue
		}
		name, rest, labels := line, "", ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				return fmt.Errorf("line %d: malformed labels", lineNo)
			}
			name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name, rest = line[:i], strings.TrimSpace(line[i+1:])
		} else {
			return fmt.Errorf("line %d: no value on sample %q", lineNo, line)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		if rest == "" {
			return fmt.Errorf("line %d: no value on sample %q", lineNo, line)
		}
		val, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad sample value %q: %v", lineNo, rest, err)
		}
		sawSample = true
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f := strings.TrimSuffix(name, suffix); f != name && types[f] == "histogram" {
				family = f
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, name)
		}
		if typ != "histogram" {
			continue
		}
		key := seriesKey(family, labels)
		h := hists[key]
		if h == nil {
			h = &histState{lastLe: -1}
			hists[key] = h
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			leStr := ""
			for _, kv := range strings.Split(labels, ",") {
				if k, v, ok := strings.Cut(kv, "="); ok && k == "le" {
					leStr = strings.Trim(v, `"`)
				}
			}
			if leStr == "" {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			count := int64(val)
			if leStr == "+Inf" {
				h.haveInf, h.infCount = true, count
			} else {
				le, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %v", lineNo, leStr, err)
				}
				if le <= h.lastLe {
					return fmt.Errorf("line %d: %s le %g not increasing", lineNo, family, le)
				}
				h.lastLe = le
			}
			if count < h.lastCount {
				return fmt.Errorf("line %d: %s bucket counts not cumulative", lineNo, family)
			}
			h.lastCount = count
		case strings.HasSuffix(name, "_sum"):
			h.haveSum = true
		case strings.HasSuffix(name, "_count"):
			h.haveCount = true
			if h.haveInf && h.infCount != int64(val) {
				return fmt.Errorf("%s: +Inf bucket %d != count %d", family, h.infCount, int64(val))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawSample {
		return fmt.Errorf("no samples in exposition")
	}
	for key, h := range hists {
		if !h.haveInf || !h.haveSum || !h.haveCount {
			return fmt.Errorf("histogram series %s missing +Inf bucket, _sum or _count", key)
		}
	}
	return nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		letter := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
