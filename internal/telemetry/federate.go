// Metrics federation: the router scrapes each member's /metrics.json
// snapshot and re-exposes the fleet as one Prometheus exposition.
// Counters and gauges merge by sum; timers merge bucket-wise — every
// process shares the fixed histogram geometry (TimerBounds), so the
// merge is element-wise addition and the merged percentiles are exactly
// what a single process observing the union would have reported. The
// federated exposition preserves per-member series under a replica
// label and adds hb_fleet_* rollup families for the merged values.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// MemberMetrics pairs one fleet member's snapshot with its replica id
// ("router" for the router's own instruments).
type MemberMetrics struct {
	Replica string  `json:"replica"`
	Metrics Metrics `json:"metrics"`
}

// MergeMetrics folds any number of snapshots into one, as if a single
// process had recorded them all: counters and gauges sum by name,
// timers sum Count/TotalNs and merge their fixed-geometry buckets
// element-wise, with percentiles recomputed from the merged histogram.
// A snapshot that predates bucket export (empty Buckets) still
// contributes Count and TotalNs.
func MergeMetrics(members ...Metrics) Metrics {
	out := Metrics{
		Counters: map[string]int64{},
		Timers:   map[string]TimerStats{},
	}
	for _, m := range members {
		out.Enabled = out.Enabled || m.Enabled
		for name, v := range m.Counters {
			out.Counters[name] += v
		}
		for name, v := range m.Gauges {
			if out.Gauges == nil {
				out.Gauges = map[string]float64{}
			}
			out.Gauges[name] += v
		}
		for name, ts := range m.Timers {
			acc := out.Timers[name]
			acc.Count += ts.Count
			acc.TotalNs += ts.TotalNs
			if len(ts.Buckets) > 0 && acc.Buckets == nil {
				acc.Buckets = make([]int64, timerBuckets+1)
			}
			for i, c := range ts.Buckets {
				if i < len(acc.Buckets) {
					acc.Buckets[i] += c
				}
			}
			out.Timers[name] = acc
		}
	}
	for name, ts := range out.Timers {
		var cs [timerBuckets + 1]int64
		copy(cs[:], ts.Buckets)
		ts.P50Ns = percentile(cs, ts.Count, 0.50)
		ts.P90Ns = percentile(cs, ts.Count, 0.90)
		ts.P99Ns = percentile(cs, ts.Count, 0.99)
		out.Timers[name] = ts
	}
	return out
}

// fleetName maps an instrument name to its rollup family name:
// "fleet.requests_routed" → "hb_fleet_fleet_requests_routed". The
// per-member families keep their ordinary promName, so the two
// namespaces cannot collide.
func fleetName(instrument string) string {
	return "hb_fleet_" + strings.TrimPrefix(promName(instrument), "hb_")
}

// WriteFederated renders the fleet exposition: for every instrument
// family, one labelled sample per member (replica="<id>") followed by
// an hb_fleet_* rollup family carrying the merged value. Members render
// in the order given; callers sort for a deterministic exposition.
// Constant labels (SetConstLabels) are ignored here — the replica label
// is explicit.
func WriteFederated(w io.Writer, members []MemberMetrics) error {
	bw := bufio.NewWriter(w)
	merged := MergeMetrics(metricsOf(members)...)

	fmt.Fprintf(bw, "# HELP hb_fleet_federated_members Members aggregated into this exposition.\n")
	fmt.Fprintf(bw, "# TYPE hb_fleet_federated_members gauge\nhb_fleet_federated_members %d\n", len(members))

	lbl := func(replica string) string {
		return fmt.Sprintf("{replica=%q}", replica)
	}

	for _, name := range sortedKeys(merged.Counters) {
		n := promName(name) + "_total"
		fmt.Fprintf(bw, "# HELP %s Event count for %s.\n# TYPE %s counter\n", n, name, n)
		for _, m := range members {
			if v, ok := m.Metrics.Counters[name]; ok {
				fmt.Fprintf(bw, "%s%s %d\n", n, lbl(m.Replica), v)
			}
		}
		fn := fleetName(name) + "_total"
		fmt.Fprintf(bw, "# HELP %s Fleet-wide event count for %s.\n# TYPE %s counter\n%s %d\n",
			fn, name, fn, fn, merged.Counters[name])
	}

	for _, name := range sortedKeys(merged.Gauges) {
		n := promName(name)
		fmt.Fprintf(bw, "# HELP %s Gauge %s.\n# TYPE %s gauge\n", n, name, n)
		for _, m := range members {
			if v, ok := m.Metrics.Gauges[name]; ok {
				fmt.Fprintf(bw, "%s%s %s\n", n, lbl(m.Replica), formatFloat(v))
			}
		}
		fn := fleetName(name)
		fmt.Fprintf(bw, "# HELP %s Fleet-wide sum of gauge %s.\n# TYPE %s gauge\n%s %s\n",
			fn, name, fn, fn, formatFloat(merged.Gauges[name]))
	}

	for _, name := range sortedKeys(merged.Timers) {
		n := promName(name) + "_seconds"
		fmt.Fprintf(bw, "# HELP %s Duration histogram for %s.\n# TYPE %s histogram\n", n, name, n)
		for _, m := range members {
			if ts, ok := m.Metrics.Timers[name]; ok {
				writeHistogram(bw, n, lbl(m.Replica), ts)
			}
		}
		fn := fleetName(name) + "_seconds"
		fmt.Fprintf(bw, "# HELP %s Fleet-wide duration histogram for %s.\n# TYPE %s histogram\n", fn, name, fn)
		writeHistogram(bw, fn, "", merged.Timers[name])
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series (bucket lines cumulative,
// then _sum and _count) with the given pre-rendered label set. A stats
// value without bucket detail still renders a valid histogram: only the
// +Inf bucket, carrying the full count.
func writeHistogram(w io.Writer, name, labels string, ts TimerStats) {
	bucketLbl := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return labels[:len(labels)-1] + fmt.Sprintf(",le=%q}", le)
	}
	cum := int64(0)
	if len(ts.Buckets) > 0 {
		for i := 0; i < timerBuckets && i < len(ts.Buckets); i++ {
			cum += ts.Buckets[i]
			le := formatFloat(float64(int64(1)<<(timerMinShift+i)) / 1e9)
			fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLbl(le), cum)
		}
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLbl("+Inf"), ts.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(float64(ts.TotalNs)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, ts.Count)
}

func metricsOf(members []MemberMetrics) []Metrics {
	out := make([]Metrics, len(members))
	for i, m := range members {
		out[i] = m.Metrics
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
