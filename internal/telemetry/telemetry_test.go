package telemetry

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndTimerRespectEnable(t *testing.T) {
	c := NewCounter("test.counter")
	tm := NewTimer("test.timer")
	Disable()
	c.Inc()
	tm.Observe(time.Millisecond)
	if c.Load() != 0 {
		t.Fatalf("disabled counter advanced: %d", c.Load())
	}
	Enable()
	defer Disable()
	c.Add(3)
	tm.Observe(2 * time.Millisecond)
	if c.Load() != 3 {
		t.Fatalf("counter = %d, want 3", c.Load())
	}
	m := Snapshot()
	if m.Counters["test.counter"] != 3 {
		t.Fatalf("snapshot counter = %d", m.Counters["test.counter"])
	}
	ts := m.Timers["test.timer"]
	if ts.Count != 1 || ts.TotalNs != (2*time.Millisecond).Nanoseconds() {
		t.Fatalf("snapshot timer = %+v", ts)
	}
	if !m.Enabled {
		t.Fatal("snapshot not marked enabled")
	}
	Reset()
	if c.Load() != 0 || Snapshot().Timers["test.timer"].Count != 0 {
		t.Fatal("reset did not zero instruments")
	}
}

// TestHotPathNeverAllocates: the per-sweep instrumentation budget is
// zero allocations whether telemetry is on or off (the CLI promises a
// no-alloc disabled path; enabled counters are plain atomics).
func TestHotPathNeverAllocates(t *testing.T) {
	c := NewCounter("test.counter.alloc")
	tm := NewTimer("test.timer.alloc")
	for _, on := range []bool{false, true} {
		if on {
			Enable()
		} else {
			Disable()
		}
		n := testing.AllocsPerRun(1000, func() {
			c.Add(1)
			tm.Observe(time.Microsecond)
		})
		Disable()
		if n != 0 {
			t.Fatalf("enabled=%v: %v allocs per op, want 0", on, n)
		}
	}
}

func TestWriteSnapshotJSON(t *testing.T) {
	c := NewCounter("test.counter.json")
	Enable()
	defer func() { Disable(); Reset() }()
	c.Add(7)
	var sb strings.Builder
	if err := WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"enabled": true`, `"counters"`, `"test.counter.json": 7`, `"timers"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot JSON lacks %q:\n%s", want, out)
		}
	}
}

func TestTracerEmitsStructuredLines(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	tr.Sweep(SweepEvent{Iteration: "forward", Sweep: 2, Moved: 5, Recomputed: 3, WorstSlackPs: -120})
	line := sb.String()
	for _, want := range []string{"msg=sweep", "iteration=forward", "sweep=2", "moved=5", "recomputed=3", "worst_slack_ps=-120"} {
		if !strings.Contains(line, want) {
			t.Fatalf("trace line lacks %q: %s", want, line)
		}
	}
	if strings.Contains(line, "time=") {
		t.Fatalf("trace line not deterministic: %s", line)
	}
}

func TestTimerHistogramPercentiles(t *testing.T) {
	tm := NewTimer("test.timer.hist")
	Enable()
	defer func() { Disable(); Reset() }()
	// 90 fast observations and 10 slow ones: p50 must land in the fast
	// bucket's range, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		tm.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		tm.Observe(80 * time.Millisecond)
	}
	ts := Snapshot().Timers["test.timer.hist"]
	if ts.Count != 100 {
		t.Fatalf("count = %d", ts.Count)
	}
	// 100µs falls in the (65.536µs, 131.072µs] bucket.
	if ts.P50Ns <= 65_536 || ts.P50Ns > 131_072 {
		t.Fatalf("p50 = %dns, want within (65536, 131072]", ts.P50Ns)
	}
	// 80ms falls in the (67.1ms, 134.2ms] bucket.
	if ts.P99Ns <= 67_108_864 || ts.P99Ns > 134_217_728 {
		t.Fatalf("p99 = %dns, want within (67108864, 134217728]", ts.P99Ns)
	}
	if ts.P50Ns > ts.P90Ns || ts.P90Ns > ts.P99Ns {
		t.Fatalf("percentiles not monotonic: %+v", ts)
	}
}

func TestTimerOverflowBucket(t *testing.T) {
	tm := NewTimer("test.timer.overflow")
	Enable()
	defer func() { Disable(); Reset() }()
	tm.Observe(time.Hour) // beyond the last finite bound
	ts := Snapshot().Timers["test.timer.overflow"]
	if ts.Count != 1 || ts.TotalNs != time.Hour.Nanoseconds() {
		t.Fatalf("overflow observation lost: %+v", ts)
	}
	// Percentiles of overflow-only data report the last finite bound.
	if want := int64(1) << (timerMinShift + timerBuckets - 1); ts.P99Ns != want {
		t.Fatalf("p99 = %d, want capped at %d", ts.P99Ns, want)
	}
}

// TestSnapshotDeterministic: two snapshots of the same state must be
// byte-identical JSON, whatever order instruments registered in.
func TestSnapshotDeterministic(t *testing.T) {
	NewCounter("test.det.zz")
	NewCounter("test.det.aa")
	NewTimer("test.det.ztimer")
	NewTimer("test.det.atimer")
	a, err := json.Marshal(Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
	if !reflect.DeepEqual(Snapshot(), Snapshot()) {
		t.Fatal("snapshot structs differ")
	}
}

func TestGaugeFunc(t *testing.T) {
	v := 41.0
	NewGaugeFunc("test.gauge", func() float64 { return v })
	v = 42.0
	if got := Snapshot().Gauges["test.gauge"]; got != 42.0 {
		t.Fatalf("gauge = %v, want 42 (live callback)", got)
	}
	// Re-registration replaces.
	NewGaugeFunc("test.gauge", func() float64 { return 7 })
	if got := Snapshot().Gauges["test.gauge"]; got != 7 {
		t.Fatalf("re-registered gauge = %v, want 7", got)
	}
}

func TestWritePrometheusValidExposition(t *testing.T) {
	c := NewCounter("test.prom.counter")
	tm := NewTimer("test.prom.timer")
	NewGaugeFunc("test.prom.gauge", func() float64 { return 1.5 })
	RegisterRuntimeGauges()
	Enable()
	defer func() { Disable(); Reset() }()
	c.Add(5)
	tm.Observe(3 * time.Millisecond)
	tm.Observe(2 * time.Second)
	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"hb_test_prom_counter_total 5",
		"# TYPE hb_test_prom_counter_total counter",
		"# TYPE hb_test_prom_timer_seconds histogram",
		`hb_test_prom_timer_seconds_bucket{le="+Inf"} 2`,
		"hb_test_prom_timer_seconds_count 2",
		"hb_test_prom_gauge 1.5",
		"hb_runtime_goroutines",
		"hb_runtime_heap_alloc_bytes",
		"hb_runtime_gc_pause_last_ns",
		"hb_telemetry_enabled 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, out)
	}
}

func TestCheckExpositionRejectsGarbage(t *testing.T) {
	for name, text := range map[string]string{
		"empty":          "",
		"untyped sample": "some_metric 1\n",
		"bad value":      "# TYPE m counter\nm one\n",
		"bad name":       "# TYPE 9bad counter\n9bad 1\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing inf":    "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_sum 1\nh_count 5\n",
	} {
		if err := CheckExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

// TestConcurrentSnapshotIncObserve hammers the registry from many
// goroutines; run under -race this is the satellite guarantee that
// Snapshot/Inc/Observe never data-race.
func TestConcurrentSnapshotIncObserve(t *testing.T) {
	c := NewCounter("test.conc.counter")
	tm := NewTimer("test.conc.timer")
	Enable()
	defer func() { Disable(); Reset() }()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				tm.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = Snapshot()
				var sb strings.Builder
				if err := WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 2000 {
		t.Fatalf("counter = %d, want 2000", got)
	}
	if ts := Snapshot().Timers["test.conc.timer"]; ts.Count != 2000 {
		t.Fatalf("timer count = %d, want 2000", ts.Count)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Sweep(SweepEvent{Iteration: "forward"}) // must not panic
	if n := testing.AllocsPerRun(100, func() {
		tr.Sweep(SweepEvent{Iteration: "forward"})
	}); n != 0 {
		t.Fatalf("nil tracer allocates: %v", n)
	}
}
