package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestCounterAndTimerRespectEnable(t *testing.T) {
	c := NewCounter("test.counter")
	tm := NewTimer("test.timer")
	Disable()
	c.Inc()
	tm.Observe(time.Millisecond)
	if c.Load() != 0 {
		t.Fatalf("disabled counter advanced: %d", c.Load())
	}
	Enable()
	defer Disable()
	c.Add(3)
	tm.Observe(2 * time.Millisecond)
	if c.Load() != 3 {
		t.Fatalf("counter = %d, want 3", c.Load())
	}
	m := Snapshot()
	if m.Counters["test.counter"] != 3 {
		t.Fatalf("snapshot counter = %d", m.Counters["test.counter"])
	}
	ts := m.Timers["test.timer"]
	if ts.Count != 1 || ts.TotalNs != (2*time.Millisecond).Nanoseconds() {
		t.Fatalf("snapshot timer = %+v", ts)
	}
	if !m.Enabled {
		t.Fatal("snapshot not marked enabled")
	}
	Reset()
	if c.Load() != 0 || Snapshot().Timers["test.timer"].Count != 0 {
		t.Fatal("reset did not zero instruments")
	}
}

// TestHotPathNeverAllocates: the per-sweep instrumentation budget is
// zero allocations whether telemetry is on or off (the CLI promises a
// no-alloc disabled path; enabled counters are plain atomics).
func TestHotPathNeverAllocates(t *testing.T) {
	c := NewCounter("test.counter.alloc")
	tm := NewTimer("test.timer.alloc")
	for _, on := range []bool{false, true} {
		if on {
			Enable()
		} else {
			Disable()
		}
		n := testing.AllocsPerRun(1000, func() {
			c.Add(1)
			tm.Observe(time.Microsecond)
		})
		Disable()
		if n != 0 {
			t.Fatalf("enabled=%v: %v allocs per op, want 0", on, n)
		}
	}
}

func TestWriteSnapshotJSON(t *testing.T) {
	c := NewCounter("test.counter.json")
	Enable()
	defer func() { Disable(); Reset() }()
	c.Add(7)
	var sb strings.Builder
	if err := WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"enabled": true`, `"counters"`, `"test.counter.json": 7`, `"timers"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot JSON lacks %q:\n%s", want, out)
		}
	}
}

func TestTracerEmitsStructuredLines(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	tr.Sweep(SweepEvent{Iteration: "forward", Sweep: 2, Moved: 5, Recomputed: 3, WorstSlackPs: -120})
	line := sb.String()
	for _, want := range []string{"msg=sweep", "iteration=forward", "sweep=2", "moved=5", "recomputed=3", "worst_slack_ps=-120"} {
		if !strings.Contains(line, want) {
			t.Fatalf("trace line lacks %q: %s", want, line)
		}
	}
	if strings.Contains(line, "time=") {
		t.Fatalf("trace line not deterministic: %s", line)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Sweep(SweepEvent{Iteration: "forward"}) // must not panic
	if n := testing.AllocsPerRun(100, func() {
		tr.Sweep(SweepEvent{Iteration: "forward"})
	}); n != 0 {
		t.Fatalf("nil tracer allocates: %v", n)
	}
}
