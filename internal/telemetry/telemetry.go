// Package telemetry is the analyzer's observability substrate: named
// atomic counters, histogram timers and callback gauges on the analysis
// hot paths, a JSON metrics snapshot, a Prometheus text exposition
// (prometheus.go), and structured convergence tracing (trace.go) for the
// fixed-point iterations of Algorithms 1 and 2. Request-scoped span
// tracing lives in the telemetry/span subpackage.
//
// The package is zero-dependency (stdlib only, modeled on the Go
// runtime/metrics style) and near-zero-overhead when disabled: every
// counter and timer operation first checks one process-global atomic
// flag and returns without allocating, so instrumented hot paths cost a
// single atomic load per event unless telemetry has been switched on
// with Enable. Instrumented packages declare their instruments as
// package-level variables via NewCounter/NewTimer, which registers them
// for Snapshot and Reset; registration is the only locking path.
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-global switch every instrument checks on its
// fast path. Off by default: production analyses pay one atomic load
// per instrumented event.
var enabled atomic.Bool

// Enable turns metric collection on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns metric collection off. Accumulated values are kept
// (call Reset to zero them).
func Disable() { enabled.Store(false) }

// Enabled reports whether metric collection is on. Hot paths whose
// instrumentation needs more than a counter update (e.g. reading the
// clock) should gate that work on Enabled themselves.
func Enabled() bool { return enabled.Load() }

// registry holds every instrument created by NewCounter/NewTimer/
// NewGaugeFunc. The mutex guards registration and snapshotting only —
// never the update fast path.
var registry struct {
	mu       sync.Mutex
	counters []*Counter
	timers   []*Timer
	gauges   map[string]func() float64
}

// Counter is a monotonically increasing event count. The zero value is
// usable but unregistered; use NewCounter so Snapshot and Reset see it.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter creates and registers a named counter. Call once per name,
// at package init.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	registry.mu.Lock()
	registry.counters = append(registry.counters, c)
	registry.mu.Unlock()
	return c
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n when telemetry is enabled. It never
// allocates.
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Load returns the accumulated count.
func (c *Counter) Load() int64 { return c.v.Load() }

// NewGaugeFunc registers a callback gauge: fn is evaluated at snapshot
// and exposition time and must be cheap, non-blocking and must not call
// back into this package (the registry lock is not held during the
// call, but a gauge that snapshots would recurse). Re-registering a
// name replaces the previous callback, so components that are rebuilt
// within one process (servers in tests) can re-point their gauges.
func NewGaugeFunc(name string, fn func() float64) {
	registry.mu.Lock()
	if registry.gauges == nil {
		registry.gauges = make(map[string]func() float64)
	}
	registry.gauges[name] = fn
	registry.mu.Unlock()
}

// RegisterRuntimeGauges registers the process-health gauges every
// long-running binary wants on its metrics surface: goroutine count,
// heap bytes in use, and the most recent GC pause. Idempotent.
func RegisterRuntimeGauges() {
	NewGaugeFunc("runtime.goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	NewGaugeFunc("runtime.heap_alloc_bytes", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	NewGaugeFunc("runtime.gc_pause_last_ns", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.NumGC == 0 {
			return 0
		}
		return float64(m.PauseNs[(m.NumGC+255)%256])
	})
}

// Timer histogram geometry: fixed exponential buckets with upper bounds
// 2^(timerMinShift+i) nanoseconds. The first bound is ~1µs (nothing on
// the analysis path that is worth a histogram resolves faster) and the
// last ~8.6s; slower observations land in the implicit +Inf bucket.
// Fixed bounds keep Observe allocation-free and make histograms from
// different processes mergeable.
const (
	timerMinShift = 10 // first upper bound: 2^10 ns ≈ 1µs
	timerBuckets  = 24 // finite buckets; bounds up to 2^33 ns ≈ 8.6s
)

// TimerBounds returns the fixed bucket upper bounds in nanoseconds
// (exclusive of the implicit +Inf bucket). The slice is freshly
// allocated.
func TimerBounds() []int64 {
	b := make([]int64, timerBuckets)
	for i := range b {
		b[i] = 1 << (timerMinShift + i)
	}
	return b
}

// bucketIndex maps a duration in nanoseconds to its bucket: the
// smallest i with ns <= 2^(timerMinShift+i), or timerBuckets (the +Inf
// slot) when it exceeds the last finite bound.
func bucketIndex(ns int64) int {
	if ns <= 1<<timerMinShift {
		return 0
	}
	idx := bits.Len64(uint64(ns-1)) - timerMinShift
	if idx >= timerBuckets {
		return timerBuckets
	}
	return idx
}

// Timer accumulates observed durations into a fixed-bucket histogram
// (count, total nanoseconds, and one atomic cell per bucket), from
// which Snapshot derives percentiles and WritePrometheus a histogram
// exposition.
type Timer struct {
	name    string
	count   atomic.Int64
	total   atomic.Int64
	buckets [timerBuckets + 1]atomic.Int64 // last cell is +Inf
}

// NewTimer creates and registers a named timer. Call once per name, at
// package init.
func NewTimer(name string) *Timer {
	t := &Timer{name: name}
	registry.mu.Lock()
	registry.timers = append(registry.timers, t)
	registry.mu.Unlock()
	return t
}

// Name returns the timer's registered name.
func (t *Timer) Name() string { return t.name }

// Observe records one duration when telemetry is enabled. It never
// allocates.
func (t *Timer) Observe(d time.Duration) {
	if !enabled.Load() {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	t.count.Add(1)
	t.total.Add(ns)
	t.buckets[bucketIndex(ns)].Add(1)
}

// counts copies the bucket cells (finite buckets then +Inf).
func (t *Timer) counts() [timerBuckets + 1]int64 {
	var c [timerBuckets + 1]int64
	for i := range t.buckets {
		c[i] = t.buckets[i].Load()
	}
	return c
}

// percentile estimates the q-quantile (0 < q <= 1) in nanoseconds from
// bucket counts by linear interpolation inside the containing bucket.
// Observations beyond the last finite bound are reported at that bound.
func percentile(counts [timerBuckets + 1]int64, count int64, q float64) int64 {
	if count <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum, lower int64
	for i, c := range counts {
		if i == timerBuckets {
			// +Inf bucket: no finite upper bound to interpolate toward.
			return lower
		}
		upper := int64(1) << (timerMinShift + i)
		if cum+c >= rank {
			frac := float64(rank-cum) / float64(c)
			return lower + int64(frac*float64(upper-lower))
		}
		cum += c
		lower = upper
	}
	return lower
}

// TimerStats is one timer's accumulated state in a snapshot. The
// percentiles are histogram estimates (linear interpolation within the
// fixed buckets), deterministic for a given sequence of observations.
// Buckets holds the per-bucket (non-cumulative) counts — timerBuckets
// finite cells in TimerBounds order plus one +Inf cell — which is what
// makes snapshots from different processes mergeable bucket-wise
// (MergeMetrics): the geometry is fixed, so merge is element-wise
// addition.
type TimerStats struct {
	Count   int64   `json:"count"`
	TotalNs int64   `json:"totalNs"`
	P50Ns   int64   `json:"p50Ns"`
	P90Ns   int64   `json:"p90Ns"`
	P99Ns   int64   `json:"p99Ns"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Metrics is a point-in-time copy of every registered instrument — the
// JSON metrics schema (see docs/OBSERVABILITY.md). Map keys serialise
// in sorted order, and Snapshot itself iterates instruments in name
// order, so two snapshots of the same state are byte-identical.
type Metrics struct {
	Enabled  bool                  `json:"enabled"`
	Counters map[string]int64      `json:"counters"`
	Timers   map[string]TimerStats `json:"timers"`
	Gauges   map[string]float64    `json:"gauges,omitempty"`
}

// sortRegistry orders the instrument lists by name; called with
// registry.mu held. Registration order depends on package-init order,
// so every iteration-exposing path sorts first to stay deterministic.
func sortRegistry() {
	sort.Slice(registry.counters, func(i, j int) bool {
		return registry.counters[i].name < registry.counters[j].name
	})
	sort.Slice(registry.timers, func(i, j int) bool {
		return registry.timers[i].name < registry.timers[j].name
	})
}

// Snapshot copies the current value of every registered instrument.
// Gauge callbacks are evaluated outside the registry lock.
func Snapshot() Metrics {
	registry.mu.Lock()
	sortRegistry()
	m := Metrics{
		Enabled:  enabled.Load(),
		Counters: make(map[string]int64, len(registry.counters)),
		Timers:   make(map[string]TimerStats, len(registry.timers)),
	}
	for _, c := range registry.counters {
		m.Counters[c.name] = c.v.Load()
	}
	for _, t := range registry.timers {
		n := t.count.Load()
		cs := t.counts()
		m.Timers[t.name] = TimerStats{
			Count:   n,
			TotalNs: t.total.Load(),
			P50Ns:   percentile(cs, n, 0.50),
			P90Ns:   percentile(cs, n, 0.90),
			P99Ns:   percentile(cs, n, 0.99),
			Buckets: append([]int64(nil), cs[:]...),
		}
	}
	gauges := make(map[string]func() float64, len(registry.gauges))
	for name, fn := range registry.gauges {
		gauges[name] = fn
	}
	registry.mu.Unlock()
	if len(gauges) > 0 {
		m.Gauges = make(map[string]float64, len(gauges))
		for name, fn := range gauges {
			m.Gauges[name] = fn()
		}
	}
	return m
}

// WriteSnapshot serialises Snapshot as indented JSON.
func WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Snapshot())
}

// Reset zeroes every registered instrument (telemetry state is
// process-global; benchmarks and the CLI reset between runs). Gauges
// are live callbacks and have nothing to reset.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, t := range registry.timers {
		t.count.Store(0)
		t.total.Store(0)
		for i := range t.buckets {
			t.buckets[i].Store(0)
		}
	}
}
