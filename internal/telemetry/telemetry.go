// Package telemetry is the analyzer's observability substrate: named
// atomic counters and timers on the analysis hot paths, a JSON metrics
// snapshot, and structured convergence tracing (trace.go) for the
// fixed-point iterations of Algorithms 1 and 2.
//
// The package is zero-dependency (stdlib only, modeled on the Go
// runtime/metrics style) and near-zero-overhead when disabled: every
// counter and timer operation first checks one process-global atomic
// flag and returns without allocating, so instrumented hot paths cost a
// single atomic load per event unless telemetry has been switched on
// with Enable. Instrumented packages declare their instruments as
// package-level variables via NewCounter/NewTimer, which registers them
// for Snapshot and Reset; registration is the only locking path.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-global switch every instrument checks on its
// fast path. Off by default: production analyses pay one atomic load
// per instrumented event.
var enabled atomic.Bool

// Enable turns metric collection on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns metric collection off. Accumulated values are kept
// (call Reset to zero them).
func Disable() { enabled.Store(false) }

// Enabled reports whether metric collection is on. Hot paths whose
// instrumentation needs more than a counter update (e.g. reading the
// clock) should gate that work on Enabled themselves.
func Enabled() bool { return enabled.Load() }

// registry holds every instrument created by NewCounter/NewTimer. The
// mutex guards registration and snapshotting only — never the update
// fast path.
var registry struct {
	mu       sync.Mutex
	counters []*Counter
	timers   []*Timer
}

// Counter is a monotonically increasing event count. The zero value is
// usable but unregistered; use NewCounter so Snapshot and Reset see it.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter creates and registers a named counter. Call once per name,
// at package init.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	registry.mu.Lock()
	registry.counters = append(registry.counters, c)
	registry.mu.Unlock()
	return c
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n when telemetry is enabled. It never
// allocates.
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Load returns the accumulated count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Timer accumulates observed durations (count + total nanoseconds).
type Timer struct {
	name  string
	count atomic.Int64
	total atomic.Int64
}

// NewTimer creates and registers a named timer. Call once per name, at
// package init.
func NewTimer(name string) *Timer {
	t := &Timer{name: name}
	registry.mu.Lock()
	registry.timers = append(registry.timers, t)
	registry.mu.Unlock()
	return t
}

// Name returns the timer's registered name.
func (t *Timer) Name() string { return t.name }

// Observe records one duration when telemetry is enabled. It never
// allocates.
func (t *Timer) Observe(d time.Duration) {
	if enabled.Load() {
		t.count.Add(1)
		t.total.Add(d.Nanoseconds())
	}
}

// TimerStats is one timer's accumulated state in a snapshot.
type TimerStats struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"totalNs"`
}

// Metrics is a point-in-time copy of every registered instrument — the
// JSON metrics schema (see docs/OBSERVABILITY.md). Map keys serialise
// in sorted order.
type Metrics struct {
	Enabled  bool                  `json:"enabled"`
	Counters map[string]int64      `json:"counters"`
	Timers   map[string]TimerStats `json:"timers"`
}

// Snapshot copies the current value of every registered instrument.
func Snapshot() Metrics {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	m := Metrics{
		Enabled:  enabled.Load(),
		Counters: make(map[string]int64, len(registry.counters)),
		Timers:   make(map[string]TimerStats, len(registry.timers)),
	}
	for _, c := range registry.counters {
		m.Counters[c.name] = c.v.Load()
	}
	for _, t := range registry.timers {
		m.Timers[t.name] = TimerStats{Count: t.count.Load(), TotalNs: t.total.Load()}
	}
	return m
}

// WriteSnapshot serialises Snapshot as indented JSON.
func WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Snapshot())
}

// Reset zeroes every registered instrument (telemetry state is
// process-global; benchmarks and the CLI reset between runs).
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, t := range registry.timers {
		t.count.Store(0)
		t.total.Store(0)
	}
}
