package telemetry

import (
	"context"
	"io"
	"log/slog"
)

// SweepEvent is one structured convergence-trace record: a single
// fixed-point sweep of Algorithm 1 (slack transfer) or Algorithm 2
// (time snatching). The per-sweep trajectory is what §6's run-time
// discussion asks users to look at: a near-critical latch loop shows up
// as sweeps whose Moved count stays positive while the worst slack
// creeps toward zero by ever smaller steps.
type SweepEvent struct {
	// Iteration names the fixed-point loop: "forward", "backward",
	// "partial-forward", "partial-backward" (Algorithm 1) or
	// "snatch-backward", "snatch-forward" (Algorithm 2).
	Iteration string `json:"iteration"`
	// Sweep is the zero-based sweep number within the iteration.
	Sweep int `json:"sweep"`
	// Moved counts the synchronising elements whose offsets changed.
	Moved int `json:"moved"`
	// Recomputed counts the clusters re-analysed by this sweep (all of
	// them under Options.FullSweeps, only the dirty ones otherwise).
	Recomputed int `json:"recomputed"`
	// WorstSlackPs is the minimum element-terminal slack after the
	// sweep, in picoseconds.
	WorstSlackPs int64 `json:"worstSlackPs"`
	// ElapsedNs is the sweep's wall time; only populated when a Tracer
	// is attached (the disabled path never reads the clock).
	ElapsedNs int64 `json:"elapsedNs,omitempty"`
}

// Tracer renders convergence events as structured log lines via
// log/slog. A nil *Tracer is valid and discards everything, so callers
// can pass their configured tracer down unconditionally.
type Tracer struct {
	logger *slog.Logger
}

// NewTracer builds a tracer emitting one text-format slog line per
// sweep to w. The time attribute is dropped so output is deterministic
// and diffable.
func NewTracer(w io.Writer) *Tracer {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	})
	return &Tracer{logger: slog.New(h)}
}

// NewTracerWithLogger builds a tracer emitting through an existing slog
// logger (for embedding the trace in an application's log stream).
func NewTracerWithLogger(l *slog.Logger) *Tracer { return &Tracer{logger: l} }

// Sweep emits one convergence event.
func (t *Tracer) Sweep(ev SweepEvent) {
	if t == nil || t.logger == nil {
		return
	}
	t.logger.LogAttrs(context.Background(), slog.LevelInfo, "sweep",
		slog.String("iteration", ev.Iteration),
		slog.Int("sweep", ev.Sweep),
		slog.Int("moved", ev.Moved),
		slog.Int("recomputed", ev.Recomputed),
		slog.Int64("worst_slack_ps", ev.WorstSlackPs),
		slog.Int64("elapsed_ns", ev.ElapsedNs),
	)
}
