// Package celllib provides the standard-cell library substrate: cell
// interface descriptions (pins, kinds, areas) and the empirical
// load-dependent propagation-delay models the paper relies on for component
// delay estimation ("For standard cells, empirical delay estimation formulae
// are often used", §1; "Propagation delays for the standard cells have been
// estimated using delay evaluation expressions that take into account the
// connected loads", §8).
//
// Delay model: a linear expression per timing arc and transition,
//
//	d(load) = Intrinsic + Slope × Cload
//
// with capacitances in integer femtofarads and delays in integer picoseconds
// (slope in ps/fF). Separate parameters are kept for rising and falling
// output transitions (the separate rise/fall settling-time technique of
// Bening et al. [7], adopted by the paper) and for minimum-delay analysis
// (used by the supplementary path constraints of §4).
package celllib

import (
	"fmt"
	"sort"

	"hummingbird/internal/clock"
)

// Cap is a capacitance in integer femtofarads.
type Cap int64

// PinDir distinguishes input from output pins.
type PinDir uint8

const (
	// In marks a cell input pin.
	In PinDir = iota
	// Out marks a cell output pin.
	Out
)

// PinRole classifies a pin's function on a synchronising element; on
// combinational cells every input is Data.
type PinRole uint8

const (
	// Data is an ordinary signal pin.
	Data PinRole = iota
	// Control is the clock/enable input of a synchronising element ("the
	// control input signal determines the output timing", §3).
	Control
)

// Pin describes one terminal of a library cell.
type Pin struct {
	Name string
	Dir  PinDir
	Role PinRole
	// C is the input capacitance presented to the driving net (inputs
	// only; outputs report 0).
	C Cap
}

// Kind classifies cells by their synchronisation behaviour (§3, §5).
type Kind uint8

const (
	// Comb is ordinary combinational logic.
	Comb Kind = iota
	// Transparent is a level-sensitive ("transparent") latch: data flows
	// input→output while the control pulse is active; the trailing control
	// edge latches the input (§5).
	Transparent
	// EdgeTriggered is a trailing-edge-triggered latch (flip-flop): input
	// closure and output assertion both occur on the trailing control edge
	// (§5).
	EdgeTriggered
	// Tristate is a clocked tristate driver; the paper models these
	// identically to transparent latches (§5).
	Tristate
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case Comb:
		return "comb"
	case Transparent:
		return "transparent"
	case EdgeTriggered:
		return "edge-triggered"
	case Tristate:
		return "tristate"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Sense is the unateness of a timing arc: how input transition direction
// maps to output transition direction.
type Sense uint8

const (
	// PositiveUnate arcs propagate rise→rise and fall→fall (buffers, AND/OR).
	PositiveUnate Sense = iota
	// NegativeUnate arcs propagate rise→fall and fall→rise (inverting gates).
	NegativeUnate
	// NonUnate arcs propagate either input transition to either output
	// transition (XOR-class gates).
	NonUnate
)

// String names the sense for reports.
func (s Sense) String() string {
	switch s {
	case PositiveUnate:
		return "pos"
	case NegativeUnate:
		return "neg"
	case NonUnate:
		return "non"
	}
	return fmt.Sprintf("Sense(%d)", uint8(s))
}

// Linear is one linear delay expression d(load) = Intrinsic + Slope·load.
type Linear struct {
	Intrinsic clock.Time // ps at zero load
	Slope     int64      // ps per fF
}

// Eval evaluates the expression at the given load.
func (l Linear) Eval(load Cap) clock.Time {
	return l.Intrinsic + clock.Time(l.Slope*int64(load))
}

// ArcDelay holds the four max-delay expressions of one timing arc plus the
// matching min-delay expressions (min ≤ max is enforced by Validate).
type ArcDelay struct {
	// MaxRise/MaxFall bound the latest output rise/fall after an input
	// transition; these feed the path constraints (dmax, §4).
	MaxRise, MaxFall Linear
	// MinRise/MinFall bound the earliest output transitions; these feed
	// the supplementary path constraints (dmin, §4).
	MinRise, MinFall Linear
}

// Arc is a pin-to-pin timing arc within a cell.
type Arc struct {
	From, To string
	Sense    Sense
	Delay    ArcDelay
}

// SyncTiming carries the synchronising-element parameters of §5.
type SyncTiming struct {
	// Dsetup is the data set-up time before input closure (Odc = −Dsetup).
	Dsetup clock.Time
	// Ddz is the data-input-to-output delay (transparent mode).
	Ddz clock.Time
	// Dcz is the control-input-to-output delay.
	Dcz clock.Time
	// ActiveLow, when set, means the element is transparent (or, for an
	// edge-triggered element, captures) while the control input is LOW:
	// the effective control pulse is the complement of the incoming
	// waveform. Combined with control-path inversion parity this realises
	// the §3 monotonic-control-function assumption.
	ActiveLow bool
}

// Cell is one library cell.
type Cell struct {
	Name string
	Kind Kind
	// Function is an informational textual description (e.g. "Y=!(A&B)").
	Function string
	// Area is the cell area in abstract grid units; Algorithm 3's
	// redesign operator trades area for speed using it.
	Area int64
	// Drive is the output drive strength class (1, 2, 4, ...); larger
	// drives have smaller delay slopes.
	Drive int
	Pins  []Pin
	Arcs  []Arc
	// Sync holds latch/FF parameters; nil for combinational cells.
	Sync *SyncTiming
}

// Pin returns the named pin, or nil.
func (c *Cell) Pin(name string) *Pin {
	for i := range c.Pins {
		if c.Pins[i].Name == name {
			return &c.Pins[i]
		}
	}
	return nil
}

// Inputs returns the input pin names in declaration order.
func (c *Cell) Inputs() []string {
	var in []string
	for _, p := range c.Pins {
		if p.Dir == In {
			in = append(in, p.Name)
		}
	}
	return in
}

// Outputs returns the output pin names in declaration order.
func (c *Cell) Outputs() []string {
	var out []string
	for _, p := range c.Pins {
		if p.Dir == Out {
			out = append(out, p.Name)
		}
	}
	return out
}

// ControlPin returns the name of the control input, or "" for combinational
// cells.
func (c *Cell) ControlPin() string {
	for _, p := range c.Pins {
		if p.Role == Control {
			return p.Name
		}
	}
	return ""
}

// DataPins returns the data input pin names (inputs that are not control).
func (c *Cell) DataPins() []string {
	var in []string
	for _, p := range c.Pins {
		if p.Dir == In && p.Role == Data {
			in = append(in, p.Name)
		}
	}
	return in
}

// IsSync reports whether the cell is a synchronising element.
func (c *Cell) IsSync() bool { return c.Kind != Comb }

// Validate checks structural invariants: pins exist for every arc, arcs
// connect input→output, min delays do not exceed max delays at zero and unit
// load, sync cells carry Sync parameters and exactly one control pin.
func (c *Cell) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("celllib: cell with empty name")
	}
	seen := map[string]bool{}
	nOut := 0
	for _, p := range c.Pins {
		if seen[p.Name] {
			return fmt.Errorf("cell %s: duplicate pin %q", c.Name, p.Name)
		}
		seen[p.Name] = true
		if p.Dir == Out {
			nOut++
			if p.Role == Control {
				return fmt.Errorf("cell %s: output pin %q marked control", c.Name, p.Name)
			}
		}
	}
	if nOut == 0 {
		return fmt.Errorf("cell %s: no output pin", c.Name)
	}
	for _, a := range c.Arcs {
		fp, tp := c.Pin(a.From), c.Pin(a.To)
		if fp == nil || tp == nil {
			return fmt.Errorf("cell %s: arc %s->%s references missing pin", c.Name, a.From, a.To)
		}
		if fp.Dir != In || tp.Dir != Out {
			return fmt.Errorf("cell %s: arc %s->%s must run input->output", c.Name, a.From, a.To)
		}
		for _, probe := range []Cap{0, 10, 100} {
			if a.Delay.MinRise.Eval(probe) > a.Delay.MaxRise.Eval(probe) {
				return fmt.Errorf("cell %s: arc %s->%s min rise exceeds max at load %d", c.Name, a.From, a.To, probe)
			}
			if a.Delay.MinFall.Eval(probe) > a.Delay.MaxFall.Eval(probe) {
				return fmt.Errorf("cell %s: arc %s->%s min fall exceeds max at load %d", c.Name, a.From, a.To, probe)
			}
		}
	}
	ctrl := 0
	for _, p := range c.Pins {
		if p.Role == Control {
			ctrl++
		}
	}
	if c.Kind == Comb {
		if ctrl != 0 {
			return fmt.Errorf("cell %s: combinational cell with control pin", c.Name)
		}
		if c.Sync != nil {
			return fmt.Errorf("cell %s: combinational cell with sync timing", c.Name)
		}
	} else {
		if ctrl != 1 {
			return fmt.Errorf("cell %s: synchronising element needs exactly one control pin, has %d", c.Name, ctrl)
		}
		if c.Sync == nil {
			return fmt.Errorf("cell %s: synchronising element without sync timing", c.Name)
		}
		if c.Sync.Dsetup < 0 || c.Sync.Ddz < 0 || c.Sync.Dcz < 0 {
			return fmt.Errorf("cell %s: negative sync timing parameters", c.Name)
		}
	}
	return nil
}

// Library is a named collection of cells.
type Library struct {
	Name  string
	cells map[string]*Cell
}

// NewLibrary returns an empty library.
func NewLibrary(name string) *Library {
	return &Library{Name: name, cells: make(map[string]*Cell)}
}

// Add validates and inserts a cell; duplicate names are rejected.
func (l *Library) Add(c *Cell) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if _, dup := l.cells[c.Name]; dup {
		return fmt.Errorf("celllib: duplicate cell %q", c.Name)
	}
	l.cells[c.Name] = c
	return nil
}

// Cell returns the named cell, or nil.
func (l *Library) Cell(name string) *Cell { return l.cells[name] }

// Len returns the number of cells.
func (l *Library) Len() int { return len(l.cells) }

// Names returns all cell names, sorted.
func (l *Library) Names() []string {
	names := make([]string, 0, len(l.cells))
	for n := range l.cells {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
