package celllib

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hummingbird/internal/clock"
)

// The textual library format lets a deployment supply its own cells and
// empirical delay expressions instead of the built-in Default() library —
// the paper's separation of component delay estimation from system timing
// analysis (§1) made concrete:
//
//	library NAME
//	cell INV_X1 kind comb area 3 drive 1
//	  function Y=!A
//	  pin A in cap 4
//	  pin Y out
//	  arc A Y sense neg maxrise 120ps 9 maxfall 90ps 7 minrise 72ps 4 minfall 54ps 3
//	endcell
//	cell DLATCH_X1 kind transparent area 9 drive 1
//	  pin D in cap 4
//	  pin G in control cap 5
//	  pin Q out
//	  arc D Q sense pos maxrise 280ps 10 maxfall 280ps 10 minrise 168ps 5 minfall 168ps 5
//	  sync setup 150ps ddz 280ps dcz 320ps
//	endcell
//	end
//
// Each arc delay expression is "INTRINSIC SLOPE" — an intrinsic time
// literal (netlist syntax: bare picoseconds, or with ps/ns/us suffix) and
// an integer slope in ps/fF. A sync line may end with "activelow". Omitted
// min expressions default to the max expressions.

// ParseLibrary reads a library in the textual format.
func ParseLibrary(r io.Reader) (*Library, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		lib    *Library
		cur    *Cell
		lineNo int
		ended  bool
	)
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("celllib: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if ended {
			return nil, fail("content after 'end'")
		}
		f := strings.Fields(line)
		switch f[0] {
		case "library":
			if lib != nil {
				return nil, fail("duplicate library line")
			}
			if len(f) != 2 {
				return nil, fail("usage: library NAME")
			}
			lib = NewLibrary(f[1])
		case "cell":
			if lib == nil {
				return nil, fail("cell before library")
			}
			if cur != nil {
				return nil, fail("nested cell (missing endcell)")
			}
			c, err := parseCellHeader(f)
			if err != nil {
				return nil, fail("%v", err)
			}
			cur = c
		case "endcell":
			if cur == nil {
				return nil, fail("endcell outside cell")
			}
			if err := lib.Add(cur); err != nil {
				return nil, fail("%v", err)
			}
			cur = nil
		case "function":
			if cur == nil {
				return nil, fail("function outside cell")
			}
			cur.Function = strings.Join(f[1:], " ")
		case "pin":
			if cur == nil {
				return nil, fail("pin outside cell")
			}
			p, err := parsePin(f)
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Pins = append(cur.Pins, p)
		case "arc":
			if cur == nil {
				return nil, fail("arc outside cell")
			}
			a, err := parseArc(f)
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Arcs = append(cur.Arcs, a)
		case "sync":
			if cur == nil {
				return nil, fail("sync outside cell")
			}
			st, err := parseSync(f)
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Sync = st
		case "end":
			if lib == nil {
				return nil, fail("end before library")
			}
			if cur != nil {
				return nil, fail("end inside cell")
			}
			ended = true
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("celllib: %w", err)
	}
	if lib == nil {
		return nil, fmt.Errorf("celllib: no library found")
	}
	if !ended {
		return nil, fmt.Errorf("celllib: missing 'end'")
	}
	return lib, nil
}

// ParseLibraryString is ParseLibrary over a string.
func ParseLibraryString(s string) (*Library, error) {
	return ParseLibrary(strings.NewReader(s))
}

func parseCellHeader(f []string) (*Cell, error) {
	// cell NAME kind KIND area N drive N
	if len(f) < 2 {
		return nil, fmt.Errorf("usage: cell NAME [kind K] [area N] [drive N]")
	}
	c := &Cell{Name: f[1], Kind: Comb, Drive: 1}
	rest := f[2:]
	for len(rest) >= 2 {
		switch rest[0] {
		case "kind":
			switch rest[1] {
			case "comb":
				c.Kind = Comb
			case "transparent":
				c.Kind = Transparent
			case "edge", "edge-triggered":
				c.Kind = EdgeTriggered
			case "tristate":
				c.Kind = Tristate
			default:
				return nil, fmt.Errorf("unknown kind %q", rest[1])
			}
		case "area":
			v, err := strconv.ParseInt(rest[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad area %q", rest[1])
			}
			c.Area = v
		case "drive":
			v, err := strconv.Atoi(rest[1])
			if err != nil {
				return nil, fmt.Errorf("bad drive %q", rest[1])
			}
			c.Drive = v
		default:
			return nil, fmt.Errorf("unknown cell attribute %q", rest[0])
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("dangling cell attribute %q", rest[0])
	}
	return c, nil
}

func parsePin(f []string) (Pin, error) {
	// pin NAME in|out [control] [cap N]
	var p Pin
	if len(f) < 3 {
		return p, fmt.Errorf("usage: pin NAME in|out [control] [cap N]")
	}
	p.Name = f[1]
	switch f[2] {
	case "in":
		p.Dir = In
	case "out":
		p.Dir = Out
	default:
		return p, fmt.Errorf("pin %s: direction %q (want in|out)", p.Name, f[2])
	}
	rest := f[3:]
	for len(rest) > 0 {
		switch rest[0] {
		case "control":
			p.Role = Control
			rest = rest[1:]
		case "cap":
			if len(rest) < 2 {
				return p, fmt.Errorf("pin %s: cap needs a value", p.Name)
			}
			v, err := strconv.ParseInt(rest[1], 10, 64)
			if err != nil {
				return p, fmt.Errorf("pin %s: bad cap %q", p.Name, rest[1])
			}
			p.C = Cap(v)
			rest = rest[2:]
		default:
			return p, fmt.Errorf("pin %s: unknown attribute %q", p.Name, rest[0])
		}
	}
	return p, nil
}

func parseArc(f []string) (Arc, error) {
	// arc FROM TO sense S maxrise I S maxfall I S [minrise I S minfall I S]
	var a Arc
	if len(f) < 4 {
		return a, fmt.Errorf("usage: arc FROM TO sense S maxrise I S maxfall I S ...")
	}
	a.From, a.To = f[1], f[2]
	rest := f[3:]
	sawMin := false
	for len(rest) > 0 {
		switch rest[0] {
		case "sense":
			if len(rest) < 2 {
				return a, fmt.Errorf("arc %s->%s: sense needs a value", a.From, a.To)
			}
			switch rest[1] {
			case "pos":
				a.Sense = PositiveUnate
			case "neg":
				a.Sense = NegativeUnate
			case "non":
				a.Sense = NonUnate
			default:
				return a, fmt.Errorf("arc %s->%s: unknown sense %q", a.From, a.To, rest[1])
			}
			rest = rest[2:]
		case "maxrise", "maxfall", "minrise", "minfall":
			if len(rest) < 3 {
				return a, fmt.Errorf("arc %s->%s: %s needs INTRINSIC SLOPE", a.From, a.To, rest[0])
			}
			l, err := parseLinear(rest[1], rest[2])
			if err != nil {
				return a, fmt.Errorf("arc %s->%s: %v", a.From, a.To, err)
			}
			switch rest[0] {
			case "maxrise":
				a.Delay.MaxRise = l
			case "maxfall":
				a.Delay.MaxFall = l
			case "minrise":
				a.Delay.MinRise = l
				sawMin = true
			case "minfall":
				a.Delay.MinFall = l
				sawMin = true
			}
			rest = rest[3:]
		default:
			return a, fmt.Errorf("arc %s->%s: unknown attribute %q", a.From, a.To, rest[0])
		}
	}
	if !sawMin {
		a.Delay.MinRise = a.Delay.MaxRise
		a.Delay.MinFall = a.Delay.MaxFall
	}
	return a, nil
}

func parseSync(f []string) (*SyncTiming, error) {
	// sync setup T ddz T dcz T [activelow]
	st := &SyncTiming{}
	rest := f[1:]
	for len(rest) > 0 {
		switch rest[0] {
		case "activelow":
			st.ActiveLow = true
			rest = rest[1:]
		case "setup", "ddz", "dcz":
			if len(rest) < 2 {
				return nil, fmt.Errorf("sync: %s needs a time", rest[0])
			}
			t, err := parseTimeLit(rest[1])
			if err != nil {
				return nil, err
			}
			switch rest[0] {
			case "setup":
				st.Dsetup = t
			case "ddz":
				st.Ddz = t
			case "dcz":
				st.Dcz = t
			}
			rest = rest[2:]
		default:
			return nil, fmt.Errorf("sync: unknown attribute %q", rest[0])
		}
	}
	return st, nil
}

func parseLinear(intr, slope string) (Linear, error) {
	t, err := parseTimeLit(intr)
	if err != nil {
		return Linear{}, err
	}
	s, err := strconv.ParseInt(slope, 10, 64)
	if err != nil {
		return Linear{}, fmt.Errorf("bad slope %q", slope)
	}
	return Linear{Intrinsic: t, Slope: s}, nil
}

// parseTimeLit parses a time literal (bare picoseconds or ps/ns/us suffix).
// Duplicated from the netlist format to keep celllib dependency-free.
func parseTimeLit(s string) (clock.Time, error) {
	unit := clock.Ps
	num := s
	switch {
	case strings.HasSuffix(s, "ps"):
		num = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		num, unit = s[:len(s)-2], clock.Ns
	case strings.HasSuffix(s, "us"):
		num, unit = s[:len(s)-2], clock.Us
	}
	if i, err := strconv.ParseInt(num, 10, 64); err == nil {
		return clock.Time(i) * unit, nil
	}
	fv, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time literal %q", s)
	}
	v := fv * float64(unit)
	if v != float64(int64(v)) {
		return 0, fmt.Errorf("time literal %q is not whole picoseconds", s)
	}
	return clock.Time(v), nil
}

// WriteLibrary renders a library in the textual format;
// ParseLibrary(WriteLibrary(l)) round-trips.
func WriteLibrary(w io.Writer, l *Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library %s\n", l.Name)
	for _, name := range l.Names() {
		c := l.Cell(name)
		kind := map[Kind]string{Comb: "comb", Transparent: "transparent",
			EdgeTriggered: "edge", Tristate: "tristate"}[c.Kind]
		fmt.Fprintf(bw, "cell %s kind %s area %d drive %d\n", c.Name, kind, c.Area, c.Drive)
		if c.Function != "" {
			fmt.Fprintf(bw, "  function %s\n", c.Function)
		}
		for _, p := range c.Pins {
			dir := "in"
			if p.Dir == Out {
				dir = "out"
			}
			fmt.Fprintf(bw, "  pin %s %s", p.Name, dir)
			if p.Role == Control {
				fmt.Fprint(bw, " control")
			}
			if p.C != 0 {
				fmt.Fprintf(bw, " cap %d", p.C)
			}
			fmt.Fprintln(bw)
		}
		for _, a := range c.Arcs {
			sense := map[Sense]string{PositiveUnate: "pos", NegativeUnate: "neg", NonUnate: "non"}[a.Sense]
			fmt.Fprintf(bw, "  arc %s %s sense %s maxrise %d %d maxfall %d %d minrise %d %d minfall %d %d\n",
				a.From, a.To, sense,
				int64(a.Delay.MaxRise.Intrinsic), a.Delay.MaxRise.Slope,
				int64(a.Delay.MaxFall.Intrinsic), a.Delay.MaxFall.Slope,
				int64(a.Delay.MinRise.Intrinsic), a.Delay.MinRise.Slope,
				int64(a.Delay.MinFall.Intrinsic), a.Delay.MinFall.Slope)
		}
		if c.Sync != nil {
			fmt.Fprintf(bw, "  sync setup %d ddz %d dcz %d", int64(c.Sync.Dsetup), int64(c.Sync.Ddz), int64(c.Sync.Dcz))
			if c.Sync.ActiveLow {
				fmt.Fprint(bw, " activelow")
			}
			fmt.Fprintln(bw)
		}
		fmt.Fprintln(bw, "endcell")
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}
