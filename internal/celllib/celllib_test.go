package celllib

import (
	"strings"
	"testing"
	"testing/quick"

	"hummingbird/internal/clock"
)

func TestLinearEval(t *testing.T) {
	l := Linear{Intrinsic: 100, Slope: 5}
	if got := l.Eval(0); got != 100 {
		t.Fatalf("Eval(0) = %v", got)
	}
	if got := l.Eval(12); got != 160 {
		t.Fatalf("Eval(12) = %v", got)
	}
}

func TestLinearMonotone(t *testing.T) {
	check := func(intr int32, slope uint8, a, b uint16) bool {
		l := Linear{Intrinsic: clock.Time(intr), Slope: int64(slope)}
		la, lb := Cap(a), Cap(b)
		if la > lb {
			la, lb = lb, la
		}
		return l.Eval(la) <= l.Eval(lb)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultLibraryValid(t *testing.T) {
	l := Default()
	if l.Len() == 0 {
		t.Fatal("empty default library")
	}
	for _, name := range l.Names() {
		c := l.Cell(name)
		if err := c.Validate(); err != nil {
			t.Errorf("cell %s invalid: %v", name, err)
		}
	}
}

// TestDefaultLibraryBuilds guards the static cell table behind Default():
// every prototype must pass validation, so the error channel of the builder
// stays empty on a consistent tree.
func TestDefaultLibraryBuilds(t *testing.T) {
	l, err := buildDefault()
	if err != nil {
		t.Fatalf("default library table broken: %v", err)
	}
	if l.Len() != Default().Len() {
		t.Fatalf("fresh build has %d cells, cached Default has %d", l.Len(), Default().Len())
	}
}

func TestDefaultLibraryContents(t *testing.T) {
	l := Default()
	for _, want := range []string{
		"INV_X1", "INV_X4", "NAND2_X1", "NAND4_X2", "XOR2_X1", "MUX2_X4",
		"DLATCH_X1", "DLATCHN_X1", "DFF_X2", "TBUF_X1",
	} {
		if l.Cell(want) == nil {
			t.Errorf("missing cell %s", want)
		}
	}
	if l.Cell("NAND9_X1") != nil {
		t.Error("unexpected cell present")
	}
}

func TestDriveStrengthReducesSlope(t *testing.T) {
	l := Default()
	x1 := l.Cell("NAND2_X1").Arcs[0].Delay.MaxRise
	x4 := l.Cell("NAND2_X4").Arcs[0].Delay.MaxRise
	if x4.Slope >= x1.Slope {
		t.Fatalf("X4 slope %d not below X1 slope %d", x4.Slope, x1.Slope)
	}
	// At high load the stronger cell must win despite intrinsic penalty.
	if x4.Eval(200) >= x1.Eval(200) {
		t.Fatalf("X4 not faster at high load: %v vs %v", x4.Eval(200), x1.Eval(200))
	}
	// Area monotone in drive.
	if l.Cell("NAND2_X4").Area <= l.Cell("NAND2_X1").Area {
		t.Fatal("drive does not cost area")
	}
}

func TestMinNotAboveMax(t *testing.T) {
	l := Default()
	for _, name := range l.Names() {
		c := l.Cell(name)
		for _, a := range c.Arcs {
			for _, load := range []Cap{0, 5, 50, 500} {
				if a.Delay.MinRise.Eval(load) > a.Delay.MaxRise.Eval(load) {
					t.Errorf("%s %s->%s: min rise above max at %d fF", name, a.From, a.To, load)
				}
				if a.Delay.MinFall.Eval(load) > a.Delay.MaxFall.Eval(load) {
					t.Errorf("%s %s->%s: min fall above max at %d fF", name, a.From, a.To, load)
				}
			}
		}
	}
}

func TestCellPinQueries(t *testing.T) {
	c := Default().Cell("DLATCH_X1")
	if c.Kind != Transparent || !c.IsSync() {
		t.Fatal("DLATCH kind wrong")
	}
	if got := c.ControlPin(); got != "G" {
		t.Fatalf("control pin = %q", got)
	}
	if got := c.DataPins(); len(got) != 1 || got[0] != "D" {
		t.Fatalf("data pins = %v", got)
	}
	if got := c.Outputs(); len(got) != 1 || got[0] != "Q" {
		t.Fatalf("outputs = %v", got)
	}
	if c.Pin("Q").Dir != Out || c.Pin("nope") != nil {
		t.Fatal("Pin lookup wrong")
	}
	inv := Default().Cell("INV_X1")
	if inv.ControlPin() != "" || inv.IsSync() {
		t.Fatal("INV misclassified")
	}
	if got := inv.Inputs(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("INV inputs = %v", got)
	}
}

func TestMuxPinNames(t *testing.T) {
	c := Default().Cell("MUX2_X1")
	want := []string{"A", "B", "S"}
	got := c.Inputs()
	if len(got) != len(want) {
		t.Fatalf("MUX2 inputs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MUX2 inputs = %v, want %v", got, want)
		}
	}
}

func TestTristatePinNames(t *testing.T) {
	c := Default().Cell("TBUF_X1")
	if c.Kind != Tristate {
		t.Fatal("TBUF kind")
	}
	if c.ControlPin() != "EN" {
		t.Fatalf("TBUF control = %q", c.ControlPin())
	}
	if got := c.DataPins(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("TBUF data = %v", got)
	}
}

func TestActiveLowLatch(t *testing.T) {
	l := Default()
	if !l.Cell("DLATCHN_X1").Sync.ActiveLow {
		t.Fatal("DLATCHN not active-low")
	}
	if l.Cell("DLATCH_X1").Sync.ActiveLow {
		t.Fatal("DLATCH active-low")
	}
	// Control arc sense must match polarity.
	for _, a := range l.Cell("DLATCHN_X1").Arcs {
		if a.From == "G" && a.Sense != NegativeUnate {
			t.Fatal("DLATCHN control arc not negative unate")
		}
	}
}

func TestValidateRejections(t *testing.T) {
	mkPins := func() []Pin {
		return []Pin{{Name: "A", Dir: In}, {Name: "Y", Dir: Out}}
	}
	cases := []struct {
		name string
		cell Cell
		want string
	}{
		{"empty name", Cell{Pins: mkPins()}, "empty name"},
		{"dup pin", Cell{Name: "c", Pins: []Pin{{Name: "A", Dir: In}, {Name: "A", Dir: In}, {Name: "Y", Dir: Out}}}, "duplicate pin"},
		{"no output", Cell{Name: "c", Pins: []Pin{{Name: "A", Dir: In}}}, "no output"},
		{"bad arc pin", Cell{Name: "c", Pins: mkPins(), Arcs: []Arc{{From: "Z", To: "Y"}}}, "missing pin"},
		{"arc direction", Cell{Name: "c", Pins: mkPins(), Arcs: []Arc{{From: "Y", To: "A"}}}, "input->output"},
		{"comb with control", Cell{Name: "c", Pins: []Pin{{Name: "A", Dir: In, Role: Control}, {Name: "Y", Dir: Out}}}, "control pin"},
		{"sync without timing", Cell{Name: "c", Kind: Transparent, Pins: []Pin{{Name: "D", Dir: In}, {Name: "G", Dir: In, Role: Control}, {Name: "Q", Dir: Out}}}, "without sync timing"},
		{"output control", Cell{Name: "c", Pins: []Pin{{Name: "A", Dir: In}, {Name: "Y", Dir: Out, Role: Control}}}, "marked control"},
	}
	for _, c := range cases {
		err := c.cell.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateMinAboveMax(t *testing.T) {
	c := Cell{
		Name: "bad",
		Pins: []Pin{{Name: "A", Dir: In}, {Name: "Y", Dir: Out}},
		Arcs: []Arc{{From: "A", To: "Y", Delay: ArcDelay{
			MaxRise: Linear{Intrinsic: 100},
			MinRise: Linear{Intrinsic: 200},
		}}},
	}
	if err := c.Validate(); err == nil {
		t.Fatal("min>max accepted")
	}
}

func TestLibraryAddDuplicate(t *testing.T) {
	l := NewLibrary("t")
	c := &Cell{Name: "X", Pins: []Pin{{Name: "A", Dir: In}, {Name: "Y", Dir: Out}}}
	if err := l.Add(c); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(c); err == nil {
		t.Fatal("duplicate accepted")
	}
	if l.Cell("X") == nil || l.Len() != 1 {
		t.Fatal("library state wrong")
	}
}

func TestNamesSorted(t *testing.T) {
	l := Default()
	names := l.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %s >= %s", names[i-1], names[i])
		}
	}
}

func TestKindAndSenseStrings(t *testing.T) {
	if Comb.String() != "comb" || Transparent.String() != "transparent" ||
		EdgeTriggered.String() != "edge-triggered" || Tristate.String() != "tristate" {
		t.Fatal("Kind strings")
	}
	if PositiveUnate.String() != "pos" || NegativeUnate.String() != "neg" || NonUnate.String() != "non" {
		t.Fatal("Sense strings")
	}
	if !strings.Contains(Kind(9).String(), "9") || !strings.Contains(Sense(9).String(), "9") {
		t.Fatal("unknown enum strings")
	}
}
