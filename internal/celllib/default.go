package celllib

import (
	"errors"
	"fmt"
	"sync"

	"hummingbird/internal/clock"
)

// Default constructs the synthetic standard-cell library used by the
// examples, workload generators and benchmarks. It plays the role of the
// Berkeley standard-cell library the paper's experiments were run against:
// static-CMOS gates in several drive strengths plus transparent latches,
// trailing-edge flip-flops and clocked tristate drivers.
//
// Numbers are representative of a ~1µm CMOS standard-cell process (hundreds
// of picoseconds of intrinsic gate delay, a few fF of pin capacitance) —
// the same era as the paper's DES/ALU experiments — but they are synthetic:
// only the *shape* of analysis results depends on them.
//
// The library is built once and shared (libraries are read-only after
// construction). The cell table is static, so construction cannot fail on
// a consistent tree; TestDefaultLibraryBuilds guards the table, and a cell
// that somehow fails validation is simply absent, surfacing later as an
// ordinary "unknown cell" error at the point of use.
func Default() *Library {
	defaultOnce.Do(func() { defaultLib, defaultErr = buildDefault() })
	return defaultLib
}

var (
	defaultOnce sync.Once
	defaultLib  *Library
	defaultErr  error
)

// buildDefault constructs the default library with Add, collecting (rather
// than panicking on) validation errors so the table stays testable.
func buildDefault() (*Library, error) {
	l := NewLibrary("hb-generic-1u")
	var errs []error
	add := func(c *Cell) {
		if err := l.Add(c); err != nil {
			errs = append(errs, err)
		}
	}

	type proto struct {
		base     string
		function string
		nIn      int
		sense    Sense
		// intrinsic rise/fall at drive 1, ps
		ir, ifl clock.Time
		// slope at drive 1, ps/fF
		sr, sf int64
		area   int64
	}
	protos := []proto{
		{"INV", "Y=!A", 1, NegativeUnate, 120, 90, 9, 7, 2},
		{"BUF", "Y=A", 1, PositiveUnate, 220, 190, 8, 7, 3},
		{"NAND2", "Y=!(A&B)", 2, NegativeUnate, 160, 120, 11, 8, 3},
		{"NAND3", "Y=!(A&B&C)", 3, NegativeUnate, 210, 150, 13, 9, 4},
		{"NAND4", "Y=!(A&B&C&D)", 4, NegativeUnate, 260, 180, 15, 10, 5},
		{"NOR2", "Y=!(A|B)", 2, NegativeUnate, 200, 130, 14, 8, 3},
		{"NOR3", "Y=!(A|B|C)", 3, NegativeUnate, 270, 160, 17, 9, 4},
		{"AND2", "Y=A&B", 2, PositiveUnate, 280, 230, 10, 8, 4},
		{"OR2", "Y=A|B", 2, PositiveUnate, 300, 240, 11, 8, 4},
		{"AOI21", "Y=!((A&B)|C)", 3, NegativeUnate, 230, 160, 14, 9, 4},
		{"OAI21", "Y=!((A|B)&C)", 3, NegativeUnate, 240, 170, 14, 9, 4},
		{"XOR2", "Y=A^B", 2, NonUnate, 340, 310, 14, 12, 6},
		{"XNOR2", "Y=!(A^B)", 2, NonUnate, 350, 320, 14, 12, 6},
		{"MUX2", "Y=S?B:A", 3, NonUnate, 330, 300, 12, 10, 6},
	}
	for _, p := range protos {
		for _, drive := range []int{1, 2, 4} {
			add(combCell(p.base, p.function, p.nIn, p.sense, p.ir, p.ifl, p.sr, p.sf, p.area, drive))
		}
	}

	for _, drive := range []int{1, 2} {
		add(latchCell("DLATCH", Transparent, false, drive))
		add(latchCell("DLATCHN", Transparent, true, drive))
		add(latchCell("DFF", EdgeTriggered, false, drive))
		add(latchCell("TBUF", Tristate, false, drive))
	}
	return l, errors.Join(errs...)
}

// combCell builds one combinational cell at the given drive strength: pins
// A,B,C,... plus output Y; all input arcs share the prototype delays. Drive
// k divides slopes by k and adds modest intrinsic/area cost.
func combCell(base, function string, nIn int, sense Sense, ir, ifl clock.Time, sr, sf, area int64, drive int) *Cell {
	name := fmt.Sprintf("%s_X%d", base, drive)
	pins := make([]Pin, 0, nIn+1)
	inNames := []string{"A", "B", "C", "D"}
	if base == "MUX2" {
		inNames = []string{"A", "B", "S"}
	}
	for i := 0; i < nIn; i++ {
		pins = append(pins, Pin{Name: inNames[i], Dir: In, Role: Data, C: Cap(3 + drive)})
	}
	pins = append(pins, Pin{Name: "Y", Dir: Out})
	d := clock.Time(drive)
	arcs := make([]Arc, 0, nIn)
	for i := 0; i < nIn; i++ {
		// Later inputs of a CMOS stack are slightly faster; stagger by 10ps
		// per position so arcs are distinguishable in tests and reports.
		stag := clock.Time(10 * i)
		ad := ArcDelay{
			MaxRise: Linear{Intrinsic: ir + 20*(d-1) - stag, Slope: sr / int64(drive)},
			MaxFall: Linear{Intrinsic: ifl + 15*(d-1) - stag, Slope: sf / int64(drive)},
		}
		// Min delays: 60% of intrinsic, 50% of slope — a fixed empirical
		// early/late spread.
		ad.MinRise = Linear{Intrinsic: ad.MaxRise.Intrinsic * 6 / 10, Slope: ad.MaxRise.Slope / 2}
		ad.MinFall = Linear{Intrinsic: ad.MaxFall.Intrinsic * 6 / 10, Slope: ad.MaxFall.Slope / 2}
		arcs = append(arcs, Arc{From: inNames[i], To: "Y", Sense: sense, Delay: ad})
	}
	return &Cell{
		Name: name, Kind: Comb, Function: function,
		Area: area + int64(drive), Drive: drive, Pins: pins, Arcs: arcs,
	}
}

// latchCell builds a synchronising element. Pin names follow convention:
// D (data), G or CK (control), Q (output); tristate drivers use A/EN/Y.
func latchCell(base string, kind Kind, activeLow bool, drive int) *Cell {
	name := fmt.Sprintf("%s_X%d", base, drive)
	dataPin, ctrlPin, outPin := "D", "G", "Q"
	switch kind {
	case EdgeTriggered:
		ctrlPin = "CK"
	case Tristate:
		dataPin, ctrlPin, outPin = "A", "EN", "Y"
	}
	dq := clock.Time(280) // data->output transparent-mode delay, drive 1
	cq := clock.Time(320) // control->output delay, drive 1
	setup := clock.Time(150)
	d := int64(drive)
	mk := func(intr clock.Time, slope int64) ArcDelay {
		maxL := Linear{Intrinsic: intr + clock.Time(25*(d-1)), Slope: slope / d}
		minL := Linear{Intrinsic: maxL.Intrinsic * 6 / 10, Slope: maxL.Slope / 2}
		return ArcDelay{MaxRise: maxL, MaxFall: maxL, MinRise: minL, MinFall: minL}
	}
	ctrlSense := PositiveUnate
	if activeLow {
		ctrlSense = NegativeUnate
	}
	return &Cell{
		Name: name, Kind: kind,
		Function: fmt.Sprintf("%s latch", kind),
		Area:     8 + d, Drive: drive,
		Pins: []Pin{
			{Name: dataPin, Dir: In, Role: Data, C: Cap(3 + drive)},
			{Name: ctrlPin, Dir: In, Role: Control, C: Cap(4 + drive)},
			{Name: outPin, Dir: Out},
		},
		Arcs: []Arc{
			{From: dataPin, To: outPin, Sense: PositiveUnate, Delay: mk(dq, 10)},
			{From: ctrlPin, To: outPin, Sense: ctrlSense, Delay: mk(cq, 11)},
		},
		Sync: &SyncTiming{Dsetup: setup, Ddz: dq, Dcz: cq, ActiveLow: activeLow},
	}
}
