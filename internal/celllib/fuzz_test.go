package celllib

import (
	"strings"
	"testing"
)

// FuzzParseLibrary checks the library parser never panics and that every
// accepted library survives a write/parse round trip with all cells valid.
func FuzzParseLibrary(f *testing.F) {
	f.Add(sampleLib)
	f.Add("library l\nend\n")
	f.Add("library l\ncell C\npin A in\npin Y out\nendcell\nend\n")
	f.Add("library l\ncell C kind tristate area 1 drive 9\npin A in\npin E in control\npin Y out\nsync setup 1 ddz 2 dcz 3 activelow\nendcell\nend\n")
	f.Fuzz(func(t *testing.T, text string) {
		lib, err := ParseLibraryString(text)
		if err != nil {
			return
		}
		for _, name := range lib.Names() {
			if err := lib.Cell(name).Validate(); err != nil {
				t.Fatalf("parser admitted invalid cell: %v", err)
			}
		}
		var sb strings.Builder
		if err := WriteLibrary(&sb, lib); err != nil {
			t.Fatal(err)
		}
		back, err := ParseLibraryString(sb.String())
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.Len() != lib.Len() {
			t.Fatal("round trip changed cell count")
		}
	})
}
