package celllib

import (
	"strings"
	"testing"
)

const sampleLib = `
# custom library
library mylib
cell INVX kind comb area 3 drive 2
  function Y=!A
  pin A in cap 4
  pin Y out
  arc A Y sense neg maxrise 120ps 9 maxfall 90ps 7 minrise 72ps 4 minfall 54ps 3
endcell
cell LATX kind transparent area 9 drive 1
  pin D in cap 4
  pin G in control cap 5
  pin Q out
  arc D Q sense pos maxrise 0.28ns 10 maxfall 280 10
  sync setup 150ps ddz 280ps dcz 320ps
endcell
cell LATN kind transparent area 9 drive 1
  pin D in cap 4
  pin G in control cap 5
  pin Q out
  arc D Q sense pos maxrise 280 10 maxfall 280 10
  sync setup 150 ddz 280 dcz 320 activelow
endcell
cell FFX kind edge area 10 drive 1
  pin D in cap 4
  pin CK in control cap 5
  pin Q out
  arc D Q sense pos maxrise 0 0 maxfall 0 0
  sync setup 200 ddz 0 dcz 300
endcell
end
`

func TestParseLibrary(t *testing.T) {
	lib, err := ParseLibraryString(sampleLib)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Name != "mylib" || lib.Len() != 4 {
		t.Fatalf("library shape: %s %d", lib.Name, lib.Len())
	}
	inv := lib.Cell("INVX")
	if inv == nil || inv.Kind != Comb || inv.Drive != 2 || inv.Area != 3 {
		t.Fatalf("INVX header: %+v", inv)
	}
	if inv.Function != "Y=!A" {
		t.Fatalf("function %q", inv.Function)
	}
	if inv.Pin("A").C != 4 || inv.Pin("Y").Dir != Out {
		t.Fatal("INVX pins")
	}
	a := inv.Arcs[0]
	if a.Sense != NegativeUnate || a.Delay.MaxRise.Intrinsic != 120 || a.Delay.MaxRise.Slope != 9 {
		t.Fatalf("INVX arc: %+v", a)
	}
	if a.Delay.MinFall.Intrinsic != 54 {
		t.Fatalf("min fall: %+v", a.Delay.MinFall)
	}
	lat := lib.Cell("LATX")
	if lat.Kind != Transparent || lat.Sync == nil || lat.Sync.Dsetup != 150 {
		t.Fatalf("LATX: %+v", lat)
	}
	// Fractional-ns intrinsic parsed.
	if lat.Arcs[0].Delay.MaxRise.Intrinsic != 280 {
		t.Fatalf("LATX intrinsic: %v", lat.Arcs[0].Delay.MaxRise.Intrinsic)
	}
	// Omitted min delays default to max.
	if lat.Arcs[0].Delay.MinRise != lat.Arcs[0].Delay.MaxRise {
		t.Fatal("min did not default to max")
	}
	if !lib.Cell("LATN").Sync.ActiveLow {
		t.Fatal("activelow lost")
	}
	if lib.Cell("FFX").Kind != EdgeTriggered || lib.Cell("FFX").ControlPin() != "CK" {
		t.Fatal("FFX")
	}
}

func TestParseLibraryErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"no library", "end\n", "end before library"},
		{"missing end", "library l\n", "missing 'end'"},
		{"dup library", "library a\nlibrary b\nend\n", "duplicate library"},
		{"cell before lib", "cell X\nlibrary l\nend\n", "cell before library"},
		{"nested cell", "library l\ncell A\ncell B\nendcell\nendcell\nend\n", "nested cell"},
		{"stray endcell", "library l\nendcell\nend\n", "outside cell"},
		{"pin outside", "library l\npin A in\nend\n", "pin outside cell"},
		{"arc outside", "library l\narc A Y\nend\n", "arc outside cell"},
		{"sync outside", "library l\nsync setup 1\nend\n", "sync outside cell"},
		{"bad kind", "library l\ncell X kind banana\nendcell\nend\n", "unknown kind"},
		{"bad pin dir", "library l\ncell X\npin A sideways\npin Y out\nendcell\nend\n", "direction"},
		{"bad sense", "library l\ncell X\npin A in\npin Y out\narc A Y sense maybe\nendcell\nend\n", "unknown sense"},
		{"bad slope", "library l\ncell X\npin A in\npin Y out\narc A Y sense pos maxrise 10 x\nendcell\nend\n", "bad slope"},
		{"bad time", "library l\ncell X\npin A in\npin Y out\narc A Y sense pos maxrise 1.0001ns 1\nendcell\nend\n", "whole picoseconds"},
		{"end inside cell", "library l\ncell X\nend\n", "end inside cell"},
		{"content after end", "library l\nend\ncell X\n", "content after"},
		{"unknown directive", "library l\nwibble\nend\n", "unknown directive"},
		{"invalid cell", "library l\ncell X\npin A in\nendcell\nend\n", "no output"},
		{"dangling attr", "library l\ncell X kind\nendcell\nend\n", "dangling"},
	}
	for _, c := range cases {
		_, err := ParseLibraryString(c.text)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	orig := Default()
	var sb strings.Builder
	if err := WriteLibrary(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseLibraryString(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v\nfirst lines:\n%s", err, sb.String()[:400])
	}
	if back.Len() != orig.Len() || back.Name != orig.Name {
		t.Fatalf("shape: %d/%s vs %d/%s", back.Len(), back.Name, orig.Len(), orig.Name)
	}
	for _, name := range orig.Names() {
		a, b := orig.Cell(name), back.Cell(name)
		if a.Kind != b.Kind || a.Area != b.Area || a.Drive != b.Drive || a.Function != b.Function {
			t.Fatalf("%s header mismatch", name)
		}
		if len(a.Pins) != len(b.Pins) || len(a.Arcs) != len(b.Arcs) {
			t.Fatalf("%s shape mismatch", name)
		}
		for i := range a.Pins {
			if a.Pins[i] != b.Pins[i] {
				t.Fatalf("%s pin %d: %+v vs %+v", name, i, a.Pins[i], b.Pins[i])
			}
		}
		for i := range a.Arcs {
			if a.Arcs[i] != b.Arcs[i] {
				t.Fatalf("%s arc %d: %+v vs %+v", name, i, a.Arcs[i], b.Arcs[i])
			}
		}
		if (a.Sync == nil) != (b.Sync == nil) {
			t.Fatalf("%s sync presence", name)
		}
		if a.Sync != nil && *a.Sync != *b.Sync {
			t.Fatalf("%s sync: %+v vs %+v", name, *a.Sync, *b.Sync)
		}
	}
}
