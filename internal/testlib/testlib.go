// Package testlib provides the deterministic fixture library shared by the
// test suites of the analysis packages: constant (zero-slope) delay cells
// and zero-parameter synchronising elements, so expected slacks can be
// computed by hand, plus fixed-delay cells (D1..D60NS) for building paths
// of exact lengths.
package testlib

import (
	"fmt"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/cluster"
	"hummingbird/internal/delaycalc"
	"hummingbird/internal/netlist"
)

// Lib builds the fixture library. Cells:
//
//	BUFD  — positive-unate buffer, 100ps rise/fall (min 50)
//	INVD  — negative-unate inverter, 100ps rise / 60ps fall (min 50/30)
//	XORD  — non-unate two-input gate, 100ps (min 50)
//	DxNS  — positive-unate buffers with exactly x ns of delay (min x/2),
//	        for x in {1,5,10,20,30,40,55,60}
//	LAT   — transparent latch, Dsetup=Ddz=Dcz=0
//	LATN  — active-low transparent latch
//	FFD   — trailing-edge flip-flop, Dsetup=Ddz=Dcz=0
//	FFS   — flip-flop with Dsetup=2ns, Dcz=1ns
func Lib() *celllib.Library {
	l := celllib.NewLibrary("fixture")
	// Fixture construction: a bad cell is a broken test, so panicking here
	// (test-only package) is the right failure mode.
	mustAdd := func(c *celllib.Cell) {
		if err := l.Add(c); err != nil {
			panic(err)
		}
	}
	fixed := func(rise, fall clock.Time) celllib.ArcDelay {
		return celllib.ArcDelay{
			MaxRise: celllib.Linear{Intrinsic: rise},
			MaxFall: celllib.Linear{Intrinsic: fall},
			MinRise: celllib.Linear{Intrinsic: rise / 2},
			MinFall: celllib.Linear{Intrinsic: fall / 2},
		}
	}
	buf := func(name string, d clock.Time) *celllib.Cell {
		return &celllib.Cell{
			Name: name, Kind: celllib.Comb, Function: "Y=A", Area: 1, Drive: 1,
			Pins: []celllib.Pin{{Name: "A", Dir: celllib.In}, {Name: "Y", Dir: celllib.Out}},
			Arcs: []celllib.Arc{{From: "A", To: "Y", Sense: celllib.PositiveUnate, Delay: fixed(d, d)}},
		}
	}
	mustAdd(buf("BUFD", 100))
	for _, ns := range []clock.Time{1, 5, 10, 20, 30, 40, 55, 60} {
		mustAdd(buf(fmt.Sprintf("D%dNS", ns), ns*clock.Ns))
	}
	mustAdd(&celllib.Cell{
		Name: "INVD", Kind: celllib.Comb, Function: "Y=!A", Area: 1, Drive: 1,
		Pins: []celllib.Pin{{Name: "A", Dir: celllib.In}, {Name: "Y", Dir: celllib.Out}},
		Arcs: []celllib.Arc{{From: "A", To: "Y", Sense: celllib.NegativeUnate, Delay: fixed(100, 60)}},
	})
	mustAdd(&celllib.Cell{
		Name: "XORD", Kind: celllib.Comb, Function: "Y=A^B", Area: 1, Drive: 1,
		Pins: []celllib.Pin{
			{Name: "A", Dir: celllib.In}, {Name: "B", Dir: celllib.In},
			{Name: "Y", Dir: celllib.Out},
		},
		Arcs: []celllib.Arc{
			{From: "A", To: "Y", Sense: celllib.NonUnate, Delay: fixed(100, 100)},
			{From: "B", To: "Y", Sense: celllib.NonUnate, Delay: fixed(100, 100)},
		},
	})
	latch := func(name string, kind celllib.Kind, st celllib.SyncTiming) *celllib.Cell {
		ctrl := "G"
		if kind == celllib.EdgeTriggered {
			ctrl = "CK"
		}
		sense := celllib.PositiveUnate
		if st.ActiveLow {
			sense = celllib.NegativeUnate
		}
		return &celllib.Cell{
			Name: name, Kind: kind, Function: "latch", Area: 2, Drive: 1,
			Pins: []celllib.Pin{
				{Name: "D", Dir: celllib.In},
				{Name: ctrl, Dir: celllib.In, Role: celllib.Control},
				{Name: "Q", Dir: celllib.Out},
			},
			Arcs: []celllib.Arc{
				{From: "D", To: "Q", Sense: celllib.PositiveUnate, Delay: fixed(st.Ddz, st.Ddz)},
				{From: ctrl, To: "Q", Sense: sense, Delay: fixed(st.Dcz, st.Dcz)},
			},
			Sync: &st,
		}
	}
	mustAdd(latch("LAT", celllib.Transparent, celllib.SyncTiming{}))
	mustAdd(latch("LATN", celllib.Transparent, celllib.SyncTiming{ActiveLow: true}))
	mustAdd(latch("FFD", celllib.EdgeTriggered, celllib.SyncTiming{}))
	mustAdd(latch("FFS", celllib.EdgeTriggered, celllib.SyncTiming{Dsetup: 2 * clock.Ns, Dcz: 1 * clock.Ns}))
	return l
}

// Network parses, validates and elaborates a design text against Lib(),
// with a zero wire-load model (delays are exactly the cell intrinsics).
func Network(t *testing.T, text string) *cluster.Network {
	t.Helper()
	lib := Lib()
	d, err := netlist.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(lib); err != nil {
		t.Fatal(err)
	}
	cs, err := d.ClockSet()
	if err != nil {
		t.Fatal(err)
	}
	calc, err := delaycalc.New(lib, d, delaycalc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := cluster.Build(lib, d, cs, calc)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// Elem returns the first generic element of the named site.
func Elem(t *testing.T, nw *cluster.Network, name string) int {
	t.Helper()
	ids := nw.ElemsOf(name)
	if len(ids) == 0 {
		t.Fatalf("no elements for %s", name)
	}
	return ids[0]
}
