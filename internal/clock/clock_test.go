package clock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mustSet wraps NewSet for static, known-valid test fixtures.
func mustSet(signals ...Signal) *Set {
	s, err := NewSet(signals...)
	if err != nil {
		panic(err)
	}
	return s
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{20 * Ns, "20ns"},
		{-5 * Ns, "-5ns"},
		{1500, "1.500ns"},
		{-250, "-0.250ns"},
		{Inf, "+inf"},
		{-Inf, "-inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSignalValidate(t *testing.T) {
	good := Signal{Name: "phi", Period: 100 * Ns, RiseAt: 0, FallAt: 20 * Ns}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid signal rejected: %v", err)
	}
	bad := []Signal{
		{Name: "", Period: 100, RiseAt: 0, FallAt: 10},
		{Name: "p", Period: 0, RiseAt: 0, FallAt: 10},
		{Name: "p", Period: 100, RiseAt: -1, FallAt: 10},
		{Name: "p", Period: 100, RiseAt: 0, FallAt: 100},
		{Name: "p", Period: 100, RiseAt: 40, FallAt: 40},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid signal accepted: %+v", i, s)
		}
	}
}

func TestWidthWrapping(t *testing.T) {
	s := Signal{Name: "p", Period: 100, RiseAt: 80, FallAt: 30}
	if w := s.Width(); w != 50 {
		t.Fatalf("wrapped width = %v, want 50", w)
	}
	s2 := Signal{Name: "p", Period: 100, RiseAt: 10, FallAt: 40}
	if w := s2.Width(); w != 30 {
		t.Fatalf("width = %v, want 30", w)
	}
}

func TestIsHigh(t *testing.T) {
	s := Signal{Name: "p", Period: 100, RiseAt: 10, FallAt: 40}
	for _, c := range []struct {
		t    Time
		want bool
	}{{0, false}, {10, true}, {39, true}, {40, false}, {110, true}, {-60, false}, {-61, true}} {
		if got := s.IsHigh(c.t); got != c.want {
			t.Errorf("IsHigh(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Wrapping pulse.
	w := Signal{Name: "w", Period: 100, RiseAt: 90, FallAt: 20}
	for _, c := range []struct {
		t    Time
		want bool
	}{{95, true}, {5, true}, {20, false}, {50, false}, {89, false}, {190, true}} {
		if got := w.IsHigh(c.t); got != c.want {
			t.Errorf("wrap IsHigh(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestIsHighWidthConsistency(t *testing.T) {
	// Property: the number of high sample points in one period equals Width.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Time(10 + r.Intn(200))
		rise := Time(r.Intn(int(p)))
		fall := Time(r.Intn(int(p)))
		if rise == fall {
			fall = (fall + 1) % p
		}
		s := Signal{Name: "x", Period: p, RiseAt: rise, FallAt: fall}
		n := Time(0)
		for i := Time(0); i < p; i++ {
			if s.IsHigh(i) {
				n++
			}
		}
		return n == s.Width()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewSetOverall(t *testing.T) {
	cs, err := NewSet(
		Signal{Name: "a", Period: 100 * Ns, RiseAt: 0, FallAt: 20 * Ns},
		Signal{Name: "b", Period: 50 * Ns, RiseAt: 0, FallAt: 10 * Ns},
		Signal{Name: "c", Period: 40 * Ns, RiseAt: 5 * Ns, FallAt: 15 * Ns},
	)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Overall() != 200*Ns {
		t.Fatalf("overall = %v, want 200ns", cs.Overall())
	}
	if cs.PulseCount(0) != 2 || cs.PulseCount(1) != 4 || cs.PulseCount(2) != 5 {
		t.Fatalf("pulse counts = %d %d %d", cs.PulseCount(0), cs.PulseCount(1), cs.PulseCount(2))
	}
}

func TestNewSetRejectsDuplicates(t *testing.T) {
	_, err := NewSet(
		Signal{Name: "a", Period: 100, RiseAt: 0, FallAt: 20},
		Signal{Name: "a", Period: 100, RiseAt: 50, FallAt: 70},
	)
	if err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestNewSetRejectsCoprimePeriods(t *testing.T) {
	// Periods 9999 and 10000 ps have an overall period of ~10^8 ps with
	// tens of thousands of edges; the harmonic-relation guard rejects it.
	_, err := NewSet(
		Signal{Name: "a", Period: 10000, RiseAt: 0, FallAt: 5000},
		Signal{Name: "b", Period: 9999, RiseAt: 0, FallAt: 5000},
	)
	if err == nil {
		t.Fatal("near-coprime periods accepted")
	}
}

func TestNewSetRejectsEmpty(t *testing.T) {
	if _, err := NewSet(); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	cs := mustSet(
		Signal{Name: "a", Period: 100, RiseAt: 0, FallAt: 30},
		Signal{Name: "b", Period: 50, RiseAt: 10, FallAt: 25},
	)
	edges := cs.Edges()
	// a contributes 2 edges, b contributes 4 edges per overall period (100).
	if len(edges) != 6 {
		t.Fatalf("edge count = %d, want 6", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i-1].At > edges[i].At {
			t.Fatalf("edges not sorted: %v then %v", edges[i-1], edges[i])
		}
	}
	for _, e := range edges {
		if e.At < 0 || e.At >= cs.Overall() {
			t.Fatalf("edge time %v outside [0,%v)", e.At, cs.Overall())
		}
		sig := cs.Signal(e.Sig)
		want := sig.EdgeTime(e.Kind, e.Occur)
		if e.At != want {
			t.Fatalf("edge %v: time %v, want %v", e, e.At, want)
		}
	}
}

func TestEdgesPropertyCount(t *testing.T) {
	// Property: each signal contributes exactly 2*T/P edges, all within [0,T).
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		sigs := make([]Signal, n)
		base := Time(4 * (1 + r.Intn(8)))
		for i := range sigs {
			p := base * Time(1<<uint(r.Intn(3))) // harmonically related by construction
			rise := Time(r.Intn(int(p)))
			fall := (rise + 1 + Time(r.Intn(int(p)-1))) % p
			sigs[i] = Signal{Name: string(rune('a' + i)), Period: p, RiseAt: rise, FallAt: fall}
		}
		cs, err := NewSet(sigs...)
		if err != nil {
			return false
		}
		counts := make([]int, n)
		for _, e := range cs.Edges() {
			if e.At < 0 || e.At >= cs.Overall() {
				return false
			}
			counts[e.Sig]++
		}
		for i := range sigs {
			if counts[i] != 2*int(cs.Overall()/sigs[i].Period) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexAndEdgeName(t *testing.T) {
	cs := mustSet(
		Signal{Name: "phi1", Period: 100, RiseAt: 0, FallAt: 30},
		Signal{Name: "fast", Period: 50, RiseAt: 10, FallAt: 25},
	)
	if cs.Index("phi1") != 0 || cs.Index("fast") != 1 || cs.Index("nope") != -1 {
		t.Fatal("Index lookup wrong")
	}
	e := Edge{Sig: 0, Kind: Rise, Occur: 0, At: 0}
	if got := cs.EdgeName(e); got != "phi1.rise" {
		t.Fatalf("EdgeName = %q", got)
	}
	e2 := Edge{Sig: 1, Kind: Fall, Occur: 1, At: 75}
	if got := cs.EdgeName(e2); got != "fast.fall[1]" {
		t.Fatalf("EdgeName = %q", got)
	}
}

func TestFindEdge(t *testing.T) {
	cs := mustSet(
		Signal{Name: "a", Period: 100, RiseAt: 0, FallAt: 30},
		Signal{Name: "b", Period: 50, RiseAt: 10, FallAt: 25},
	)
	i := cs.FindEdge(1, Fall, 1)
	if i < 0 {
		t.Fatal("edge not found")
	}
	e := cs.Edges()[i]
	if e.Sig != 1 || e.Kind != Fall || e.Occur != 1 || e.At != 75 {
		t.Fatalf("found wrong edge %+v", e)
	}
	if cs.FindEdge(0, Rise, 5) != -1 {
		t.Fatal("out-of-range occurrence found")
	}
}

func TestCyclicForward(t *testing.T) {
	cs := mustSet(Signal{Name: "a", Period: 100, RiseAt: 0, FallAt: 50})
	if d := cs.CyclicForward(30, 70); d != 40 {
		t.Fatalf("forward 30->70 = %v", d)
	}
	if d := cs.CyclicForward(70, 30); d != 60 {
		t.Fatalf("forward 70->30 = %v", d)
	}
	if d := cs.CyclicForward(25, 25); d != 0 {
		t.Fatalf("forward 25->25 = %v", d)
	}
}

func TestNextAfter(t *testing.T) {
	cs := mustSet(Signal{Name: "a", Period: 100, RiseAt: 0, FallAt: 50})
	if at := cs.NextAfter(30, 70); at != 70 {
		t.Fatalf("NextAfter(30,70) = %v", at)
	}
	if at := cs.NextAfter(70, 30); at != 130 {
		t.Fatalf("NextAfter(70,30) = %v", at)
	}
	// Same phase: the NEXT occurrence is one full period later (§4's
	// "exactly one clock period" special case).
	if at := cs.NextAfter(70, 70); at != 170 {
		t.Fatalf("NextAfter(70,70) = %v", at)
	}
}

func TestTwoPhase(t *testing.T) {
	cs, err := TwoPhase(100*Ns, 20*Ns)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 2 || cs.Overall() != 100*Ns {
		t.Fatalf("two-phase wrong shape: len=%d T=%v", cs.Len(), cs.Overall())
	}
	p1, p2 := cs.Signal(0), cs.Signal(1)
	// Non-overlap: never both high.
	for t0 := Time(0); t0 < cs.Overall(); t0 += 500 {
		if p1.IsHigh(t0) && p2.IsHigh(t0) {
			t.Fatalf("phases overlap at %v", t0)
		}
	}
	if _, err := TwoPhase(100, 50); err == nil {
		t.Fatal("overlapping two-phase accepted")
	}
}

func TestMultiPhase(t *testing.T) {
	cs, err := MultiPhase(4, 200*Ns, 30*Ns)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 4 {
		t.Fatalf("len = %d", cs.Len())
	}
	// Mutually non-overlapping.
	for t0 := Time(0); t0 < cs.Overall(); t0 += 1000 {
		high := 0
		for i := 0; i < 4; i++ {
			if cs.Signal(i).IsHigh(t0) {
				high++
			}
		}
		if high > 1 {
			t.Fatalf("%d phases high simultaneously at %v", high, t0)
		}
	}
	if _, err := MultiPhase(0, 100, 10); err == nil {
		t.Fatal("zero phases accepted")
	}
	if _, err := MultiPhase(4, 100, 30); err == nil {
		t.Fatal("too-wide phases accepted")
	}
}

func TestEdgeTimeNegativeIndexAndPeriodicity(t *testing.T) {
	s := Signal{Name: "p", Period: 100, RiseAt: 10, FallAt: 40}
	if s.EdgeTime(Rise, 0) != 10 || s.EdgeTime(Rise, 3) != 310 {
		t.Fatal("EdgeTime rise wrong")
	}
	if s.EdgeTime(Fall, 2) != 240 {
		t.Fatal("EdgeTime fall wrong")
	}
}

func TestNewSetRejectsInvalidSignal(t *testing.T) {
	if _, err := NewSet(Signal{Name: "", Period: 0}); err == nil {
		t.Fatal("NewSet accepted an invalid signal")
	}
}
