// Package clock models the synchronisation waveforms of the paper: any set
// of clock signals with harmonically related frequencies and arbitrary phase
// relationships (§3). All members of a Set share an overall period — the
// least common multiple of the member periods — and every rise/fall edge
// occurring within one overall period is enumerable as an Edge.
//
// Times are integer picoseconds. Integer time keeps the cyclic arithmetic of
// the break-open search (§7) exact: two edges either coincide or they do
// not, with no floating-point ambiguity.
package clock

import (
	"fmt"
	"math"
	"sort"
)

// Time is an instant or duration in integer picoseconds.
type Time int64

// Inf is a time value larger than any physically meaningful one; it is used
// as the "large number" the paper assigns to the slack of outputs that a
// given analysis pass does not apply to (§7).
const Inf Time = math.MaxInt64 / 4

// Common duration units.
const (
	Ps Time = 1
	Ns Time = 1000
	Us Time = 1000 * Ns
)

// String renders a Time in nanoseconds with picosecond precision.
func (t Time) String() string {
	if t == Inf {
		return "+inf"
	}
	if t == -Inf {
		return "-inf"
	}
	neg := ""
	v := t
	if v < 0 {
		neg = "-"
		v = -v
	}
	if v%Ns == 0 {
		return fmt.Sprintf("%s%dns", neg, v/Ns)
	}
	return fmt.Sprintf("%s%d.%03dns", neg, v/Ns, v%Ns)
}

// EdgeKind distinguishes the two voltage transitions of a clock pulse.
type EdgeKind uint8

const (
	// Rise is the leading (low-to-high) transition of a pulse.
	Rise EdgeKind = iota
	// Fall is the trailing (high-to-low) transition of a pulse.
	Fall
)

// String returns "rise" or "fall".
func (k EdgeKind) String() string {
	if k == Rise {
		return "rise"
	}
	return "fall"
}

// Signal is one periodic clock waveform. The signal is high on the cyclic
// interval [RiseAt, FallAt) within each of its periods. RiseAt and FallAt
// are phases in [0, Period) and must differ, so every period carries exactly
// one pulse (the paper's generic synchronising element is controlled by a
// single clock pulse per period of its clock; elements clocked faster than
// the overall period are replicated, §4).
type Signal struct {
	Name   string
	Period Time
	RiseAt Time
	FallAt Time
}

// Validate checks the structural invariants of the signal.
func (s Signal) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("clock: signal with empty name")
	}
	if s.Period <= 0 {
		return fmt.Errorf("clock %s: period %v must be positive", s.Name, s.Period)
	}
	if s.RiseAt < 0 || s.RiseAt >= s.Period {
		return fmt.Errorf("clock %s: rise phase %v outside [0,%v)", s.Name, s.RiseAt, s.Period)
	}
	if s.FallAt < 0 || s.FallAt >= s.Period {
		return fmt.Errorf("clock %s: fall phase %v outside [0,%v)", s.Name, s.FallAt, s.Period)
	}
	if s.RiseAt == s.FallAt {
		return fmt.Errorf("clock %s: rise and fall phases coincide at %v", s.Name, s.RiseAt)
	}
	return nil
}

// Width returns the pulse width W: the cyclic distance from the rise to the
// fall transition. W is the transparency window length for level-sensitive
// latches (§5).
func (s Signal) Width() Time {
	d := s.FallAt - s.RiseAt
	if d < 0 {
		d += s.Period
	}
	return d
}

// IsHigh reports whether the waveform is high at absolute time t (t may be
// any integer, negative included).
func (s Signal) IsHigh(t Time) bool {
	p := mod(t, s.Period)
	if s.RiseAt < s.FallAt {
		return p >= s.RiseAt && p < s.FallAt
	}
	return p >= s.RiseAt || p < s.FallAt
}

// EdgeTime returns the absolute time of occurrence i (0-based) of the given
// edge kind, counting occurrences from time zero.
func (s Signal) EdgeTime(kind EdgeKind, i int) Time {
	base := s.RiseAt
	if kind == Fall {
		base = s.FallAt
	}
	return base + Time(i)*s.Period
}

// mod returns t modulo m in [0, m).
func mod(t, m Time) Time {
	r := t % m
	if r < 0 {
		r += m
	}
	return r
}

// Edge is one clock transition within the overall period of a Set.
type Edge struct {
	// Sig indexes the owning signal within the Set.
	Sig int
	// Kind is Rise or Fall.
	Kind EdgeKind
	// Occur is the occurrence index of this edge of this signal within the
	// overall period (0 .. T/Period - 1).
	Occur int
	// At is the absolute edge time in [0, T).
	At Time
}

// maxEdgesPerPeriod bounds the edge list of a Set; see NewSet.
const maxEdgesPerPeriod = 4096

// Set is a collection of clock signals analysed together. Construct with
// NewSet, which validates the members and precomputes the overall period and
// the sorted edge list.
type Set struct {
	signals []Signal
	overall Time
	edges   []Edge
	byName  map[string]int
}

// NewSet builds a Set from the given signals. It returns an error if any
// signal is invalid, names collide, or the overall period (the LCM of the
// member periods) would overflow the time representation.
func NewSet(signals ...Signal) (*Set, error) {
	if len(signals) == 0 {
		return nil, fmt.Errorf("clock: a set needs at least one signal")
	}
	byName := make(map[string]int, len(signals))
	overall := Time(1)
	for i, s := range signals {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if j, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("clock: duplicate signal name %q (indices %d and %d)", s.Name, j, i)
		}
		byName[s.Name] = i
		var ok bool
		overall, ok = lcm(overall, s.Period)
		if !ok {
			return nil, fmt.Errorf("clock: overall period overflow combining %q", s.Name)
		}
	}
	// Guard against near-coprime periods: the paper's synchronous-operation
	// assumption (§3) means realistic clock sets have a handful of edges
	// per overall period; thousands indicate a broken harmonic relation
	// (and would blow up element replication downstream).
	var totalEdges int64
	for _, s := range signals {
		totalEdges += 2 * int64(overall/s.Period)
	}
	if totalEdges > maxEdgesPerPeriod {
		return nil, fmt.Errorf("clock: %d edges per overall period %v; the signals are not harmonically related in any useful sense", totalEdges, overall)
	}
	set := &Set{signals: append([]Signal(nil), signals...), overall: overall, byName: byName}
	for si, s := range set.signals {
		n := int(overall / s.Period)
		for i := 0; i < n; i++ {
			set.edges = append(set.edges,
				Edge{Sig: si, Kind: Rise, Occur: i, At: s.EdgeTime(Rise, i)},
				Edge{Sig: si, Kind: Fall, Occur: i, At: s.EdgeTime(Fall, i)},
			)
		}
	}
	sort.Slice(set.edges, func(a, b int) bool {
		ea, eb := set.edges[a], set.edges[b]
		if ea.At != eb.At {
			return ea.At < eb.At
		}
		if ea.Sig != eb.Sig {
			return ea.Sig < eb.Sig
		}
		return ea.Kind < eb.Kind
	})
	return set, nil
}

// Overall returns the overall clock period T: the smallest interval that is
// an integer multiple of every member period (§3's synchronous-operation
// assumption).
func (cs *Set) Overall() Time { return cs.overall }

// Len returns the number of signals in the set.
func (cs *Set) Len() int { return len(cs.signals) }

// Signal returns the i-th signal.
func (cs *Set) Signal(i int) Signal { return cs.signals[i] }

// Index returns the index of the named signal, or -1 if absent.
func (cs *Set) Index(name string) int {
	if i, ok := cs.byName[name]; ok {
		return i
	}
	return -1
}

// Edges returns every clock transition within one overall period, sorted by
// time (ties broken by signal index then kind). The returned slice is owned
// by the Set and must not be modified.
func (cs *Set) Edges() []Edge { return cs.edges }

// PulseCount returns how many pulses signal i contributes per overall
// period; a synchronising element controlled by that signal is replicated
// this many times (§4).
func (cs *Set) PulseCount(i int) int {
	return int(cs.overall / cs.signals[i].Period)
}

// EdgeName renders an edge as "phi1.rise[2]" style text for reports.
func (cs *Set) EdgeName(e Edge) string {
	if cs.PulseCount(e.Sig) == 1 {
		return fmt.Sprintf("%s.%s", cs.signals[e.Sig].Name, e.Kind)
	}
	return fmt.Sprintf("%s.%s[%d]", cs.signals[e.Sig].Name, e.Kind, e.Occur)
}

// FindEdge locates the edge of the given signal/kind/occurrence in the
// sorted edge list and returns its index, or -1 if out of range.
func (cs *Set) FindEdge(sig int, kind EdgeKind, occur int) int {
	for i, e := range cs.edges {
		if e.Sig == sig && e.Kind == kind && e.Occur == occur {
			return i
		}
	}
	return -1
}

// CyclicForward returns the forward cyclic distance from time a to time b
// within the overall period: the unique d in [0, T) with (a+d) ≡ b (mod T).
func (cs *Set) CyclicForward(a, b Time) Time {
	return mod(b-a, cs.overall)
}

// NextAfter returns, of the two candidate phases (cands are phases within
// [0,T)), the smallest absolute time strictly greater than t whose phase is
// cand. Helper for ideal-path-constraint evaluation: "the very next ideal
// closure time" (§4).
func (cs *Set) NextAfter(t Time, cand Time) Time {
	d := mod(cand-t, cs.overall)
	if d == 0 {
		d = cs.overall
	}
	return t + d
}

// lcm returns the least common multiple of a and b and whether it fits the
// representation (bounded well inside int64 so downstream sums cannot
// overflow).
func lcm(a, b Time) (Time, bool) {
	g := gcd(a, b)
	q := a / g
	if q > Inf/b {
		return 0, false
	}
	return q * b, true
}

func gcd(a, b Time) Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TwoPhase constructs the classic non-overlapping two-phase clock pair used
// by many of the workloads: both phases share the given period; phi1 is high
// on [0, width) and phi2 on [period/2, period/2+width). width must leave a
// non-overlap gap (width < period/2).
func TwoPhase(period, width Time) (*Set, error) {
	if width <= 0 || width >= period/2 {
		return nil, fmt.Errorf("clock: two-phase width %v must be in (0, %v)", width, period/2)
	}
	return NewSet(
		Signal{Name: "phi1", Period: period, RiseAt: 0, FallAt: width},
		Signal{Name: "phi2", Period: period, RiseAt: period / 2, FallAt: period/2 + width},
	)
}

// MultiPhase constructs n equally spaced non-overlapping phases named
// "phi1".."phiN" over the given period. Each phase is high for width.
func MultiPhase(n int, period, width Time) (*Set, error) {
	if n < 1 {
		return nil, fmt.Errorf("clock: need at least one phase, got %d", n)
	}
	step := period / Time(n)
	if width <= 0 || width >= step {
		return nil, fmt.Errorf("clock: phase width %v must be in (0, %v) for %d phases", width, step, n)
	}
	sigs := make([]Signal, n)
	for i := range sigs {
		start := Time(i) * step
		sigs[i] = Signal{
			Name:   fmt.Sprintf("phi%d", i+1),
			Period: period,
			RiseAt: start,
			FallAt: start + width,
		}
	}
	return NewSet(sigs...)
}
