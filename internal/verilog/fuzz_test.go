package verilog

import (
	"strings"
	"testing"

	"hummingbird/internal/netlist"
)

// FuzzImport checks the Verilog importer never panics and that accepted
// sources produce designs the netlist layer can serialise and re-parse
// without changing shape (the same invariant netlist.FuzzParse holds for
// its own format).
func FuzzImport(f *testing.F) {
	f.Add(`module top(a, y); input a; output y; INV_X1 g1(.A(a), .Y(y)); endmodule`)
	f.Add(`module top(); endmodule`)
	f.Add(`module sub(a, y); input a; output y; BUF_X1 b(.A(a), .Y(y)); endmodule
module top(a, y); input a; output y; sub s(.a(a), .y(y)); endmodule`)
	f.Add(`module top(a); input a; wire w; // comment
/* block */ endmodule`)
	f.Add(`module \esc~ape (a); input a; endmodule`)
	f.Add("module m(a; input a endmodule")
	f.Add("module m(a); input a; INV_X1 g(.A(a), .Y()); endmodule")
	f.Add("/* */ // \nmodule m(); endmodule")
	f.Add("module m(a, y);\ninput a;\noutput y;\nNAND2_X1 g(.A(a), .B(a), .Y(y));\nendmodule\n")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ImportString(src, "")
		if err != nil {
			return
		}
		if d.Name == "" {
			t.Fatal("accepted design with empty name")
		}
		var sb strings.Builder
		if err := netlist.Write(&sb, d); err != nil {
			t.Fatalf("write of imported design failed: %v", err)
		}
		d2, err := netlist.ParseString(sb.String())
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, sb.String())
		}
		if d2.Name != d.Name || len(d2.Instances) != len(d.Instances) ||
			len(d2.Ports) != len(d.Ports) || len(d2.Modules) != len(d.Modules) {
			t.Fatalf("round trip changed shape:\n%s", sb.String())
		}
	})
}
