package verilog

import (
	"strings"
	"testing"

	"hummingbird/internal/celllib"
	"hummingbird/internal/clock"
	"hummingbird/internal/core"
	"hummingbird/internal/netlist"
)

const simpleV = `
// a small gate-level netlist
module top(a, b, ck, y);
  input a, b, ck;
  output y;
  wire n1, n2, q1;
  /* round logic */
  INV_X1 g1(.A(a), .Y(n1));
  NAND2_X1 g2(.A(n1), .B(b), .Y(n2));
  DLATCH_X1 l1(.D(n2), .G(ck), .Q(q1));
  BUF_X1 g3(.A(q1), .Y(y));
endmodule
`

func TestImportSimple(t *testing.T) {
	d, err := ImportString(simpleV, "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "top" {
		t.Fatalf("name %q", d.Name)
	}
	if len(d.Ports) != 4 || len(d.Instances) != 4 {
		t.Fatalf("shape: %d ports %d instances", len(d.Ports), len(d.Instances))
	}
	if p := d.Port("y"); p == nil || p.Dir != netlist.Output {
		t.Fatalf("port y: %+v", p)
	}
	if p := d.Port("a"); p == nil || p.Dir != netlist.Input {
		t.Fatalf("port a: %+v", p)
	}
	var l1 *netlist.Instance
	for i := range d.Instances {
		if d.Instances[i].Name == "l1" {
			l1 = &d.Instances[i]
		}
	}
	if l1 == nil || l1.Ref != "DLATCH_X1" || l1.Conns["D"] != "n2" || l1.Conns["G"] != "ck" {
		t.Fatalf("l1: %+v", l1)
	}
}

func TestImportHierarchy(t *testing.T) {
	src := `
module pair(a, y);
  input a; output y;
  wire t;
  INV_X1 i1(.A(a), .Y(t));
  INV_X1 i2(.A(t), .Y(y));
endmodule

module top(x, z);
  input x; output z;
  wire m;
  pair u1(.a(x), .y(m));
  pair u2(.a(m), .y(z));
endmodule
`
	d, err := ImportString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "top" {
		t.Fatalf("top detection failed: %q", d.Name)
	}
	if len(d.Modules) != 1 || d.Modules["pair"] == nil {
		t.Fatalf("modules: %v", d.Modules)
	}
	if len(d.Instances) != 2 || d.Instances[0].Ref != "pair" {
		t.Fatalf("instances: %+v", d.Instances)
	}
	// Explicit top selection works too.
	d2, err := ImportString(src, "pair")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != "pair" || len(d2.Instances) != 2 {
		t.Fatalf("explicit top: %+v", d2)
	}
}

func TestImportErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"empty", "", "no modules"},
		{"vector", "module m(a); input [3:0] a; endmodule", "vectors"},
		{"assign", "module m(y); output y; assign y = 1; endmodule", "behavioural"},
		{"positional", "module m(a,y); input a; output y; INV_X1 g(a, y); endmodule", "positional"},
		{"undirected port", "module m(a); wire a; endmodule", "no direction"},
		{"dup module", "module m(); endmodule\nmodule m(); endmodule", "duplicate module"},
		{"missing top", "module m(); endmodule", ""},
		{"bad top", "module m(); endmodule", "not found"},
		{"unterminated comment", "module m(); /* oops", "unterminated"},
		{"dup pin", "module m(a,y); input a; output y; INV_X1 g(.A(a), .A(a), .Y(y)); endmodule", "connected twice"},
		{"stray char", "module m(); @ endmodule", "unexpected character"},
		{"two tops", "module a(); endmodule\nmodule b(); endmodule", "multiple top"},
	}
	for _, c := range cases {
		top := ""
		if c.name == "bad top" {
			top = "nope"
		}
		_, err := ImportString(c.src, top)
		if c.name == "missing top" {
			if err != nil {
				t.Errorf("%s: single module should not need a top: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestEmptyConnectionAndEscapes(t *testing.T) {
	src := `
module top(a, y);
  input a; output y;
  wire nc;
  NAND2_X1 g(.A(a), .B(a), .Y(y));
  INV_X1 g2(.A(a), .Y());
endmodule
`
	d, err := ImportString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	var g2 *netlist.Instance
	for i := range d.Instances {
		if d.Instances[i].Name == "g2" {
			g2 = &d.Instances[i]
		}
	}
	if _, connected := g2.Conns["Y"]; connected {
		t.Fatal("empty connection should leave pin unconnected")
	}
}

// TestConstrainAndAnalyze: the full import flow — Verilog in, constraints
// merged, analysed end to end.
func TestConstrainAndAnalyze(t *testing.T) {
	d, err := ImportString(simpleV, "")
	if err != nil {
		t.Fatal(err)
	}
	// The clock is named after the Verilog clock input port "ck", so
	// Constrain replaces that port with the clock generator's net and all
	// control-pin connections resolve unchanged.
	cons, err := netlist.ParseString(`
design constraints
clock ck period 10ns rise 0 fall 4ns
input a clock ck edge fall offset 0
input b clock ck edge fall offset 0
output y clock ck edge fall offset -0.5ns
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Constrain(d, cons); err != nil {
		t.Fatal(err)
	}
	if d.Port("ck") != nil {
		t.Fatal("clock input port not replaced")
	}
	a, err := core.Load(celllib.Default(), d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.IdentifySlowPaths()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("imported design slow: %v", rep.WorstSlack())
	}
	if a.CD.Clocks.Overall() != 10*clock.Ns {
		t.Fatalf("clock merge failed: %v", a.CD.Clocks.Overall())
	}
}

func TestConstrainErrors(t *testing.T) {
	d, _ := ImportString(simpleV, "")
	cons := netlist.New("c")
	cons.AddPort(netlist.Port{Name: "ghost", Dir: netlist.Input, RefClock: "phi"})
	if err := Constrain(d, cons); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("missing port accepted: %v", err)
	}
	d2, _ := ImportString(simpleV, "")
	cons2 := netlist.New("c")
	cons2.AddPort(netlist.Port{Name: "y", Dir: netlist.Input})
	if err := Constrain(d2, cons2); err == nil || !strings.Contains(err.Error(), "direction") {
		t.Fatalf("direction mismatch accepted: %v", err)
	}
}
